package finelb_test

import (
	"testing"

	"finelb"
)

// TestFacadeSimulate exercises the public simulation surface end to end.
func TestFacadeSimulate(t *testing.T) {
	w := finelb.FineGrain().ScaledTo(4, 0.6)
	res, err := finelb.Simulate(finelb.SimConfig{
		Servers: 4, Workload: w, Policy: finelb.NewPoll(2),
		Accesses: 5000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanResponse() <= 0 {
		t.Fatal("no measurements")
	}
}

// TestFacadePrototype exercises the public prototype surface end to end.
func TestFacadePrototype(t *testing.T) {
	w := finelb.PoissonExp(2e-3).ScaledTo(2, 0.4)
	res, err := finelb.RunPrototype(finelb.PrototypeConfig{
		Servers: 2, Clients: 1, Workload: w,
		Policy:   finelb.NewPollDiscard(2, finelb.DiscardThreshold),
		Accesses: 400, Seed: 2, SlowProb: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	if res.Response.N() == 0 {
		t.Fatal("no responses")
	}
}

// TestFacadeClusterComposition builds a cluster from the exported
// pieces directly, the way examples/ do.
func TestFacadeClusterComposition(t *testing.T) {
	dir := finelb.NewDirectory(0)
	node, err := finelb.StartNode(finelb.NodeConfig{
		ID: 0, Service: "svc", Directory: dir, SlowProb: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	client, err := finelb.NewClient(finelb.ClientConfig{
		Directory: dir, Service: "svc", Policy: finelb.NewRandom(), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	info, err := client.Access(500, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(info.Resp.Payload) != "hello" {
		t.Fatalf("echo payload %q", info.Resp.Payload)
	}
	if len(finelb.PaperWorkloads()) != 3 {
		t.Fatal("paper workloads missing")
	}
}
