module finelb

go 1.22
