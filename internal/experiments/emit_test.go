package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func demoTable() *Table {
	tbl := &Table{ID: "demo", Title: "emitter demo", Header: []string{"name", "ms", "count"}}
	tbl.AddRow("alpha", 1.23456789, 3)
	tbl.AddRow("beta", 2.5, 5)
	tbl.AddNote("a note")
	return tbl
}

func TestTableWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := demoTable().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID     string   `json:"id"`
		Title  string   `json:"title"`
		Header []string `json:"header"`
		Rows   [][]any  `json:"rows"`
		Notes  []string `json:"notes"`
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if got.ID != "demo" || got.Title != "emitter demo" || len(got.Notes) != 1 {
		t.Errorf("metadata wrong: %+v", got)
	}
	if len(got.Rows) != 2 || len(got.Rows[0]) != 3 {
		t.Fatalf("rows wrong: %+v", got.Rows)
	}
	// Numeric cells must survive as JSON numbers at full precision, not
	// as %.4g strings.
	if v, ok := got.Rows[0][1].(float64); !ok || v != 1.23456789 {
		t.Errorf("float cell = %#v, want 1.23456789", got.Rows[0][1])
	}
	if v, ok := got.Rows[0][2].(float64); !ok || v != 3 {
		t.Errorf("int cell = %#v, want 3", got.Rows[0][2])
	}
	if s, ok := got.Rows[0][0].(string); !ok || s != "alpha" {
		t.Errorf("string cell = %#v", got.Rows[0][0])
	}
}

func TestWriteTablesJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteTablesJSON(&b, []*Table{demoTable(), demoTable()}); err != nil {
		t.Fatal(err)
	}
	var got []struct {
		ID   string  `json:"id"`
		Rows [][]any `json:"rows"`
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(got) != 2 || got[1].ID != "demo" {
		t.Fatalf("array wrong: %+v", got)
	}
}

func TestValueFloat(t *testing.T) {
	tbl := &Table{}
	tbl.AddRow("s", 1.5, 7, time.Second)
	row := tbl.Rows[0]
	if _, ok := row[0].Float(); ok {
		t.Error("string cell reported numeric")
	}
	if f, ok := row[1].Float(); !ok || f != 1.5 {
		t.Errorf("float cell: %v %v", f, ok)
	}
	if f, ok := row[2].Float(); !ok || f != 7 {
		t.Errorf("int cell: %v %v", f, ok)
	}
	// Unknown types stringify (time.Duration renders "1s").
	if row[3].String() != "1s" {
		t.Errorf("duration cell = %q", row[3].String())
	}
}

func TestBenchRecord(t *testing.T) {
	o := Options{Quick: true, Seed: 42}
	rec := NewBenchRecord("demo", o, demoTable(), 1500*time.Millisecond)
	if rec.Experiment != "demo" || rec.Seed != 42 || !rec.Quick {
		t.Errorf("identity fields wrong: %+v", rec)
	}
	if rec.WallSeconds != 1.5 {
		t.Errorf("wall = %v", rec.WallSeconds)
	}
	if rec.ConfigDigest == "" {
		t.Error("empty config digest")
	}
	if rec.Metrics["rows"] != 2 {
		t.Errorf("rows metric = %v", rec.Metrics["rows"])
	}
	if got := rec.Metrics["mean:ms"]; got != (1.23456789+2.5)/2 {
		t.Errorf("mean:ms = %v", got)
	}
	if got := rec.Metrics["mean:count"]; got != 4 {
		t.Errorf("mean:count = %v", got)
	}
	if _, ok := rec.Metrics["mean:name"]; ok {
		t.Error("non-numeric column got a mean")
	}
	// Same configuration -> same digest; different scale -> different.
	again := NewBenchRecord("demo", o, demoTable(), time.Second)
	if again.ConfigDigest != rec.ConfigDigest {
		t.Error("digest not stable across runs of the same config")
	}
	full := NewBenchRecord("demo", Options{Seed: 42}, demoTable(), time.Second)
	if full.ConfigDigest == rec.ConfigDigest {
		t.Error("quick and full runs share a config digest")
	}

	dir := t.TempDir()
	if err := WriteBenchRecord(dir, rec); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(filepath.Join(dir, "BENCH_demo.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back BenchRecord
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("invalid record JSON: %v\n%s", err, buf)
	}
	if back.Experiment != rec.Experiment || back.ConfigDigest != rec.ConfigDigest ||
		back.Metrics["mean:ms"] != rec.Metrics["mean:ms"] {
		t.Errorf("round trip changed the record:\n%+v\nvs\n%+v", back, rec)
	}
}
