package experiments

import (
	"fmt"
	"time"

	"finelb/internal/core"
	"finelb/internal/membership"
	"finelb/internal/simcluster"
	"finelb/internal/stats"
	"finelb/internal/substrate"
	"finelb/internal/workload"
)

// elasticServers is the initial pool of the elastic experiment; the
// autoscaler may shrink to elasticMin overnight and grow to elasticMax
// at the diurnal peak.
const (
	elasticServers = 4
	elasticMin     = 2
	elasticMax     = 10
	elasticRho     = 0.7 // average per-server load at the *initial* pool size
	elasticAmp     = 0.8 // diurnal swing: trough 0.2x, peak 1.8x the average rate
)

// elasticScaler builds the load-threshold policy for a run that lasts
// runSeconds. Cooldowns and the sampling interval scale with the run
// (one diurnal period) so the sim's long day and the prototype's
// compressed one produce the same number of scaling opportunities.
func elasticScaler(runSeconds float64) *membership.AutoscalerConfig {
	period := time.Duration(runSeconds * float64(time.Second))
	return &membership.AutoscalerConfig{
		Min: elasticMin, Max: elasticMax,
		ScaleUpAt:         3,
		ScaleDownAt:       0.75,
		ScaleUpCooldown:   period / 24,
		ScaleDownCooldown: period / 12,
		Interval:          period / 240,
	}
}

// Elastic demonstrates the membership seam end to end: an open-loop
// diurnal arrival trace (trough at the start, peak mid-run) drives the
// shared load-threshold autoscaler, which grows the pool for the day
// and shrinks it back for the night. Each cell runs the same trace with
// a fixed pool and with the autoscaler; the fixed pool at the initial
// size is overloaded through the peak, while the elastic pool tracks
// the load at the cost of a bounded number of membership changes.
func Elastic(o Options) (*Table, error) {
	t := &Table{
		ID:    "elastic",
		Title: fmt.Sprintf("Elastic membership: autoscaler on a diurnal trace (%d servers fixed vs [%d,%d] elastic)", elasticServers, elasticMin, elasticMax),
		Header: []string{"Substrate", "Policy", "Mode", "Mean(ms)", "P95(ms)",
			"FinalPool", "PeakPool", "Joins", "Drains", "Lost"},
	}
	base := workload.PoissonExp(workload.PoissonExpServiceMean)
	rate := float64(elasticServers) * elasticRho / base.Service.Mean()

	simSeconds := pick(o, 120.0, 30.0)
	protoSeconds := pick(o, 10.0, 4.0)
	matrix := []struct {
		sub      substrate.Substrate
		seconds  float64
		dirTTL   time.Duration
		policies []core.Policy
	}{
		{substrate.Sim{}, simSeconds, 0,
			[]core.Policy{core.NewRandom(), core.NewPollDiscard(2, DiscardThreshold)}},
		{substrate.Proto{Transport: o.Transport}, protoSeconds, degradedTTL,
			[]core.Policy{core.NewPollDiscard(2, DiscardThreshold)}},
	}
	for _, m := range matrix {
		accesses := int(rate * m.seconds)
		// One diurnal period spans the whole run; apply after ScaledTo so
		// the average rate still matches the demand target.
		w := base.ScaledTo(elasticServers, elasticRho).WithDiurnalArrivals(elasticAmp, m.seconds)
		for _, p := range m.policies {
			run := func(as *membership.AutoscalerConfig) (*substrate.RunResult, error) {
				return m.sub.Run(substrate.RunSpec{
					Servers: elasticServers, Clients: 6,
					Workload: w, Policy: p,
					Accesses: accesses, Seed: o.Seed,
					Autoscaler: as, DirTTL: m.dirTTL,
				})
			}
			for _, mode := range []string{"fixed", "auto"} {
				var as *membership.AutoscalerConfig
				if mode == "auto" {
					as = elasticScaler(m.seconds)
				}
				res, err := run(as)
				if err != nil {
					return nil, err
				}
				o.record("elastic", p.String()+" "+mode, m.sub.Name(), res.Metrics)
				t.AddRow(m.sub.Name(), p.String(), mode,
					res.MeanResponse*1e3, res.P95Response*1e3,
					res.FinalPool, res.PeakPool, res.Joins, res.Drains, res.Lost)
				o.progress("elastic: %s %s %s done (mean %.4g ms, pool %d..%d)",
					m.sub.Name(), p, mode, res.MeanResponse*1e3, res.FinalPool, res.PeakPool)
			}
		}
	}
	t.AddNote("diurnal trace: sinusoidal arrival rate, trough %.1fx to peak %.1fx the average over one run-long period; the fixed pool of %d is overloaded at the peak (%.0f%% busy)",
		1-elasticAmp, 1+elasticAmp, elasticServers, 100*elasticRho*(1+elasticAmp))
	t.AddNote("auto rows: pool grows toward the peak and shrinks after it; planned drains lose no accepted work (Lost counts unanswered accesses)")
	return t, nil
}

// hetChurnFactors is the default heterogeneous cluster of the hetchurn
// sweep: 4 fast servers at 3.25x and 12 slow ones at 0.25x, preserving
// the homogeneous total capacity (4*3.25 + 12*0.25 = 16).
func hetChurnFactors() []float64 {
	sf := make([]float64, 16)
	for i := range sf {
		if i < 4 {
			sf[i] = 3.25
		} else {
			sf[i] = 0.25
		}
	}
	return sf
}

// HetChurn probes load-index-driven balancing on a heterogeneous
// cluster (simulation only; server speed is a simulator concept). Total
// capacity matches the homogeneous baseline, but 0.25x servers make the
// paper's un-normalized load index misleading, and the Luo/Zubeldia
// instability appears at small poll sizes: with 12 of 16 servers slow,
// a 2-sample often contains only slow servers, so placement alone
// forces more demand onto them than they can serve — the cluster is
// unstable even though capacity is ample. Large poll sizes fix the
// placement but pay for it in poll latency (the run models the §3.2
// variable poll cost the prototype measures), so on a fine-grain
// service the mean-response row is non-monotone in poll size, with an
// interior optimum. The churn scenario drains one fast node mid-run and
// rejoins it later, shrinking the capacity margin the het cluster has
// to absorb mistakes with.
func HetChurn(o Options) (*Table, error) {
	const servers = 16
	const rho = 0.72
	accesses := pick(o, 120000, 20000)
	w := workload.FineGrain().ScaledTo(servers, rho)
	runSeconds := float64(accesses) * w.Service.Mean() / (float64(servers) * rho)
	// The §3.2-style poll-cost tail: each poll round trip draws an extra
	// exponential delay, so a d-poll waits for the max of d draws (or
	// the discard threshold). This is what makes information expensive.
	jitter := stats.Exponential{MeanValue: 3e-3}

	sf := o.SpeedFactors
	hetName := "het 4x3.25,12x0.25"
	if sf == nil {
		sf = hetChurnFactors()
	} else {
		hetName = "het (custom)"
	}
	// Drain fast node 0 for the middle third of the run: capacity drops
	// from 16x to 12.75x base (demand 11.52x), so the het cluster rides
	// out the outage near 90% busy.
	churn := &membership.Schedule{Seed: o.Seed, Events: []membership.Event{
		{At: secs(0.30 * runSeconds), Node: 0, Kind: membership.Drain},
		{At: secs(0.35 * runSeconds), Node: 0, Kind: membership.Leave},
		{At: secs(0.65 * runSeconds), Node: 0, Kind: membership.Join},
	}}

	policies := []struct {
		name string
		p    core.Policy
	}{
		{"RANDOM(ms)", core.NewRandom()},
		{"POLL-2(ms)", core.NewPollDiscard(2, DiscardThreshold)},
		{"POLL-4(ms)", core.NewPollDiscard(4, DiscardThreshold)},
		{"POLL-8(ms)", core.NewPollDiscard(8, DiscardThreshold)},
		{"POLL-16(ms)", core.NewPollDiscard(16, DiscardThreshold)},
	}
	t := &Table{
		ID:    "hetchurn",
		Title: fmt.Sprintf("Heterogeneous cluster + churn: poll-size sweep, Fine-Grain at %.0f%% busy, 16 servers (simulation)", rho*100),
		Header: append([]string{"Scenario"}, func() []string {
			h := make([]string, len(policies))
			for i, p := range policies {
				h[i] = p.name
			}
			return h
		}()...),
	}
	scenarios := []struct {
		name    string
		factors []float64
		churn   *membership.Schedule
	}{
		{"homogeneous", nil, nil},
		{hetName, sf, nil},
		{hetName + " + churn", sf, churn},
	}
	for _, sc := range scenarios {
		row := []any{sc.name}
		for _, p := range policies {
			res, err := simcluster.Run(simcluster.Config{
				Servers: servers, Workload: w, Policy: p.p,
				Accesses: accesses, Seed: o.Seed,
				SpeedFactors: sc.factors, Membership: sc.churn,
				PollJitter: jitter,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, res.MeanResponse()*1e3)
			o.record("hetchurn", sc.name+" "+p.p.String(), "sim", res.Metrics)
			o.progress("hetchurn: %s %s done (mean %.4g ms)", sc.name, p.p, res.MeanResponse()*1e3)
		}
		t.AddRow(row...)
	}
	t.AddNote("total capacity is identical in every scenario; only its distribution (and mid-run availability) changes")
	t.AddNote("het rows: a 2-poll samples only 0.25x servers %.0f%% of the time, forcing more demand onto them than they can serve (unstable; grows with run length); the poll-latency tail makes d=16 slower than the interior optimum", 100*(12.0/16)*(11.0/15))
	return t, nil
}

// secs converts seconds to a duration.
func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
