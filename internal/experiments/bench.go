package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// BenchRecord is one machine-readable benchmark data point: enough to
// plot an experiment's performance trajectory across commits without
// parsing rendered tables. Records land as BENCH_<experiment>.json.
type BenchRecord struct {
	// Experiment is the registry id ("figure4", "degraded", ...).
	Experiment string `json:"experiment"`
	// ConfigDigest fingerprints the run configuration (experiment id,
	// scale, and column schema) so trajectory points are only compared
	// when the configuration matches; the seed is reported separately.
	ConfigDigest string `json:"config_digest"`
	Seed         uint64 `json:"seed"`
	Quick        bool   `json:"quick"`
	// WallSeconds is the experiment's wall-clock running time.
	WallSeconds float64 `json:"wall_seconds"`
	// Metrics holds the per-numeric-column means of the experiment's
	// table, keyed "mean:<column>", plus the row count under "rows".
	Metrics map[string]float64 `json:"metrics"`
}

// NewBenchRecord summarizes one completed experiment run.
func NewBenchRecord(id string, o Options, tbl *Table, wall time.Duration) BenchRecord {
	rec := BenchRecord{
		Experiment:  id,
		Seed:        o.Seed,
		Quick:       o.Quick,
		WallSeconds: wall.Seconds(),
		Metrics:     map[string]float64{"rows": float64(len(tbl.Rows))},
	}
	for c, h := range tbl.Header {
		sum, n := 0.0, 0
		for _, row := range tbl.Rows {
			if c >= len(row) {
				continue
			}
			if f, ok := row[c].Float(); ok {
				sum += f
				n++
			}
		}
		if n > 0 {
			rec.Metrics["mean:"+h] = sum / float64(n)
		}
	}
	d := sha256.Sum256([]byte(fmt.Sprintf("%s|quick=%t|servers=%d|accesses=%d|header=%v",
		id, o.Quick, o.Servers, o.Accesses, tbl.Header)))
	rec.ConfigDigest = hex.EncodeToString(d[:8])
	return rec
}

// WriteBenchRecord writes rec to dir/BENCH_<experiment>.json, creating
// dir if needed.
func WriteBenchRecord(dir string, rec BenchRecord) error {
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := filepath.Join(dir, "BENCH_"+rec.Experiment+".json")
	return os.WriteFile(name, append(buf, '\n'), 0o644)
}
