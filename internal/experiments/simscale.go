package experiments

import (
	"time"

	"finelb/internal/core"
	"finelb/internal/substrate"
	"finelb/internal/workload"
)

// SimScale is the hot-path throughput benchmark behind the O(10k)
// scale-out (DESIGN.md §10): one simulator run per policy at a cluster
// size two orders of magnitude beyond the paper's 16 servers, reporting
// raw event throughput (events/sec) next to the usual response-time
// summary. Its BENCH_simscale.json record is the baseline CI compares
// across commits — a >20% events/sec drop fails the build.
//
// Scale is adjustable: Options.Servers/Accesses (cmd/repro
// -servers/-accesses) override the defaults of 10 000 servers and
// 10 000 000 accesses (-quick: 200 servers, 30 000 accesses).
func SimScale(o Options) (*Table, error) {
	servers := o.Servers
	if servers <= 0 {
		servers = pick(o, 10000, 200)
	}
	accesses := o.Accesses
	if accesses <= 0 {
		accesses = pick(o, 10000000, 30000)
	}
	const load = 0.8
	w := workload.PoissonExp(workload.PoissonExpServiceMean).ScaledTo(servers, load)

	policies := []core.Policy{
		core.NewRandom(),
		core.NewPoll(2),
		core.NewPoll(8),
		core.NewIdeal(),
	}

	sub := substrate.Sim{}
	t := &Table{
		ID:    "simscale",
		Title: "Simulator hot-path throughput at scale",
		Header: []string{"Policy", "Servers", "Accesses", "Events",
			"Wall s", "events/sec", "Mean ms", "p99 ms"},
	}
	for _, p := range policies {
		start := time.Now()
		res, err := sub.Run(substrate.RunSpec{
			Servers:  servers,
			Workload: w,
			Policy:   p,
			Accesses: accesses,
			Seed:     o.Seed,
		})
		if err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds()
		eps := float64(res.EventsFired) / wall
		t.AddRow(p.String(), servers, accesses, int64(res.EventsFired),
			wall, eps, res.MeanResponse*1e3, res.P99Response*1e3)
		o.record("simscale", p.String(), sub.Name(), res.Metrics)
		o.progress("simscale: %s done (%d events, %.3g events/sec)",
			p, res.EventsFired, eps)
	}
	t.AddNote("busy %.0f%%, poisson/exp workload; events/sec is wall-clock event throughput", load*100)
	return t, nil
}
