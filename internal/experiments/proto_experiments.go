package experiments

import (
	"fmt"
	"time"

	"finelb/internal/cluster"
	"finelb/internal/core"
	"finelb/internal/substrate"
	"finelb/internal/transport"
	"finelb/internal/workload"
)

// DiscardThreshold is the slow-poll discard threshold of §3.2
// (restored from OCR; see DESIGN.md §4).
const DiscardThreshold = 10 * time.Millisecond

// protoTransport resolves o.Transport for experiments that drive
// cluster.RunExperiment directly: nil lets the cluster layer default to
// real sockets, "mem" builds a seeded in-memory fabric.
func protoTransport(o Options, seed uint64) (transport.Transport, error) {
	switch o.Transport {
	case "", "net":
		return nil, nil
	case "mem":
		return transport.NewMem(transport.MemConfig{Seed: seed}), nil
	default:
		return nil, fmt.Errorf("experiments: unknown transport %q", o.Transport)
	}
}

// protoAccesses sizes a prototype cell so it spans about targetSeconds
// of wall time at the cell's arrival rate.
func protoAccesses(w workload.Workload, servers int, rho, targetSeconds float64) int {
	rate := float64(servers) * rho / w.Service.Mean()
	n := int(rate * targetSeconds)
	if n < 400 {
		n = 400
	}
	if n > 40000 {
		n = 40000
	}
	return n
}

// Figure6 regenerates Figure 6: the poll-size sweep on the prototype —
// real UDP load inquiries, real TCP accesses, the §3.2 contention model
// active — for 16 servers across load levels. Same driver as Figure 4,
// different substrate.
func Figure6(o Options) (*Table, error) {
	seconds := pick(o, 8.0, 2.2)
	t, err := pollSizeSweep(o, substrate.Proto{Transport: o.Transport}, "figure6",
		"Impact of poll size, prototype with 16 servers (real sockets), mean response time in ms",
		pick(o, core.PaperFigurePolicies(), []core.Policy{
			core.NewRandom(), core.NewPoll(2), core.NewPoll(8), core.NewIdeal(),
		}),
		pick(o, paperLoads, []float64{0.9}),
		func(w workload.Workload, rho float64) int {
			return protoAccesses(w, sweepServers, rho, seconds)
		})
	if err != nil {
		return nil, err
	}
	t.AddNote("results are without discarding slow polls, as in the paper's Figure 6")
	return t, nil
}

// Figure6Mem reruns the Figure 6 poll-size sweep on the in-memory
// fabric: the same prototype protocol code with no kernel sockets. It
// sanity-checks that the poll-size ordering survives the transport
// swap, and gives CI a socket-free prototype figure.
//
// The sweep runs at real time (TimeScale 1): the Fine-Grain trace's
// 2.22 ms mean service time already sits at the floor where sleep and
// scheduler overshoot are a meaningful fraction of a service, so
// compressing time further inflates effective utilization past 1 and
// collapses the poll-vs-random ordering.
func Figure6Mem(o Options) (*Table, error) {
	seconds := pick(o, 8.0, 2.2)
	t, err := pollSizeSweep(o,
		substrate.Proto{Transport: "mem"}, "figure6mem",
		"Impact of poll size, prototype with 16 servers (in-memory fabric), mean response time in ms",
		pick(o, core.PaperFigurePolicies(), []core.Policy{
			core.NewRandom(), core.NewPoll(2), core.NewPoll(8), core.NewIdeal(),
		}),
		pick(o, paperLoads, []float64{0.9}),
		func(w workload.Workload, rho float64) int {
			return protoAccesses(w, sweepServers, rho, seconds)
		})
	if err != nil {
		return nil, err
	}
	t.AddNote("same sweep as figure6 over transport.Mem: no kernel sockets, so differences against figure6 isolate the transport's share of poll latency")
	return t, nil
}

// Table2 regenerates Table 2: the improvement from discarding
// slow-responding polls, with poll size 3 at 90% busy.
func Table2(o Options) (*Table, error) {
	servers := 16
	seconds := pick(o, 12.0, 1.5)
	t := &Table{
		ID:    "table2",
		Title: "Performance improvement of discarding slow-responding polls (poll size 3, 90% busy)",
		Header: []string{"Workload",
			"Original(ms)", "OrigPoll(ms)",
			"Optimized(ms)", "OptPoll(ms)",
			"Improvement", "ImprovementExclPolling"},
	}
	for _, w := range workload.Paper() {
		scaled := w.ScaledTo(servers, 0.9)
		accesses := protoAccesses(w, servers, 0.9, seconds)
		run := func(p core.Policy) (*cluster.ExperimentResult, error) {
			// A fresh fabric per run mirrors substrate.Proto: no state
			// leaks between the original and optimized measurements.
			tr, err := protoTransport(o, o.Seed)
			if err != nil {
				return nil, err
			}
			return cluster.RunExperiment(cluster.ExperimentConfig{
				Servers: servers, Clients: 6,
				Workload: scaled, Policy: p, Transport: tr,
				Accesses: accesses, Seed: o.Seed,
			})
		}
		orig, err := run(core.NewPoll(3))
		if err != nil {
			return nil, err
		}
		opt, err := run(core.NewPollDiscard(3, DiscardThreshold))
		if err != nil {
			return nil, err
		}
		imp := 1 - opt.MeanResponse()/orig.MeanResponse()
		// "Improvement excluding polling time" compares response times
		// with each run's mean polling time subtracted (Table 2).
		origEx := orig.MeanResponse() - orig.PollTime.Mean()
		optEx := opt.MeanResponse() - opt.PollTime.Mean()
		impEx := 1 - optEx/origEx
		t.AddRow(w.Name,
			orig.MeanResponse()*1e3, orig.PollTime.Mean()*1e3,
			opt.MeanResponse()*1e3, opt.PollTime.Mean()*1e3,
			fmt.Sprintf("%.1f%%", imp*100), fmt.Sprintf("%.1f%%", impEx*100))
		o.progress("table2: %s done (%.1f%% improvement)", w.Name, imp*100)
	}
	t.AddNote("paper: up to 8.3%% improvement on the Fine-Grain trace; slight degradation (-0.4%%) on Medium-Grain from lost load information")
	return t, nil
}

// PollProfile regenerates the §3.2 poll-latency profile (P1): the
// fraction of polls not completed within 10 ms and 20 ms under poll
// size 3 at 90% busy — the numbers that motivate the discard threshold.
func PollProfile(o Options) (*Table, error) {
	servers := 16
	seconds := pick(o, 12.0, 1.5)
	workloads := pick(o, workload.Paper(),
		[]workload.Workload{workload.PoissonExp(workload.PoissonExpServiceMean)})
	t := &Table{
		ID:     "pollprofile",
		Title:  "P1: poll completion profile, poll size 3, 90% busy (no discard)",
		Header: []string{"Workload", "MeanPoll(ms)", ">10ms", ">20ms", "Polls"},
	}
	for _, w := range workloads {
		tr, err := protoTransport(o, o.Seed)
		if err != nil {
			return nil, err
		}
		res, err := cluster.RunExperiment(cluster.ExperimentConfig{
			Servers: servers, Clients: 6,
			Workload: w.ScaledTo(servers, 0.9), Policy: core.NewPoll(3),
			Transport: tr,
			Accesses:  protoAccesses(w, servers, 0.9, seconds),
			Seed:      o.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(w.Name,
			res.PollRTT.Mean()*1e3,
			fmt.Sprintf("%.1f%%", res.PollRTT.FracAbove(0.010)*100),
			fmt.Sprintf("%.1f%%", res.PollRTT.FracAbove(0.020)*100),
			res.PollRTT.N())
		o.progress("pollprofile: %s done", w.Name)
	}
	t.AddNote("paper profile: 8.1%% of polls exceed 10 ms and 5.6%% exceed 20 ms; the contention model is calibrated to this")
	return t, nil
}

// Failover exercises the availability story (§3.1): a node crashes
// mid-run; soft state expires; clients continue on the survivors.
func Failover(o Options) (*Table, error) {
	t := &Table{
		ID:     "failover",
		Title:  "Soft-state failover: accesses succeeding before/after killing one of 4 nodes",
		Header: []string{"Phase", "Accesses", "Errors"},
	}
	dir := cluster.NewDirectory(300 * time.Millisecond)
	// Every node and the client must share one fabric, or they could
	// not reach each other's addresses.
	tr, err := protoTransport(o, o.Seed)
	if err != nil {
		return nil, err
	}
	var nodes []*cluster.Node
	for i := 0; i < 4; i++ {
		n, err := cluster.StartNode(cluster.NodeConfig{
			ID: i, Service: "svc", Directory: dir, PublishInterval: 50 * time.Millisecond,
			SlowProb: -1, Seed: o.Seed + uint64(i), Transport: tr,
		})
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	c, err := cluster.NewClient(cluster.ClientConfig{
		Directory: dir, Service: "svc", Transport: tr,
		Policy:          core.NewPollDiscard(2, 50*time.Millisecond),
		RefreshInterval: 50 * time.Millisecond, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	phase := func(name string, n int) {
		errs := 0
		for i := 0; i < n; i++ {
			if _, err := c.Access(500, nil); err != nil {
				errs++
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.AddRow(name, n, errs)
		o.progress("failover: %s done (%d errors)", name, errs)
	}
	n := pick(o, 300, 80)
	phase("all nodes up", n)
	nodes[0].Close()
	// Wait out the soft-state TTL plus a client refresh.
	time.Sleep(500 * time.Millisecond)
	phase("after crash + expiry", n)
	t.AddNote("transient errors are possible between the crash and soft-state expiry; none should remain afterwards")
	return t, nil
}
