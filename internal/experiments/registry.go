package experiments

import (
	"fmt"
	"sort"
)

// Runner is one experiment driver.
type Runner func(Options) (*Table, error)

// registryEntry pairs a runner with its one-line description.
type registryEntry struct {
	run  Runner
	desc string
}

var registry = map[string]registryEntry{
	"table1":       {Table1, "Table 1: statistics of evaluation traces"},
	"figure2":      {Figure2, "Figure 2: load-index inaccuracy vs dissemination delay"},
	"figure3":      {Figure3, "Figure 3: broadcast frequency sweep (simulation)"},
	"figure4":      {Figure4, "Figure 4: poll-size sweep (simulation)"},
	"figure6":      {Figure6, "Figure 6: poll-size sweep (prototype, real sockets)"},
	"figure6mem":   {Figure6Mem, "Figure 6 on the in-memory fabric (prototype, no sockets)"},
	"table2":       {Table2, "Table 2: discarding slow-responding polls"},
	"upperbound":   {Upperbound, "E1: Equation 1 staleness bound validation"},
	"pollprofile":  {PollProfile, "P1: poll completion-time profile (section 3.2)"},
	"flocking":     {Flocking, "A1: broadcast flocking-effect ablation"},
	"syncablation": {SyncAblation, "A2: fixed vs jittered broadcast intervals"},
	"messages":     {Messages, "A3: message-overhead scaling (section 2.4)"},
	"failover":     {Failover, "Soft-state failover demonstration"},
	"leastconn":    {LeastConn, "A4: client-local least-connections comparison"},
	"burstiness":   {Burstiness, "A5: arrival burstiness sweep"},
	"degraded":     {Degraded, "Degraded mode: crashes + poll loss on both substrates"},
	"elastic":      {Elastic, "Elastic membership: autoscaler on a diurnal trace, both substrates"},
	"hetchurn":     {HetChurn, "Heterogeneous cluster + churn: non-monotone poll-size row (simulation)"},
	"gateway":      {Gateway, "Gateway: HTTP front door end to end (admission, rate limiting, sticky routing)"},
	"simscale":     {SimScale, "SC1: simulator hot-path throughput at O(10k) servers (events/sec)"},
	"pollpath":     {PollPath, "PP1: prototype poll hot-path throughput on the mem fabric (polls/sec)"},
}

// Get looks up an experiment by id.
func Get(id string) (Runner, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (try one of %v)", id, IDs())
	}
	return e.run, nil
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of an experiment id, or an
// error for ids the registry does not know.
func Describe(id string) (string, error) {
	e, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (try one of %v)", id, IDs())
	}
	return e.desc, nil
}
