package experiments

import (
	"encoding/json"
	"io"
	"sync"

	"finelb/internal/obs"
)

// MetricsRecord labels one end-of-run metrics snapshot with the
// experiment cell that produced it, so `repro -metrics FILE` can dump
// the full obs catalog for every cell of a run next to the table it
// rendered.
type MetricsRecord struct {
	Experiment string        `json:"experiment"`
	Cell       string        `json:"cell"`
	Substrate  string        `json:"substrate"`
	Metrics    *obs.Snapshot `json:"metrics"`
}

// MetricsLog is an optional sink for per-cell metrics snapshots,
// attached via Options.Metrics. It is safe for concurrent use; records
// are kept in completion order.
type MetricsLog struct {
	mu   sync.Mutex
	recs []MetricsRecord
}

func (l *MetricsLog) add(rec MetricsRecord) {
	l.mu.Lock()
	l.recs = append(l.recs, rec)
	l.mu.Unlock()
}

// Len reports how many records have been collected.
func (l *MetricsLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Records returns a copy of the collected records.
func (l *MetricsLog) Records() []MetricsRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]MetricsRecord, len(l.recs))
	copy(out, l.recs)
	return out
}

// WriteJSON emits the collected records as one indented JSON array
// (always an array, even when empty).
func (l *MetricsLog) WriteJSON(w io.Writer) error {
	recs := l.Records()
	if recs == nil {
		recs = []MetricsRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// record logs one run's snapshot into o.Metrics. A nil sink or a nil
// snapshot (a substrate predating the obs catalog) is a no-op, so
// drivers call this unconditionally after every substrate run.
func (o Options) record(experiment, cell, substrate string, snap *obs.Snapshot) {
	if o.Metrics == nil || snap == nil {
		return
	}
	o.Metrics.add(MetricsRecord{
		Experiment: experiment,
		Cell:       cell,
		Substrate:  substrate,
		Metrics:    snap,
	})
}
