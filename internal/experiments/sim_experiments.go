package experiments

import (
	"fmt"
	"time"

	"finelb/internal/core"
	"finelb/internal/queueing"
	"finelb/internal/simcluster"
	"finelb/internal/substrate"
	"finelb/internal/workload"
)

// paperLoads are the server load levels of Figures 4 and 6.
var paperLoads = []float64{0.5, 0.6, 0.7, 0.8, 0.9}

// Table1 regenerates Table 1: the statistics of the evaluation
// workloads, comparing the synthetic traces against the published
// moments.
func Table1(o Options) (*Table, error) {
	n := pick(o, 400000, 40000)
	t := &Table{
		ID:    "table1",
		Title: "Statistics of evaluation traces (synthetic, matched to published moments)",
		Header: []string{"Workload", "Accesses",
			"ArrivalMean(ms)", "ArrivalStd(ms)", "ServiceMean(ms)", "ServiceStd(ms)",
			"PaperServiceMean(ms)", "PaperServiceStd(ms)", "PaperArrivalStd(ms)"},
	}
	type published struct{ svcMean, svcStd, arrStd float64 }
	pub := map[string]published{
		"Medium-Grain trace": {workload.MediumGrainServiceMean, workload.MediumGrainServiceStd, workload.MediumGrainArrivalStd},
		"Fine-Grain trace":   {workload.FineGrainServiceMean, workload.FineGrainServiceStd, workload.FineGrainArrivalStd},
	}
	for i, w := range []workload.Workload{workload.MediumGrain(), workload.FineGrain()} {
		tr := w.Generate(n, o.Seed+uint64(i))
		st := tr.Stats()
		p := pub[w.Name]
		t.AddRow(w.Name, st.Count,
			st.ArrivalMean*1e3, st.ArrivalStd*1e3, st.ServiceMean*1e3, st.ServiceStd*1e3,
			p.svcMean*1e3, p.svcStd*1e3, p.arrStd*1e3)
		o.progress("table1: %s done", w.Name)
	}
	t.AddNote("native arrival means are reconstructed with CV=%.1f (DESIGN.md §4); arrivals are rescaled per experiment anyway", workload.TraceArrivalCV)
	return t, nil
}

// Figure2 regenerates Figure 2: load-index inaccuracy versus the
// load-information dissemination delay (normalized to mean service
// time), for one server at 90% and 50% busy, with the Equation 1 upper
// bound for Poisson/Exp.
func Figure2(o Options) (*Table, error) {
	delays := []float64{0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100}
	accesses := pick(o, 300000, 40000)
	t := &Table{
		ID:    "figure2",
		Title: "Impact of delay on load index inaccuracy, 1 server (simulation)",
		Header: append([]string{"Busy", "Workload"}, func() []string {
			h := make([]string, len(delays))
			for i, d := range delays {
				h[i] = fmt.Sprintf("d=%gx", d)
			}
			return append(h, "Eq1-bound")
		}()...),
	}
	for _, busy := range []float64{0.9, 0.5} {
		for _, w := range workload.Paper() {
			scaled := w.ScaledTo(1, busy)
			res, err := simcluster.Run(simcluster.Config{
				Servers: 1, Workload: scaled, Policy: core.NewRandom(),
				Accesses: accesses, Seed: o.Seed, RecordQueueSeries: true,
			})
			if err != nil {
				return nil, err
			}
			qs := res.QueueSeries[0]
			s := w.Service.Mean()
			warm := res.SimDuration * 0.05
			row := []any{fmt.Sprintf("%.0f%%", busy*100), w.Name}
			for _, d := range delays {
				row = append(row, qs.Inaccuracy(d*s, warm, res.SimDuration, s/2))
			}
			if w.Name == "Poisson/Exp" {
				row = append(row, queueing.StalenessUpperBound(busy))
			} else {
				row = append(row, "-")
			}
			t.AddRow(row...)
			o.progress("figure2: busy=%.0f%% %s done", busy*100, w.Name)
		}
	}
	t.AddNote("paper: inaccuracy reaches the upper bound (1.33 at 50%%) quickly; at 90%% the error approaches ~3 around delay 10x")
	return t, nil
}

// Figure3 regenerates Figure 3: broadcast policy mean response time
// (normalized to IDEAL) versus mean broadcast interval, 16 servers.
func Figure3(o Options) (*Table, error) {
	intervalsMs := pick(o,
		[]float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000},
		[]float64{2, 20, 200, 1000})
	accesses := pick(o, 120000, 20000)
	t := &Table{
		ID:    "figure3",
		Title: "Impact of broadcast frequency with 16 servers (simulation); mean response normalized to IDEAL",
		Header: append([]string{"Busy", "Workload", "IDEAL(ms)"}, func() []string {
			h := make([]string, len(intervalsMs))
			for i, ms := range intervalsMs {
				h[i] = fmt.Sprintf("%gms", ms)
			}
			return h
		}()...),
	}
	for _, busy := range []float64{0.9, 0.5} {
		for _, w := range workload.Paper() {
			scaled := w.ScaledTo(16, busy)
			ideal, err := simcluster.Run(simcluster.Config{
				Servers: 16, Workload: scaled, Policy: core.NewIdeal(),
				Accesses: accesses, Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			row := []any{fmt.Sprintf("%.0f%%", busy*100), w.Name, ideal.MeanResponse() * 1e3}
			for _, ms := range intervalsMs {
				res, err := simcluster.Run(simcluster.Config{
					Servers:  16,
					Workload: scaled,
					Policy:   core.NewBroadcast(time.Duration(ms * float64(time.Millisecond))),
					Accesses: accesses, Seed: o.Seed,
				})
				if err != nil {
					return nil, err
				}
				row = append(row, res.MeanResponse()/ideal.MeanResponse())
				o.progress("figure3: busy=%.0f%% %s interval=%gms done", busy*100, w.Name, ms)
			}
			t.AddRow(row...)
		}
	}
	t.AddNote("paper: ~1s intervals are an order of magnitude slower than IDEAL for fine-grain workloads at 90%% busy")
	return t, nil
}

// Figure4 regenerates Figure 4: the poll-size sweep in simulation —
// mean response time (ms) for random, poll sizes 2/3/4/8, and IDEAL on
// 16 servers across server load levels, for all three workloads.
func Figure4(o Options) (*Table, error) {
	accesses := pick(o, 120000, 15000)
	t, err := pollSizeSweep(o, substrate.Sim{}, "figure4",
		"Impact of poll size with 16 servers (simulation), mean response time in ms",
		core.PaperFigurePolicies(),
		pick(o, paperLoads, []float64{0.5, 0.9}),
		func(workload.Workload, float64) int { return accesses })
	if err != nil {
		return nil, err
	}
	t.AddNote("paper: poll size 2 performs close to IDEAL; larger poll sizes add little (and, on the prototype, hurt fine-grain workloads)")
	return t, nil
}

// Upperbound regenerates the Equation 1 validation (E1): the closed
// form 2rho/(1-rho^2) against direct series summation and the simulated
// large-delay inaccuracy.
func Upperbound(o Options) (*Table, error) {
	accesses := pick(o, 200000, 40000)
	t := &Table{
		ID:     "upperbound",
		Title:  "Equation 1: staleness upper bound 2p/(1-p^2) for Poisson/Exp",
		Header: []string{"Busy", "ClosedForm", "SeriesSum", "Simulated(d=100x)"},
	}
	for _, rho := range []float64{0.3, 0.5, 0.7, 0.9} {
		w := workload.PoissonExp(workload.PoissonExpServiceMean).ScaledTo(1, rho)
		res, err := simcluster.Run(simcluster.Config{
			Servers: 1, Workload: w, Policy: core.NewRandom(),
			Accesses: accesses, Seed: o.Seed, RecordQueueSeries: true,
		})
		if err != nil {
			return nil, err
		}
		qs := res.QueueSeries[0]
		s := workload.PoissonExpServiceMean
		sim := qs.Inaccuracy(100*s, res.SimDuration*0.05, res.SimDuration, s/2)
		t.AddRow(fmt.Sprintf("%.0f%%", rho*100),
			queueing.StalenessUpperBound(rho),
			queueing.StalenessUpperBoundSeries(rho, 1e-10),
			sim)
		o.progress("upperbound: rho=%.1f done", rho)
	}
	t.AddNote("the paper quotes the 50%% bound as 1.33")
	return t, nil
}

// Flocking runs ablation A1: the broadcast policy with and without
// client-local load-index correction, isolating the flocking effect the
// paper blames for broadcast's poor staleness behaviour (§2.2).
func Flocking(o Options) (*Table, error) {
	accesses := pick(o, 100000, 20000)
	t := &Table{
		ID:     "flocking",
		Title:  "A1: flocking effect — broadcast with/without local correction (16 servers, 90% busy, ms)",
		Header: []string{"Workload", "Interval", "Plain(ms)", "LocalCorrection(ms)", "Improvement"},
	}
	for _, w := range workload.Paper() {
		for _, interval := range []time.Duration{50 * time.Millisecond, 500 * time.Millisecond} {
			scaled := w.ScaledTo(16, 0.9)
			base := core.NewBroadcast(interval)
			fixed := base
			fixed.LocalCorrection = true
			plain, err := simcluster.Run(simcluster.Config{
				Servers: 16, Workload: scaled, Policy: base, Accesses: accesses, Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			corrected, err := simcluster.Run(simcluster.Config{
				Servers: 16, Workload: scaled, Policy: fixed, Accesses: accesses, Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			imp := 1 - corrected.MeanResponse()/plain.MeanResponse()
			t.AddRow(w.Name, interval.String(),
				plain.MeanResponse()*1e3, corrected.MeanResponse()*1e3,
				fmt.Sprintf("%.1f%%", imp*100))
			o.progress("flocking: %s %v done", w.Name, interval)
		}
	}
	t.AddNote("the paper identifies flocking — all clients rushing the lowest perceived queue between broadcasts — as a major amplifier of staleness")
	return t, nil
}

// SyncAblation runs ablation A2: fixed versus jittered broadcast
// intervals (the paper requires non-fixed intervals to avoid
// self-synchronization, citing Floyd-Jacobson).
func SyncAblation(o Options) (*Table, error) {
	accesses := pick(o, 100000, 20000)
	t := &Table{
		ID:     "syncablation",
		Title:  "A2: broadcast interval jitter — fixed vs jittered (Poisson/Exp 50ms, 16 servers, 90% busy)",
		Header: []string{"Interval", "Fixed(ms)", "Jittered(ms)"},
	}
	w := workload.PoissonExp(workload.PoissonExpServiceMean).ScaledTo(16, 0.9)
	for _, interval := range []time.Duration{20 * time.Millisecond, 100 * time.Millisecond, 500 * time.Millisecond} {
		jittered := core.NewBroadcast(interval)
		fixed := jittered
		fixed.BroadcastFixed = true
		fres, err := simcluster.Run(simcluster.Config{
			Servers: 16, Workload: w, Policy: fixed, Accesses: accesses, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		jres, err := simcluster.Run(simcluster.Config{
			Servers: 16, Workload: w, Policy: jittered, Accesses: accesses, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(interval.String(), fres.MeanResponse()*1e3, jres.MeanResponse()*1e3)
		o.progress("syncablation: %v done", interval)
	}
	t.AddNote("all synchronized broadcasts arrive together, so every client's whole table goes stale at once; jitter staggers updates")
	return t, nil
}

// Messages runs ablation A3: the §2.4 scalability argument — counted
// load-information messages for broadcast versus polling as servers,
// clients, and load scale.
func Messages(o Options) (*Table, error) {
	accesses := pick(o, 60000, 15000)
	t := &Table{
		ID:     "messages",
		Title:  "A3: load-information messages per service access (simulation counters)",
		Header: []string{"Servers", "Clients", "Busy", "Broadcast(10ms)/access", "Poll3/access"},
	}
	for _, servers := range []int{8, 16, 32} {
		for _, clients := range []int{2, 6} {
			for _, busy := range []float64{0.5, 0.9} {
				w := workload.PoissonExp(workload.PoissonExpServiceMean).ScaledTo(servers, busy)
				b, err := simcluster.Run(simcluster.Config{
					Servers: servers, Clients: clients, Workload: w,
					Policy:   core.NewBroadcast(10 * time.Millisecond),
					Accesses: accesses, Seed: o.Seed,
				})
				if err != nil {
					return nil, err
				}
				p, err := simcluster.Run(simcluster.Config{
					Servers: servers, Clients: clients, Workload: w,
					Policy:   core.NewPoll(3),
					Accesses: accesses, Seed: o.Seed,
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(servers, clients, fmt.Sprintf("%.0f%%", busy*100),
					float64(b.Messages.Total())/float64(accesses),
					float64(p.Messages.Total())/float64(accesses))
				o.progress("messages: n=%d c=%d busy=%.0f%% done", servers, clients, busy*100)
			}
		}
	}
	t.AddNote("broadcast messages scale with servers x clients x time (independent of load); polling messages are a constant 2 x poll size per access")
	return t, nil
}

// LeastConn runs ablation A4: the modern message-free client-local
// least-connections rule (NGINX/HAProxy "least_conn") against the
// paper's policies. With several independent clients, local counts are
// a coarse load signal; polling sees the real queue.
func LeastConn(o Options) (*Table, error) {
	accesses := pick(o, 100000, 20000)
	policies := []core.Policy{
		core.NewRandom(), core.NewLocalLeast(), core.NewPoll(2), core.NewIdeal(),
	}
	t := &Table{
		ID:     "leastconn",
		Title:  "A4: client-local least-connections vs the paper's policies (16 servers, 90% busy, ms)",
		Header: []string{"Workload"},
	}
	for _, p := range policies {
		t.Header = append(t.Header, p.String())
	}
	for _, w := range workload.Paper() {
		row := []any{w.Name}
		for _, p := range policies {
			res, err := simcluster.Run(simcluster.Config{
				Servers: 16, Workload: w.ScaledTo(16, 0.9), Policy: p,
				Accesses: accesses, Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, res.MeanResponse()*1e3)
			o.progress("leastconn: %s %s done", w.Name, p)
		}
		t.AddRow(row...)
	}
	t.AddNote("least-conn needs no messages but each client only sees its own 1/6 of the traffic; poll 2 sees true queue lengths")
	return t, nil
}

// Burstiness runs ablation A5: how much each policy's advantage grows
// as arrivals get burstier (Markov-modulated bursts at fixed mean
// rate). Real traces are bursty beyond their marginal CV; this sweeps
// the effect directly.
func Burstiness(o Options) (*Table, error) {
	accesses := pick(o, 100000, 20000)
	bursts := pick(o, []float64{1, 2, 5, 10}, []float64{1, 2, 5})
	policies := []core.Policy{core.NewRandom(), core.NewPoll(2), core.NewIdeal()}
	t := &Table{
		ID:     "burstiness",
		Title:  "A5: arrival burstiness sweep (Fine-Grain service, 16 servers, 70% busy, ms)",
		Header: []string{"Burst"},
	}
	for _, p := range policies {
		t.Header = append(t.Header, p.String())
	}
	t.Header = append(t.Header, "random-ideal(ms)", "random/ideal")
	base := workload.FineGrain().ScaledTo(16, 0.7)
	for _, b := range bursts {
		w := base
		if b > 1 {
			w = base.WithBurstyArrivals(b, 50)
		}
		row := []any{fmt.Sprintf("x%g", b)}
		var vals []float64
		for _, p := range policies {
			res, err := simcluster.Run(simcluster.Config{
				Servers: 16, Workload: w, Policy: p,
				Accesses: accesses, Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			vals = append(vals, res.MeanResponse()*1e3)
			row = append(row, res.MeanResponse()*1e3)
			o.progress("burstiness: x%g %s done", b, p)
		}
		row = append(row, vals[0]-vals[2], vals[0]/vals[2])
		t.AddRow(row...)
	}
	t.AddNote("moderate burstiness widens the absolute random-to-ideal gap (ms); the ratio narrows because bursts inflate every policy's queueing delay, ideal included")
	t.AddNote("polling stays near ideal throughout: its load information is gathered at access time, so burstiness does not stale it")
	return t, nil
}
