package experiments

import (
	"time"

	"finelb/internal/cluster"
	"finelb/internal/core"
	"finelb/internal/gateway"
	"finelb/internal/obs"
	"finelb/internal/transport"
)

// Gateway drives the HTTP front door end to end: a self-hosted
// cluster behind internal/gateway, hit by the open-loop HTTP load
// generator with a paid tenant (sticky sessions, violation budget) and
// a free tenant whose token bucket is sized to shed most of its
// offered share. One row per routing policy; the interesting columns
// are the shed/admitted split and the tail of the admitted latency.
func Gateway(o Options) (*Table, error) {
	const servers = 8
	requests := pick(o, 4000, 600)
	rate := pick(o, 4000.0, 1500.0)
	policies := []core.Policy{core.NewRandom(), core.NewPoll(2)}
	t := &Table{
		ID:     "gateway",
		Title:  "HTTP gateway: per-tenant admission, rate limiting, and sticky routing over the polling client",
		Header: []string{"Policy", "Sent", "OK", "Limited", "Rejected", "Sticky", "Violations", "Mean(ms)", "P95(ms)"},
	}
	subName := o.Transport
	if subName == "" {
		subName = "net"
	}
	for _, p := range policies {
		tr, err := protoTransport(o, o.Seed)
		if err != nil {
			return nil, err
		}
		if tr == nil {
			// The gateway dials and listens through the seam itself, so
			// it needs a concrete transport where the cluster layer
			// would default internally.
			tr = transport.Net{}
		}
		reg := obs.NewRegistry()
		cl, err := cluster.StartCluster(cluster.ExperimentConfig{
			Servers:   servers,
			Clients:   4,
			Policy:    p,
			Transport: tr,
			SlowProb:  -1, // the cell measures gateway behavior, not the contention model
			Metrics:   reg,
			Seed:      o.Seed,
		})
		if err != nil {
			return nil, err
		}
		gw, err := gateway.New(gateway.Config{
			Backends: cl.Clients,
			Tenants: []gateway.TenantConfig{
				// Paid: unlimited offered load, sticky sessions, and a
				// budget of 20 discretionary violations per second.
				{Name: "paid", Sticky: true, StickyOverload: 2, ViolationRate: 20, ViolationBurst: 20},
				// Free: a bucket an eighth of the aggregate arrival rate,
				// while round-robin attribution offers it half — most of
				// its share is shed at the door.
				{Name: "free", RateLimit: rate / 8, Burst: rate / 16},
			},
			Registry: reg,
		})
		if err != nil {
			cl.Close()
			return nil, err
		}
		ln, err := tr.Listen()
		if err != nil {
			cl.Close()
			return nil, err
		}
		if err := gw.Start(ln); err != nil {
			cl.Close()
			return nil, err
		}
		res, runErr := gateway.RunLoadGen(gateway.LoadGenConfig{
			URL:      "http://" + gw.Addr(),
			Client:   gateway.HTTPClient(tr, 10*time.Second),
			Rate:     rate,
			Requests: requests,
			Tenants:  []string{"paid", "free"},
			Sessions: 32,
			Seed:     o.Seed,
		})
		closeErr := gw.Close()
		cl.Close()
		if runErr != nil {
			return nil, runErr
		}
		if closeErr != nil {
			return nil, closeErr
		}
		o.record("gateway", p.String(), subName, reg.Snapshot())
		t.AddRow(p.String(), res.Sent, res.OK, res.RateLimited, res.RejectedAdmission,
			res.Sticky, res.Violations,
			res.Latency.Mean()*1e3, res.Latency.Percentile(0.95)*1e3)
		o.progress("gateway: %s done on %s (%s)", p, subName, res.Describe())
	}
	t.AddNote("open-loop arrivals at %.0f/s split round-robin across the tenants; latency is measured from each request's scheduled arrival", rate)
	t.AddNote("free's token bucket passes an eighth of the aggregate rate, so Limited ~ the other three eighths of its offered half")
	t.AddNote("paid sessions pin to their first node and may spend budgeted violations to leave one whose load index reaches the overload threshold")
	return t, nil
}
