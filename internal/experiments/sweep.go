package experiments

import (
	"fmt"

	"finelb/internal/core"
	"finelb/internal/substrate"
	"finelb/internal/workload"
)

// sweepServers is the cluster size of the paper's poll-size sweeps
// (Figures 4 and 6).
const sweepServers = 16

// pollSizeSweep renders the random/poll-2/3/4/8/ideal matrix common to
// Figures 4 and 6: one generic driver, parameterized by the substrate
// that executes its cells, so the simulation and prototype sweeps are
// the same code measuring different machinery. accesses sizes each
// cell (the prototype scales cells to wall time; the simulator uses a
// flat count). Cells are mean response times in ms.
func pollSizeSweep(o Options, sub substrate.Substrate, id, title string,
	policies []core.Policy, loads []float64,
	accesses func(w workload.Workload, rho float64) int) (*Table, error) {

	t := &Table{ID: id, Title: title}
	t.Header = []string{"Workload", "Busy"}
	for _, p := range policies {
		t.Header = append(t.Header, p.String())
	}
	for _, w := range workload.Paper() {
		for _, rho := range loads {
			row := []any{w.Name, fmt.Sprintf("%.0f%%", rho*100)}
			for _, p := range policies {
				res, err := sub.Run(substrate.RunSpec{
					Servers:  sweepServers,
					Workload: w.ScaledTo(sweepServers, rho),
					Policy:   p,
					Accesses: accesses(w, rho),
					Seed:     o.Seed,
				})
				if err != nil {
					return nil, err
				}
				v := res.MeanResponse * 1e3
				row = append(row, v)
				o.record(id, fmt.Sprintf("%s busy=%.0f%% %s", w.Name, rho*100, p),
					sub.Name(), res.Metrics)
				o.progress("%s: %s busy=%.0f%% %s done (%.4g ms)", id, w.Name, rho*100, p, v)
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}
