// Package experiments contains one driver per table and figure of the
// paper's evaluation, plus the ablations listed in DESIGN.md §3. Every
// driver returns a Table that prints the same rows/series the paper
// reports, so `cmd/repro <id>` regenerates any artifact.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Value is one typed table cell: a float64, an int64, or a string.
// Keeping cells typed rather than pre-formatted lets the JSON emitter
// publish machine-readable numbers at full precision while the text
// and CSV renderers keep the familiar %.4g formatting.
type Value struct{ v any }

// String formats the cell for text and CSV output: floats with %.4g,
// everything else verbatim.
func (v Value) String() string {
	switch x := v.v.(type) {
	case float64:
		return fmt.Sprintf("%.4g", x)
	case string:
		return x
	default:
		return fmt.Sprint(x)
	}
}

// Float returns the cell's numeric value (integers widen) and whether
// the cell is numeric at all.
func (v Value) Float() (float64, bool) {
	switch x := v.v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	}
	return 0, false
}

// MarshalJSON emits the underlying typed value: JSON numbers for
// numeric cells, strings otherwise.
func (v Value) MarshalJSON() ([]byte, error) { return json.Marshal(v.v) }

// Table is a printable experiment result: a titled grid with notes.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]Value
	Notes  []string
}

// AddRow appends a row, normalizing each cell to a typed Value:
// floating-point values stay float64, integer values become int64,
// everything else is stringified.
func (t *Table) AddRow(cells ...any) {
	row := make([]Value, len(cells))
	for i, c := range cells {
		switch x := c.(type) {
		case Value:
			row[i] = x
		case float64:
			row[i] = Value{x}
		case float32:
			row[i] = Value{float64(x)}
		case int:
			row[i] = Value{int64(x)}
		case int32:
			row[i] = Value{int64(x)}
		case int64:
			row[i] = Value{x}
		case string:
			row[i] = Value{x}
		default:
			row[i] = Value{fmt.Sprint(x)}
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table in aligned-column text form.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Header) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	}
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = c.String()
		}
		fmt.Fprintln(tw, strings.Join(cells, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Cell returns the formatted cell at (row, col); it panics on
// out-of-range indices, which in tests is the desired failure mode.
func (t *Table) Cell(row, col int) string { return t.Rows[row][col].String() }

// Options control experiment scale and reproducibility.
type Options struct {
	// Quick shrinks run lengths and sweep grids so the full suite
	// finishes in about a minute (used by tests and -quick runs).
	// Full-scale runs match the fidelity recorded in EXPERIMENTS.md.
	Quick bool
	// Seed drives every random stream in the experiment.
	Seed uint64
	// Transport selects the prototype messaging substrate: "" or "net"
	// for real loopback sockets, "mem" for the deterministic in-memory
	// fabric. Simulator-only experiments ignore it.
	Transport string
	// Servers and Accesses, when positive, override an experiment's
	// cluster size and access count (cmd/repro -servers/-accesses).
	// Experiments that reproduce a fixed paper artifact ignore them;
	// scale-oriented experiments (simscale) honor them.
	Servers  int
	Accesses int
	// SpeedFactors, when non-nil, overrides the heterogeneous-speed
	// scenario of speed-aware experiments (hetchurn) with an explicit
	// per-server factor slice (cmd/repro -speed-factors, parsed by
	// simcluster.ParseSpeedFactors). Other experiments ignore it.
	SpeedFactors []float64
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
	// Metrics, when non-nil, collects one obs snapshot per substrate
	// run, labeled by experiment and cell (cmd/repro -metrics).
	Metrics *MetricsLog
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// pick returns quick when o.Quick, else full.
func pick[T any](o Options, full, quick T) T {
	if o.Quick {
		return quick
	}
	return full
}

// WriteCSV emits the table as RFC-4180-ish CSV (header then rows),
// for plotting the figures outside Go. Cells are formatted exactly as
// in text output.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if len(t.Header) > 0 {
		if err := writeRow(t.Header); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = c.String()
		}
		if err := writeRow(cells); err != nil {
			return err
		}
	}
	return nil
}

// tableJSON is the machine-readable table schema (EXPERIMENTS.md):
// numeric cells are JSON numbers at full precision, not the %.4g
// strings of the text renderer.
type tableJSON struct {
	ID     string    `json:"id"`
	Title  string    `json:"title"`
	Header []string  `json:"header"`
	Rows   [][]Value `json:"rows"`
	Notes  []string  `json:"notes,omitempty"`
}

func (t *Table) asJSON() tableJSON {
	rows := t.Rows
	if rows == nil {
		rows = [][]Value{}
	}
	return tableJSON{t.ID, t.Title, t.Header, rows, t.Notes}
}

// WriteJSON emits the table as one indented JSON object.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.asJSON())
}

// WriteTablesJSON emits tables as one JSON array — the cmd/repro
// -format=json output, always an array even for a single experiment.
func WriteTablesJSON(w io.Writer, tables []*Table) error {
	arr := make([]tableJSON, len(tables))
	for i, t := range tables {
		arr[i] = t.asJSON()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(arr)
}
