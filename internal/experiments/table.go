// Package experiments contains one driver per table and figure of the
// paper's evaluation, plus the ablations listed in DESIGN.md §3. Every
// driver returns a Table that prints the same rows/series the paper
// reports, so `cmd/repro <id>` regenerates any artifact.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a printable experiment result: a titled grid with notes.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, formatting each cell: floats with %.4g,
// everything else with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table in aligned-column text form.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Header) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	}
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Cell returns the cell at (row, col); it panics on out-of-range
// indices, which in tests is the desired failure mode.
func (t *Table) Cell(row, col int) string { return t.Rows[row][col] }

// Options control experiment scale and reproducibility.
type Options struct {
	// Quick shrinks run lengths and sweep grids so the full suite
	// finishes in about a minute (used by tests and -quick runs).
	// Full-scale runs match the fidelity recorded in EXPERIMENTS.md.
	Quick bool
	// Seed drives every random stream in the experiment.
	Seed uint64
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// pick returns quick when o.Quick, else full.
func pick[T any](o Options, full, quick T) T {
	if o.Quick {
		return quick
	}
	return full
}

// WriteCSV emits the table as RFC-4180-ish CSV (header then rows),
// for plotting the figures outside Go.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if len(t.Header) > 0 {
		if err := writeRow(t.Header); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
