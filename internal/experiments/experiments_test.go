package experiments

import (
	"strconv"
	"strings"
	"testing"
)

var quickOpts = Options{Quick: true, Seed: 1}

// cellF parses a table cell as a float.
func cellF(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tbl.Cell(row, col), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a number: %v", row, col, tbl.Cell(row, col), err)
	}
	return v
}

// colIndex finds a header column by exact name.
func colIndex(t *testing.T, tbl *Table, name string) int {
	t.Helper()
	for i, h := range tbl.Header {
		if h == name {
			return i
		}
	}
	t.Fatalf("no column %q in %v", name, tbl.Header)
	return -1
}

// rowIndex finds the first row whose given columns match the values.
func rowIndex(t *testing.T, tbl *Table, match map[int]string) int {
	t.Helper()
	for r, row := range tbl.Rows {
		ok := true
		for c, want := range match {
			if row[c].String() != want {
				ok = false
				break
			}
		}
		if ok {
			return r
		}
	}
	t.Fatalf("no row matching %v", match)
	return -1
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 21 {
		t.Fatalf("registry has %d entries: %v", len(ids), ids)
	}
	for _, id := range ids {
		if _, err := Get(id); err != nil {
			t.Errorf("Get(%q): %v", id, err)
		}
		if desc, err := Describe(id); err != nil || desc == "" {
			t.Errorf("Describe(%q) = %q, %v", id, desc, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	if _, err := Describe("nope"); err == nil {
		t.Error("Describe accepted an unknown id")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Header: []string{"a", "b"}}
	tbl.AddRow("one", 1.5)
	tbl.AddRow(2, "two")
	tbl.AddNote("note %d", 7)
	out := tbl.String()
	for _, want := range []string{"== x: demo ==", "one", "1.5", "two", "note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if tbl.Cell(0, 1) != "1.5" {
		t.Errorf("Cell = %q", tbl.Cell(0, 1))
	}
}

func TestTable1(t *testing.T) {
	tbl, err := Table1(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// Measured service means must track the published columns within 10%.
	for r := 0; r < 2; r++ {
		got := cellF(t, tbl, r, 4)
		want := cellF(t, tbl, r, 6)
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("row %d: measured service mean %v vs published %v", r, got, want)
		}
	}
}

func TestFigure2(t *testing.T) {
	tbl, err := Figure2(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 { // 2 busy levels x 3 workloads
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// Poisson/Exp at 90%: inaccuracy grows with delay and stays below
	// the Eq.1 bound (within noise).
	r := rowIndex(t, tbl, map[int]string{0: "90%", 1: "Poisson/Exp"})
	small := cellF(t, tbl, r, 2)  // d=0.1x
	large := cellF(t, tbl, r, 11) // d=100x
	bound := cellF(t, tbl, r, 12) // Eq1 bound
	if small >= large {
		t.Errorf("inaccuracy not increasing: %v vs %v", small, large)
	}
	if large > bound*1.25 {
		t.Errorf("inaccuracy %v above bound %v", large, bound)
	}
	// 50% Poisson bound is the paper's 1.33.
	r50 := rowIndex(t, tbl, map[int]string{0: "50%", 1: "Poisson/Exp"})
	if b := cellF(t, tbl, r50, 12); b < 1.3 || b > 1.37 {
		t.Errorf("50%% bound = %v, want 1.333", b)
	}
}

func TestFigure3(t *testing.T) {
	tbl, err := Figure3(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// Fine-grain at 90%: 1s broadcast interval is much worse than 2ms,
	// and the normalized values are >= ~1 (IDEAL is the floor).
	r := rowIndex(t, tbl, map[int]string{0: "90%", 1: "Fine-Grain trace"})
	fast := cellF(t, tbl, r, 3) // 2ms column
	slow := cellF(t, tbl, r, 6) // 1000ms column
	if slow < 3*fast {
		t.Errorf("slow broadcast %v not >> fast %v for fine grain at 90%%", slow, fast)
	}
	if fast < 0.8 {
		t.Errorf("normalized response %v below IDEAL floor", fast)
	}
}

func TestFigure4(t *testing.T) {
	tbl, err := Figure4(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 { // 3 workloads x 2 loads (quick)
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	randomCol := colIndex(t, tbl, "random")
	poll2Col := colIndex(t, tbl, "poll 2")
	idealCol := colIndex(t, tbl, "ideal")
	r := rowIndex(t, tbl, map[int]string{0: "Poisson/Exp", 1: "90%"})
	random := cellF(t, tbl, r, randomCol)
	poll2 := cellF(t, tbl, r, poll2Col)
	ideal := cellF(t, tbl, r, idealCol)
	if !(poll2 < random/2) {
		t.Errorf("poll2 %v not dramatically below random %v", poll2, random)
	}
	if ideal > poll2*1.1 {
		t.Errorf("ideal %v above poll2 %v", ideal, poll2)
	}
}

func TestUpperbound(t *testing.T) {
	tbl, err := Upperbound(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for r := range tbl.Rows {
		closed := cellF(t, tbl, r, 1)
		series := cellF(t, tbl, r, 2)
		sim := cellF(t, tbl, r, 3)
		if diff := closed - series; diff > 1e-3 || diff < -1e-3 {
			t.Errorf("row %d: closed %v vs series %v", r, closed, series)
		}
		if sim < closed*0.5 || sim > closed*1.3 {
			t.Errorf("row %d: simulated %v far from bound %v", r, sim, closed)
		}
	}
}

func TestMessages(t *testing.T) {
	tbl, err := Messages(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	pollCol := colIndex(t, tbl, "Poll3/access")
	bcastCol := colIndex(t, tbl, "Broadcast(10ms)/access")
	for r := range tbl.Rows {
		// Polling: exactly 2 messages per polled server per access.
		if v := cellF(t, tbl, r, pollCol); v != 6 {
			t.Errorf("row %d: poll messages/access = %v, want 6", r, v)
		}
	}
	// Broadcast per-access cost grows when clients triple... (2 -> 6).
	r2 := rowIndex(t, tbl, map[int]string{0: "16", 1: "2", 2: "90%"})
	r6 := rowIndex(t, tbl, map[int]string{0: "16", 1: "6", 2: "90%"})
	if !(cellF(t, tbl, r6, bcastCol) > cellF(t, tbl, r2, bcastCol)) {
		t.Error("broadcast cost did not grow with client count")
	}
	// ...and shrinks per access at higher load (same messages, more accesses).
	rLow := rowIndex(t, tbl, map[int]string{0: "16", 1: "6", 2: "50%"})
	if !(cellF(t, tbl, rLow, bcastCol) > cellF(t, tbl, r6, bcastCol)) {
		t.Error("broadcast per-access cost not higher at lower load")
	}
}

func TestFlocking(t *testing.T) {
	tbl, err := Flocking(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// Correction should never be dramatically worse; usually better.
	for r := range tbl.Rows {
		plain := cellF(t, tbl, r, 2)
		fixed := cellF(t, tbl, r, 3)
		if fixed > plain*1.3 {
			t.Errorf("row %d: local correction much worse (%v vs %v)", r, fixed, plain)
		}
	}
}

func TestSyncAblation(t *testing.T) {
	tbl, err := SyncAblation(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
}

func TestFigure6Prototype(t *testing.T) {
	if testing.Short() {
		t.Skip("prototype sweep takes ~20s")
	}
	tbl, err := Figure6(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 { // 3 workloads x 1 load (quick)
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	randomCol := colIndex(t, tbl, "random")
	poll2Col := colIndex(t, tbl, "poll 2")
	for r := range tbl.Rows {
		random := cellF(t, tbl, r, randomCol)
		poll2 := cellF(t, tbl, r, poll2Col)
		// The quick cells are short (seconds of wall time on a shared
		// box), so allow a noise band; the paper's true effect is a
		// 2-4x improvement, which a 20% band still distinguishes from a
		// regression. Full-fidelity runs are recorded in EXPERIMENTS.md
		// with strict margins.
		if poll2 >= random*1.2 {
			t.Errorf("row %d (%s): poll2 %v not below random %v (+20%% noise band)",
				r, tbl.Rows[r][0], poll2, random)
		}
	}
}

func TestFigure6Mem(t *testing.T) {
	if testing.Short() {
		t.Skip("in-memory sweep still sleeps through real service times (~30s)")
	}
	tbl, err := Figure6Mem(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 { // 3 workloads x 1 load (quick)
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	randomCol := colIndex(t, tbl, "random")
	poll2Col := colIndex(t, tbl, "poll 2")
	for r := range tbl.Rows {
		random := cellF(t, tbl, r, randomCol)
		poll2 := cellF(t, tbl, r, poll2Col)
		// Same ordering check as the socket sweep: swapping the transport
		// must not invert the paper's poll-vs-random effect.
		if poll2 >= random*1.2 {
			t.Errorf("row %d (%s): poll2 %v not below random %v (+20%% noise band)",
				r, tbl.Rows[r][0], poll2, random)
		}
	}
}

func TestUnknownTransportRejected(t *testing.T) {
	o := quickOpts
	o.Transport = "carrier-pigeon"
	if _, err := Table2(o); err == nil {
		t.Error("Table2 accepted an unknown transport")
	}
	if _, err := Failover(o); err == nil {
		t.Error("Failover accepted an unknown transport")
	}
}

func TestTable2Prototype(t *testing.T) {
	if testing.Short() {
		t.Skip("prototype comparison takes ~15s")
	}
	tbl, err := Table2(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// Discard must cut the mean polling time for every workload.
	for r := range tbl.Rows {
		origPoll := cellF(t, tbl, r, 2)
		optPoll := cellF(t, tbl, r, 4)
		if optPoll >= origPoll {
			t.Errorf("row %d: discard did not reduce polling time (%v vs %v)", r, optPoll, origPoll)
		}
	}
}

func TestPollProfilePrototype(t *testing.T) {
	if testing.Short() {
		t.Skip("prototype profile takes a few seconds")
	}
	tbl, err := PollProfile(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 { // quick: Poisson/Exp only
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	over10 := cellF(t, tbl, 0, 2)
	over20 := cellF(t, tbl, 0, 3)
	// Calibration target: paper reports 8.1% / 5.6%; accept a loose band
	// on the quick run.
	if over10 < 2 || over10 > 16 {
		t.Errorf(">10ms fraction %v%% outside calibration band", over10)
	}
	if over20 > over10 {
		t.Errorf(">20ms (%v%%) exceeds >10ms (%v%%)", over20, over10)
	}
}

func TestFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("failover demo sleeps through soft-state expiry")
	}
	tbl, err := Failover(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// No errors before the crash, none after expiry.
	if errs := cellF(t, tbl, 0, 2); errs != 0 {
		t.Errorf("errors before crash: %v", errs)
	}
	if errs := cellF(t, tbl, 1, 2); errs != 0 {
		t.Errorf("errors after failover: %v", errs)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Header: []string{"a", "b"}}
	tbl.AddRow("plain", 1.25)
	tbl.AddRow(`with,comma`, `with"quote`)
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "a,b\nplain,1.25\n\"with,comma\",\"with\"\"quote\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestLeastConnExperiment(t *testing.T) {
	tbl, err := LeastConn(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	randomCol := colIndex(t, tbl, "random")
	llCol := colIndex(t, tbl, "least-conn")
	idealCol := colIndex(t, tbl, "ideal")
	for r := range tbl.Rows {
		random := cellF(t, tbl, r, randomCol)
		ll := cellF(t, tbl, r, llCol)
		ideal := cellF(t, tbl, r, idealCol)
		if !(ll < random) {
			t.Errorf("row %d: least-conn %v not below random %v", r, ll, random)
		}
		if ll < ideal*0.95 {
			t.Errorf("row %d: least-conn %v below ideal %v", r, ll, ideal)
		}
	}
}

func TestBurstinessExperiment(t *testing.T) {
	tbl, err := Burstiness(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 { // quick: bursts x1, x2, x5
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// Bursts inflate every policy's queueing delay, ideal included, so
	// the random/ideal *ratio* is not monotone in burstiness. What is
	// robust (checked across seeds) is that moderate burstiness widens
	// the *absolute* random-to-ideal gap, and that random stays well
	// above ideal at every burst level.
	gapCol := colIndex(t, tbl, "random-ideal(ms)")
	calm := cellF(t, tbl, 0, gapCol)
	bursty := cellF(t, tbl, 1, gapCol)
	if bursty <= calm {
		t.Errorf("burst x2 did not widen the absolute random-ideal gap: %v vs %v ms", bursty, calm)
	}
	ratioCol := colIndex(t, tbl, "random/ideal")
	for r := range tbl.Rows {
		if ratio := cellF(t, tbl, r, ratioCol); ratio < 1.2 {
			t.Errorf("row %d: random/ideal ratio %v below 1.2", r, ratio)
		}
	}
}

func TestDegradedExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("prototype half takes ~15s; sim fault coverage lives in internal/simcluster")
	}
	tbl, err := Degraded(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 { // 3 policies x 2 substrates
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	ratioCol := colIndex(t, tbl, "Ratio")
	lostCol := colIndex(t, tbl, "Lost")
	retriesCol := colIndex(t, tbl, "Retries")
	// Simulator rows 1-2 are poll 2 and poll 3: with quarantine, retry
	// and backoff the degraded run must stay within 2x of healthy and
	// lose nothing.
	for r := 1; r <= 2; r++ {
		if ratio := cellF(t, tbl, r, ratioCol); ratio > 2.0 {
			t.Errorf("sim row %d: degraded/healthy ratio %v exceeds 2x", r, ratio)
		}
		if lost := cellF(t, tbl, r, lostCol); lost != 0 {
			t.Errorf("sim row %d: lost %v accesses", r, lost)
		}
		if retries := cellF(t, tbl, r, retriesCol); retries == 0 {
			t.Errorf("sim row %d: crash run recorded no retries", r)
		}
	}
	// Prototype polling rows (4-5): real sockets may hit transient
	// errors in the crash-to-expiry window, but retries must hold losses
	// to a tiny fraction of the run.
	for r := 4; r <= 5; r++ {
		if lost := cellF(t, tbl, r, lostCol); lost > 20 {
			t.Errorf("proto row %d: lost %v accesses", r, lost)
		}
	}
}

func TestGatewayExperiment(t *testing.T) {
	o := quickOpts
	o.Transport = "mem"
	tbl, err := Gateway(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 { // random, poll 2
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	sentCol := colIndex(t, tbl, "Sent")
	okCol := colIndex(t, tbl, "OK")
	limitedCol := colIndex(t, tbl, "Limited")
	stickyCol := colIndex(t, tbl, "Sticky")
	for r := range tbl.Rows {
		sent := cellF(t, tbl, r, sentCol)
		okN := cellF(t, tbl, r, okCol)
		limited := cellF(t, tbl, r, limitedCol)
		if sent != 600 {
			t.Errorf("row %d: sent %v, want 600", r, sent)
		}
		if okN == 0 {
			t.Errorf("row %d: no admitted requests", r)
		}
		// Free's bucket passes an eighth of the aggregate rate while
		// being offered half, so the limiter must visibly bite.
		if limited == 0 {
			t.Errorf("row %d: rate limiter never engaged", r)
		}
		// Paid sessions re-use 32 keys across 300 requests: affinity
		// must show up.
		if sticky := cellF(t, tbl, r, stickyCol); sticky == 0 {
			t.Errorf("row %d: no sticky hits", r)
		}
	}
}

func TestSimScale(t *testing.T) {
	o := quickOpts
	o.Servers = 64
	o.Accesses = 20000
	tbl, err := SimScale(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for r := range tbl.Rows {
		// The -servers/-accesses overrides must reach the run.
		if got := cellF(t, tbl, r, 1); got != 64 {
			t.Errorf("row %d: servers %v, want 64 (override ignored)", r, got)
		}
		if got := cellF(t, tbl, r, 2); got != 20000 {
			t.Errorf("row %d: accesses %v, want 20000 (override ignored)", r, got)
		}
		// Every access needs several events (arrival, dispatch, service,
		// response), so the event count bounds the access count below.
		if events := cellF(t, tbl, r, 3); events < 20000*2 {
			t.Errorf("row %d: only %v events for 20000 accesses", r, events)
		}
		if eps := cellF(t, tbl, r, 5); eps <= 0 {
			t.Errorf("row %d: events/sec %v", r, eps)
		}
		if mean := cellF(t, tbl, r, 6); mean <= 0 {
			t.Errorf("row %d: mean response %v ms", r, mean)
		}
	}
	// random dispatches blind; poll-8 consults eight queues. At 80% busy
	// the ordering is a structural property, not a statistical accident.
	if rnd, p8 := cellF(t, tbl, 0, 6), cellF(t, tbl, 2, 6); p8 >= rnd {
		t.Errorf("poll-8 mean %.3f >= random mean %.3f", p8, rnd)
	}
}

func TestElasticExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("prototype half runs ~8s of wall-clock diurnal trace; cluster elastic coverage lives in internal/cluster")
	}
	o := quickOpts
	o.Transport = "mem"
	tbl, err := Elastic(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 { // sim: 2 policies x 2 modes; proto-mem: 1 policy x 2 modes
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	modeCol := colIndex(t, tbl, "Mode")
	meanCol := colIndex(t, tbl, "Mean(ms)")
	finalCol := colIndex(t, tbl, "FinalPool")
	peakCol := colIndex(t, tbl, "PeakPool")
	joinsCol := colIndex(t, tbl, "Joins")
	lostCol := colIndex(t, tbl, "Lost")
	for r := range tbl.Rows {
		mode := tbl.Cell(r, modeCol)
		joins := cellF(t, tbl, r, joinsCol)
		peak := cellF(t, tbl, r, peakCol)
		final := cellF(t, tbl, r, finalCol)
		switch mode {
		case "fixed":
			if joins != 0 || peak != elasticServers || final != elasticServers {
				t.Errorf("row %d: fixed pool churned (joins %v, pool %v..%v)", r, joins, final, peak)
			}
		case "auto":
			// The pool must track the diurnal peak: grow above the
			// initial size, never past Max.
			if joins == 0 || peak <= elasticServers || peak > elasticMax {
				t.Errorf("row %d: autoscaler did not track load (joins %v, peak %v)", r, joins, peak)
			}
		default:
			t.Errorf("row %d: unknown mode %q", r, mode)
		}
		// Planned membership changes never lose accepted work.
		if lost := cellF(t, tbl, r, lostCol); lost != 0 {
			t.Errorf("row %d: lost %v accesses", r, lost)
		}
	}
	// Simulator cells are deterministic: the elastic pool must beat the
	// overloaded fixed pool outright (rows alternate fixed, auto).
	for r := 0; r < 4; r += 2 {
		fixed := cellF(t, tbl, r, meanCol)
		auto := cellF(t, tbl, r+1, meanCol)
		if auto >= fixed {
			t.Errorf("sim rows %d/%d: autoscaled mean %v not below fixed %v", r, r+1, auto, fixed)
		}
	}
}

func TestHetChurnExperiment(t *testing.T) {
	tbl, err := HetChurn(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 { // homogeneous, het, het+churn
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	randCol := colIndex(t, tbl, "RANDOM(ms)")
	p2Col := colIndex(t, tbl, "POLL-2(ms)")
	p4Col := colIndex(t, tbl, "POLL-4(ms)")
	p8Col := colIndex(t, tbl, "POLL-8(ms)")
	p16Col := colIndex(t, tbl, "POLL-16(ms)")
	// The het cluster has the same total capacity, yet random placement
	// is unstable: each 0.25x server is offered ~2.9x its capacity.
	if homo, het := cellF(t, tbl, 0, randCol), cellF(t, tbl, 1, randCol); het < 10*homo {
		t.Errorf("het RANDOM %v not clearly unstable vs homogeneous %v", het, homo)
	}
	// The non-monotone stability row: 2-polls are forced onto slow
	// servers (unstable), an interior poll size is best, and full
	// information pays more in poll latency than it buys in placement.
	p2, p8, p16 := cellF(t, tbl, 1, p2Col), cellF(t, tbl, 1, p8Col), cellF(t, tbl, 1, p16Col)
	if !(p8 < p2 && p8 < p16) {
		t.Errorf("het row not non-monotone in poll size: POLL-2 %v, POLL-8 %v, POLL-16 %v", p2, p8, p16)
	}
	if p2 < 10*p8 {
		t.Errorf("het POLL-2 %v not clearly unstable vs interior optimum %v", p2, p8)
	}
	// On the homogeneous cluster the same poll-cost model makes load
	// information a net cost at fine grain (the paper's Figure 6 story).
	if homoRand, homo16 := cellF(t, tbl, 0, randCol), cellF(t, tbl, 0, p16Col); homo16 <= homoRand {
		t.Errorf("homogeneous row: POLL-16 %v not above RANDOM %v under the poll-cost model", homo16, homoRand)
	}
	// Draining a fast node mid-run shrinks the capacity margin and must
	// show up against the same-poll-size het cell.
	if het4, churn4 := cellF(t, tbl, 1, p4Col), cellF(t, tbl, 2, p4Col); churn4 <= het4 {
		t.Errorf("churn POLL-4 %v not above het %v", churn4, het4)
	}
}
