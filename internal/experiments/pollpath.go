package experiments

import (
	"time"

	"finelb/internal/cluster"
	"finelb/internal/core"
)

// PollPath is the poll hot-path throughput benchmark behind the
// zero-alloc rework (DESIGN.md §12): back-to-back poll rounds — encode,
// fan-out, demux, decision, no service access attached — on the
// in-memory fabric, reported as polls/sec (inquiries resolved per
// second). Its BENCH_pollpath.json record is the baseline CI compares
// across commits — a >20% polls/sec drop on the gated cell fails the
// build. The net transport is measurable through the in-package
// BenchmarkPollRoundNet; the CI record stays on mem so the gate is not
// at the mercy of runner socket jitter.
func PollPath(o Options) (*Table, error) {
	rounds := pick(o, 200000, 5000)
	const prime = 200

	t := &Table{
		ID:    "pollpath",
		Title: "Poll hot path: rounds back to back on the in-memory fabric",
		Header: []string{"Config", "Servers", "d", "Rounds",
			"Wall s", "polls/sec", "rounds/sec"},
	}
	for _, cfg := range []struct {
		name       string
		servers, d int
	}{
		{"s8_d2", 8, 2},
		{"s8_d4", 8, 4},
		{"s64_d8", 64, 8},
	} {
		polls, wall, err := pollRounds(o, cfg.servers, cfg.d, prime, rounds)
		if err != nil {
			return nil, err
		}
		t.AddRow(cfg.name, cfg.servers, cfg.d, rounds,
			wall, float64(polls)/wall, float64(rounds)/wall)
		o.progress("pollpath: %s done (%d rounds, %.3g polls/sec)",
			cfg.name, rounds, float64(polls)/wall)
	}
	t.AddNote("polls/sec counts d inquiries per round; mem fabric, contention model off, one driving goroutine")
	return t, nil
}

// pollRounds boots servers answering load inquiries instantly and a
// Poll(d) client on a fresh seeded mem fabric, primes the round pool
// and agents, then times rounds poll rounds. It returns the number of
// inquiries resolved and the wall seconds they took.
func pollRounds(o Options, servers, d, prime, rounds int) (int64, float64, error) {
	// The cell always runs on the mem fabric regardless of o.Transport:
	// a syscall-bound net cell would measure the kernel, not the codecs
	// and fan-out this record gates.
	tr, err := protoTransport(Options{Transport: "mem"}, o.Seed+1)
	if err != nil {
		return 0, 0, err
	}
	dir := cluster.NewDirectory(time.Hour)
	var nodes []*cluster.Node
	for i := 0; i < servers; i++ {
		n, err := cluster.StartNode(cluster.NodeConfig{
			ID: i, Service: "svc", Directory: dir, SlowProb: -1,
			Transport: tr, Seed: o.Seed + uint64(i) + 1,
		})
		if err != nil {
			return 0, 0, err
		}
		nodes = append(nodes, n)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	c, err := cluster.NewClient(cluster.ClientConfig{
		Directory: dir, Service: "svc",
		Policy:          core.NewPoll(d),
		PollRetries:     -1,
		QuarantineAfter: -1,
		Transport:       tr,
		Seed:            o.Seed + 42,
	})
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()

	eps := c.Endpoints()
	info := &cluster.AccessInfo{PollRTTs: make([]time.Duration, 0, d)}
	run := func(n int) error {
		for i := 0; i < n; i++ {
			if _, ok, err := c.PollRound(eps, info); err != nil {
				return err
			} else if !ok {
				continue // a silent round costs time but resolves nothing
			}
			info.PollRTTs = info.PollRTTs[:0]
		}
		return nil
	}
	if err := run(prime); err != nil {
		return 0, 0, err
	}
	start := time.Now()
	if err := run(rounds); err != nil {
		return 0, 0, err
	}
	wall := time.Since(start).Seconds()
	return int64(rounds) * int64(d), wall, nil
}
