package experiments

import (
	"time"

	"finelb/internal/core"
	"finelb/internal/faults"
	"finelb/internal/substrate"
	"finelb/internal/workload"
)

// degradedTTL is the prototype directory TTL used for fault runs: short
// enough that crashed nodes expire from the soft state within a run.
const degradedTTL = 500 * time.Millisecond

// Degraded measures the availability mechanisms of §3.1 under a canned
// fault schedule: 2 of 16 nodes crash 40% of the way through the run
// and every load inquiry is subject to 5% loss. Each policy is run
// healthy and degraded on both substrates through the same driver; with
// quarantine, retry and backoff the degraded mean response should stay
// within a small factor of healthy and no accepted access should be
// lost.
func Degraded(o Options) (*Table, error) {
	const servers = 16
	const rho = 0.7
	const lossProb = 0.05
	policies := []core.Policy{
		core.NewRandom(),
		core.NewPollDiscard(2, DiscardThreshold),
		core.NewPollDiscard(3, DiscardThreshold),
	}
	t := &Table{
		ID:     "degraded",
		Title:  "Degraded mode: kill 2 of 16 nodes mid-run, 5% poll loss (Medium-Grain, 70% busy)",
		Header: []string{"Substrate", "Policy", "Healthy(ms)", "Degraded(ms)", "Ratio", "Lost", "Retries"},
	}
	// Medium-Grain keeps the prototype's aggregate access rate a few
	// hundred per second: heavy enough to exercise the fault paths,
	// light enough that one shared CPU never becomes the bottleneck
	// (Fine-Grain at this scale measures host contention, not policy).
	w := workload.MediumGrain().ScaledTo(servers, rho)

	// Simulator cells run identical arrival/service draws with and
	// without the schedule, so the ratio isolates the faults. Prototype
	// cells use real sockets, so crashed nodes also produce connection
	// errors that the retry path must absorb; both prototype runs use
	// the short fault-mode TTL so only the schedule differs.
	simAccesses := pick(o, 100000, 20000)
	simSeconds := float64(simAccesses) * w.Service.Mean() / (float64(servers) * rho)
	protoSeconds := pick(o, 8.0, 2.0)
	matrix := []struct {
		sub      substrate.Substrate
		accesses int
		killAt   time.Duration
		dirTTL   time.Duration
	}{
		{substrate.Sim{}, simAccesses,
			time.Duration(0.4 * simSeconds * float64(time.Second)), 0},
		{substrate.Proto{Transport: o.Transport}, protoAccesses(w, servers, rho, protoSeconds),
			time.Duration(0.4 * protoSeconds * float64(time.Second)), degradedTTL},
	}
	for _, m := range matrix {
		sched := faults.DegradedDemo(servers, 2, m.killAt, lossProb, o.Seed+1)
		for _, p := range policies {
			run := func(sched *faults.Schedule) (*substrate.RunResult, error) {
				return m.sub.Run(substrate.RunSpec{
					Servers: servers, Clients: 6,
					Workload: w, Policy: p,
					Accesses: m.accesses, Seed: o.Seed,
					Faults: sched, DirTTL: m.dirTTL,
				})
			}
			healthy, err := run(nil)
			if err != nil {
				return nil, err
			}
			degraded, err := run(sched)
			if err != nil {
				return nil, err
			}
			hm, dm := healthy.MeanResponse*1e3, degraded.MeanResponse*1e3
			o.record("degraded", p.String()+" healthy", m.sub.Name(), healthy.Metrics)
			o.record("degraded", p.String()+" degraded", m.sub.Name(), degraded.Metrics)
			t.AddRow(m.sub.Name(), p.String(), hm, dm, dm/hm, degraded.Lost, degraded.Retries)
			o.progress("degraded: %s %s done (%.4g -> %.4g ms)", m.sub.Name(), p, hm, dm)
		}
	}

	t.AddNote("after the crash the 14 survivors run at %.0f%% busy; quarantine (after %d silent polls) keeps the dead nodes out of poll sets until soft state expires",
		100*rho*float64(servers)/float64(servers-2), faults.DefaultQuarantineAfter)
	t.AddNote("Lost counts accesses that produced no response despite retries; polling policies should lose none")
	return t, nil
}
