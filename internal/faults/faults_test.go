package faults

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	var nilSched *Schedule
	if err := nilSched.Validate(); err != nil {
		t.Fatalf("nil schedule should validate: %v", err)
	}
	good := &Schedule{
		Events: []NodeEvent{{At: 10 * time.Millisecond, Node: 3, Kind: Crash}},
		Links:  []LinkRule{{Client: -1, Server: 1, Loss: 0.5, Latency: time.Millisecond}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []*Schedule{
		{Events: []NodeEvent{{At: -time.Second, Node: 0, Kind: Crash}}},
		{Events: []NodeEvent{{At: 0, Node: -2, Kind: Crash}}},
		{Events: []NodeEvent{{At: 0, Node: 0, Kind: Kind(9)}}},
		{Links: []LinkRule{{Loss: 1.5}}},
		{Links: []LinkRule{{Loss: -0.1}}},
		{Links: []LinkRule{{Latency: -time.Millisecond}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestSortedIsStable(t *testing.T) {
	s := &Schedule{Events: []NodeEvent{
		{At: 30 * time.Millisecond, Node: 2, Kind: Crash},
		{At: 10 * time.Millisecond, Node: 0, Kind: Pause},
		{At: 10 * time.Millisecond, Node: 1, Kind: Pause},
	}}
	got := s.Sorted()
	want := []NodeEvent{
		{At: 10 * time.Millisecond, Node: 0, Kind: Pause},
		{At: 10 * time.Millisecond, Node: 1, Kind: Pause},
		{At: 30 * time.Millisecond, Node: 2, Kind: Crash},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	// Original order untouched.
	if s.Events[0].At != 30*time.Millisecond {
		t.Error("Sorted mutated the schedule")
	}
}

func TestRuleFirstMatchWins(t *testing.T) {
	s := &Schedule{Links: []LinkRule{
		{Client: 0, Server: 1, Loss: 0.9},
		{Client: -1, Server: -1, Loss: 0.1},
	}}
	if r, ok := s.Rule(0, 1); !ok || r.Loss != 0.9 {
		t.Errorf("specific rule not matched: %v %v", r, ok)
	}
	if r, ok := s.Rule(2, 1); !ok || r.Loss != 0.1 {
		t.Errorf("wildcard rule not matched: %v %v", r, ok)
	}
	empty := &Schedule{}
	if _, ok := empty.Rule(0, 0); ok {
		t.Error("empty schedule matched a rule")
	}
}

func TestLinkStateDeterminism(t *testing.T) {
	s := &Schedule{Seed: 42, Links: []LinkRule{{Client: -1, Server: -1, Loss: 0.5, Latency: time.Millisecond}}}
	draw := func(client int) []bool {
		ls := s.NewLinkState(client)
		out := make([]bool, 64)
		for i := range out {
			drop, delay := ls.PollFault(i % 4)
			if !drop && delay != time.Millisecond {
				t.Fatalf("surviving answer lost its latency: %v", delay)
			}
			out[i] = drop
		}
		return out
	}
	a, b := draw(1), draw(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same client diverged at draw %d", i)
		}
	}
	c := draw(2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different clients produced identical loss streams")
	}
}

func TestLinkStateNilSafe(t *testing.T) {
	var nilSched *Schedule
	if ls := nilSched.NewLinkState(0); ls != nil {
		t.Error("nil schedule produced a link state")
	}
	var ls *LinkState
	if drop, delay := ls.PollFault(3); drop || delay != 0 {
		t.Errorf("nil LinkState injected a fault: %v %v", drop, delay)
	}
}

func TestPlayerFiresAndStops(t *testing.T) {
	s := &Schedule{Events: []NodeEvent{
		{At: 5 * time.Millisecond, Node: 0, Kind: Crash},
		{At: 300 * time.Millisecond, Node: 1, Kind: Crash},
	}}
	var fired atomic.Int32
	done := make(chan NodeEvent, 2)
	p := s.PlayAt(time.Now(), 1.0, func(ev NodeEvent) {
		fired.Add(1)
		done <- ev
	})
	select {
	case ev := <-done:
		if ev.Node != 0 || ev.Kind != Crash {
			t.Errorf("wrong event fired first: %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("first event never fired")
	}
	p.Stop()
	time.Sleep(350 * time.Millisecond)
	if n := fired.Load(); n != 1 {
		t.Errorf("Stop did not cancel pending events: %d fired", n)
	}
}

func TestBackoff(t *testing.T) {
	if got := Backoff(2*time.Millisecond, 0); got != 2*time.Millisecond {
		t.Errorf("attempt 0: %v", got)
	}
	if got := Backoff(2*time.Millisecond, 3); got != 16*time.Millisecond {
		t.Errorf("attempt 3: %v", got)
	}
	if got := Backoff(0, 1); got != 2*DefaultRetryBackoff {
		t.Errorf("zero base: %v", got)
	}
	if got := Backoff(time.Millisecond, 40); got != time.Millisecond<<16 {
		t.Errorf("capped shift: %v", got)
	}
}

func TestDegradedDemo(t *testing.T) {
	s := DegradedDemo(16, 2, 100*time.Millisecond, 0.05, 7)
	if err := s.Validate(); err != nil {
		t.Fatalf("demo schedule invalid: %v", err)
	}
	if len(s.Events) != 2 {
		t.Fatalf("want 2 crash events, got %d", len(s.Events))
	}
	for i, ev := range s.Events {
		if ev.Kind != Crash || ev.Node != i || ev.At != 100*time.Millisecond {
			t.Errorf("event %d: %+v", i, ev)
		}
	}
	if len(s.Links) != 1 || s.Links[0].Loss != 0.05 || s.Links[0].Client != -1 || s.Links[0].Server != -1 {
		t.Errorf("links: %+v", s.Links)
	}
	if s2 := DegradedDemo(2, 5, 0, 0, 1); len(s2.Events) != 2 || len(s2.Links) != 0 {
		t.Errorf("clamped demo: %+v", s2)
	}
}
