// Package faults is the fault-injection subsystem: a deterministic,
// seedable schedule of node failures (crash, pause/resume) and network
// faults (per-link UDP poll loss and added latency) that both the
// real-socket prototype (internal/cluster) and the discrete-event
// simulator (internal/simcluster) consume.
//
// The paper's prototype assumes a healthy cluster and argues its
// soft-state directory "naturally tolerates failures" via TTL expiry;
// this package exists to exercise that claim. A Schedule is pure data —
// where and when things break — so the same schedule replayed with the
// same seed drives identical fault decisions on either substrate, and
// identical results on the (fully deterministic) simulator.
package faults

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"finelb/internal/stats"
)

// Kind enumerates node fault events.
type Kind int

const (
	// Crash stops a node permanently: its sockets close, queued work is
	// lost, and its heartbeats cease so its directory entries expire.
	Crash Kind = iota
	// Pause freezes a node, emulating a stalled or partitioned process:
	// it keeps accepted work queued but serves nothing, answers no load
	// inquiries, and stops heartbeating.
	Pause
	// Resume lifts a Pause: the node drains its queue, answers
	// inquiries again, and immediately re-registers with the directory.
	Resume
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Pause:
		return "pause"
	case Resume:
		return "resume"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NodeEvent is one scheduled node fault.
type NodeEvent struct {
	At   time.Duration // offset from the start of the run
	Node int           // target server node id
	Kind Kind
}

// LinkRule describes the poll-path network faults on the client→server
// links it matches. Client and Server select links; -1 is a wildcard.
// The first matching rule in Schedule.Links wins, so specific rules
// must precede wildcard ones.
type LinkRule struct {
	Client int // client node id, or -1 for any
	Server int // server node id, or -1 for any
	// Loss is the probability that a load inquiry (or its answer) is
	// lost on this link. The client still waits for the lost answer
	// until its poll deadline, exactly as UDP loss behaves.
	Loss float64
	// Latency is extra one-way delay added to each surviving answer.
	Latency time.Duration
}

// Schedule is a complete fault plan. The zero value (or nil) injects
// nothing.
type Schedule struct {
	// Seed drives every random fault decision (link loss draws, backoff
	// jitter in the simulator). The same Seed replays the same faults.
	Seed   uint64
	Events []NodeEvent
	Links  []LinkRule
}

// Validate reports whether the schedule is coherent.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, ev := range s.Events {
		if ev.At < 0 {
			return fmt.Errorf("faults: event %d at negative offset %v", i, ev.At)
		}
		if ev.Node < 0 {
			return fmt.Errorf("faults: event %d targets node %d", i, ev.Node)
		}
		if ev.Kind < Crash || ev.Kind > Resume {
			return fmt.Errorf("faults: event %d has unknown kind %d", i, int(ev.Kind))
		}
	}
	for i, l := range s.Links {
		if l.Loss < 0 || l.Loss > 1 {
			return fmt.Errorf("faults: link rule %d loss %v outside [0,1]", i, l.Loss)
		}
		if l.Latency < 0 {
			return fmt.Errorf("faults: link rule %d negative latency %v", i, l.Latency)
		}
	}
	return nil
}

// Active reports whether the schedule actually injects anything. A nil
// or empty schedule is inert: runners treat it exactly like no schedule
// at all, so the healthy fast path stays bit-identical.
func (s *Schedule) Active() bool {
	return s != nil && (len(s.Events) > 0 || len(s.Links) > 0)
}

// Sorted returns a copy of the events ordered by offset (stable, so
// same-instant events keep their declaration order).
func (s *Schedule) Sorted() []NodeEvent {
	if s == nil {
		return nil
	}
	out := append([]NodeEvent(nil), s.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Rule returns the first link rule matching the client→server link.
func (s *Schedule) Rule(client, server int) (LinkRule, bool) {
	if s == nil {
		return LinkRule{}, false
	}
	for _, l := range s.Links {
		if (l.Client == -1 || l.Client == client) && (l.Server == -1 || l.Server == server) {
			return l, true
		}
	}
	return LinkRule{}, false
}

// LinkState is one client's deterministic view of the schedule's link
// faults: rule lookup plus a private seeded random stream for the loss
// draws. It is safe for concurrent use (prototype clients poll from
// many access goroutines).
type LinkState struct {
	sched  *Schedule
	client int

	mu  sync.Mutex
	rng *stats.RNG
}

// NewLinkState derives client's link-fault stream. It returns nil (a
// valid, inert state) when the schedule is nil or has no link rules.
func (s *Schedule) NewLinkState(client int) *LinkState {
	if s == nil || len(s.Links) == 0 {
		return nil
	}
	return &LinkState{
		sched:  s,
		client: client,
		rng:    stats.NewRNG(s.Seed ^ (0xfa017bad5eed ^ uint64(client)*0x9e3779b97f4a7c15)),
	}
}

// PollFault decides the fate of one load inquiry to server: whether the
// datagram is lost, and otherwise how much extra latency its answer
// carries. A nil LinkState injects nothing.
func (l *LinkState) PollFault(server int) (drop bool, delay time.Duration) {
	if l == nil {
		return false, 0
	}
	rule, ok := l.sched.Rule(l.client, server)
	if !ok {
		return false, 0
	}
	if rule.Loss > 0 {
		l.mu.Lock()
		drop = l.rng.Float64() < rule.Loss
		l.mu.Unlock()
		if drop {
			return true, 0
		}
	}
	return false, rule.Latency
}

// Player replays a schedule's node events on the wall clock (the
// prototype side; the simulator schedules events on its own clock).
type Player struct {
	mu     sync.Mutex
	timers []*time.Timer
}

// PlayAt arms one timer per node event, firing apply(ev) at
// start + ev.At*scale. scale mirrors the driver's TimeScale so a
// stretched run stretches its faults identically. Stop the returned
// Player to cancel events that have not fired.
func (s *Schedule) PlayAt(start time.Time, scale float64, apply func(NodeEvent)) *Player {
	p := &Player{}
	if s == nil {
		return p
	}
	for _, ev := range s.Sorted() {
		ev := ev
		at := start.Add(time.Duration(float64(ev.At) * scale))
		//lint:allow detclock Player exists to replay schedules on the prototype's wall clock; the simulator replays them on its event clock
		p.timers = append(p.timers, time.AfterFunc(time.Until(at), func() { apply(ev) }))
	}
	return p
}

// Stop cancels all not-yet-fired events.
func (p *Player) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, t := range p.timers {
		t.Stop()
	}
}

// Failure-handling defaults shared by the prototype client and the
// simulator's client model, so both substrates degrade the same way.
const (
	// DefaultQuarantineAfter is how many consecutive unanswered load
	// inquiries put a server on the client's quarantine list.
	DefaultQuarantineAfter = 3
	// DefaultQuarantineFor is how long a quarantined server is avoided —
	// one directory TTL, long enough for soft state to confirm the death.
	DefaultQuarantineFor = 2 * time.Second
	// DefaultPollRetries is how many times a completely unanswered poll
	// round is retried (with backoff) before falling back to random
	// selection.
	DefaultPollRetries = 1
	// DefaultAccessRetries is how many times a failed service round trip
	// is retried on a re-chosen server.
	DefaultAccessRetries = 3
	// DefaultRetryBackoff is the base retry backoff; actual waits are
	// jittered uniformly over [0.5, 1.5)x and double per attempt.
	DefaultRetryBackoff = 2 * time.Millisecond
)

// Backoff returns the nominal backoff before retry number attempt
// (0-based): base doubled per attempt. Callers jitter it with their own
// random stream.
func Backoff(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	if attempt > 16 {
		attempt = 16 // cap the shift; retries are bounded far below this
	}
	return base << uint(attempt)
}

// DegradedDemo is the canned degraded-mode schedule of the repro
// experiment: kill `kills` of n nodes (ids 0..kills-1) at offset at,
// with lossProb poll loss on every link.
func DegradedDemo(n, kills int, at time.Duration, lossProb float64, seed uint64) *Schedule {
	if kills > n {
		kills = n
	}
	s := &Schedule{Seed: seed}
	for i := 0; i < kills; i++ {
		s.Events = append(s.Events, NodeEvent{At: at, Node: i, Kind: Crash})
	}
	if lossProb > 0 {
		s.Links = []LinkRule{{Client: -1, Server: -1, Loss: lossProb}}
	}
	return s
}
