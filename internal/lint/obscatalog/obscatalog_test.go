package obscatalog_test

import (
	"testing"

	"finelb/internal/lint/analysistest"
	"finelb/internal/lint/obscatalog"
)

// TestCatalog covers flagged literals and stray constants, clean
// catalog references, dynamic names, and the non-registry decoy.
func TestCatalog(t *testing.T) {
	analysistest.Run(t, "testdata", obscatalog.Analyzer, "catalog")
}
