// Package catalog is the obscatalog fixture: metric names reaching a
// Registry registration call must be constants declared in the obs
// package.
package catalog

import "x/internal/obs"

// strayName is constant but declared outside the catalog package.
const strayName = "stray_total"

// Register exercises flagged and clean registration shapes.
func Register(reg *obs.Registry) {
	reg.Counter(obs.MetricGood)        // catalog constant: clean
	reg.Gauge((obs.MetricGoodAlt))     // parenthesized catalog constant: clean
	reg.Counter("oops_total")          // want `metric name "oops_total" is not an obs catalog constant`
	reg.Gauge(strayName)               // want `metric name "stray_total" is not an obs catalog constant`
	reg.Histogram("oops_seconds", nil) // want `metric name "oops_seconds" is not an obs catalog constant`
}

// Gateway exercises the gateway catalog: the constant is clean, the
// same spelling as a literal is a drift bug, and the derived
// per-tenant name is dynamic plumbing the analyzer leaves alone.
func Gateway(reg *obs.Registry) {
	reg.Counter(obs.MetricGatewayRequests)                           // catalog constant: clean
	reg.Counter("gateway_requests_total")                            // want `metric name "gateway_requests_total" is not an obs catalog constant`
	reg.Counter(obs.TenantMetric(obs.MetricGatewayRequests, "paid")) // derived name: clean
}

// Membership exercises the elastic-membership catalog entries: the
// counters and gauge a substrate registers when a run's pool can
// change. Spelling any of them as a literal is the drift the analyzer
// exists to catch.
func Membership(reg *obs.Registry) {
	reg.Counter(obs.MetricMembershipJoins) // catalog constant: clean
	reg.Gauge(obs.MetricMembershipPool)    // catalog constant: clean
	reg.Counter(obs.MetricAutoscaleUps)    // catalog constant: clean
	reg.Counter("membership_joins_total")  // want `metric name "membership_joins_total" is not an obs catalog constant`
	reg.Gauge("membership_pool_size")      // want `metric name "membership_pool_size" is not an obs catalog constant`
}

// PollPath exercises the poll hot-path catalog entries: the private
// per-client instrumentation (rounds, batch sizes, scratch reuse)
// registers through the same catalog constants; spelling them as
// literals is the same drift bug as any other metric.
func PollPath(reg *obs.Registry) {
	reg.Counter(obs.MetricPollRounds)           // catalog constant: clean
	reg.Histogram(obs.MetricPollBatchSize, nil) // catalog constant: clean
	reg.Counter(obs.MetricPollEncodeReuse)      // catalog constant: clean
	reg.Counter("poll_rounds_total")            // want `metric name "poll_rounds_total" is not an obs catalog constant`
	reg.Histogram("poll_batch_size", nil)       // want `metric name "poll_batch_size" is not an obs catalog constant`
	reg.Counter("poll_encode_reuse_total")      // want `metric name "poll_encode_reuse_total" is not an obs catalog constant`
}

// Dynamic names are registry plumbing, not spelling sites: the
// analyzer leaves them to the golden name-set test.
func Dynamic(reg *obs.Registry, name string) *obs.Counter {
	return reg.Counter(name)
}

// Decoy has a Counter method that is not the obs registry; literals
// there are fine.
type Decoy struct{}

// Counter is not a registration call.
func (Decoy) Counter(name string) string { return name }

// NotTheRegistry proves method-name matching alone does not trip the
// analyzer.
func NotTheRegistry(d Decoy) string {
	return d.Counter("free_text")
}
