// Package obs is a stub of finelb/internal/obs for obscatalog
// fixtures: the analyzer suffix-matches the import path, so this stub
// stands in for the real catalog package.
package obs

// Registry mirrors the registration surface of the real registry.
type Registry struct{}

// Counter registers a counter under name.
func (r *Registry) Counter(name string, opts ...Opt) *Counter { return &Counter{} }

// Gauge registers a gauge under name.
func (r *Registry) Gauge(name string, opts ...Opt) *Gauge { return &Gauge{} }

// Histogram registers a histogram under name.
func (r *Registry) Histogram(name string, bounds []float64, opts ...Opt) *Histogram {
	return &Histogram{}
}

// Counter, Gauge, Histogram, and Opt mirror the real metric kinds.
type (
	Counter   struct{}
	Gauge     struct{}
	Histogram struct{}
	Opt       func()
)

// Catalog constants.
const (
	MetricGood    = "good_total"
	MetricGoodAlt = "good_alt_total"
	// MetricGatewayRequests mirrors the gateway catalog entry.
	MetricGatewayRequests = "gateway_requests_total"
	// Elastic-membership catalog entries, mirroring the real
	// obs.MembershipMetrics constants.
	MetricMembershipJoins = "membership_joins_total"
	MetricMembershipPool  = "membership_pool_size"
	MetricAutoscaleUps    = "autoscaler_scale_ups_total"
	// Poll hot-path catalog entries, mirroring the real
	// obs.PollPathMetrics constants.
	MetricPollRounds      = "poll_rounds_total"
	MetricPollBatchSize   = "poll_batch_size"
	MetricPollEncodeReuse = "poll_encode_reuse_total"
)

// TenantMetric mirrors the real catalog's per-tenant name derivation.
func TenantMetric(base, tenant string) string {
	return base + `{tenant="` + tenant + `"}`
}
