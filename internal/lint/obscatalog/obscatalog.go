// Package obscatalog implements the finelbvet analyzer that keeps the
// metric catalog closed.
//
// The simulator and the prototype are comparable because both resolve
// the exact same metric name set (obs.RunMetrics) against their run
// registries; a cross-substrate test asserts name-set equality. That
// guarantee dies quietly the first time a component registers a metric
// under a stray string literal. obscatalog requires every name that
// reaches an obs registry registration call (Registry.Counter,
// Registry.Gauge, Registry.Histogram) to be a named constant declared
// in the obs package itself — the catalog is the single place metric
// names may be spelled.
//
// Non-constant names (variables, parameters) pass: they cannot be
// checked mechanically and are the registry plumbing's own business;
// the golden name-set test still covers them end to end.
package obscatalog

import (
	"go/ast"
	"go/types"
	"strings"

	"finelb/internal/lint/analysis"
)

// Analyzer is the obscatalog pass.
var Analyzer = &analysis.Analyzer{
	Name: "obscatalog",
	Doc:  "require metric names passed to obs registry registration to be constants declared in the obs catalog",
	Run:  run,
}

// obsPathSuffix identifies the catalog package (suffix-matched so
// fixture stubs under a different module prefix bind too).
const obsPathSuffix = "internal/obs"

// registrations maps obs.Registry method names to the index of their
// metric-name argument.
var registrations = map[string]int{
	"Counter":   0,
	"Gauge":     0,
	"Histogram": 0,
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		argIdx, ok := registrations[sel.Sel.Name]
		if !ok || argIdx >= len(call.Args) {
			return true
		}
		if !isObsRegistryMethod(pass, sel) {
			return true
		}
		arg := call.Args[argIdx]
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Value == nil {
			return true // dynamic name: registry plumbing, not a spelling site
		}
		if declaredInObs(pass, arg) {
			return true
		}
		pass.Reportf(arg.Pos(),
			"metric name %s is not an obs catalog constant; declare it next to the catalog in internal/obs and reference the constant so the cross-substrate name set cannot drift",
			tv.Value.ExactString())
		return true
	})
	return nil
}

// isObsRegistryMethod reports whether sel resolves to a method on the
// obs package's Registry type.
func isObsRegistryMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), obsPathSuffix) {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// declaredInObs reports whether the (possibly parenthesized) constant
// expression is a direct reference to a constant declared in the obs
// package.
func declaredInObs(pass *analysis.Pass, e ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	c, ok := pass.TypesInfo.Uses[id].(*types.Const)
	return ok && c.Pkg() != nil && strings.HasSuffix(c.Pkg().Path(), obsPathSuffix)
}
