// Package lint assembles the finelbvet analyzer suite: the custom
// static checks that turn this repository's determinism, metric
// catalog, shutdown, allocation, buffer-ownership, and lock-discipline
// conventions into machine-enforced invariants. cmd/finelbvet is the
// command-line driver; the analyzers themselves live in the
// subpackages and are individually testable with
// internal/lint/analysistest.
package lint

import (
	"finelb/internal/lint/analysis"
	"finelb/internal/lint/bufown"
	"finelb/internal/lint/closecheck"
	"finelb/internal/lint/detclock"
	"finelb/internal/lint/lockcheck"
	"finelb/internal/lint/noalloc"
	"finelb/internal/lint/obscatalog"
)

// Analyzers returns the full finelbvet suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		bufown.Analyzer,
		closecheck.Analyzer,
		detclock.Analyzer,
		lockcheck.Analyzer,
		noalloc.Analyzer,
		obscatalog.Analyzer,
	}
}
