// Package analysistest runs a finelbvet analyzer over GOPATH-style
// fixture packages and checks its findings against `// want` comments,
// mirroring golang.org/x/tools/go/analysis/analysistest (which the
// pinned build environment cannot import).
//
// Fixtures live under <testdata>/src/<importpath>/. Imports inside a
// fixture resolve first against other fixture packages under
// <testdata>/src, then against the real build (standard library or
// finelb packages) via compiler export data, so a fixture can import a
// stub catalog or the genuine one.
//
// Expectations:
//
//	reg.Counter("oops") // want `metric name "oops"`
//
// A trailing `// want` comment anchors to its own line; a `// want`
// comment alone on a line anchors to the line above it (needed to
// assert on diagnostics against full-line comments such as a bare
// //lint:allow). Each backtick-quoted fragment is a regexp that must
// match one diagnostic's message on the anchored line; diagnostics and
// expectations must match one-to-one.
//
// Findings pass through the same `//lint:allow` suppression filter as
// the real finelbvet driver (analysis.Run), so fixtures can also prove
// suppression semantics.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"finelb/internal/lint/analysis"
)

// Run loads each fixture package under testdata/src, applies the
// analyzer through the shared suppression-aware driver, and reports
// every mismatch between findings and `// want` expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l := newLoader(t, testdata)
	for _, path := range pkgs {
		pkg := l.load(path)
		res, err := analysis.Run([]*analysis.Analyzer{a}, []*analysis.Package{pkg})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		check(t, pkg, res.Diagnostics)
	}
}

// loader resolves fixture import paths, caching loaded packages. It
// doubles as the types.Importer for fixture type-checking.
type loader struct {
	t    *testing.T
	src  string // <testdata>/src
	fset *token.FileSet
	pkgs map[string]*analysis.Package

	exports map[string]string // real-build import path -> export data
	gc      types.Importer
}

// listedExport is the slice of `go list -json` output the fixture
// loader reads.
type listedExport struct {
	ImportPath string
	Export     string
}

func newLoader(t *testing.T, testdata string) *loader {
	t.Helper()
	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatal(err)
	}
	l := &loader{
		t:       t,
		src:     filepath.Join(abs, "src"),
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*analysis.Package),
		exports: make(map[string]string),
	}
	l.gc = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return l
}

// Import implements types.Importer over the two-level search path:
// fixture tree first, real build second.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.src, filepath.FromSlash(path)); isDir(dir) {
		return l.load(path).Types, nil
	}
	if _, ok := l.exports[path]; !ok {
		if err := l.listExports(path); err != nil {
			return nil, err
		}
	}
	return l.gc.Import(path)
}

// listExports asks the go tool for export data of path and all its
// dependencies, merging them into the lookup table.
func (l *loader) listExports(path string) error {
	cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json=ImportPath,Export", path)
	cmd.Dir = moduleRoot()
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list -export %s: %v", path, err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var le listedExport
		if err := dec.Decode(&le); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("go list -export %s: decoding output: %v", path, err)
		}
		if le.Export != "" {
			l.exports[le.ImportPath] = le.Export
		}
	}
	if _, ok := l.exports[path]; !ok {
		return fmt.Errorf("go list produced no export data for %q", path)
	}
	return nil
}

// load parses and type-checks one fixture package (cached).
func (l *loader) load(path string) *analysis.Package {
	l.t.Helper()
	if pkg, ok := l.pkgs[path]; ok {
		return pkg
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		l.t.Fatalf("fixture package %s: %v", path, err)
	}
	pkg := &analysis.Package{ImportPath: path, Dir: dir, Fset: l.fset}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		file := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.fset, file, nil, parser.ParseComments)
		if err != nil {
			l.t.Fatalf("fixture %s: %v", file, err)
		}
		pkg.GoFiles = append(pkg.GoFiles, file)
		pkg.Syntax = append(pkg.Syntax, f)
	}
	if len(pkg.Syntax) == 0 {
		l.t.Fatalf("fixture package %s: no Go files in %s", path, dir)
	}
	pkg.TypesInfo = analysis.NewTypesInfo()
	conf := &types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(path, l.fset, pkg.Syntax, pkg.TypesInfo)
	if len(pkg.TypeErrors) > 0 {
		l.t.Fatalf("fixture package %s does not type-check: %v", path, pkg.TypeErrors)
	}
	l.pkgs[path] = pkg
	return pkg
}

// expectation is one `// want` regexp anchored to a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile("`([^`]+)`")

// check compares diagnostics against the fixture's want comments.
func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for i, f := range pkg.Syntax {
		src, err := os.ReadFile(pkg.GoFiles[i])
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(string(src), "\n")
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				anchor := pos.Line
				// A want comment alone on its line asserts on the line
				// above (for full-line comments like a bare //lint:allow).
				if pos.Line-1 < len(lines) && strings.TrimSpace(lines[pos.Line-1][:pos.Column-1]) == "" {
					anchor = pos.Line - 1
				}
				ms := wantRE.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Errorf("%s: want comment holds no backtick-quoted pattern", pos)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: anchor, re: re})
				}
			}
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !match(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.re)
		}
	}
}

// match consumes the first unused expectation covering (file, line,
// message).
func match(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.used && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.used = true
			return true
		}
	}
	return false
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so export-data listing runs in module mode wherever the test
// binary starts.
func moduleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}
