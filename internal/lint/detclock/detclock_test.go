package detclock_test

import (
	"testing"

	"finelb/internal/lint/analysistest"
	"finelb/internal/lint/detclock"
)

// TestDeterministicScope covers the package marker (forbidden clocks,
// global rand, map-order writes) and the file-scoped marker. The
// pooled fixture exercises the hot path's free-list pool pattern: the
// pool itself must produce no diagnostics, while wall-clock stamps or
// global-rand jitter on the recycle path are still caught.
func TestDeterministicScope(t *testing.T) {
	analysistest.Run(t, "testdata", detclock.Analyzer, "det", "mixed", "pooled")
}

// TestInjectedClock covers rule 3: wall-clock calls beside an injected
// clock, in otherwise unconstrained packages.
func TestInjectedClock(t *testing.T) {
	analysistest.Run(t, "testdata", detclock.Analyzer, "injected")
}

// TestSuppression proves the //lint:allow contract: a well-formed
// directive silences exactly one diagnostic, and bare or reasonless
// directives silence nothing and are themselves flagged.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, "testdata", detclock.Analyzer, "suppress")
}

// TestScopeConfig pins the deterministic package list to the packages
// whose results feed golden-seed digests; shrinking it must be a
// conscious act.
func TestScopeConfig(t *testing.T) {
	for _, path := range []string{
		"finelb/internal/simcluster",
		"finelb/internal/sim",
		"finelb/internal/queueing",
		"finelb/internal/workload",
		"finelb/internal/faults",
		"finelb/internal/membership",
		"finelb/internal/stats",
	} {
		if !detclock.DeterministicPackages[path] {
			t.Errorf("DeterministicPackages is missing %s", path)
		}
	}
	if !detclock.DeterministicFiles["finelb/internal/transport"]["mem.go"] {
		t.Errorf("DeterministicFiles is missing the transport mem fabric")
	}
}
