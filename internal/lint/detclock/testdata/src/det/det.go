// Package det is a detclock fixture: the //lint:deterministic marker
// below scopes the whole package, so wall clocks, the global math/rand
// source, and map-order-dependent writes are all flagged.
//
//lint:deterministic
package det

import (
	"math/rand"
	"sort"
	"time"
)

// Clock is an injected time source: referencing time.Now as a value is
// fine — only calling it is forbidden.
type Clock func() time.Time

// Wall trips every forbidden time function.
func Wall() {
	_ = time.Now()          // want `call to time.Now in deterministic code`
	time.Sleep(time.Second) // want `call to time.Sleep in deterministic code`
	<-time.After(1)         // want `call to time.After in deterministic code`
	t := time.NewTimer(1)   // want `call to time.NewTimer in deterministic code`
	t.Stop()
	k := time.NewTicker(1) // want `call to time.NewTicker in deterministic code`
	k.Stop()
	_ = time.Since(time.Time{}) // want `call to time.Since in deterministic code`
}

// Injected shows the approved pattern: take the clock as a value.
func Injected(now Clock) time.Duration {
	start := now()
	return now().Sub(start)
}

// GlobalRand draws from the shared source; SeededRand is the fix.
func GlobalRand() int {
	rand.Shuffle(1, func(i, j int) {}) // want `call to the global rand.Shuffle in deterministic code`
	return rand.Intn(10)               // want `call to the global rand.Intn in deterministic code`
}

// SeededRand builds its generator from an explicit seed.
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// MapOrder leaks map iteration order into results.
func MapOrder(m map[string]int, out chan<- int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v) // want `append to vals inside a map-range loop`
		out <- v               // want `send inside a map-range loop`
	}
	return vals
}

// SortedKeys is the idiomatic fix: collecting bare keys is exempt, and
// the sorted second pass is order-independent.
func SortedKeys(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]int, 0, len(keys))
	for _, k := range keys {
		vals = append(vals, m[k])
	}
	return vals
}
