// Package pooled is a detclock fixture for the free-list pool pattern
// the engine hot path uses (DESIGN.md §10): slice-backed records
// recycled through an index-linked free list, with a generation counter
// invalidating stale handles and callbacks cleared on release. The
// pattern is deterministic by construction — the analyzer must stay
// quiet on it — while timestamping or jittering pool reuse from wall
// clocks or the global rand source is still flagged.
//
//lint:deterministic
package pooled

import (
	"math/rand"
	"time"
)

// node is one pooled record. fn is cleared on release so recycled
// nodes don't pin whatever the callback captured.
type node struct {
	gen  uint64
	fn   func()
	next int32
}

// pool is a slice-backed free list: acquire pops an index, release
// pushes it back. No allocation after warm-up, no pointers to chase.
type pool struct {
	nodes []node
	free  int32 // head of the free list, -1 when empty
}

func newPool(n int) *pool {
	p := &pool{nodes: make([]node, n), free: -1}
	for i := n - 1; i >= 0; i-- {
		p.nodes[i].next = p.free
		p.free = int32(i)
	}
	return p
}

// acquire hands out a free node, growing by doubling when the list is
// dry. The (index, generation) pair is the caller's handle.
func (p *pool) acquire(fn func()) (int32, uint64) {
	if p.free < 0 {
		i := int32(len(p.nodes))
		p.nodes = append(p.nodes, node{next: -1})
		p.free = i
	}
	i := p.free
	n := &p.nodes[i]
	p.free = n.next
	n.fn = fn
	return i, n.gen
}

// release recycles a node: bump the generation so stale handles miss,
// clear the callback so it doesn't pin memory, push onto the free list.
func (p *pool) release(i int32) {
	n := &p.nodes[i]
	n.gen++
	n.fn = nil
	n.next = p.free
	p.free = i
}

// stampWall is the violation this fixture exists to catch: recycled
// records must never carry wall-clock state.
func (p *pool) stampWall(i int32) time.Time {
	_ = i
	return time.Now() // want `call to time.Now in deterministic code`
}

// jitterReuse randomizes reuse order from the global source — reuse
// order feeds event sequence numbers, so this breaks replay.
func (p *pool) jitterReuse() {
	if rand.Intn(2) == 0 { // want `call to the global rand.Intn in deterministic code`
		p.free = -1
	}
}
