// Package suppress proves the `//lint:allow` contract: a well-formed
// directive silences exactly the diagnostics of its analyzer on its
// own line (or the line below), and a directive with no analyzer or no
// reason silences nothing and is itself reported.
//
//lint:deterministic
package suppress

import "time"

// Allowed carries one annotated escape: the directive above the call
// silences that call only.
func Allowed() time.Time {
	//lint:allow detclock fixture exercises an intentional wall-clock escape
	return time.Now()
}

// StillFlagged is the identical violation without a directive — the
// allow in Allowed reaches exactly one diagnostic, not the package.
func StillFlagged() time.Time {
	return time.Now() // want `call to time.Now in deterministic code`
}

// SameLine shows the trailing-comment form.
func SameLine() time.Time {
	return time.Now() //lint:allow detclock fixture exercises the same-line directive form
}

// Malformed directives suppress nothing and are reported themselves;
// the call they decorate is still flagged.
func Malformed() time.Time {
	//lint:allow
	// want `lint:allow directive is missing an analyzer name and a reason`
	t := time.Now() // want `call to time.Now in deterministic code`
	//lint:allow detclock
	// want `lint:allow directive is missing a reason`
	_ = time.Now() // want `call to time.Now in deterministic code`
	return t
}
