// Package injected exercises detclock's third rule: no deterministic
// marker anywhere, but values that carry an injected clock must use
// it.
package injected

import "time"

// Poller pairs a wall-clock-free test seam (now, sleep) with the code
// that should honor it.
type Poller struct {
	now   func() time.Time
	sleep func(time.Duration)
}

// Bad bypasses both injected funcs.
func (p *Poller) Bad() time.Duration {
	start := time.Now()          // want `time.Now bypasses the injected clock p.now`
	time.Sleep(1)                // want `time.Sleep bypasses the injected sleeper p.sleep`
	return time.Now().Sub(start) // want `time.Now bypasses the injected clock p.now`
}

// Good goes through the seam.
func (p *Poller) Good() time.Duration {
	start := p.now()
	p.sleep(1)
	return p.now().Sub(start)
}

// Config reaches the clock through a struct parameter.
type Config struct {
	Clock func() time.Time
}

// ViaParam still counts: the clock is in scope.
func ViaParam(cfg Config) time.Time {
	return time.Now() // want `time.Now bypasses the injected clock cfg.Clock`
}

// ViaFuncParam takes the clock directly.
func ViaFuncParam(now func() time.Time) time.Time {
	return time.Now() // want `time.Now bypasses the injected clock now`
}

// NoClock has nothing injected; the wall clock is fine.
func NoClock() time.Time {
	return time.Now()
}
