package mixed

import "time"

// WallSide lives in the same package but an unmarked file: the
// wall clock is its business.
func WallSide() time.Time {
	return time.Now()
}
