// det.go carries a file-scoped marker: only this file of package mixed
// is deterministic.
//
//lint:deterministic file
package mixed

import "time"

// DetSide is in scope via the file marker.
func DetSide() time.Time {
	return time.Now() // want `call to time.Now in deterministic code`
}
