// Package detclock implements the finelbvet analyzer that keeps the
// deterministic substrate deterministic.
//
// The repository's headline property — bit-identical golden-seed
// digests for the simulator and the mem-transport prototype — holds
// only while the packages those digests flow through stay pure
// functions of their seeds and specs. detclock turns that convention
// into a machine-checked invariant:
//
//  1. In deterministic packages (the simulator stack plus the
//     in-memory transport fabric), calls to wall-clock functions
//     (time.Now, time.Sleep, time.After, timers, tickers) and to the
//     global math/rand RNG are forbidden; only injected clocks and
//     seeded *rand.Rand values pass.
//  2. In deterministic packages, ranging over a map while appending to
//     an outer slice or sending on a channel is flagged: map iteration
//     order would leak into results.
//  3. Everywhere (any package), a function that already has an
//     injected clock in scope — a receiver or struct-parameter field
//     `now func() time.Time` / `sleep func(time.Duration)`, or a
//     parameter of those shapes — must use it; a direct time.Now or
//     time.Sleep beside an injected clock is almost always the bug
//     that splits a code path across two clocks.
//
// Scope: a package is deterministic if its import path is listed in
// DeterministicPackages, if one of its files carries a
// `//lint:deterministic` comment, or (file granularity) if the file is
// listed in DeterministicFiles or carries `//lint:deterministic file`.
// Intentional wall-clock escapes (the fault Player that replays
// schedules on the prototype's clock, the mem fabric's latency timers)
// are annotated in place with `//lint:allow detclock <reason>`.
package detclock

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"finelb/internal/lint/analysis"
)

// Analyzer is the detclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "detclock",
	Doc: "forbid wall clocks, global math/rand, and map-order-dependent writes in deterministic packages, " +
		"and direct time.Now/time.Sleep wherever an injected clock is in scope",
	Run: run,
}

// DeterministicPackages is the fixed deterministic core: every package
// whose behavior must be a pure function of seed and spec. The list is
// a backstop — removing a `//lint:deterministic` marker cannot descope
// these packages.
var DeterministicPackages = map[string]bool{
	"finelb/internal/simcluster": true,
	"finelb/internal/sim":        true,
	"finelb/internal/queueing":   true,
	"finelb/internal/workload":   true,
	"finelb/internal/faults":     true,
	"finelb/internal/membership": true,
	"finelb/internal/stats":      true,
}

// DeterministicFiles extends the scope with single files inside
// otherwise wall-clock packages: the transport package hosts both the
// real-socket substrate (wall clock by nature) and the deterministic
// in-memory fabric.
var DeterministicFiles = map[string]map[string]bool{
	"finelb/internal/transport": {"mem.go": true},
}

// forbiddenTime are the time package functions that read or schedule
// on the wall clock.
var forbiddenTime = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// allowedRand are the math/rand (and v2) package-level constructors
// that produce explicitly seeded generators; everything else at
// package level draws from the shared global source.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	pkgDet := DeterministicPackages[pass.Pkg.Path()]
	files := DeterministicFiles[pass.Pkg.Path()]
	if !pkgDet {
		for _, f := range pass.Files {
			if marker(f) == "package" {
				pkgDet = true
				break
			}
		}
	}
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		det := pkgDet || files[base] || marker(f) == "file"
		checkFile(pass, f, det)
	}
	return nil
}

// marker classifies a file's `//lint:deterministic` directive:
// "package" scopes the whole package, "file" just this file, "" none.
func marker(f *ast.File) string {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//lint:deterministic")
			if !ok {
				continue
			}
			if strings.TrimSpace(rest) == "file" {
				return "file"
			}
			return "package"
		}
	}
	return ""
}

func checkFile(pass *analysis.Pass, f *ast.File, deterministic bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if deterministic {
				checkCall(pass, n)
			}
		case *ast.RangeStmt:
			if deterministic {
				checkMapRange(pass, n)
			}
		case *ast.FuncDecl:
			// The injected-clock consistency check runs everywhere; in
			// deterministic files the outright ban already covers the
			// same calls, so skip it to avoid double reports.
			if !deterministic {
				checkInjectedClock(pass, n)
			}
		}
		return true
	})
}

// callee resolves a call to its package-level *types.Func (nil for
// methods, builtins, and locals).
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := callee(pass, call)
	if fn == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTime[fn.Name()] {
			pass.Reportf(call.Pos(),
				"call to time.%s in deterministic code; take an injected clock (the simulator's event clock or a now/sleep func value)",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRand[fn.Name()] {
			pass.Reportf(call.Pos(),
				"call to the global %s.%s in deterministic code; draw from a seeded *rand.Rand (stats.NewRNG) instead",
				filepath.Base(fn.Pkg().Path()), fn.Name())
		}
	}
}

// checkMapRange flags `for k := range m` loops whose bodies append to
// a slice declared outside the loop or send on a channel: the write
// order then depends on Go's randomized map iteration. The one exempt
// shape is appending the bare range key — that is the first half of
// the idiomatic fix (collect keys, sort, iterate sorted).
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, ok := tv.Type.Underlying().(*types.Map); !ok {
		return
	}
	var keyObj types.Object
	if id, ok := rng.Key.(*ast.Ident); ok {
		keyObj = pass.TypesInfo.ObjectOf(id)
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "send inside a map-range loop publishes values in nondeterministic map order; iterate over sorted keys")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(pass, call.Fun, "append") || i >= len(n.Lhs) {
					continue
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if obj == nil || obj.Pos() == token.NoPos {
					continue
				}
				if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
					continue // loop-local accumulator
				}
				if appendsOnlyKey(pass, call, keyObj) {
					continue // collecting keys to sort them is the fix, not the bug
				}
				pass.Reportf(n.Pos(),
					"append to %s inside a map-range loop records values in nondeterministic map order; iterate over sorted keys", id.Name)
			}
		}
		return true
	})
}

// appendsOnlyKey reports whether every appended element is the bare
// range key variable.
func appendsOnlyKey(pass *analysis.Pass, call *ast.CallExpr, keyObj types.Object) bool {
	if keyObj == nil || len(call.Args) < 2 {
		return false
	}
	for _, arg := range call.Args[1:] {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || pass.TypesInfo.ObjectOf(id) != keyObj {
			return false
		}
	}
	return true
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// checkInjectedClock enforces rule 3: a function with an injected
// clock in scope may not call time.Now/time.Sleep directly.
func checkInjectedClock(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	nowVia, sleepVia := clockSources(pass, fd)
	if nowVia == "" && sleepVia == "" {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(pass, call)
		if fn == nil || fn.Pkg().Path() != "time" {
			return true
		}
		switch {
		case fn.Name() == "Now" && nowVia != "":
			pass.Reportf(call.Pos(), "time.Now bypasses the injected clock %s; call it instead", nowVia)
		case fn.Name() == "Sleep" && sleepVia != "":
			pass.Reportf(call.Pos(), "time.Sleep bypasses the injected sleeper %s; call it instead", sleepVia)
		}
		return true
	})
}

// clockSources finds an injected clock reachable from fd's receiver or
// parameters: a func() time.Time (readable description returned) for
// now, and a func(time.Duration) named like a sleeper for sleep.
func clockSources(pass *analysis.Pass, fd *ast.FuncDecl) (nowVia, sleepVia string) {
	consider := func(name, container string, t types.Type) {
		if !clockish(name) {
			return
		}
		switch {
		case isFuncTimeTime(t) && nowVia == "":
			nowVia = container + name
		case isFuncDuration(t) && sleepVia == "" && sleepish(name):
			sleepVia = container + name
		}
	}
	scan := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, id := range field.Names {
				obj := pass.TypesInfo.ObjectOf(id)
				if obj == nil {
					continue
				}
				consider(id.Name, "", obj.Type())
				if st, ok := obj.Type().Underlying().(*types.Pointer); ok {
					scanStruct(pass, consider, id.Name+".", st.Elem())
				} else {
					scanStruct(pass, consider, id.Name+".", obj.Type())
				}
			}
		}
	}
	scan(fd.Recv)
	scan(fd.Type.Params)
	return nowVia, sleepVia
}

// scanStruct feeds a struct type's immediate fields to consider,
// skipping fields the analyzed package cannot reference (an unexported
// clock in somebody else's struct is not an injected clock here).
func scanStruct(pass *analysis.Pass, consider func(name, container string, t types.Type), prefix string, t types.Type) {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() && f.Pkg() != pass.Pkg {
			continue
		}
		consider(f.Name(), prefix, f.Type())
	}
}

// clockish names mark a value as an injected time source.
func clockish(name string) bool {
	switch strings.ToLower(name) {
	case "now", "clock", "sleep":
		return true
	}
	return false
}

func sleepish(name string) bool { return strings.ToLower(name) == "sleep" }

func isFuncTimeTime(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	return isTimeType(sig.Results().At(0).Type(), "Time")
}

func isFuncDuration(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return false
	}
	return isTimeType(sig.Params().At(0).Type(), "Duration")
}

func isTimeType(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == name
}
