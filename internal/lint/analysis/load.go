package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package ready for
// analysis. It is the subset of a go/packages.Package the suite needs.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string // absolute paths, build-constrained non-test files
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// TypeErrors collects type-checker complaints. Analysis still runs
	// on a package with type errors (best effort), but the driver
	// reports them so a broken tree cannot silently pass the linters.
	TypeErrors []error
}

// listPackage is the slice of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns with the go tool (run in dir, "" = cwd), parses
// the matched packages' non-test sources, and type-checks them against
// compiler export data for every dependency. Test files are excluded:
// the invariants finelbvet enforces are about production code paths,
// and tests legitimately use wall clocks, literals, and ad-hoc
// teardown.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var targets []*listPackage
	exports := make(map[string]string) // import path -> export data file
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		targets = append(targets, lp)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one listed package from source.
// Dependencies (including sibling packages in the same module) resolve
// through imp's export data, so packages can be checked independently.
func typecheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	pkg := &Package{ImportPath: lp.ImportPath, Dir: lp.Dir, Fset: fset}
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.GoFiles = append(pkg.GoFiles, path)
		pkg.Syntax = append(pkg.Syntax, f)
	}
	pkg.TypesInfo = NewTypesInfo()
	conf := &types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(lp.ImportPath, fset, pkg.Syntax, pkg.TypesInfo)
	pkg.Types = tpkg
	return pkg, nil
}

// NewTypesInfo allocates the types.Info maps analyzers rely on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
