package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// DirectiveAnalyzer is the pseudo-analyzer name under which the driver
// reports malformed `//lint:allow` directives. It is not a registered
// analyzer and cannot itself be suppressed: a directive that names no
// analyzer or gives no reason silences nothing and must be fixed.
const DirectiveAnalyzer = "lintdirective"

// allowDirective is one parsed `//lint:allow <analyzer> <reason>`
// comment. A well-formed directive suppresses diagnostics of the named
// analyzer on its own source line and on the line directly below it
// (the comment-above-the-statement style).
type allowDirective struct {
	file     string
	line     int
	analyzer string
}

// RunResult is the outcome of applying a suite of analyzers to a
// loaded package set.
type RunResult struct {
	// Diagnostics are the surviving (unsuppressed) findings plus one
	// DirectiveAnalyzer finding per malformed directive, in file/line
	// order.
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by well-formed directives.
	Suppressed int
	// Fset resolves the diagnostics' positions.
	Fset *token.FileSet
}

// Run applies every analyzer to every package and filters the findings
// through the packages' `//lint:allow` directives.
func Run(analyzers []*Analyzer, pkgs []*Package) (*RunResult, error) {
	res := &RunResult{}
	for _, pkg := range pkgs {
		res.Fset = pkg.Fset
		allows, malformed := scanDirectives(pkg.Fset, pkg.Syntax)
		res.Diagnostics = append(res.Diagnostics, malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.Diagnostics() {
				if suppressed(pkg.Fset, d, allows) {
					res.Suppressed++
					continue
				}
				res.Diagnostics = append(res.Diagnostics, d)
			}
		}
	}
	sortDiagnostics(res.Fset, res.Diagnostics)
	return res, nil
}

// scanDirectives collects the allow directives of one package and
// reports malformed ones as DirectiveAnalyzer diagnostics.
func scanDirectives(fset *token.FileSet, files []*ast.File) ([]allowDirective, []Diagnostic) {
	var allows []allowDirective
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					what := "an analyzer name and a reason"
					if len(fields) == 1 {
						what = "a reason"
					}
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: DirectiveAnalyzer,
						Message:  fmt.Sprintf("lint:allow directive is missing %s (want //lint:allow <analyzer> <reason>); it suppresses nothing", what),
					})
					continue
				}
				pos := fset.Position(c.Pos())
				allows = append(allows, allowDirective{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
				})
			}
		}
	}
	return allows, malformed
}

// suppressed reports whether a well-formed directive covers d: same
// analyzer, same file, and the directive sits on the diagnostic's line
// or the line above it.
func suppressed(fset *token.FileSet, d Diagnostic, allows []allowDirective) bool {
	pos := fset.Position(d.Pos)
	for _, a := range allows {
		if a.analyzer == d.Analyzer && a.file == pos.Filename &&
			(a.line == pos.Line || a.line == pos.Line-1) {
			return true
		}
	}
	return false
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	if fset == nil {
		return
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
