// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface the finelbvet suite
// needs. The build environment pins the module graph (no network, no
// module cache), so instead of importing x/tools this package provides
// the same three ideas on the standard library alone:
//
//   - Analyzer: a named, documented check with a Run function.
//   - Pass: one analyzer applied to one type-checked package.
//   - Diagnostic: a positioned finding.
//
// Packages are loaded by internal/lint/analysis.Load (go list +
// go/parser + go/types over export data) and analyzers are executed by
// Run, which also applies the repository's `//lint:allow` suppression
// directives. Fixture-style tests live in internal/lint/analysistest.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Unlike x/tools analyzers there
// are no facts or requires-graph: every finelbvet analyzer is a
// self-contained single-package pass, which keeps the driver trivial.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` suppression directives.
	Name string
	// Doc is the analyzer's user-facing documentation. The first line
	// is the summary shown by `finelbvet -help`.
	Doc string
	// Run applies the analyzer to one package. Findings are reported
	// through pass.Report/Reportf; the error return is for operational
	// failures only (it aborts the whole run).
	Run func(*Pass) error
}

// String returns the analyzer's name.
func (a *Analyzer) String() string { return a.Name }

// Diagnostic is one positioned finding.
type Diagnostic struct {
	// Pos locates the finding (resolve with the pass's FileSet).
	Pos token.Pos
	// Analyzer is the reporting analyzer's name (filled by the driver).
	Analyzer string
	// Message is the human-readable finding.
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Fset resolves token.Pos values for every file in the package
	// (and is shared across packages in one Load).
	Fset *token.FileSet
	// Files are the package's parsed, comment-bearing syntax trees.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records type and object resolution for the syntax.
	TypesInfo *types.Info

	diags []Diagnostic
}

// Report records one finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.diags = append(p.diags, d)
}

// Reportf records one finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings reported so far.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// Inspect walks every file in the pass in source order, calling fn for
// each node (pre-order); fn returning false prunes the subtree. It is
// the moral equivalent of the x/tools inspect pass without the
// memoized traversal.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
