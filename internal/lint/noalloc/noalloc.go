// Package noalloc implements the finelbvet analyzer that turns the
// repository's zero-steady-state-allocation contracts into a static
// invariant.
//
// The hot paths of DESIGN.md §10 (simulator dispatch) and §12 (poll
// rounds) were hand-tuned to zero allocations per event/round, but
// until now that contract was enforced only at runtime by
// `testing.AllocsPerRun` gates — which are skipped under -race, the
// very configuration CI leans on. noalloc is the compile-time half of
// the gate: a function (or file) marked `//lint:noalloc` may not
// contain the constructs that heap-allocate:
//
//   - make and new
//   - composite literals that escape to the heap: &T{...}, and map or
//     slice literals (value struct literals stay on the stack and pass)
//   - append that is not in-place (`x = append(x, ...)` or
//     `x = append(x[:0], ...)` into pooled backing passes; growth past
//     capacity remains the runtime gate's job)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - calls into package fmt, and errors.New
//   - explicit conversions that box a concrete value into an interface
//   - closures that capture variables (a captured variable and its
//     closure are heap-allocated)
//   - go statements (a goroutine allocates its g and stack)
//
// Two escape hatches keep the rule honest rather than noisy:
// constructs inside an argument of the builtin panic are exempt (a
// crashing path is not steady state), and any finding can be
// suppressed per-site with `//lint:allow noalloc <reason>` — the
// documented idiom for pool-miss mint paths, which allocate exactly
// once per pooled record.
//
// The analyzer is intentionally intra-procedural and syntactic: it
// does not chase calls, so a marked function calling an allocating
// helper is the helper's problem (mark it too), and closure bodies are
// not re-checked inside the marked function (the closure runs later,
// on some other path; flag is on its creation). The runtime
// AllocsPerRun gates remain the ground truth for what the compiler's
// escape analysis actually does; noalloc is the reviewable, race-mode-
// proof statement of intent.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"finelb/internal/lint/analysis"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "forbid heap-allocating constructs in functions or files marked //lint:noalloc",
	Run:  run,
}

// marker is the annotation prefix.
const marker = "//lint:noalloc"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		fileScoped := fileMarked(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fileScoped || funcMarked(fd) {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// fileMarked reports whether f carries a file-scoped `//lint:noalloc
// file` directive (conventionally next to the package clause).
func fileMarked(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, marker)
			if ok && strings.TrimSpace(rest) == "file" {
				return true
			}
		}
	}
	return false
}

// funcMarked reports whether fd's doc comment group carries a
// `//lint:noalloc` directive (anything after the marker is a free-form
// reason). The marker must sit in the doc comment — directly above the
// declaration with no blank line — so the annotation travels with the
// function.
func funcMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, marker); ok && strings.TrimSpace(rest) != "file" {
			return true
		}
	}
	return false
}

// checkFunc walks one marked function's own statements, flagging
// heap-allocating constructs. Nested function literals are flagged at
// creation (when they capture) but their bodies are not descended
// into.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
			if isPanicCall(pass, n) {
				return false // a crashing path is not steady state
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&%s{...} allocates; use a pooled record or suppress the mint path with //lint:allow noalloc <reason>", typeLabel(pass, cl))
					return false
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "map literal allocates")
				case *types.Slice:
					pass.Reportf(n.Pos(), "slice literal allocates")
				}
			}
		case *ast.BinaryExpr:
			checkConcat(pass, n)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates a goroutine; hot paths hand work to existing goroutines")
		case *ast.FuncLit:
			if capt := firstCapture(pass, fd, n); capt != "" {
				pass.Reportf(n.Pos(), "closure captures %s and allocates; prebuild it at pool time or suppress with //lint:allow noalloc <reason>", capt)
			}
			return false // the literal's body runs on some other path
		case *ast.AssignStmt:
			checkAppends(pass, n)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") {
					pass.Reportf(call.Pos(), "append is not in-place (want x = append(x, ...) over pooled backing); this creates or risks new backing")
				}
			}
		}
		return true
	})
}

// checkCall flags make, new, fmt.*, errors.New, allocation-shaped
// conversions, and interface boxing.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make allocates; use pooled or pre-sized backing")
			case "new":
				pass.Reportf(call.Pos(), "new allocates; use a pooled record")
			}
			return
		}
	}
	// Conversions: T(x) where Fun is a type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(pass, call, tv.Type)
		return
	}
	// Package-level callees.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "fmt":
		pass.Reportf(call.Pos(), "fmt.%s allocates (formatting boxes its operands); format off the hot path", fn.Name())
	case "errors":
		if fn.Name() == "New" {
			pass.Reportf(call.Pos(), "errors.New allocates per call; return a fixed sentinel error instead")
		}
	}
}

// checkConversion flags conversions that must copy (string<->slice)
// or box (concrete value into interface). Constant-folded conversions
// are free and pass.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr, target types.Type) {
	if tv, ok := pass.TypesInfo.Types[call]; ok && tv.Value != nil {
		return // constant expression, folded at compile time
	}
	if len(call.Args) != 1 {
		return
	}
	argT, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	from := argT.Type.Underlying()
	to := target.Underlying()
	if b, ok := to.(*types.Basic); ok && b.Info()&types.IsString != 0 {
		if fb, fromBasic := from.(*types.Basic); !fromBasic || fb.Info()&types.IsString == 0 {
			pass.Reportf(call.Pos(), "conversion to string allocates and copies")
		}
		return
	}
	if _, toSlice := to.(*types.Slice); toSlice {
		if b, ok := from.(*types.Basic); ok && b.Info()&types.IsString != 0 {
			pass.Reportf(call.Pos(), "[]byte/[]rune conversion of a string allocates and copies")
		}
		return
	}
	if _, toIface := to.(*types.Interface); toIface {
		if _, fromIface := from.(*types.Interface); !fromIface {
			if _, fromPtr := from.(*types.Pointer); !fromPtr {
				pass.Reportf(call.Pos(), "conversion boxes a value into an interface and allocates")
			}
		}
	}
}

// checkConcat flags string concatenation.
func checkConcat(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	tv, ok := pass.TypesInfo.Types[b]
	if !ok || tv.Value != nil { // constant concatenation is folded
		return
	}
	if bt, ok := tv.Type.Underlying().(*types.Basic); ok && bt.Info()&types.IsString != 0 {
		pass.Reportf(b.Pos(), "string concatenation allocates; append into a pooled []byte instead")
	}
}

// checkAppends enforces the in-place append shape: the result must be
// assigned back over the appended slice (`x = append(x, ...)`,
// `x = append(x[:0], ...)`). Anything else — a fresh variable, a bare
// expression, appending one slice onto another — creates (or risks)
// new backing.
func checkAppends(pass *analysis.Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) == 0 {
			continue
		}
		if i < len(as.Lhs) && exprKey(as.Lhs[i]) != "" &&
			exprKey(as.Lhs[i]) == exprKey(sliceBase(call.Args[0])) {
			continue // in-place: growth is the runtime gate's concern
		}
		pass.Reportf(call.Pos(), "append is not in-place (want x = append(x, ...) over pooled backing); this creates or risks new backing")
	}
}

// sliceBase strips slicing from an append destination: base(buf[:0])
// is buf.
func sliceBase(e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	if s, ok := e.(*ast.SliceExpr); ok {
		return ast.Unparen(s.X)
	}
	return e
}

// exprKey renders simple lvalue shapes for identity comparison; ""
// means unrenderable (never equal).
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := exprKey(e.X); x != "" {
			return x + "." + e.Sel.Name
		}
	case *ast.StarExpr:
		if x := exprKey(e.X); x != "" {
			return "*" + x
		}
	}
	return ""
}

// firstCapture returns the name of one variable the literal captures
// from the enclosing function ("" when it captures nothing — a static
// closure that does not allocate).
func firstCapture(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	capture := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if capture != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function but outside
		// the literal.
		if v.Pos() >= fd.Pos() && v.Pos() <= fd.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() <= lit.End()) {
			capture = v.Name()
		}
		return true
	})
	return capture
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func isPanicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	return isBuiltin(pass, call.Fun, "panic")
}

// typeLabel names a composite literal's type for the message.
func typeLabel(pass *analysis.Pass, cl *ast.CompositeLit) string {
	if cl.Type == nil {
		return "T"
	}
	if k := exprKey(cl.Type); k != "" {
		return k
	}
	return "T"
}
