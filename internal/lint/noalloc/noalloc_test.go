package noalloc_test

import (
	"testing"

	"finelb/internal/lint/analysistest"
	"finelb/internal/lint/noalloc"
)

// TestMarkedFunctions covers the per-function marker: every forbidden
// construct is flagged, the legal shapes (in-place append, value
// literals, panic paths, static closures) pass, and unmarked functions
// are never checked.
func TestMarkedFunctions(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "marked")
}

// TestFileScope covers the `//lint:noalloc file` marker.
func TestFileScope(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "filescope")
}

// TestSuppression proves the //lint:allow contract for noalloc — the
// pool-miss mint idiom — in both the line-above and same-line forms.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "suppress")
}

// TestMarkersInTestFilesInert proves a marked violation in a _test.go
// file produces nothing: the loader, like the real driver, analyzes
// production sources only.
func TestMarkersInTestFilesInert(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "testskip")
}
