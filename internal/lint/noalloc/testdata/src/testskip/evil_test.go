package testskip

// Mint would be flagged in a production file; in a _test.go file the
// analyzer never sees it, marker and all.
//
//lint:noalloc
func Mint() []byte {
	return make([]byte, 64)
}
