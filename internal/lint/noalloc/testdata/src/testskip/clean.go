// Package testskip holds its only violation in a _test.go file, which
// the loader (like the real finelbvet driver) never parses: markers in
// test files are inert, because the invariants cover production code
// paths only.
package testskip

// Reset is steady-state clean.
//
//lint:noalloc
func Reset(b []byte) []byte { return b[:0] }
