// Package marked exercises every construct the noalloc analyzer
// forbids inside a `//lint:noalloc` function, plus the shapes that
// must pass: in-place appends, value struct literals, calls, and
// panic-path formatting.
package marked

import (
	"errors"
	"fmt"
)

type record struct {
	buf  []byte
	next *record
}

type pool struct {
	free []*record
	seen map[string]int
}

// Hot is the flagged kitchen sink.
//
//lint:noalloc
func (p *pool) Hot(s string, b []byte) {
	_ = make([]byte, 8)        // want `make allocates`
	_ = new(record)            // want `new allocates`
	_ = &record{}              // want `&record\{...\} allocates`
	_ = []int{1, 2}            // want `slice literal allocates`
	_ = map[string]int{}       // want `map literal allocates`
	_ = s + "suffix"           // want `string concatenation allocates`
	_ = string(b)              // want `conversion to string allocates`
	_ = []byte(s)              // want `\[\]byte/\[\]rune conversion of a string allocates`
	fmt.Println(s)             // want `fmt.Println allocates`
	_ = errors.New("per call") // want `errors.New allocates per call`
	go p.drain()               // want `go statement allocates a goroutine`
	f := func() { _ = s }      // want `closure captures s and allocates`
	f()
}

// Grow shows the append discipline: in-place shapes pass, fresh
// backing is flagged.
//
//lint:noalloc steady-state recycle path
func (p *pool) Grow(r *record, extra []byte) []byte {
	r.buf = append(r.buf, extra...)        // in-place: ok
	r.buf = append(r.buf[:0], extra...)    // reset-in-place: ok
	p.free = append(p.free, r)             // in-place into pooled backing: ok
	clone := append([]byte(nil), extra...) // want `append is not in-place`
	_ = clone
	other := append(extra, 0) // want `append is not in-place`
	_ = other
	return r.buf
}

// Boxed shows interface boxing conversions.
//
//lint:noalloc
func Boxed(v record, pv *record) {
	_ = any(v)  // want `conversion boxes a value into an interface`
	_ = any(pv) // pointers are already one word: ok
}

// PanicPath shows the crashing-path exemption: formatting inside a
// panic argument is not steady state.
//
//lint:noalloc
func PanicPath(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n))
	}
	return n * 2
}

// Static closures do not capture and do not allocate.
//
//lint:noalloc
func StaticClosure() func() int {
	return func() int { return 42 }
}

// Unmarked is the control: the same constructs pass without a marker.
func Unmarked(s string) *record {
	_ = make([]byte, 8)
	_ = s + "suffix"
	return &record{}
}

func (p *pool) drain() {}
