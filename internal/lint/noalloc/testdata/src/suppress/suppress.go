// Package suppress proves //lint:allow semantics for noalloc: the
// documented idiom for pool-miss mint paths. One directive silences
// exactly one finding, in both the same-line and line-above forms.
package suppress

type event struct{ fn func() }

type engine struct{ free []*event }

// Alloc is the canonical pool shape: the steady-state pop is clean and
// the one-time mint path carries a reasoned allow.
//
//lint:noalloc
func (e *engine) Alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	//lint:allow noalloc pool miss mints one record, amortized to zero
	return &event{}
}

// SameLine shows the trailing-directive form.
//
//lint:noalloc
func SameLine() []byte {
	return make([]byte, 8) //lint:allow noalloc fixture exercises the same-line directive form
}

// StillFlagged is the identical violation without a directive: the
// allows above reach exactly one finding each.
//
//lint:noalloc
func StillFlagged() *event {
	return &event{} // want `&event\{...\} allocates`
}
