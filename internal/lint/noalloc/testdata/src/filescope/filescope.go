// Package filescope proves the file-scoped marker: every function in
// a `//lint:noalloc file` file is checked without per-function
// markers.
//
//lint:noalloc file
package filescope

type scratch struct{ buf []byte }

func Reset(s *scratch) {
	s.buf = s.buf[:0]
}

func Fill(s *scratch, b []byte) {
	s.buf = append(s.buf, b...)
}

func Mint() *scratch {
	return &scratch{} // want `&scratch\{...\} allocates`
}

func Stamp(s *scratch) {
	s.buf = make([]byte, 64) // want `make allocates`
}
