package closecheck_test

import (
	"testing"

	"finelb/internal/lint/analysistest"
	"finelb/internal/lint/closecheck"
)

// TestSeam covers the spinning accept loop, the guarded pattern, and
// bare versus acknowledged Close on the transport seam.
func TestSeam(t *testing.T) {
	analysistest.Run(t, "testdata", closecheck.Analyzer, "seam")
}
