// Package seam is the closecheck fixture: accept loops over transport
// listeners must be able to exit once the listener closes, and Close
// errors on the seam may not be discarded as bare statements.
package seam

import (
	"errors"
	"net"

	"x/internal/transport"
)

// SpinningAccept is the accept-after-Close bug closecheck exists for:
// once the listener closes, Accept fails instantly and this loop
// spins forever.
func SpinningAccept(ln transport.Listener) {
	for {
		c, err := ln.Accept() // want `accept loop cannot exit`
		if err != nil {
			continue
		}
		go serve(c)
	}
}

// GuardedAccept is the pattern PR 3 established: a done-channel check
// plus the ErrClosed guard both end the loop.
func GuardedAccept(ln transport.Listener, done chan struct{}) {
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		go serve(c)
	}
}

// NestedReturnDoesNotCount: a return inside a spawned goroutine never
// exits the accept loop.
func NestedReturnDoesNotCount(ln transport.Listener) {
	for {
		c, err := ln.Accept() // want `accept loop cannot exit`
		if err != nil {
			go func() { return }()
			continue
		}
		go serve(c)
	}
}

// Closes exercises the bare-Close rule on both seam interfaces.
func Closes(ln transport.Listener, pc transport.PacketConn, c net.Conn) {
	ln.Close() // want `Close error on the transport seam discarded silently`
	pc.Close() // want `Close error on the transport seam discarded silently`
	_ = ln.Close()
	defer pc.Close()
	c.Close() // net.Conn is not the seam: allowed
	if err := ln.Close(); err != nil {
		_ = err
	}
}

func serve(c net.Conn) { _ = c }
