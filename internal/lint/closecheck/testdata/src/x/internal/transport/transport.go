// Package transport is a stub of finelb/internal/transport for
// closecheck fixtures: the analyzer suffix-matches the import path and
// resolves the seam interfaces from it.
package transport

import (
	"net"
	"time"
)

// Listener mirrors the real stream seam.
type Listener interface {
	Accept() (net.Conn, error)
	Addr() string
	Close() error
}

// PacketConn mirrors the real datagram seam.
type PacketConn interface {
	ReadFrom(p []byte) (n int, from string, err error)
	WriteTo(p []byte, addr string) (int, error)
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	LocalAddr() string
	SetReadDeadline(t time.Time) error
	Close() error
}
