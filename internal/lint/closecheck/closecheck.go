// Package closecheck implements the finelbvet analyzer that guards
// transport-seam shutdown.
//
// PR 3 fixed, by hand, a real accept-after-Close race: an accept loop
// that never recognized its listener's shutdown kept spinning (or
// leaked a connection accepted mid-close). closecheck makes the two
// patterns that fix required permanent:
//
//  1. Every `for { ... Accept() ... }` loop over a transport.Listener
//     must be able to exit on an Accept error — a return reachable in
//     the error branch, conventionally guarded by a done-channel
//     select and/or errors.Is(err, net.ErrClosed). A loop whose error
//     path only continues spins forever on a closed listener.
//  2. Close errors on the transport seam (transport.Listener,
//     transport.PacketConn) must not be silently discarded as bare
//     statements: assign the result (even to _) so the discard is
//     explicit, or defer it. The seam is where shutdown bugs live;
//     making the discard visible is what keeps reviewers honest.
package closecheck

import (
	"go/ast"
	"go/types"
	"strings"

	"finelb/internal/lint/analysis"
)

// Analyzer is the closecheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "closecheck",
	Doc:  "require accept loops over transport listeners to exit on closed listeners and forbid silently discarded Close errors on the transport seam",
	Run:  run,
}

// transportPathSuffix identifies the seam package (suffix-matched so
// fixture stubs bind too).
const transportPathSuffix = "internal/transport"

func run(pass *analysis.Pass) error {
	listener, packetConn := seamInterfaces(pass)
	if listener == nil && packetConn == nil {
		return nil // package does not touch the transport seam
	}
	seam := func(t types.Type) bool {
		return implementsAny(t, listener) || implementsAny(t, packetConn)
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			checkAcceptLoop(pass, n, listener)
		case *ast.ExprStmt:
			checkBareClose(pass, n, seam)
		}
		return true
	})
	return nil
}

// seamInterfaces resolves the Listener and PacketConn interfaces from
// the imported transport package (directly or transitively; nil when
// the package never reaches the seam).
func seamInterfaces(pass *analysis.Pass) (listener, packetConn *types.Interface) {
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		if strings.HasSuffix(p.Path(), transportPathSuffix) {
			listener = namedInterface(p, "Listener")
			packetConn = namedInterface(p, "PacketConn")
			return
		}
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	for _, imp := range pass.Pkg.Imports() {
		walk(imp)
		if listener != nil || packetConn != nil {
			break
		}
	}
	// The transport package itself also gets checked.
	if listener == nil && packetConn == nil && strings.HasSuffix(pass.Pkg.Path(), transportPathSuffix) {
		listener = namedInterface(pass.Pkg, "Listener")
		packetConn = namedInterface(pass.Pkg, "PacketConn")
	}
	return listener, packetConn
}

func namedInterface(p *types.Package, name string) *types.Interface {
	obj, ok := p.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	return iface
}

func implementsAny(t types.Type, iface *types.Interface) bool {
	if t == nil || iface == nil {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// checkAcceptLoop flags for-loops that call Accept on a
// transport.Listener but whose error handling can never exit the loop.
func checkAcceptLoop(pass *analysis.Pass, loop *ast.ForStmt, listener *types.Interface) {
	if listener == nil {
		return
	}
	accept := findAcceptCall(pass, loop, listener)
	if accept == nil {
		return
	}
	// The loop is fine if any return statement is reachable inside it:
	// the error branch (or a post-accept done-check) can end the loop.
	// A loop with no return at all spins forever once the listener
	// closes — Accept fails instantly and the error path just loops.
	hasReturn := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false // a return inside a nested func does not exit the loop
		case *ast.ReturnStmt:
			hasReturn = true
		}
		return !hasReturn
	})
	// break also exits; accept a BranchStmt break at top depth.
	if !hasReturn {
		ast.Inspect(loop.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
				return false // break there does not leave this loop
			case *ast.BranchStmt:
				if n.Tok.String() == "break" {
					hasReturn = true
				}
			}
			return !hasReturn
		})
	}
	if !hasReturn {
		pass.Reportf(accept.Pos(),
			"accept loop cannot exit: once the listener closes, Accept fails forever and this loop spins; return on the done-channel/errors.Is(err, net.ErrClosed) guard (the accept-after-Close pattern)")
	}
}

// findAcceptCall locates the first Accept() call on a value whose type
// satisfies transport.Listener inside the loop (but not in nested
// function literals).
func findAcceptCall(pass *analysis.Pass, loop *ast.ForStmt, listener *types.Interface) *ast.CallExpr {
	var accept *ast.CallExpr
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if accept != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Accept" {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if ok && implementsAny(tv.Type, listener) {
			accept = call
		}
		return true
	})
	return accept
}

// checkBareClose flags `x.Close()` as a bare statement when x sits on
// the transport seam.
func checkBareClose(pass *analysis.Pass, stmt *ast.ExprStmt, seam func(types.Type) bool) {
	call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !seam(tv.Type) {
		return
	}
	pass.Reportf(stmt.Pos(),
		"Close error on the transport seam discarded silently; make it explicit (`_ = %s.Close()`) or handle it",
		exprString(sel.X))
}

// exprString renders simple receivers for the message; anything
// complex degrades to "conn".
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "conn"
}
