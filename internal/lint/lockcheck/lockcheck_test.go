package lockcheck_test

import (
	"testing"

	"finelb/internal/lint/analysistest"
	"finelb/internal/lint/lockcheck"
)

// TestGuards covers the core discipline: guarded access, pairing on
// every return path, the early-unlock-return shape, the *Locked
// convention, and the never-report-on-unknown merge.
func TestGuards(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "guards")
}

// TestBlocking covers the no-blocking-while-held rules and their
// sanctioned counterparts (select with default, write after unlock).
func TestBlocking(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "blocking")
}

// TestMalformedDirectives proves every //lint:guards misuse is
// reported in place.
func TestMalformedDirectives(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "malformed")
}

// TestSuppression proves the //lint:allow contract for lockcheck in
// both the line-above and same-line forms.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "suppress")
}
