// Package guards is the lockcheck fixture for the //lint:guards core:
// guarded fields only under the lock, pairing discipline on every
// return path, the early-unlock-return shape, the *Locked convention,
// and the conservative (never-report-on-unknown) merge.
package guards

import "sync"

type counter struct {
	//lint:guards n, closed
	mu     sync.Mutex
	n      int
	closed bool
	name   string // unguarded: free access
}

// Bad reads a guarded field with the mutex definitely not held.
func (c *counter) Bad() int {
	return c.n // want `c\.n is guarded by c\.mu`
}

// Good is the plain lock/unlock bracket.
func (c *counter) Good() int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}

// DeferGood covers multi-return under a deferred unlock.
func (c *counter) DeferGood() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return -1
	}
	return c.n
}

// EarlyUnlockReturn is the deliver shape: the terminating branch does
// not merge back, so the tail still knows the lock is held.
func (c *counter) EarlyUnlockReturn() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.n++
	c.mu.Unlock()
}

// ReturnWhileHeld leaks the lock through an early return.
func (c *counter) ReturnWhileHeld() int {
	c.mu.Lock()
	return c.n // want `return while c\.mu is held`
}

// LeakLock leaks it by falling off the end.
func (c *counter) LeakLock() {
	c.mu.Lock()
	c.n++
} // want `c\.mu falls off the end still held`

// DoubleLock self-deadlocks.
func (c *counter) DoubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want `self-deadlock`
	c.mu.Unlock()
}

// UnlockNotHeld releases a mutex it never took.
func (c *counter) UnlockNotHeld() {
	c.mu.Unlock() // want `c\.mu\.Unlock while c\.mu is not held`
}

// incLocked follows the *Locked convention: the caller holds mu, so
// the guarded access and the held return are both fine.
func (c *counter) incLocked() { c.n++ }

// MaybeLock proves the conservative merge: after an if that locks on
// one branch only, the state is unknown and nothing is reported.
func (c *counter) MaybeLock(b bool) {
	if b {
		c.mu.Lock()
	}
	_ = c.closed
}

// AfterLoop proves loop merges keep definite knowledge when the body
// restores the pre-state.
func (c *counter) AfterLoop() {
	for i := 0; i < 3; i++ {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
	_ = c.closed // want `c\.closed is guarded by c\.mu`
}

// Name touches only unguarded state.
func (c *counter) Name() string { return c.name }

// Reset writes guarded fields of a local instance: keys are tracked
// per base expression, not just for receivers.
func Reset(fresh *counter) {
	fresh.n = 0 // want `fresh\.n is guarded by fresh\.mu`
	fresh.mu.Lock()
	fresh.closed = false
	fresh.mu.Unlock()
}
