// Package malformed proves every //lint:guards misuse is itself
// reported: a directive that binds nothing checks nothing, and
// silence would be worse than noise.
package malformed

import "sync"

type bag struct {
	//lint:guards
	// want `names no fields`
	mu sync.Mutex
	n  int
}

type notmu struct {
	//lint:guards n
	// want `must annotate a single sync\.Mutex or sync\.RWMutex field`
	state int
	n     int
}

type typo struct {
	//lint:guards count
	// want `names count, which is not a field of typo`
	mu sync.Mutex
	n  int
}

type selfguard struct {
	//lint:guards mu, n
	// want `lists the mutex mu as its own guarded field`
	mu sync.Mutex
	n  int
}

type twomus struct {
	//lint:guards n
	mu1 sync.Mutex
	//lint:guards n
	// want `field n is already guarded by mu1`
	mu2 sync.Mutex
	n   int
}
