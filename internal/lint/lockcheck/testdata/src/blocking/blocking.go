// Package blocking is the lockcheck fixture for the no-blocking-held
// rules: channel operations, selects without a default, Sleep calls
// (wall clock or injected seam), and seam WriteTo are all flagged
// while an annotated mutex is definitely held — and the deliver idiom
// (select with default) plus encode-then-write-after-unlock pass.
package blocking

import (
	"sync"
	"time"

	"x/internal/transport"
)

type pump struct {
	//lint:guards q
	mu    sync.Mutex
	q     []int
	ch    chan int
	conn  transport.PacketConn
	sleep func(time.Duration)
}

func (p *pump) SendHeld(v int) {
	p.mu.Lock()
	p.ch <- v // want `channel send while p\.mu is held`
	p.mu.Unlock()
}

func (p *pump) RecvHeld() int {
	p.mu.Lock()
	v := <-p.ch // want `channel receive while p\.mu is held`
	p.mu.Unlock()
	return v
}

// NonBlockingWake is the deliver wakeup idiom: a select with a
// default never blocks the lock.
func (p *pump) NonBlockingWake() {
	p.mu.Lock()
	select {
	case p.ch <- 1:
	default:
	}
	p.mu.Unlock()
}

func (p *pump) BlockingSelect() {
	p.mu.Lock()
	select { // want `select without a default case while p\.mu is held`
	case v := <-p.ch:
		p.q = append(p.q, v)
	}
	p.mu.Unlock()
}

func (p *pump) SleepHeld() {
	p.mu.Lock()
	time.Sleep(time.Millisecond) // want `Sleep call while p\.mu is held`
	p.mu.Unlock()
}

func (p *pump) SeamSleepHeld(d time.Duration) {
	p.mu.Lock()
	p.sleep(d) // want `sleep call while p\.mu is held`
	p.mu.Unlock()
}

func (p *pump) WriteHeld(b []byte, addr string) {
	p.mu.Lock()
	p.conn.WriteTo(b, addr) // want `WriteTo on the transport seam while p\.mu is held`
	p.mu.Unlock()
}

// WriteAfterUnlock is the sanctioned shape: snapshot under the lock,
// write after dropping it.
func (p *pump) WriteAfterUnlock(b []byte, addr string) {
	p.mu.Lock()
	n := len(p.q)
	p.mu.Unlock()
	_ = n
	_, _ = p.conn.WriteTo(b, addr)
}

// SendUnheld: channel ops without the lock are not lockcheck's
// concern.
func (p *pump) SendUnheld(v int) {
	p.ch <- v
}
