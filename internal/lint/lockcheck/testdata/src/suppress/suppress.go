// Package suppress proves //lint:allow semantics for lockcheck: one
// directive silences exactly one finding, in both the line-above and
// same-line forms. The shape is the real pollOnce exception — an
// owner-only invariant the type system cannot see.
package suppress

import "sync"

type round struct {
	//lint:guards gen
	mu  sync.Mutex
	gen uint32
}

// Owner reads gen outside the lock: only the round owner ever writes
// it, so the read is racy-by-construction safe and documented.
func (r *round) Owner() uint32 {
	//lint:allow lockcheck only the round owner writes gen; lock-free read is the invariant
	return r.gen
}

// SameLine exercises the trailing-directive form.
func (r *round) SameLine() uint32 {
	return r.gen //lint:allow lockcheck fixture exercises the same-line directive form
}

// StillFlagged is the identical read without a directive: each allow
// above reaches exactly one finding.
func (r *round) StillFlagged() uint32 {
	return r.gen // want `r\.gen is guarded by r\.mu`
}
