// Package lockcheck implements the finelbvet analyzer that enforces
// mutex discipline on annotated mutexes.
//
// The poll hot path holds its locks for nanoseconds — deliver runs
// under r.mu on every answer an agent read loop demultiplexes, and the
// inquiry fast path encodes its reply only after dropping inqMu. That
// discipline lives or dies on two conventions the compiler cannot see:
// which fields a mutex actually guards, and which operations are too
// slow to run while holding it. lockcheck turns both into annotations:
//
//	type pollRound struct {
//		//lint:guards closed, want, gen
//		mu     sync.Mutex
//		closed bool
//		...
//	}
//
// declares that closed, want, and gen may only be touched while mu is
// held. On every function the analyzer then runs a three-state
// (held / not held / unknown) walk per annotated mutex and reports:
//
//   - guarded-field access while the mutex is definitely not held;
//   - blocking operations while any annotated mutex is definitely
//     held: channel sends and receives (a select with a default case
//     is non-blocking and exempt — the deliver wakeup idiom), selects
//     without a default, Sleep calls (time.Sleep or an injected sleep
//     seam), and WriteTo on a transport.PacketConn;
//   - Lock/Unlock pairing bugs: locking a mutex already definitely
//     held, unlocking one definitely not held, and returning (or
//     falling off the end) while holding a mutex with no deferred
//     unlock — the multi-return leak that defer exists to prevent.
//
// Conventions the walk understands: a function whose name ends in
// "Locked" is called with its receiver's and parameters' annotated
// mutexes already held (the pruneLocked/keepLocked idiom); branches
// that end in return do not merge back (the early-unlock-return
// shape); function literals start in the unknown state, because the
// analyzer cannot know when they run — they are checked only for
// locks they take themselves. Both states of a merge disagreeing
// yields unknown, and unknown never reports: every diagnostic is a
// definite violation on every path that reaches it.
//
// Malformed //lint:guards directives (not on a sync.Mutex/RWMutex
// field, naming unknown fields, naming no fields, or guarding one
// field with two mutexes) are themselves reported: a directive that
// binds nothing checks nothing. Intentional exceptions — the round
// owner reading a generation counter it alone may write — are
// annotated in place with `//lint:allow lockcheck <reason>`.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"finelb/internal/lint/analysis"
)

// Analyzer is the lockcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "enforce //lint:guards mutex discipline: guarded fields only under the lock, no blocking while held, no return while held",
	Run:  run,
}

// transportPathSuffix identifies the seam package whose WriteTo is a
// network round trip (suffix-matched so fixture stubs bind too).
const transportPathSuffix = "internal/transport"

const guardsMarker = "//lint:guards"

// lockState is the three-valued verdict for one mutex on one path.
type lockState int

const (
	unknown lockState = iota
	held
	notHeld
)

// mutexInfo is one annotated mutex field and the sibling fields it
// guards.
type mutexInfo struct {
	field  string
	guards map[string]bool
}

// structInfo collects a struct type's annotated mutexes.
type structInfo struct {
	mutexes []mutexInfo
	// guardOf maps each guarded field to its mutex field.
	guardOf map[string]string
}

// checker carries the per-package context through every function walk.
type checker struct {
	pass       *analysis.Pass
	guards     map[*types.TypeName]*structInfo
	packetConn *types.Interface // nil when the seam is not imported
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:       pass,
		guards:     collectGuards(pass),
		packetConn: seamPacketConn(pass),
	}
	if len(c.guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

// collectGuards parses every //lint:guards directive in the package,
// reporting malformed ones in place.
func collectGuards(pass *analysis.Pass) map[*types.TypeName]*structInfo {
	out := make(map[*types.TypeName]*structInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			fieldNames := make(map[string]bool)
			for _, field := range st.Fields.List {
				for _, id := range field.Names {
					fieldNames[id.Name] = true
				}
			}
			var info *structInfo
			for _, field := range st.Fields.List {
				dir, pos := guardsDirective(field)
				if dir == "" {
					continue
				}
				names := parseGuardList(dir)
				if len(names) == 0 {
					pass.Reportf(pos, "//lint:guards names no fields (want //lint:guards <field>[, <field>...]); it guards nothing")
					continue
				}
				if len(field.Names) != 1 || !isMutexField(pass, field) {
					pass.Reportf(pos, "//lint:guards must annotate a single sync.Mutex or sync.RWMutex field; it guards nothing")
					continue
				}
				mu := field.Names[0].Name
				if info == nil {
					info = &structInfo{guardOf: make(map[string]string)}
				}
				mi := mutexInfo{field: mu, guards: make(map[string]bool)}
				for _, g := range names {
					switch {
					case !fieldNames[g]:
						pass.Reportf(pos, "//lint:guards names %s, which is not a field of %s; it guards nothing", g, ts.Name.Name)
					case g == mu:
						pass.Reportf(pos, "//lint:guards lists the mutex %s as its own guarded field", g)
					case info.guardOf[g] != "":
						pass.Reportf(pos, "field %s is already guarded by %s; one field, one mutex", g, info.guardOf[g])
					default:
						mi.guards[g] = true
						info.guardOf[g] = mu
					}
				}
				if len(mi.guards) > 0 {
					info.mutexes = append(info.mutexes, mi)
				}
			}
			if info != nil && tn != nil {
				out[tn] = info
			}
			return true
		})
	}
	return out
}

// guardsDirective extracts the //lint:guards payload from a field's
// doc or trailing comment.
func guardsDirective(field *ast.Field) (string, token.Pos) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, guardsMarker); ok {
				return " " + rest, c.Pos()
			}
		}
	}
	return "", token.NoPos
}

// parseGuardList splits "a, b c" into field names.
func parseGuardList(s string) []string {
	var out []string
	for _, f := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// isMutexField reports whether the field's type is sync.Mutex or
// sync.RWMutex.
func isMutexField(pass *analysis.Pass, field *ast.Field) bool {
	tv, ok := pass.TypesInfo.Types[field.Type]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// seamPacketConn resolves transport.PacketConn from the import graph.
func seamPacketConn(pass *analysis.Pass) *types.Interface {
	var seam *types.Package
	if strings.HasSuffix(pass.Pkg.Path(), transportPathSuffix) {
		seam = pass.Pkg
	}
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if p == nil || seen[p] || seam != nil {
			return
		}
		seen[p] = true
		if strings.HasSuffix(p.Path(), transportPathSuffix) {
			seam = p
			return
		}
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	for _, imp := range pass.Pkg.Imports() {
		walk(imp)
	}
	if seam == nil {
		return nil
	}
	obj, ok := seam.Scope().Lookup("PacketConn").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// walkCtx is the state of one function (or literal) walk.
type walkCtx struct {
	st       map[string]lockState
	deferred map[string]bool // keys with a pending deferred unlock
	dflt     lockState       // state of keys never touched on this unit
}

func (w *walkCtx) get(key string) lockState {
	if s, ok := w.st[key]; ok {
		return s
	}
	return w.dflt
}

func (w *walkCtx) set(key string, s lockState) { w.st[key] = s }

// anyHeld returns a definitely-held key, or "".
func (w *walkCtx) anyHeld() string {
	for k, s := range w.st {
		if s == held {
			return k
		}
	}
	return ""
}

func (w *walkCtx) clone() *walkCtx {
	c := &walkCtx{
		st:       make(map[string]lockState, len(w.st)),
		deferred: w.deferred, // shared: defers accumulate for the whole unit
		dflt:     w.dflt,
	}
	for k, v := range w.st {
		c.st[k] = v
	}
	return c
}

// mergeInto folds other's state into w: agreement survives, conflict
// becomes unknown.
func (w *walkCtx) mergeInto(other *walkCtx) {
	for k := range other.st {
		if w.get(k) != other.get(k) {
			w.set(k, unknown)
		}
	}
	for k := range w.st {
		if w.get(k) != other.get(k) {
			w.set(k, unknown)
		}
	}
}

// checkFunc walks one function declaration.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	w := &walkCtx{
		st:       make(map[string]lockState),
		deferred: make(map[string]bool),
		dflt:     notHeld,
	}
	// The *Locked convention: the caller already holds the annotated
	// mutexes of the receiver and parameters.
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		for _, fl := range []*ast.FieldList{fd.Recv, fd.Type.Params} {
			if fl == nil {
				continue
			}
			for _, field := range fl.List {
				for _, id := range field.Names {
					obj := c.pass.TypesInfo.ObjectOf(id)
					if obj == nil {
						continue
					}
					if info := c.infoFor(obj.Type()); info != nil {
						for _, mi := range info.mutexes {
							key := id.Name + "." + mi.field
							w.set(key, held)
							// The caller unlocks: returning while held
							// is this convention's whole point.
							w.deferred[key] = true
						}
					}
				}
			}
		}
	}
	term := c.walkStmt(w, fd.Body)
	if !term {
		c.reportHeldAtExit(w, fd.Body.Rbrace, "falls off the end")
	}
	// Literals are separate units: unknown start, so only the locks
	// they take themselves can produce reports.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || lit.Body == nil {
			return true
		}
		lw := &walkCtx{st: make(map[string]lockState), deferred: make(map[string]bool), dflt: unknown}
		lterm := c.walkStmt(lw, lit.Body)
		if !lterm {
			c.reportHeldAtExit(lw, lit.Body.Rbrace, "falls off the end")
		}
		return true // descend: nested literals are their own units too
	})
}

func (c *checker) reportHeldAtExit(w *walkCtx, pos token.Pos, how string) {
	for k, s := range w.st {
		if s == held && !w.deferred[k] {
			c.pass.Reportf(pos, "%s %s still held (no deferred unlock); every exit path must release it", k, how)
		}
	}
}

// walkStmt processes one statement, returning whether the path
// terminates (return, or a branch out of the linear flow).
func (c *checker) walkStmt(w *walkCtx, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			if c.walkStmt(w, st) {
				return true
			}
		}
		return false
	case *ast.ExprStmt:
		if key, op, ok := c.lockOp(s.X); ok {
			c.applyLockOp(w, s.Pos(), key, op)
			return false
		}
		c.scanExpr(w, s.X)
		return isPanic(s.X)
	case *ast.DeferStmt:
		for _, key := range c.deferredUnlocks(s.Call) {
			w.deferred[key] = true
		}
		for _, a := range s.Call.Args {
			c.scanExpr(w, a)
		}
		return false
	case *ast.GoStmt:
		// The goroutine body runs under its own schedule; only the
		// argument expressions evaluate here.
		for _, a := range s.Call.Args {
			c.scanExpr(w, a)
		}
		return false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scanExpr(w, e)
		}
		for _, e := range s.Lhs {
			c.scanExpr(w, e)
		}
		return false
	case *ast.IncDecStmt:
		c.scanExpr(w, s.X)
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanExpr(w, v)
					}
				}
			}
		}
		return false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(w, e)
		}
		for k, st := range w.st {
			if st == held && !w.deferred[k] {
				c.pass.Reportf(s.Pos(), "return while %s is held (no deferred unlock); unlock first or defer the unlock", k)
			}
		}
		return true
	case *ast.BranchStmt:
		return true // leaves this linear flow; the loop merge re-adds the pre-state
	case *ast.SendStmt:
		if k := w.anyHeld(); k != "" {
			c.pass.Reportf(s.Pos(), "channel send while %s is held can block the lock; use a select with default or send after unlocking", k)
		}
		c.scanExpr(w, s.Value)
		return false
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(w, s.Init)
		}
		c.scanExpr(w, s.Cond)
		thenW := w.clone()
		thenTerm := c.walkStmt(thenW, s.Body)
		elseW := w.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.walkStmt(elseW, s.Else)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*w = *elseW
		case elseTerm:
			*w = *thenW
		default:
			thenW.mergeInto(elseW)
			*w = *thenW
		}
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(w, s.Init)
		}
		if s.Cond != nil {
			c.scanExpr(w, s.Cond)
		}
		bodyW := w.clone()
		c.walkStmt(bodyW, s.Body)
		if s.Post != nil {
			c.walkStmt(bodyW, s.Post)
		}
		w.mergeInto(bodyW) // zero or more iterations
		return false
	case *ast.RangeStmt:
		c.scanExpr(w, s.X)
		bodyW := w.clone()
		c.walkStmt(bodyW, s.Body)
		w.mergeInto(bodyW)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return c.walkSwitch(w, s)
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			if k := w.anyHeld(); k != "" {
				c.pass.Reportf(s.Pos(), "select without a default case while %s is held can block the lock; add a default or move it after the unlock", k)
			}
		}
		pre := w.clone()
		first := true
		allTerm := true
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			cw := pre.clone()
			if cc.Comm != nil {
				c.walkCommClause(cw, cc.Comm)
			}
			term := false
			for _, st := range cc.Body {
				if term = c.walkStmt(cw, st); term {
					break
				}
			}
			if term {
				continue
			}
			allTerm = false
			if first {
				*w = *cw
				first = false
			} else {
				w.mergeInto(cw)
			}
		}
		if allTerm && len(s.Body.List) > 0 {
			return true // whichever clause fires, the path ends
		}
		if first { // every clause terminated but no default: fall through conservatively
			*w = *pre
		}
		return false
	case *ast.LabeledStmt:
		return c.walkStmt(w, s.Stmt)
	}
	return false
}

// walkCommClause evaluates a select case's communication without
// treating it as blocking (the select machinery handles readiness).
func (c *checker) walkCommClause(w *walkCtx, comm ast.Stmt) {
	switch s := comm.(type) {
	case *ast.SendStmt:
		c.scanGuardedOnly(w, s.Chan)
		c.scanGuardedOnly(w, s.Value)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scanGuardedOnly(w, e)
		}
	case *ast.ExprStmt:
		c.scanGuardedOnly(w, s.X)
	}
}

// walkSwitch handles switch and type-switch: each case runs from the
// pre-state; missing default keeps the pre-state live.
func (c *checker) walkSwitch(w *walkCtx, s ast.Stmt) bool {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(w, s.Init)
		}
		if s.Tag != nil {
			c.scanExpr(w, s.Tag)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(w, s.Init)
		}
		body = s.Body
	}
	pre := w.clone()
	first := true
	hasDefault := false
	allTerm := true
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cw := pre.clone()
		term := false
		for _, st := range cc.Body {
			if term = c.walkStmt(cw, st); term {
				break
			}
		}
		if term {
			continue
		}
		allTerm = false
		if first {
			*w = *cw
			first = false
		} else {
			w.mergeInto(cw)
		}
	}
	if !hasDefault || first {
		if first {
			*w = *pre
		} else {
			w.mergeInto(pre)
		}
	}
	return allTerm && hasDefault && len(body.List) > 0
}

// lockOp recognizes `<expr>.<mutexField>.Lock()` and friends on an
// annotated mutex, returning the textual key and the operation.
func (c *checker) lockOp(e ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	k := c.mutexKey(sel.X)
	if k == "" {
		return "", "", false
	}
	return k, sel.Sel.Name, true
}

// mutexKey resolves an expression denoting an annotated mutex field
// (base.mu) to its textual key, or "".
func (c *checker) mutexKey(e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	info := c.infoForExpr(sel.X)
	if info == nil {
		return ""
	}
	for _, mi := range info.mutexes {
		if mi.field == sel.Sel.Name {
			return render(sel.X) + "." + sel.Sel.Name
		}
	}
	return ""
}

func (c *checker) applyLockOp(w *walkCtx, pos token.Pos, key, op string) {
	switch op {
	case "Lock", "RLock":
		if w.get(key) == held {
			c.pass.Reportf(pos, "%s.%s while %s is already held: self-deadlock", key, op, key)
		}
		w.set(key, held)
	case "Unlock", "RUnlock":
		if w.get(key) == notHeld {
			c.pass.Reportf(pos, "%s.%s while %s is not held", key, op, key)
		}
		w.set(key, notHeld)
	}
}

// deferredUnlocks extracts the mutex keys a defer releases: a direct
// `defer x.mu.Unlock()` or unlocks inside a deferred literal.
func (c *checker) deferredUnlocks(call *ast.CallExpr) []string {
	if key, op, ok := c.lockOp(call); ok && (op == "Unlock" || op == "RUnlock") {
		return []string{key}
	}
	lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return nil
	}
	var keys []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.CallExpr); ok {
			if key, op, ok := c.lockOp(inner); ok && (op == "Unlock" || op == "RUnlock") {
				keys = append(keys, key)
			}
		}
		return true
	})
	return keys
}

// scanExpr checks one expression for guarded-field accesses and, when
// a mutex is definitely held, for blocking operations. Function
// literals are pruned — they are separate units.
func (c *checker) scanExpr(w *walkCtx, e ast.Expr) {
	c.scan(w, e, true)
}

// scanGuardedOnly checks guarded accesses without the blocking rules
// (used inside select communications, which do not block the lock).
func (c *checker) scanGuardedOnly(w *walkCtx, e ast.Expr) {
	c.scan(w, e, false)
}

func (c *checker) scan(w *walkCtx, e ast.Expr, blocking bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			c.checkGuardedAccess(w, n)
			return true
		case *ast.UnaryExpr:
			if blocking && n.Op == token.ARROW {
				if k := w.anyHeld(); k != "" {
					c.pass.Reportf(n.Pos(), "channel receive while %s is held can block the lock; receive after unlocking", k)
				}
			}
			return true
		case *ast.CallExpr:
			if blocking {
				c.checkBlockingCall(w, n)
			}
			return true
		}
		return true
	})
}

// checkGuardedAccess reports base.field when field is guarded and the
// guarding mutex is definitely not held.
func (c *checker) checkGuardedAccess(w *walkCtx, sel *ast.SelectorExpr) {
	info := c.infoForExpr(sel.X)
	if info == nil {
		return
	}
	mu, ok := info.guardOf[sel.Sel.Name]
	if !ok {
		return
	}
	key := render(sel.X) + "." + mu
	if w.get(key) == notHeld {
		c.pass.Reportf(sel.Pos(),
			"%s.%s is guarded by %s (//lint:guards) and accessed without it held",
			render(sel.X), sel.Sel.Name, key)
	}
}

// checkBlockingCall flags Sleep-shaped calls and seam WriteTo while a
// mutex is definitely held.
func (c *checker) checkBlockingCall(w *walkCtx, call *ast.CallExpr) {
	k := w.anyHeld()
	if k == "" {
		return
	}
	var name string
	var recv ast.Expr
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		recv = fun.X
	case *ast.Ident:
		name = fun.Name
	default:
		return
	}
	switch {
	case strings.EqualFold(name, "sleep"):
		c.pass.Reportf(call.Pos(), "%s call while %s is held stalls every contender; sleep after unlocking", name, k)
	case name == "WriteTo" && c.packetConn != nil && recv != nil:
		tv, ok := c.pass.TypesInfo.Types[recv]
		if ok && tv.Type != nil && types.Implements(tv.Type, c.packetConn) {
			c.pass.Reportf(call.Pos(), "WriteTo on the transport seam while %s is held puts a network write inside the critical section; encode under the lock, write after unlocking", k)
		}
	}
}

// infoForExpr resolves the annotated-struct info for an expression's
// type (through pointers), or nil.
func (c *checker) infoForExpr(e ast.Expr) *structInfo {
	tv, ok := c.pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok {
		return nil
	}
	return c.infoFor(tv.Type)
}

func (c *checker) infoFor(t types.Type) *structInfo {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return c.guards[named.Obj()]
}

// isPanic reports whether e is a call to the panic builtin.
func isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// render prints the textual key of a base expression.
func render(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return render(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + render(e.X)
	case *ast.CallExpr:
		return render(e.Fun) + "()"
	}
	return "?"
}
