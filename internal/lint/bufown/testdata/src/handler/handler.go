// Package handler is the bufown fixture for PacketHandler-shaped
// functions: every way a loaned payload can out-live the call is
// flagged, and every sanctioned use (copy, synchronous call, defer,
// scalar reads) passes.
package handler

import "x/internal/transport"

// envelope is a decode result carrying a view of its input.
type envelope struct {
	Seq     uint32
	Payload []byte
}

// decode returns a view of p — its result is as borrowed as p is.
func decode(p []byte) (envelope, bool) {
	if len(p) < 4 {
		return envelope{}, false
	}
	return envelope{Seq: uint32(p[0]), Payload: p[4:]}, true
}

type sink struct {
	last   []byte
	frames [][]byte
	out    chan []byte
	n      int
	onAck  func()
}

var lastGlobal []byte

var _ transport.PacketHandler = (&sink{}).HandleAnswer

// HandleAnswer matches transport.PacketHandler, so p is a loan.
func (s *sink) HandleAnswer(p []byte, from string) {
	s.last = p                      // want `stores a borrowed datagram payload`
	lastGlobal = p[4:]              // want `stores a borrowed datagram payload`
	s.frames = append(s.frames, p)  // want `stores a borrowed datagram payload`
	s.out <- p                      // want `sending a borrowed datagram payload`
	go s.consume(p)                 // want `goroutine argument carries a borrowed datagram payload`
	s.retain(func() { _ = len(p) }) // want `closure captures borrowed datagram payload p`
	q := p[2:]                      // alias
	s.last = q                      // want `stores a borrowed datagram payload`
	if env, ok := decode(p); ok {   // decode result is a view of p
		s.last = env.Payload // want `stores a borrowed datagram payload`
	}
}

// HandleClean shows every sanctioned shape.
func (s *sink) HandleClean(p []byte, from string) {
	s.n = len(p)                       // scalar read
	s.observe(p)                       // synchronous call
	s.last = append([]byte(nil), p...) // explicit copy: result is owned
	buf := make([]byte, len(p))
	copy(buf, p)
	s.frames = append(s.frames, buf) // copy escapes, not the loan
	defer func() { s.n += len(p) }() // defers run before the call returns
	if env, ok := decode(p); ok {
		s.n = int(env.Seq) // scalar projection of a borrowed view
	}
}

// Register proves handler-shaped literals are loans too.
func Register(hc transport.HandlerPacketConn, s *sink) {
	hc.SetPacketHandler(func(p []byte, from string) {
		s.last = p // want `stores a borrowed datagram payload`
		s.last = append([]byte(nil), p...)
	})
}

// Stash does not match the handler signature (extra param): its p is
// owned by whatever contract its callers chose, not bufown's concern.
func (s *sink) Stash(p []byte, from string, keep bool) {
	if keep {
		s.last = p
	}
}

func (s *sink) consume(p []byte) { _ = p }
func (s *sink) observe(p []byte) { _ = p }
func (s *sink) retain(fn func()) { s.onAck = fn }
