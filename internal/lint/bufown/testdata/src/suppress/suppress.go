// Package suppress proves //lint:allow semantics for bufown: one
// directive silences exactly one finding, in both the line-above and
// same-line forms.
package suppress

import "x/internal/transport"

type ring struct {
	slots [][]byte
	last  []byte
}

var _ transport.PacketHandler = (&ring{}).Ingest

// Ingest owns a private recycling protocol with its fabric: the allow
// covers the first retention, and only the first.
func (r *ring) Ingest(p []byte, from string) {
	//lint:allow bufown ring owns the fabric pool; slots recycle on ack
	r.last = p
	r.slots = append(r.slots, p) // want `stores a borrowed datagram payload`
}

// Mirror exercises the same-line directive form.
func (r *ring) Mirror(p []byte, from string) {
	r.last = p //lint:allow bufown fixture exercises the same-line directive form
}
