// Package readloop is the bufown fixture for the pull-mode reuse
// pattern: a buffer handed to ReadFrom/Read inside a loop is
// overwritten by the next datagram, so views of it must not out-live
// the iteration.
package readloop

import "x/internal/transport"

type server struct {
	conn   transport.PacketConn
	last   []byte
	frames [][]byte
	out    chan []byte
	seen   int
}

// Loop is the canonical read loop: buf is recycled every iteration.
func (s *server) Loop(buf []byte) {
	for {
		n, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			return
		}
		_ = from
		p := buf[:n]
		s.last = p                         // want `stores a borrowed datagram payload`
		s.frames = append(s.frames, p)     // want `stores a borrowed datagram payload`
		s.out <- p                         // want `sending a borrowed datagram payload`
		s.out <- append([]byte(nil), p...) // copy: owned by the receiver
		s.seen += n
		s.handle(p) // synchronous: fine
	}
}

// ReadLoop covers the stream form of the same pattern.
func (s *server) ReadLoop(buf []byte) {
	for {
		n, err := s.conn.Read(buf)
		if err != nil {
			return
		}
		s.last = buf[:n] // want `stores a borrowed datagram payload`
	}
}

// Once reads outside any loop: the buffer is not recycled by this
// function, so its lifetime is the caller's contract, not bufown's.
func (s *server) Once(buf []byte) {
	n, _, err := s.conn.ReadFrom(buf)
	if err != nil {
		return
	}
	s.last = buf[:n]
}

func (s *server) handle(p []byte) { _ = p }
