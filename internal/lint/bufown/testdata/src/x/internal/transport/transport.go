// Package transport is a stub of finelb/internal/transport for bufown
// fixtures: the analyzer suffix-matches the import path and resolves
// PacketHandler and PacketConn from it.
package transport

import "time"

// PacketHandler mirrors the real datagram callback. The payload is
// only valid for the duration of the call.
type PacketHandler func(p []byte, from string)

// PacketConn mirrors the real datagram seam.
type PacketConn interface {
	ReadFrom(p []byte) (n int, from string, err error)
	WriteTo(p []byte, addr string) (int, error)
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	LocalAddr() string
	SetReadDeadline(t time.Time) error
	Close() error
}

// HandlerPacketConn mirrors the push-mode seam.
type HandlerPacketConn interface {
	PacketConn
	SetPacketHandler(h PacketHandler) bool
}
