package bufown_test

import (
	"testing"

	"finelb/internal/lint/analysistest"
	"finelb/internal/lint/bufown"
)

// TestHandlerLoans covers PacketHandler-shaped functions and literals:
// every escape shape is flagged, every sanctioned use passes, and
// non-handler signatures are never seeded.
func TestHandlerLoans(t *testing.T) {
	analysistest.Run(t, "testdata", bufown.Analyzer, "handler")
}

// TestReadLoopReuse covers the pull-mode pattern: buffers recycled by
// ReadFrom/Read inside a loop are loans; one-shot reads are not.
func TestReadLoopReuse(t *testing.T) {
	analysistest.Run(t, "testdata", bufown.Analyzer, "readloop")
}

// TestSuppression proves the //lint:allow contract for bufown in both
// the line-above and same-line forms.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, "testdata", bufown.Analyzer, "suppress")
}
