// Package bufown implements the finelbvet analyzer that enforces the
// DESIGN.md §12 buffer-ownership rules on the transport seam.
//
// The zero-alloc poll path works because datagram buffers are loaned,
// never given: a payload handed to a transport.PacketHandler is valid
// only for the duration of the call (the fabric recycles it into a
// pool the moment the handler returns), and a buffer a read loop hands
// to PacketConn.ReadFrom/Read is overwritten by the next datagram.
// Code that keeps such a slice past the call is reading someone else's
// recycled memory; the bug reproduces as silent payload corruption
// under load, which is why the rule is enforced statically instead of
// being discovered in production.
//
// bufown treats a []byte as borrowed when it is:
//
//   - a parameter of a function or function literal whose signature is
//     transport.PacketHandler's (func([]byte, string)); or
//   - a buffer passed to ReadFrom/Read on a transport.PacketConn
//     inside a loop (the read-loop reuse pattern).
//
// Borrowedness propagates through local aliases: plain assignments,
// reslices, same-slice-type conversions, byte-slice fields of decode
// results, and the alias-bearing results of calls fed a borrowed
// argument (decode helpers return views of their input). A borrowed
// value may be read, copied (`copy`, or the explicit
// `append([]byte(nil), b...)` idiom — a byte spread fills the
// destination with fresh bytes, so the result's ownership is the
// destination's), and passed to synchronous calls, including deferred
// ones (defers run before the call returns). It must not out-live the
// call:
//
//   - stores into struct fields, package-level variables, pointees, or
//     elements of any of those are flagged;
//   - appending the slice itself as an element of a longer-lived
//     container is flagged;
//   - sends on channels are flagged;
//   - `go` statements whose arguments carry it are flagged;
//   - non-deferred closures that capture it are flagged (the closure
//     may run after the call returns).
//
// Intentional exceptions — a handler that is the sole owner of a
// private buffer protocol — are annotated in place with
// `//lint:allow bufown <reason>`.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"finelb/internal/lint/analysis"
)

// Analyzer is the bufown pass.
var Analyzer = &analysis.Analyzer{
	Name: "bufown",
	Doc:  "forbid transport-seam datagram payloads (PacketHandler args, read-loop buffers) from escaping the call without an explicit copy",
	Run:  run,
}

// transportPathSuffix identifies the seam package (suffix-matched so
// fixture stubs bind too, mirroring closecheck).
const transportPathSuffix = "internal/transport"

// unit is one independently-checked function body: a FuncDecl or a
// handler-shaped FuncLit. pos/end bound locality for its declarations.
type unit struct {
	params *ast.FieldList // seed borrowed params when handler-shaped, else nil
	body   *ast.BlockStmt
	pos    token.Pos
	end    token.Pos
}

func run(pass *analysis.Pass) error {
	handlerSig, packetConn := seamTypes(pass)
	if handlerSig == nil && packetConn == nil {
		return nil // package does not touch the transport seam
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			u := unit{body: fd.Body, pos: fd.Pos(), end: fd.End()}
			if handlerSig != nil && declMatches(pass, fd, handlerSig) {
				u.params = fd.Type.Params
			}
			check(pass, u, packetConn)
			// Handler-shaped literals (SetPacketHandler callbacks) are
			// their own units: their parameters are loans too.
			if handlerSig == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok || lit.Body == nil {
					return true
				}
				tv, ok := pass.TypesInfo.Types[lit]
				if !ok {
					return true
				}
				sig, ok := tv.Type.(*types.Signature)
				if !ok || !types.Identical(sig, handlerSig) {
					return true
				}
				check(pass, unit{params: lit.Type.Params, body: lit.Body, pos: lit.Pos(), end: lit.End()}, packetConn)
				return true
			})
		}
	}
	return nil
}

// declMatches reports whether fd's signature is identical to the
// handler's (receivers are ignored by types.Identical, so methods
// qualify — pollAgent.handleAnswer is the canonical case).
func declMatches(pass *analysis.Pass, fd *ast.FuncDecl, handlerSig *types.Signature) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && types.Identical(sig, handlerSig)
}

// seamTypes resolves the PacketHandler signature and the PacketConn
// interface from the imported transport package (directly or
// transitively), or from the package itself when it is the seam.
func seamTypes(pass *analysis.Pass) (*types.Signature, *types.Interface) {
	var seam *types.Package
	if strings.HasSuffix(pass.Pkg.Path(), transportPathSuffix) {
		seam = pass.Pkg
	}
	seen := make(map[*types.Package]bool)
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if p == nil || seen[p] || seam != nil {
			return
		}
		seen[p] = true
		if strings.HasSuffix(p.Path(), transportPathSuffix) {
			seam = p
			return
		}
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	for _, imp := range pass.Pkg.Imports() {
		walk(imp)
	}
	if seam == nil {
		return nil, nil
	}
	var sig *types.Signature
	if obj, ok := seam.Scope().Lookup("PacketHandler").(*types.TypeName); ok {
		sig, _ = obj.Type().Underlying().(*types.Signature)
	}
	var iface *types.Interface
	if obj, ok := seam.Scope().Lookup("PacketConn").(*types.TypeName); ok {
		iface, _ = obj.Type().Underlying().(*types.Interface)
	}
	return sig, iface
}

// check analyzes one unit: seed the borrowed set, propagate through
// local aliases to a fixpoint, then flag escapes.
func check(pass *analysis.Pass, u unit, packetConn *types.Interface) {
	borrowed := make(map[types.Object]bool)

	// Seed 1: handler-shaped units loan their []byte parameters.
	if u.params != nil {
		for _, field := range u.params.List {
			for _, id := range field.Names {
				p := pass.TypesInfo.ObjectOf(id)
				if p != nil && isByteSlice(p.Type()) {
					borrowed[p] = true
				}
			}
		}
	}

	// Seed 2: buffers fed to ReadFrom/Read on a seam conn inside a
	// loop are overwritten by the next iteration's datagram.
	if packetConn != nil {
		ast.Inspect(u.body, func(n ast.Node) bool {
			body := loopBody(n)
			if body == nil {
				return true
			}
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "ReadFrom" && sel.Sel.Name != "Read") {
					return true
				}
				tv, ok := pass.TypesInfo.Types[sel.X]
				if !ok || tv.Type == nil || !types.Implements(tv.Type, packetConn) {
					return true
				}
				if obj := baseObject(pass, call.Args[0]); obj != nil && isByteSlice(obj.Type()) {
					borrowed[obj] = true
				}
				return true
			})
			return true
		})
	}

	if len(borrowed) == 0 {
		return
	}

	// Propagate through local aliases until the set stops growing.
	for {
		grew := false
		ast.Inspect(u.body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Lhs) != len(as.Rhs) {
				// Multi-value: a call fed a borrowed argument loans
				// every alias-bearing result (decode helpers).
				call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
				if !ok || !callHasBorrowedArg(pass, call, borrowed) {
					return true
				}
				for _, l := range as.Lhs {
					obj := lhsObject(pass, l)
					if obj != nil && inRange(obj, u) && aliasBearing(obj.Type()) && !borrowed[obj] {
						borrowed[obj] = true
						grew = true
					}
				}
				return true
			}
			for i, rhs := range as.Rhs {
				if !borrowedExpr(pass, rhs, borrowed) {
					continue
				}
				obj := lhsObject(pass, as.Lhs[i])
				if obj != nil && inRange(obj, u) && !borrowed[obj] {
					borrowed[obj] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			break
		}
	}

	flagEscapes(pass, u, borrowed)
}

// flagEscapes reports every way a borrowed slice out-lives the call.
func flagEscapes(pass *analysis.Pass, u unit, borrowed map[types.Object]bool) {
	// Deferred literals run before the unit returns, while the loan is
	// still valid — their captures are synchronous uses, not escapes.
	deferred := make(map[*ast.FuncLit]bool)
	ast.Inspect(u.body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
				deferred[lit] = true
			}
		}
		return true
	})

	ast.Inspect(u.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !borrowedExpr(pass, rhs, borrowed) {
					continue
				}
				if escapeSite(pass, n.Lhs[i], u) {
					pass.Reportf(n.Pos(),
						"%s stores a borrowed datagram payload past the call (DESIGN.md §12: valid only for the duration of the call); copy it first (append([]byte(nil), b...))",
						render(n.Lhs[i]))
				}
			}
		case *ast.SendStmt:
			if borrowedExpr(pass, n.Value, borrowed) {
				pass.Reportf(n.Pos(),
					"sending a borrowed datagram payload on a channel lets it out-live the call; copy it first (append([]byte(nil), b...))")
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if borrowedExpr(pass, arg, borrowed) {
					pass.Reportf(n.Pos(),
						"goroutine argument carries a borrowed datagram payload; copy it first (append([]byte(nil), b...))")
					break
				}
			}
		case *ast.FuncLit:
			if deferred[n] {
				return true // still walk the body for stores/sends inside it
			}
			for obj := range borrowed {
				// Only flag captures of objects declared outside this
				// literal — its own locals shadowing names don't count.
				if obj.Pos() >= n.Pos() && obj.Pos() <= n.End() {
					continue
				}
				if capturesObject(pass, n, obj) {
					pass.Reportf(n.Pos(),
						"closure captures borrowed datagram payload %s and may run after the call returns; copy it first (append([]byte(nil), b...))",
						obj.Name())
					break
				}
			}
		}
		return true
	})
}

// escapeSite reports whether storing into lhs lets a value out-live
// the enclosing call: struct fields, package-level variables,
// pointees, and elements of any of those.
func escapeSite(pass *analysis.Pass, lhs ast.Expr, u unit) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return true // field (or dotted package var) store
	case *ast.IndexExpr:
		return escapeSite(pass, l.X, u)
	case *ast.StarExpr:
		return true // through a pointer: the pointee's lifetime is unknown
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(l)
		return obj != nil && obj.Name() != "_" && !inRange(obj, u)
	}
	return false
}

// borrowedExpr reports whether e evaluates to a view of a borrowed
// buffer: the object itself, a reslice, a same-slice conversion, a
// byte-slice field of a borrowed decode result, an append that keeps
// the slice as an element, or an alias-bearing call over a borrowed
// argument.
func borrowedExpr(pass *analysis.Pass, e ast.Expr, borrowed map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(e)
		return obj != nil && borrowed[obj]
	case *ast.SliceExpr:
		return borrowedExpr(pass, e.X, borrowed)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return borrowedExpr(pass, e.X, borrowed)
		}
		return false
	case *ast.SelectorExpr:
		// s.Payload where s is a borrowed decode result.
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || !aliasBearing(tv.Type) {
			return false
		}
		return borrowedExpr(pass, e.X, borrowed)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				if b.Name() != "append" {
					return false // len/cap/copy/... never return aliases
				}
				if e.Ellipsis.IsValid() {
					// append(dst, b...) spreads bytes into dst: the
					// result's ownership is dst's. append([]byte(nil),
					// b...) is therefore the sanctioned copy.
					return borrowedExpr(pass, e.Args[0], borrowed)
				}
				// append(container, p) keeps p itself as an element.
				return callHasBorrowedArg(pass, e, borrowed)
			}
		}
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Type == nil || !aliasBearing(tv.Type) {
			return false
		}
		// Conversions ([]byte(p) keeps the backing array) and
		// alias-bearing helper results over a borrowed argument.
		return callHasBorrowedArg(pass, e, borrowed)
	}
	return false
}

func callHasBorrowedArg(pass *analysis.Pass, call *ast.CallExpr, borrowed map[types.Object]bool) bool {
	for _, arg := range call.Args {
		if borrowedExpr(pass, arg, borrowed) {
			return true
		}
	}
	return false
}

// aliasBearing reports whether t can carry a view of a byte buffer: a
// byte slice itself, a slice of byte slices, or a struct (or pointer
// to one) with a byte-slice field.
func aliasBearing(t types.Type) bool {
	if t == nil {
		return false
	}
	if isByteSlice(t) {
		return true
	}
	if s, ok := t.Underlying().(*types.Slice); ok {
		return isByteSlice(s.Elem())
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isByteSlice(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// lhsObject resolves an assignment target to its object when it is a
// plain identifier.
func lhsObject(pass *analysis.Pass, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

// baseObject resolves the identifier at the base of an expression
// (through slicing and parens).
func baseObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(e)
	case *ast.SliceExpr:
		return baseObject(pass, e.X)
	}
	return nil
}

// inRange reports whether obj is declared inside the unit (parameters
// included).
func inRange(obj types.Object, u unit) bool {
	return obj.Pos() != token.NoPos && obj.Pos() >= u.pos && obj.Pos() <= u.end
}

// capturesObject reports whether the literal references obj from its
// enclosing scope.
func capturesObject(pass *analysis.Pass, lit *ast.FuncLit, obj types.Object) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// loopBody returns the body of a for/range statement (nil otherwise).
func loopBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// render prints simple lvalues for messages.
func render(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return render(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + render(e.X)
	}
	return "the target"
}
