package membership

import (
	"testing"
	"time"
)

func TestScheduleValidate(t *testing.T) {
	cases := []struct {
		name string
		s    *Schedule
		ok   bool
	}{
		{"nil", nil, true},
		{"empty", &Schedule{}, true},
		{"good", &Schedule{Events: []Event{{At: time.Second, Node: 3, Kind: Join}}}, true},
		{"negative offset", &Schedule{Events: []Event{{At: -1, Node: 0, Kind: Join}}}, false},
		{"negative node", &Schedule{Events: []Event{{At: 0, Node: -1, Kind: Drain}}}, false},
		{"bad kind", &Schedule{Events: []Event{{At: 0, Node: 0, Kind: Kind(9)}}}, false},
	}
	for _, c := range cases {
		if err := c.s.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%t", c.name, err, c.ok)
		}
	}
}

func TestScheduleActiveAndMaxNode(t *testing.T) {
	var nilSched *Schedule
	if nilSched.Active() || (&Schedule{}).Active() {
		t.Fatal("nil/empty schedule must be inert")
	}
	if got := nilSched.MaxNode(); got != -1 {
		t.Fatalf("nil MaxNode = %d, want -1", got)
	}
	s := &Schedule{Events: []Event{
		{At: 2 * time.Second, Node: 7, Kind: Join},
		{At: time.Second, Node: 19, Kind: Drain},
	}}
	if !s.Active() {
		t.Fatal("schedule with events must be active")
	}
	if got := s.MaxNode(); got != 19 {
		t.Fatalf("MaxNode = %d, want 19", got)
	}
}

func TestScheduleSortedStable(t *testing.T) {
	s := &Schedule{Events: []Event{
		{At: 2 * time.Second, Node: 1, Kind: Drain},
		{At: time.Second, Node: 2, Kind: Join},
		{At: 2 * time.Second, Node: 3, Kind: Leave},
	}}
	got := s.Sorted()
	if got[0].Node != 2 || got[1].Node != 1 || got[2].Node != 3 {
		t.Fatalf("Sorted order = %v", got)
	}
	if s.Events[0].Node != 1 {
		t.Fatal("Sorted must not mutate the schedule")
	}
}

func TestScaleCycle(t *testing.T) {
	s := ScaleCycle(4, 2, time.Second, 3*time.Second, time.Second, 42)
	if len(s.Events) != 6 {
		t.Fatalf("ScaleCycle events = %d, want 6", len(s.Events))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.MaxNode(); got != 5 {
		t.Fatalf("MaxNode = %d, want 5", got)
	}
	var joins, drains, leaves int
	for _, ev := range s.Events {
		switch ev.Kind {
		case Join:
			joins++
			if ev.At != time.Second {
				t.Errorf("join at %v, want 1s", ev.At)
			}
		case Drain:
			drains++
		case Leave:
			leaves++
			if ev.At != 4*time.Second {
				t.Errorf("leave at %v, want 4s", ev.At)
			}
		}
	}
	if joins != 2 || drains != 2 || leaves != 2 {
		t.Fatalf("kinds = %d/%d/%d, want 2/2/2", joins, drains, leaves)
	}
}

func TestPlayerReplaysEvents(t *testing.T) {
	s := &Schedule{Events: []Event{
		{At: 5 * time.Millisecond, Node: 4, Kind: Join},
		{At: 10 * time.Millisecond, Node: 4, Kind: Drain},
	}}
	got := make(chan Event, 2)
	p := s.PlayAt(time.Now(), 1.0, func(ev Event) { got <- ev })
	defer p.Stop()
	for i := 0; i < 2; i++ {
		select {
		case ev := <-got:
			if ev.Node != 4 {
				t.Fatalf("event %d targets node %d", i, ev.Node)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("timed out waiting for replayed event")
		}
	}
}

func TestKindString(t *testing.T) {
	if Join.String() != "join" || Drain.String() != "drain" || Leave.String() != "leave" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Fatal("unknown kind string")
	}
}
