// Package membership is the elastic-membership seam: a deterministic,
// seedable schedule of servers joining, draining, and leaving the pool
// mid-run, consumed identically by the real-socket prototype
// (internal/cluster) and the discrete-event simulator
// (internal/simcluster).
//
// The paper fixes the server set for the life of a run; internal/faults
// generalized that to crash/pause/resume but still never *grows* the
// pool. This package completes the generalization: a Schedule is pure
// data — which node changes state, when, and how — so the same schedule
// replayed with the same seed drives identical membership decisions on
// either substrate. The autoscaler (autoscaler.go) emits the same
// events from observed load instead of a precomputed plan.
package membership

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind enumerates membership events.
type Kind int

const (
	// Join adds a node to the routable pool. Joining a node id the run
	// has never seen grows the pool; re-joining a drained or departed id
	// restores it. A freshly joined node starts empty (load 0).
	Join Kind = iota
	// Drain removes a node from the routable pool but keeps it serving:
	// no new work is dispatched to it, yet queued and in-flight accesses
	// complete normally. This is the graceful half of a scale-down.
	Drain
	// Leave retires a node after its drain: it stops serving entirely
	// and its directory entries are withdrawn. Work still queued at
	// leave time completes first (the substrates never drop accepted
	// work on a planned departure — that is what faults.Crash is for).
	Leave
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case Join:
		return "join"
	case Drain:
		return "drain"
	case Leave:
		return "leave"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled membership change.
type Event struct {
	At   time.Duration // offset from the start of the run
	Node int           // target server node id
	Kind Kind
}

// Schedule is a complete membership plan. The zero value (or nil)
// changes nothing: the pool stays [0, Servers) for the whole run and
// runners treat it exactly like no schedule at all, so the fixed-pool
// fast path stays bit-identical.
type Schedule struct {
	// Seed drives any random membership decision a substrate needs
	// (none today; reserved so schedules fingerprint like faults ones).
	Seed   uint64
	Events []Event
}

// Validate reports whether the schedule is coherent.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, ev := range s.Events {
		if ev.At < 0 {
			return fmt.Errorf("membership: event %d at negative offset %v", i, ev.At)
		}
		if ev.Node < 0 {
			return fmt.Errorf("membership: event %d targets node %d", i, ev.Node)
		}
		if ev.Kind < Join || ev.Kind > Leave {
			return fmt.Errorf("membership: event %d has unknown kind %d", i, int(ev.Kind))
		}
	}
	return nil
}

// Active reports whether the schedule actually changes membership. A
// nil or empty schedule is inert.
func (s *Schedule) Active() bool {
	return s != nil && len(s.Events) > 0
}

// Sorted returns a copy of the events ordered by offset (stable, so
// same-instant events keep their declaration order).
func (s *Schedule) Sorted() []Event {
	if s == nil {
		return nil
	}
	out := append([]Event(nil), s.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// MaxNode returns the largest node id the schedule touches, or -1 for
// an inert schedule. Runners size their grown-pool capacity from it.
func (s *Schedule) MaxNode() int {
	max := -1
	if s == nil {
		return max
	}
	for _, ev := range s.Events {
		if ev.Node > max {
			max = ev.Node
		}
	}
	return max
}

// Player replays a schedule's events on the wall clock (the prototype
// side; the simulator schedules events on its own clock).
type Player struct {
	mu     sync.Mutex
	timers []*time.Timer
}

// PlayAt arms one timer per event, firing apply(ev) at
// start + ev.At*scale. scale mirrors the driver's TimeScale so a
// stretched run stretches its membership changes identically. Stop the
// returned Player to cancel events that have not fired.
func (s *Schedule) PlayAt(start time.Time, scale float64, apply func(Event)) *Player {
	p := &Player{}
	if s == nil {
		return p
	}
	for _, ev := range s.Sorted() {
		ev := ev
		at := start.Add(time.Duration(float64(ev.At) * scale))
		//lint:allow detclock Player exists to replay schedules on the prototype's wall clock; the simulator replays them on its event clock
		p.timers = append(p.timers, time.AfterFunc(time.Until(at), func() { apply(ev) }))
	}
	return p
}

// Stop cancels all not-yet-fired events.
func (p *Player) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, t := range p.timers {
		t.Stop()
	}
}

// ScaleCycle is a canned schedule for demos and tests: grow the pool
// from n to n+extra at grow, then drain and retire the added nodes at
// shrink (drain) and shrink+settle (leave).
func ScaleCycle(n, extra int, grow, shrink, settle time.Duration, seed uint64) *Schedule {
	s := &Schedule{Seed: seed}
	for i := 0; i < extra; i++ {
		s.Events = append(s.Events, Event{At: grow, Node: n + i, Kind: Join})
	}
	for i := 0; i < extra; i++ {
		s.Events = append(s.Events, Event{At: shrink, Node: n + i, Kind: Drain})
	}
	for i := 0; i < extra; i++ {
		s.Events = append(s.Events, Event{At: shrink + settle, Node: n + i, Kind: Leave})
	}
	return s
}
