package membership

import (
	"fmt"
	"time"
)

// Autoscaler policy defaults, shared by both substrates so an elastic
// run behaves the same on the simulator and the prototype.
const (
	// DefaultScaleUpAt is the per-server load (queued + in service)
	// above which the pool grows.
	DefaultScaleUpAt = 4.0
	// DefaultScaleDownAt is the utilization floor: the pool shrinks
	// only while per-server load sits below it, mirroring the
	// cluster-autoscaler rule that a node is removable only when its
	// utilization is low — not merely when the average stops climbing.
	DefaultScaleDownAt = 1.0
	// DefaultScaleUpCooldown / DefaultScaleDownCooldown are the minimum
	// gaps between consecutive scaling actions in each direction.
	// Scale-down waits longer so a transient lull does not shed
	// capacity the next burst needs back.
	DefaultScaleUpCooldown   = 2 * time.Second
	DefaultScaleDownCooldown = 8 * time.Second
	// DefaultInterval is how often the autoscaler samples load.
	DefaultInterval = 500 * time.Millisecond
)

// AutoscalerConfig is a load-threshold scaling policy: grow when the
// observed per-server load exceeds ScaleUpAt, shrink when it falls
// below ScaleDownAt, never leave [Min, Max], and respect per-direction
// cooldown windows. The zero value is inert (disabled).
type AutoscalerConfig struct {
	Min, Max int // pool size bounds; Min <= pool <= Max

	// ScaleUpAt / ScaleDownAt are per-server load thresholds
	// (outstanding accesses per active server). Scale-down only fires
	// below ScaleDownAt — a utilization floor, not a symmetric trigger.
	ScaleUpAt   float64
	ScaleDownAt float64

	// Step is how many servers one action adds or removes (default 1).
	Step int

	// ScaleUpCooldown / ScaleDownCooldown gate consecutive actions in
	// the same direction. A scale-up also resets the scale-down window,
	// so capacity just added is not immediately withdrawn.
	ScaleUpCooldown   time.Duration
	ScaleDownCooldown time.Duration

	// Interval is how often the substrate samples load and calls
	// Evaluate.
	Interval time.Duration
}

// Active reports whether the policy is enabled. A nil or zero config
// is inert: runners treat it exactly like no autoscaler at all.
func (c *AutoscalerConfig) Active() bool {
	return c != nil && c.Max > 0
}

// Validate reports whether the policy is coherent.
func (c *AutoscalerConfig) Validate() error {
	if !c.Active() {
		return nil
	}
	if c.Min < 1 {
		return fmt.Errorf("membership: autoscaler min pool %d < 1", c.Min)
	}
	if c.Max < c.Min {
		return fmt.Errorf("membership: autoscaler max pool %d < min %d", c.Max, c.Min)
	}
	if c.ScaleUpAt < 0 || c.ScaleDownAt < 0 {
		return fmt.Errorf("membership: autoscaler negative threshold (up %v, down %v)", c.ScaleUpAt, c.ScaleDownAt)
	}
	if c.ScaleDownAt > c.ScaleUpAt && c.ScaleUpAt > 0 {
		return fmt.Errorf("membership: autoscaler scale-down floor %v above scale-up threshold %v", c.ScaleDownAt, c.ScaleUpAt)
	}
	if c.Step < 0 {
		return fmt.Errorf("membership: autoscaler negative step %d", c.Step)
	}
	if c.ScaleUpCooldown < 0 || c.ScaleDownCooldown < 0 {
		return fmt.Errorf("membership: autoscaler negative cooldown")
	}
	if c.Interval < 0 {
		return fmt.Errorf("membership: autoscaler negative interval %v", c.Interval)
	}
	return nil
}

// withDefaults fills the zero fields of an active config.
func (c *AutoscalerConfig) withDefaults() AutoscalerConfig {
	out := *c
	if out.ScaleUpAt == 0 {
		out.ScaleUpAt = DefaultScaleUpAt
	}
	if out.ScaleDownAt == 0 {
		out.ScaleDownAt = DefaultScaleDownAt
	}
	if out.Step == 0 {
		out.Step = 1
	}
	if out.ScaleUpCooldown == 0 {
		out.ScaleUpCooldown = DefaultScaleUpCooldown
	}
	if out.ScaleDownCooldown == 0 {
		out.ScaleDownCooldown = DefaultScaleDownCooldown
	}
	if out.Interval == 0 {
		out.Interval = DefaultInterval
	}
	return out
}

// SampleInterval returns the configured sampling interval with
// defaults applied.
func (c *AutoscalerConfig) SampleInterval() time.Duration {
	if !c.Active() {
		return DefaultInterval
	}
	return c.withDefaults().Interval
}

// Autoscaler evaluates the policy over explicit timestamps. It holds
// only cooldown state; the substrate owns the pool and applies the
// returned deltas as Join/Drain/Leave events. Time is always passed in
// by the caller (the simulator's event clock or the prototype's scaled
// wall clock), never read from the system — cooldowns must replay
// deterministically.
type Autoscaler struct {
	cfg AutoscalerConfig

	lastUp   time.Duration
	lastDown time.Duration
	hasUp    bool
	hasDown  bool
}

// NewAutoscaler builds an evaluator for cfg (defaults applied). It
// returns nil for an inert config; a nil Autoscaler never scales.
func NewAutoscaler(cfg *AutoscalerConfig) *Autoscaler {
	if !cfg.Active() {
		return nil
	}
	return &Autoscaler{cfg: cfg.withDefaults()}
}

// Config returns the policy with defaults applied.
func (a *Autoscaler) Config() AutoscalerConfig { return a.cfg }

// Evaluate inspects one load sample and returns the pool delta the
// policy wants: +k to add k servers, -k to drain k, 0 to hold. now is
// the elapsed run time of the sample, pool the current active server
// count, and loadPerServer the observed outstanding accesses per
// active server. Evaluate is pure in time: the same sample sequence
// yields the same decisions on every substrate.
func (a *Autoscaler) Evaluate(now time.Duration, pool int, loadPerServer float64) int {
	if a == nil {
		return 0
	}
	c := &a.cfg
	if loadPerServer > c.ScaleUpAt && pool < c.Max {
		if a.hasUp && now-a.lastUp < c.ScaleUpCooldown {
			return 0
		}
		step := c.Step
		if pool+step > c.Max {
			step = c.Max - pool
		}
		a.lastUp, a.hasUp = now, true
		// Fresh capacity resets the shrink window so it is not
		// withdrawn before it has served a full cooldown's worth of
		// samples.
		a.lastDown, a.hasDown = now, true
		return step
	}
	if loadPerServer < c.ScaleDownAt && pool > c.Min {
		if a.hasDown && now-a.lastDown < c.ScaleDownCooldown {
			return 0
		}
		step := c.Step
		if pool-step < c.Min {
			step = pool - c.Min
		}
		a.lastDown, a.hasDown = now, true
		return -step
	}
	return 0
}
