package membership

import (
	"testing"
	"time"
)

func TestAutoscalerConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		c    *AutoscalerConfig
		ok   bool
	}{
		{"nil inert", nil, true},
		{"zero inert", &AutoscalerConfig{}, true},
		{"good", &AutoscalerConfig{Min: 2, Max: 8}, true},
		{"min zero", &AutoscalerConfig{Min: 0, Max: 8}, false},
		{"max below min", &AutoscalerConfig{Min: 4, Max: 2}, false},
		{"floor above trigger", &AutoscalerConfig{Min: 1, Max: 4, ScaleUpAt: 1, ScaleDownAt: 2}, false},
		{"negative step", &AutoscalerConfig{Min: 1, Max: 4, Step: -1}, false},
		{"negative cooldown", &AutoscalerConfig{Min: 1, Max: 4, ScaleUpCooldown: -time.Second}, false},
		{"negative interval", &AutoscalerConfig{Min: 1, Max: 4, Interval: -time.Second}, false},
	}
	for _, c := range cases {
		if err := c.c.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%t", c.name, err, c.ok)
		}
	}
}

func TestAutoscalerInert(t *testing.T) {
	if a := NewAutoscaler(nil); a != nil {
		t.Fatal("nil config must yield nil autoscaler")
	}
	var a *Autoscaler
	if got := a.Evaluate(time.Second, 4, 100); got != 0 {
		t.Fatalf("nil autoscaler Evaluate = %d, want 0", got)
	}
}

func TestAutoscalerScaleUpAndCooldown(t *testing.T) {
	a := NewAutoscaler(&AutoscalerConfig{
		Min: 2, Max: 6,
		ScaleUpAt: 4, ScaleDownAt: 1,
		ScaleUpCooldown: 2 * time.Second, ScaleDownCooldown: 4 * time.Second,
	})
	if got := a.Evaluate(0, 2, 5.0); got != 1 {
		t.Fatalf("overloaded sample: delta = %d, want +1", got)
	}
	// Inside the cooldown window the policy holds even though load is
	// still above the trigger.
	if got := a.Evaluate(time.Second, 3, 9.0); got != 0 {
		t.Fatalf("inside cooldown: delta = %d, want 0", got)
	}
	if got := a.Evaluate(2*time.Second+time.Millisecond, 3, 9.0); got != 1 {
		t.Fatalf("past cooldown: delta = %d, want +1", got)
	}
}

func TestAutoscalerScaleUpClampsAtMax(t *testing.T) {
	a := NewAutoscaler(&AutoscalerConfig{Min: 1, Max: 4, ScaleUpAt: 2, ScaleDownAt: 1, Step: 3})
	if got := a.Evaluate(0, 3, 10); got != 1 {
		t.Fatalf("delta = %d, want +1 (clamped at max)", got)
	}
	if got := a.Evaluate(time.Hour, 4, 10); got != 0 {
		t.Fatalf("at max: delta = %d, want 0", got)
	}
}

func TestAutoscalerScaleDownFloorAndCooldown(t *testing.T) {
	a := NewAutoscaler(&AutoscalerConfig{
		Min: 2, Max: 8,
		ScaleUpAt: 4, ScaleDownAt: 1,
		ScaleUpCooldown: time.Second, ScaleDownCooldown: 5 * time.Second,
	})
	// Load between the floor and the trigger: hold, never shrink.
	if got := a.Evaluate(0, 6, 2.0); got != 0 {
		t.Fatalf("mid-band sample: delta = %d, want 0", got)
	}
	if got := a.Evaluate(time.Second, 6, 0.2); got != -1 {
		t.Fatalf("idle sample: delta = %d, want -1", got)
	}
	if got := a.Evaluate(3*time.Second, 5, 0.2); got != 0 {
		t.Fatalf("inside down-cooldown: delta = %d, want 0", got)
	}
	if got := a.Evaluate(7*time.Second, 5, 0.2); got != -1 {
		t.Fatalf("past down-cooldown: delta = %d, want -1", got)
	}
	// Min pool is a hard floor.
	if got := a.Evaluate(time.Hour, 2, 0.0); got != 0 {
		t.Fatalf("at min: delta = %d, want 0", got)
	}
}

func TestAutoscalerScaleUpResetsDownWindow(t *testing.T) {
	a := NewAutoscaler(&AutoscalerConfig{
		Min: 1, Max: 8,
		ScaleUpAt: 4, ScaleDownAt: 1,
		ScaleUpCooldown: time.Second, ScaleDownCooldown: 10 * time.Second,
	})
	if got := a.Evaluate(0, 2, 8.0); got != 1 {
		t.Fatalf("scale up: delta = %d, want +1", got)
	}
	// Load collapses right after the scale-up; the fresh capacity must
	// survive a full scale-down cooldown before being withdrawn.
	if got := a.Evaluate(2*time.Second, 3, 0.1); got != 0 {
		t.Fatalf("fresh capacity withdrawn early: delta = %d, want 0", got)
	}
	if got := a.Evaluate(11*time.Second, 3, 0.1); got != -1 {
		t.Fatalf("past reset window: delta = %d, want -1", got)
	}
}

func TestAutoscalerDeterministicReplay(t *testing.T) {
	cfg := &AutoscalerConfig{Min: 2, Max: 10, ScaleUpAt: 3, ScaleDownAt: 1}
	samples := []struct {
		at   time.Duration
		pool int
		load float64
	}{
		{0, 2, 5}, {time.Second, 3, 5}, {3 * time.Second, 3, 6},
		{5 * time.Second, 4, 0.5}, {9 * time.Second, 4, 0.4},
		{14 * time.Second, 3, 0.3}, {20 * time.Second, 2, 8},
	}
	run := func() []int {
		a := NewAutoscaler(cfg)
		out := make([]int, 0, len(samples))
		pool := 0
		for _, s := range samples {
			pool = s.pool
			out = append(out, a.Evaluate(s.at, pool, s.load))
		}
		return out
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at sample %d: %v vs %v", i, first, second)
		}
	}
}
