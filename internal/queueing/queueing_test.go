package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Abs(b))
}

func TestMM1MeanResponse(t *testing.T) {
	// 50 ms service at 90% -> 500 ms.
	if got := MM1MeanResponse(0.050, 0.9); !almost(got, 0.5, 1e-12) {
		t.Fatalf("MM1MeanResponse = %v", got)
	}
	if got := MM1MeanResponse(1, 0); got != 1 {
		t.Fatalf("idle MM1 response = %v", got)
	}
}

func TestMM1MeanQueueLength(t *testing.T) {
	if got := MM1MeanQueueLength(0.5); !almost(got, 1, 1e-12) {
		t.Fatalf("L(0.5) = %v", got)
	}
	if got := MM1MeanQueueLength(0.9); !almost(got, 9, 1e-12) {
		t.Fatalf("L(0.9) = %v", got)
	}
}

func TestMM1PMFSumsToOne(t *testing.T) {
	for _, rho := range []float64{0, 0.3, 0.5, 0.9, 0.99} {
		sum := 0.0
		for k := 0; k < 10000; k++ {
			sum += MM1QueueLengthPMF(rho, k)
		}
		if !almost(sum, 1, 1e-6) {
			t.Errorf("PMF(rho=%v) sums to %v", rho, sum)
		}
	}
	if MM1QueueLengthPMF(0.5, -1) != 0 {
		t.Error("PMF(k<0) != 0")
	}
}

func TestStalenessUpperBoundPaperValues(t *testing.T) {
	// The paper quotes 1.33 for a 50%-busy server...
	if got := StalenessUpperBound(0.5); !almost(got, 4.0/3.0, 1e-12) {
		t.Fatalf("bound(0.5) = %v, want 1.333", got)
	}
	// ...and "an error of around 3" near the 90% bound (2*0.9/0.19 = 9.47
	// is the asymptote; the ~3 in the text is at delay ~10x service time,
	// not the asymptote). Check the closed form itself:
	if got := StalenessUpperBound(0.9); !almost(got, 2*0.9/(1-0.81), 1e-12) {
		t.Fatalf("bound(0.9) = %v", got)
	}
}

func TestStalenessSeriesMatchesClosedForm(t *testing.T) {
	for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		series := StalenessUpperBoundSeries(rho, 1e-12)
		closed := StalenessUpperBound(rho)
		if !almost(series, closed, 1e-6) {
			t.Errorf("rho=%v: series %v vs closed %v", rho, series, closed)
		}
	}
	if got := StalenessUpperBoundSeries(0, 1e-12); got != 0 {
		t.Errorf("series(0) = %v", got)
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// c=1 reduces to rho.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if got := ErlangC(1, rho); !almost(got, rho, 1e-12) {
			t.Errorf("ErlangC(1, %v) = %v", rho, got)
		}
	}
	// Textbook value: c=2, a=1 -> P(wait) = 1/3.
	if got := ErlangC(2, 1); !almost(got, 1.0/3.0, 1e-9) {
		t.Errorf("ErlangC(2,1) = %v, want 1/3", got)
	}
	// Probability must be in [0,1] and increasing in load.
	prev := 0.0
	for _, a := range []float64{1, 4, 8, 12, 15} {
		p := ErlangC(16, a)
		if p < prev || p < 0 || p > 1 {
			t.Errorf("ErlangC(16, %v) = %v not monotone in [0,1]", a, p)
		}
		prev = p
	}
}

func TestMMcMeanResponse(t *testing.T) {
	// c=1 must agree with M/M/1.
	s, rho := 0.05, 0.8
	if got, want := MMcMeanResponse(1, rho/s, s), MM1MeanResponse(s, rho); !almost(got, want, 1e-9) {
		t.Fatalf("MMc(c=1) = %v, want %v", got, want)
	}
	// A 16-server pooled system responds far faster than 16 separate
	// M/M/1s at the same per-server load.
	pooled := MMcMeanResponse(16, 16*0.9/s, s)
	single := MM1MeanResponse(s, 0.9)
	if pooled >= single {
		t.Fatalf("pooling slower than single: %v >= %v", pooled, single)
	}
	if pooled < s {
		t.Fatalf("response below service time: %v", pooled)
	}
}

func TestKingmanMG1Exact(t *testing.T) {
	// For M/M/1 (ca=cs=1), Kingman is exact: W = rho/(1-rho) * s.
	s, rho := 0.0222, 0.9
	want := MM1MeanResponse(s, rho) - s
	if got := KingmanWait(rho, 1, 1, s); !almost(got, want, 1e-12) {
		t.Fatalf("Kingman M/M/1 = %v, want %v", got, want)
	}
	// M/D/1 waits half as long as M/M/1.
	if got := KingmanWait(rho, 1, 0, s); !almost(got, want/2, 1e-12) {
		t.Fatalf("Kingman M/D/1 = %v, want %v", got, want/2)
	}
}

func TestPowerOfDReducesToMM1(t *testing.T) {
	for _, rho := range []float64{0.2, 0.5, 0.9} {
		if got, want := PowerOfDMeanQueue(rho, 1), MM1MeanQueueLength(rho); !almost(got, want, 1e-9) {
			t.Errorf("d=1 rho=%v: %v want %v", rho, got, want)
		}
	}
}

func TestPowerOfDExponentialImprovement(t *testing.T) {
	// Mitzenmacher: d=2 is a dramatic improvement over d=1; d=3..8 gains
	// are comparatively small. Reproduce that ordering at rho=0.9.
	rho := 0.9
	q1 := PowerOfDMeanQueue(rho, 1)
	q2 := PowerOfDMeanQueue(rho, 2)
	q3 := PowerOfDMeanQueue(rho, 3)
	q8 := PowerOfDMeanQueue(rho, 8)
	if q2 >= q1/3 {
		t.Fatalf("d=2 (%v) not dramatically below d=1 (%v)", q2, q1)
	}
	if !(q8 < q3 && q3 < q2) {
		t.Fatalf("queue not decreasing in d: %v %v %v", q2, q3, q8)
	}
	// The d=2 -> d=8 gain is far smaller than the d=1 -> d=2 gain.
	if (q2 - q8) > (q1-q2)/4 {
		t.Fatalf("diminishing returns violated: d1=%v d2=%v d8=%v", q1, q2, q8)
	}
}

func TestPowerOfDMeanResponse(t *testing.T) {
	s := 0.05
	if got := PowerOfDMeanResponse(0, 2, s); got != s {
		t.Fatalf("idle response = %v", got)
	}
	// d=1 must match M/M/1 response by Little's law.
	rho := 0.8
	if got, want := PowerOfDMeanResponse(rho, 1, s), MM1MeanResponse(s, rho); !almost(got, want, 1e-9) {
		t.Fatalf("d=1 response %v, want %v", got, want)
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { MM1MeanResponse(1, 1) },
		func() { MM1MeanResponse(1, -0.1) },
		func() { StalenessUpperBound(1) },
		func() { ErlangC(0, 0.5) },
		func() { ErlangC(2, 2) },
		func() { PowerOfDMeanQueue(0.5, 0) },
		func() { KingmanWait(math.NaN(), 1, 1, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: Equation 1's closed form is positive, increasing in rho, and
// always at least the mean-queue-difference at any finite truncation.
func TestQuickStalenessBoundMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		r1 := float64(a%990) / 1000 // [0, 0.989]
		r2 := float64(b%990) / 1000
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		return StalenessUpperBound(r1) <= StalenessUpperBound(r2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: power-of-d queue length decreases (weakly) in d for all rho.
func TestQuickPowerOfDMonotoneInD(t *testing.T) {
	f := func(a uint16, dRaw uint8) bool {
		rho := float64(a%990) / 1000
		d := int(dRaw%7) + 1
		return PowerOfDMeanQueue(rho, d+1) <= PowerOfDMeanQueue(rho, d)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllenCunneen(t *testing.T) {
	// ca = cs = 1 reduces to the M/M/c wait.
	s, lambda, c := 0.05, 0.8/0.05, 1
	want := MMcMeanResponse(c, lambda, s) - s
	if got := AllenCunneenWait(c, lambda, s, 1, 1); !almost(got, want, 1e-12) {
		t.Fatalf("AC(ca=cs=1) = %v, want %v", got, want)
	}
	// Deterministic service halves the wait.
	if got := AllenCunneenWait(c, lambda, s, 1, 0); !almost(got, want/2, 1e-12) {
		t.Fatalf("AC(cs=0) = %v, want %v", got, want/2)
	}
	// Burstier arrivals increase the wait monotonically.
	prev := 0.0
	for _, ca := range []float64{0.5, 1, 2, 4} {
		w := AllenCunneenWait(16, 16*0.9/s, s, ca, 1)
		if w <= prev {
			t.Fatalf("AC not increasing in ca at %v", ca)
		}
		prev = w
	}
}
