// Package queueing provides the closed-form queueing-theory results the
// paper relies on: M/M/1 response time and queue-length distribution,
// Erlang-C (M/M/c) delay, the Kingman (M/G/1 and G/G/1) approximations
// used to sanity-check trace-driven runs, and the paper's Equation 1 —
// the upper bound on load-index inaccuracy for a Poisson/Exp workload.
package queueing

import (
	"fmt"
	"math"
)

// MM1MeanResponse returns the mean response time (wait + service) of an
// M/M/1 queue with mean service time s and utilization rho in [0, 1).
func MM1MeanResponse(s, rho float64) float64 {
	checkRho(rho)
	return s / (1 - rho)
}

// MM1MeanQueueLength returns the mean number in system (queued plus in
// service) of an M/M/1 queue at utilization rho.
func MM1MeanQueueLength(rho float64) float64 {
	checkRho(rho)
	return rho / (1 - rho)
}

// MM1QueueLengthPMF returns P(N = k) for an M/M/1 queue at utilization
// rho: (1-rho) rho^k.
func MM1QueueLengthPMF(rho float64, k int) float64 {
	checkRho(rho)
	if k < 0 {
		return 0
	}
	return (1 - rho) * math.Pow(rho, float64(k))
}

// StalenessUpperBound is the paper's Equation 1: the statistical mean of
// the queue-length difference measured at two arbitrary, independent
// times for a single M/M/1 server at utilization rho,
//
//	sum_{i,j>=0} (1-rho)^2 rho^{i+j} |i-j|  =  2 rho / (1 - rho^2).
//
// It upper-bounds the load-index inaccuracy at any dissemination delay,
// assuming inaccuracy grows monotonically with delay.
func StalenessUpperBound(rho float64) float64 {
	checkRho(rho)
	return 2 * rho / (1 - rho*rho)
}

// StalenessUpperBoundSeries evaluates Equation 1 by direct summation of
// the double series, truncated when terms fall below eps. It exists to
// validate the closed form and the paper's derivation.
func StalenessUpperBoundSeries(rho float64, eps float64) float64 {
	checkRho(rho)
	if rho == 0 {
		return 0
	}
	p := func(k int) float64 { return (1 - rho) * math.Pow(rho, float64(k)) }
	total := 0.0
	for i := 0; ; i++ {
		pi := p(i)
		rowMax := pi // bound on the largest remaining row contribution factor
		row := 0.0
		for j := 0; ; j++ {
			term := pi * p(j) * math.Abs(float64(i-j))
			row += term
			// Terms decay geometrically in j once j > i.
			if j > i && term < eps*1e-3 {
				break
			}
		}
		total += row
		if i > 0 && rowMax*MM1MeanQueueLength(rho) < eps*1e-3 && row < eps {
			break
		}
		if i > 100000 {
			break
		}
	}
	return total
}

// ErlangC returns the probability that an arriving job waits in an
// M/M/c system with offered load a = lambda/mu (in Erlangs) and c
// servers. Requires a < c.
func ErlangC(c int, a float64) float64 {
	if c <= 0 {
		panic("queueing: ErlangC with c <= 0")
	}
	if a < 0 || a >= float64(c) {
		panic(fmt.Sprintf("queueing: ErlangC offered load %v out of [0, c=%d)", a, c))
	}
	// Iterative Erlang-B then convert, numerically stable for large c.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b))
}

// MMcMeanResponse returns the mean response time of an M/M/c queue with
// per-server mean service time s, arrival rate lambda, and c servers.
func MMcMeanResponse(c int, lambda, s float64) float64 {
	a := lambda * s
	pWait := ErlangC(c, a)
	mu := 1 / s
	wq := pWait / (float64(c)*mu - lambda)
	return wq + s
}

// KingmanWait returns the G/G/1 mean waiting-time approximation
//
//	W ≈ (rho/(1-rho)) * ((ca^2 + cs^2)/2) * s
//
// with arrival-interval CV ca, service-time CV cs, utilization rho, and
// mean service time s. Exact for M/G/1 (ca = 1, Pollaczek–Khinchine).
func KingmanWait(rho, ca, cs, s float64) float64 {
	checkRho(rho)
	return rho / (1 - rho) * (ca*ca + cs*cs) / 2 * s
}

// PowerOfDMeanQueue returns the asymptotic (N -> infinity) mean queue
// length of the supermarket model: Poisson arrivals at rate rho per
// server, exponential service, each job joining the shortest of d
// uniformly sampled queues (Mitzenmacher 1996):
//
//	E[N] = sum_{i>=1} rho^{(d^i - 1)/(d - 1)}.
//
// d = 1 reduces to M/M/1. The paper's poll-size discussion (§2.3) rests
// on this result: d = 2 is exponentially better than d = 1, while
// d > 2 adds little.
func PowerOfDMeanQueue(rho float64, d int) float64 {
	checkRho(rho)
	if d < 1 {
		panic("queueing: PowerOfDMeanQueue with d < 1")
	}
	if d == 1 {
		return MM1MeanQueueLength(rho)
	}
	total := 0.0
	for i := 1; ; i++ {
		exp := (math.Pow(float64(d), float64(i)) - 1) / float64(d-1)
		term := math.Pow(rho, exp)
		total += term
		if term < 1e-15 || i > 64 {
			break
		}
	}
	return total
}

// PowerOfDMeanResponse converts PowerOfDMeanQueue to a mean response
// time via Little's law at per-server arrival rate rho/s.
func PowerOfDMeanResponse(rho float64, d int, s float64) float64 {
	if rho == 0 {
		return s
	}
	return PowerOfDMeanQueue(rho, d) * s / rho
}

func checkRho(rho float64) {
	if rho < 0 || rho >= 1 || math.IsNaN(rho) {
		panic(fmt.Sprintf("queueing: utilization %v out of [0, 1)", rho))
	}
}

// AllenCunneenWait returns the Allen-Cunneen G/G/c mean waiting-time
// approximation: the M/M/c wait scaled by (ca^2 + cs^2)/2, with
// per-server mean service time s, arrival rate lambda, c servers, and
// arrival/service CVs ca and cs. It generalizes KingmanWait to a pooled
// multi-server station and sanity-checks the 16-server trace runs.
func AllenCunneenWait(c int, lambda, s, ca, cs float64) float64 {
	mmcWait := MMcMeanResponse(c, lambda, s) - s
	return mmcWait * (ca*ca + cs*cs) / 2
}
