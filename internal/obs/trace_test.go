package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestTraceRingWrap(t *testing.T) {
	tr := NewTrace(3)
	for i := 1; i <= 5; i++ {
		tr.Emit(float64(i), "e", "test", int64(i), 0)
	}
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("retained %d events, want 3", len(ev))
	}
	for i, want := range []uint64{3, 4, 5} {
		if ev[i].Seq != want {
			t.Fatalf("events = %+v, want seqs 3,4,5 oldest-first", ev)
		}
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.Total())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
}

func TestTracePartialFill(t *testing.T) {
	tr := NewTrace(8)
	tr.Emit(0.5, "a", "x", 1, 2)
	tr.Emit(0.7, "b", "y", 3, 4)
	ev := tr.Events()
	if len(ev) != 2 || ev[0].Name != "a" || ev[1].Name != "b" {
		t.Fatalf("events = %+v, want a then b", ev)
	}
	if ev[0].Seq != 1 || ev[1].Seq != 2 {
		t.Fatalf("seqs = %d,%d, want 1,2", ev[0].Seq, ev[1].Seq)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped())
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Emit(1, "e", "x", 0, 0) // must not panic
	if tr.Events() != nil || tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil trace reported retained state")
	}
}

func TestTraceMinimumCapacity(t *testing.T) {
	tr := NewTrace(0)
	tr.Emit(1, "a", "x", 0, 0)
	tr.Emit(2, "b", "x", 0, 0)
	ev := tr.Events()
	if len(ev) != 1 || ev[0].Name != "b" {
		t.Fatalf("capacity-0 trace should clamp to 1 and keep newest, got %+v", ev)
	}
}

func TestTraceConcurrentEmit(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				tr.Emit(0, "e", "w", 0, 0)
			}
		}()
	}
	wg.Wait()
	if tr.Total() != workers*per {
		t.Fatalf("total = %d, want %d", tr.Total(), workers*per)
	}
	ev := tr.Events()
	if len(ev) != 64 {
		t.Fatalf("retained %d, want 64", len(ev))
	}
	// Sequence numbers must be unique even under contention; the ring
	// holds the 64 newest in order.
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq <= ev[i-1].Seq {
			t.Fatalf("retained events out of order at %d: %d then %d", i, ev[i-1].Seq, ev[i].Seq)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total").Add(7)
	tr := NewTrace(4)
	tr.Emit(1.5, "poll.sent", "client:0", 3, 0)

	mux := NewMux(reg, tr, true)

	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != 200 {
		t.Fatalf("/metrics status = %d", w.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.Value("hits_total") != 7 {
		t.Fatalf("/metrics hits_total = %d, want 7", snap.Value("hits_total"))
	}

	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/trace", nil))
	if w.Code != 200 {
		t.Fatalf("/trace status = %d", w.Code)
	}
	var events []Event
	if err := json.Unmarshal(w.Body.Bytes(), &events); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(events) != 1 || events[0].Name != "poll.sent" {
		t.Fatalf("/trace = %+v, want one poll.sent event", events)
	}

	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if w.Code != 200 {
		t.Fatalf("/debug/pprof/cmdline status = %d with pprof enabled", w.Code)
	}

	// Without the flag, pprof must not be mounted.
	plain := NewMux(reg, nil, false)
	w = httptest.NewRecorder()
	plain.ServeHTTP(w, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if w.Code == 200 {
		t.Fatal("pprof reachable without enablePprof")
	}

	// Nil trace serves an empty list — a JSON array, never null.
	w = httptest.NewRecorder()
	plain.ServeHTTP(w, httptest.NewRequest("GET", "/trace", nil))
	if w.Code != 200 {
		t.Fatalf("/trace with nil trace status = %d", w.Code)
	}
	if body := strings.TrimSpace(w.Body.String()); body != "[]" {
		t.Fatalf("/trace with nil trace = %q, want []", body)
	}
}
