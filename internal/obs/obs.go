// Package obs is the repository's internal observability layer: a
// lightweight, allocation-conscious metrics registry (counters, gauges,
// fixed-bucket histograms) plus an optional structured event trace
// (obs.Trace). Both execution substrates — the discrete-event simulator
// and the socket/in-memory prototype — record the same metric catalog
// (RunMetrics) through it, so anything inside a run (queue-length
// peaks, poll round trips, discard decisions, quarantines) can be
// asserted and regression-tested, not just end-of-run aggregates.
//
// Hot-path operations (Counter.Add, Gauge.Add, Histogram.Observe) are
// lock-free atomics with zero allocation; registration happens once at
// run setup. A Snapshot freezes every metric into a sorted,
// JSON-marshalable form with two digests: Digest covers everything,
// DeterministicDigest covers only the values that are a pure function
// of the run's seed and spec (counters, gauge end values) so identical
// seeded runs can be compared bit for bit even though wall-clock-valued
// metrics (latency histograms, gauge high-waters) differ run to run.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric types in snapshots.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically non-decreasing count. Add saturates at
// math.MaxInt64 instead of wrapping: a counter that has been running
// for years must never appear to jump negative, and saturation makes
// merge (sum) semantics total.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by delta (negative deltas are ignored —
// counters only go up). On overflow the counter saturates at
// math.MaxInt64.
//
//lint:noalloc
func (c *Counter) Add(delta int64) {
	if delta <= 0 {
		return
	}
	for {
		old := c.v.Load()
		next := old + delta
		if next < old { // overflow past MaxInt64
			next = math.MaxInt64
		}
		if c.v.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
//
//lint:noalloc
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Merge folds another counter's value into this one (saturating sum):
// the semantics of combining per-shard counters into one total.
func (c *Counter) Merge(other *Counter) { c.Add(other.Value()) }

// Gauge is an instantaneous level (queue depth, busy workers) that also
// tracks its high-water mark, because a peak is often the interesting
// part of a level and sampling cannot catch it.
type Gauge struct {
	v    atomic.Int64
	high atomic.Int64
}

// Set replaces the gauge value.
//
//lint:noalloc
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	g.raiseHigh(v)
}

// Add moves the gauge by delta (either sign).
//
//lint:noalloc
func (g *Gauge) Add(delta int64) {
	v := g.v.Add(delta)
	g.raiseHigh(v)
}

//
//lint:noalloc
func (g *Gauge) raiseHigh(v int64) {
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// High returns the high-water mark (the largest value the gauge has
// held; 0 for a gauge that never rose above zero).
func (g *Gauge) High() int64 { return g.high.Load() }

// Histogram is a fixed-bucket histogram: observations are counted into
// the first bucket whose upper bound is >= the value, with an implicit
// +Inf bucket at the end, plus a running sum and count. Bounds are
// fixed at registration so two histograms with the same bounds merge
// bucket by bucket.
type Histogram struct {
	bounds []float64      // strictly increasing upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// LatencyBuckets is the default bucket layout for second-valued
// latency histograms: 100 µs to 10 s in a 1-2.5-5 progression, wide
// enough for both the simulator's sub-millisecond polls and degraded
// prototype runs waiting out retry backoffs.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("obs: histogram bounds not strictly increasing at %d (%v <= %v)",
				i, bounds[i], bounds[i-1])
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}, nil
}

// Observe records one value.
//
//lint:noalloc
func (h *Histogram) Observe(x float64) {
	// Binary search for the first bound >= x; small bound sets make this
	// a handful of comparisons, no allocation.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] >= x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCount returns the count in bucket i, where i == len(bounds)
// addresses the +Inf bucket.
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i].Load() }

// Merge folds another histogram with identical bounds into this one.
func (h *Histogram) Merge(other *Histogram) error {
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d bounds", len(h.bounds), len(other.bounds))
	}
	for i, b := range h.bounds {
		if b != other.bounds[i] {
			return fmt.Errorf("obs: merging histograms with different bound %d: %v vs %v", i, b, other.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i].Add(other.counts[i].Load())
	}
	h.count.Add(other.count.Load())
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + other.Sum())
		if h.sum.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// metric is one registered metric with its metadata.
type metric struct {
	name   string
	kind   Kind
	timing bool
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Opt tags a metric at registration.
type Opt func(*metric)

// Timing marks a metric whose values depend on wall-clock scheduling
// (latency histograms, anything driven by real timers). Timing metrics
// are excluded from Snapshot.DeterministicDigest, which covers only
// values that are a pure function of a run's seed and spec.
func Timing() Opt { return func(m *metric) { m.timing = true } }

// Registry holds named metrics. Registration is idempotent: asking for
// an existing name returns the existing metric, so every component of a
// run can resolve the shared catalog independently. A name registered
// as two different kinds panics — that is a programming error, not a
// runtime condition.
type Registry struct {
	//lint:guards by
	mu sync.Mutex
	by map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string]*metric)}
}

// lookupLocked resolves an existing metric; caller holds r.mu.
func (r *Registry) lookupLocked(name string, kind Kind) (*metric, bool) {
	m, ok := r.by[name]
	if !ok {
		return nil, false
	}
	if m.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, m.kind, kind))
	}
	return m, true
}

// Counter registers (or returns) the counter with this name.
func (r *Registry) Counter(name string, opts ...Opt) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookupLocked(name, KindCounter); ok {
		return m.c
	}
	m := &metric{name: name, kind: KindCounter, c: &Counter{}}
	for _, o := range opts {
		o(m)
	}
	r.by[name] = m
	return m.c
}

// Gauge registers (or returns) the gauge with this name.
func (r *Registry) Gauge(name string, opts ...Opt) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookupLocked(name, KindGauge); ok {
		return m.g
	}
	m := &metric{name: name, kind: KindGauge, g: &Gauge{}}
	for _, o := range opts {
		o(m)
	}
	r.by[name] = m
	return m.g
}

// Histogram registers (or returns) the histogram with this name. The
// bounds of an existing histogram must match; a mismatch panics, since
// silently merging differently-bucketed histograms would corrupt data.
func (r *Registry) Histogram(name string, bounds []float64, opts ...Opt) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.lookupLocked(name, KindHistogram); ok {
		if len(m.h.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with %d bounds, has %d",
				name, len(bounds), len(m.h.bounds)))
		}
		for i, b := range bounds {
			if m.h.bounds[i] != b {
				panic(fmt.Sprintf("obs: histogram %q re-registered with different bound %d", name, i))
			}
		}
		return m.h
	}
	h, err := newHistogram(bounds)
	if err != nil {
		panic(err.Error())
	}
	m := &metric{name: name, kind: KindHistogram, h: h}
	for _, o := range opts {
		o(m)
	}
	r.by[name] = m
	return m.h
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.by))
	for n := range r.by {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
