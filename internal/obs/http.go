package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry as a JSON snapshot, expvar-style: one
// GET, one frozen document. lbnode and lbmanager mount it at /metrics.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out, err := reg.Snapshot().WriteJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(out)
		w.Write([]byte("\n"))
	})
}

// TraceHandler serves the trace's retained events as JSON, oldest
// first. A nil trace serves an empty list.
func TraceHandler(tr *Trace) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out, err := tr.WriteJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(out)
		w.Write([]byte("\n"))
	})
}

// NewMux builds the observability mux served by lbnode/lbmanager:
// /metrics (JSON snapshot), /trace (retained events), and — only when
// enablePprof is set — the net/http/pprof handlers under /debug/pprof/.
// pprof is opt-in because it exposes goroutine stacks and heap contents;
// an always-on profiling surface is not something a service should grow
// by accident.
func NewMux(reg *Registry, tr *Trace, enablePprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/trace", TraceHandler(tr))
	if enablePprof {
		// Registered explicitly: importing net/http/pprof for its
		// DefaultServeMux side effect would force profiling onto every
		// binary that links this package.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
