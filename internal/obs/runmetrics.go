package obs

// RunMetrics is the shared metric catalog of one load-balancing run.
// Both execution substrates — the discrete-event simulator
// (internal/simcluster) and the prototype (internal/cluster) — resolve
// this exact name set against their run's registry and update it at the
// equivalent protocol points, which is what makes simulator and
// prototype metric snapshots directly comparable (and lets one test
// assert the name sets are identical). The catalog is documented in
// DESIGN.md §7.
//
// Counters tagged Timing, every histogram, and gauge high-water marks
// carry wall-clock-dependent values; everything else is a pure function
// of the run's seed and spec on deterministic substrates (the simulator
// always; the prototype on the in-memory transport under scenarios that
// pin every message's fate).
type RunMetrics struct {
	// Access lifecycle.
	Dispatches  *Counter // service requests sent (including re-dispatch attempts)
	Completions *Counter // accesses completed successfully
	Lost        *Counter // accesses that never produced a response despite retries
	Retries     *Counter // poll re-rounds plus access re-attempts

	// Random-polling protocol.
	PollRequests  *Counter // client → server load inquiries sent
	PollResponses *Counter // answers used by a decision
	PollDiscards  *Counter // inquiries abandoned at the discard deadline
	PollLate      *Counter // discarded inquiries whose answer arrived late (§3.2)
	Quarantines   *Counter // servers quarantined by a client failure detector

	// Server side.
	ServerActive     *Gauge   // queued + in-service accesses across all servers
	WorkersBusy      *Gauge   // busy processing units across all servers
	ServerServed     *Counter // requests completed by servers
	ServerOverloads  *Counter // requests refused at a full queue (prototype only)
	InquiriesServed  *Counter // load inquiries answered by servers
	InquiriesDropped *Counter // inquiries dropped (pause, injection, lossy link)
	SlowAnswers      *Counter // inquiries answered through the contention-model slow path

	// Latency shapes (wall clock on the prototype, simulated seconds on
	// the simulator).
	ResponseSeconds *Histogram // per-access response time
	PollWaitSeconds *Histogram // per-access time spent acquiring load information
	PollRTTSeconds  *Histogram // individual inquiry round trips
}

// Run metric names (the catalog).
const (
	MetricDispatches       = "lb_dispatches_total"
	MetricCompletions      = "lb_completions_total"
	MetricLost             = "lb_lost_total"
	MetricRetries          = "lb_retries_total"
	MetricPollRequests     = "poll_requests_total"
	MetricPollResponses    = "poll_responses_total"
	MetricPollDiscards     = "poll_discards_total"
	MetricPollLate         = "poll_late_total"
	MetricQuarantines      = "quarantines_total"
	MetricServerActive     = "server_active"
	MetricWorkersBusy      = "server_workers_busy"
	MetricServerServed     = "server_served_total"
	MetricServerOverloads  = "server_overloads_total"
	MetricInquiriesServed  = "server_inquiries_total"
	MetricInquiriesDropped = "server_inquiries_dropped_total"
	MetricSlowAnswers      = "server_slow_answers_total"
	MetricResponseSeconds  = "response_seconds"
	MetricPollWaitSeconds  = "poll_wait_seconds"
	MetricPollRTTSeconds   = "poll_rtt_seconds"
)

// Component metric names outside the per-run catalog. Every metric
// name in the repository is declared in this package — finelbvet's
// obscatalog analyzer rejects registration calls whose name is not an
// obs constant — so even one-off component metrics (lbmanager's
// republished protocol counters) are spelled here.
const (
	MetricManagerAcquires    = "manager_acquires"
	MetricManagerReleases    = "manager_releases"
	MetricManagerOutstanding = "manager_outstanding"
)

// Membership metric names: the elastic-membership seam
// (internal/membership) as replayed by either substrate. These are NOT
// part of the per-run RunMetrics catalog: they register only when a run
// actually has an active membership schedule or autoscaler, so
// fixed-pool runs keep their golden metric digests bit-identical.
const (
	MetricMembershipJoins  = "membership_joins_total"
	MetricMembershipDrains = "membership_drains_total"
	MetricMembershipLeaves = "membership_leaves_total"
	MetricMembershipPool   = "membership_pool_size"
	MetricAutoscaleUps     = "autoscaler_scale_ups_total"
	MetricAutoscaleDowns   = "autoscaler_scale_downs_total"
)

// MembershipMetrics instruments one elastic run: pool transitions, the
// routable pool size (whose high-water mark is the run's peak pool),
// and autoscaler actions.
type MembershipMetrics struct {
	Joins      *Counter // servers that joined (or re-joined) the routable pool
	Drains     *Counter // servers withdrawn from routing but still serving
	Leaves     *Counter // drained servers retired from the run
	Pool       *Gauge   // current routable pool size (High() = peak)
	ScaleUps   *Counter // autoscaler grow actions applied
	ScaleDowns *Counter // autoscaler shrink actions applied
}

// NewMembershipMetrics resolves the membership catalog against reg.
// Call it only for runs with elastic membership enabled — registration
// adds names to the registry and therefore to snapshot digests.
func NewMembershipMetrics(reg *Registry) *MembershipMetrics {
	if reg == nil {
		reg = NewRegistry()
	}
	return &MembershipMetrics{
		Joins:      reg.Counter(MetricMembershipJoins),
		Drains:     reg.Counter(MetricMembershipDrains),
		Leaves:     reg.Counter(MetricMembershipLeaves),
		Pool:       reg.Gauge(MetricMembershipPool),
		ScaleUps:   reg.Counter(MetricAutoscaleUps),
		ScaleDowns: reg.Counter(MetricAutoscaleDowns),
	}
}

// Poll hot-path metric names: the client's batched poll round
// machinery (internal/cluster pollRound). These are NOT part of the
// per-run RunMetrics catalog: the client always resolves them against
// a private registry, so run snapshots and golden metric digests are
// untouched; export them by resolving the same names against your own
// registry via NewPollPathMetrics. Documented in DESIGN.md §12.
const (
	MetricPollRounds      = "poll_rounds_total"
	MetricPollBatchSize   = "poll_batch_size"
	MetricPollEncodeReuse = "poll_encode_reuse_total"
)

// PollPathMetrics instruments the batched poll fan-out: rounds run,
// inquiries actually sent per round, and how often a round's pooled
// scratch (encode buffer, slot tables, timer) was reused rather than
// freshly allocated — the observable face of the zero-alloc gate.
type PollPathMetrics struct {
	Rounds      *Counter   // poll rounds executed
	BatchSize   *Histogram // inquiries sent per round (the effective d)
	EncodeReuse *Counter   // rounds served from the scratch pool
}

// PollBatchBuckets is the BatchSize histogram shape: poll sizes are
// small powers of two in every experiment sweep.
func PollBatchBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64}
}

// NewPollPathMetrics resolves the poll hot-path catalog against reg. A
// nil registry gets a fresh private one — the client's default, which
// keeps these names out of run snapshots.
func NewPollPathMetrics(reg *Registry) *PollPathMetrics {
	if reg == nil {
		reg = NewRegistry()
	}
	return &PollPathMetrics{
		Rounds:      reg.Counter(MetricPollRounds),
		BatchSize:   reg.Histogram(MetricPollBatchSize, PollBatchBuckets()),
		EncodeReuse: reg.Counter(MetricPollEncodeReuse),
	}
}

// Gateway metric names: the HTTP front door's request pipeline
// (internal/gateway, served by cmd/lbgw). Admission and stickiness
// counters are pure functions of the request stream and tenant
// configuration; latency histograms and the in-flight high-water mark
// are wall-clock shaped. Documented in DESIGN.md §9.
const (
	MetricGatewayRequests          = "gateway_requests_total"
	MetricGatewayAdmitted          = "gateway_admitted_total"
	MetricGatewayRejectedRate      = "gateway_rejected_rate_total"
	MetricGatewayRejectedAdmission = "gateway_rejected_admission_total"
	MetricGatewayUnknownTenant     = "gateway_unknown_tenant_total"
	MetricGatewayErrors            = "gateway_errors_total"
	MetricGatewayOverloads         = "gateway_overloads_total"
	MetricGatewayStickyHits        = "gateway_sticky_hits_total"
	MetricGatewayStickyViolations  = "gateway_sticky_violations_total"
	MetricGatewayStickyForced      = "gateway_sticky_forced_total"
	MetricGatewayStickyDenied      = "gateway_sticky_denied_total"
	MetricGatewayInflight          = "gateway_inflight"
	MetricGatewayLatencySeconds    = "gateway_latency_seconds"
)

// TenantMetric derives the per-tenant variant of a gateway catalog
// name. The base must be one of the MetricGateway* constants; the
// derived name carries the tenant as a label-style suffix so snapshots
// sort tenant series next to their aggregate. Derived names are
// dynamic by construction, which is exactly the registry-plumbing case
// finelbvet's obscatalog analyzer exempts: the spelled part stays a
// catalog constant.
func TenantMetric(base, tenant string) string {
	return base + `{tenant="` + tenant + `"}`
}

// NewRunMetrics resolves the full catalog against reg (registering
// anything missing). A nil registry gets a fresh private one, so
// callers can instrument unconditionally and export only when asked.
func NewRunMetrics(reg *Registry) *RunMetrics {
	if reg == nil {
		reg = NewRegistry()
	}
	lat := LatencyBuckets()
	return &RunMetrics{
		Dispatches:  reg.Counter(MetricDispatches),
		Completions: reg.Counter(MetricCompletions),
		Lost:        reg.Counter(MetricLost),
		Retries:     reg.Counter(MetricRetries),

		PollRequests:  reg.Counter(MetricPollRequests),
		PollResponses: reg.Counter(MetricPollResponses),
		PollDiscards:  reg.Counter(MetricPollDiscards),
		PollLate:      reg.Counter(MetricPollLate),
		Quarantines:   reg.Counter(MetricQuarantines),

		ServerActive:     reg.Gauge(MetricServerActive),
		WorkersBusy:      reg.Gauge(MetricWorkersBusy),
		ServerServed:     reg.Counter(MetricServerServed),
		ServerOverloads:  reg.Counter(MetricServerOverloads),
		InquiriesServed:  reg.Counter(MetricInquiriesServed),
		InquiriesDropped: reg.Counter(MetricInquiriesDropped),
		SlowAnswers:      reg.Counter(MetricSlowAnswers),

		ResponseSeconds: reg.Histogram(MetricResponseSeconds, lat, Timing()),
		PollWaitSeconds: reg.Histogram(MetricPollWaitSeconds, lat, Timing()),
		PollRTTSeconds:  reg.Histogram(MetricPollRTTSeconds, lat, Timing()),
	}
}
