package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Bucket is one histogram bucket in a snapshot: the count of
// observations at or below the upper bound Le (+Inf encoded as
// omitted Le with Inf true).
type Bucket struct {
	Le  float64 `json:"le,omitempty"`
	Inf bool    `json:"inf,omitempty"`
	N   int64   `json:"n"`
}

// MetricValue is one metric frozen at snapshot time.
type MetricValue struct {
	Name   string `json:"name"`
	Kind   Kind   `json:"kind"`
	Timing bool   `json:"timing,omitempty"`

	// Value carries a counter's count or a gauge's level.
	Value int64 `json:"value"`
	// High is a gauge's high-water mark.
	High int64 `json:"high,omitempty"`

	// Histogram payload.
	Buckets []Bucket `json:"buckets,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Count   int64    `json:"count,omitempty"`
}

// Snapshot is the frozen state of a registry, sorted by metric name.
type Snapshot struct {
	Metrics []MetricValue `json:"metrics"`
}

// Snapshot freezes every registered metric. Concurrent updates during
// the snapshot are individually atomic but not mutually consistent —
// take snapshots after a run has quiesced when exact cross-metric
// invariants matter.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	metrics := make([]*metric, 0, len(r.by))
	for _, m := range r.by {
		metrics = append(metrics, m)
	}
	r.mu.Unlock()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })

	s := &Snapshot{Metrics: make([]MetricValue, 0, len(metrics))}
	for _, m := range metrics {
		mv := MetricValue{Name: m.name, Kind: m.kind, Timing: m.timing}
		switch m.kind {
		case KindCounter:
			mv.Value = m.c.Value()
		case KindGauge:
			mv.Value = m.g.Value()
			mv.High = m.g.High()
		case KindHistogram:
			mv.Sum = m.h.Sum()
			mv.Count = m.h.Count()
			mv.Buckets = make([]Bucket, len(m.h.counts))
			for i := range m.h.counts {
				b := Bucket{N: m.h.counts[i].Load()}
				if i < len(m.h.bounds) {
					b.Le = m.h.bounds[i]
				} else {
					b.Inf = true
				}
				mv.Buckets[i] = b
			}
		}
		s.Metrics = append(s.Metrics, mv)
	}
	return s
}

// Names returns the snapshot's metric names (already sorted).
func (s *Snapshot) Names() []string {
	out := make([]string, len(s.Metrics))
	for i, m := range s.Metrics {
		out[i] = m.Name
	}
	return out
}

// Get returns the metric with this name, if present.
func (s *Snapshot) Get(name string) (MetricValue, bool) {
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= name })
	if i < len(s.Metrics) && s.Metrics[i].Name == name {
		return s.Metrics[i], true
	}
	return MetricValue{}, false
}

// Value returns the counter/gauge value of the named metric (0 when
// absent), a convenience for tests.
func (s *Snapshot) Value(name string) int64 {
	mv, _ := s.Get(name)
	return mv.Value
}

// Digest fingerprints the whole snapshot (every metric, every value):
// two equal digests mean bit-identical metric state.
func (s *Snapshot) Digest() string {
	return s.digest(func(MetricValue) bool { return true }, true)
}

// DeterministicDigest fingerprints only the values that are a pure
// function of a run's seed and spec: counters and gauge end values of
// metrics not tagged Timing. Latency histograms and gauge high-water
// marks are excluded — both depend on wall-clock scheduling even on
// the deterministic in-memory transport.
func (s *Snapshot) DeterministicDigest() string {
	return s.digest(func(mv MetricValue) bool {
		return !mv.Timing && mv.Kind != KindHistogram
	}, false)
}

// digest hashes a canonical rendering of the selected metrics. The
// rendering is explicit (name|kind|value lines) rather than JSON so
// that field-order or encoding changes cannot silently alter digests.
func (s *Snapshot) digest(include func(MetricValue) bool, withHigh bool) string {
	var b strings.Builder
	for _, mv := range s.Metrics {
		if !include(mv) {
			continue
		}
		switch mv.Kind {
		case KindHistogram:
			fmt.Fprintf(&b, "%s|%s|sum=%x|count=%d", mv.Name, mv.Kind, mv.Sum, mv.Count)
			for _, bk := range mv.Buckets {
				fmt.Fprintf(&b, "|%x:%d", bk.Le, bk.N)
			}
			b.WriteByte('\n')
		case KindGauge:
			if withHigh {
				fmt.Fprintf(&b, "%s|%s|%d|high=%d\n", mv.Name, mv.Kind, mv.Value, mv.High)
			} else {
				fmt.Fprintf(&b, "%s|%s|%d\n", mv.Name, mv.Kind, mv.Value)
			}
		default:
			fmt.Fprintf(&b, "%s|%s|%d\n", mv.Name, mv.Kind, mv.Value)
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// WriteJSON emits the snapshot as indented JSON.
func (s *Snapshot) WriteJSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
