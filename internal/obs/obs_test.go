package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("after Inc+Add(41) = %d, want 42", c.Value())
	}
	c.Add(0)
	c.Add(-7)
	if c.Value() != 42 {
		t.Fatalf("non-positive deltas must be ignored, got %d", c.Value())
	}
}

func TestCounterOverflowSaturates(t *testing.T) {
	tests := []struct {
		name  string
		start int64
		delta int64
		want  int64
	}{
		{"no overflow", 10, 5, 15},
		{"exact max", math.MaxInt64 - 3, 3, math.MaxInt64},
		{"one past max", math.MaxInt64 - 3, 4, math.MaxInt64},
		{"huge delta", math.MaxInt64 - 3, math.MaxInt64, math.MaxInt64},
		{"already saturated", math.MaxInt64, 1, math.MaxInt64},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var c Counter
			c.v.Store(tc.start)
			c.Add(tc.delta)
			if got := c.Value(); got != tc.want {
				t.Fatalf("start=%d add=%d: got %d, want %d", tc.start, tc.delta, got, tc.want)
			}
		})
	}
}

func TestCounterMerge(t *testing.T) {
	tests := []struct {
		name string
		a, b int64
		want int64
	}{
		{"plain sum", 7, 35, 42},
		{"zero other", 7, 0, 7},
		{"saturating sum", math.MaxInt64 - 1, 2, math.MaxInt64},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var a, b Counter
			a.v.Store(tc.a)
			b.v.Store(tc.b)
			a.Merge(&b)
			if got := a.Value(); got != tc.want {
				t.Fatalf("merge(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
			}
			if b.Value() != tc.b {
				t.Fatalf("merge mutated the source: %d, want %d", b.Value(), tc.b)
			}
		})
	}
}

func TestCounterConcurrentAdds(t *testing.T) {
	var c Counter
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("concurrent adds lost updates: %d, want %d", got, workers*per)
	}
}

func TestGaugeHighWater(t *testing.T) {
	var g Gauge
	g.Add(3)
	g.Add(4) // 7, the peak
	g.Add(-5)
	g.Set(1)
	if g.Value() != 1 {
		t.Fatalf("value = %d, want 1", g.Value())
	}
	if g.High() != 7 {
		t.Fatalf("high water = %d, want 7", g.High())
	}
}

func TestGaugeNeverPositive(t *testing.T) {
	var g Gauge
	g.Add(-3)
	if g.Value() != -3 {
		t.Fatalf("value = %d, want -3", g.Value())
	}
	if g.High() != 0 {
		t.Fatalf("a gauge that never rose must report high=0, got %d", g.High())
	}
}

func TestGaugeConcurrentHighWater(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	// Each worker spikes to its own level and back down; the high-water
	// mark must capture the global maximum regardless of interleaving.
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(lvl int64) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(lvl)
				g.Add(-lvl)
			}
		}(int64(i))
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("value = %d, want 0 after balanced adds", g.Value())
	}
	if g.High() < 8 {
		t.Fatalf("high water %d lost the largest single spike (>=8)", g.High())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{1, 2.5, 5, 10}
	tests := []struct {
		name   string
		x      float64
		bucket int // index into counts; len(bounds) is +Inf
	}{
		{"below first", 0.5, 0},
		{"exactly first bound", 1, 0},
		{"just above first", 1.0001, 1},
		{"mid bucket", 2, 1},
		{"exactly mid bound", 2.5, 1},
		{"exactly last bound", 10, 3},
		{"just above last", 10.0001, 4},
		{"far above last", 1e9, 4},
		{"zero", 0, 0},
		{"negative", -3, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			h, err := newHistogram(bounds)
			if err != nil {
				t.Fatal(err)
			}
			h.Observe(tc.x)
			for i := 0; i <= len(bounds); i++ {
				want := int64(0)
				if i == tc.bucket {
					want = 1
				}
				if got := h.BucketCount(i); got != want {
					t.Errorf("Observe(%v): bucket[%d] = %d, want %d", tc.x, i, got, want)
				}
			}
			if h.Count() != 1 {
				t.Errorf("count = %d, want 1", h.Count())
			}
			if h.Sum() != tc.x {
				t.Errorf("sum = %v, want %v", h.Sum(), tc.x)
			}
		})
	}
}

func TestHistogramBadBounds(t *testing.T) {
	tests := []struct {
		name   string
		bounds []float64
	}{
		{"empty", nil},
		{"duplicate", []float64{1, 1, 2}},
		{"decreasing", []float64{1, 0.5}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := newHistogram(tc.bounds); err == nil {
				t.Fatalf("bounds %v accepted, want error", tc.bounds)
			}
		})
	}
}

func TestHistogramMerge(t *testing.T) {
	bounds := []float64{1, 10}
	a, _ := newHistogram(bounds)
	b, _ := newHistogram(bounds)
	a.Observe(0.5)
	b.Observe(5)
	b.Observe(50)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := []int64{a.BucketCount(0), a.BucketCount(1), a.BucketCount(2)}; got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("merged buckets = %v, want [1 1 1]", got)
	}
	if a.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", a.Count())
	}
	if a.Sum() != 55.5 {
		t.Fatalf("merged sum = %v, want 55.5", a.Sum())
	}

	// Mismatched bounds must refuse to merge in either direction.
	c, _ := newHistogram([]float64{1, 2, 10})
	if err := a.Merge(c); err == nil {
		t.Fatal("merge with different bound count accepted")
	}
	d, _ := newHistogram([]float64{1, 9})
	if err := a.Merge(d); err == nil {
		t.Fatal("merge with different bound values accepted")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h, _ := newHistogram(LatencyBuckets())
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	want := 0.001 * workers * per
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
}

func TestLatencyBucketsStrictlyIncreasing(t *testing.T) {
	b := LatencyBuckets()
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("LatencyBuckets not strictly increasing at %d: %v", i, b)
		}
	}
}

func TestRegistryIdempotentAndSorted(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("b_total")
	c2 := r.Counter("b_total")
	if c1 != c2 {
		t.Fatal("re-registering a counter returned a different instance")
	}
	r.Gauge("a_level")
	h1 := r.Histogram("c_seconds", []float64{1, 2})
	h2 := r.Histogram("c_seconds", []float64{1, 2})
	if h1 != h2 {
		t.Fatal("re-registering a histogram returned a different instance")
	}
	names := r.Names()
	want := []string{"a_level", "b_total", "c_seconds"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	assertPanics(t, "gauge over counter", func() { r.Gauge("x") })
	assertPanics(t, "histogram over counter", func() { r.Histogram("x", []float64{1}) })
	r.Histogram("h", []float64{1, 2})
	assertPanics(t, "histogram bound count change", func() { r.Histogram("h", []float64{1}) })
	assertPanics(t, "histogram bound value change", func() { r.Histogram("h", []float64{1, 3}) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	f()
}
