package obs

import (
	"encoding/json"
	"testing"
)

// populate builds a registry exercising all three kinds plus the
// Timing tag, with values fixed by the arguments so tests can vary
// deterministic and timing-dependent parts independently.
func populate(counter, gaugeHigh int64, obsVal float64) *Registry {
	r := NewRegistry()
	r.Counter("polls_total").Add(counter)
	g := r.Gauge("queue_depth")
	g.Set(gaugeHigh) // peak
	g.Set(2)         // settle
	r.Histogram("rtt_seconds", []float64{0.001, 0.01}, Timing()).Observe(obsVal)
	r.Counter("wall_ticks_total", Timing()).Add(counter * 3)
	return r
}

func TestSnapshotShape(t *testing.T) {
	s := populate(5, 9, 0.002).Snapshot()
	names := s.Names()
	want := []string{"polls_total", "queue_depth", "rtt_seconds", "wall_ticks_total"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}

	if got := s.Value("polls_total"); got != 5 {
		t.Fatalf("polls_total = %d, want 5", got)
	}
	g, ok := s.Get("queue_depth")
	if !ok || g.Value != 2 || g.High != 9 {
		t.Fatalf("queue_depth = %+v, want value 2 high 9", g)
	}
	h, ok := s.Get("rtt_seconds")
	if !ok || !h.Timing || h.Count != 1 {
		t.Fatalf("rtt_seconds = %+v, want timing histogram with count 1", h)
	}
	if len(h.Buckets) != 3 || !h.Buckets[2].Inf {
		t.Fatalf("rtt_seconds buckets = %+v, want 2 bounded + 1 inf", h.Buckets)
	}
	if h.Buckets[1].N != 1 {
		t.Fatalf("0.002 should land in the le=0.01 bucket, got %+v", h.Buckets)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get on absent name reported present")
	}
}

func TestDigestsDistinguishRuns(t *testing.T) {
	base := populate(5, 9, 0.002).Snapshot()
	same := populate(5, 9, 0.002).Snapshot()
	if base.Digest() != same.Digest() {
		t.Fatal("identical registries produced different full digests")
	}
	if base.DeterministicDigest() != same.DeterministicDigest() {
		t.Fatal("identical registries produced different deterministic digests")
	}

	diffCounter := populate(6, 9, 0.002).Snapshot()
	if base.DeterministicDigest() == diffCounter.DeterministicDigest() {
		t.Fatal("counter change not reflected in deterministic digest")
	}

	// Timing-dependent variation (histogram sample, gauge peak, Timing
	// counter) must change the full digest but not the deterministic one.
	diffTiming := populate(5, 9, 0.005).Snapshot()
	if base.Digest() == diffTiming.Digest() {
		t.Fatal("histogram change not reflected in full digest")
	}
	if base.DeterministicDigest() != diffTiming.DeterministicDigest() {
		t.Fatal("deterministic digest leaked a histogram value")
	}

	diffPeak := populate(5, 11, 0.002).Snapshot()
	if base.Digest() == diffPeak.Digest() {
		t.Fatal("gauge high-water change not reflected in full digest")
	}
	if base.DeterministicDigest() != diffPeak.DeterministicDigest() {
		t.Fatal("deterministic digest leaked a gauge high-water mark")
	}
}

func TestTimingCounterExcludedFromDeterministicDigest(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("steady_total").Add(4)
	b.Counter("steady_total").Add(4)
	a.Counter("jitter_total", Timing()).Add(1)
	b.Counter("jitter_total", Timing()).Add(99)
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.DeterministicDigest() != sb.DeterministicDigest() {
		t.Fatal("Timing counter leaked into deterministic digest")
	}
	if sa.Digest() == sb.Digest() {
		t.Fatal("Timing counter ignored by full digest")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	out, err := populate(5, 9, 0.002).Snapshot().WriteJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if len(back.Metrics) != 4 {
		t.Fatalf("round-tripped %d metrics, want 4", len(back.Metrics))
	}
	if back.Value("polls_total") != 5 {
		t.Fatalf("polls_total lost in round trip: %d", back.Value("polls_total"))
	}
}

func TestRunMetricsCatalog(t *testing.T) {
	r := NewRegistry()
	rm := NewRunMetrics(r)
	if rm == nil || rm.Dispatches == nil || rm.PollRTTSeconds == nil {
		t.Fatal("catalog left fields unresolved")
	}
	// Resolving the catalog twice against one registry must alias, not
	// duplicate — that is what lets every component instrument freely.
	rm2 := NewRunMetrics(r)
	rm.PollRequests.Add(3)
	if rm2.PollRequests.Value() != 3 {
		t.Fatal("second catalog resolution did not alias the first")
	}
	want := []string{
		MetricDispatches, MetricCompletions, MetricLost, MetricRetries,
		MetricPollRequests, MetricPollResponses, MetricPollDiscards,
		MetricPollLate, MetricQuarantines, MetricServerActive,
		MetricWorkersBusy, MetricServerServed, MetricServerOverloads,
		MetricInquiriesServed, MetricInquiriesDropped, MetricSlowAnswers,
		MetricResponseSeconds, MetricPollWaitSeconds, MetricPollRTTSeconds,
	}
	names := r.Names()
	if len(names) != len(want) {
		t.Fatalf("catalog registered %d names, want %d: %v", len(names), len(want), names)
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for _, n := range want {
		if !seen[n] {
			t.Fatalf("catalog missing %q", n)
		}
	}

	// Nil registry: private registry, still fully usable.
	priv := NewRunMetrics(nil)
	priv.Completions.Inc()
	if priv.Completions.Value() != 1 {
		t.Fatal("catalog on nil registry unusable")
	}
}
