package obs

import (
	"encoding/json"
	"sync"
)

// Event is one structured trace record. Events describe protocol-level
// decisions (a poll sent, an answer discarded, a server quarantined) so
// a failing run can be replayed from its trace rather than from log
// text. Fields are fixed-width on purpose: emitting an event allocates
// nothing beyond the ring slot it overwrites.
//
// The schema (documented in DESIGN.md §7) is:
//
//	Seq   monotonically increasing sequence number, first event = 1
//	T     substrate timestamp in seconds (simulated time on the
//	      simulator, wall-clock offset from run start on the prototype)
//	Name  event name, e.g. "poll.discard" or "client.quarantine"
//	Actor who emitted it ("client:2", "server:0", "sim")
//	A, B  two event-specific integer arguments (target server, queue
//	      length, round number — per-event meaning listed in DESIGN.md)
type Event struct {
	Seq   uint64  `json:"seq"`
	T     float64 `json:"t"`
	Name  string  `json:"name"`
	Actor string  `json:"actor"`
	A     int64   `json:"a,omitempty"`
	B     int64   `json:"b,omitempty"`
}

// Trace is a fixed-capacity ring buffer of events. When full, new
// events overwrite the oldest — a trace bounds memory by construction,
// unlike a log. All methods are safe for concurrent use, and every
// method is nil-safe so instrumented code can call Emit unconditionally
// whether or not the run asked for a trace.
//
// On the simulator and the in-memory transport under fully-pinned fault
// scenarios, event sequences are a deterministic function of the run's
// seed and spec, which lets tests assert on exact traces.
type Trace struct {
	mu   sync.Mutex
	buf  []Event
	seq  uint64 // total events ever emitted
	next int    // ring write position
}

// NewTrace returns a trace holding up to capacity events (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, 0, capacity)}
}

// Emit records one event. Nil-safe: a nil trace drops it for free.
func (t *Trace) Emit(ts float64, name, actor string, a, b int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	e := Event{Seq: t.seq, T: ts, Name: name, Actor: actor, A: a, B: b}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		// Full ring: the oldest retained event sits at the write position.
		out = append(out, t.buf[t.next:]...)
	}
	out = append(out, t.buf[:t.next]...)
	return out
}

// Len returns how many events are retained.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Total returns how many events were ever emitted (retained + dropped).
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Dropped returns how many events were overwritten by ring wrap.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq - uint64(len(t.buf))
}

// WriteJSON emits the retained events as indented JSON, oldest first.
// Always a JSON array: a nil trace serves an empty list, not null.
func (t *Trace) WriteJSON() ([]byte, error) {
	evs := t.Events()
	if evs == nil {
		evs = []Event{}
	}
	return json.MarshalIndent(evs, "", "  ")
}
