package workload

import (
	"math"
	"testing"
	"testing/quick"

	"finelb/internal/stats"
)

func TestPaperWorkloadMoments(t *testing.T) {
	cases := []struct {
		w                    Workload
		svcMean, svcStd      float64
		arrStdOverMeanRounds float64
	}{
		{MediumGrain(), MediumGrainServiceMean, MediumGrainServiceStd, TraceArrivalCV},
		{FineGrain(), FineGrainServiceMean, FineGrainServiceStd, TraceArrivalCV},
	}
	for _, c := range cases {
		if m := c.w.Service.Mean(); math.Abs(m-c.svcMean)/c.svcMean > 1e-9 {
			t.Errorf("%s service mean %v, want %v", c.w.Name, m, c.svcMean)
		}
		if s := c.w.Service.Std(); math.Abs(s-c.svcStd)/c.svcStd > 1e-9 {
			t.Errorf("%s service std %v, want %v", c.w.Name, s, c.svcStd)
		}
		if cv := stats.CV(c.w.Arrival); math.Abs(cv-c.arrStdOverMeanRounds) > 1e-9 {
			t.Errorf("%s arrival CV %v, want %v", c.w.Name, cv, c.arrStdOverMeanRounds)
		}
	}
	pe := PoissonExp(PoissonExpServiceMean)
	if pe.Service.Mean() != PoissonExpServiceMean {
		t.Errorf("Poisson/Exp service mean %v", pe.Service.Mean())
	}
	if cv := stats.CV(pe.Service); cv != 1 {
		t.Errorf("Poisson/Exp service CV %v, want 1", cv)
	}
}

func TestPaperOrder(t *testing.T) {
	ws := Paper()
	if len(ws) != 3 {
		t.Fatalf("Paper() returned %d workloads", len(ws))
	}
	want := []string{"Medium-Grain trace", "Poisson/Exp", "Fine-Grain trace"}
	for i, w := range ws {
		if w.Name != want[i] {
			t.Errorf("workload %d = %q, want %q", i, w.Name, want[i])
		}
	}
}

func TestScaledTo(t *testing.T) {
	for _, w := range Paper() {
		for _, rho := range []float64{0.5, 0.7, 0.9} {
			for _, n := range []int{1, 16} {
				sw := w.ScaledTo(n, rho)
				got := sw.Utilization(n)
				if math.Abs(got-rho)/rho > 1e-9 {
					t.Errorf("%s n=%d rho=%v: utilization %v", w.Name, n, rho, got)
				}
				// Scaling must preserve the arrival CV.
				if a, b := stats.CV(w.Arrival), stats.CV(sw.Arrival); math.Abs(a-b) > 1e-9 {
					t.Errorf("%s: scaling changed CV %v -> %v", w.Name, a, b)
				}
				// Service distribution untouched.
				if sw.Service.Mean() != w.Service.Mean() {
					t.Errorf("%s: scaling changed service dist", w.Name)
				}
			}
		}
	}
}

func TestScaledToPanics(t *testing.T) {
	w := PoissonExp(0.05)
	for i, fn := range []func(){
		func() { w.ScaledTo(0, 0.5) },
		func() { w.ScaledTo(16, 0) },
		func() { w.ScaledTo(16, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestStreamDeterminism(t *testing.T) {
	w := FineGrain().ScaledTo(16, 0.9)
	a := w.Stream(42)
	b := w.Stream(42)
	for i := 0; i < 100; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("streams diverged at %d: %v vs %v", i, x, y)
		}
	}
	c := w.Stream(43)
	diff := false
	for i := 0; i < 10; i++ {
		if a.Next() != c.Next() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestStreamMonotoneArrivals(t *testing.T) {
	w := MediumGrain()
	s := w.Stream(7)
	prev := -1.0
	for i := 0; i < 1000; i++ {
		a := s.Next()
		if a.Arrival <= prev {
			t.Fatalf("arrival %v not after %v", a.Arrival, prev)
		}
		if a.Service <= 0 {
			t.Fatalf("non-positive service %v", a.Service)
		}
		prev = a.Arrival
	}
}

func TestGenerateMatchesTable1(t *testing.T) {
	// The generated traces must reproduce the Table 1 moments within
	// sampling error — this is experiment T1's acceptance criterion.
	const n = 200000
	check := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want)/want > tol {
			t.Errorf("%s = %v, want %v (+-%v%%)", name, got, want, tol*100)
		}
	}
	mg := MediumGrain().Generate(n, 1)
	st := mg.Stats()
	check("medium service mean", st.ServiceMean, MediumGrainServiceMean, 0.05)
	check("medium service std", st.ServiceStd, MediumGrainServiceStd, 0.10)
	check("medium arrival std", st.ArrivalStd, MediumGrainArrivalStd, 0.10)

	fg := FineGrain().Generate(n, 2)
	st = fg.Stats()
	check("fine service mean", st.ServiceMean, FineGrainServiceMean, 0.05)
	check("fine service std", st.ServiceStd, FineGrainServiceStd, 0.10)
	check("fine arrival std", st.ArrivalStd, FineGrainArrivalStd, 0.10)
}

func TestUtilizationFormula(t *testing.T) {
	w := Workload{
		Name:    "det",
		Arrival: stats.Deterministic{Value: 0.01},
		Service: stats.Deterministic{Value: 0.08},
	}
	// Aggregate rate 100/s, service 0.08s, 16 servers -> rho = 0.5.
	if got := w.Utilization(16); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("utilization = %v", got)
	}
}

// Property: ScaledTo hits any requested utilization for any workload.
func TestQuickScaledToUtilization(t *testing.T) {
	f := func(rhoRaw, nRaw uint8) bool {
		rho := (float64(rhoRaw%98) + 1) / 100 // [0.01, 0.98]
		n := int(nRaw%32) + 1
		w := FineGrain().ScaledTo(n, rho)
		return math.Abs(w.Utilization(n)-rho)/rho < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWithBurstyArrivals(t *testing.T) {
	base := PoissonExp(0.05).ScaledTo(16, 0.9)
	for _, burst := range []float64{1, 4, 10} {
		b := base.WithBurstyArrivals(burst, 50)
		if math.Abs(b.Arrival.Mean()-base.Arrival.Mean())/base.Arrival.Mean() > 1e-9 {
			t.Errorf("burst %v changed the mean interval", burst)
		}
		if math.Abs(b.Utilization(16)-0.9) > 1e-9 {
			t.Errorf("burst %v changed utilization to %v", burst, b.Utilization(16))
		}
		// Streams still produce monotone arrivals.
		s := b.Stream(3)
		prev := -1.0
		for i := 0; i < 200; i++ {
			a := s.Next()
			if a.Arrival <= prev {
				t.Fatalf("non-monotone arrivals under burst %v", burst)
			}
			prev = a.Arrival
		}
	}
}
