package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"finelb/internal/stats"
)

// Trace is a sequence of accesses in non-decreasing arrival order. It
// plays the role of the paper's recorded service traces.
type Trace []Access

// Stats are the Table 1 statistics of a trace: access count and the
// moments of the arrival-interval and service-time marginals (seconds).
type Stats struct {
	Count       int
	ArrivalMean float64
	ArrivalStd  float64
	ServiceMean float64
	ServiceStd  float64
}

// Stats computes Table 1 statistics for the trace.
func (t Trace) Stats() Stats {
	arr := stats.NewSummary(false)
	svc := stats.NewSummary(false)
	prev := 0.0
	for i, a := range t {
		if i > 0 {
			arr.Add(a.Arrival - prev)
		}
		prev = a.Arrival
		svc.Add(a.Service)
	}
	return Stats{
		Count:       len(t),
		ArrivalMean: arr.Mean(),
		ArrivalStd:  arr.Std(),
		ServiceMean: svc.Mean(),
		ServiceStd:  svc.Std(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("n=%d arrival(mean=%.4gms std=%.4gms) service(mean=%.4gms std=%.4gms)",
		s.Count, s.ArrivalMean*1e3, s.ArrivalStd*1e3, s.ServiceMean*1e3, s.ServiceStd*1e3)
}

// Sorted reports whether arrivals are non-decreasing.
func (t Trace) Sorted() bool {
	return sort.SliceIsSorted(t, func(i, j int) bool { return t[i].Arrival < t[j].Arrival })
}

// ScaleArrivals returns a copy of t with every inter-arrival interval
// multiplied by factor (the first access keeps its scaled offset). This
// is the trace-replay form of Workload.ScaledTo.
func (t Trace) ScaleArrivals(factor float64) Trace {
	out := make(Trace, len(t))
	prev, prevScaled := 0.0, 0.0
	for i, a := range t {
		interval := a.Arrival - prev
		prev = a.Arrival
		prevScaled += interval * factor
		out[i] = Access{Arrival: prevScaled, Service: a.Service}
	}
	return out
}

// Slice returns the portion of the trace with arrivals in [from, to),
// re-based so the first retained access arrives at its offset from
// `from`. It models the paper's use of a peak-time portion of each
// trace.
func (t Trace) Slice(from, to float64) Trace {
	var out Trace
	for _, a := range t {
		if a.Arrival >= from && a.Arrival < to {
			out = append(out, Access{Arrival: a.Arrival - from, Service: a.Service})
		}
	}
	return out
}

// traceHeader is the first line of the on-disk format.
const traceHeader = "# finelb trace v1: arrival_us service_us"

// Write serializes the trace in a line-oriented text format:
// one "arrival_us service_us" pair per line, microsecond integers.
func (t Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, traceHeader); err != nil {
		return err
	}
	for _, a := range t {
		if _, err := fmt.Fprintf(bw, "%d %d\n",
			int64(a.Arrival*1e6+0.5), int64(a.Service*1e6+0.5)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by Write. Blank lines and lines
// beginning with '#' after the header are ignored.
func ReadTrace(r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("workload: empty trace file")
	}
	if got := strings.TrimSpace(sc.Text()); got != traceHeader {
		return nil, fmt.Errorf("workload: bad trace header %q", got)
	}
	var t Trace
	line := 1
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) != 2 {
			return nil, fmt.Errorf("workload: line %d: want 2 fields, got %d", line, len(fields))
		}
		arr, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %v", line, err)
		}
		svc, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %v", line, err)
		}
		if arr < 0 || svc < 0 {
			return nil, fmt.Errorf("workload: line %d: negative value", line)
		}
		t = append(t, Access{Arrival: float64(arr) / 1e6, Service: float64(svc) / 1e6})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !t.Sorted() {
		return nil, fmt.Errorf("workload: trace arrivals not sorted")
	}
	return t, nil
}

// Replay adapts a trace to the Stream interface: successive Next calls
// return the trace's accesses; it panics when exhausted. Use Len to
// bound consumption.
type Replay struct {
	t   Trace
	pos int
}

// Replay returns a stream over the trace.
func (t Trace) Replay() *Replay { return &Replay{t: t} }

// Next returns the next access in the trace.
func (r *Replay) Next() Access {
	a := r.t[r.pos]
	r.pos++
	return a
}

// Remaining returns how many accesses are left.
func (r *Replay) Remaining() int { return len(r.t) - r.pos }
