// Package workload defines the three evaluation workloads of the paper
// (§1.1): the synthetic Poisson/Exp workload and synthetic equivalents
// of the two proprietary Teoma search-engine traces ("Medium-Grain" and
// "Fine-Grain"), plus trace generation, trace file IO, and the demand
// (load-level) rescaling the paper applies to its traces.
//
// The real traces are not publicly available, so the trace workloads
// here are generated from lognormal marginals matched to the published
// Table 1 moments; see DESIGN.md §4 for the substitution argument.
package workload

import (
	"fmt"

	"finelb/internal/stats"
)

// Published Table 1 statistics (seconds). Values marked "restored" were
// damaged by OCR in the available text and are reconstructed in
// DESIGN.md §4.
const (
	// MediumGrainServiceMean is the Medium-Grain trace mean service time.
	MediumGrainServiceMean = 28.9e-3
	// MediumGrainServiceStd is the Medium-Grain service-time std-dev.
	MediumGrainServiceStd = 62.9e-3
	// MediumGrainArrivalStd is the Medium-Grain arrival-interval std-dev.
	MediumGrainArrivalStd = 321.1e-3

	// FineGrainServiceMean is the Fine-Grain trace mean service time (restored).
	FineGrainServiceMean = 2.22e-3
	// FineGrainServiceStd is the Fine-Grain service-time std-dev (restored).
	FineGrainServiceStd = 1.0e-3
	// FineGrainArrivalStd is the Fine-Grain arrival-interval std-dev.
	FineGrainArrivalStd = 349.4e-3

	// TraceArrivalCV is the assumed coefficient of variation of the
	// native trace arrival processes (the arrival-interval means did not
	// survive OCR; peak-hour traffic is moderately bursty).
	TraceArrivalCV = 2.0

	// PoissonExpServiceMean is the mean service time the paper uses for
	// the Poisson/Exp workload in the 16-server experiments (restored).
	PoissonExpServiceMean = 50e-3
)

// Access is one service access: its arrival offset from the start of
// the run and its service demand, both in seconds.
type Access struct {
	Arrival float64
	Service float64
}

// Workload is a stochastic workload: an inter-arrival distribution and
// a service-time distribution. The aggregate arrival process is the
// cluster-wide one; experiments split it across client nodes.
type Workload struct {
	Name    string
	Arrival stats.Dist
	Service stats.Dist
}

// PoissonExp returns the paper's synthetic workload: Poisson arrivals
// and exponentially distributed service times with the given mean.
// The arrival rate is a placeholder (mean interval = mean service);
// call ScaledTo before use.
func PoissonExp(meanService float64) Workload {
	return Workload{
		Name:    "Poisson/Exp",
		Arrival: stats.Exponential{MeanValue: meanService},
		Service: stats.Exponential{MeanValue: meanService},
	}
}

// MediumGrain returns the synthetic equivalent of the paper's
// Medium-Grain Teoma trace (word/description translation service,
// mean service 28.9 ms).
func MediumGrain() Workload {
	arrMean := MediumGrainArrivalStd / TraceArrivalCV
	return Workload{
		Name:    "Medium-Grain trace",
		Arrival: stats.LognormalFromMoments(arrMean, MediumGrainArrivalStd),
		Service: stats.LognormalFromMoments(MediumGrainServiceMean, MediumGrainServiceStd),
	}
}

// FineGrain returns the synthetic equivalent of the paper's Fine-Grain
// Teoma trace (query-word translation service, mean service 2.22 ms).
func FineGrain() Workload {
	arrMean := FineGrainArrivalStd / TraceArrivalCV
	return Workload{
		Name:    "Fine-Grain trace",
		Arrival: stats.LognormalFromMoments(arrMean, FineGrainArrivalStd),
		Service: stats.LognormalFromMoments(FineGrainServiceMean, FineGrainServiceStd),
	}
}

// Paper returns the three workloads of the paper's evaluation, in the
// order its figures present them.
func Paper() []Workload {
	return []Workload{MediumGrain(), PoissonExp(PoissonExpServiceMean), FineGrain()}
}

// ScaledTo returns a copy of w whose aggregate arrival rate produces
// per-server utilization rho on a cluster of nServers, preserving the
// arrival process's coefficient of variation. This mirrors the paper:
// "the arrival intervals of those two traces may be scaled when
// necessary to generate workloads at various demand levels".
func (w Workload) ScaledTo(nServers int, rho float64) Workload {
	if nServers <= 0 {
		panic("workload: ScaledTo with nServers <= 0")
	}
	if rho <= 0 || rho >= 1 {
		panic(fmt.Sprintf("workload: ScaledTo with rho %v out of (0,1)", rho))
	}
	// Target aggregate arrival rate: nServers * rho / E[S].
	wantMeanInterval := w.Service.Mean() / (float64(nServers) * rho)
	factor := wantMeanInterval / w.Arrival.Mean()
	out := w
	out.Arrival = stats.Scaled{D: w.Arrival, Factor: factor}
	return out
}

// Utilization returns the per-server utilization w induces on a cluster
// of nServers under perfect balancing: E[S] / (n * E[A]).
func (w Workload) Utilization(nServers int) float64 {
	return w.Service.Mean() / (float64(nServers) * w.Arrival.Mean())
}

func (w Workload) String() string {
	return fmt.Sprintf("%s{arrival=%v, service=%v}", w.Name, w.Arrival, w.Service)
}

// Stream produces the workload's accesses one at a time, in arrival
// order, deterministically from the seed.
type Stream struct {
	w    Workload
	rng  *stats.RNG
	next float64
}

// Stream returns a fresh access stream for w. Stateful distributions
// (bursty arrival processes) are forked so concurrent or repeated
// streams from the same Workload stay independent.
func (w Workload) Stream(seed uint64) *Stream {
	forked := w
	forked.Arrival = stats.ForkDist(w.Arrival)
	forked.Service = stats.ForkDist(w.Service)
	return &Stream{w: forked, rng: stats.NewRNG(seed)}
}

// Next returns the next access. The first access arrives after one
// inter-arrival interval, not at time zero.
func (s *Stream) Next() Access {
	s.next += s.w.Arrival.Sample(s.rng)
	return Access{Arrival: s.next, Service: s.w.Service.Sample(s.rng)}
}

// Generate materializes a trace of n accesses from w.
func (w Workload) Generate(n int, seed uint64) Trace {
	st := w.Stream(seed)
	tr := make(Trace, n)
	for i := range tr {
		tr[i] = st.Next()
	}
	return tr
}

// WithDiurnalArrivals replaces the workload's arrival process with a
// time-inhomogeneous Poisson one that has the same long-run mean
// inter-arrival time but a sinusoidal day/night rate swing of depth amp
// over one period: the run starts at the trough, peaks at period/2 at
// (1+amp)x the average rate, and subsides. This is the open-loop trace
// the elastic experiments drive the autoscaler with. Apply it after
// ScaledTo so the average rate matches the demand target.
func (w Workload) WithDiurnalArrivals(amp, period float64) Workload {
	out := w
	out.Name = fmt.Sprintf("%s (diurnal amp %g)", w.Name, amp)
	out.Arrival = stats.NewDiurnal(w.Arrival.Mean(), amp, period)
	return out
}

// WithBurstyArrivals replaces the workload's arrival process with a
// Markov-modulated (two-phase) one that has the same mean inter-arrival
// time but correlated bursts of intensity `burst` (busy spells of
// `meanRun` arrivals at burst-times the average rate alternating with
// calm spells). burst = 1 leaves the rate constant. Used by the A5
// burstiness ablation: real traces are bursty beyond their marginal CV.
func (w Workload) WithBurstyArrivals(burst, meanRun float64) Workload {
	out := w
	out.Name = fmt.Sprintf("%s (burst x%g)", w.Name, burst)
	out.Arrival = stats.PhasedBurstyExp(w.Arrival.Mean(), burst, meanRun)
	return out
}
