package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceStats(t *testing.T) {
	tr := Trace{
		{Arrival: 1, Service: 0.5},
		{Arrival: 2, Service: 1.5},
		{Arrival: 4, Service: 1.0},
	}
	st := tr.Stats()
	if st.Count != 3 {
		t.Fatalf("count = %d", st.Count)
	}
	if math.Abs(st.ArrivalMean-1.5) > 1e-12 { // intervals 1, 2
		t.Fatalf("arrival mean = %v", st.ArrivalMean)
	}
	if math.Abs(st.ServiceMean-1.0) > 1e-12 {
		t.Fatalf("service mean = %v", st.ServiceMean)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	orig := FineGrain().Generate(500, 9)
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("length %d, want %d", len(got), len(orig))
	}
	for i := range got {
		// Round-trips through integer microseconds.
		if math.Abs(got[i].Arrival-orig[i].Arrival) > 1e-6 {
			t.Fatalf("arrival %d: %v vs %v", i, got[i].Arrival, orig[i].Arrival)
		}
		if math.Abs(got[i].Service-orig[i].Service) > 1e-6 {
			t.Fatalf("service %d: %v vs %v", i, got[i].Service, orig[i].Service)
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"badHeader", "nonsense\n1 2\n"},
		{"fieldCount", traceHeader + "\n1 2 3\n"},
		{"nonInteger", traceHeader + "\n1 x\n"},
		{"negative", traceHeader + "\n-5 2\n"},
		{"unsorted", traceHeader + "\n10 1\n5 1\n"},
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestReadTraceSkipsCommentsAndBlanks(t *testing.T) {
	in := traceHeader + "\n\n# comment\n100 50\n200 60\n"
	tr, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 {
		t.Fatalf("parsed %d accesses", len(tr))
	}
	if tr[1].Arrival != 200e-6 || tr[1].Service != 60e-6 {
		t.Fatalf("parsed %+v", tr[1])
	}
}

func TestScaleArrivals(t *testing.T) {
	tr := Trace{{Arrival: 1, Service: 9}, {Arrival: 3, Service: 8}, {Arrival: 6, Service: 7}}
	got := tr.ScaleArrivals(0.5)
	want := []float64{0.5, 1.5, 3.0}
	for i := range got {
		if math.Abs(got[i].Arrival-want[i]) > 1e-12 {
			t.Fatalf("arrival %d = %v, want %v", i, got[i].Arrival, want[i])
		}
		if got[i].Service != tr[i].Service {
			t.Fatalf("service %d changed", i)
		}
	}
	// Original untouched.
	if tr[0].Arrival != 1 {
		t.Fatal("ScaleArrivals mutated input")
	}
}

func TestSlice(t *testing.T) {
	tr := Trace{{Arrival: 1}, {Arrival: 2}, {Arrival: 3}, {Arrival: 4}}
	got := tr.Slice(2, 4)
	if len(got) != 2 {
		t.Fatalf("slice length %d", len(got))
	}
	if got[0].Arrival != 0 || got[1].Arrival != 1 {
		t.Fatalf("slice not re-based: %+v", got)
	}
}

func TestReplay(t *testing.T) {
	tr := Trace{{Arrival: 1, Service: 2}, {Arrival: 3, Service: 4}}
	r := tr.Replay()
	if r.Remaining() != 2 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
	if a := r.Next(); a != tr[0] {
		t.Fatalf("first = %+v", a)
	}
	if a := r.Next(); a != tr[1] {
		t.Fatalf("second = %+v", a)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestSorted(t *testing.T) {
	if !(Trace{{Arrival: 1}, {Arrival: 2}}).Sorted() {
		t.Fatal("sorted trace reported unsorted")
	}
	if (Trace{{Arrival: 2}, {Arrival: 1}}).Sorted() {
		t.Fatal("unsorted trace reported sorted")
	}
}

// Property: Write/ReadTrace round-trips arbitrary non-negative traces to
// microsecond precision.
func TestQuickTraceRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		var tr Trace
		arr := 0.0
		for _, v := range raw {
			arr += float64(v%1000000) / 1e6
			tr = append(tr, Access{Arrival: arr, Service: float64(v%5000) / 1e6})
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(tr) {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Arrival-tr[i].Arrival) > 1e-6 ||
				math.Abs(got[i].Service-tr[i].Service) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling arrivals by f then 1/f returns the original trace
// (up to float tolerance) and never reorders accesses.
func TestQuickScaleInverse(t *testing.T) {
	f := func(seed uint64, fRaw uint8) bool {
		factor := (float64(fRaw%40) + 1) / 10 // [0.1, 4.0]
		tr := PoissonExp(0.01).Generate(50, seed)
		back := tr.ScaleArrivals(factor).ScaleArrivals(1 / factor)
		if !back.Sorted() {
			return false
		}
		for i := range tr {
			if math.Abs(back[i].Arrival-tr[i].Arrival) > 1e-9*(1+tr[i].Arrival) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
