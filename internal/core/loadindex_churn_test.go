package core

import (
	"testing"
	"testing/quick"
)

// TestLoadIndexExtend covers the elastic-membership growth path: new
// ids join detached, become routable only on Restore, and behave like
// original members afterwards.
func TestLoadIndexExtend(t *testing.T) {
	x := NewLoadIndexCap(2, 8)
	x.Add(0, 1)
	x.Add(1, 2)
	x.Extend(4)
	if x.N() != 4 {
		t.Fatalf("N = %d, want 4", x.N())
	}
	if x.Len() != 2 {
		t.Fatalf("Len = %d after Extend, want 2 (new ids join detached)", x.Len())
	}
	if x.Min() != 0 {
		t.Fatalf("Min = %d after Extend, want 0 (unchanged)", x.Min())
	}
	if x.Load(3) != 0 {
		t.Fatalf("Load(3) = %d, want 0", x.Load(3))
	}
	// Attaching the fresh id makes it the least-loaded member.
	x.Restore(2)
	if x.Min() != 2 || x.MinLoad() != 0 {
		t.Fatalf("after Restore(2): Min=%d MinLoad=%d, want 2,0", x.Min(), x.MinLoad())
	}
	x.Add(2, 5)
	x.Restore(3)
	if x.Min() != 3 {
		t.Fatalf("Min = %d, want 3", x.Min())
	}
	// Shrinking or same-size Extend is a no-op.
	x.Extend(3)
	x.Extend(4)
	if x.N() != 4 || x.Len() != 4 {
		t.Fatalf("no-op Extend changed shape: N=%d Len=%d", x.N(), x.Len())
	}
}

// TestLoadIndexExtendPastCapacity: growth beyond the reserved capacity
// still works (it just allocates).
func TestLoadIndexExtendPastCapacity(t *testing.T) {
	x := NewLoadIndexCap(2, 2)
	x.Extend(6)
	for id := 2; id < 6; id++ {
		x.Restore(id)
		x.Add(id, id)
	}
	if x.Len() != 6 || x.Min() != 0 {
		t.Fatalf("Len=%d Min=%d", x.Len(), x.Min())
	}
	x.Remove(0)
	x.Remove(1)
	if x.Min() != 2 {
		t.Fatalf("Min = %d, want 2", x.Min())
	}
}

// TestLoadIndexChurnTable drives fixed join/drain/leave interleavings
// through the index and checks Min against the reference scan at each
// step. The sequences mirror what the simulator's membership layer
// actually does: Extend + Restore on join, Remove on drain, load decay
// while draining, re-join of a previously departed id.
func TestLoadIndexChurnTable(t *testing.T) {
	type op struct {
		kind string // "extend", "restore", "remove", "add"
		id   int
		arg  int // new size for extend, delta for add
	}
	cases := []struct {
		name string
		n    int
		cap  int
		ops  []op
	}{
		{
			name: "join two then drain one",
			n:    2, cap: 4,
			ops: []op{
				{"add", 0, 3}, {"add", 1, 1},
				{"extend", 0, 4}, {"restore", 2, 0}, {"restore", 3, 0},
				{"add", 2, 2}, {"remove", 1, 0}, {"add", 1, -1},
			},
		},
		{
			name: "drain all then rejoin",
			n:    3, cap: 3,
			ops: []op{
				{"add", 0, 1}, {"add", 1, 2}, {"add", 2, 3},
				{"remove", 0, 0}, {"remove", 1, 0}, {"remove", 2, 0},
				{"restore", 1, 0}, {"restore", 2, 0}, {"add", 1, -2},
			},
		},
		{
			name: "interleaved growth and churn",
			n:    1, cap: 8,
			ops: []op{
				{"add", 0, 5},
				{"extend", 0, 3}, {"restore", 1, 0},
				{"add", 1, 4}, {"remove", 0, 0},
				{"extend", 0, 5}, {"restore", 4, 0},
				{"add", 4, 1}, {"restore", 0, 0}, {"add", 0, -5},
				{"remove", 4, 0}, {"restore", 2, 0},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x := NewLoadIndexCap(tc.n, tc.cap)
			loads := make([]int, tc.n)
			attached := make([]bool, tc.n)
			for i := range attached {
				attached[i] = true
			}
			for step, o := range tc.ops {
				switch o.kind {
				case "extend":
					x.Extend(o.arg)
					for len(loads) < o.arg {
						loads = append(loads, 0)
						attached = append(attached, false)
					}
				case "restore":
					x.Restore(o.id)
					attached[o.id] = true
				case "remove":
					x.Remove(o.id)
					attached[o.id] = false
				case "add":
					x.Add(o.id, o.arg)
					loads[o.id] += o.arg
				}
				want := refMin(loads, attached)
				if got := x.Min(); got != want {
					t.Fatalf("step %d (%s %d): Min=%d, scan=%d (loads=%v attached=%v)",
						step, o.kind, o.id, got, want, loads, attached)
				}
				for i := range loads {
					if x.Load(i) != loads[i] {
						t.Fatalf("step %d: Load(%d)=%d, want %d", step, i, x.Load(i), loads[i])
					}
				}
			}
		})
	}
}

// TestQuickLoadIndexChurnMatchesScan extends the PR 7 property test
// with pool growth: random interleavings of Add/Remove/Restore/Extend
// must agree with the reference scan at every step.
func TestQuickLoadIndexChurnMatchesScan(t *testing.T) {
	f := func(nRaw, capRaw uint8, ops []uint16) bool {
		n := int(nRaw%12) + 1
		max := n + int(capRaw%12)
		x := NewLoadIndexCap(n, max)
		loads := make([]int, n)
		attached := make([]bool, n)
		for i := range attached {
			attached[i] = true
		}
		for _, op := range ops {
			switch op & 7 {
			case 0, 1: // arrival
				id := int(op>>3) % len(loads)
				x.Add(id, 1)
				loads[id]++
			case 2, 3: // departure
				id := int(op>>3) % len(loads)
				if loads[id] > 0 {
					x.Add(id, -1)
					loads[id]--
				}
			case 4: // drain / crash
				id := int(op>>3) % len(loads)
				x.Remove(id)
				attached[id] = false
			case 5: // restore / rejoin
				id := int(op>>3) % len(loads)
				x.Restore(id)
				attached[id] = true
			case 6: // scale-up: extend by one and attach the new id
				if len(loads) < max {
					grown := len(loads) + 1
					x.Extend(grown)
					loads = append(loads, 0)
					attached = append(attached, true)
					x.Restore(grown - 1)
				}
			case 7: // redundant extend (no-op)
				x.Extend(len(loads))
			}
			want := refMin(loads, attached)
			if got := x.Min(); got != want {
				t.Logf("loads=%v attached=%v: Min=%d, scan=%d", loads, attached, got, want)
				return false
			}
			for i := range loads {
				if x.Load(i) != loads[i] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLoadIndexPostJoinAddZeroAllocs gates the elastic hot path: after
// a within-capacity join (Extend + Restore), dispatch-path mutations on
// the joined id are allocation-free, exactly like original members.
func TestLoadIndexPostJoinAddZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under -race")
	}
	x := NewLoadIndexCap(512, 1024)
	x.Extend(1024)
	for id := 512; id < 1024; id++ {
		x.Restore(id)
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		id := 512 + i%512 // joined ids only
		x.Add(id, 3)
		_ = x.Min()
		x.Remove(id)
		x.Restore(id)
		x.Add(id, -3)
		i++
	})
	if avg != 0 {
		t.Errorf("post-join LoadIndex ops allocate %.2f allocs/op, want 0", avg)
	}
}

// TestLoadIndexExtendWithinCapZeroAllocs: Extend itself is free within
// the reserved capacity.
func TestLoadIndexExtendWithinCapZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under -race")
	}
	avg := testing.AllocsPerRun(100, func() {
		x := NewLoadIndexCap(16, 64)
		x.Extend(64)
		for id := 16; id < 64; id++ {
			x.Restore(id)
		}
	})
	// One run = three slice allocations from NewLoadIndexCap and
	// nothing else: Extend and the Restores stay within capacity.
	if avg > 4 {
		t.Errorf("Extend within capacity allocates %.2f allocs/run, want construction only", avg)
	}
}
