package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"finelb/internal/stats"
)

func TestPolicyConstructorsValidate(t *testing.T) {
	good := []Policy{
		NewRandom(), NewRoundRobin(), NewIdeal(),
		NewPoll(1), NewPoll(2), NewPoll(8),
		NewPollDiscard(3, 10*time.Millisecond),
		NewBroadcast(100 * time.Millisecond),
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", p, err)
		}
	}
	bad := []Policy{
		{Kind: Poll, PollSize: 0},
		{Kind: Poll, PollSize: 2, DiscardAfter: -time.Millisecond},
		{Kind: Broadcast},
		{Kind: Kind(99)},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v: expected validation error", p)
		}
	}
}

func TestPolicyString(t *testing.T) {
	cases := []struct {
		p    Policy
		want string
	}{
		{NewRandom(), "random"},
		{NewIdeal(), "ideal"},
		{NewPoll(3), "poll 3"},
		{NewRoundRobin(), "round-robin"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if s := NewPollDiscard(3, 10*time.Millisecond).String(); !strings.Contains(s, "discard") {
		t.Errorf("discard policy string %q", s)
	}
	if s := NewBroadcast(time.Second).String(); !strings.Contains(s, "broadcast") {
		t.Errorf("broadcast policy string %q", s)
	}
}

func TestPaperFigurePolicies(t *testing.T) {
	ps := PaperFigurePolicies()
	if len(ps) != 6 {
		t.Fatalf("got %d policies", len(ps))
	}
	if ps[0].Kind != Random || ps[5].Kind != Ideal {
		t.Fatal("random/ideal not at the expected positions")
	}
	wantD := []int{2, 3, 4, 8}
	for i, d := range wantD {
		if ps[i+1].Kind != Poll || ps[i+1].PollSize != d {
			t.Fatalf("policy %d = %v, want poll %d", i+1, ps[i+1], d)
		}
	}
}

func TestPickLeast(t *testing.T) {
	rng := stats.NewRNG(1)
	if got := PickLeast(rng, []int{5, 2, 9}); got != 1 {
		t.Fatalf("PickLeast = %d", got)
	}
	if got := PickLeast(rng, []int{7}); got != 0 {
		t.Fatalf("single = %d", got)
	}
}

func TestPickLeastTieUniformity(t *testing.T) {
	rng := stats.NewRNG(2)
	counts := make([]int, 3)
	loads := []int{1, 1, 1}
	const trials = 30000
	for i := 0; i < trials; i++ {
		counts[PickLeast(rng, loads)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-trials/3.0) > trials*0.02 {
			t.Fatalf("tie-break biased: server %d got %d/%d", i, c, trials)
		}
	}
}

func TestPickLeastPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty slice")
		}
	}()
	PickLeast(stats.NewRNG(1), nil)
}

func TestPollSet(t *testing.T) {
	rng := stats.NewRNG(3)
	ident := Identity(16)
	swaps := make([]int, 16)
	dst := make([]int, 8)
	got := PollSet(rng, 16, 3, dst, ident, swaps)
	if len(got) != 3 {
		t.Fatalf("poll set size %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 16 || seen[v] {
			t.Fatalf("bad poll set %v", got)
		}
		seen[v] = true
	}
	for i, v := range ident {
		if v != i {
			t.Fatalf("PollSet left ident[%d] = %d; identity not restored", i, v)
		}
	}
}

func TestPollSetClampsToN(t *testing.T) {
	rng := stats.NewRNG(4)
	ident := Identity(4)
	swaps := make([]int, 4)
	dst := make([]int, 8)
	got := PollSet(rng, 4, 8, dst, ident, swaps)
	if len(got) != 4 {
		t.Fatalf("clamped poll set size %d, want 4", len(got))
	}
}

func TestRoundRobinState(t *testing.T) {
	var rr RoundRobinState
	var got []int
	for i := 0; i < 7; i++ {
		got = append(got, rr.Next(3))
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin sequence %v", got)
		}
	}
	// Shrinking the cluster must not go out of range.
	rr = RoundRobinState{}
	rr.Next(5)
	rr.Next(5)
	if v := rr.Next(2); v < 0 || v >= 2 {
		t.Fatalf("after shrink Next(2) = %d", v)
	}
}

func TestLoadTable(t *testing.T) {
	lt := NewLoadTable(4)
	if lt.Len() != 4 {
		t.Fatalf("len = %d", lt.Len())
	}
	lt.Update(2, 5)
	lt.Update(0, 3)
	if lt.Load(2) != 5 || lt.Load(0) != 3 || lt.Load(1) != 0 {
		t.Fatal("updates not recorded")
	}
	lt.Increment(1)
	if lt.Load(1) != 1 {
		t.Fatal("increment failed")
	}
	// Servers 3 has load 0 < everyone else after these updates? loads: 3,1,5,0.
	rng := stats.NewRNG(5)
	if got := lt.PickLeast(rng); got != 3 {
		t.Fatalf("PickLeast = %d", got)
	}
}

func TestLoadTablePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewLoadTable(0) },
		func() { NewLoadTable(2).Update(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPickFromPolls(t *testing.T) {
	rng := stats.NewRNG(6)
	resp := []PollResponse{{Server: 4, Load: 3}, {Server: 9, Load: 1}, {Server: 2, Load: 7}}
	if got := PickFromPolls(rng, resp, nil); got != 9 {
		t.Fatalf("PickFromPolls = %d", got)
	}
}

func TestPickFromPollsFallback(t *testing.T) {
	rng := stats.NewRNG(7)
	polled := []int{3, 8, 12}
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		counts[PickFromPolls(rng, nil, polled)]++
	}
	for _, id := range polled {
		if counts[id] < 800 {
			t.Fatalf("fallback not uniform: %v", counts)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("fallback chose outside polled set: %v", counts)
	}
}

func TestPickFromPollsPanicsOnNothing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic with no responses and no polled set")
		}
	}()
	PickFromPolls(stats.NewRNG(1), nil, nil)
}

// Property: PickLeast always returns an index of minimal load.
func TestQuickPickLeastIsMinimal(t *testing.T) {
	f := func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		loads := make([]int, len(raw))
		minLoad := int(raw[0])
		for i, v := range raw {
			loads[i] = int(v)
			if loads[i] < minLoad {
				minLoad = loads[i]
			}
		}
		got := PickLeast(stats.NewRNG(seed), loads)
		return loads[got] == minLoad
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PickFromPolls returns a minimal-load respondent whenever
// any response exists, and a polled server otherwise.
func TestQuickPickFromPolls(t *testing.T) {
	f := func(seed uint64, rawLoads []uint8) bool {
		rng := stats.NewRNG(seed)
		var resp []PollResponse
		minLoad := 1 << 30
		for i, v := range rawLoads {
			resp = append(resp, PollResponse{Server: i * 3, Load: int(v)})
			if int(v) < minLoad {
				minLoad = int(v)
			}
		}
		polled := []int{100, 200}
		got := PickFromPolls(rng, resp, polled)
		if len(resp) == 0 {
			return got == 100 || got == 200
		}
		for _, r := range resp {
			if r.Server == got {
				return r.Load == minLoad
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PollSet never repeats a server and stays in range.
func TestQuickPollSetDistinct(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw%64) + 1
		d := int(dRaw%16) + 1
		rng := stats.NewRNG(seed)
		ident := Identity(n)
		swaps := make([]int, min(d, n))
		dst := make([]int, d)
		got := PollSet(rng, n, d, dst, ident, swaps)
		if len(got) != min(d, n) {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestLocalLeastPolicy(t *testing.T) {
	p := NewLocalLeast()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.String() != "least-conn" {
		t.Fatalf("String = %q", p.String())
	}
}
