// Package core implements the paper's load-balancing policies as
// substrate-independent decision logic. The same code drives both the
// discrete-event simulation (internal/simcluster, Figures 2-4) and the
// real-socket prototype (internal/cluster, Figure 6 and Table 2), which
// is what makes the paper's simulation-versus-prototype comparison
// meaningful.
//
// A policy here is the *selection rule*: which servers to probe and
// which of the observed candidates receives the access. The mechanics —
// how a probe travels, how long it takes, when it is discarded — belong
// to the substrate.
package core

import (
	"fmt"
	"time"

	"finelb/internal/stats"
)

// Kind enumerates the policy families studied in the paper.
type Kind int

const (
	// Random dispatches each access to a uniformly random server.
	Random Kind = iota
	// RoundRobin cycles through servers per client. (Baseline; not in
	// the paper's figures but standard in every comparison suite.)
	RoundRobin
	// Poll is the random polling policy (§2.3, §3): poll PollSize random
	// servers for their load index and dispatch to the least loaded.
	Poll
	// Broadcast is the server-push policy (§2.2): servers broadcast load
	// indexes at jittered intervals; clients dispatch to the least
	// loaded perceived server.
	Broadcast
	// Ideal acquires every server's accurate load index free of cost at
	// each access (§2, §4) and dispatches to the least loaded.
	Ideal
	// LocalLeast dispatches to the server with the fewest of *this
	// client's own* outstanding accesses — no messages at all. It is not
	// in the paper; it is the "least connections" rule modern proxies
	// (NGINX, HAProxy) apply per instance, included as a
	// modern-relevance baseline (ablation A4).
	LocalLeast
)

// String returns the paper's name for the policy family.
func (k Kind) String() string {
	switch k {
	case Random:
		return "random"
	case RoundRobin:
		return "round-robin"
	case Poll:
		return "poll"
	case Broadcast:
		return "broadcast"
	case Ideal:
		return "ideal"
	case LocalLeast:
		return "least-conn"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Policy is a complete policy specification.
type Policy struct {
	Kind Kind

	// PollSize is the number of servers polled per access (Kind == Poll).
	PollSize int

	// DiscardAfter, when positive, is the slow-poll discard threshold of
	// §3.2: polls not answered within this duration are abandoned and
	// the decision is made from the responses at hand (Kind == Poll).
	DiscardAfter time.Duration

	// BroadcastInterval is the mean interval between per-server load
	// broadcasts (Kind == Broadcast). Actual intervals are jittered
	// uniformly over [0.5, 1.5] x mean unless BroadcastFixed is set.
	BroadcastInterval time.Duration

	// BroadcastFixed disables interval jitter. It exists only for the
	// self-synchronization ablation (A2); the paper stresses intervals
	// must be non-fixed (Floyd-Jacobson).
	BroadcastFixed bool

	// LocalCorrection, for Broadcast, makes each client increment its
	// own perceived load index for the chosen server on dispatch,
	// partially compensating the flocking effect (ablation A1). The
	// paper's broadcast policy does not do this.
	LocalCorrection bool
}

// NewRandom returns the pure random policy.
func NewRandom() Policy { return Policy{Kind: Random} }

// NewRoundRobin returns the per-client round-robin policy.
func NewRoundRobin() Policy { return Policy{Kind: RoundRobin} }

// NewPoll returns the random polling policy with poll size d.
func NewPoll(d int) Policy { return Policy{Kind: Poll, PollSize: d} }

// NewPollDiscard returns random polling with the slow-poll discard
// optimization of §3.2.
func NewPollDiscard(d int, after time.Duration) Policy {
	return Policy{Kind: Poll, PollSize: d, DiscardAfter: after}
}

// NewBroadcast returns the broadcast policy with the given mean
// broadcast interval (jittered).
func NewBroadcast(meanInterval time.Duration) Policy {
	return Policy{Kind: Broadcast, BroadcastInterval: meanInterval}
}

// NewIdeal returns the IDEAL reference policy.
func NewIdeal() Policy { return Policy{Kind: Ideal} }

// NewLocalLeast returns the message-free, client-local least-connections
// policy (ablation A4; not part of the paper).
func NewLocalLeast() Policy { return Policy{Kind: LocalLeast} }

// Validate reports whether the policy's parameters are coherent.
func (p Policy) Validate() error {
	switch p.Kind {
	case Random, RoundRobin, Ideal, LocalLeast:
		return nil
	case Poll:
		if p.PollSize < 1 {
			return fmt.Errorf("core: poll size %d < 1", p.PollSize)
		}
		if p.DiscardAfter < 0 {
			return fmt.Errorf("core: negative discard threshold %v", p.DiscardAfter)
		}
		return nil
	case Broadcast:
		if p.BroadcastInterval <= 0 {
			return fmt.Errorf("core: broadcast interval %v <= 0", p.BroadcastInterval)
		}
		return nil
	default:
		return fmt.Errorf("core: unknown policy kind %d", int(p.Kind))
	}
}

// String names the policy the way the paper's figure legends do.
func (p Policy) String() string {
	switch p.Kind {
	case Poll:
		if p.DiscardAfter > 0 {
			return fmt.Sprintf("poll %d (discard >%v)", p.PollSize, p.DiscardAfter)
		}
		return fmt.Sprintf("poll %d", p.PollSize)
	case Broadcast:
		return fmt.Sprintf("broadcast %v", p.BroadcastInterval)
	default:
		return p.Kind.String()
	}
}

// PaperFigurePolicies returns the policy set of Figures 4 and 6:
// random, poll sizes 2, 3, 4, 8, and IDEAL.
func PaperFigurePolicies() []Policy {
	return []Policy{
		NewRandom(),
		NewPoll(2), NewPoll(3), NewPoll(4), NewPoll(8),
		NewIdeal(),
	}
}

// PickLeast returns the position (index into loads) of the smallest
// load value, breaking ties uniformly at random so that equal-load
// servers share traffic. It panics on an empty slice.
func PickLeast(rng *stats.RNG, loads []int) int {
	if len(loads) == 0 {
		panic("core: PickLeast on empty slice")
	}
	best := 0
	ties := 1
	for i := 1; i < len(loads); i++ {
		switch {
		case loads[i] < loads[best]:
			best, ties = i, 1
		case loads[i] == loads[best]:
			// Reservoir-sample among ties for a uniform choice.
			ties++
			if rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

// PollSet fills dst with min(d, n) distinct uniformly chosen server ids
// from [0, n) and returns it. ident must hold the identity permutation
// over at least n entries (ident[i] == i); it is restored before
// returning, so one shared identity slice serves every call. swaps is
// scratch of length >= min(d, n). When d >= n every server is polled,
// matching the paper's prototype which polls "a certain number of
// servers out of the available set".
//
// The random stream consumed is identical to the historical
// Choose-based implementation, but each call is O(d) rather than O(n) —
// at 10k servers and poll size 2 that is the whole hot path.
func PollSet(rng *stats.RNG, n, d int, dst, ident, swaps []int) []int {
	if n <= 0 {
		panic("core: PollSet with no servers")
	}
	if d > n {
		d = n
	}
	dst = dst[:d]
	rng.ChooseIdentity(dst, n, ident, swaps)
	return dst
}

// Identity returns the identity permutation of length n, the ident
// argument PollSet expects.
func Identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// RoundRobinState is the per-client cursor for the round-robin policy.
type RoundRobinState struct{ next int }

// Next returns the next server id for a cluster of n servers.
func (s *RoundRobinState) Next(n int) int {
	if n <= 0 {
		panic("core: RoundRobinState.Next with no servers")
	}
	v := s.next % n
	s.next = (v + 1) % n
	return v
}
