package core

import "finelb/internal/stats"

// LoadTable is the client-side table of perceived server load indexes
// maintained under the broadcast policy. Each client owns one; entries
// are overwritten by incoming broadcasts and (optionally, ablation A1)
// incremented locally on dispatch.
//
// The zero load index for a never-heard-from server is 0, which matches
// the prototype: a freshly published server starts idle.
//
// LoadTable is not safe for concurrent use; the prototype guards it
// with the client node's mutex.
type LoadTable struct {
	loads []int
}

// NewLoadTable returns a table for n servers, all perceived idle.
func NewLoadTable(n int) *LoadTable {
	if n <= 0 {
		panic("core: NewLoadTable with n <= 0")
	}
	return &LoadTable{loads: make([]int, n)}
}

// Len returns the number of servers tracked.
func (t *LoadTable) Len() int { return len(t.loads) }

// Update records a broadcast load index for server id.
func (t *LoadTable) Update(id, load int) {
	if load < 0 {
		panic("core: negative load index")
	}
	t.loads[id] = load
}

// Load returns the perceived load index of server id.
func (t *LoadTable) Load(id int) int { return t.loads[id] }

// Increment bumps the perceived load of server id by one (local
// correction after dispatch, ablation A1).
func (t *LoadTable) Increment(id int) { t.loads[id]++ }

// PickLeast returns the id of a least-loaded server according to the
// table, breaking ties uniformly at random.
func (t *LoadTable) PickLeast(rng *stats.RNG) int {
	return PickLeast(rng, t.loads)
}

// PollResponse is one answered load inquiry: the responding server and
// the load index it reported.
type PollResponse struct {
	Server int
	Load   int
}

// PickFromPolls returns the server id of the least-loaded respondent,
// breaking ties uniformly. If no polls were answered (all discarded),
// it returns a uniformly random member of polled — the prototype's
// fallback when every inquiry exceeded the discard threshold. polled
// must be non-empty.
func PickFromPolls(rng *stats.RNG, responses []PollResponse, polled []int) int {
	if len(responses) == 0 {
		if len(polled) == 0 {
			panic("core: PickFromPolls with no polls")
		}
		return polled[rng.Intn(len(polled))]
	}
	best := 0
	ties := 1
	for i := 1; i < len(responses); i++ {
		switch {
		case responses[i].Load < responses[best].Load:
			best, ties = i, 1
		case responses[i].Load == responses[best].Load:
			ties++
			if rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return responses[best].Server
}
