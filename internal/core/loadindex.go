//lint:deterministic file
//lint:noalloc file
// loadindex.go implements the indexed min-load structure behind the
// IDEAL (join-shortest-queue) and least-connections dispatch paths.
// The paper-era implementation scanned all n servers per decision;
// LoadIndex keeps the same "least loaded first" answer available in
// O(1) with O(log n) updates, which is what makes O(10k)-server runs
// tractable.

package core

import "fmt"

// LoadIndex is an indexed binary min-heap over per-server integer load
// values, ordered by (load, server id): Min returns the least-loaded
// member, ties broken by the lowest server id. Ids are dense [0, n).
// Members can be detached (Remove) while a server is down or paused and
// re-attached (Restore) with their load intact, so fault handling
// composes with the index.
//
// LoadIndex is deterministic by construction — no randomness, no map
// iteration — and allocation-free after New.
type LoadIndex struct {
	load []int32 // load[id], tracked even while id is detached
	heap []int32 // attached ids, heap-ordered by (load, id)
	pos  []int32 // pos[id]: index into heap, or -1 while detached
}

// NewLoadIndex returns an index over ids 0..n-1, all attached with
// load 0.
func NewLoadIndex(n int) *LoadIndex {
	return NewLoadIndexCap(n, n)
}

// NewLoadIndexCap is NewLoadIndex with room reserved for ids up to
// capacity: Extend calls that stay within it are allocation-free, which
// is what lets elastic membership grow the pool without perturbing the
// zero-alloc dispatch path.
func NewLoadIndexCap(n, capacity int) *LoadIndex {
	if n <= 0 {
		panic(fmt.Sprintf("core: NewLoadIndexCap(%d, %d)", n, capacity))
	}
	if capacity < n {
		capacity = n
	}
	//lint:allow noalloc construction is the one mint; every later operation works in place
	x := &LoadIndex{
		load: make([]int32, n, capacity),
		heap: make([]int32, n, capacity),
		pos:  make([]int32, n, capacity),
	}
	// All loads equal: the identity assignment is already a valid heap.
	for i := range x.heap {
		x.heap[i] = int32(i)
		x.pos[i] = int32(i)
	}
	return x
}

// Extend grows the id space to n. New ids start detached with load 0 —
// a joining server becomes routable only once Restore attaches it, so
// Extend itself never changes Min. Extending to the current size or
// smaller is a no-op; within the reserved capacity Extend does not
// allocate.
func (x *LoadIndex) Extend(n int) {
	for len(x.load) < n {
		x.load = append(x.load, 0)
		x.pos = append(x.pos, -1)
	}
}

// Len returns the number of attached members.
func (x *LoadIndex) Len() int { return len(x.heap) }

// N returns the id-space size (attached or not).
func (x *LoadIndex) N() int { return len(x.load) }

// Load returns the tracked load of id, attached or not.
func (x *LoadIndex) Load(id int) int { return int(x.load[id]) }

// Min returns the attached id with the smallest load, ties broken by
// the lowest id. It returns -1 when every member is detached.
func (x *LoadIndex) Min() int {
	if len(x.heap) == 0 {
		return -1
	}
	return int(x.heap[0])
}

// MinLoad returns the load of Min. It panics when every member is
// detached.
func (x *LoadIndex) MinLoad() int {
	if len(x.heap) == 0 {
		panic("core: MinLoad on empty LoadIndex")
	}
	return int(x.load[x.heap[0]])
}

// Add shifts id's load by delta (negative deltas decrease it) and
// restores heap order in O(log n). Detached ids track the new load but
// cost O(1).
func (x *LoadIndex) Add(id, delta int) {
	x.load[id] += int32(delta)
	p := x.pos[id]
	if p < 0 {
		return
	}
	if delta > 0 {
		x.down(int(p))
	} else if delta < 0 {
		x.up(int(p))
	}
}

// Remove detaches id (server down or paused): it no longer competes
// for Min, but its load keeps being tracked. Removing a detached id is
// a no-op.
func (x *LoadIndex) Remove(id int) {
	p := x.pos[id]
	if p < 0 {
		return
	}
	n := len(x.heap) - 1
	i := int(p)
	if i != n {
		moved := x.heap[n]
		x.heap[i] = moved
		x.pos[moved] = int32(i)
	}
	x.heap = x.heap[:n]
	x.pos[id] = -1
	if i < n {
		if !x.down(i) {
			x.up(i)
		}
	}
}

// Restore re-attaches a detached id with its tracked load. Restoring an
// attached id is a no-op.
func (x *LoadIndex) Restore(id int) {
	if x.pos[id] >= 0 {
		return
	}
	i := len(x.heap)
	x.heap = append(x.heap, int32(id))
	x.pos[id] = int32(i)
	x.up(i)
}

// less orders attached ids by (load, id).
func (x *LoadIndex) less(a, b int32) bool {
	la, lb := x.load[a], x.load[b]
	return la < lb || (la == lb && a < b)
}

func (x *LoadIndex) up(i int) bool {
	h := x.heap
	id := h[i]
	start := i
	for i > 0 {
		parent := (i - 1) / 2
		if !x.less(id, h[parent]) {
			break
		}
		h[i] = h[parent]
		x.pos[h[i]] = int32(i)
		i = parent
	}
	h[i] = id
	x.pos[id] = int32(i)
	return i < start
}

func (x *LoadIndex) down(i int) bool {
	h := x.heap
	n := len(h)
	id := h[i]
	start := i
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && x.less(h[right], h[left]) {
			child = right
		}
		if !x.less(h[child], id) {
			break
		}
		h[i] = h[child]
		x.pos[h[i]] = int32(i)
		i = child
	}
	h[i] = id
	x.pos[id] = int32(i)
	return i > start
}
