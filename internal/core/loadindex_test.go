package core

import (
	"testing"
	"testing/quick"
)

// refMin is the historical O(n) dispatch scan: least load wins, ties
// broken by the lowest server index. LoadIndex must agree with it on
// every prefix of every load sequence.
func refMin(loads []int, attached []bool) int {
	best := -1
	for i, l := range loads {
		if !attached[i] {
			continue
		}
		if best == -1 || l < loads[best] {
			best = i
		}
	}
	return best
}

func TestLoadIndexBasics(t *testing.T) {
	x := NewLoadIndex(4)
	if x.Len() != 4 || x.N() != 4 {
		t.Fatalf("Len=%d N=%d", x.Len(), x.N())
	}
	if x.Min() != 0 || x.MinLoad() != 0 {
		t.Fatalf("fresh index Min=%d MinLoad=%d, want 0,0", x.Min(), x.MinLoad())
	}
	x.Add(0, 2)
	x.Add(1, 1)
	if x.Min() != 2 {
		t.Fatalf("Min=%d, want 2 (first zero-load id)", x.Min())
	}
	x.Add(2, 3)
	x.Add(3, 3)
	if x.Min() != 1 || x.MinLoad() != 1 {
		t.Fatalf("Min=%d MinLoad=%d, want 1,1", x.Min(), x.MinLoad())
	}
	x.Add(1, -1)
	if x.Min() != 1 || x.MinLoad() != 0 {
		t.Fatalf("after decrement Min=%d MinLoad=%d", x.Min(), x.MinLoad())
	}
	if x.Load(2) != 3 {
		t.Fatalf("Load(2)=%d", x.Load(2))
	}
}

func TestLoadIndexRemoveRestore(t *testing.T) {
	x := NewLoadIndex(3)
	x.Add(0, 1)
	x.Add(1, 2)
	x.Add(2, 3)
	x.Remove(0)
	if x.Len() != 2 || x.Min() != 1 {
		t.Fatalf("after Remove(0): Len=%d Min=%d", x.Len(), x.Min())
	}
	// Load keeps being tracked while detached.
	x.Add(0, 5)
	if x.Load(0) != 6 {
		t.Fatalf("detached load = %d, want 6", x.Load(0))
	}
	x.Remove(0) // no-op
	x.Restore(0)
	x.Restore(0) // no-op
	if x.Len() != 3 || x.Min() != 1 {
		t.Fatalf("after Restore(0): Len=%d Min=%d", x.Len(), x.Min())
	}
	x.Remove(0)
	x.Remove(1)
	x.Remove(2)
	if x.Min() != -1 {
		t.Fatalf("empty Min = %d, want -1", x.Min())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MinLoad on empty index did not panic")
			}
		}()
		x.MinLoad()
	}()
}

func TestLoadIndexPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLoadIndex(0) did not panic")
		}
	}()
	NewLoadIndex(0)
}

// TestQuickLoadIndexMatchesScan is the refactor's safety property: for
// random sequences of load increments, decrements, removals, and
// restores, the indexed structure's pick equals the old O(n) scan at
// every step — including ties, which both break toward the lowest
// server index.
func TestQuickLoadIndexMatchesScan(t *testing.T) {
	f := func(nRaw uint8, ops []uint16) bool {
		n := int(nRaw%24) + 1
		x := NewLoadIndex(n)
		loads := make([]int, n)
		attached := make([]bool, n)
		for i := range attached {
			attached[i] = true
		}
		for _, op := range ops {
			id := int(op>>2) % n
			switch op & 3 {
			case 0: // arrival
				x.Add(id, 1)
				loads[id]++
			case 1: // departure (decrement, floor at 0 to stay realistic)
				if loads[id] > 0 {
					x.Add(id, -1)
					loads[id]--
				}
			case 2: // server down / paused
				x.Remove(id)
				attached[id] = false
			case 3: // server recovered
				x.Restore(id)
				attached[id] = true
			}
			want := refMin(loads, attached)
			if got := x.Min(); got != want {
				t.Logf("n=%d loads=%v attached=%v: Min=%d, scan=%d", n, loads, attached, got, want)
				return false
			}
			if want >= 0 && x.MinLoad() != loads[want] {
				return false
			}
			for i := range loads {
				if x.Load(i) != loads[i] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLoadIndexZeroAllocs: every mutation after construction is
// allocation-free; this is the dispatch path at 10k servers.
func TestLoadIndexZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under -race")
	}
	x := NewLoadIndex(1024)
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		id := i % 1024
		x.Add(id, 3)
		_ = x.Min()
		x.Remove(id)
		x.Restore(id)
		x.Add(id, -3)
		i++
	})
	if avg != 0 {
		t.Errorf("LoadIndex ops allocate %.2f allocs/op, want 0", avg)
	}
}

func BenchmarkLoadIndexChurn(b *testing.B) {
	x := NewLoadIndex(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := x.Min()
		x.Add(id, 1)
		x.Add((id+4099)%10000, -x.Load((id+4099)%10000))
	}
}
