// elastic.go is the simulator half of the elastic-membership seam
// (internal/membership): Join/Drain/Leave events replayed on the
// simulated clock, a growable server pool that preserves the zero-
// allocation dispatch path (every capacity is reserved up front from
// Config.maxPool), and the closed-loop autoscaler sampling the pool on
// its policy interval. Fixed-pool runs never construct a memberState,
// so the paper model's RNG-draw and event sequence stays bit-identical
// — the same inert fast-path contract the faults seam established.

package simcluster

import (
	"sort"
	"time"

	"finelb/internal/core"
	"finelb/internal/membership"
	"finelb/internal/obs"
	"finelb/internal/sim"
)

// memberState tracks the routable pool of an elastic run. The members
// slice is kept sorted by id so policy draws are deterministic and
// round-robin walks the pool in a stable order; churn events mutate it
// in O(pool), which is fine — churn is orders of magnitude rarer than
// dispatch.
type memberState struct {
	routable []bool // id currently receives new work
	draining []bool // id withdrawn from routing, still serving its queue
	retiring []bool // draining id the autoscaler will retire once idle
	left     []bool // id retired from the run
	members  []int  // sorted routable ids

	joins, drains, leaves int64
	peakPool              int

	mm *obs.MembershipMetrics

	// Autoscaler loop (nil/zero when only a schedule drives churn).
	as         *membership.Autoscaler
	asInterval sim.Duration
	asTick     func() // prebuilt so the rescheduling loop allocates nothing
}

// insert adds id to the sorted member list.
func (m *memberState) insert(id int) {
	i := sort.SearchInts(m.members, id)
	m.members = append(m.members, 0)
	copy(m.members[i+1:], m.members[i:])
	m.members[i] = id
}

// removeMember deletes id from the sorted member list.
func (m *memberState) removeMember(id int) {
	i := sort.SearchInts(m.members, id)
	if i < len(m.members) && m.members[i] == id {
		m.members = append(m.members[:i], m.members[i+1:]...)
	}
}

// speedFor returns server id's work rate: its SpeedFactors entry when
// covered, 1.0 otherwise (ids an elastic run grows past the factors
// slice run at base speed).
func (r *runner) speedFor(id int) float64 {
	if r.cfg.SpeedFactors != nil && id < len(r.cfg.SpeedFactors) {
		return r.cfg.SpeedFactors[id]
	}
	return 1.0
}

// setupElastic builds the membership state, schedules the membership
// events on the simulated clock, and starts the autoscaler loop. Called
// from newRunner only when Config.elastic().
func (r *runner) setupElastic(maxPool int) {
	cfg := &r.cfg
	ms := &memberState{
		routable: make([]bool, maxPool),
		draining: make([]bool, maxPool),
		retiring: make([]bool, maxPool),
		left:     make([]bool, maxPool),
		members:  make([]int, cfg.Servers, maxPool),
		peakPool: cfg.Servers,
		mm:       obs.NewMembershipMetrics(r.reg),
	}
	for i := 0; i < cfg.Servers; i++ {
		ms.routable[i] = true
		ms.members[i] = i
	}
	ms.mm.Pool.Set(int64(cfg.Servers))
	r.ms = ms

	if cfg.Membership.Active() {
		for _, ev := range cfg.Membership.Sorted() {
			ev := ev
			r.eng.At(sim.Time(sim.FromSeconds(ev.At.Seconds())), func() {
				r.applyMembership(ev)
			})
		}
	}

	if cfg.Autoscaler.Active() {
		ms.as = membership.NewAutoscaler(cfg.Autoscaler)
		ms.asInterval = sim.FromSeconds(ms.as.Config().Interval.Seconds())
		ms.asTick = func() { r.autoscaleTick() }
		r.eng.After(ms.asInterval, ms.asTick)
	}
}

// applyMembership executes one schedule event.
func (r *runner) applyMembership(ev membership.Event) {
	switch ev.Kind {
	case membership.Join:
		r.join(ev.Node)
	case membership.Drain:
		r.drain(ev.Node)
	case membership.Leave:
		r.leave(ev.Node)
	}
}

// growTo extends the server slice (and every policy index) to hold ids
// below n. New servers are inert placeholders until join attaches them.
// n never exceeds maxPool, so growth stays within the capacity reserved
// at construction — no reallocation, and no pointer into r.srv moves.
func (r *runner) growTo(n int) {
	for len(r.srv) < n {
		id := len(r.srv)
		r.srv = append(r.srv, serverState{speed: r.speedFor(id)})
		if r.cfg.RecordQueueSeries {
			r.srv[id].series = &QSeries{}
		}
	}
	if r.commit != nil {
		r.commit.Extend(n)
	}
	if r.local != nil {
		for _, li := range r.local {
			li.Extend(n)
		}
	}
}

// join makes id routable: a brand-new server grows the pool, a drained
// or retired one comes back with whatever queue it still holds. Returns
// whether the pool changed.
func (r *runner) join(id int) bool {
	ms := r.ms
	if id >= len(ms.routable) || ms.routable[id] {
		return false
	}
	r.growTo(id + 1)
	ms.routable[id] = true
	ms.draining[id] = false
	ms.retiring[id] = false
	ms.left[id] = false
	ms.insert(id)
	ms.joins++
	ms.mm.Joins.Inc()
	ms.mm.Pool.Set(int64(len(ms.members)))
	if len(ms.members) > ms.peakPool {
		ms.peakPool = len(ms.members)
	}
	// Attach to the policy indexes with the load it still carries (zero
	// for a fresh server; outstanding work for a rejoining one).
	if r.commit != nil {
		r.commit.Restore(id)
	}
	if r.local != nil {
		for _, li := range r.local {
			li.Restore(id)
		}
	}
	r.record(id)
	r.emit("server.join", r.serverActor, id, int64(len(ms.members)), 0)
	return true
}

// drain withdraws id from routing while it keeps serving its queue. The
// last routable member never drains — an elastic run must always have
// somewhere to send work. Returns whether the pool changed.
func (r *runner) drain(id int) bool {
	ms := r.ms
	if id >= len(ms.routable) || !ms.routable[id] {
		return false
	}
	if len(ms.members) <= 1 {
		return false
	}
	ms.routable[id] = false
	ms.draining[id] = true
	ms.removeMember(id)
	ms.drains++
	ms.mm.Drains.Inc()
	ms.mm.Pool.Set(int64(len(ms.members)))
	if r.commit != nil {
		r.commit.Remove(id)
	}
	if r.local != nil {
		for _, li := range r.local {
			li.Remove(id)
		}
	}
	r.emit("server.drain", r.serverActor, id, int64(len(ms.members)), 0)
	return true
}

// leave retires a drained id. Queued work has already completed (or
// completes before the run can end — the engine drains every in-flight
// access), so leave is bookkeeping: the id stops being rejoinable by
// the autoscaler's first-fit scan until a schedule joins it again.
func (r *runner) leave(id int) {
	ms := r.ms
	if id >= len(ms.routable) || ms.left[id] {
		return
	}
	if ms.routable[id] && !r.drain(id) {
		return // last routable member: refuse to retire it
	}
	ms.draining[id] = false
	ms.retiring[id] = false
	ms.left[id] = true
	ms.leaves++
	ms.mm.Leaves.Inc()
	r.emit("server.leave", r.serverActor, id, int64(len(ms.members)), 0)
}

// autoscaleTick is one autoscaler sample on the simulated clock: read
// the routable pool's mean outstanding load, ask the policy for a
// delta, apply it as joins (first-fit over non-left ids, then retired
// ones) or drains (highest id first — joined last, first out), and
// reschedule. The loop rides pooled engine events with the prebuilt
// callback, so steady-state sampling allocates nothing.
func (r *runner) autoscaleTick() {
	ms := r.ms
	pool := len(ms.members)
	outstanding := 0
	for _, id := range ms.members {
		outstanding += r.srv[id].active
	}
	load := float64(outstanding) / float64(pool)
	// sim.Time counts nanoseconds from the start of the run, so it
	// converts directly to the autoscaler's elapsed-time argument.
	delta := ms.as.Evaluate(time.Duration(r.eng.Now()), pool, load)
	switch {
	case delta > 0:
		added := 0
		for id := 0; id < len(ms.routable) && added < delta; id++ {
			if !ms.routable[id] && !ms.left[id] && r.join(id) {
				added++
			}
		}
		for id := 0; id < len(ms.routable) && added < delta; id++ {
			if !ms.routable[id] && r.join(id) {
				added++
			}
		}
		if added > 0 {
			ms.mm.ScaleUps.Inc()
		}
	case delta < 0:
		removed := 0
		for removed < -delta && len(ms.members) > 1 {
			id := ms.members[len(ms.members)-1]
			if !r.drain(id) {
				break
			}
			removed++
			ms.retiring[id] = true
			if r.srv[id].active == 0 {
				r.leave(id) // already idle: retire immediately
			}
		}
		if removed > 0 {
			ms.mm.ScaleDowns.Inc()
		}
	}
	r.eng.After(ms.asInterval, ms.asTick)
}

// handleElastic runs the policy decision over the current members. It
// mirrors the healthy fixed-pool branch of handle() with the member
// list as the candidate set; membership and faults never combine, so
// this is the only elastic dispatch path.
func (r *runner) handleElastic(a *access) {
	cfg := &r.cfg
	members := r.ms.members
	switch cfg.Policy.Kind {
	case core.Random:
		a.srv = members[r.policyRNG.Intn(len(members))]
		a.pollDur = 0
		r.dispatch(a)

	case core.RoundRobin:
		a.srv = members[r.rrs[a.client].Next(len(members))]
		a.pollDur = 0
		r.dispatch(a)

	case core.Ideal:
		// The committed-work index tracks exactly the routable set
		// (Restore on join, Remove on drain), so Min() is the elastic
		// JSQ answer directly.
		best := r.commit.Min()
		if best < 0 {
			best = members[r.policyRNG.Intn(len(members))]
		}
		a.srv = best
		a.pollDur = 0
		r.dispatch(a)

	case core.LocalLeast:
		best := r.local[a.client].Min()
		if best < 0 {
			best = members[r.policyRNG.Intn(len(members))]
		}
		a.srv = best
		a.pollDur = 0
		r.dispatch(a)

	case core.Poll:
		r.healthyPoll(a)
	}
}
