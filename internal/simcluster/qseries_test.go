package simcluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQSeriesAt(t *testing.T) {
	var s QSeries
	s.record(1, 1)
	s.record(2, 2)
	s.record(4, 1)
	cases := []struct {
		t    float64
		want int
	}{
		{0.5, 0}, {1, 1}, {1.5, 1}, {2, 2}, {3.9, 2}, {4, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestQSeriesDuplicateTimestamps(t *testing.T) {
	var s QSeries
	s.record(1, 1)
	s.record(1, 2) // same instant: keep latest
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	if got := s.At(1); got != 2 {
		t.Fatalf("At(1) = %d", got)
	}
}

func TestQSeriesEnd(t *testing.T) {
	var s QSeries
	if s.End() != 0 {
		t.Fatal("empty End != 0")
	}
	s.record(3, 1)
	if s.End() != 3 {
		t.Fatalf("End = %v", s.End())
	}
}

func TestQSeriesInaccuracy(t *testing.T) {
	// Square wave of period 2 alternating 0/1: |Q(t)-Q(t+1)| = 1 always,
	// |Q(t)-Q(t+2)| = 0 always.
	var s QSeries
	for i := 0; i < 100; i++ {
		s.record(float64(i), i%2)
	}
	if got := s.Inaccuracy(1, 0.5, 99, 0.25); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Inaccuracy(delay=1) = %v, want 1", got)
	}
	if got := s.Inaccuracy(2, 0.5, 99, 0.25); got != 0 {
		t.Fatalf("Inaccuracy(delay=2) = %v, want 0", got)
	}
	// delay=0 is always 0.
	if got := s.Inaccuracy(0, 0, 99, 0.1); got != 0 {
		t.Fatalf("Inaccuracy(0) = %v", got)
	}
}

func TestQSeriesInaccuracyPanics(t *testing.T) {
	var s QSeries
	for i, fn := range []func(){
		func() { s.Inaccuracy(1, 0, 10, 0) },
		func() { s.Inaccuracy(-1, 0, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestQSeriesTimeAverage(t *testing.T) {
	var s QSeries
	s.record(0, 2)
	s.record(10, 4)
	if got := s.TimeAverage(0, 20); math.Abs(got-3) > 1e-9 {
		t.Fatalf("TimeAverage = %v, want 3", got)
	}
	// Window starting mid-step.
	if got := s.TimeAverage(10, 20); math.Abs(got-4) > 1e-9 {
		t.Fatalf("TimeAverage tail = %v, want 4", got)
	}
	if got := s.TimeAverage(5, 5); got != 0 {
		t.Fatalf("degenerate window = %v", got)
	}
}

// Property: At is the step function defined by the recorded points, for
// arbitrary monotone recordings.
func TestQuickQSeriesStepFunction(t *testing.T) {
	f := func(deltas []uint8, queries []uint16) bool {
		var s QSeries
		tm := 0.0
		type pt struct {
			t float64
			v int
		}
		var pts []pt
		for i, d := range deltas {
			tm += float64(d%50) + 1
			s.record(tm, i)
			pts = append(pts, pt{tm, i})
		}
		for _, q := range queries {
			qt := float64(q % 3000)
			want := 0
			for _, p := range pts {
				if p.t <= qt {
					want = p.v
				}
			}
			if s.At(qt) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
