//go:build !race

package simcluster

// raceEnabled lets allocation gates skip under the race detector,
// whose instrumentation perturbs allocation accounting.
const raceEnabled = false
