package simcluster

import (
	"finelb/internal/core"
	"finelb/internal/faults"
	"finelb/internal/sim"
	"finelb/internal/stats"
)

// DefaultPollTimeout mirrors the prototype client's PollTimeout: the
// cap on waiting for poll answers when the policy sets no discard
// threshold. Only the faulted runner needs it — in the healthy model
// every inquiry is answered within its round trip.
const DefaultPollTimeout = sim.Duration(sim.Second)

// runFaulted executes one simulated experiment under a fault schedule.
// It mirrors Run's model — same network constants, same server
// mechanics, same RNG stream derivation — and adds the failure handling
// that the prototype client implements: per-server quarantine fed by
// consecutive silent polls, jittered-backoff poll retries, bounded
// access retries after broken round trips, and random fallback when all
// polled servers are quarantined.
//
// All fault decisions (link loss, backoff jitter) draw from a stream
// derived from the schedule's own seed, so the same Schedule and the
// same Config.Seed replay the exact same run.
func runFaulted(cfg Config) (*Result, error) {
	eng := sim.New()
	master := stats.NewRNG(cfg.Seed)
	arrivalRNG := master.Split()
	policyRNG := master.Split()
	jitterRNG := master.Split()
	faultRNG := stats.NewRNG(cfg.Faults.Seed ^ 0x5eedfa017bad5eed)

	res := &Result{
		Config:   cfg,
		Response: stats.NewSummary(true),
		PollTime: stats.NewSummary(true),
	}

	servers := make([]*server, cfg.Servers)
	for i := range servers {
		speed := 1.0
		if cfg.SpeedFactors != nil {
			speed = cfg.SpeedFactors[i]
		}
		servers[i] = &server{eng: eng, speed: speed}
		if cfg.RecordQueueSeries {
			servers[i].series = &QSeries{}
		}
		servers[i].record()
	}

	// Replay node events on the simulated clock.
	for _, ev := range cfg.Faults.Sorted() {
		ev := ev
		if ev.Node >= cfg.Servers {
			continue
		}
		eng.At(sim.Time(sim.FromSeconds(ev.At.Seconds())), func() {
			switch s := servers[ev.Node]; ev.Kind {
			case faults.Crash:
				s.crash()
			case faults.Pause:
				s.pause()
			case faults.Resume:
				s.resume()
			}
		})
	}

	// Per-client state.
	rrs := make([]core.RoundRobinState, cfg.Clients)
	var outstanding [][]int
	if cfg.Policy.Kind == core.LocalLeast {
		outstanding = make([][]int, cfg.Clients)
		for i := range outstanding {
			outstanding[i] = make([]int, cfg.Servers)
		}
	}

	// Failure-detector state, per client per server, mirroring the
	// prototype's serverHealth.
	quarUntil := make([][]sim.Time, cfg.Clients)
	strikes := make([][]int, cfg.Clients)
	for i := range quarUntil {
		quarUntil[i] = make([]sim.Time, cfg.Servers)
		strikes[i] = make([]int, cfg.Servers)
	}
	quarFor := sim.FromSeconds(faults.DefaultQuarantineFor.Seconds())

	quarantine := func(client, srv int) {
		strikes[client][srv] = 0
		quarUntil[client][srv] = eng.Now().Add(quarFor)
	}
	noteSilent := func(client, srv int) {
		strikes[client][srv]++
		if strikes[client][srv] >= faults.DefaultQuarantineAfter {
			quarantine(client, srv)
		}
	}
	noteAnswered := func(client, srv int) {
		strikes[client][srv] = 0
		quarUntil[client][srv] = 0
	}
	// candidates returns the servers this client has not quarantined,
	// or nil when it has quarantined everything.
	candidates := func(client int) []int {
		now := eng.Now()
		out := make([]int, 0, cfg.Servers)
		for srv := 0; srv < cfg.Servers; srv++ {
			if now < quarUntil[client][srv] {
				continue
			}
			out = append(out, srv)
		}
		if len(out) == 0 {
			return nil
		}
		return out
	}

	// linkFault decides the fate of one inquiry on the client→srv link.
	linkFault := func(client, srv int) (drop bool, delay sim.Duration) {
		rule, ok := cfg.Faults.Rule(client, srv)
		if !ok {
			return false, 0
		}
		if rule.Loss > 0 && faultRNG.Float64() < rule.Loss {
			return true, 0
		}
		return false, sim.FromSeconds(rule.Latency.Seconds())
	}

	backoff := func(attempt int) sim.Duration {
		base := faults.Backoff(faults.DefaultRetryBackoff, attempt)
		jitter := 0.5 + faultRNG.Float64()
		return sim.FromSeconds(base.Seconds() * jitter)
	}

	completed, lost := 0, 0
	warmup := int(float64(cfg.Accesses) * cfg.WarmupFrac)
	finish := func() {
		if completed+lost == cfg.Accesses {
			eng.Stop()
		}
	}

	var handle func(idx, client, attempt int, start sim.Time, service sim.Duration)

	// dispatch sends the access to srv. On a broken round trip (srv
	// crashed before completing it) the client quarantines srv and
	// re-runs server selection, up to DefaultAccessRetries times.
	dispatch := func(idx, client, srv, attempt int, start sim.Time, service, pollDur sim.Duration) {
		res.Messages.Dispatches++
		servers[srv].committed++
		if outstanding != nil {
			outstanding[client][srv]++
		}
		settle := func() {
			servers[srv].committed--
			if outstanding != nil {
				outstanding[client][srv]--
			}
		}
		eng.After(cfg.ServiceNetDelay, func() {
			servers[srv].arrive(job{
				service: service,
				done: func() {
					eng.After(cfg.ServiceNetDelay, func() {
						settle()
						completed++
						if idx >= warmup {
							res.Response.Add(eng.Now().Sub(start).Seconds())
							if cfg.Policy.Kind == core.Poll {
								res.PollTime.Add(pollDur.Seconds())
							}
						}
						finish()
					})
				},
				fail: func() {
					// The client sees the connection break a net delay
					// later, quarantines the server, and retries.
					eng.After(cfg.ServiceNetDelay, func() {
						settle()
						quarantine(client, srv)
						if attempt >= faults.DefaultAccessRetries {
							lost++
							finish()
							return
						}
						res.Retries++
						eng.After(backoff(attempt), func() {
							handle(idx, client, attempt+1, start, service)
						})
					})
				},
			})
		})
	}

	pollScratch := make([]int, cfg.Servers)
	pollDst := make([]int, cfg.Servers)

	// pollRound runs one poll round over cands and either dispatches or
	// (after DefaultPollRetries silent rounds) falls back to random.
	var pollRound func(idx, client, attempt, round int, cands []int, start sim.Time, service sim.Duration)
	pollRound = func(idx, client, attempt, round int, cands []int, start sim.Time, service sim.Duration) {
		roundStart := eng.Now()
		set := core.PollSet(policyRNG, len(cands), cfg.Policy.PollSize, pollDst, pollScratch)
		polled := make([]int, len(set))
		for i, ci := range set {
			polled[i] = cands[ci]
		}
		res.Messages.PollRequests += int64(len(polled))

		deadline := roundStart.Add(DefaultPollTimeout)
		if da := cfg.Policy.DiscardAfter; da > 0 {
			if dl := roundStart.Add(sim.FromSeconds(da.Seconds())); dl < deadline {
				deadline = dl
			}
		}

		responses := make([]core.PollResponse, 0, len(polled))
		answered := make(map[int]bool, len(polled))

		// decide closes the round — either when the last answer arrives
		// (the client has all it asked for) or at the deadline, whichever
		// comes first.
		decided := false
		decide := func() {
			if decided {
				return
			}
			decided = true
			res.Messages.PollsDiscarded += int64(len(polled) - len(responses))
			for _, srv := range polled {
				if answered[srv] {
					noteAnswered(client, srv)
				} else {
					noteSilent(client, srv)
				}
			}
			pollDur := eng.Now().Sub(start)
			if len(responses) > 0 {
				srv := core.PickFromPolls(policyRNG, responses, polled)
				dispatch(idx, client, srv, attempt, start, service, pollDur)
				return
			}
			if round >= faults.DefaultPollRetries {
				// Every round was silence: random fallback among the
				// servers still believed live (or all, if none).
				fresh := candidates(client)
				var srv int
				if fresh == nil {
					srv = policyRNG.Intn(cfg.Servers)
				} else {
					srv = fresh[policyRNG.Intn(len(fresh))]
				}
				dispatch(idx, client, srv, attempt, start, service, pollDur)
				return
			}
			res.Retries++
			eng.After(backoff(round), func() {
				fresh := candidates(client)
				if fresh == nil {
					dispatch(idx, client, policyRNG.Intn(cfg.Servers), attempt, start, service, eng.Now().Sub(start))
					return
				}
				pollRound(idx, client, attempt, round+1, fresh, start, service)
			})
		}

		for _, srv := range polled {
			srv := srv
			drop, extra := linkFault(client, srv)
			if drop {
				continue // lost datagram: pure silence until the deadline
			}
			rtt := cfg.PollRTT + extra
			if cfg.PollJitter != nil {
				rtt += sim.FromSeconds(cfg.PollJitter.Sample(jitterRNG))
			}
			respAt := roundStart.Add(rtt)
			if respAt > deadline {
				continue // answer would arrive too late; discarded
			}
			// The inquiry reaches the server halfway through the round
			// trip; a crashed or stalled server never answers it. A live
			// server's load is observed there, and the answer lands back
			// at the client at respAt.
			obsAt := respAt.Add(-sim.Duration((respAt.Sub(roundStart)) / 2))
			eng.At(obsAt, func() {
				s := servers[srv]
				if s.down || s.paused {
					return
				}
				load := s.active
				eng.At(respAt, func() {
					if decided {
						return // late answer; the agent already discarded it
					}
					responses = append(responses, core.PollResponse{Server: srv, Load: load})
					answered[srv] = true
					res.Messages.PollResponses++
					if len(responses) == len(polled) {
						decide()
					}
				})
			})
		}

		eng.At(deadline, decide)
	}

	handle = func(idx, client, attempt int, start sim.Time, service sim.Duration) {
		cands := candidates(client)
		pickFrom := cands
		if pickFrom == nil {
			// Everything quarantined: the full table is all there is.
			pickFrom = make([]int, cfg.Servers)
			for i := range pickFrom {
				pickFrom[i] = i
			}
		}
		switch cfg.Policy.Kind {
		case core.Random:
			dispatch(idx, client, pickFrom[policyRNG.Intn(len(pickFrom))], attempt, start, service, 0)

		case core.RoundRobin:
			dispatch(idx, client, pickFrom[rrs[client].Next(len(pickFrom))], attempt, start, service, 0)

		case core.Ideal:
			// The omniscient oracle routes around dead and stalled
			// servers directly; quarantine is the clients' crutch, not
			// the oracle's.
			best, bestLoad := -1, 0
			ties := 0
			for i, s := range servers {
				if s.down || s.paused {
					continue
				}
				switch {
				case best == -1 || s.committed < bestLoad:
					best, bestLoad, ties = i, s.committed, 1
				case s.committed == bestLoad:
					// Reservoir tie-break, matching core.PickLeast.
					ties++
					if policyRNG.Intn(ties) == 0 {
						best = i
					}
				}
			}
			if best == -1 {
				best = pickFrom[policyRNG.Intn(len(pickFrom))]
			}
			dispatch(idx, client, best, attempt, start, service, 0)

		case core.LocalLeast:
			loads := make([]int, len(pickFrom))
			for i, srv := range pickFrom {
				loads[i] = outstanding[client][srv]
			}
			dispatch(idx, client, pickFrom[core.PickLeast(policyRNG, loads)], attempt, start, service, 0)

		case core.Poll:
			if cands == nil {
				// All quarantined: skip the pointless poll, go random.
				dispatch(idx, client, policyRNG.Intn(cfg.Servers), attempt, start, service, 0)
				return
			}
			pollRound(idx, client, attempt, 0, cands, start, service)
		}
	}

	// Generate arrivals exactly as the healthy runner does.
	stream := cfg.Workload.Stream(arrivalRNG.Uint64())
	for i := 0; i < cfg.Accesses; i++ {
		a := stream.Next()
		i, client := i, i%cfg.Clients
		eng.At(sim.Time(sim.FromSeconds(a.Arrival)), func() {
			handle(i, client, 0, eng.Now(), sim.FromSeconds(a.Service))
		})
	}

	eng.Run()

	end := eng.Now().Seconds()
	res.SimDuration = end
	res.ServerUtilization = make([]float64, cfg.Servers)
	var qsum float64
	for i, s := range servers {
		if end > 0 {
			res.ServerUtilization[i] = s.busyTime.Seconds() / end
		}
		qsum += s.qavg.Finish(end)
		if cfg.RecordQueueSeries {
			res.QueueSeries = append(res.QueueSeries, s.series)
		}
	}
	res.MeanQueueLength = qsum / float64(cfg.Servers)
	// Accesses stranded on a paused-forever server drain no events, so
	// the engine exits with them still frozen; they are lost too.
	res.Lost = int64(cfg.Accesses - completed)
	return res, nil
}
