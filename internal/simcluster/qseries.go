package simcluster

import (
	"sort"

	"finelb/internal/stats"
)

// QSeries is a piecewise-constant queue-length time series: the load
// index of one server as a step function of simulated time. Figure 2
// samples it at pairs of times (t, t+delta) to measure load-index
// inaccuracy.
type QSeries struct {
	times []float64 // change instants, non-decreasing
	vals  []int     // value from times[i] (inclusive) onward
}

// record appends a change point. Repeated timestamps keep the latest
// value, which is what a step function observed "just after" t means.
func (s *QSeries) record(t float64, v int) {
	if n := len(s.times); n > 0 && s.times[n-1] == t {
		s.vals[n-1] = v
		return
	}
	s.times = append(s.times, t)
	s.vals = append(s.vals, v)
}

// Len returns the number of change points.
func (s *QSeries) Len() int { return len(s.times) }

// End returns the time of the last change point (0 when empty).
func (s *QSeries) End() float64 {
	if len(s.times) == 0 {
		return 0
	}
	return s.times[len(s.times)-1]
}

// At returns the queue length at time t: the value of the last change
// point at or before t, or 0 before the first point.
func (s *QSeries) At(t float64) int {
	idx := sort.SearchFloat64s(s.times, t)
	// idx is the first point > t... SearchFloat64s returns first >= t;
	// adjust so exact hits are included.
	if idx < len(s.times) && s.times[idx] == t {
		return s.vals[idx]
	}
	if idx == 0 {
		return 0
	}
	return s.vals[idx-1]
}

// Inaccuracy returns the statistical mean of |Q(t) - Q(t+delay)| over
// sample times t spaced `step` apart within [from, to-delay]. This is
// the paper's load-index inaccuracy metric for a dissemination delay
// (§2.1). It returns 0 when the window admits no samples.
func (s *QSeries) Inaccuracy(delay, from, to, step float64) float64 {
	if step <= 0 || delay < 0 {
		panic("simcluster: Inaccuracy requires step > 0 and delay >= 0")
	}
	sum := stats.NewSummary(false)
	for t := from; t+delay <= to; t += step {
		d := s.At(t) - s.At(t+delay)
		if d < 0 {
			d = -d
		}
		sum.Add(float64(d))
	}
	return sum.Mean()
}

// TimeAverage returns the time-weighted mean queue length over
// [from, to].
func (s *QSeries) TimeAverage(from, to float64) float64 {
	if to <= from {
		return 0
	}
	var tw stats.TimeWeighted
	tw.Set(from, float64(s.At(from)))
	i := sort.SearchFloat64s(s.times, from)
	for ; i < len(s.times) && s.times[i] <= to; i++ {
		if s.times[i] > from {
			tw.Set(s.times[i], float64(s.vals[i]))
		}
	}
	return tw.Finish(to)
}
