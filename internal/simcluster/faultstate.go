package simcluster

import (
	"finelb/internal/faults"
	"finelb/internal/sim"
	"finelb/internal/stats"
)

// clientFaults is the failure-detector state of a faulted run,
// mirroring the prototype client's serverHealth: per-client per-server
// quarantine fed by consecutive silent polls, link-fault decisions, and
// jittered retry backoff. Run allocates it only when the schedule is
// active, so healthy runs carry none of it.
//
// All fault decisions (link loss, backoff jitter) draw from a stream
// derived from the schedule's own seed, so the same Schedule and the
// same Config.Seed replay the exact same run.
type clientFaults struct {
	eng     *sim.Engine
	sched   *faults.Schedule
	rng     *stats.RNG // link-loss draws and backoff jitter
	servers int

	quarUntil [][]sim.Time // per client, per server
	strikes   [][]int
	quarFor   sim.Duration

	// onQuarantine, when set, observes every quarantine decision
	// (metrics/trace hook; it must not mutate fault state).
	onQuarantine func(client, srv int)
}

func newClientFaults(eng *sim.Engine, sched *faults.Schedule, clients, servers int) *clientFaults {
	f := &clientFaults{
		eng:     eng,
		sched:   sched,
		rng:     stats.NewRNG(sched.Seed ^ 0x5eedfa017bad5eed),
		servers: servers,
		quarFor: sim.FromSeconds(faults.DefaultQuarantineFor.Seconds()),
	}
	f.quarUntil = make([][]sim.Time, clients)
	f.strikes = make([][]int, clients)
	for i := range f.quarUntil {
		f.quarUntil[i] = make([]sim.Time, servers)
		f.strikes[i] = make([]int, servers)
	}
	return f
}

func (f *clientFaults) quarantine(client, srv int) {
	f.strikes[client][srv] = 0
	f.quarUntil[client][srv] = f.eng.Now().Add(f.quarFor)
	if f.onQuarantine != nil {
		f.onQuarantine(client, srv)
	}
}

// noteSilent records one unanswered inquiry; enough consecutive
// silences put the server on the client's quarantine list.
func (f *clientFaults) noteSilent(client, srv int) {
	f.strikes[client][srv]++
	if f.strikes[client][srv] >= faults.DefaultQuarantineAfter {
		f.quarantine(client, srv)
	}
}

func (f *clientFaults) noteAnswered(client, srv int) {
	f.strikes[client][srv] = 0
	f.quarUntil[client][srv] = 0
}

// candidates returns the servers this client has not quarantined, or
// nil when it has quarantined everything.
func (f *clientFaults) candidates(client int) []int {
	now := f.eng.Now()
	out := make([]int, 0, f.servers)
	for srv := 0; srv < f.servers; srv++ {
		if now < f.quarUntil[client][srv] {
			continue
		}
		out = append(out, srv)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// pollFault decides the fate of one inquiry on the client→srv link.
func (f *clientFaults) pollFault(client, srv int) (drop bool, delay sim.Duration) {
	rule, ok := f.sched.Rule(client, srv)
	if !ok {
		return false, 0
	}
	if rule.Loss > 0 && f.rng.Float64() < rule.Loss {
		return true, 0
	}
	return false, sim.FromSeconds(rule.Latency.Seconds())
}

// backoff returns the jittered wait before retry number attempt.
func (f *clientFaults) backoff(attempt int) sim.Duration {
	base := faults.Backoff(faults.DefaultRetryBackoff, attempt)
	jitter := 0.5 + f.rng.Float64()
	return sim.FromSeconds(base.Seconds() * jitter)
}
