package simcluster

import (
	"reflect"
	"strings"
	"testing"

	"finelb/internal/core"
	"finelb/internal/workload"
)

func TestParseSpeedFactors(t *testing.T) {
	cases := []struct {
		in      string
		want    []float64
		wantErr string
	}{
		{in: "", want: nil},
		{in: "   ", want: nil},
		{in: "1.5", want: []float64{1.5}},
		{in: "2x3", want: []float64{3, 3}},
		{in: "4x3.25,12x0.25", want: append([]float64{3.25, 3.25, 3.25, 3.25},
			0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25, 0.25)},
		{in: " 1 , 2x0.5 ", want: []float64{1, 0.5, 0.5}},
		{in: "1,,2", wantErr: "empty group 1"},
		{in: "0x2", wantErr: `bad count "0"`},
		{in: "axb", wantErr: `bad count "a"`},
		{in: "2xq", wantErr: `bad factor "q"`},
		{in: "1,-2", wantErr: "speed factor 1 = -2"},
		{in: "3x0", wantErr: "speed factor 0 = 0"},
	}
	for _, c := range cases {
		got, err := ParseSpeedFactors(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseSpeedFactors(%q) err = %v, want containing %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpeedFactors(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseSpeedFactors(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestParseSpeedFactorsFeedsConfig ties the grammar to Config
// validation: a parsed slice of the wrong length is rejected with the
// same message a hand-built one is.
func TestParseSpeedFactorsFeedsConfig(t *testing.T) {
	sf, err := ParseSpeedFactors("4x3.25,12x0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(sf) != 16 {
		t.Fatalf("expanded to %d factors, want 16", len(sf))
	}
	w := workload.PoissonExp(0.05).ScaledTo(8, 0.5)
	cfg := Config{Servers: 8, Workload: w, Policy: core.NewRandom(), Accesses: 10, SpeedFactors: sf}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "16 speed factors for 8 servers") {
		t.Fatalf("mismatched factors error = %v", err)
	}
}
