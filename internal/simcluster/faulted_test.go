package simcluster

import (
	"testing"
	"time"

	"finelb/internal/core"
	"finelb/internal/faults"
	"finelb/internal/workload"
)

// degradedSchedule kills 2 of n servers partway through a run with 5%
// poll loss everywhere — the canned degraded-mode scenario.
func degradedSchedule(n int, at time.Duration) *faults.Schedule {
	return faults.DegradedDemo(n, 2, at, 0.05, 99)
}

func TestFaultedRejectsBroadcast(t *testing.T) {
	w := workload.PoissonExp(0.05).ScaledTo(4, 0.5)
	_, err := Run(Config{
		Servers: 4, Workload: w,
		Policy: core.NewBroadcast(100 * time.Millisecond),
		Faults: &faults.Schedule{},
	})
	if err == nil {
		t.Fatal("Broadcast with Faults accepted")
	}
}

func TestFaultedCrashCompletesAndRedistributes(t *testing.T) {
	w := workload.PoissonExp(0.05).ScaledTo(8, 0.5)
	res := run(t, Config{
		Servers: 8, Workload: w,
		Policy:   core.NewPollDiscard(2, 10*time.Millisecond),
		Accesses: 20000, Seed: 11,
		Faults: degradedSchedule(8, 10*time.Second),
	})
	if res.Lost != 0 {
		t.Fatalf("lost %d accesses; quarantine+retry should save them all", res.Lost)
	}
	if res.Retries == 0 {
		t.Fatal("a crash run must record retries")
	}
	// The dead servers stop serving; the survivors absorb the load and
	// the run still terminates with every access accounted for.
	if res.ServerUtilization[0] >= res.ServerUtilization[7] {
		t.Fatalf("crashed server 0 busier than surviving server 7: %.3f vs %.3f",
			res.ServerUtilization[0], res.ServerUtilization[7])
	}
}

func TestFaultedDeterminism(t *testing.T) {
	w := workload.PoissonExp(0.05).ScaledTo(8, 0.5)
	cfg := Config{
		Servers: 8, Workload: w,
		Policy:   core.NewPollDiscard(2, 10*time.Millisecond),
		Accesses: 8000, Seed: 12,
		Faults: degradedSchedule(8, 5*time.Second),
	}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.Response.Mean() != b.Response.Mean() ||
		a.Lost != b.Lost || a.Retries != b.Retries ||
		a.Messages != b.Messages {
		t.Fatalf("same schedule + seed diverged:\n%+v\n%+v", a.Messages, b.Messages)
	}
	// A different fault seed must actually change the fault draws.
	cfg.Faults = faults.DegradedDemo(8, 2, 5*time.Second, 0.05, 100)
	c := run(t, cfg)
	if a.Messages == c.Messages {
		t.Fatal("different fault seed produced identical message counts")
	}
}

func TestFaultedPauseResumeLosesNothing(t *testing.T) {
	w := workload.PoissonExp(0.05).ScaledTo(4, 0.5)
	res := run(t, Config{
		Servers: 4, Workload: w,
		Policy:   core.NewPollDiscard(2, 10*time.Millisecond),
		Accesses: 10000, Seed: 13,
		Faults: &faults.Schedule{
			Seed: 5,
			Events: []faults.NodeEvent{
				{At: 5 * time.Second, Node: 0, Kind: faults.Pause},
				{At: 8 * time.Second, Node: 0, Kind: faults.Resume},
			},
		},
	})
	// A pause stalls work but breaks no connections: everything queued
	// on the paused server completes after resume.
	if res.Lost != 0 {
		t.Fatalf("pause/resume lost %d accesses", res.Lost)
	}
}

func TestFaultedTotalPollLossStillCompletes(t *testing.T) {
	w := workload.PoissonExp(0.05).ScaledTo(4, 0.4)
	res := run(t, Config{
		Servers: 4, Workload: w,
		Policy:   core.NewPollDiscard(2, 10*time.Millisecond),
		Accesses: 3000, Seed: 14,
		Faults: &faults.Schedule{
			Seed:  6,
			Links: []faults.LinkRule{{Client: -1, Server: -1, Loss: 1.0}},
		},
	})
	if res.Messages.PollResponses != 0 {
		t.Fatalf("total loss yet %d poll answers", res.Messages.PollResponses)
	}
	// Every access still dispatches via the random fallback.
	if res.Lost != 0 {
		t.Fatalf("lost %d accesses under pure poll loss (service path is healthy)", res.Lost)
	}
	if res.Response.N() == 0 {
		t.Fatal("no responses recorded")
	}
}

func TestFaultedLinkLatencyDiscards(t *testing.T) {
	// 20ms extra one-way latency pushes every answer past a 10ms
	// discard threshold: all polls discard, accesses fall back.
	w := workload.PoissonExp(0.05).ScaledTo(4, 0.4)
	res := run(t, Config{
		Servers: 4, Workload: w,
		Policy:   core.NewPollDiscard(2, 10*time.Millisecond),
		Accesses: 2000, Seed: 15,
		Faults: &faults.Schedule{
			Seed:  7,
			Links: []faults.LinkRule{{Client: -1, Server: -1, Latency: 20 * time.Millisecond}},
		},
	})
	if res.Messages.PollResponses != 0 {
		t.Fatalf("delayed answers should all miss the deadline, got %d", res.Messages.PollResponses)
	}
	if res.Lost != 0 {
		t.Fatalf("lost %d accesses", res.Lost)
	}
}

func TestEmptyScheduleBitIdenticalToHealthy(t *testing.T) {
	// An inert schedule (no events, no links) takes the healthy fast
	// path: with the unified runner the results are not merely close but
	// bit-identical, draw for draw.
	w := workload.PoissonExp(0.05).ScaledTo(8, 0.6)
	healthy := run(t, Config{
		Servers: 8, Workload: w,
		Policy:   core.NewPollDiscard(3, 10*time.Millisecond),
		Accesses: 20000, Seed: 16,
	})
	faulted := run(t, Config{
		Servers: 8, Workload: w,
		Policy:   core.NewPollDiscard(3, 10*time.Millisecond),
		Accesses: 20000, Seed: 16,
		Faults: &faults.Schedule{Seed: 1},
	})
	if faulted.Lost != 0 || faulted.Retries != 0 {
		t.Fatalf("empty schedule caused lost=%d retries=%d", faulted.Lost, faulted.Retries)
	}
	if healthy.MeanResponse() != faulted.MeanResponse() ||
		healthy.Response.Percentile(0.99) != faulted.Response.Percentile(0.99) ||
		healthy.Messages != faulted.Messages ||
		healthy.MeanQueueLength != faulted.MeanQueueLength ||
		healthy.SimDuration != faulted.SimDuration {
		t.Fatalf("empty-schedule run diverged from healthy:\n%+v\nvs\n%+v",
			faulted.Messages, healthy.Messages)
	}
}
