package simcluster

import (
	"math"
	"testing"
	"time"

	"finelb/internal/core"
	"finelb/internal/queueing"
	"finelb/internal/stats"
	"finelb/internal/workload"
)

// run is a test helper with noise-reducing defaults.
func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	w := workload.PoissonExp(0.05).ScaledTo(1, 0.5)
	bad := []Config{
		{},           // no servers
		{Servers: 1}, // no workload
		{Servers: 1, Workload: w, Policy: core.Policy{Kind: core.Poll}},      // poll size 0
		{Servers: 1, Workload: w, Policy: core.NewRandom(), Clients: -1},     // negative clients
		{Servers: 1, Workload: w, Policy: core.NewRandom(), Accesses: -5},    // negative accesses
		{Servers: 1, Workload: w, Policy: core.NewRandom(), WarmupFrac: 1.5}, // bad warmup
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestSingleServerMatchesMM1(t *testing.T) {
	// One server fed with Poisson/Exp at rho: mean response must match
	// s/(1-rho) plus the two network hops.
	for _, rho := range []float64{0.5, 0.8} {
		const s = 0.05
		w := workload.PoissonExp(s).ScaledTo(1, rho)
		res := run(t, Config{
			Servers: 1, Workload: w, Policy: core.NewRandom(),
			Accesses: 60000, Seed: 1,
		})
		want := queueing.MM1MeanResponse(s, rho) + 2*DefaultServiceNetDelay.Seconds()
		got := res.MeanResponse()
		if math.Abs(got-want)/want > 0.08 {
			t.Errorf("rho=%v: mean response %.4f, want ~%.4f", rho, got, want)
		}
		if u := res.MeanUtilization(); math.Abs(u-rho) > 0.05 {
			t.Errorf("rho=%v: utilization %.3f", rho, u)
		}
		// Little's law cross-check on the queue length.
		wantQ := queueing.MM1MeanQueueLength(rho)
		if math.Abs(res.MeanQueueLength-wantQ)/wantQ > 0.15 {
			t.Errorf("rho=%v: mean queue %.3f, want ~%.3f", rho, res.MeanQueueLength, wantQ)
		}
	}
}

func TestRandomEqualsMM1On16Servers(t *testing.T) {
	// Random splitting of a Poisson stream keeps each server M/M/1, so
	// random on 16 servers equals one M/M/1 at the same utilization.
	const s, rho = 0.05, 0.7
	w := workload.PoissonExp(s).ScaledTo(16, rho)
	res := run(t, Config{
		Servers: 16, Workload: w, Policy: core.NewRandom(),
		Accesses: 120000, Seed: 2,
	})
	want := queueing.MM1MeanResponse(s, rho) + 2*DefaultServiceNetDelay.Seconds()
	if got := res.MeanResponse(); math.Abs(got-want)/want > 0.08 {
		t.Errorf("mean response %.4f, want ~%.4f", got, want)
	}
}

func TestPollBeatsRandomAndIdealBeatsPoll(t *testing.T) {
	// The paper's Figure 4 ordering at 90%: random >> poll2 >= poll3 >=
	// ideal (sim-world, where polls cost one constant RTT).
	const s, rho = 0.05, 0.9
	w := workload.PoissonExp(s).ScaledTo(16, rho)
	mean := func(p core.Policy, seed uint64) float64 {
		return run(t, Config{
			Servers: 16, Workload: w, Policy: p, Accesses: 120000, Seed: seed,
		}).MeanResponse()
	}
	random := mean(core.NewRandom(), 3)
	poll2 := mean(core.NewPoll(2), 3)
	poll8 := mean(core.NewPoll(8), 3)
	ideal := mean(core.NewIdeal(), 3)
	if poll2 >= random/2 {
		t.Errorf("poll2 (%.4f) not dramatically better than random (%.4f)", poll2, random)
	}
	if poll8 > poll2*1.1 {
		t.Errorf("in simulation poll8 (%.4f) should not degrade vs poll2 (%.4f)", poll8, poll2)
	}
	if ideal > poll2*1.05 {
		t.Errorf("ideal (%.4f) worse than poll2 (%.4f)", ideal, poll2)
	}
	// Poll-2's mean queue should track Mitzenmacher's asymptotic model
	// loosely (finite N, latencies, so allow generous tolerance).
	wantQ := queueing.PowerOfDMeanQueue(rho, 2)
	res := run(t, Config{Servers: 16, Workload: w, Policy: core.NewPoll(2), Accesses: 120000, Seed: 4})
	if math.Abs(res.MeanQueueLength-wantQ)/wantQ > 0.5 {
		t.Errorf("poll2 mean queue %.3f vs supermarket model %.3f", res.MeanQueueLength, wantQ)
	}
}

func TestRoundRobinBetweenRandomAndIdeal(t *testing.T) {
	const s, rho = 0.05, 0.8
	w := workload.PoissonExp(s).ScaledTo(16, rho)
	mean := func(p core.Policy) float64 {
		return run(t, Config{Servers: 16, Workload: w, Policy: p, Accesses: 80000, Seed: 5}).MeanResponse()
	}
	random := mean(core.NewRandom())
	rr := mean(core.NewRoundRobin())
	ideal := mean(core.NewIdeal())
	if !(rr < random && rr > ideal) {
		t.Errorf("ordering violated: random=%.4f rr=%.4f ideal=%.4f", random, rr, ideal)
	}
}

func TestBroadcastIntervalSensitivity(t *testing.T) {
	// §2.2: at 90% busy, a 1 s mean broadcast interval is an order of
	// magnitude slower than a short interval for fine-grain work.
	const s, rho = 0.05, 0.9
	w := workload.PoissonExp(s).ScaledTo(16, rho)
	mean := func(interval time.Duration) float64 {
		return run(t, Config{
			Servers: 16, Workload: w, Policy: core.NewBroadcast(interval),
			Accesses: 60000, Seed: 6,
		}).MeanResponse()
	}
	fast := mean(5 * time.Millisecond)
	slow := mean(1 * time.Second)
	if slow < fast*3 {
		t.Errorf("slow broadcast (%.4f) not much worse than fast (%.4f)", slow, fast)
	}
}

func TestBroadcastLocalCorrectionHelps(t *testing.T) {
	// Ablation A1: local increment dampens flocking between broadcasts.
	const s, rho = 0.05, 0.9
	w := workload.PoissonExp(s).ScaledTo(16, rho)
	base := core.NewBroadcast(200 * time.Millisecond)
	corrected := base
	corrected.LocalCorrection = true
	plain := run(t, Config{Servers: 16, Workload: w, Policy: base, Accesses: 60000, Seed: 7}).MeanResponse()
	fixed := run(t, Config{Servers: 16, Workload: w, Policy: corrected, Accesses: 60000, Seed: 7}).MeanResponse()
	if fixed > plain {
		t.Errorf("local correction made broadcast worse: %.4f vs %.4f", fixed, plain)
	}
}

func TestMessageAccounting(t *testing.T) {
	const s, rho = 0.05, 0.5
	w := workload.PoissonExp(s).ScaledTo(16, rho)
	const n = 20000
	res := run(t, Config{Servers: 16, Workload: w, Policy: core.NewPoll(3), Accesses: n, Seed: 8})
	if res.Messages.PollRequests != 3*n {
		t.Errorf("poll requests %d, want %d", res.Messages.PollRequests, 3*n)
	}
	if res.Messages.PollResponses != 3*n {
		t.Errorf("poll responses %d, want %d", res.Messages.PollResponses, 3*n)
	}
	if res.Messages.Dispatches != n {
		t.Errorf("dispatches %d, want %d", res.Messages.Dispatches, n)
	}
	if res.Messages.PollsDiscarded != 0 {
		t.Errorf("unexpected discards %d", res.Messages.PollsDiscarded)
	}

	resB := run(t, Config{
		Servers: 16, Clients: 4, Workload: w,
		Policy: core.NewBroadcast(50 * time.Millisecond), Accesses: n, Seed: 9,
	})
	if resB.Messages.Broadcasts == 0 {
		t.Fatal("no broadcasts counted")
	}
	if got, want := resB.Messages.BroadcastDeliveries, resB.Messages.Broadcasts*4; got != want {
		t.Errorf("deliveries %d, want %d", got, want)
	}
}

func TestPollDiscardWithJitter(t *testing.T) {
	// With a heavy-tailed poll jitter and a tight discard threshold,
	// some polls must be discarded yet all accesses still complete.
	const s, rho = 0.0222, 0.9
	w := workload.PoissonExp(s).ScaledTo(16, rho)
	const n = 30000
	res := run(t, Config{
		Servers: 16, Workload: w,
		Policy:     core.NewPollDiscard(3, 2*time.Millisecond),
		PollJitter: stats.Pareto{Xm: 0.0001, Alpha: 1.2},
		Accesses:   n, Seed: 10,
	})
	if res.Messages.PollsDiscarded == 0 {
		t.Fatal("no polls discarded despite heavy jitter")
	}
	if res.Response.N() == 0 {
		t.Fatal("no responses recorded")
	}
	// Polling time is capped by the discard threshold.
	if maxPoll := res.PollTime.Max(); maxPoll > 0.0021 {
		t.Errorf("poll time %.5f exceeds discard threshold", maxPoll)
	}

	// Without discard, polling time is unbounded by the threshold.
	res2 := run(t, Config{
		Servers: 16, Workload: w, Policy: core.NewPoll(3),
		PollJitter: stats.Pareto{Xm: 0.0001, Alpha: 1.2},
		Accesses:   n, Seed: 10,
	})
	if res2.PollTime.Max() <= 0.0021 {
		t.Errorf("undiscarded poll max %.5f suspiciously small", res2.PollTime.Max())
	}
}

func TestDeterminism(t *testing.T) {
	const s, rho = 0.05, 0.9
	w := workload.PoissonExp(s).ScaledTo(16, rho)
	cfg := Config{Servers: 16, Workload: w, Policy: core.NewPoll(2), Accesses: 20000, Seed: 11}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.MeanResponse() != b.MeanResponse() {
		t.Fatalf("same seed diverged: %v vs %v", a.MeanResponse(), b.MeanResponse())
	}
	cfg.Seed = 12
	c := run(t, cfg)
	if a.MeanResponse() == c.MeanResponse() {
		t.Fatal("different seeds produced identical results")
	}
}

func TestQueueSeriesRecorded(t *testing.T) {
	const s, rho = 0.05, 0.9
	w := workload.PoissonExp(s).ScaledTo(1, rho)
	res := run(t, Config{
		Servers: 1, Workload: w, Policy: core.NewRandom(),
		Accesses: 30000, Seed: 13, RecordQueueSeries: true,
	})
	if len(res.QueueSeries) != 1 {
		t.Fatalf("series count %d", len(res.QueueSeries))
	}
	qs := res.QueueSeries[0]
	if qs.Len() < 30000 {
		t.Fatalf("series too short: %d points", qs.Len())
	}
	// The series' time average must agree with the tracked mean queue.
	avg := qs.TimeAverage(0, res.SimDuration)
	if math.Abs(avg-res.MeanQueueLength) > 0.02*math.Max(1, res.MeanQueueLength) {
		t.Fatalf("series average %.4f vs tracked %.4f", avg, res.MeanQueueLength)
	}
}

func TestStalenessInaccuracyBelowEquation1(t *testing.T) {
	// Figure 2 / Eq. 1: measured inaccuracy approaches but does not
	// exceed the closed-form bound for Poisson/Exp.
	const s, rho = 0.05, 0.9
	w := workload.PoissonExp(s).ScaledTo(1, rho)
	res := run(t, Config{
		Servers: 1, Workload: w, Policy: core.NewRandom(),
		Accesses: 150000, Seed: 14, RecordQueueSeries: true,
	})
	qs := res.QueueSeries[0]
	bound := queueing.StalenessUpperBound(rho)
	warm := res.SimDuration * 0.1
	small := qs.Inaccuracy(0.1*s, warm, res.SimDuration, s)
	large := qs.Inaccuracy(100*s, warm, res.SimDuration, s)
	if small > large {
		t.Errorf("inaccuracy not increasing: %.3f (small delay) > %.3f (large delay)", small, large)
	}
	if large > bound*1.15 {
		t.Errorf("inaccuracy %.3f exceeds Eq.1 bound %.3f", large, bound)
	}
	if large < bound*0.5 {
		t.Errorf("inaccuracy %.3f far below bound %.3f — not converging", large, bound)
	}
}

func TestFineGrainTraceRuns(t *testing.T) {
	w := workload.FineGrain().ScaledTo(16, 0.9)
	res := run(t, Config{Servers: 16, Workload: w, Policy: core.NewPoll(3), Accesses: 40000, Seed: 15})
	if res.Response.N() == 0 {
		t.Fatal("no responses")
	}
	// Bursty trace at 90%: response must exceed bare service + network.
	minPossible := workload.FineGrainServiceMean
	if res.MeanResponse() < minPossible {
		t.Fatalf("mean response %.5f below service time", res.MeanResponse())
	}
	if u := res.MeanUtilization(); math.Abs(u-0.9) > 0.12 {
		t.Errorf("utilization %.3f, want ~0.9", u)
	}
}

func TestWarmupExcluded(t *testing.T) {
	const s, rho = 0.05, 0.5
	w := workload.PoissonExp(s).ScaledTo(4, rho)
	const n = 10000
	res := run(t, Config{Servers: 4, Workload: w, Policy: core.NewRandom(), Accesses: n, Seed: 16, WarmupFrac: 0.25})
	if got := res.Response.N(); got != int64(n-n/4) {
		t.Fatalf("post-warmup responses %d, want %d", got, n-n/4)
	}
}

func TestDescribe(t *testing.T) {
	w := workload.PoissonExp(0.05).ScaledTo(2, 0.5)
	res := run(t, Config{Servers: 2, Workload: w, Policy: core.NewRandom(), Accesses: 2000, Seed: 17})
	if s := res.Describe(); s == "" {
		t.Fatal("empty description")
	}
}

func TestLocalLeastBetweenRandomAndIdeal(t *testing.T) {
	// Client-local least-connections beats random (it avoids its own
	// hot spots) but cannot reach IDEAL (it only sees 1/Clients of the
	// traffic).
	const s, rho = 0.05, 0.9
	w := workload.PoissonExp(s).ScaledTo(16, rho)
	mean := func(p core.Policy) float64 {
		return run(t, Config{Servers: 16, Workload: w, Policy: p, Accesses: 80000, Seed: 21}).MeanResponse()
	}
	random := mean(core.NewRandom())
	ll := mean(core.NewLocalLeast())
	ideal := mean(core.NewIdeal())
	if !(ll < random) {
		t.Errorf("least-conn %.4f not below random %.4f", ll, random)
	}
	if !(ll > ideal) {
		t.Errorf("least-conn %.4f not above ideal %.4f", ll, ideal)
	}
}

func TestLocalLeastSingleClientNearIdeal(t *testing.T) {
	// With exactly one client, local outstanding counts equal the
	// manager's view, so least-conn approximates IDEAL.
	const s, rho = 0.05, 0.9
	w := workload.PoissonExp(s).ScaledTo(16, rho)
	ll := run(t, Config{Servers: 16, Clients: 1, Workload: w, Policy: core.NewLocalLeast(), Accesses: 80000, Seed: 22}).MeanResponse()
	ideal := run(t, Config{Servers: 16, Clients: 1, Workload: w, Policy: core.NewIdeal(), Accesses: 80000, Seed: 22}).MeanResponse()
	if ll > ideal*1.25 {
		t.Errorf("single-client least-conn %.4f far above ideal %.4f", ll, ideal)
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	w := workload.PoissonExp(0.05).ScaledTo(2, 0.5)
	if _, err := Run(Config{Servers: 2, Workload: w, Policy: core.NewRandom(),
		SpeedFactors: []float64{1}}); err == nil {
		t.Error("wrong-length speed factors accepted")
	}
	if _, err := Run(Config{Servers: 2, Workload: w, Policy: core.NewRandom(),
		SpeedFactors: []float64{1, 0}}); err == nil {
		t.Error("zero speed factor accepted")
	}
}

func TestHeterogeneousPollAdaptsToSpeeds(t *testing.T) {
	// Half the servers run 3x faster. Queue-length polling steers load
	// toward the fast half automatically (their queues drain faster),
	// while random splits evenly and overloads the slow half.
	const s = 0.05
	speeds := make([]float64, 16)
	for i := range speeds {
		if i < 8 {
			speeds[i] = 3
		} else {
			speeds[i] = 1
		}
	}
	// Aggregate capacity = (8*3 + 8*1)/s; drive it at 80% of that.
	totalSpeed := 8*3.0 + 8*1.0
	w := workload.Workload{
		Name:    "het",
		Arrival: stats.Exponential{MeanValue: s / (0.8 * totalSpeed)},
		Service: stats.Exponential{MeanValue: s},
	}
	random, err := Run(Config{Servers: 16, Workload: w, Policy: core.NewRandom(),
		SpeedFactors: speeds, Accesses: 80000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	poll, err := Run(Config{Servers: 16, Workload: w, Policy: core.NewPoll(2),
		SpeedFactors: speeds, Accesses: 80000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	// Random at these rates drives slow servers to rho=1.6 (unstable);
	// polling must remain stable and far faster.
	if poll.MeanResponse() >= random.MeanResponse()/3 {
		t.Fatalf("poll2 (%.4f) not dramatically better than random (%.4f) on a heterogeneous cluster",
			poll.MeanResponse(), random.MeanResponse())
	}
	// Fast servers must have absorbed more work under polling.
	fastBusy := 0.0
	slowBusy := 0.0
	for i, u := range poll.ServerUtilization {
		if i < 8 {
			fastBusy += u
		} else {
			slowBusy += u
		}
	}
	// Utilization is busyTime/wall; a fast server at equal share would
	// sit at 1/3 the slow server's utilization. Polling should keep the
	// slow half from saturating.
	if slowBusy/8 > 0.999 {
		t.Fatalf("slow half saturated under polling: %.3f", slowBusy/8)
	}
}
