package simcluster

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"finelb/internal/core"
	"finelb/internal/workload"
)

// The golden-seed regression harness pins the healthy runner's exact
// output: digests of 3 seeds x 3 workloads were captured on the
// pre-unification healthy path (commit 81fd25e) and the fault-aware
// runner must reproduce them bit for bit. Regenerate deliberately with
//
//	go test ./internal/simcluster -run TestGoldenSeeds -update-golden
//
// only when an intentional model change is being made, and say so in
// the commit message.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current runner")

const goldenPath = "testdata/golden.json"

// goldenDigest is the full-precision fingerprint of one healthy run.
// Floats survive the JSON round trip exactly (shortest-round-trip
// encoding), so == comparisons below are bit-level.
type goldenDigest struct {
	Case string `json:"case"`
	Seed uint64 `json:"seed"`

	MeanResponse    float64      `json:"mean_response"`
	P50Response     float64      `json:"p50_response"`
	P95Response     float64      `json:"p95_response"`
	P99Response     float64      `json:"p99_response"`
	ResponseN       int64        `json:"response_n"`
	PollTimeMean    float64      `json:"poll_time_mean"`
	PollTimeN       int64        `json:"poll_time_n"`
	Messages        MessageCount `json:"messages"`
	Utilization     []float64    `json:"utilization"`
	MeanQueueLength float64      `json:"mean_queue_length"`
	SimDuration     float64      `json:"sim_duration"`
	Lost            int64        `json:"lost"`
	Retries         int64        `json:"retries"`
}

func digestOf(name string, seed uint64, res *Result) goldenDigest {
	return goldenDigest{
		Case:            name,
		Seed:            seed,
		MeanResponse:    res.Response.Mean(),
		P50Response:     res.Response.Percentile(0.50),
		P95Response:     res.Response.Percentile(0.95),
		P99Response:     res.Response.Percentile(0.99),
		ResponseN:       res.Response.N(),
		PollTimeMean:    res.PollTime.Mean(),
		PollTimeN:       res.PollTime.N(),
		Messages:        res.Messages,
		Utilization:     res.ServerUtilization,
		MeanQueueLength: res.MeanQueueLength,
		SimDuration:     res.SimDuration,
		Lost:            res.Lost,
		Retries:         res.Retries,
	}
}

// goldenCases covers the three evaluation workloads with the poll
// variants whose decision path the fault-aware unification touches most
// (plain polling, slow-poll discard, poll-all).
func goldenCases() []struct {
	name     string
	workload workload.Workload
	policy   core.Policy
} {
	return []struct {
		name     string
		workload workload.Workload
		policy   core.Policy
	}{
		{"poissonexp-poll2", workload.PoissonExp(workload.PoissonExpServiceMean).ScaledTo(16, 0.8), core.NewPoll(2)},
		{"mediumgrain-poll3discard", workload.MediumGrain().ScaledTo(16, 0.8), core.NewPollDiscard(3, 10*time.Millisecond)},
		{"finegrain-poll8", workload.FineGrain().ScaledTo(16, 0.8), core.NewPoll(8)},
	}
}

var goldenSeeds = []uint64{1, 2, 3}

func runGolden(t *testing.T) []goldenDigest {
	t.Helper()
	var out []goldenDigest
	for _, c := range goldenCases() {
		for _, seed := range goldenSeeds {
			res, err := Run(Config{
				Servers: 16, Workload: c.workload, Policy: c.policy,
				Accesses: 12000, Seed: seed,
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", c.name, seed, err)
			}
			out = append(out, digestOf(c.name, seed, res))
		}
	}
	return out
}

func TestGoldenSeeds(t *testing.T) {
	got := runGolden(t)
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d digests", goldenPath, len(got))
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden digests (run with -update-golden to capture): %v", err)
	}
	var want []goldenDigest
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d digests, harness produced %d", len(want), len(got))
	}
	for i, w := range want {
		g := got[i]
		if g.Case != w.Case || g.Seed != w.Seed {
			t.Fatalf("digest %d is %s/%d, want %s/%d (case list changed without -update-golden?)",
				i, g.Case, g.Seed, w.Case, w.Seed)
		}
		if g.MeanResponse != w.MeanResponse || g.P50Response != w.P50Response ||
			g.P95Response != w.P95Response || g.P99Response != w.P99Response ||
			g.ResponseN != w.ResponseN ||
			g.PollTimeMean != w.PollTimeMean || g.PollTimeN != w.PollTimeN ||
			g.Messages != w.Messages ||
			g.MeanQueueLength != w.MeanQueueLength || g.SimDuration != w.SimDuration ||
			g.Lost != w.Lost || g.Retries != w.Retries {
			t.Errorf("%s seed %d: healthy run is no longer bit-identical\n got %+v\nwant %+v",
				w.Case, w.Seed, g, w)
			continue
		}
		if len(g.Utilization) != len(w.Utilization) {
			t.Errorf("%s seed %d: utilization length %d vs %d", w.Case, w.Seed, len(g.Utilization), len(w.Utilization))
			continue
		}
		for s := range g.Utilization {
			if g.Utilization[s] != w.Utilization[s] {
				t.Errorf("%s seed %d: server %d utilization %v, want %v",
					w.Case, w.Seed, s, g.Utilization[s], w.Utilization[s])
			}
		}
	}
}
