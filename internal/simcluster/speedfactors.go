package simcluster

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpeedFactors parses the -speed-factors CLI grammar into a
// Config.SpeedFactors slice: comma-separated groups, each either a bare
// factor ("1.5") or a count and factor joined by 'x' ("4x3.25"), so
// "4x3.25,12x0.25" expands to 16 entries. An empty string means a
// homogeneous cluster (nil factors). Factors must be positive; the
// length check against Servers stays in Config validation, where the
// pool size is known.
func ParseSpeedFactors(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for i, group := range strings.Split(s, ",") {
		g := strings.TrimSpace(group)
		if g == "" {
			return nil, fmt.Errorf("simcluster: speed factors %q: empty group %d", s, i)
		}
		count, spec := 1, g
		if cs, fs, ok := strings.Cut(g, "x"); ok {
			n, err := strconv.Atoi(strings.TrimSpace(cs))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("simcluster: speed factors %q: bad count %q in group %d", s, strings.TrimSpace(cs), i)
			}
			count, spec = n, strings.TrimSpace(fs)
		}
		f, err := strconv.ParseFloat(spec, 64)
		if err != nil {
			return nil, fmt.Errorf("simcluster: speed factors %q: bad factor %q in group %d", s, spec, i)
		}
		if f <= 0 {
			return nil, fmt.Errorf("simcluster: speed factor %d = %v", len(out), f)
		}
		for j := 0; j < count; j++ {
			out = append(out, f)
		}
	}
	return out, nil
}
