package simcluster

import (
	"strings"
	"testing"
	"time"

	"finelb/internal/core"
	"finelb/internal/faults"
	"finelb/internal/membership"
	"finelb/internal/obs"
	"finelb/internal/workload"
)

func elasticWorkload(servers int, rho float64) workload.Workload {
	return workload.PoissonExp(0.05).ScaledTo(servers, rho)
}

// TestElasticInertScheduleBitIdentical is the refactor's core safety
// property in explicit form (the golden harness pins it against
// committed digests; this pins it against a same-process baseline):
// an empty membership schedule and no schedule at all produce the same
// run, draw for draw and event for event.
func TestElasticInertScheduleBitIdentical(t *testing.T) {
	w := elasticWorkload(8, 0.7)
	for _, pol := range []core.Policy{core.NewRandom(), core.NewIdeal(), core.NewPoll(2)} {
		base, err := Run(Config{Servers: 8, Workload: w, Policy: pol, Accesses: 4000, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		inert, err := Run(Config{
			Servers: 8, Workload: w, Policy: pol, Accesses: 4000, Seed: 11,
			Membership: &membership.Schedule{},
			Autoscaler: &membership.AutoscalerConfig{},
		})
		if err != nil {
			t.Fatal(err)
		}
		if base.Response.Mean() != inert.Response.Mean() ||
			base.Response.Percentile(0.99) != inert.Response.Percentile(0.99) {
			t.Errorf("%v: inert membership changed response stats", pol)
		}
		if base.EventsFired != inert.EventsFired {
			t.Errorf("%v: EventsFired %d vs %d with inert membership", pol, base.EventsFired, inert.EventsFired)
		}
		if base.Messages != inert.Messages {
			t.Errorf("%v: message counts diverged with inert membership", pol)
		}
		if inert.FinalPool != 8 || inert.PeakPool != 8 || inert.Joins+inert.Drains+inert.Leaves != 0 {
			t.Errorf("%v: inert run reports churn: %+v", pol, inert)
		}
	}
}

// TestElasticJoinGrowsPool: scheduled joins grow the pool past Servers
// and the new servers actually receive work under every elastic policy.
func TestElasticJoinGrowsPool(t *testing.T) {
	for _, pol := range []core.Policy{
		core.NewRandom(), core.NewRoundRobin(), core.NewIdeal(), core.NewLocalLeast(), core.NewPoll(2),
	} {
		t.Run(pol.String(), func(t *testing.T) {
			sched := &membership.Schedule{Events: []membership.Event{
				{At: 10 * time.Millisecond, Node: 4, Kind: membership.Join},
				{At: 10 * time.Millisecond, Node: 5, Kind: membership.Join},
			}}
			res, err := Run(Config{
				Servers: 4, Workload: elasticWorkload(4, 0.8), Policy: pol,
				Accesses: 20000, Seed: 3, Membership: sched,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Joins != 2 || res.FinalPool != 6 || res.PeakPool != 6 {
				t.Fatalf("joins=%d final=%d peak=%d, want 2/6/6", res.Joins, res.FinalPool, res.PeakPool)
			}
			if len(res.ServerUtilization) != 6 {
				t.Fatalf("utilization over %d servers, want 6", len(res.ServerUtilization))
			}
			if res.ServerUtilization[4] == 0 || res.ServerUtilization[5] == 0 {
				t.Errorf("joined servers never utilized: %v", res.ServerUtilization)
			}
			if res.Lost != 0 {
				t.Errorf("lost %d accesses on a healthy elastic run", res.Lost)
			}
		})
	}
}

// TestElasticDrainStopsRouting: a server drained before any arrival
// receives no work at all, while the run completes losslessly on the
// remaining pool.
func TestElasticDrainStopsRouting(t *testing.T) {
	for _, pol := range []core.Policy{
		core.NewRandom(), core.NewRoundRobin(), core.NewIdeal(), core.NewLocalLeast(), core.NewPoll(2),
	} {
		t.Run(pol.String(), func(t *testing.T) {
			sched := &membership.Schedule{Events: []membership.Event{
				{At: 0, Node: 0, Kind: membership.Drain},
			}}
			res, err := Run(Config{
				Servers: 8, Workload: elasticWorkload(8, 0.6), Policy: pol,
				Accesses: 5000, Seed: 5, Membership: sched,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Drains != 1 || res.FinalPool != 7 {
				t.Fatalf("drains=%d final=%d, want 1/7", res.Drains, res.FinalPool)
			}
			if res.ServerUtilization[0] != 0 {
				t.Errorf("drained server still served work (util %v)", res.ServerUtilization[0])
			}
			if res.Lost != 0 {
				t.Errorf("lost %d accesses", res.Lost)
			}
		})
	}
}

// TestElasticDrainCompletesQueuedWork: draining mid-run strands no
// accesses — queued and in-flight work at the drained server completes.
func TestElasticDrainCompletesQueuedWork(t *testing.T) {
	sched := &membership.Schedule{Events: []membership.Event{
		{At: 20 * time.Millisecond, Node: 1, Kind: membership.Drain},
		{At: 100 * time.Millisecond, Node: 1, Kind: membership.Leave},
	}}
	res, err := Run(Config{
		Servers: 4, Workload: elasticWorkload(4, 0.9), Policy: core.NewPoll(2),
		Accesses: 10000, Seed: 7, Membership: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 {
		t.Fatalf("graceful drain lost %d accesses", res.Lost)
	}
	if res.Drains != 1 || res.Leaves != 1 || res.FinalPool != 3 {
		t.Fatalf("drains=%d leaves=%d final=%d, want 1/1/3", res.Drains, res.Leaves, res.FinalPool)
	}
}

// TestElasticRejoinRestoresRouting: drain + later join brings a server
// back into rotation — the churn cycle of the heterogeneous sweep.
func TestElasticRejoinRestoresRouting(t *testing.T) {
	sched := &membership.Schedule{Events: []membership.Event{
		{At: 5 * time.Millisecond, Node: 2, Kind: membership.Drain},
		{At: 10 * time.Millisecond, Node: 2, Kind: membership.Join},
	}}
	res, err := Run(Config{
		Servers: 4, Workload: elasticWorkload(4, 0.7), Policy: core.NewIdeal(),
		Accesses: 10000, Seed: 9, Membership: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drains != 1 || res.Joins != 1 || res.FinalPool != 4 {
		t.Fatalf("drains=%d joins=%d final=%d, want 1/1/4", res.Drains, res.Joins, res.FinalPool)
	}
	if res.ServerUtilization[2] == 0 {
		t.Error("rejoined server never utilized")
	}
	if res.Lost != 0 {
		t.Errorf("lost %d accesses", res.Lost)
	}
}

// TestElasticLastMemberNeverDrains: the pool refuses to go empty.
func TestElasticLastMemberNeverDrains(t *testing.T) {
	sched := &membership.Schedule{Events: []membership.Event{
		{At: 0, Node: 0, Kind: membership.Drain},
		{At: 0, Node: 1, Kind: membership.Drain},
	}}
	res, err := Run(Config{
		Servers: 2, Workload: elasticWorkload(2, 0.5), Policy: core.NewRandom(),
		Accesses: 2000, Seed: 1, Membership: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalPool != 1 {
		t.Fatalf("FinalPool = %d, want 1 (last member must keep routing)", res.FinalPool)
	}
	if res.Drains != 1 {
		t.Fatalf("Drains = %d, want 1 (second drain refused)", res.Drains)
	}
	if res.Lost != 0 {
		t.Errorf("lost %d accesses", res.Lost)
	}
}

// TestElasticAutoscalerTracksLoad: on a diurnal trace the autoscaler
// grows the pool under the peak and shrinks it past the cooldown once
// the wave subsides — the acceptance shape of the elastic experiment.
func TestElasticAutoscalerTracksLoad(t *testing.T) {
	// ~100s of simulated time: one full diurnal cycle with the peak at
	// t=50s. Base rate sized for 2 servers at rho 0.95 so the peak
	// (1.9x) badly overloads the min pool.
	w := elasticWorkload(2, 0.95).WithDiurnalArrivals(0.9, 100)
	res, err := Run(Config{
		Servers: 2, Workload: w, Policy: core.NewPoll(2),
		Accesses: 80000, Seed: 13,
		Autoscaler: &membership.AutoscalerConfig{
			Min: 2, Max: 8,
			ScaleUpAt: 3, ScaleDownAt: 0.5,
			ScaleUpCooldown: 2 * time.Second, ScaleDownCooldown: 5 * time.Second,
			Interval: 250 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Joins == 0 {
		t.Fatal("autoscaler never scaled up under a 1.9x diurnal peak")
	}
	if res.PeakPool <= 2 {
		t.Fatalf("PeakPool = %d, want > 2", res.PeakPool)
	}
	if res.Drains == 0 {
		t.Fatal("autoscaler never scaled down after the wave subsided")
	}
	if res.FinalPool >= res.PeakPool {
		t.Fatalf("FinalPool %d did not shrink from peak %d", res.FinalPool, res.PeakPool)
	}
	if res.Lost != 0 {
		t.Errorf("lost %d accesses", res.Lost)
	}
}

// TestElasticMetricsRegisteredOnlyWhenActive: membership metric names
// appear in elastic snapshots and stay out of fixed-pool ones (that is
// what keeps golden metric digests bit-identical).
func TestElasticMetricsRegisteredOnlyWhenActive(t *testing.T) {
	w := elasticWorkload(4, 0.6)
	fixed, err := Run(Config{Servers: 4, Workload: w, Policy: core.NewRandom(), Accesses: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range fixed.Metrics.Metrics {
		if strings.HasPrefix(m.Name, "membership_") || strings.HasPrefix(m.Name, "autoscaler_") {
			t.Errorf("fixed-pool snapshot contains %q", m.Name)
		}
	}
	sched := &membership.Schedule{Events: []membership.Event{
		{At: time.Millisecond, Node: 4, Kind: membership.Join},
	}}
	elastic, err := Run(Config{Servers: 4, Workload: w, Policy: core.NewRandom(), Accesses: 1000, Seed: 2, Membership: sched})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		obs.MetricMembershipJoins: 1,
		obs.MetricMembershipPool:  5,
	}
	seen := map[string]int64{}
	for _, m := range elastic.Metrics.Metrics {
		seen[m.Name] = m.Value
	}
	for name, v := range want {
		got, ok := seen[name]
		if !ok {
			t.Errorf("elastic snapshot missing %q", name)
		} else if got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
}

// TestElasticValidation: the config guard rails.
func TestElasticValidation(t *testing.T) {
	w := elasticWorkload(4, 0.5)
	sched := &membership.Schedule{Events: []membership.Event{{At: 0, Node: 0, Kind: membership.Drain}}}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{
			"broadcast",
			Config{Servers: 4, Workload: w, Policy: core.NewBroadcast(100 * time.Millisecond), Membership: sched},
			"Broadcast",
		},
		{
			"faults combo",
			Config{Servers: 4, Workload: w, Policy: core.NewRandom(), Membership: sched,
				Faults: &faults.Schedule{Events: []faults.NodeEvent{{At: 0, Node: 1, Kind: faults.Crash}}}},
			"Faults",
		},
		{
			"autoscaler max below servers",
			Config{Servers: 4, Workload: w, Policy: core.NewRandom(),
				Autoscaler: &membership.AutoscalerConfig{Min: 1, Max: 2}},
			"max pool",
		},
		{
			"bad membership event",
			Config{Servers: 4, Workload: w, Policy: core.NewRandom(),
				Membership: &membership.Schedule{Events: []membership.Event{{At: -1, Node: 0, Kind: membership.Join}}}},
			"negative offset",
		},
		{
			"short speed factors stay rejected",
			Config{Servers: 4, Workload: w, Policy: core.NewRandom(), Membership: sched,
				SpeedFactors: []float64{1, 1}},
			"speed factors",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Run(c.cfg)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
	// Elastic runs may carry extra speed factors for joinable ids.
	sched6 := &membership.Schedule{Events: []membership.Event{{At: time.Millisecond, Node: 5, Kind: membership.Join}}}
	res, err := Run(Config{
		Servers: 4, Workload: w, Policy: core.NewRandom(), Accesses: 2000, Seed: 4,
		Membership: sched6, SpeedFactors: []float64{1, 1, 1, 1, 2, 2},
	})
	if err != nil {
		t.Fatalf("elastic run with extended speed factors: %v", err)
	}
	if res.FinalPool != 5 {
		t.Fatalf("FinalPool = %d, want 5", res.FinalPool)
	}
}

// TestElasticDispatchZeroAllocs extends the hot-path gate to elastic
// pools: once a join has grown the pool (within the reserved capacity)
// and the pools are primed, steady-state dispatch allocates nothing.
func TestElasticDispatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under -race")
	}
	w := elasticWorkload(64, 0.8)
	sched := &membership.Schedule{Events: []membership.Event{
		{At: time.Millisecond, Node: 64, Kind: membership.Join},
		{At: time.Millisecond, Node: 65, Kind: membership.Join},
	}}
	for _, pol := range []core.Policy{core.NewRandom(), core.NewIdeal(), core.NewPoll(2)} {
		t.Run(pol.String(), func(t *testing.T) {
			r, err := newRunner(Config{
				Servers: 64, Workload: w, Policy: pol,
				Accesses: 400000, WarmupFrac: 0.9, Seed: 7,
				Membership: sched,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 60000; i++ {
				if !r.eng.ProcessNextEvent() {
					t.Fatal("run drained during priming")
				}
			}
			if len(r.ms.members) != 66 {
				t.Fatalf("pool = %d after priming, want 66", len(r.ms.members))
			}
			avg := testing.AllocsPerRun(8000, func() {
				r.eng.ProcessNextEvent()
			})
			if avg != 0 {
				t.Errorf("elastic steady-state dispatch allocates %.4f allocs/event, want 0", avg)
			}
		})
	}
}
