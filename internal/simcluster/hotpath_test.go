package simcluster

import (
	"fmt"
	"testing"

	"finelb/internal/core"
	"finelb/internal/workload"
)

// TestDispatchPathZeroAllocs is the hot path's allocation gate: once
// the access, poll-context, and engine-event pools are primed, driving
// the simulation event by event allocates nothing. The run is fully
// deterministic (fixed seed, fixed event sequence), so the measured
// window is reproducible. WarmupFrac keeps the measured accesses inside
// the warmup region, so the growth of the response-sample slice —
// amortized, and proportional to the access count, not the event count
// — stays out of the window.
func TestDispatchPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under -race")
	}
	w := workload.PoissonExp(0.05).ScaledTo(64, 0.8)
	policies := []core.Policy{
		core.NewRandom(),
		core.NewRoundRobin(),
		core.NewIdeal(),
		core.NewLocalLeast(),
		core.NewPoll(2),
		core.NewPoll(8),
	}
	for _, pol := range policies {
		t.Run(pol.String(), func(t *testing.T) {
			r, err := newRunner(Config{
				Servers: 64, Workload: w, Policy: pol,
				Accesses: 400000, WarmupFrac: 0.9, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Prime pools and reach the stochastic steady state.
			for i := 0; i < 60000; i++ {
				if !r.eng.ProcessNextEvent() {
					t.Fatal("run drained during priming")
				}
			}
			avg := testing.AllocsPerRun(8000, func() {
				r.eng.ProcessNextEvent()
			})
			if avg != 0 {
				t.Errorf("steady-state dispatch allocates %.4f allocs/event, want 0", avg)
			}
		})
	}
}

// BenchmarkRunPolicy measures whole-run throughput per policy; the
// events/sec figure here is what the simscale benchmark record tracks
// across commits.
func BenchmarkRunPolicy(b *testing.B) {
	for _, bench := range []struct {
		name    string
		servers int
		pol     core.Policy
	}{
		{"random-1k", 1000, core.NewRandom()},
		{"poll2-1k", 1000, core.NewPoll(2)},
		{"poll8-1k", 1000, core.NewPoll(8)},
		{"ideal-1k", 1000, core.NewIdeal()},
	} {
		b.Run(bench.name, func(b *testing.B) {
			w := workload.PoissonExp(0.002).ScaledTo(bench.servers, 0.8)
			b.ReportAllocs()
			var events uint64
			var secs float64
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{
					Servers: bench.servers, Workload: w, Policy: bench.pol,
					Accesses: 50000, Seed: uint64(i) + 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				events += res.EventsFired
				secs += res.SimDuration
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/run")
		})
	}
}

// TestEventsFired pins the new Result field: the engine reports how
// many events a run executed, and the count scales with accesses.
func TestEventsFired(t *testing.T) {
	w := workload.PoissonExp(0.05).ScaledTo(8, 0.5)
	small, err := Run(Config{Servers: 8, Workload: w, Policy: core.NewRandom(), Accesses: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Config{Servers: 8, Workload: w, Policy: core.NewRandom(), Accesses: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Random policy: arrival + request + service completion + response
	// per access, so ~4 events per access.
	if small.EventsFired < 3500 || small.EventsFired > 4500 {
		t.Errorf("EventsFired = %d for 1000 accesses, want ~4000", small.EventsFired)
	}
	if big.EventsFired <= small.EventsFired*3 {
		t.Errorf("EventsFired did not scale: %d vs %d", big.EventsFired, small.EventsFired)
	}
}

// TestLazyArrivalsBoundPendingEvents pins the memory contract of lazy
// arrival chaining: the pending-event heap holds the in-flight
// population, not the whole access trace.
func TestLazyArrivalsBoundPendingEvents(t *testing.T) {
	w := workload.PoissonExp(0.05).ScaledTo(16, 0.6)
	r, err := newRunner(Config{Servers: 16, Workload: w, Policy: core.NewRandom(), Accesses: 100000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	peak := 0
	for r.eng.ProcessNextEvent() {
		if p := r.eng.Pending(); p > peak {
			peak = p
		}
	}
	// Upfront scheduling would peak at ~100000 pending arrivals; the
	// lazy chain keeps it at the in-flight population (hundreds at
	// most for this load level).
	if peak > 5000 {
		t.Errorf("pending events peaked at %d; lazy arrival scheduling should bound this by the in-flight population", peak)
	}
	if r.completed != 100000 {
		t.Errorf("completed %d of 100000", r.completed)
	}
}

// TestIdealMatchesReferenceScan cross-checks the LoadIndex-backed IDEAL
// dispatch against a from-scratch reference: committed work per server
// reconstructed from the dispatch trace, least-committed-lowest-id at
// every decision. (The golden harness pins Poll policies; this pins the
// indexed JSQ semantics.)
func TestIdealMatchesReferenceScan(t *testing.T) {
	w := workload.PoissonExp(0.05).ScaledTo(8, 0.7)
	res, err := Run(Config{Servers: 8, Workload: w, Policy: core.NewIdeal(), Accesses: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 {
		t.Fatalf("healthy ideal run lost %d accesses", res.Lost)
	}
	// With 6 clients and deterministic JSQ, dispatches spread across
	// all servers; no server may be starved or flooded structurally.
	for i, u := range res.ServerUtilization {
		if u == 0 {
			t.Errorf("server %d never utilized under IDEAL", i)
		}
	}
	sum := fmt.Sprintf("%d", res.Messages.Dispatches)
	if res.Messages.Dispatches != 4000 {
		t.Errorf("dispatches = %s, want 4000 (no retries in a healthy run)", sum)
	}
}
