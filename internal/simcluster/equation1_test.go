package simcluster

import (
	"fmt"
	"testing"

	"finelb/internal/core"
	"finelb/internal/queueing"
	"finelb/internal/workload"
)

// TestEquation1BoundAcrossLoads is the statistical validation of Eq. 1
// across load levels: on an M/M/1 server, the measured mean queue-length
// staleness error E|Q(t) - Q(t-d)| must stay under the closed-form bound
// 2ρ/(1-ρ²) at every delay d, and approach it as d grows past the
// queue's decorrelation time. Seeds are pinned, so the measured values
// are reproducible bit for bit; the 10% slack covers only the
// finite-run estimation error of the expectation itself (EXPERIMENTS.md
// records ρ=0.5 measuring 1.334 against a bound of 1.333).
func TestEquation1BoundAcrossLoads(t *testing.T) {
	const s = 0.05 // mean service time
	cases := []struct {
		rho      float64
		accesses int
		seed     uint64
		// approach is the fraction of the bound the largest delay must
		// reach. High loads decorrelate slowly, so a fixed-length run
		// sits further from the asymptote (ρ=0.9 measures ~0.73×bound).
		approach float64
	}{
		{rho: 0.5, accesses: 120000, seed: 21, approach: 0.6},
		{rho: 0.7, accesses: 120000, seed: 22, approach: 0.6},
		{rho: 0.9, accesses: 200000, seed: 23, approach: 0.5},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("rho=%.1f", tc.rho), func(t *testing.T) {
			w := workload.PoissonExp(s).ScaledTo(1, tc.rho)
			res := run(t, Config{
				Servers: 1, Workload: w, Policy: core.NewRandom(),
				Accesses: tc.accesses, Seed: tc.seed, RecordQueueSeries: true,
			})
			qs := res.QueueSeries[0]
			bound := queueing.StalenessUpperBound(tc.rho)
			warm := res.SimDuration * 0.1
			delays := []float64{s, 10 * s, 100 * s}
			meas := make([]float64, len(delays))
			for i, d := range delays {
				meas[i] = qs.Inaccuracy(d, warm, res.SimDuration, s)
				if meas[i] > bound*1.10 {
					t.Errorf("delay %gs: inaccuracy %.4f exceeds Eq.1 bound %.4f (+10%% slack)",
						d, meas[i], bound)
				}
			}
			// Staleness error grows with delay (2% tolerance: past the
			// decorrelation time the curve is flat and sampling noise can
			// wiggle it).
			for i := 1; i < len(meas); i++ {
				if meas[i] < meas[i-1]*0.98 {
					t.Errorf("inaccuracy not increasing with delay: %.4f at %gs vs %.4f at %gs",
						meas[i], delays[i], meas[i-1], delays[i-1])
				}
			}
			// The bound must be approached, not just respected — a series
			// that never decorrelates would pass the upper check trivially.
			if last := meas[len(meas)-1]; last < bound*tc.approach {
				t.Errorf("inaccuracy %.4f at largest delay below %.0f%% of bound %.4f — not converging",
					last, tc.approach*100, bound)
			}
		})
	}
}
