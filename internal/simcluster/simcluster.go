// Package simcluster wires the load-balancing policies of internal/core
// into the discrete-event engine of internal/sim, reproducing the
// paper's simulation model (§2): each server has a non-preemptive
// processing unit and a FIFO service queue; the network latency of
// sending a request and receiving a response is half a measured TCP
// round trip; load inquiries cost a measured UDP round trip; broadcast
// intervals are jittered uniformly over [0.5, 1.5] x mean.
//
// It powers Figure 2 (load-index inaccuracy), Figure 3 (broadcast
// frequency), Figure 4 (poll size), and the ablations A1-A3.
//
// The hot path is built to scale to O(10k) servers and O(10M) accesses
// (DESIGN.md §10): server state lives in one value slice, in-flight
// accesses are pooled records with prebuilt callbacks (zero steady-
// state allocation on the dispatch path), arrivals are scheduled
// lazily against a reserved sequence band (the pending-event heap
// holds the in-flight population, not the whole trace), and the IDEAL
// and least-connections decisions come from an indexed min-heap
// (core.LoadIndex) instead of an O(n) scan.
package simcluster

import (
	"fmt"
	"strconv"

	"finelb/internal/core"
	"finelb/internal/faults"
	"finelb/internal/membership"
	"finelb/internal/obs"
	"finelb/internal/sim"
	"finelb/internal/stats"
	"finelb/internal/workload"
)

// Paper-measured network constants (DESIGN.md §4).
const (
	// DefaultServiceNetDelay is the one-way request or response latency:
	// half of the 516 us that the paper charges for a full
	// send-request/receive-response exchange.
	DefaultServiceNetDelay = 258 * sim.Microsecond
	// DefaultPollRTT is the measured UDP load-inquiry round trip.
	DefaultPollRTT = 290 * sim.Microsecond
	// DefaultBroadcastDelay is the propagation delay of one load
	// broadcast (half the UDP round trip).
	DefaultBroadcastDelay = 145 * sim.Microsecond
)

// DefaultPollTimeout caps how long a client waits for poll answers when
// the policy sets no (or a longer) discard threshold, mirroring the
// prototype client's poll deadline. The cap applies uniformly to
// healthy and faulted runs (DESIGN.md §5); in the healthy model every
// answer arrives within its ~290 us round trip, so it only binds when
// fault injection or extreme PollJitter delays answers.
const DefaultPollTimeout = sim.Duration(sim.Second)

// Config describes one simulated run.
type Config struct {
	Servers  int
	Clients  int               // decision-making client nodes (default 6)
	Workload workload.Workload // arrival dist must already be scaled (ScaledTo)
	Policy   core.Policy

	// SpeedFactors, when non-nil, makes the cluster heterogeneous:
	// server i executes work at SpeedFactors[i] times the base rate
	// (a demand of d seconds takes d/SpeedFactors[i]). Must have length
	// Servers; nil means a homogeneous cluster, as in the paper.
	SpeedFactors []float64

	// Network model; zero values take the paper-measured defaults.
	ServiceNetDelay sim.Duration
	PollRTT         sim.Duration
	BroadcastDelay  sim.Duration

	// PollJitter, when non-nil, adds a sampled extra delay (seconds) to
	// each poll's round trip. The paper's simulation uses constant poll
	// cost (nil); the jitter exists to exercise the discard logic in
	// simulation tests.
	PollJitter stats.Dist

	// Faults, when non-nil, injects the schedule into the run: node
	// events play out on the simulated clock and link faults apply to
	// load inquiries. Fault handling (quarantine, backoff, bounded
	// retries) mirrors the prototype client's, with the shared defaults
	// from internal/faults. Unsupported with the Broadcast policy.
	Faults *faults.Schedule

	// Membership, when active, makes the server set elastic: Join/
	// Drain/Leave events play out on the simulated clock, growing the
	// pool past Servers (up to the schedule's MaxNode) or gracefully
	// shrinking it. An inert schedule takes the fixed-pool fast path
	// bit for bit. Unsupported with the Broadcast policy and with an
	// active fault schedule (drain is the planned counterpart of
	// crash; combine churn kinds in one seam, not two).
	Membership *membership.Schedule
	// Autoscaler, when active, samples the routable pool's load every
	// policy interval on the simulated clock and applies the resulting
	// Join/Drain events itself — the closed-loop counterpart of a
	// precomputed Membership schedule. Both may be set; the schedule
	// seeds churn and the autoscaler reacts on top.
	Autoscaler *membership.AutoscalerConfig

	// Accesses is the number of service accesses to generate (default 100000).
	Accesses int
	// WarmupFrac is the fraction of initial accesses excluded from
	// statistics (default 0.1).
	WarmupFrac float64
	// Seed makes the run reproducible.
	Seed uint64
	// RecordQueueSeries retains each server's queue-length time series
	// (Figure 2 needs it; it costs memory on long runs).
	RecordQueueSeries bool

	// Metrics, when non-nil, is the registry the run records the shared
	// obs.RunMetrics catalog into; nil records into a private registry.
	// Either way Result.Metrics carries the end-of-run snapshot.
	// Instrumentation schedules no events and draws no randomness, so it
	// cannot perturb a run (the golden-seed harness pins this).
	Metrics *obs.Registry
	// Trace, when non-nil, receives structured protocol events
	// (dispatches, discards, quarantines, server faults) on the
	// simulated clock. See obs.Event for the schema.
	Trace *obs.Trace
}

func (c Config) withDefaults() (Config, error) {
	if c.Servers <= 0 {
		return c, fmt.Errorf("simcluster: Servers = %d", c.Servers)
	}
	if c.Clients == 0 {
		c.Clients = 6
	}
	if c.Clients < 0 {
		return c, fmt.Errorf("simcluster: Clients = %d", c.Clients)
	}
	if err := c.Policy.Validate(); err != nil {
		return c, err
	}
	if c.ServiceNetDelay == 0 {
		c.ServiceNetDelay = DefaultServiceNetDelay
	}
	if c.PollRTT == 0 {
		c.PollRTT = DefaultPollRTT
	}
	if c.BroadcastDelay == 0 {
		c.BroadcastDelay = DefaultBroadcastDelay
	}
	if c.Accesses == 0 {
		c.Accesses = 100000
	}
	if c.Accesses < 0 {
		return c, fmt.Errorf("simcluster: Accesses = %d", c.Accesses)
	}
	if c.WarmupFrac == 0 {
		c.WarmupFrac = 0.1
	}
	if c.WarmupFrac < 0 || c.WarmupFrac >= 1 {
		return c, fmt.Errorf("simcluster: WarmupFrac = %v", c.WarmupFrac)
	}
	if c.Workload.Arrival == nil || c.Workload.Service == nil {
		return c, fmt.Errorf("simcluster: incomplete workload")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return c, err
		}
		if c.Policy.Kind == core.Broadcast {
			// Broadcast agents run on Every() timers that never drain, so
			// a run with lost accesses would never terminate.
			return c, fmt.Errorf("simcluster: Faults is unsupported with the Broadcast policy")
		}
	}
	if c.Membership != nil || c.Autoscaler != nil {
		if err := c.Membership.Validate(); err != nil {
			return c, err
		}
		if err := c.Autoscaler.Validate(); err != nil {
			return c, err
		}
	}
	if c.elastic() {
		if c.Policy.Kind == core.Broadcast {
			// Broadcast tables are sized to the fixed pool and its
			// agents run on Every() timers; elastic pools are a polling/
			// index-policy feature.
			return c, fmt.Errorf("simcluster: Membership is unsupported with the Broadcast policy")
		}
		if c.Faults.Active() {
			return c, fmt.Errorf("simcluster: Membership and Faults cannot combine in one run")
		}
		if c.Autoscaler.Active() && c.Autoscaler.Max < c.Servers {
			return c, fmt.Errorf("simcluster: autoscaler max pool %d below initial %d servers", c.Autoscaler.Max, c.Servers)
		}
	}
	if c.SpeedFactors != nil {
		// An elastic run may carry extra factors for joinable ids past
		// the initial pool; ids beyond the slice run at speed 1.
		if len(c.SpeedFactors) != c.Servers && !(c.elastic() && len(c.SpeedFactors) > c.Servers) {
			return c, fmt.Errorf("simcluster: %d speed factors for %d servers", len(c.SpeedFactors), c.Servers)
		}
		for i, f := range c.SpeedFactors {
			if f <= 0 {
				return c, fmt.Errorf("simcluster: speed factor %d = %v", i, f)
			}
		}
	}
	return c, nil
}

// elastic reports whether the run's server set can change mid-run.
func (c Config) elastic() bool {
	return c.Membership.Active() || c.Autoscaler.Active()
}

// maxPool returns the largest server id space the run can reach: the
// initial pool, grown by whatever the membership schedule or the
// autoscaler bound can add. Fixed-pool runs return Servers, so every
// capacity sized from maxPool is exactly what it was before the
// elastic seam existed.
func (c Config) maxPool() int {
	mp := c.Servers
	if n := c.Membership.MaxNode() + 1; n > mp {
		mp = n
	}
	if c.Autoscaler.Active() && c.Autoscaler.Max > mp {
		mp = c.Autoscaler.Max
	}
	return mp
}

// MessageCount tallies the load-information traffic of a run,
// supporting the paper's §2.4 scalability argument.
type MessageCount struct {
	PollRequests        int64 // client -> server load inquiries
	PollResponses       int64 // server -> client answers used
	PollsDiscarded      int64 // answers abandoned by the discard deadline
	Broadcasts          int64 // server load announcements
	BroadcastDeliveries int64 // per-client deliveries processed
	Dispatches          int64 // service requests sent
}

// Total returns all load-information messages (excluding the service
// dispatches themselves): what §2.4 counts when comparing policies.
func (m MessageCount) Total() int64 {
	return m.PollRequests + m.PollResponses + m.Broadcasts + m.BroadcastDeliveries
}

// Result reports the measured behaviour of one run.
type Result struct {
	Config Config

	// Response summarizes access response times in seconds (poll time
	// included, as in the paper), over post-warmup accesses.
	Response *stats.Summary
	// PollTime summarizes per-access polling durations in seconds
	// (zero observations for non-polling policies).
	PollTime *stats.Summary
	// Messages tallies load-information traffic.
	Messages MessageCount
	// ServerUtilization is each server's busy fraction.
	ServerUtilization []float64
	// MeanQueueLength is the time-averaged queue length (load index)
	// across servers.
	MeanQueueLength float64
	// QueueSeries holds per-server queue-length series when
	// Config.RecordQueueSeries is set.
	QueueSeries []*QSeries
	// SimDuration is the simulated run length in seconds.
	SimDuration float64
	// EventsFired is the number of discrete events the engine executed,
	// the denominator of the events/sec throughput metric the simscale
	// benchmark tracks.
	EventsFired uint64

	// Lost counts accesses that never completed despite retries (always
	// zero without Faults).
	Lost int64
	// Retries counts poll re-rounds plus access re-dispatches after
	// failures (always zero without Faults).
	Retries int64

	// Membership churn (elastic runs; a fixed pool reports zero churn
	// with FinalPool = PeakPool = Servers).
	Joins  int64 // servers that joined or re-joined the routable pool
	Drains int64 // servers withdrawn from routing (still serving)
	Leaves int64 // drained servers retired from the run
	// FinalPool and PeakPool are the routable pool size at the end of
	// the run and its high-water mark.
	FinalPool int
	PeakPool  int

	// Metrics is the end-of-run snapshot of the obs.RunMetrics catalog
	// (taken after the engine drains, so cross-metric invariants hold).
	Metrics *obs.Snapshot
}

// access is one in-flight service access. Records are pooled by the
// runner: a record is minted with its callbacks bound once and then
// recycled when the access completes or is lost, so the steady-state
// dispatch path schedules pooled engine events with pooled callbacks —
// no per-access closure allocation.
type access struct {
	idx     int
	client  int
	attempt int
	srv     int          // chosen server of the current dispatch
	start   sim.Time     // arrival time; response time is measured from it
	service sim.Duration // service demand
	pollDur sim.Duration // polling duration of the deciding round

	// Callbacks bound to this record for its lifetime (across recycles).
	runArrival func() // the access's arrival event
	onArrive   func() // service request reaches the server
	onService  func() // the server finishes the access's service
	onDone     func() // response lands back at the client
	onFail     func() // broken round trip lands back at the client
	onRetry    func() // backoff elapsed: re-run server selection
}

// serverState models the paper's server — a FIFO queue feeding one
// non-preemptive processing unit, load index = queued + in service —
// as one compact record in the runner's value slice. Keeping all
// per-server state in a flat []serverState (no per-server engine or
// metrics pointers, no per-server heap allocations) is what lets a run
// hold 10k servers without pointer-chasing on every event.
type serverState struct {
	speed        float64 // work rate; demand d takes d/speed
	busyTime     sim.Duration
	curEnd       sim.Time     // when the job in service would complete
	curRemaining sim.Duration // remaining demand while paused
	curHandle    sim.Handle   // scheduled completion (cancellable)
	cur          *access      // the access in service
	qavg         stats.TimeWeighted
	series       *QSeries
	queue        []*access // FIFO ring: valid entries are queue[qhead:]
	qhead        int
	active       int // the load index
	busy         bool
	down         bool
	paused       bool
	hasCur       bool
}

// push appends a to the service queue, compacting the consumed prefix
// only when the backing array is full — amortized O(1), allocation-free
// once the queue has reached its high-water capacity.
//
//lint:noalloc
func (s *serverState) push(a *access) {
	if s.qhead > 0 && len(s.queue) == cap(s.queue) {
		n := copy(s.queue, s.queue[s.qhead:])
		for i := n; i < len(s.queue); i++ {
			s.queue[i] = nil
		}
		s.queue = s.queue[:n]
		s.qhead = 0
	}
	s.queue = append(s.queue, a)
}

// pop removes and returns the head of the service queue, or nil.
//
//lint:noalloc
func (s *serverState) pop() *access {
	if s.qhead == len(s.queue) {
		return nil
	}
	a := s.queue[s.qhead]
	s.queue[s.qhead] = nil
	s.qhead++
	if s.qhead == len(s.queue) {
		s.queue, s.qhead = s.queue[:0], 0
	}
	return a
}

// runner is one simulated run's full state. One runner serves every
// run. When the fault schedule is absent or inert
// (faults.Schedule.Active() == false), none of the failure machinery is
// allocated and the run takes exactly the paper model's RNG draws — the
// golden-seed harness (golden_test.go) pins this bit for bit. With an
// active schedule the same runner adds the failure handling that the
// prototype client implements: per-server quarantine fed by consecutive
// silent polls, jittered-backoff poll retries, bounded access retries
// after broken round trips, and random fallback when all polled servers
// are quarantined.
type runner struct {
	cfg Config
	eng *sim.Engine
	res *Result
	reg *obs.Registry
	rm  *obs.RunMetrics
	tr  *obs.Trace

	clientActor []string
	serverActor []string

	srv []serverState

	policyRNG *stats.RNG
	jitterRNG *stats.RNG
	stream    *workload.Stream

	// Lazy arrival scheduling: arrivals reserve a sequence band up front
	// (sim.Engine.ReserveSeqs) and each arrival event schedules the next
	// one, so the pending heap holds the in-flight population instead of
	// the whole access trace, with tie-breaking bit-identical to
	// scheduling everything up front.
	arrivalBase uint64
	nextIdx     int

	// commit is the IDEAL oracle's committed-work index (nil for other
	// policies): accurate load indexes acquired free of cost (§2), seen
	// as committed work, matching the prototype's centralized manager
	// which increments on assignment. Crashed and paused servers are
	// detached, so Min() routes around them directly.
	commit *core.LoadIndex
	// local is the per-client outstanding-access index (LocalLeast
	// only): the message-free least-connections rule.
	local []*core.LoadIndex

	tables []*core.LoadTable
	rrs    []core.RoundRobinState

	// Poll scratch: pollIdent is the identity permutation PollSet
	// requires (restored after every call, so it doubles as the
	// "all servers" candidate list on quarantine-exhausted paths).
	pollIdent []int
	pollSwaps []int
	pollDst   []int

	ft *clientFaults
	ms *memberState // elastic membership (nil on fixed-pool runs)

	freeAcc  []*access  // recycled access records
	freePoll []*pollCtx // recycled healthy-poll round contexts

	completed int
	lost      int
	warmup    int
}

// newAccess takes an access record from the free-list, or mints one
// with its callbacks bound.
func (r *runner) newAccess() *access {
	if n := len(r.freeAcc); n > 0 {
		a := r.freeAcc[n-1]
		r.freeAcc[n-1] = nil
		r.freeAcc = r.freeAcc[:n-1]
		return a
	}
	a := &access{}
	a.runArrival = func() { r.arrival(a) }
	a.onArrive = func() { r.serverArrive(a) }
	a.onService = func() { r.serviceDone(a) }
	a.onDone = func() { r.accessDone(a) }
	a.onFail = func() { r.accessFailed(a) }
	a.onRetry = func() { r.handle(a) }
	return a
}

// recycle retires a finished access record to the free-list.
//
//lint:noalloc
func (r *runner) recycle(a *access) {
	r.freeAcc = append(r.freeAcc, a)
}

// emit records one trace event; actors is clientActor or serverActor
// (indexed lazily so the nil-trace path never touches them).
//
//lint:noalloc
func (r *runner) emit(name string, actors []string, idx int, a, b int64) {
	if r.tr != nil {
		r.tr.Emit(r.eng.Now().Seconds(), name, actors[idx], a, b)
	}
}

// record samples server id's load index into its time-weighted average
// (and optional series) at the current simulated time.
//
//lint:noalloc
func (r *runner) record(id int) {
	s := &r.srv[id]
	now := r.eng.Now().Seconds()
	s.qavg.Set(now, float64(s.active))
	if s.series != nil {
		s.series.record(now, s.active)
	}
}

// scheduleArrival draws the next access from the workload stream and
// schedules its arrival event in the reserved sequence band.
//
//lint:noalloc
func (r *runner) scheduleArrival() {
	i := r.nextIdx
	r.nextIdx++
	acc := r.stream.Next()
	a := r.newAccess()
	a.idx = i
	a.client = i % r.cfg.Clients
	a.attempt = 0
	a.pollDur = 0
	a.service = sim.FromSeconds(acc.Service)
	r.eng.AtSeq(sim.Time(sim.FromSeconds(acc.Arrival)), r.arrivalBase+uint64(i), a.runArrival)
}

// arrival is one access's arrival event: chain the next arrival (the
// workload stream is monotone in arrival time), then run the policy
// decision for this one.
//
//lint:noalloc
func (r *runner) arrival(a *access) {
	if r.nextIdx < r.cfg.Accesses {
		r.scheduleArrival()
	}
	a.start = r.eng.Now()
	r.handle(a)
}

// dispatch sends the access to a.srv; the response lands back at the
// client via onDone (or onFail when the round trip breaks under
// faults).
//
//lint:noalloc
func (r *runner) dispatch(a *access) {
	r.res.Messages.Dispatches++
	r.rm.Dispatches.Inc()
	r.emit("access.dispatch", r.clientActor, a.client, int64(a.srv), int64(a.idx))
	if r.commit != nil {
		r.commit.Add(a.srv, 1)
	}
	if r.local != nil {
		r.local[a.client].Add(a.srv, 1)
	}
	r.eng.After(r.cfg.ServiceNetDelay, a.onArrive)
}

// settle reverses dispatch's load-index commitments when the round trip
// concludes (completion or failure).
//
//lint:noalloc
func (r *runner) settle(a *access) {
	if r.commit != nil {
		r.commit.Add(a.srv, -1)
	}
	if r.local != nil {
		r.local[a.client].Add(a.srv, -1)
	}
}

// serverArrive enqueues the access at its server; an access arriving at
// a crashed server fails immediately (the connection is refused), one
// arriving at a paused server queues behind the stalled processing
// unit.
//
//lint:noalloc
func (r *runner) serverArrive(a *access) {
	s := &r.srv[a.srv]
	if s.down {
		if r.ft != nil {
			r.eng.After(r.cfg.ServiceNetDelay, a.onFail)
		}
		return
	}
	s.active++
	r.rm.ServerActive.Add(1)
	r.record(a.srv)
	if s.busy || s.paused {
		s.push(a)
		return
	}
	r.startService(a)
}

// startService begins a's service on its (idle) server.
//
//lint:noalloc
func (r *runner) startService(a *access) {
	s := &r.srv[a.srv]
	s.busy = true
	r.rm.WorkersBusy.Add(1)
	d := sim.Duration(float64(a.service) / s.speed)
	s.busyTime += d
	s.cur, s.hasCur = a, true
	s.curEnd = r.eng.Now().Add(d)
	s.curHandle = r.eng.After(d, a.onService)
}

// serviceDone completes a's service: the next queued access starts, and
// the response travels back to the client.
//
//lint:noalloc
func (r *runner) serviceDone(a *access) {
	s := &r.srv[a.srv]
	s.hasCur = false
	s.cur = nil
	s.active--
	r.rm.ServerActive.Add(-1)
	r.rm.ServerServed.Inc()
	r.record(a.srv)
	s.busy = false
	r.rm.WorkersBusy.Add(-1)
	if next := s.pop(); next != nil {
		r.startService(next)
	} else if r.ms != nil && s.active == 0 && r.ms.retiring[a.srv] {
		// An autoscaler-drained server retires once its queue empties.
		r.leave(a.srv)
	}
	r.eng.After(r.cfg.ServiceNetDelay, a.onDone)
}

// accessDone lands the response at the client and closes the access.
//
//lint:noalloc
func (r *runner) accessDone(a *access) {
	r.settle(a)
	r.completed++
	r.rm.Completions.Inc()
	r.rm.ResponseSeconds.Observe(r.eng.Now().Sub(a.start).Seconds())
	r.emit("access.complete", r.clientActor, a.client, int64(a.srv), int64(a.idx))
	if a.idx >= r.warmup {
		r.res.Response.Add(r.eng.Now().Sub(a.start).Seconds())
		if r.cfg.Policy.Kind == core.Poll {
			r.res.PollTime.Add(a.pollDur.Seconds())
		}
	}
	if r.cfg.Policy.Kind == core.Poll {
		r.rm.PollWaitSeconds.Observe(a.pollDur.Seconds())
	}
	r.recycle(a)
	r.finish()
}

// accessFailed lands a broken round trip at the client: quarantine the
// server and retry the whole server selection, up to
// faults.DefaultAccessRetries times.
func (r *runner) accessFailed(a *access) {
	r.settle(a)
	r.ft.quarantine(a.client, a.srv)
	if a.attempt >= faults.DefaultAccessRetries {
		r.lost++
		r.emit("access.lost", r.clientActor, a.client, int64(a.srv), int64(a.idx))
		r.recycle(a)
		r.finish()
		return
	}
	r.res.Retries++
	r.rm.Retries.Inc()
	r.emit("access.retry", r.clientActor, a.client, int64(a.srv), int64(a.attempt))
	attempt := a.attempt
	a.attempt++
	r.eng.After(r.ft.backoff(attempt), a.onRetry)
}

// finish stops the engine once every access is accounted for.
//
//lint:noalloc
func (r *runner) finish() {
	if r.completed+r.lost == r.cfg.Accesses {
		r.eng.Stop()
	}
}

// crash kills server id permanently: the in-service access and every
// queued access fail (their client connections break) and the load
// index drops to zero.
func (r *runner) crash(id int) {
	s := &r.srv[id]
	if s.down {
		return
	}
	s.down = true
	s.paused = false
	if s.hasCur {
		s.curHandle.Cancel()
		if r.ft != nil {
			r.eng.After(r.cfg.ServiceNetDelay, s.cur.onFail)
		}
		s.cur = nil
		s.hasCur = false
	}
	if s.busy {
		r.rm.WorkersBusy.Add(-1)
	}
	s.busy = false
	for a := s.pop(); a != nil; a = s.pop() {
		if r.ft != nil {
			r.eng.After(r.cfg.ServiceNetDelay, a.onFail)
		}
	}
	r.rm.ServerActive.Add(-int64(s.active))
	s.active = 0
	r.record(id)
	if r.commit != nil {
		r.commit.Remove(id)
	}
}

// pause freezes server id's processing unit mid-job: the in-service
// access's completion is suspended with its remaining demand intact,
// and no queued access starts until resume.
func (r *runner) pause(id int) {
	s := &r.srv[id]
	if s.down || s.paused {
		return
	}
	s.paused = true
	if s.hasCur {
		s.curHandle.Cancel()
		s.curRemaining = s.curEnd.Sub(r.eng.Now())
	}
	if r.commit != nil {
		r.commit.Remove(id)
	}
}

// resume unfreezes server id; the suspended access finishes its
// remaining demand, then the queue drains normally.
func (r *runner) resume(id int) {
	s := &r.srv[id]
	if s.down || !s.paused {
		return
	}
	s.paused = false
	if r.commit != nil {
		r.commit.Restore(id)
	}
	if s.hasCur {
		a := s.cur
		s.curEnd = r.eng.Now().Add(s.curRemaining)
		s.curHandle = r.eng.After(s.curRemaining, a.onService)
		return
	}
	if !s.busy {
		if next := s.pop(); next != nil {
			r.startService(next)
		}
	}
}

// pollCtx is one healthy poll round's state, pooled like access
// records: its slices and per-slot observation callbacks are reused
// across rounds, so a poll-policy access schedules only pooled events
// with pooled callbacks. The deadline event always fires after every
// scheduled observation (obsAt <= deadline, and equal times resolve by
// schedule order), so recycling in the decision callback is safe.
type pollCtx struct {
	a         *access
	deadline  sim.Time
	polled    []int
	respAt    []sim.Time
	responses []core.PollResponse
	obsFns    []func() // obsFns[i] observes polled[i] at the server
	decideFn  func()
}

// newPollCtx takes a context from the free-list (or mints one) and
// ensures it has observation callbacks for d poll slots.
func (r *runner) newPollCtx(d int) *pollCtx {
	var c *pollCtx
	if n := len(r.freePoll); n > 0 {
		c = r.freePoll[n-1]
		r.freePoll[n-1] = nil
		r.freePoll = r.freePoll[:n-1]
	} else {
		c = &pollCtx{}
		c.decideFn = func() { r.healthyDecide(c) }
	}
	for i := len(c.obsFns); i < d; i++ {
		i := i
		c.obsFns = append(c.obsFns, func() { r.healthyObserve(c, i) })
	}
	return c
}

// healthyPoll is the paper's poll round: every inquiry is answered
// within its round trip, so the decision closes when the last answer is
// due (capped uniformly by DefaultPollTimeout and the policy's discard
// threshold).
//
//lint:noalloc
func (r *runner) healthyPoll(a *access) {
	cfg := &r.cfg
	var set []int
	if r.ms != nil {
		// Elastic pool: draw the poll set over the routable members.
		// PollSet picks indices into [0, len(members)); remap in place.
		set = core.PollSet(r.policyRNG, len(r.ms.members), cfg.Policy.PollSize, r.pollDst, r.pollIdent, r.pollSwaps)
		for i := range set {
			set[i] = r.ms.members[set[i]]
		}
	} else {
		set = core.PollSet(r.policyRNG, cfg.Servers, cfg.Policy.PollSize, r.pollDst, r.pollIdent, r.pollSwaps)
	}
	c := r.newPollCtx(len(set))
	c.a = a
	c.polled = append(c.polled[:0], set...)
	r.res.Messages.PollRequests += int64(len(c.polled))
	r.rm.PollRequests.Add(int64(len(c.polled)))

	// Sample each poll's round trip up front; the response value
	// is observed at the server halfway through.
	c.respAt = c.respAt[:0]
	var latest sim.Time
	for range c.polled {
		rtt := cfg.PollRTT
		if cfg.PollJitter != nil {
			rtt += sim.FromSeconds(cfg.PollJitter.Sample(r.jitterRNG))
		}
		respAt := a.start.Add(rtt)
		c.respAt = append(c.respAt, respAt)
		if respAt > latest {
			latest = respAt
		}
	}
	deadline := latest
	if dl := a.start.Add(DefaultPollTimeout); dl < deadline {
		deadline = dl
	}
	if d := cfg.Policy.DiscardAfter; d > 0 {
		if dl := a.start.Add(sim.FromSeconds(d.Seconds())); dl < deadline {
			deadline = dl
		}
	}
	c.deadline = deadline
	c.responses = c.responses[:0]
	for i, srv := range c.polled {
		resp := c.respAt[i]
		if resp > deadline {
			r.res.Messages.PollsDiscarded++
			// In the healthy model every server answers; a discarded
			// inquiry's answer arrives past the deadline, so it is
			// both a discard and a late answer (prototype semantics).
			r.rm.PollDiscards.Inc()
			r.rm.PollLate.Inc()
			r.rm.InquiriesServed.Inc() // the server did answer, just late
			r.rm.PollRTTSeconds.Observe(resp.Sub(a.start).Seconds())
			r.emit("poll.discard", r.clientActor, a.client, int64(srv), int64(a.idx))
			continue
		}
		// Observe the server's load index when the inquiry
		// reaches it (half the round trip in).
		obsAt := resp.Add(-sim.Duration((resp.Sub(a.start)) / 2))
		r.eng.At(obsAt, c.obsFns[i])
	}
	r.eng.At(deadline, c.decideFn)
}

// healthyObserve is poll slot i's observation event: the inquiry
// reaches the server and reads its load index; the answer lands back
// at the client at respAt[i] (within the deadline by construction).
//
//lint:noalloc
func (r *runner) healthyObserve(c *pollCtx, i int) {
	srv := c.polled[i]
	c.responses = append(c.responses, core.PollResponse{
		Server: srv, Load: r.srv[srv].active,
	})
	r.res.Messages.PollResponses++
	r.rm.PollResponses.Inc()
	r.rm.InquiriesServed.Inc()
	r.rm.PollRTTSeconds.Observe(c.respAt[i].Sub(c.a.start).Seconds())
}

// healthyDecide closes the round at the deadline and dispatches.
//
//lint:noalloc
func (r *runner) healthyDecide(c *pollCtx) {
	a := c.a
	a.srv = core.PickFromPolls(r.policyRNG, c.responses, c.polled)
	a.pollDur = c.deadline.Sub(a.start)
	c.a = nil
	r.freePoll = append(r.freePoll, c)
	r.dispatch(a)
}

// pollRound is the fault-aware poll round over the unquarantined
// candidates: silent servers (crashed, stalled, or behind a lossy
// link) never answer, so it either dispatches on the answers it got
// or (after DefaultPollRetries silent rounds) falls back to random.
func (r *runner) pollRound(a *access, round int, cands []int) {
	cfg := &r.cfg
	roundStart := r.eng.Now()
	set := core.PollSet(r.policyRNG, len(cands), cfg.Policy.PollSize, r.pollDst, r.pollIdent, r.pollSwaps)
	polled := make([]int, len(set))
	for i, ci := range set {
		polled[i] = cands[ci]
	}
	r.res.Messages.PollRequests += int64(len(polled))
	r.rm.PollRequests.Add(int64(len(polled)))

	deadline := roundStart.Add(DefaultPollTimeout)
	if da := cfg.Policy.DiscardAfter; da > 0 {
		if dl := roundStart.Add(sim.FromSeconds(da.Seconds())); dl < deadline {
			deadline = dl
		}
	}

	responses := make([]core.PollResponse, 0, len(polled))
	answered := make(map[int]bool, len(polled))

	// decide closes the round — either when the last answer arrives
	// (the client has all it asked for) or at the deadline, whichever
	// comes first.
	decided := false
	decide := func() {
		if decided {
			return
		}
		decided = true
		r.res.Messages.PollsDiscarded += int64(len(polled) - len(responses))
		r.rm.PollDiscards.Add(int64(len(polled) - len(responses)))
		if n := len(polled) - len(responses); n > 0 {
			r.emit("poll.discard", r.clientActor, a.client, int64(n), int64(round))
		}
		for _, srv := range polled {
			if answered[srv] {
				r.ft.noteAnswered(a.client, srv)
			} else {
				r.ft.noteSilent(a.client, srv)
			}
		}
		pollDur := r.eng.Now().Sub(a.start)
		if len(responses) > 0 {
			a.srv = core.PickFromPolls(r.policyRNG, responses, polled)
			a.pollDur = pollDur
			r.dispatch(a)
			return
		}
		if round >= faults.DefaultPollRetries {
			// Every round was silence: random fallback among the
			// servers still believed live (or all, if none).
			fresh := r.ft.candidates(a.client)
			if fresh == nil {
				a.srv = r.policyRNG.Intn(cfg.Servers)
			} else {
				a.srv = fresh[r.policyRNG.Intn(len(fresh))]
			}
			a.pollDur = pollDur
			r.dispatch(a)
			return
		}
		r.res.Retries++
		r.rm.Retries.Inc()
		r.emit("poll.retry", r.clientActor, a.client, int64(round), int64(a.idx))
		r.eng.After(r.ft.backoff(round), func() {
			fresh := r.ft.candidates(a.client)
			if fresh == nil {
				a.srv = r.policyRNG.Intn(cfg.Servers)
				a.pollDur = r.eng.Now().Sub(a.start)
				r.dispatch(a)
				return
			}
			r.pollRound(a, round+1, fresh)
		})
	}

	for _, srv := range polled {
		srv := srv
		drop, extra := r.ft.pollFault(a.client, srv)
		if drop {
			r.rm.InquiriesDropped.Inc()
			continue // lost datagram: pure silence until the deadline
		}
		rtt := cfg.PollRTT + extra
		if cfg.PollJitter != nil {
			rtt += sim.FromSeconds(cfg.PollJitter.Sample(r.jitterRNG))
		}
		respAt := roundStart.Add(rtt)
		if respAt > deadline {
			continue // answer would arrive too late; discarded
		}
		// The inquiry reaches the server halfway through the round
		// trip; a crashed or stalled server never answers it. A live
		// server's load is observed there, and the answer lands back
		// at the client at respAt.
		obsAt := respAt.Add(-sim.Duration((respAt.Sub(roundStart)) / 2))
		r.eng.At(obsAt, func() {
			s := &r.srv[srv]
			if s.down || s.paused {
				r.rm.InquiriesDropped.Inc()
				return
			}
			load := s.active
			r.rm.InquiriesServed.Inc()
			r.eng.At(respAt, func() {
				if decided {
					r.rm.PollLate.Inc() // answer landed after the round closed
					return
				}
				responses = append(responses, core.PollResponse{Server: srv, Load: load})
				answered[srv] = true
				r.res.Messages.PollResponses++
				r.rm.PollResponses.Inc()
				r.rm.PollRTTSeconds.Observe(respAt.Sub(roundStart).Seconds())
				if len(responses) == len(polled) {
					decide()
				}
			})
		})
	}

	r.eng.At(deadline, decide)
}

// handle runs the policy decision for one access. The healthy branch
// is the paper's model, draw for draw; the faulted branch filters
// quarantined servers first.
//
//lint:noalloc
func (r *runner) handle(a *access) {
	cfg := &r.cfg
	if r.ms != nil {
		// Elastic pool: route over the current members (elastic.go).
		// Membership and faults never combine, so the branches are
		// mutually exclusive.
		r.handleElastic(a)
		return
	}
	if r.ft == nil {
		switch cfg.Policy.Kind {
		case core.Random:
			a.srv = r.policyRNG.Intn(cfg.Servers)
			a.pollDur = 0
			r.dispatch(a)

		case core.RoundRobin:
			a.srv = r.rrs[a.client].Next(cfg.Servers)
			a.pollDur = 0
			r.dispatch(a)

		case core.Ideal:
			// O(1) via the committed-work index; equal loads go to the
			// lowest server id (deterministic JSQ).
			a.srv = r.commit.Min()
			a.pollDur = 0
			r.dispatch(a)

		case core.LocalLeast:
			a.srv = r.local[a.client].Min()
			a.pollDur = 0
			r.dispatch(a)

		case core.Broadcast:
			tbl := r.tables[a.client]
			srv := tbl.PickLeast(r.policyRNG)
			if cfg.Policy.LocalCorrection {
				tbl.Increment(srv)
			}
			a.srv = srv
			a.pollDur = 0
			r.dispatch(a)

		case core.Poll:
			r.healthyPoll(a)
		}
		return
	}

	cands := r.ft.candidates(a.client)
	pickFrom := cands
	if pickFrom == nil {
		// Everything quarantined: the full table is all there is.
		// pollIdent is the identity permutation and every use below
		// reads it before the next PollSet call can permute it.
		pickFrom = r.pollIdent[:cfg.Servers]
	}
	switch cfg.Policy.Kind {
	case core.Random:
		a.srv = pickFrom[r.policyRNG.Intn(len(pickFrom))]
		a.pollDur = 0
		r.dispatch(a)

	case core.RoundRobin:
		a.srv = pickFrom[r.rrs[a.client].Next(len(pickFrom))]
		a.pollDur = 0
		r.dispatch(a)

	case core.Ideal:
		// The omniscient oracle routes around dead and stalled servers
		// directly (they are detached from the index); quarantine is
		// the clients' crutch, not the oracle's.
		best := r.commit.Min()
		if best == -1 {
			best = pickFrom[r.policyRNG.Intn(len(pickFrom))]
		}
		a.srv = best
		a.pollDur = 0
		r.dispatch(a)

	case core.LocalLeast:
		// Candidates vary per client and per access (quarantine), so
		// this stays a scan over the candidate set, reservoir
		// tie-breaking like core.PickLeast. Fault scenarios run at
		// test scale; the 10k-server hot path is the healthy branch.
		li := r.local[a.client]
		//lint:allow noalloc fault scenarios run at test scale; the 10k-server hot path is the healthy branch above
		loads := make([]int, len(pickFrom))
		for i, srv := range pickFrom {
			loads[i] = li.Load(srv)
		}
		a.srv = pickFrom[core.PickLeast(r.policyRNG, loads)]
		a.pollDur = 0
		r.dispatch(a)

	case core.Poll:
		if cands == nil {
			// All quarantined: skip the pointless poll, go random.
			a.srv = r.policyRNG.Intn(cfg.Servers)
			a.pollDur = 0
			r.dispatch(a)
			return
		}
		r.pollRound(a, 0, cands)
	}
}

// newRunner validates cfg and builds the run: engine, RNG streams,
// server state, fault machinery, policy state, and the first arrival.
// The construction order (and hence sequence-number and RNG-draw
// order) is part of the golden contract.
func newRunner(cfg Config) (*runner, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	eng := sim.New()
	master := stats.NewRNG(cfg.Seed)
	arrivalRNG := master.Split()
	policyRNG := master.Split()
	jitterRNG := master.Split()

	r := &runner{
		cfg: cfg,
		eng: eng,
		res: &Result{
			Config:   cfg,
			Response: stats.NewSummary(true),
			PollTime: stats.NewSummary(true),
		},
		policyRNG: policyRNG,
		jitterRNG: jitterRNG,
		warmup:    int(float64(cfg.Accesses) * cfg.WarmupFrac),
	}

	// Observability. The catalog always exists (a private registry when
	// the caller supplied none) so instrumentation is branch-free; it
	// schedules no events and draws no randomness, keeping seeded runs
	// bit-identical with or without a caller registry.
	r.reg = cfg.Metrics
	if r.reg == nil {
		r.reg = obs.NewRegistry()
	}
	r.rm = obs.NewRunMetrics(r.reg)
	// Elastic runs can grow past Servers; every capacity below is sized
	// to the reachable maximum so growth reuses reserved space instead
	// of reallocating. Fixed-pool runs have maxPool == Servers, leaving
	// every allocation exactly as it was.
	maxPool := cfg.maxPool()
	r.tr = cfg.Trace
	if r.tr != nil {
		r.clientActor = make([]string, cfg.Clients)
		for i := range r.clientActor {
			r.clientActor[i] = "client:" + strconv.Itoa(i)
		}
		r.serverActor = make([]string, maxPool)
		for i := range r.serverActor {
			r.serverActor[i] = "server:" + strconv.Itoa(i)
		}
	}

	r.srv = make([]serverState, cfg.Servers, maxPool)
	for i := range r.srv {
		s := &r.srv[i]
		s.speed = r.speedFor(i)
		if cfg.RecordQueueSeries {
			s.series = &QSeries{}
		}
		r.record(i)
	}

	// Fault machinery, allocated only for an active schedule: the
	// healthy path pays nothing and draws nothing extra.
	if cfg.Faults.Active() {
		r.ft = newClientFaults(eng, cfg.Faults, cfg.Clients, cfg.Servers)
		r.ft.onQuarantine = func(client, srv int) {
			r.rm.Quarantines.Inc()
			r.emit("client.quarantine", r.clientActor, client, int64(srv), 0)
		}
		// Replay node events on the simulated clock.
		for _, ev := range cfg.Faults.Sorted() {
			ev := ev
			if ev.Node >= cfg.Servers {
				continue
			}
			eng.At(sim.Time(sim.FromSeconds(ev.At.Seconds())), func() {
				switch ev.Kind {
				case faults.Crash:
					r.crash(ev.Node)
					r.emit("server.crash", r.serverActor, ev.Node, 0, 0)
				case faults.Pause:
					r.pause(ev.Node)
					r.emit("server.pause", r.serverActor, ev.Node, 0, 0)
				case faults.Resume:
					r.resume(ev.Node)
					r.emit("server.resume", r.serverActor, ev.Node, 0, 0)
				}
			})
		}
	}

	// Per-client policy state.
	r.rrs = make([]core.RoundRobinState, cfg.Clients)
	if cfg.Policy.Kind == core.Broadcast {
		r.tables = make([]*core.LoadTable, cfg.Clients)
		for i := range r.tables {
			r.tables[i] = core.NewLoadTable(cfg.Servers)
		}
	}
	if cfg.Policy.Kind == core.LocalLeast {
		r.local = make([]*core.LoadIndex, cfg.Clients)
		for i := range r.local {
			r.local[i] = core.NewLoadIndexCap(cfg.Servers, maxPool)
		}
	}
	if cfg.Policy.Kind == core.Ideal {
		r.commit = core.NewLoadIndexCap(cfg.Servers, maxPool)
	}
	r.pollIdent = core.Identity(maxPool)
	r.pollSwaps = make([]int, maxPool)
	r.pollDst = make([]int, maxPool)

	// Elastic membership, allocated only for an active schedule or
	// autoscaler: the fixed-pool path pays nothing and draws nothing.
	if cfg.elastic() {
		r.setupElastic(maxPool)
	}

	// Broadcast agents.
	if cfg.Policy.Kind == core.Broadcast {
		mean := sim.FromSeconds(cfg.Policy.BroadcastInterval.Seconds())
		for id := range r.srv {
			id := id
			interval := func() sim.Duration {
				if cfg.Policy.BroadcastFixed {
					return mean
				}
				// Jittered uniformly over [0.5, 1.5] x mean (§2.2).
				f := 0.5 + jitterRNG.Float64()
				return sim.Duration(float64(mean) * f)
			}
			eng.Every(interval, func() {
				r.res.Messages.Broadcasts++
				load := r.srv[id].active
				eng.After(cfg.BroadcastDelay, func() {
					for _, tbl := range r.tables {
						tbl.Update(id, load)
						r.res.Messages.BroadcastDeliveries++
					}
				})
			})
		}
	}

	// Arrivals: reserve the whole trace's sequence band, then chain
	// arrival events lazily. Accesses are assigned to clients
	// round-robin, mirroring the paper's multiple client nodes sharing
	// the workload.
	r.stream = cfg.Workload.Stream(arrivalRNG.Uint64())
	r.arrivalBase = eng.ReserveSeqs(uint64(cfg.Accesses))
	r.scheduleArrival()
	return r, nil
}

// collect assembles the Result after the engine has drained.
func (r *runner) collect() *Result {
	end := r.eng.Now().Seconds()
	res := r.res
	res.SimDuration = end
	res.EventsFired = r.eng.Fired()
	// len(r.srv) == cfg.Servers on fixed-pool runs; elastic runs report
	// every server the run ever grew (joined servers count their
	// pre-join span as idle).
	res.ServerUtilization = make([]float64, len(r.srv))
	var qsum float64
	for i := range r.srv {
		s := &r.srv[i]
		if end > 0 {
			res.ServerUtilization[i] = s.busyTime.Seconds() / end
		}
		qsum += s.qavg.Finish(end)
		if r.cfg.RecordQueueSeries {
			res.QueueSeries = append(res.QueueSeries, s.series)
		}
	}
	res.MeanQueueLength = qsum / float64(len(r.srv))
	res.FinalPool, res.PeakPool = r.cfg.Servers, r.cfg.Servers
	if r.ms != nil {
		res.Joins, res.Drains, res.Leaves = r.ms.joins, r.ms.drains, r.ms.leaves
		res.FinalPool = len(r.ms.members)
		res.PeakPool = r.ms.peakPool
	}
	// Accesses stranded on a paused-forever server drain no events, so
	// the engine exits with them still frozen; they are lost too.
	res.Lost = int64(r.cfg.Accesses - r.completed)
	r.rm.Lost.Add(res.Lost)
	res.Metrics = r.reg.Snapshot()
	return res
}

// Run executes one simulated experiment and returns its measurements.
func Run(cfg Config) (*Result, error) {
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	r.eng.Run()
	return r.collect(), nil
}

// MeanResponse is a convenience accessor: the run's mean response time
// in seconds.
func (r *Result) MeanResponse() float64 { return r.Response.Mean() }

// MeanUtilization returns the average server busy fraction.
func (r *Result) MeanUtilization() float64 {
	var t float64
	for _, u := range r.ServerUtilization {
		t += u
	}
	return t / float64(len(r.ServerUtilization))
}

// Describe summarizes the run in one line for logs.
func (r *Result) Describe() string {
	return fmt.Sprintf("%s %s n=%d: mean=%.3fms p95=%.3fms util=%.3f msgs=%d",
		r.Config.Workload.Name, r.Config.Policy, r.Config.Servers,
		r.Response.Mean()*1e3, r.Response.Percentile(0.95)*1e3,
		r.MeanUtilization(), r.Messages.Total())
}
