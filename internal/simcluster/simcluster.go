// Package simcluster wires the load-balancing policies of internal/core
// into the discrete-event engine of internal/sim, reproducing the
// paper's simulation model (§2): each server has a non-preemptive
// processing unit and a FIFO service queue; the network latency of
// sending a request and receiving a response is half a measured TCP
// round trip; load inquiries cost a measured UDP round trip; broadcast
// intervals are jittered uniformly over [0.5, 1.5] x mean.
//
// It powers Figure 2 (load-index inaccuracy), Figure 3 (broadcast
// frequency), Figure 4 (poll size), and the ablations A1-A3.
package simcluster

import (
	"fmt"
	"strconv"

	"finelb/internal/core"
	"finelb/internal/faults"
	"finelb/internal/obs"
	"finelb/internal/sim"
	"finelb/internal/stats"
	"finelb/internal/workload"
)

// Paper-measured network constants (DESIGN.md §4).
const (
	// DefaultServiceNetDelay is the one-way request or response latency:
	// half of the 516 us that the paper charges for a full
	// send-request/receive-response exchange.
	DefaultServiceNetDelay = 258 * sim.Microsecond
	// DefaultPollRTT is the measured UDP load-inquiry round trip.
	DefaultPollRTT = 290 * sim.Microsecond
	// DefaultBroadcastDelay is the propagation delay of one load
	// broadcast (half the UDP round trip).
	DefaultBroadcastDelay = 145 * sim.Microsecond
)

// DefaultPollTimeout caps how long a client waits for poll answers when
// the policy sets no (or a longer) discard threshold, mirroring the
// prototype client's poll deadline. The cap applies uniformly to
// healthy and faulted runs (DESIGN.md §5); in the healthy model every
// answer arrives within its ~290 us round trip, so it only binds when
// fault injection or extreme PollJitter delays answers.
const DefaultPollTimeout = sim.Duration(sim.Second)

// Config describes one simulated run.
type Config struct {
	Servers  int
	Clients  int               // decision-making client nodes (default 6)
	Workload workload.Workload // arrival dist must already be scaled (ScaledTo)
	Policy   core.Policy

	// SpeedFactors, when non-nil, makes the cluster heterogeneous:
	// server i executes work at SpeedFactors[i] times the base rate
	// (a demand of d seconds takes d/SpeedFactors[i]). Must have length
	// Servers; nil means a homogeneous cluster, as in the paper.
	SpeedFactors []float64

	// Network model; zero values take the paper-measured defaults.
	ServiceNetDelay sim.Duration
	PollRTT         sim.Duration
	BroadcastDelay  sim.Duration

	// PollJitter, when non-nil, adds a sampled extra delay (seconds) to
	// each poll's round trip. The paper's simulation uses constant poll
	// cost (nil); the jitter exists to exercise the discard logic in
	// simulation tests.
	PollJitter stats.Dist

	// Faults, when non-nil, injects the schedule into the run: node
	// events play out on the simulated clock and link faults apply to
	// load inquiries. Fault handling (quarantine, backoff, bounded
	// retries) mirrors the prototype client's, with the shared defaults
	// from internal/faults. Unsupported with the Broadcast policy.
	Faults *faults.Schedule

	// Accesses is the number of service accesses to generate (default 100000).
	Accesses int
	// WarmupFrac is the fraction of initial accesses excluded from
	// statistics (default 0.1).
	WarmupFrac float64
	// Seed makes the run reproducible.
	Seed uint64
	// RecordQueueSeries retains each server's queue-length time series
	// (Figure 2 needs it; it costs memory on long runs).
	RecordQueueSeries bool

	// Metrics, when non-nil, is the registry the run records the shared
	// obs.RunMetrics catalog into; nil records into a private registry.
	// Either way Result.Metrics carries the end-of-run snapshot.
	// Instrumentation schedules no events and draws no randomness, so it
	// cannot perturb a run (the golden-seed harness pins this).
	Metrics *obs.Registry
	// Trace, when non-nil, receives structured protocol events
	// (dispatches, discards, quarantines, server faults) on the
	// simulated clock. See obs.Event for the schema.
	Trace *obs.Trace
}

func (c Config) withDefaults() (Config, error) {
	if c.Servers <= 0 {
		return c, fmt.Errorf("simcluster: Servers = %d", c.Servers)
	}
	if c.Clients == 0 {
		c.Clients = 6
	}
	if c.Clients < 0 {
		return c, fmt.Errorf("simcluster: Clients = %d", c.Clients)
	}
	if err := c.Policy.Validate(); err != nil {
		return c, err
	}
	if c.ServiceNetDelay == 0 {
		c.ServiceNetDelay = DefaultServiceNetDelay
	}
	if c.PollRTT == 0 {
		c.PollRTT = DefaultPollRTT
	}
	if c.BroadcastDelay == 0 {
		c.BroadcastDelay = DefaultBroadcastDelay
	}
	if c.Accesses == 0 {
		c.Accesses = 100000
	}
	if c.Accesses < 0 {
		return c, fmt.Errorf("simcluster: Accesses = %d", c.Accesses)
	}
	if c.WarmupFrac == 0 {
		c.WarmupFrac = 0.1
	}
	if c.WarmupFrac < 0 || c.WarmupFrac >= 1 {
		return c, fmt.Errorf("simcluster: WarmupFrac = %v", c.WarmupFrac)
	}
	if c.Workload.Arrival == nil || c.Workload.Service == nil {
		return c, fmt.Errorf("simcluster: incomplete workload")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return c, err
		}
		if c.Policy.Kind == core.Broadcast {
			// Broadcast agents run on Every() timers that never drain, so
			// a run with lost accesses would never terminate.
			return c, fmt.Errorf("simcluster: Faults is unsupported with the Broadcast policy")
		}
	}
	if c.SpeedFactors != nil {
		if len(c.SpeedFactors) != c.Servers {
			return c, fmt.Errorf("simcluster: %d speed factors for %d servers", len(c.SpeedFactors), c.Servers)
		}
		for i, f := range c.SpeedFactors {
			if f <= 0 {
				return c, fmt.Errorf("simcluster: speed factor %d = %v", i, f)
			}
		}
	}
	return c, nil
}

// MessageCount tallies the load-information traffic of a run,
// supporting the paper's §2.4 scalability argument.
type MessageCount struct {
	PollRequests        int64 // client -> server load inquiries
	PollResponses       int64 // server -> client answers used
	PollsDiscarded      int64 // answers abandoned by the discard deadline
	Broadcasts          int64 // server load announcements
	BroadcastDeliveries int64 // per-client deliveries processed
	Dispatches          int64 // service requests sent
}

// Total returns all load-information messages (excluding the service
// dispatches themselves): what §2.4 counts when comparing policies.
func (m MessageCount) Total() int64 {
	return m.PollRequests + m.PollResponses + m.Broadcasts + m.BroadcastDeliveries
}

// Result reports the measured behaviour of one run.
type Result struct {
	Config Config

	// Response summarizes access response times in seconds (poll time
	// included, as in the paper), over post-warmup accesses.
	Response *stats.Summary
	// PollTime summarizes per-access polling durations in seconds
	// (zero observations for non-polling policies).
	PollTime *stats.Summary
	// Messages tallies load-information traffic.
	Messages MessageCount
	// ServerUtilization is each server's busy fraction.
	ServerUtilization []float64
	// MeanQueueLength is the time-averaged queue length (load index)
	// across servers.
	MeanQueueLength float64
	// QueueSeries holds per-server queue-length series when
	// Config.RecordQueueSeries is set.
	QueueSeries []*QSeries
	// SimDuration is the simulated run length in seconds.
	SimDuration float64

	// Lost counts accesses that never completed despite retries (always
	// zero without Faults).
	Lost int64
	// Retries counts poll re-rounds plus access re-dispatches after
	// failures (always zero without Faults).
	Retries int64

	// Metrics is the end-of-run snapshot of the obs.RunMetrics catalog
	// (taken after the engine drains, so cross-metric invariants hold).
	Metrics *obs.Snapshot
}

// job is one queued access on a server. fail, when non-nil, fires
// instead of done if the server crashes with the job still held (or the
// job arrives at a dead server).
type job struct {
	service sim.Duration
	done    func()
	fail    func()
}

// server models the paper's server: a FIFO queue feeding one
// non-preemptive processing unit. Its load index is the total number of
// active accesses (queued + in service).
type server struct {
	eng       *sim.Engine
	rm        *obs.RunMetrics
	speed     float64 // work rate; demand d takes d/speed
	pending   []job
	busy      bool
	active    int // the load index
	committed int // active + dispatched-but-not-yet-arrived (ideal oracle)
	busyTime  sim.Duration
	qavg      stats.TimeWeighted
	series    *QSeries

	// Fault-injection state (internal/faults); always false/zero in
	// healthy runs.
	down         bool
	paused       bool
	hasCur       bool
	cur          job        // the job in service (cancellable on crash/pause)
	curHandle    sim.Handle // its scheduled completion
	curEnd       sim.Time   // when the job in service would complete
	curRemaining sim.Duration
}

func (s *server) record() {
	now := s.eng.Now().Seconds()
	s.qavg.Set(now, float64(s.active))
	if s.series != nil {
		s.series.record(now, s.active)
	}
}

// arrive enqueues one access; done fires when its service completes.
// A job arriving at a crashed server fails immediately (the connection
// is refused); one arriving at a paused server queues behind the
// stalled processing unit.
func (s *server) arrive(j job) {
	if s.down {
		if j.fail != nil {
			j.fail()
		}
		return
	}
	s.active++
	s.rm.ServerActive.Add(1)
	s.record()
	if s.busy || s.paused {
		s.pending = append(s.pending, j)
		return
	}
	s.start(j)
}

func (s *server) start(j job) {
	s.busy = true
	s.rm.WorkersBusy.Add(1)
	d := sim.Duration(float64(j.service) / s.speed)
	s.busyTime += d
	s.cur, s.hasCur = j, true
	s.curEnd = s.eng.Now().Add(d)
	s.curHandle = s.eng.After(d, func() { s.complete(j) })
}

func (s *server) complete(j job) {
	s.hasCur = false
	s.active--
	s.rm.ServerActive.Add(-1)
	s.rm.ServerServed.Inc()
	s.record()
	s.busy = false
	s.rm.WorkersBusy.Add(-1)
	if len(s.pending) > 0 {
		next := s.pending[0]
		// Shift rather than re-slice forever to let the array be reused.
		copy(s.pending, s.pending[1:])
		s.pending = s.pending[:len(s.pending)-1]
		s.start(next)
	}
	j.done()
}

// crash kills the server permanently: the in-service job and every
// queued job fail (their client connections break) and the load index
// drops to zero.
func (s *server) crash() {
	if s.down {
		return
	}
	s.down = true
	s.paused = false
	if s.hasCur {
		s.curHandle.Cancel()
		if s.cur.fail != nil {
			s.cur.fail()
		}
		s.hasCur = false
	}
	if s.busy {
		s.rm.WorkersBusy.Add(-1)
	}
	s.busy = false
	for _, j := range s.pending {
		if j.fail != nil {
			j.fail()
		}
	}
	s.pending = s.pending[:0]
	s.rm.ServerActive.Add(-int64(s.active))
	s.active = 0
	s.record()
}

// pause freezes the processing unit mid-job: the in-service job's
// completion is suspended with its remaining demand intact, and no
// queued job starts until resume.
func (s *server) pause() {
	if s.down || s.paused {
		return
	}
	s.paused = true
	if s.hasCur {
		s.curHandle.Cancel()
		s.curRemaining = s.curEnd.Sub(s.eng.Now())
	}
}

// resume unfreezes the processing unit; the suspended job finishes its
// remaining demand, then the queue drains normally.
func (s *server) resume() {
	if s.down || !s.paused {
		return
	}
	s.paused = false
	if s.hasCur {
		j := s.cur
		s.curEnd = s.eng.Now().Add(s.curRemaining)
		s.curHandle = s.eng.After(s.curRemaining, func() { s.complete(j) })
		return
	}
	if !s.busy && len(s.pending) > 0 {
		next := s.pending[0]
		copy(s.pending, s.pending[1:])
		s.pending = s.pending[:len(s.pending)-1]
		s.start(next)
	}
}

// Run executes one simulated experiment and returns its measurements.
//
// One runner serves every run. When the fault schedule is absent or
// inert (faults.Schedule.Active() == false), none of the failure
// machinery is allocated and the run takes exactly the paper model's
// RNG draws — the golden-seed harness (golden_test.go) pins this bit
// for bit. With an active schedule the same runner adds the failure
// handling that the prototype client implements: per-server quarantine
// fed by consecutive silent polls, jittered-backoff poll retries,
// bounded access retries after broken round trips, and random fallback
// when all polled servers are quarantined.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	eng := sim.New()
	master := stats.NewRNG(cfg.Seed)
	arrivalRNG := master.Split()
	policyRNG := master.Split()
	jitterRNG := master.Split()

	res := &Result{
		Config:   cfg,
		Response: stats.NewSummary(true),
		PollTime: stats.NewSummary(true),
	}

	// Observability. The catalog always exists (a private registry when
	// the caller supplied none) so instrumentation below is branch-free;
	// it schedules no events and draws no randomness, keeping seeded
	// runs bit-identical with or without a caller registry.
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	rm := obs.NewRunMetrics(reg)
	tr := cfg.Trace
	var clientActor, serverActor []string
	if tr != nil {
		clientActor = make([]string, cfg.Clients)
		for i := range clientActor {
			clientActor[i] = "client:" + strconv.Itoa(i)
		}
		serverActor = make([]string, cfg.Servers)
		for i := range serverActor {
			serverActor[i] = "server:" + strconv.Itoa(i)
		}
	}
	// emit records one trace event; actors is clientActor or serverActor
	// (indexed lazily so the nil-trace path never touches them).
	emit := func(name string, actors []string, idx int, a, b int64) {
		if tr != nil {
			tr.Emit(eng.Now().Seconds(), name, actors[idx], a, b)
		}
	}

	servers := make([]*server, cfg.Servers)
	for i := range servers {
		speed := 1.0
		if cfg.SpeedFactors != nil {
			speed = cfg.SpeedFactors[i]
		}
		servers[i] = &server{eng: eng, rm: rm, speed: speed}
		if cfg.RecordQueueSeries {
			servers[i].series = &QSeries{}
		}
		servers[i].record()
	}

	// Fault machinery, allocated only for an active schedule: the
	// healthy path pays nothing and draws nothing extra.
	var ft *clientFaults
	if cfg.Faults.Active() {
		ft = newClientFaults(eng, cfg.Faults, cfg.Clients, cfg.Servers)
		ft.onQuarantine = func(client, srv int) {
			rm.Quarantines.Inc()
			emit("client.quarantine", clientActor, client, int64(srv), 0)
		}
		// Replay node events on the simulated clock.
		for _, ev := range cfg.Faults.Sorted() {
			ev := ev
			if ev.Node >= cfg.Servers {
				continue
			}
			eng.At(sim.Time(sim.FromSeconds(ev.At.Seconds())), func() {
				switch s := servers[ev.Node]; ev.Kind {
				case faults.Crash:
					s.crash()
					emit("server.crash", serverActor, ev.Node, 0, 0)
				case faults.Pause:
					s.pause()
					emit("server.pause", serverActor, ev.Node, 0, 0)
				case faults.Resume:
					s.resume()
					emit("server.resume", serverActor, ev.Node, 0, 0)
				}
			})
		}
	}

	// Per-client state.
	tables := make([]*core.LoadTable, cfg.Clients)
	rrs := make([]core.RoundRobinState, cfg.Clients)
	if cfg.Policy.Kind == core.Broadcast {
		for i := range tables {
			tables[i] = core.NewLoadTable(cfg.Servers)
		}
	}
	// Per-client outstanding-access counts (LocalLeast).
	var outstanding [][]int
	if cfg.Policy.Kind == core.LocalLeast {
		outstanding = make([][]int, cfg.Clients)
		for i := range outstanding {
			outstanding[i] = make([]int, cfg.Servers)
		}
	}

	// Broadcast agents.
	if cfg.Policy.Kind == core.Broadcast {
		mean := sim.FromSeconds(cfg.Policy.BroadcastInterval.Seconds())
		for id := range servers {
			id := id
			interval := func() sim.Duration {
				if cfg.Policy.BroadcastFixed {
					return mean
				}
				// Jittered uniformly over [0.5, 1.5] x mean (§2.2).
				f := 0.5 + jitterRNG.Float64()
				return sim.Duration(float64(mean) * f)
			}
			eng.Every(interval, func() {
				res.Messages.Broadcasts++
				load := servers[id].active
				eng.After(cfg.BroadcastDelay, func() {
					for _, tbl := range tables {
						tbl.Update(id, load)
						res.Messages.BroadcastDeliveries++
					}
				})
			})
		}
	}

	completed, lost := 0, 0
	warmup := int(float64(cfg.Accesses) * cfg.WarmupFrac)
	finish := func() {
		if completed+lost == cfg.Accesses {
			eng.Stop()
		}
	}

	var handle func(idx, client, attempt int, start sim.Time, service sim.Duration)

	// dispatch sends the access to srv and records its response time
	// when the reply returns to the client. Under faults, a broken round
	// trip (srv crashed before completing it) makes the client
	// quarantine srv and re-run server selection, up to
	// DefaultAccessRetries times.
	dispatch := func(idx, client, srv, attempt int, start sim.Time, service, pollDur sim.Duration) {
		res.Messages.Dispatches++
		rm.Dispatches.Inc()
		emit("access.dispatch", clientActor, client, int64(srv), int64(idx))
		servers[srv].committed++
		if outstanding != nil {
			outstanding[client][srv]++
		}
		settle := func() {
			servers[srv].committed--
			if outstanding != nil {
				outstanding[client][srv]--
			}
		}
		j := job{service: service, done: func() {
			eng.After(cfg.ServiceNetDelay, func() {
				settle()
				completed++
				rm.Completions.Inc()
				rm.ResponseSeconds.Observe(eng.Now().Sub(start).Seconds())
				emit("access.complete", clientActor, client, int64(srv), int64(idx))
				if idx >= warmup {
					res.Response.Add(eng.Now().Sub(start).Seconds())
					if cfg.Policy.Kind == core.Poll {
						res.PollTime.Add(pollDur.Seconds())
					}
				}
				if cfg.Policy.Kind == core.Poll {
					rm.PollWaitSeconds.Observe(pollDur.Seconds())
				}
				finish()
			})
		}}
		if ft != nil {
			j.fail = func() {
				// The client sees the connection break a net delay
				// later, quarantines the server, and retries.
				eng.After(cfg.ServiceNetDelay, func() {
					settle()
					ft.quarantine(client, srv)
					if attempt >= faults.DefaultAccessRetries {
						lost++
						emit("access.lost", clientActor, client, int64(srv), int64(idx))
						finish()
						return
					}
					res.Retries++
					rm.Retries.Inc()
					emit("access.retry", clientActor, client, int64(srv), int64(attempt))
					eng.After(ft.backoff(attempt), func() {
						handle(idx, client, attempt+1, start, service)
					})
				})
			}
		}
		eng.After(cfg.ServiceNetDelay, func() { servers[srv].arrive(j) })
	}

	pollScratch := make([]int, cfg.Servers)
	pollDst := make([]int, cfg.Servers)

	// healthyPoll is the paper's poll round: every inquiry is answered
	// within its round trip, so the decision closes when the last
	// answer is due (capped uniformly by DefaultPollTimeout and the
	// policy's discard threshold).
	healthyPoll := func(idx, client int, start sim.Time, service sim.Duration) {
		set := core.PollSet(policyRNG, cfg.Servers, cfg.Policy.PollSize, pollDst, pollScratch)
		polled := append([]int(nil), set...)
		res.Messages.PollRequests += int64(len(polled))
		rm.PollRequests.Add(int64(len(polled)))

		// Sample each poll's round trip up front; the response value
		// is observed at the server halfway through.
		type pendingPoll struct {
			srv  int
			resp sim.Time
		}
		polls := make([]pendingPoll, len(polled))
		var latest sim.Time
		for i, srv := range polled {
			rtt := cfg.PollRTT
			if cfg.PollJitter != nil {
				rtt += sim.FromSeconds(cfg.PollJitter.Sample(jitterRNG))
			}
			respAt := start.Add(rtt)
			polls[i] = pendingPoll{srv: srv, resp: respAt}
			if respAt > latest {
				latest = respAt
			}
		}
		deadline := latest
		if dl := start.Add(DefaultPollTimeout); dl < deadline {
			deadline = dl
		}
		if d := cfg.Policy.DiscardAfter; d > 0 {
			if dl := start.Add(sim.FromSeconds(d.Seconds())); dl < deadline {
				deadline = dl
			}
		}
		responses := make([]core.PollResponse, 0, len(polled))
		for _, p := range polls {
			p := p
			if p.resp > deadline {
				res.Messages.PollsDiscarded++
				// In the healthy model every server answers; a discarded
				// inquiry's answer arrives past the deadline, so it is
				// both a discard and a late answer (prototype semantics).
				rm.PollDiscards.Inc()
				rm.PollLate.Inc()
				rm.InquiriesServed.Inc() // the server did answer, just late
				rm.PollRTTSeconds.Observe(p.resp.Sub(start).Seconds())
				emit("poll.discard", clientActor, client, int64(p.srv), int64(idx))
				continue
			}
			// Observe the server's load index when the inquiry
			// reaches it (half the round trip in).
			obsAt := p.resp.Add(-sim.Duration((p.resp.Sub(start)) / 2))
			eng.At(obsAt, func() {
				responses = append(responses, core.PollResponse{
					Server: p.srv, Load: servers[p.srv].active,
				})
				res.Messages.PollResponses++
				rm.PollResponses.Inc()
				rm.InquiriesServed.Inc()
				rm.PollRTTSeconds.Observe(p.resp.Sub(start).Seconds())
			})
		}
		eng.At(deadline, func() {
			srv := core.PickFromPolls(policyRNG, responses, polled)
			dispatch(idx, client, srv, 0, start, service, deadline.Sub(start))
		})
	}

	// pollRound is the fault-aware poll round over the unquarantined
	// candidates: silent servers (crashed, stalled, or behind a lossy
	// link) never answer, so it either dispatches on the answers it got
	// or (after DefaultPollRetries silent rounds) falls back to random.
	var pollRound func(idx, client, attempt, round int, cands []int, start sim.Time, service sim.Duration)
	pollRound = func(idx, client, attempt, round int, cands []int, start sim.Time, service sim.Duration) {
		roundStart := eng.Now()
		set := core.PollSet(policyRNG, len(cands), cfg.Policy.PollSize, pollDst, pollScratch)
		polled := make([]int, len(set))
		for i, ci := range set {
			polled[i] = cands[ci]
		}
		res.Messages.PollRequests += int64(len(polled))
		rm.PollRequests.Add(int64(len(polled)))

		deadline := roundStart.Add(DefaultPollTimeout)
		if da := cfg.Policy.DiscardAfter; da > 0 {
			if dl := roundStart.Add(sim.FromSeconds(da.Seconds())); dl < deadline {
				deadline = dl
			}
		}

		responses := make([]core.PollResponse, 0, len(polled))
		answered := make(map[int]bool, len(polled))

		// decide closes the round — either when the last answer arrives
		// (the client has all it asked for) or at the deadline, whichever
		// comes first.
		decided := false
		decide := func() {
			if decided {
				return
			}
			decided = true
			res.Messages.PollsDiscarded += int64(len(polled) - len(responses))
			rm.PollDiscards.Add(int64(len(polled) - len(responses)))
			if n := len(polled) - len(responses); n > 0 {
				emit("poll.discard", clientActor, client, int64(n), int64(round))
			}
			for _, srv := range polled {
				if answered[srv] {
					ft.noteAnswered(client, srv)
				} else {
					ft.noteSilent(client, srv)
				}
			}
			pollDur := eng.Now().Sub(start)
			if len(responses) > 0 {
				srv := core.PickFromPolls(policyRNG, responses, polled)
				dispatch(idx, client, srv, attempt, start, service, pollDur)
				return
			}
			if round >= faults.DefaultPollRetries {
				// Every round was silence: random fallback among the
				// servers still believed live (or all, if none).
				fresh := ft.candidates(client)
				var srv int
				if fresh == nil {
					srv = policyRNG.Intn(cfg.Servers)
				} else {
					srv = fresh[policyRNG.Intn(len(fresh))]
				}
				dispatch(idx, client, srv, attempt, start, service, pollDur)
				return
			}
			res.Retries++
			rm.Retries.Inc()
			emit("poll.retry", clientActor, client, int64(round), int64(idx))
			eng.After(ft.backoff(round), func() {
				fresh := ft.candidates(client)
				if fresh == nil {
					dispatch(idx, client, policyRNG.Intn(cfg.Servers), attempt, start, service, eng.Now().Sub(start))
					return
				}
				pollRound(idx, client, attempt, round+1, fresh, start, service)
			})
		}

		for _, srv := range polled {
			srv := srv
			drop, extra := ft.pollFault(client, srv)
			if drop {
				rm.InquiriesDropped.Inc()
				continue // lost datagram: pure silence until the deadline
			}
			rtt := cfg.PollRTT + extra
			if cfg.PollJitter != nil {
				rtt += sim.FromSeconds(cfg.PollJitter.Sample(jitterRNG))
			}
			respAt := roundStart.Add(rtt)
			if respAt > deadline {
				continue // answer would arrive too late; discarded
			}
			// The inquiry reaches the server halfway through the round
			// trip; a crashed or stalled server never answers it. A live
			// server's load is observed there, and the answer lands back
			// at the client at respAt.
			obsAt := respAt.Add(-sim.Duration((respAt.Sub(roundStart)) / 2))
			eng.At(obsAt, func() {
				s := servers[srv]
				if s.down || s.paused {
					rm.InquiriesDropped.Inc()
					return
				}
				load := s.active
				rm.InquiriesServed.Inc()
				eng.At(respAt, func() {
					if decided {
						rm.PollLate.Inc() // answer landed after the round closed
						return
					}
					responses = append(responses, core.PollResponse{Server: srv, Load: load})
					answered[srv] = true
					res.Messages.PollResponses++
					rm.PollResponses.Inc()
					rm.PollRTTSeconds.Observe(respAt.Sub(roundStart).Seconds())
					if len(responses) == len(polled) {
						decide()
					}
				})
			})
		}

		eng.At(deadline, decide)
	}

	// handle runs the policy decision for one access. The healthy
	// branch is the paper's model, draw for draw; the faulted branch
	// filters quarantined servers first.
	handle = func(idx, client, attempt int, start sim.Time, service sim.Duration) {
		if ft == nil {
			switch cfg.Policy.Kind {
			case core.Random:
				dispatch(idx, client, policyRNG.Intn(cfg.Servers), attempt, start, service, 0)

			case core.RoundRobin:
				dispatch(idx, client, rrs[client].Next(cfg.Servers), attempt, start, service, 0)

			case core.Ideal:
				// Accurate load indexes acquired free of cost (§2): the
				// oracle sees committed work, matching the prototype's
				// centralized manager which increments on assignment.
				loads := make([]int, cfg.Servers)
				for i, s := range servers {
					loads[i] = s.committed
				}
				dispatch(idx, client, core.PickLeast(policyRNG, loads), attempt, start, service, 0)

			case core.LocalLeast:
				dispatch(idx, client, core.PickLeast(policyRNG, outstanding[client]), attempt, start, service, 0)

			case core.Broadcast:
				tbl := tables[client]
				srv := tbl.PickLeast(policyRNG)
				if cfg.Policy.LocalCorrection {
					tbl.Increment(srv)
				}
				dispatch(idx, client, srv, attempt, start, service, 0)

			case core.Poll:
				healthyPoll(idx, client, start, service)
			}
			return
		}

		cands := ft.candidates(client)
		pickFrom := cands
		if pickFrom == nil {
			// Everything quarantined: the full table is all there is.
			pickFrom = make([]int, cfg.Servers)
			for i := range pickFrom {
				pickFrom[i] = i
			}
		}
		switch cfg.Policy.Kind {
		case core.Random:
			dispatch(idx, client, pickFrom[policyRNG.Intn(len(pickFrom))], attempt, start, service, 0)

		case core.RoundRobin:
			dispatch(idx, client, pickFrom[rrs[client].Next(len(pickFrom))], attempt, start, service, 0)

		case core.Ideal:
			// The omniscient oracle routes around dead and stalled
			// servers directly; quarantine is the clients' crutch, not
			// the oracle's.
			best, bestLoad := -1, 0
			ties := 0
			for i, s := range servers {
				if s.down || s.paused {
					continue
				}
				switch {
				case best == -1 || s.committed < bestLoad:
					best, bestLoad, ties = i, s.committed, 1
				case s.committed == bestLoad:
					// Reservoir tie-break, matching core.PickLeast.
					ties++
					if policyRNG.Intn(ties) == 0 {
						best = i
					}
				}
			}
			if best == -1 {
				best = pickFrom[policyRNG.Intn(len(pickFrom))]
			}
			dispatch(idx, client, best, attempt, start, service, 0)

		case core.LocalLeast:
			loads := make([]int, len(pickFrom))
			for i, srv := range pickFrom {
				loads[i] = outstanding[client][srv]
			}
			dispatch(idx, client, pickFrom[core.PickLeast(policyRNG, loads)], attempt, start, service, 0)

		case core.Poll:
			if cands == nil {
				// All quarantined: skip the pointless poll, go random.
				dispatch(idx, client, policyRNG.Intn(cfg.Servers), attempt, start, service, 0)
				return
			}
			pollRound(idx, client, attempt, 0, cands, start, service)
		}
	}

	// Generate arrivals. Accesses are assigned to clients round-robin,
	// mirroring the paper's multiple client nodes sharing the workload.
	stream := cfg.Workload.Stream(arrivalRNG.Uint64())
	for i := 0; i < cfg.Accesses; i++ {
		a := stream.Next()
		i, client := i, i%cfg.Clients
		eng.At(sim.Time(sim.FromSeconds(a.Arrival)), func() {
			handle(i, client, 0, eng.Now(), sim.FromSeconds(a.Service))
		})
	}

	eng.Run()

	end := eng.Now().Seconds()
	res.SimDuration = end
	res.ServerUtilization = make([]float64, cfg.Servers)
	var qsum float64
	for i, s := range servers {
		if end > 0 {
			res.ServerUtilization[i] = s.busyTime.Seconds() / end
		}
		qsum += s.qavg.Finish(end)
		if cfg.RecordQueueSeries {
			res.QueueSeries = append(res.QueueSeries, s.series)
		}
	}
	res.MeanQueueLength = qsum / float64(cfg.Servers)
	// Accesses stranded on a paused-forever server drain no events, so
	// the engine exits with them still frozen; they are lost too.
	res.Lost = int64(cfg.Accesses - completed)
	rm.Lost.Add(res.Lost)
	res.Metrics = reg.Snapshot()
	return res, nil
}

// MeanResponse is a convenience accessor: the run's mean response time
// in seconds.
func (r *Result) MeanResponse() float64 { return r.Response.Mean() }

// MeanUtilization returns the average server busy fraction.
func (r *Result) MeanUtilization() float64 {
	var t float64
	for _, u := range r.ServerUtilization {
		t += u
	}
	return t / float64(len(r.ServerUtilization))
}

// Describe summarizes the run in one line for logs.
func (r *Result) Describe() string {
	return fmt.Sprintf("%s %s n=%d: mean=%.3fms p95=%.3fms util=%.3f msgs=%d",
		r.Config.Workload.Name, r.Config.Policy, r.Config.Servers,
		r.Response.Mean()*1e3, r.Response.Percentile(0.95)*1e3,
		r.MeanUtilization(), r.Messages.Total())
}
