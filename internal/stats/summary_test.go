package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummaryBasic(t *testing.T) {
	s := NewSummary(true)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if math.Abs(s.Var()-2.5) > 1e-12 {
		t.Fatalf("var = %v, want 2.5", s.Var())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := NewSummary(false)
	if s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 || s.StdErr() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	s := NewSummary(true)
	s.Add(7)
	if s.Var() != 0 {
		t.Fatalf("single-sample var = %v", s.Var())
	}
	if s.Percentile(0.5) != 7 {
		t.Fatalf("single-sample median = %v", s.Percentile(0.5))
	}
}

func TestSummaryPercentile(t *testing.T) {
	s := NewSummary(true)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.25, 25.75}, {0.99, 99.01},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %v, want %v", c.p*100, got, c.want)
		}
	}
}

func TestSummaryPercentilePanics(t *testing.T) {
	s := NewSummary(false)
	s.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile on moments-only summary did not panic")
		}
	}()
	s.Percentile(0.5)
}

func TestSummaryFracAbove(t *testing.T) {
	s := NewSummary(true)
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if f := s.FracAbove(8); math.Abs(f-0.2) > 1e-12 {
		t.Fatalf("FracAbove(8) = %v, want 0.2", f)
	}
	if f := s.FracAbove(10); f != 0 {
		t.Fatalf("FracAbove(max) = %v, want 0", f)
	}
	if f := s.FracAbove(0); f != 1 {
		t.Fatalf("FracAbove(below min) = %v, want 1", f)
	}
}

func TestSummaryAddInterleavedPercentile(t *testing.T) {
	// Percentile must stay correct when Adds and Percentile queries
	// interleave (internal sort invalidation).
	s := NewSummary(true)
	s.AddAll([]float64{5, 1, 3})
	if got := s.Percentile(1); got != 5 {
		t.Fatalf("max = %v", got)
	}
	s.Add(9)
	if got := s.Percentile(1); got != 9 {
		t.Fatalf("max after add = %v", got)
	}
}

func TestSummaryMerge(t *testing.T) {
	all := NewSummary(true)
	a := NewSummary(true)
	b := NewSummary(true)
	r := NewRNG(77)
	for i := 0; i < 1000; i++ {
		v := r.Float64() * 10
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Var()-all.Var()) > 1e-9 {
		t.Fatalf("merged var %v vs %v", a.Var(), all.Var())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged extrema wrong")
	}
	if math.Abs(a.Percentile(0.5)-all.Percentile(0.5)) > 1e-9 {
		t.Fatal("merged percentiles wrong")
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	a := NewSummary(true)
	b := NewSummary(true)
	b.Add(4)
	a.Merge(b) // into empty
	if a.N() != 1 || a.Mean() != 4 {
		t.Fatalf("merge into empty: %v", a)
	}
	a.Merge(NewSummary(true)) // from empty
	if a.N() != 1 {
		t.Fatalf("merge from empty changed N: %d", a.N())
	}
}

func TestTimeWeighted(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 2)  // value 2 on [0,10)
	w.Set(10, 4) // value 4 on [10,20)
	got := w.Finish(20)
	if math.Abs(got-3) > 1e-12 {
		t.Fatalf("time-weighted mean = %v, want 3", got)
	}
	if w.Duration() != 20 {
		t.Fatalf("duration = %v", w.Duration())
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var w TimeWeighted
	if w.Mean() != 0 {
		t.Fatalf("empty mean = %v", w.Mean())
	}
}

func TestTimeWeightedPanicsOnBackwardsTime(t *testing.T) {
	var w TimeWeighted
	w.Set(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on decreasing time")
		}
	}()
	w.Set(4, 2)
}

// Property: Welford moments match the naive two-pass computation.
func TestQuickSummaryMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		s := NewSummary(false)
		s.AddAll(xs)
		var sum float64
		for _, v := range xs {
			sum += v
		}
		mean := sum / float64(len(xs))
		var m2 float64
		for _, v := range xs {
			m2 += (v - mean) * (v - mean)
		}
		variance := m2 / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(mean))
		return math.Abs(s.Mean()-mean)/scale < 1e-9 &&
			math.Abs(s.Var()-variance)/math.Max(1, variance) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge is equivalent to adding all samples to one summary,
// for arbitrary splits.
func TestQuickMergeEquivalence(t *testing.T) {
	f := func(raw []float64, splitRaw uint8) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		split := int(splitRaw) % (len(xs) + 1)
		whole := NewSummary(false)
		whole.AddAll(xs)
		a := NewSummary(false)
		a.AddAll(xs[:split])
		b := NewSummary(false)
		b.AddAll(xs[split:])
		a.Merge(b)
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-6*math.Max(1, math.Abs(whole.Mean())) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := NewSummary(true)
		s.AddAll(xs)
		ps := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
		vals := make([]float64, len(ps))
		for i, p := range ps {
			vals[i] = s.Percentile(p)
		}
		if !sort.Float64sAreSorted(vals) {
			return false
		}
		return vals[0] == s.Min() && vals[len(vals)-1] == s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarySamples(t *testing.T) {
	s := NewSummary(true)
	s.AddAll([]float64{3, 1, 2})
	got := s.Samples()
	if len(got) != 3 {
		t.Fatalf("samples %v", got)
	}
	// Mutating the copy must not affect the summary.
	got[0] = 99
	if s.Max() != 3 {
		t.Fatal("Samples returned a live reference")
	}
	mo := NewSummary(false)
	mo.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Samples on moments-only summary did not panic")
		}
	}()
	mo.Samples()
}
