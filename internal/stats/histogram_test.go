package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Count(i) != 1 {
			t.Fatalf("bin %d count %d, want 1", i, h.Count(i))
		}
	}
	if h.Underflow() != 0 || h.Overflow() != 0 {
		t.Fatal("unexpected under/overflow")
	}
}

func TestHistogramOverUnderflow(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-0.1)
	h.Add(1.0) // hi edge is exclusive
	h.Add(5)
	if h.Underflow() != 1 {
		t.Fatalf("underflow = %d", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram(2, 12, 5)
	lo, hi := h.BinEdges(0)
	if lo != 2 || hi != 4 {
		t.Fatalf("bin 0 edges [%v,%v)", lo, hi)
	}
	lo, hi = h.BinEdges(4)
	if lo != 10 || hi != 12 {
		t.Fatalf("bin 4 edges [%v,%v)", lo, hi)
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(1e-3, 1e3, 6) // one bin per decade
	for _, v := range []float64{2e-3, 2e-2, 2e-1, 2, 20, 200} {
		h.Add(v)
	}
	for i := 0; i < 6; i++ {
		if h.Count(i) != 1 {
			t.Fatalf("log bin %d count %d, want 1", i, h.Count(i))
		}
	}
	h.Add(0) // non-positive goes to underflow in log scale
	if h.Underflow() != 1 {
		t.Fatalf("underflow = %d", h.Underflow())
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Fatalf("render lacks bars:\n%s", out)
	}
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("render line count wrong:\n%s", out)
	}
}

func TestHistogramInvalidParams(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(1, 1, 4) },
		func() { NewHistogram(0, 1, 0) },
		func() { NewLogHistogram(0, 1, 4) },
		func() { NewLogHistogram(2, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid histogram params did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: every added value lands in exactly one counter, so the
// total always equals N.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram(-5, 5, 7)
		n := 0
		for _, v := range vals {
			if v != v { // skip NaN: binning NaN is unspecified
				continue
			}
			h.Add(v)
			n++
		}
		var total int64 = h.Underflow() + h.Overflow()
		for i := 0; i < 7; i++ {
			total += h.Count(i)
		}
		return total == int64(n) && h.N() == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a value within range lands in the bin whose edges contain it.
func TestQuickHistogramBinEdgesConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		h := NewHistogram(0, 1, 13)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			before := make([]int64, 13)
			for j := range before {
				before[j] = h.Count(j)
			}
			h.Add(v)
			for j := 0; j < 13; j++ {
				if h.Count(j) != before[j] {
					lo, hi := h.BinEdges(j)
					if v < lo || v >= hi {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
