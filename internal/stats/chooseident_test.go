package stats

import (
	"testing"
	"testing/quick"
)

// TestChooseIdentityMatchesChoose is the stream-compatibility pin:
// ChooseIdentity must consume the same random draws and produce the
// same indices as Choose, and must leave ident as the identity
// permutation afterwards. Golden-digest stability of the polling
// policies depends on this equivalence.
func TestChooseIdentityMatchesChoose(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8, rounds uint8) bool {
		n := int(nRaw%64) + 1
		k := int(kRaw)%n + 1
		r1 := NewRNG(seed)
		r2 := NewRNG(seed)
		scratch := make([]int, n)
		ident := make([]int, n)
		for i := range ident {
			ident[i] = i
		}
		swaps := make([]int, k)
		want := make([]int, k)
		got := make([]int, k)
		// Repeat to catch state divergence, not just first-call agreement.
		for rep := 0; rep < int(rounds%4)+1; rep++ {
			r1.Choose(want, n, scratch)
			r2.ChooseIdentity(got, n, ident, swaps)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			for i, v := range ident {
				if v != i {
					return false
				}
			}
		}
		return r1.Uint64() == r2.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChooseIdentityPanics(t *testing.T) {
	r := NewRNG(1)
	ident := []int{0, 1, 2}
	for i, fn := range []func(){
		func() { r.ChooseIdentity(make([]int, 4), 3, ident, make([]int, 4)) },
		func() { r.ChooseIdentity(make([]int, 2), 4, ident, make([]int, 2)) },
		func() { r.ChooseIdentity(make([]int, 2), 3, ident, make([]int, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestChooseIdentityZeroAllocs: the whole point of the ident variant is
// an allocation- and O(n)-free polling hot path.
func TestChooseIdentityZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under -race")
	}
	r := NewRNG(9)
	const n = 4096
	ident := make([]int, n)
	for i := range ident {
		ident[i] = i
	}
	dst := make([]int, 8)
	swaps := make([]int, 8)
	avg := testing.AllocsPerRun(1000, func() {
		r.ChooseIdentity(dst, n, ident, swaps)
	})
	if avg != 0 {
		t.Errorf("ChooseIdentity allocates %.2f allocs/op, want 0", avg)
	}
}
