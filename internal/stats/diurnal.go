package stats

import (
	"fmt"
	"math"
)

// Diurnal is a time-inhomogeneous Poisson inter-arrival process with a
// sinusoidal day/night rate profile:
//
//	lambda(t) = baseRate * (1 - Amp*cos(2*pi*t/Period))
//
// starting at the trough (t = 0 is the quietest moment, t = Period/2
// the peak), so a run that begins calm climbs to Amp-times-over-mean
// offered load and subsides again — the canonical trace an autoscaler
// must track. baseRate is 1/MeanInterval, the time-average rate, so
// demand scaling through the workload layer keeps working: the long-run
// mean inter-arrival time is MeanInterval regardless of Amp.
//
// Sampling uses Lewis–Shedler thinning against the peak rate
// lambdaMax = baseRate*(1+Amp): candidate arrivals come from a
// homogeneous Exp(1/lambdaMax) stream and survive with probability
// lambda(t)/lambdaMax. Diurnal carries its own process clock across
// draws: use one instance per stream (it implements Forker) and do not
// share it between goroutines.
type Diurnal struct {
	MeanInterval float64 // time-average inter-arrival time (seconds)
	Amp          float64 // modulation depth in [0, 1): 0 degenerates to Exp
	Period       float64 // cycle length (seconds)

	t float64 // process clock: absolute time of the last arrival
}

// NewDiurnal validates and returns a diurnal arrival process.
func NewDiurnal(meanInterval, amp, period float64) *Diurnal {
	if meanInterval <= 0 {
		panic(fmt.Sprintf("stats: Diurnal mean interval %v <= 0", meanInterval))
	}
	if amp < 0 || amp >= 1 {
		panic(fmt.Sprintf("stats: Diurnal amplitude %v outside [0,1)", amp))
	}
	if period <= 0 {
		panic(fmt.Sprintf("stats: Diurnal period %v <= 0", period))
	}
	return &Diurnal{MeanInterval: meanInterval, Amp: amp, Period: period}
}

// rate returns lambda(t).
func (d *Diurnal) rate(t float64) float64 {
	base := 1 / d.MeanInterval
	return base * (1 - d.Amp*math.Cos(2*math.Pi*t/d.Period))
}

// Sample draws the next inter-arrival interval, advancing the process
// clock.
func (d *Diurnal) Sample(r *RNG) float64 {
	lambdaMax := (1 + d.Amp) / d.MeanInterval
	start := d.t
	for {
		d.t += r.ExpFloat64() / lambdaMax
		if d.Amp == 0 || r.Float64()*lambdaMax < d.rate(d.t) {
			return d.t - start
		}
	}
}

// Mean returns the time-average inter-arrival time. (The instantaneous
// mean swings between MeanInterval/(1+Amp) and MeanInterval/(1-Amp);
// demand scaling uses the long-run average.)
func (d *Diurnal) Mean() float64 { return d.MeanInterval }

// Std returns the marginal standard deviation of the intervals. For the
// time-average exponential envelope this is approximately the mean;
// exact marginal moments of a thinned sinusoidal process have no closed
// form worth carrying, and Std here only feeds CV-style sanity checks.
func (d *Diurnal) Std() float64 { return d.MeanInterval }

func (d *Diurnal) String() string {
	return fmt.Sprintf("Diurnal(mean=%v, amp=%v, period=%v)", d.MeanInterval, d.Amp, d.Period)
}

// Fork implements Forker: the copy starts with a fresh process clock.
func (d *Diurnal) Fork() Dist {
	return NewDiurnal(d.MeanInterval, d.Amp, d.Period)
}
