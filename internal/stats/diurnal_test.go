package stats

import (
	"math"
	"testing"
)

func TestDiurnalValidation(t *testing.T) {
	cases := []struct{ mean, amp, period float64 }{
		{0, 0.5, 10},
		{-1, 0.5, 10},
		{1, -0.1, 10},
		{1, 1.0, 10},
		{1, 0.5, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDiurnal(%v, %v, %v) did not panic", c.mean, c.amp, c.period)
				}
			}()
			NewDiurnal(c.mean, c.amp, c.period)
		}()
	}
}

// TestDiurnalLongRunMean: the time-average rate is 1/MeanInterval —
// the sinusoid integrates to zero over whole periods — so over many
// periods the empirical mean interval converges to MeanInterval.
func TestDiurnalLongRunMean(t *testing.T) {
	d := NewDiurnal(0.01, 0.8, 10.0)
	r := NewRNG(7)
	n := 200000
	var total float64
	for i := 0; i < n; i++ {
		total += d.Sample(r)
	}
	got := total / float64(n)
	if math.Abs(got-0.01)/0.01 > 0.05 {
		t.Fatalf("empirical mean interval %v, want 0.01 within 5%%", got)
	}
}

// TestDiurnalModulation: arrivals concentrate near the peak
// (t ≈ period/2 mod period) and thin out near the trough. Count
// arrivals per quarter-period over many cycles: the peak quarter must
// see substantially more than the trough quarter.
func TestDiurnalModulation(t *testing.T) {
	period := 10.0
	d := NewDiurnal(0.01, 0.8, period)
	r := NewRNG(11)
	counts := [4]int{}
	var clock float64
	for i := 0; i < 100000; i++ {
		clock += d.Sample(r)
		phase := math.Mod(clock, period) / period
		counts[int(phase*4)%4]++
	}
	trough := counts[0] + counts[3] // quarters around t=0 (the trough)
	peak := counts[1] + counts[2]   // quarters around t=period/2 (the peak)
	if float64(peak) < 1.5*float64(trough) {
		t.Fatalf("peak/trough arrival counts %d/%d: modulation too weak", peak, trough)
	}
}

// TestDiurnalZeroAmpMatchesExp: amp = 0 degenerates to a plain
// homogeneous Poisson process.
func TestDiurnalZeroAmpMatchesExp(t *testing.T) {
	d := NewDiurnal(0.5, 0, 10)
	r1 := NewRNG(3)
	r2 := NewRNG(3)
	e := Exponential{MeanValue: 0.5}
	for i := 0; i < 100; i++ {
		if got, want := d.Sample(r1), e.Sample(r2); math.Abs(got-want) > 1e-12 {
			t.Fatalf("draw %d: diurnal %v vs exp %v", i, got, want)
		}
	}
}

func TestDiurnalFork(t *testing.T) {
	d := NewDiurnal(0.01, 0.5, 10)
	r := NewRNG(5)
	for i := 0; i < 50; i++ {
		d.Sample(r) // advance the process clock
	}
	f, ok := ForkDist(d).(*Diurnal)
	if !ok {
		t.Fatal("ForkDist did not return a *Diurnal")
	}
	if f == d {
		t.Fatal("Fork returned the same instance")
	}
	if f.t != 0 {
		t.Fatalf("forked process clock %v, want 0", f.t)
	}
	// Same seed, fresh fork: deterministic replay.
	a, b := NewDiurnal(0.01, 0.5, 10), NewDiurnal(0.01, 0.5, 10)
	ra, rb := NewRNG(9), NewRNG(9)
	for i := 0; i < 100; i++ {
		if a.Sample(ra) != b.Sample(rb) {
			t.Fatal("same-seed diurnal streams diverged")
		}
	}
}

func TestDiurnalMoments(t *testing.T) {
	d := NewDiurnal(0.25, 0.6, 100)
	if d.Mean() != 0.25 || d.Std() != 0.25 {
		t.Fatalf("Mean=%v Std=%v, want 0.25, 0.25", d.Mean(), d.Std())
	}
	if d.String() == "" {
		t.Fatal("empty String()")
	}
}
