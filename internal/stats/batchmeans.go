package stats

import "math"

// BatchMeans estimates a confidence interval for the steady-state mean
// of a correlated sample sequence (simulation output analysis). Naive
// standard errors understate the uncertainty of queueing measurements
// because successive response times are autocorrelated; batching into
// nBatches contiguous batches and treating batch means as independent
// is the standard remedy.
//
// It returns the grand mean and the half-width of the ~95% confidence
// interval. With fewer than 2 batches' worth of data the half-width is
// reported as +Inf.
func BatchMeans(samples []float64, nBatches int) (mean, halfWidth float64) {
	if nBatches < 2 {
		panic("stats: BatchMeans needs at least 2 batches")
	}
	n := len(samples)
	if n < 2*nBatches {
		// Not enough data to form meaningful batches.
		s := NewSummary(false)
		s.AddAll(samples)
		return s.Mean(), math.Inf(1)
	}
	batchSize := n / nBatches
	used := batchSize * nBatches
	// Drop the ragged tail so batches are equal-sized.
	means := make([]float64, nBatches)
	for b := 0; b < nBatches; b++ {
		var sum float64
		for i := b * batchSize; i < (b+1)*batchSize; i++ {
			sum += samples[i]
		}
		means[b] = sum / float64(batchSize)
	}
	var grand float64
	for _, m := range means {
		grand += m
	}
	grand /= float64(nBatches)
	var ss float64
	for _, m := range means {
		ss += (m - grand) * (m - grand)
	}
	se := math.Sqrt(ss / float64(nBatches-1) / float64(nBatches))
	// t-quantile for ~95% two-sided at nBatches-1 degrees of freedom.
	return grandMeanOver(samples[:used], grand), tQuantile95(nBatches-1) * se
}

// grandMeanOver returns the mean of the used prefix; the grand mean of
// equal-size batch means equals it, but recomputing keeps the function
// honest about which samples contributed.
func grandMeanOver(samples []float64, fallback float64) float64 {
	if len(samples) == 0 {
		return fallback
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// tQuantile95 approximates the two-sided 95% Student-t quantile for df
// degrees of freedom (exact table entries for small df, 1.96 limit).
func tQuantile95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
		2.086,
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) {
		return table[df]
	}
	switch {
	case df < 30:
		return 2.05
	case df < 60:
		return 2.01
	default:
		return 1.96
	}
}
