package stats

import (
	"fmt"
	"math"
)

// Phased is a two-phase Markov-modulated distribution: samples come
// from phase A or phase B, and the process stays in each phase for a
// geometrically distributed number of draws (mean MeanRunA / MeanRunB).
// Unlike an iid distribution with the same marginal moments, successive
// samples are *correlated* — used to model the burst structure of real
// service traces, where busy spells of short arrival intervals
// alternate with calm spells.
//
// Phased carries phase state across draws: use one instance per stream
// and do not share it between goroutines.
type Phased struct {
	A, B               Dist
	MeanRunA, MeanRunB float64

	inited bool
	inB    bool
}

// NewPhased validates and returns a phased distribution.
func NewPhased(a, b Dist, meanRunA, meanRunB float64) *Phased {
	if meanRunA < 1 || meanRunB < 1 {
		panic("stats: Phased mean run lengths must be >= 1")
	}
	if a == nil || b == nil {
		panic("stats: Phased needs both phase distributions")
	}
	return &Phased{A: a, B: b, MeanRunA: meanRunA, MeanRunB: meanRunB}
}

// PhasedBurstyExp builds a bursty interval process with overall mean
// interval `mean`: a busy phase with intervals Exp(mean/burst) and a
// calm phase with intervals Exp(mean*(2-1/burst)), equal mean run
// lengths, so the long-run mean stays `mean` while burst > 1
// concentrates arrivals into spells. burst = 1 degenerates to plain
// Exp(mean).
func PhasedBurstyExp(mean, burst, meanRun float64) *Phased {
	if mean <= 0 || burst < 1 {
		panic("stats: PhasedBurstyExp requires mean > 0 and burst >= 1")
	}
	return NewPhased(
		Exponential{MeanValue: mean / burst},
		Exponential{MeanValue: mean * (2 - 1/burst)},
		meanRun, meanRun,
	)
}

// shareA is the fraction of draws taken in phase A.
func (p *Phased) shareA() float64 {
	return p.MeanRunA / (p.MeanRunA + p.MeanRunB)
}

// Sample draws the next value, advancing the phase chain.
func (p *Phased) Sample(r *RNG) float64 {
	if !p.inited {
		p.inited = true
		p.inB = r.Float64() >= p.shareA() // start in the stationary phase mix
	}
	var v float64
	if p.inB {
		v = p.B.Sample(r)
		if r.Float64() < 1/p.MeanRunB {
			p.inB = false
		}
	} else {
		v = p.A.Sample(r)
		if r.Float64() < 1/p.MeanRunA {
			p.inB = true
		}
	}
	return v
}

// Mean returns the draw-stationary mixture mean.
func (p *Phased) Mean() float64 {
	sa := p.shareA()
	return sa*p.A.Mean() + (1-sa)*p.B.Mean()
}

// Std returns the draw-stationary mixture standard deviation (of the
// marginal; it ignores the inter-draw correlation, which is the point
// of the construction).
func (p *Phased) Std() float64 {
	sa := p.shareA()
	// E[X^2] per phase = var + mean^2.
	m2a := p.A.Std()*p.A.Std() + p.A.Mean()*p.A.Mean()
	m2b := p.B.Std()*p.B.Std() + p.B.Mean()*p.B.Mean()
	m := p.Mean()
	return math.Sqrt(sa*m2a + (1-sa)*m2b - m*m)
}

func (p *Phased) String() string {
	return fmt.Sprintf("Phased(%v x%g | %v x%g)", p.A, p.MeanRunA, p.B, p.MeanRunB)
}

// Forker is implemented by stateful distributions that must not share
// their state between independent sample streams.
type Forker interface {
	// Fork returns an independent copy with reset stream state.
	Fork() Dist
}

// Fork implements Forker: the copy starts with fresh phase state.
func (p *Phased) Fork() Dist {
	return NewPhased(ForkDist(p.A), ForkDist(p.B), p.MeanRunA, p.MeanRunB)
}

// ForkDist returns an independent copy of d when d is stateful
// (implements Forker), and d itself otherwise. Every consumer that
// starts a new sample stream should pass its distributions through
// ForkDist.
func ForkDist(d Dist) Dist {
	if f, ok := d.(Forker); ok {
		return f.Fork()
	}
	return d
}
