package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// checkMoments samples d and verifies the empirical mean/std track the
// analytic ones within tol (relative).
func checkMoments(t *testing.T, d Dist, n int, tol float64) {
	t.Helper()
	r := NewRNG(1234)
	s := NewSummary(false)
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v < 0 {
			t.Fatalf("%v produced negative sample %v", d, v)
		}
		s.Add(v)
	}
	if m := d.Mean(); math.Abs(s.Mean()-m)/m > tol {
		t.Errorf("%v: empirical mean %v vs analytic %v", d, s.Mean(), m)
	}
	if sd := d.Std(); sd > 0 && math.Abs(s.Std()-sd)/sd > 2*tol {
		t.Errorf("%v: empirical std %v vs analytic %v", d, s.Std(), sd)
	}
}

func TestExponentialMoments(t *testing.T) {
	checkMoments(t, Exponential{MeanValue: 50e-3}, 200000, 0.02)
}

func TestUniformMoments(t *testing.T) {
	checkMoments(t, Uniform{Lo: 0.5, Hi: 1.5}, 200000, 0.02)
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 3.25}
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if v := d.Sample(r); v != 3.25 {
			t.Fatalf("Deterministic sample %v", v)
		}
	}
	if d.Mean() != 3.25 || d.Std() != 0 {
		t.Fatalf("Deterministic moments wrong: %v %v", d.Mean(), d.Std())
	}
}

func TestLognormalFromMoments(t *testing.T) {
	cases := []struct{ mean, std float64 }{
		{28.9e-3, 62.9e-3}, // Medium-Grain trace service time
		{2.22e-3, 1.0e-3},  // Fine-Grain trace service time
		{1, 2},
		{100, 10},
	}
	for _, c := range cases {
		d := LognormalFromMoments(c.mean, c.std)
		if math.Abs(d.Mean()-c.mean)/c.mean > 1e-9 {
			t.Errorf("analytic mean %v, want %v", d.Mean(), c.mean)
		}
		if math.Abs(d.Std()-c.std)/c.std > 1e-9 {
			t.Errorf("analytic std %v, want %v", d.Std(), c.std)
		}
		checkMoments(t, d, 400000, 0.05)
	}
}

func TestLognormalPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive mean")
		}
	}()
	LognormalFromMoments(0, 1)
}

func TestParetoMoments(t *testing.T) {
	checkMoments(t, Pareto{Xm: 1, Alpha: 3.5}, 400000, 0.05)
}

func TestParetoInfiniteMoments(t *testing.T) {
	if m := (Pareto{Xm: 1, Alpha: 0.9}).Mean(); !math.IsInf(m, 1) {
		t.Fatalf("alpha<=1 mean = %v, want +Inf", m)
	}
	if s := (Pareto{Xm: 1, Alpha: 1.5}).Std(); !math.IsInf(s, 1) {
		t.Fatalf("alpha<=2 std = %v, want +Inf", s)
	}
}

func TestWeibullMoments(t *testing.T) {
	checkMoments(t, Weibull{Scale: 2, Shape: 1.5}, 300000, 0.03)
	// Shape 1 reduces to exponential.
	d := Weibull{Scale: 3, Shape: 1}
	if math.Abs(d.Mean()-3) > 1e-9 {
		t.Fatalf("Weibull(k=1) mean %v, want 3", d.Mean())
	}
}

func TestHyperexpFromMoments(t *testing.T) {
	for _, cv := range []float64{1.0, 1.5, 2.0, 4.0} {
		d := HyperexpFromMoments(10, cv)
		if math.Abs(d.Mean()-10)/10 > 1e-9 {
			t.Errorf("cv=%v: analytic mean %v, want 10", cv, d.Mean())
		}
		if gotCV := CV(d); math.Abs(gotCV-cv)/cv > 1e-9 {
			t.Errorf("cv=%v: analytic CV %v", cv, gotCV)
		}
		checkMoments(t, d, 400000, 0.05)
	}
}

func TestHyperexpPanicsBelowCV1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for cv<1")
		}
	}()
	HyperexpFromMoments(1, 0.5)
}

func TestScaled(t *testing.T) {
	base := Exponential{MeanValue: 2}
	d := Scaled{D: base, Factor: 0.25}
	if d.Mean() != 0.5 || d.Std() != 0.5 {
		t.Fatalf("scaled moments %v %v", d.Mean(), d.Std())
	}
	checkMoments(t, d, 200000, 0.02)
}

func TestCVZeroMean(t *testing.T) {
	if cv := CV(Deterministic{Value: 0}); cv != 0 {
		t.Fatalf("CV of zero-mean dist = %v", cv)
	}
}

// Property: LognormalFromMoments round-trips arbitrary positive moments.
func TestQuickLognormalRoundTrip(t *testing.T) {
	f := func(mRaw, sRaw uint16) bool {
		mean := float64(mRaw%1000+1) / 100 // (0.01, 10]
		std := float64(sRaw%2000+1) / 100  // (0.01, 20]
		d := LognormalFromMoments(mean, std)
		return math.Abs(d.Mean()-mean)/mean < 1e-9 &&
			math.Abs(d.Std()-std)/std < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: all samples from every distribution family are non-negative
// and finite.
func TestQuickSamplesNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		dists := []Dist{
			Exponential{MeanValue: 1},
			LognormalFromMoments(1, 2),
			Pareto{Xm: 0.5, Alpha: 2.2},
			Weibull{Scale: 1, Shape: 0.7},
			HyperexpFromMoments(1, 3),
			Uniform{Lo: 0, Hi: 1},
		}
		for _, d := range dists {
			for i := 0; i < 20; i++ {
				v := d.Sample(r)
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
