package stats

import (
	"math"
	"testing"
)

func TestBatchMeansIIDCoverage(t *testing.T) {
	// For iid samples the CI should cover the true mean most of the
	// time; check over repeated experiments.
	covered := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		r := NewRNG(uint64(trial) + 1)
		samples := make([]float64, 2000)
		for i := range samples {
			samples[i] = r.ExpFloat64() // true mean 1
		}
		mean, hw := BatchMeans(samples, 20)
		if math.IsInf(hw, 1) {
			t.Fatal("unexpected infinite half-width")
		}
		if mean-hw <= 1 && 1 <= mean+hw {
			covered++
		}
	}
	// Nominal 95%; accept anything above 85% to avoid flakiness.
	if covered < trials*85/100 {
		t.Fatalf("CI covered true mean only %d/%d times", covered, trials)
	}
}

func TestBatchMeansCorrelatedWiderThanNaive(t *testing.T) {
	// Strongly autocorrelated samples: the batch-means CI must be much
	// wider than the naive iid standard error.
	r := NewRNG(7)
	samples := make([]float64, 4000)
	x := 0.0
	for i := range samples {
		// AR(1) with phi=0.95.
		x = 0.95*x + r.NormFloat64()
		samples[i] = x
	}
	_, hw := BatchMeans(samples, 20)
	s := NewSummary(false)
	s.AddAll(samples)
	naive := 1.96 * s.StdErr()
	if hw < 2*naive {
		t.Fatalf("batch-means half-width %v not clearly wider than naive %v for AR(1)", hw, naive)
	}
}

func TestBatchMeansSmallSamples(t *testing.T) {
	mean, hw := BatchMeans([]float64{1, 2, 3}, 10)
	if !math.IsInf(hw, 1) {
		t.Fatalf("half-width %v for tiny sample, want +Inf", hw)
	}
	if math.Abs(mean-2) > 1e-12 {
		t.Fatalf("mean %v", mean)
	}
}

func TestBatchMeansPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nBatches < 2 accepted")
		}
	}()
	BatchMeans([]float64{1, 2}, 1)
}

func TestTQuantileMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		q := tQuantile95(df)
		if q > prev {
			t.Fatalf("t quantile not non-increasing at df=%d", df)
		}
		prev = q
	}
	if q := tQuantile95(1000); q != 1.96 {
		t.Fatalf("limit quantile %v", q)
	}
}
