package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over [Lo, Hi) with uniformly sized
// bins plus underflow/overflow counters. It is used by experiments to
// report latency and queue-length shapes.
type Histogram struct {
	lo, hi    float64
	bins      []int64
	under     int64
	over      int64
	n         int64
	logScaled bool
}

// NewHistogram returns a histogram with nbins uniform bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int64, nbins)}
}

// NewLogHistogram returns a histogram whose bins are uniform in
// log-space over [lo, hi); lo must be positive. Suitable for latency
// distributions spanning several orders of magnitude.
func NewLogHistogram(lo, hi float64, nbins int) *Histogram {
	if lo <= 0 || hi <= lo || nbins <= 0 {
		panic("stats: invalid log-histogram parameters")
	}
	return &Histogram{
		lo: math.Log(lo), hi: math.Log(hi),
		bins: make([]int64, nbins), logScaled: true,
	}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	v := x
	if h.logScaled {
		if x <= 0 {
			h.under++
			return
		}
		v = math.Log(x)
	}
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		idx := int(float64(len(h.bins)) * (v - h.lo) / (h.hi - h.lo))
		if idx >= len(h.bins) { // guard rounding at the upper edge
			idx = len(h.bins) - 1
		}
		h.bins[idx]++
	}
}

// N returns the number of observations including under/overflow.
func (h *Histogram) N() int64 { return h.n }

// Count returns the count in bin i.
func (h *Histogram) Count(i int) int64 { return h.bins[i] }

// Underflow returns the count of observations below the histogram range.
func (h *Histogram) Underflow() int64 { return h.under }

// Overflow returns the count of observations at or above the range.
func (h *Histogram) Overflow() int64 { return h.over }

// BinEdges returns the lower and upper edge of bin i in data space.
func (h *Histogram) BinEdges(i int) (lo, hi float64) {
	w := (h.hi - h.lo) / float64(len(h.bins))
	lo = h.lo + float64(i)*w
	hi = lo + w
	if h.logScaled {
		lo, hi = math.Exp(lo), math.Exp(hi)
	}
	return lo, hi
}

// Render draws an ASCII bar chart with the given maximum bar width.
func (h *Histogram) Render(width int) string {
	var peak int64 = 1
	for _, c := range h.bins {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range h.bins {
		lo, hi := h.BinEdges(i)
		bar := strings.Repeat("#", int(int64(width)*c/peak))
		fmt.Fprintf(&b, "[%10.4g, %10.4g) %8d %s\n", lo, hi, c, bar)
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "overflow %d\n", h.over)
	}
	return b.String()
}
