package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestRNGSeedChangesStream(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestRNGReseed(t *testing.T) {
	r := NewRNG(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if v := r.Uint64(); v != first[i] {
			t.Fatalf("reseeded stream diverged at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	for n := 1; n <= 17; n++ {
		seen := make([]bool, n)
		for i := 0; i < 200*n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("Intn(%d) never produced %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(99)
	const n, draws = 10, 500000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.03 {
			t.Fatalf("Intn(%d): value %d count %d deviates >3%% from %v", n, v, c, want)
		}
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := NewRNG(8)
	s := NewSummary(false)
	for i := 0; i < 200000; i++ {
		s.Add(r.ExpFloat64())
	}
	if math.Abs(s.Mean()-1) > 0.02 {
		t.Fatalf("exp mean %v, want ~1", s.Mean())
	}
	if math.Abs(s.Std()-1) > 0.03 {
		t.Fatalf("exp std %v, want ~1", s.Std())
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(9)
	s := NewSummary(false)
	for i := 0; i < 200000; i++ {
		s.Add(r.NormFloat64())
	}
	if math.Abs(s.Mean()) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", s.Mean())
	}
	if math.Abs(s.Std()-1) > 0.02 {
		t.Fatalf("normal std %v, want ~1", s.Std())
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(12)
	for n := 0; n < 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestChooseDistinct(t *testing.T) {
	r := NewRNG(13)
	scratch := make([]int, 16)
	dst := make([]int, 4)
	for trial := 0; trial < 1000; trial++ {
		r.Choose(dst, 16, scratch)
		seen := map[int]bool{}
		for _, v := range dst {
			if v < 0 || v >= 16 {
				t.Fatalf("Choose produced out-of-range %d", v)
			}
			if seen[v] {
				t.Fatalf("Choose produced duplicate in %v", dst)
			}
			seen[v] = true
		}
	}
}

func TestChooseCoversAll(t *testing.T) {
	r := NewRNG(14)
	scratch := make([]int, 5)
	dst := make([]int, 2)
	hits := make([]int, 5)
	for trial := 0; trial < 5000; trial++ {
		r.Choose(dst, 5, scratch)
		for _, v := range dst {
			hits[v]++
		}
	}
	for v, c := range hits {
		if c == 0 {
			t.Fatalf("Choose never selected %d", v)
		}
	}
}

func TestChoosePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choose with k>n did not panic")
		}
	}()
	r := NewRNG(1)
	r.Choose(make([]int, 3), 2, make([]int, 2))
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(21)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlap: %d/100 identical", same)
	}
}

// Property: Intn output is always within range for arbitrary seeds and n.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mul64 agrees with big-integer multiplication on the low and
// high words for arbitrary inputs.
func TestQuickMul64(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via 32-bit schoolbook on the reference path.
		wantLo := a * b
		// hi = floor(a*b / 2^64): recompute independently.
		aHi, aLo := a>>32, a&0xffffffff
		bHi, bLo := b>>32, b&0xffffffff
		carry := (aLo*bLo)>>32 + (aHi*bLo)&0xffffffff + (aLo*bHi)&0xffffffff
		wantHi := aHi*bHi + (aHi*bLo)>>32 + (aLo*bHi)>>32 + carry>>32
		return lo == wantLo && hi == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkRNGIntn16(b *testing.B) {
	r := NewRNG(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(16)
	}
	_ = sink
}
