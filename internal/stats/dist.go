package stats

import (
	"fmt"
	"math"
)

// Dist is a continuous, non-negative probability distribution from which
// arrival intervals and service times are drawn.
//
// Sample draws one value using the supplied generator. Mean and Std
// report the distribution's analytic first moment and standard
// deviation, which experiments use for sanity checks and for demand
// scaling.
type Dist interface {
	Sample(r *RNG) float64
	Mean() float64
	Std() float64
	String() string
}

// CV returns the coefficient of variation (stddev / mean) of d.
// It returns 0 for a zero-mean distribution.
func CV(d Dist) float64 {
	if m := d.Mean(); m != 0 {
		return d.Std() / m
	}
	return 0
}

// Deterministic is a degenerate distribution that always yields Value.
type Deterministic struct{ Value float64 }

// Sample returns Value regardless of r.
func (d Deterministic) Sample(*RNG) float64 { return d.Value }

// Mean returns Value.
func (d Deterministic) Mean() float64 { return d.Value }

// Std returns 0.
func (d Deterministic) Std() float64 { return 0 }

func (d Deterministic) String() string { return fmt.Sprintf("Det(%g)", d.Value) }

// Exponential is the exponential distribution with the given mean
// (rate 1/MeanValue). It models Poisson-process inter-arrival times and
// the paper's "Exp" service times.
type Exponential struct{ MeanValue float64 }

// Sample draws an exponential deviate.
func (d Exponential) Sample(r *RNG) float64 { return d.MeanValue * r.ExpFloat64() }

// Mean returns the distribution mean.
func (d Exponential) Mean() float64 { return d.MeanValue }

// Std returns the standard deviation (equal to the mean).
func (d Exponential) Std() float64 { return d.MeanValue }

func (d Exponential) String() string { return fmt.Sprintf("Exp(mean=%g)", d.MeanValue) }

// Uniform is the continuous uniform distribution on [Lo, Hi].
// The paper uses it for jittered broadcast intervals
// (uniform on [0.5, 1.5] x mean).
type Uniform struct{ Lo, Hi float64 }

// Sample draws a uniform deviate on [Lo, Hi).
func (d Uniform) Sample(r *RNG) float64 { return d.Lo + (d.Hi-d.Lo)*r.Float64() }

// Mean returns (Lo+Hi)/2.
func (d Uniform) Mean() float64 { return (d.Lo + d.Hi) / 2 }

// Std returns (Hi-Lo)/sqrt(12).
func (d Uniform) Std() float64 { return (d.Hi - d.Lo) / math.Sqrt(12) }

func (d Uniform) String() string { return fmt.Sprintf("Uniform[%g,%g]", d.Lo, d.Hi) }

// Lognormal is the lognormal distribution parameterized by the
// underlying normal's Mu and Sigma: exp(Mu + Sigma*Z).
//
// The synthetic Teoma-like traces use lognormal marginals because prior
// workload studies (Feldmann; Harchol-Balter & Downey, cited in the
// paper) model network-service times and arrivals as Lognormal, Weibull,
// or Pareto, and the lognormal is the one fully determined by the two
// published moments in Table 1.
type Lognormal struct{ Mu, Sigma float64 }

// LognormalFromMoments returns the lognormal distribution with the
// requested mean and standard deviation.
func LognormalFromMoments(mean, std float64) Lognormal {
	if mean <= 0 {
		panic("stats: lognormal requires positive mean")
	}
	cv := std / mean
	sigma2 := math.Log(1 + cv*cv)
	return Lognormal{
		Mu:    math.Log(mean) - sigma2/2,
		Sigma: math.Sqrt(sigma2),
	}
}

// Sample draws a lognormal deviate.
func (d Lognormal) Sample(r *RNG) float64 {
	return math.Exp(d.Mu + d.Sigma*r.NormFloat64())
}

// Mean returns exp(Mu + Sigma^2/2).
func (d Lognormal) Mean() float64 { return math.Exp(d.Mu + d.Sigma*d.Sigma/2) }

// Std returns the analytic standard deviation.
func (d Lognormal) Std() float64 {
	s2 := d.Sigma * d.Sigma
	return math.Sqrt((math.Exp(s2) - 1)) * d.Mean()
}

func (d Lognormal) String() string {
	return fmt.Sprintf("Lognormal(mean=%.4g,std=%.4g)", d.Mean(), d.Std())
}

// Pareto is the (Lomax-shifted, scale Xm) Pareto distribution with shape
// Alpha: P(X > x) = (Xm/x)^Alpha for x >= Xm. Heavy-tailed workloads in
// the literature use Alpha slightly above 1.
type Pareto struct {
	Xm    float64 // scale (minimum value), > 0
	Alpha float64 // shape, > 0
}

// Sample draws a Pareto deviate by inversion.
func (d Pareto) Sample(r *RNG) float64 {
	return d.Xm / math.Pow(r.Float64Open(), 1/d.Alpha)
}

// Mean returns the analytic mean, or +Inf when Alpha <= 1.
func (d Pareto) Mean() float64 {
	if d.Alpha <= 1 {
		return math.Inf(1)
	}
	return d.Alpha * d.Xm / (d.Alpha - 1)
}

// Std returns the analytic standard deviation, or +Inf when Alpha <= 2.
func (d Pareto) Std() float64 {
	if d.Alpha <= 2 {
		return math.Inf(1)
	}
	return d.Xm / (d.Alpha - 1) * math.Sqrt(d.Alpha/(d.Alpha-2))
}

func (d Pareto) String() string { return fmt.Sprintf("Pareto(xm=%g,alpha=%g)", d.Xm, d.Alpha) }

// Weibull is the Weibull distribution with the given Scale (lambda) and
// Shape (k).
type Weibull struct {
	Scale float64 // lambda > 0
	Shape float64 // k > 0
}

// Sample draws a Weibull deviate by inversion.
func (d Weibull) Sample(r *RNG) float64 {
	return d.Scale * math.Pow(r.ExpFloat64(), 1/d.Shape)
}

// Mean returns Scale * Gamma(1 + 1/Shape).
func (d Weibull) Mean() float64 { return d.Scale * math.Gamma(1+1/d.Shape) }

// Std returns the analytic standard deviation.
func (d Weibull) Std() float64 {
	g1 := math.Gamma(1 + 1/d.Shape)
	g2 := math.Gamma(1 + 2/d.Shape)
	return d.Scale * math.Sqrt(g2-g1*g1)
}

func (d Weibull) String() string {
	return fmt.Sprintf("Weibull(scale=%g,shape=%g)", d.Scale, d.Shape)
}

// Hyperexponential is a two-phase hyperexponential distribution: with
// probability P1 the sample is Exp(Mean1), otherwise Exp(Mean2). It is
// the standard way to construct a CV > 1 service process with
// exponential phases.
type Hyperexponential struct {
	P1           float64
	Mean1, Mean2 float64
}

// HyperexpFromMoments constructs a balanced-means two-phase
// hyperexponential with the requested mean and coefficient of variation
// cv (cv must be >= 1).
func HyperexpFromMoments(mean, cv float64) Hyperexponential {
	if cv < 1 {
		panic("stats: hyperexponential requires cv >= 1")
	}
	// Balanced means construction: p1*mean1 = p2*mean2 = mean/2.
	c2 := cv * cv
	p1 := 0.5 * (1 + math.Sqrt((c2-1)/(c2+1)))
	return Hyperexponential{
		P1:    p1,
		Mean1: mean / (2 * p1),
		Mean2: mean / (2 * (1 - p1)),
	}
}

// Sample draws a hyperexponential deviate.
func (d Hyperexponential) Sample(r *RNG) float64 {
	if r.Float64() < d.P1 {
		return d.Mean1 * r.ExpFloat64()
	}
	return d.Mean2 * r.ExpFloat64()
}

// Mean returns the mixture mean.
func (d Hyperexponential) Mean() float64 {
	return d.P1*d.Mean1 + (1-d.P1)*d.Mean2
}

// Std returns the analytic standard deviation of the mixture.
func (d Hyperexponential) Std() float64 {
	m := d.Mean()
	// E[X^2] of an exponential with mean m_i is 2 m_i^2.
	m2 := d.P1*2*d.Mean1*d.Mean1 + (1-d.P1)*2*d.Mean2*d.Mean2
	return math.Sqrt(m2 - m*m)
}

func (d Hyperexponential) String() string {
	return fmt.Sprintf("H2(mean=%.4g,cv=%.3g)", d.Mean(), CV(d))
}

// Scaled wraps a distribution, multiplying every sample (and the
// analytic moments) by Factor. Experiments use it to rescale trace
// arrival intervals to a target demand level, exactly as the paper
// rescales its traces.
type Scaled struct {
	D      Dist
	Factor float64
}

// Sample draws from the underlying distribution and scales the result.
func (d Scaled) Sample(r *RNG) float64 { return d.Factor * d.D.Sample(r) }

// Fork implements Forker by forking the wrapped distribution, so a
// scaled stateful process still gets independent per-stream state.
func (d Scaled) Fork() Dist { return Scaled{D: ForkDist(d.D), Factor: d.Factor} }

// Mean returns Factor times the underlying mean.
func (d Scaled) Mean() float64 { return d.Factor * d.D.Mean() }

// Std returns Factor times the underlying standard deviation.
func (d Scaled) Std() float64 { return d.Factor * d.D.Std() }

func (d Scaled) String() string { return fmt.Sprintf("%v x %g", d.D, d.Factor) }
