package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates scalar observations online (Welford's algorithm)
// and, optionally, retains the raw samples for exact percentiles.
//
// The zero value is an empty summary that retains all samples. Use
// NewSummary(false) for a moments-only accumulator on high-volume paths.
type Summary struct {
	n        int64
	mean     float64
	m2       float64
	min, max float64
	discard  bool
	samples  []float64
	sorted   bool
}

// NewSummary returns an empty summary. If keepSamples is false, only
// moments and extrema are tracked and percentile queries panic.
func NewSummary(keepSamples bool) *Summary {
	return &Summary{discard: !keepSamples}
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.discard {
		s.samples = append(s.samples, x)
		s.sorted = false
	}
}

// AddAll records every value in xs.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// Merge folds other into s. Percentile data is merged only when both
// summaries retain samples.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		s.samples = append([]float64(nil), other.samples...)
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += other.m2 + delta*delta*n1*n2/total
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	if !s.discard && !other.discard {
		s.samples = append(s.samples, other.samples...)
		s.sorted = false
	} else {
		s.discard = true
		s.samples = nil
	}
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean, or 0 when empty.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance, or 0 for fewer than two
// observations.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// CV returns the sample coefficient of variation (std/mean), or 0 when
// the mean is zero.
func (s *Summary) CV() float64 {
	if s.mean == 0 {
		return 0
	}
	return s.Std() / s.mean
}

// Min returns the smallest observation, or 0 when empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 when empty.
func (s *Summary) Max() float64 { return s.max }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the 95% normal-approximation
// confidence interval of the mean.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// Percentile returns the p-quantile (p in [0,1]) using linear
// interpolation between order statistics. It panics if the summary does
// not retain samples or is empty.
func (s *Summary) Percentile(p float64) float64 {
	if s.discard {
		panic("stats: Percentile on a moments-only Summary")
	}
	if len(s.samples) == 0 {
		panic("stats: Percentile on an empty Summary")
	}
	if p < 0 || p > 1 {
		panic("stats: Percentile p out of [0,1]")
	}
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
	if len(s.samples) == 1 {
		return s.samples[0]
	}
	pos := p * float64(len(s.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.samples[lo]
	}
	frac := pos - float64(lo)
	return s.samples[lo]*(1-frac) + s.samples[hi]*frac
}

// FracAbove returns the fraction of observations strictly greater than
// x. It panics if the summary does not retain samples.
func (s *Summary) FracAbove(x float64) float64 {
	if s.discard {
		panic("stats: FracAbove on a moments-only Summary")
	}
	if len(s.samples) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
	idx := sort.SearchFloat64s(s.samples, x)
	for idx < len(s.samples) && s.samples[idx] == x {
		idx++
	}
	return float64(len(s.samples)-idx) / float64(len(s.samples))
}

// String formats the headline moments.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g std=%.6g min=%.6g max=%.6g",
		s.n, s.Mean(), s.Std(), s.min, s.max)
}

// TimeWeighted accumulates the time-weighted average of a piecewise-
// constant signal, such as a queue length over simulated time. Values
// are weighted by how long they persist.
//
// The zero value is ready to use.
type TimeWeighted struct {
	lastT    float64
	lastV    float64
	area     float64
	duration float64
	started  bool
}

// Set records that the signal takes value v from time t onward. Calls
// must have non-decreasing t.
func (w *TimeWeighted) Set(t, v float64) {
	if w.started {
		if t < w.lastT {
			panic("stats: TimeWeighted.Set with decreasing time")
		}
		dt := t - w.lastT
		w.area += w.lastV * dt
		w.duration += dt
	}
	w.lastT, w.lastV, w.started = t, v, true
}

// Finish closes the signal at time t and returns the time-weighted mean.
func (w *TimeWeighted) Finish(t float64) float64 {
	w.Set(t, w.lastV)
	return w.Mean()
}

// Mean returns the time-weighted mean accumulated so far.
func (w *TimeWeighted) Mean() float64 {
	if w.duration == 0 {
		return 0
	}
	return w.area / w.duration
}

// Duration returns the total observed time span.
func (w *TimeWeighted) Duration() float64 { return w.duration }

// Samples returns a copy of the retained raw observations (in
// insertion or sorted order depending on prior Percentile calls). It
// panics on a moments-only summary. Use with BatchMeans for
// steady-state confidence intervals.
func (s *Summary) Samples() []float64 {
	if s.discard {
		panic("stats: Samples on a moments-only Summary")
	}
	return append([]float64(nil), s.samples...)
}
