package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPhasedMoments(t *testing.T) {
	p := NewPhased(Exponential{MeanValue: 1}, Exponential{MeanValue: 9}, 20, 20)
	// Equal shares: mean = 5.
	if m := p.Mean(); math.Abs(m-5) > 1e-12 {
		t.Fatalf("analytic mean %v", m)
	}
	checkMoments(t, p, 400000, 0.05)
}

func TestPhasedBurstyExpPreservesMean(t *testing.T) {
	for _, burst := range []float64{1, 2, 5, 10} {
		p := PhasedBurstyExp(0.01, burst, 50)
		if m := p.Mean(); math.Abs(m-0.01)/0.01 > 1e-9 {
			t.Errorf("burst=%v: analytic mean %v, want 0.01", burst, m)
		}
	}
	checkMoments(t, PhasedBurstyExp(1, 5, 30), 400000, 0.05)
}

func TestPhasedCorrelation(t *testing.T) {
	// Successive intervals must be positively correlated (that is the
	// whole point); an iid exponential is not.
	r := NewRNG(5)
	p := PhasedBurstyExp(1, 10, 100)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = p.Sample(r)
	}
	if c := lag1Corr(xs); c < 0.1 {
		t.Fatalf("phased lag-1 correlation %v, want clearly positive", c)
	}
	iid := Exponential{MeanValue: 1}
	for i := range xs {
		xs[i] = iid.Sample(r)
	}
	if c := lag1Corr(xs); math.Abs(c) > 0.02 {
		t.Fatalf("iid lag-1 correlation %v, want ~0", c)
	}
}

// lag1Corr computes the lag-1 autocorrelation of xs.
func lag1Corr(xs []float64) float64 {
	n := len(xs)
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n-1; i++ {
		num += (xs[i] - mean) * (xs[i+1] - mean)
	}
	for _, x := range xs {
		den += (x - mean) * (x - mean)
	}
	return num / den
}

func TestPhasedPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewPhased(nil, Exponential{MeanValue: 1}, 2, 2) },
		func() { NewPhased(Exponential{MeanValue: 1}, Exponential{MeanValue: 1}, 0.5, 2) },
		func() { PhasedBurstyExp(0, 2, 10) },
		func() { PhasedBurstyExp(1, 0.5, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: PhasedBurstyExp keeps the requested mean for any burst and
// run length, and all samples are positive and finite.
func TestQuickPhasedBursty(t *testing.T) {
	f := func(seed uint64, burstRaw, runRaw uint8) bool {
		burst := 1 + float64(burstRaw%20)
		run := 1 + float64(runRaw%100)
		p := PhasedBurstyExp(2, burst, run)
		if math.Abs(p.Mean()-2) > 1e-9 {
			return false
		}
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := p.Sample(r)
			if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPhasedFork(t *testing.T) {
	p := PhasedBurstyExp(1, 8, 40)
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		p.Sample(r) // advance phase state
	}
	forked := ForkDist(p).(*Phased)
	if forked == p {
		t.Fatal("Fork returned the same instance")
	}
	if forked.inited {
		t.Fatal("forked copy inherited stream state")
	}
	// Scaled wrapping still forks the inner process.
	s := Scaled{D: p, Factor: 2}
	sf := ForkDist(s).(Scaled)
	if sf.D.(*Phased) == p {
		t.Fatal("Scaled.Fork did not fork the inner distribution")
	}
	// Stateless distributions are returned as-is.
	e := Exponential{MeanValue: 1}
	if ForkDist(e) != Dist(e) {
		t.Fatal("stateless dist was copied")
	}
}
