//go:build race

package stats

// raceEnabled lets allocation gates skip under the race detector,
// whose instrumentation perturbs allocation accounting.
const raceEnabled = true
