package neptune

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"finelb/internal/cluster"
)

// ServerConfig configures one Neptune service replica (one node's share
// of a service).
type ServerConfig struct {
	NodeID  int
	Service string
	// Partitions this replica hosts.
	Partitions []uint32
	// Factory builds the application state for one partition.
	Factory func(partition uint32) StateMachine
	// Level selects the replication protocol.
	Level Level
	// Directory receives soft-state publishes (required: the
	// replication fan-out discovers peers through it).
	Directory *cluster.Directory
	// Workers sizes the node's worker pool (default 4: service methods
	// are real work, not exclusive-unit emulation).
	Workers int
	// EmulateServiceUs, when true, honours Request.ServiceUs by
	// sleeping before executing the method — useful to give real
	// services the paper's millisecond-scale cost profile.
	EmulateServiceUs bool
	Seed             uint64
}

// partitionState is one partition's replication state.
type partitionState struct {
	mu      sync.Mutex
	sm      StateMachine
	applied uint64              // sequence of the last applied ordered write
	pending map[uint64]envelope // out-of-order ordered writes, by seq
}

// Server hosts a set of partitions of one Neptune service on a
// cluster.Node.
type Server struct {
	cfg    ServerConfig
	node   *cluster.Node
	caller *cluster.Caller
	parts  map[uint32]*partitionState
}

// StartServer mounts the service and begins serving.
func StartServer(cfg ServerConfig) (*Server, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("neptune: ServerConfig.Factory is required")
	}
	if cfg.Directory == nil {
		return nil, fmt.Errorf("neptune: ServerConfig.Directory is required")
	}
	if len(cfg.Partitions) == 0 {
		return nil, fmt.Errorf("neptune: no partitions to host")
	}
	if cfg.Service == "" {
		return nil, fmt.Errorf("neptune: empty service name")
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	s := &Server{
		cfg:    cfg,
		caller: cluster.NewCaller(nil, 0),
		parts:  make(map[uint32]*partitionState, len(cfg.Partitions)),
	}
	for _, p := range cfg.Partitions {
		if _, dup := s.parts[p]; dup {
			return nil, fmt.Errorf("neptune: duplicate partition %d", p)
		}
		s.parts[p] = &partitionState{
			sm:      cfg.Factory(p),
			pending: make(map[uint64]envelope),
		}
	}
	node, err := cluster.StartNode(cluster.NodeConfig{
		ID:         cfg.NodeID,
		Service:    cfg.Service,
		Partitions: cfg.Partitions,
		Workers:    cfg.Workers,
		Directory:  cfg.Directory,
		Handler:    cluster.HandlerFunc(s.serve),
		Seed:       cfg.Seed,
	})
	if err != nil {
		s.caller.Close()
		return nil, err
	}
	s.node = node
	return s, nil
}

// Node exposes the underlying cluster node (addresses, stats).
func (s *Server) Node() *cluster.Node { return s.node }

// Endpoint returns the replica's published endpoint.
func (s *Server) Endpoint() cluster.Endpoint { return s.node.Endpoint() }

// Close stops serving.
func (s *Server) Close() error {
	err := s.node.Close()
	s.caller.Close()
	return err
}

// AppliedSeq returns the partition's last applied ordered-write
// sequence number (diagnostics and tests).
func (s *Server) AppliedSeq(partition uint32) (uint64, error) {
	ps, ok := s.parts[partition]
	if !ok {
		return 0, fmt.Errorf("neptune: partition %d not hosted", partition)
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.applied, nil
}

// fail formats an application-level error payload.
func fail(format string, args ...any) ([]byte, uint8) {
	return []byte(fmt.Sprintf(format, args...)), cluster.StatusAppError
}

// serve is the node's Handler: it decodes the Neptune envelope and
// dispatches on the operation.
func (s *Server) serve(req *cluster.Request) ([]byte, uint8) {
	ps, ok := s.parts[req.Partition]
	if !ok {
		return fail("partition %d not hosted here", req.Partition)
	}
	env, err := decodeEnvelope(req.Payload)
	if err != nil {
		return fail("%v", err)
	}
	if s.cfg.EmulateServiceUs && req.ServiceUs > 0 {
		time.Sleep(time.Duration(req.ServiceUs) * time.Microsecond)
	}
	switch env.op {
	case opQuery:
		ps.mu.Lock()
		out, err := ps.sm.Query(env.method, env.arg)
		ps.mu.Unlock()
		if err != nil {
			return fail("%v", err)
		}
		return out, cluster.StatusOK

	case opWrite:
		switch s.cfg.Level {
		case Commutative:
			ps.mu.Lock()
			out, err := ps.sm.Apply(env.method, env.arg)
			ps.mu.Unlock()
			if err != nil {
				return fail("%v", err)
			}
			return out, cluster.StatusOK
		case PrimaryOrdered:
			return s.primaryWrite(req.Partition, ps, env)
		default:
			return fail("unknown consistency level %d", int(s.cfg.Level))
		}

	case opReplicate:
		return s.applyReplicated(ps, env)

	case opSnapshot:
		ps.mu.Lock()
		snap, err := ps.sm.Snapshot()
		seq := ps.applied
		ps.mu.Unlock()
		if err != nil {
			return fail("%v", err)
		}
		return encodeSnapshotReply(snapshotReply{seq: seq, data: snap}), cluster.StatusOK

	default:
		return fail("unknown op %d", env.op)
	}
}

// replicas returns the live replica set of a partition, sorted by node
// id (the first entry is the primary).
func (s *Server) replicas(partition uint32) []cluster.Endpoint {
	return s.cfg.Directory.Lookup(s.cfg.Service, partition)
}

// isPrimary reports whether this replica is the partition's primary:
// the live replica with the lowest node id.
func (s *Server) isPrimary(partition uint32) bool {
	eps := s.replicas(partition)
	return len(eps) > 0 && eps[0].NodeID == s.cfg.NodeID
}

// primaryWrite sequences an ordered write, applies it locally, and
// forwards it to every secondary before acknowledging (Neptune level 2).
func (s *Server) primaryWrite(partition uint32, ps *partitionState, env envelope) ([]byte, uint8) {
	if !s.isPrimary(partition) {
		return fail("not the primary for partition %d", partition)
	}
	// Sequence and apply under the partition lock so concurrent writes
	// at the primary serialize.
	ps.mu.Lock()
	seq := ps.applied + 1
	out, err := ps.sm.Apply(env.method, env.arg)
	if err != nil {
		ps.mu.Unlock()
		return fail("%v", err)
	}
	ps.applied = seq
	ps.mu.Unlock()

	// Forward to secondaries synchronously; the write is acknowledged
	// only once every live secondary has applied it.
	fwd := envelope{op: opReplicate, seq: seq, method: env.method, arg: env.arg}
	payload, err := encodeEnvelope(fwd)
	if err != nil {
		return fail("%v", err)
	}
	for _, ep := range s.replicas(partition) {
		if ep.NodeID == s.cfg.NodeID {
			continue
		}
		resp, err := s.caller.Call(ep, s.cfg.Service, partition, 0, payload)
		if err != nil {
			return fail("replicate to node %d: %v", ep.NodeID, err)
		}
		if resp.Status != cluster.StatusOK {
			return fail("replicate to node %d: status %d: %s", ep.NodeID, resp.Status, resp.Payload)
		}
	}
	return out, cluster.StatusOK
}

// applyReplicated applies a primary-forwarded write in sequence order,
// buffering out-of-order arrivals.
func (s *Server) applyReplicated(ps *partitionState, env envelope) ([]byte, uint8) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	switch {
	case env.seq <= ps.applied:
		// Duplicate delivery (e.g. a retried forward): idempotent.
		return nil, cluster.StatusOK
	case env.seq > ps.applied+1:
		ps.pending[env.seq] = env
		return nil, cluster.StatusOK
	}
	// In order: apply it and drain any now-contiguous pending writes.
	if _, err := ps.sm.Apply(env.method, env.arg); err != nil {
		return fail("%v", err)
	}
	ps.applied = env.seq
	for {
		next, ok := ps.pending[ps.applied+1]
		if !ok {
			return nil, cluster.StatusOK
		}
		delete(ps.pending, ps.applied+1)
		if _, err := ps.sm.Apply(next.method, next.arg); err != nil {
			return fail("%v", err)
		}
		ps.applied = next.seq
	}
}

// ResyncFrom pulls a snapshot of every hosted partition from peer and
// installs it, bringing a (re)started replica up to date before it
// publishes itself. Call before the replica takes writes.
func (s *Server) ResyncFrom(peer cluster.Endpoint) error {
	payload, err := encodeEnvelope(envelope{op: opSnapshot})
	if err != nil {
		return err
	}
	parts := make([]uint32, 0, len(s.parts))
	for p := range s.parts {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	for _, p := range parts {
		resp, err := s.caller.Call(peer, s.cfg.Service, p, 0, payload)
		if err != nil {
			return fmt.Errorf("neptune: snapshot of partition %d from node %d: %w", p, peer.NodeID, err)
		}
		if resp.Status != cluster.StatusOK {
			return fmt.Errorf("neptune: snapshot of partition %d from node %d: status %d: %s",
				p, peer.NodeID, resp.Status, resp.Payload)
		}
		reply, err := decodeSnapshotReply(resp.Payload)
		if err != nil {
			return err
		}
		ps := s.parts[p]
		ps.mu.Lock()
		err = ps.sm.Restore(reply.data)
		if err == nil {
			ps.applied = reply.seq
			ps.pending = make(map[uint64]envelope)
		}
		ps.mu.Unlock()
		if err != nil {
			return fmt.Errorf("neptune: restore partition %d: %w", p, err)
		}
	}
	return nil
}
