// Package neptune is a working reconstruction of Neptune — "scalable
// replication management and programming support for cluster-based
// network services" (Shen et al., USITS 2001) — the infrastructure the
// load-balancing paper is built on and explicitly continues (§3.1).
//
// Neptune encapsulates an application-level network service behind a
// service access interface of RPC-like methods; each access is
// fulfilled on one data partition; partitions are replicated across
// nodes. This package provides:
//
//   - StateMachine: the per-partition application interface (mutating
//     Apply, read-only Query, Snapshot/Restore for recovery);
//   - Server: mounts a service's partitions on a cluster.Node and
//     implements the replication protocols;
//   - Client: issues writes through the replication protocol and
//     spreads reads over replicas with any internal/core load-balancing
//     policy — which is precisely where the paper's random polling
//     study plugs in;
//   - two consistency levels from the Neptune paper: Commutative
//     (write-anywhere; the client multicasts writes to every replica)
//     and PrimaryOrdered (writes are sequenced by the partition's
//     primary and forwarded to the other replicas before being
//     acknowledged);
//   - crash recovery: a replica restores a peer's snapshot and resumes
//     from its sequence number.
//
// Built-in state machines (Counter, KVStore, WordMap) cover the
// services the paper's evaluation describes.
package neptune

import (
	"encoding/binary"
	"fmt"
)

// Level selects the replication consistency protocol, after the
// Neptune paper's consistency levels.
type Level int

const (
	// Commutative (Neptune level 1): the client sends every write to
	// every replica directly; the application guarantees its writes
	// commute, so replicas converge without ordering.
	Commutative Level = iota
	// PrimaryOrdered (Neptune level 2): writes go to the partition's
	// primary replica, which assigns a sequence number, applies the
	// write, and forwards it to the secondaries before acknowledging.
	PrimaryOrdered
)

func (l Level) String() string {
	switch l {
	case Commutative:
		return "commutative"
	case PrimaryOrdered:
		return "primary-ordered"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// StateMachine is the application's per-partition state. Methods are
// invoked under the partition lock: implementations need no internal
// locking against each other, but must not retain arg slices.
type StateMachine interface {
	// Apply executes a mutating method and returns its result.
	Apply(method string, arg []byte) ([]byte, error)
	// Query executes a read-only method.
	Query(method string, arg []byte) ([]byte, error)
	// Snapshot serializes the full partition state for recovery.
	Snapshot() ([]byte, error)
	// Restore replaces the partition state with a snapshot.
	Restore(snap []byte) error
}

// Operation codes inside the cluster request payload.
const (
	opQuery     = 1 // client -> any replica: read-only method
	opWrite     = 2 // client -> replica (commutative) / primary (ordered)
	opReplicate = 3 // primary -> secondary: sequenced write
	opSnapshot  = 4 // recovering replica -> peer: state pull
)

// envelope is a decoded Neptune operation.
type envelope struct {
	op     uint8
	seq    uint64 // opReplicate only
	method string
	arg    []byte
}

// encodeEnvelope serializes an envelope:
//
//	op(1) seq(8) methodLen(1) method argLen(4) arg
func encodeEnvelope(e envelope) ([]byte, error) {
	if len(e.method) > 255 {
		return nil, fmt.Errorf("neptune: method name too long (%d)", len(e.method))
	}
	buf := make([]byte, 0, 14+len(e.method)+len(e.arg))
	buf = append(buf, e.op)
	buf = binary.LittleEndian.AppendUint64(buf, e.seq)
	buf = append(buf, byte(len(e.method)))
	buf = append(buf, e.method...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.arg)))
	buf = append(buf, e.arg...)
	return buf, nil
}

// decodeEnvelope parses what encodeEnvelope produced.
func decodeEnvelope(p []byte) (envelope, error) {
	var e envelope
	if len(p) < 14 {
		return e, fmt.Errorf("neptune: envelope too short (%d bytes)", len(p))
	}
	e.op = p[0]
	e.seq = binary.LittleEndian.Uint64(p[1:9])
	mlen := int(p[9])
	p = p[10:]
	if len(p) < mlen+4 {
		return e, fmt.Errorf("neptune: truncated method field")
	}
	e.method = string(p[:mlen])
	p = p[mlen:]
	alen := binary.LittleEndian.Uint32(p[:4])
	p = p[4:]
	if uint32(len(p)) != alen {
		return e, fmt.Errorf("neptune: arg length %d, have %d bytes", alen, len(p))
	}
	if alen > 0 {
		e.arg = append([]byte(nil), p...)
	}
	return e, nil
}

// snapshotReply carries a partition snapshot plus its sequence number.
type snapshotReply struct {
	seq  uint64
	data []byte
}

func encodeSnapshotReply(r snapshotReply) []byte {
	buf := make([]byte, 0, 8+len(r.data))
	buf = binary.LittleEndian.AppendUint64(buf, r.seq)
	return append(buf, r.data...)
}

func decodeSnapshotReply(p []byte) (snapshotReply, error) {
	if len(p) < 8 {
		return snapshotReply{}, fmt.Errorf("neptune: snapshot reply too short")
	}
	return snapshotReply{
		seq:  binary.LittleEndian.Uint64(p[:8]),
		data: append([]byte(nil), p[8:]...),
	}, nil
}
