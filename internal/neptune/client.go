package neptune

import (
	"fmt"
	"sync"

	"finelb/internal/cluster"
	"finelb/internal/core"
)

// ClientConfig configures a Neptune service client.
type ClientConfig struct {
	Directory *cluster.Directory
	Service   string
	// Level must match the servers' consistency level.
	Level Level
	// ReadPolicy load-balances queries across a partition's replicas;
	// this is where the paper's policies plug into Neptune. The zero
	// value is the random policy; the paper's recommendation is
	// core.NewPollDiscard(2, 10*time.Millisecond).
	ReadPolicy core.Policy
	Seed       uint64
}

// Client accesses a replicated Neptune service: queries are spread over
// replicas by a load-balancing policy; writes follow the replication
// protocol of the configured consistency level.
type Client struct {
	cfg    ClientConfig
	caller *cluster.Caller

	mu    sync.Mutex
	reads map[uint32]*cluster.Client // balanced read path per partition
}

// NewClient builds a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Directory == nil {
		return nil, fmt.Errorf("neptune: ClientConfig.Directory is required")
	}
	if cfg.Service == "" {
		return nil, fmt.Errorf("neptune: empty service name")
	}
	if err := cfg.ReadPolicy.Validate(); err != nil {
		return nil, err
	}
	return &Client{
		cfg:    cfg,
		caller: cluster.NewCaller(nil, 0),
		reads:  make(map[uint32]*cluster.Client),
	}, nil
}

// Close releases all sockets.
func (c *Client) Close() error {
	c.mu.Lock()
	reads := c.reads
	c.reads = nil
	c.mu.Unlock()
	for _, rc := range reads {
		rc.Close()
	}
	c.caller.Close()
	return nil
}

// readClient returns (creating if needed) the balanced client for one
// partition.
func (c *Client) readClient(partition uint32) (*cluster.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reads == nil {
		return nil, fmt.Errorf("neptune: client closed")
	}
	if rc, ok := c.reads[partition]; ok {
		return rc, nil
	}
	rc, err := cluster.NewClient(cluster.ClientConfig{
		Directory: c.cfg.Directory,
		Service:   c.cfg.Service,
		Partition: partition,
		Policy:    c.cfg.ReadPolicy,
		Seed:      c.cfg.Seed + uint64(partition)*131,
	})
	if err != nil {
		return nil, err
	}
	c.reads[partition] = rc
	return rc, nil
}

// Query invokes a read-only method on one replica of the partition,
// chosen by the read policy. serviceUs optionally emulates extra
// compute on the server (0 for none).
func (c *Client) Query(partition uint32, method string, arg []byte, serviceUs uint32) ([]byte, error) {
	rc, err := c.readClient(partition)
	if err != nil {
		return nil, err
	}
	payload, err := encodeEnvelope(envelope{op: opQuery, method: method, arg: arg})
	if err != nil {
		return nil, err
	}
	info, err := rc.Access(serviceUs, payload)
	if err != nil {
		return nil, err
	}
	return resultOf(info.Resp)
}

// Write invokes a mutating method on the partition through the
// replication protocol and returns the primary's (or, for Commutative,
// the first replica's) result.
func (c *Client) Write(partition uint32, method string, arg []byte, serviceUs uint32) ([]byte, error) {
	eps := c.cfg.Directory.Lookup(c.cfg.Service, partition)
	if len(eps) == 0 {
		return nil, fmt.Errorf("neptune: no live replicas for %s partition %d", c.cfg.Service, partition)
	}
	payload, err := encodeEnvelope(envelope{op: opWrite, method: method, arg: arg})
	if err != nil {
		return nil, err
	}
	switch c.cfg.Level {
	case PrimaryOrdered:
		// The primary is the lowest-id live replica; it fans out.
		resp, err := c.caller.Call(eps[0], c.cfg.Service, partition, serviceUs, payload)
		if err != nil {
			return nil, err
		}
		return resultOf(resp)

	case Commutative:
		// Write-anywhere: the client multicasts to every replica; all
		// must acknowledge.
		type reply struct {
			out []byte
			err error
		}
		replies := make([]reply, len(eps))
		var wg sync.WaitGroup
		for i, ep := range eps {
			i, ep := i, ep
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := c.caller.Call(ep, c.cfg.Service, partition, serviceUs, payload)
				if err != nil {
					replies[i] = reply{nil, err}
					return
				}
				out, err := resultOf(resp)
				replies[i] = reply{out, err}
			}()
		}
		wg.Wait()
		var out []byte
		for i, r := range replies {
			if r.err != nil {
				return nil, fmt.Errorf("neptune: write to replica %d: %w", eps[i].NodeID, r.err)
			}
			if out == nil {
				out = r.out
			}
		}
		return out, nil

	default:
		return nil, fmt.Errorf("neptune: unknown consistency level %d", int(c.cfg.Level))
	}
}

// Replicas exposes the live replica set of a partition (diagnostics).
func (c *Client) Replicas(partition uint32) []cluster.Endpoint {
	return c.cfg.Directory.Lookup(c.cfg.Service, partition)
}

// resultOf converts a wire response into (result, error).
func resultOf(resp *cluster.Response) ([]byte, error) {
	switch resp.Status {
	case cluster.StatusOK:
		return resp.Payload, nil
	case cluster.StatusAppError:
		return nil, fmt.Errorf("neptune: %s", resp.Payload)
	default:
		return nil, fmt.Errorf("neptune: server status %d", resp.Status)
	}
}
