package neptune

import (
	"sync"
	"testing"
	"time"

	"finelb/internal/cluster"
	"finelb/internal/core"
)

// startService boots n replicas of one service hosting the given
// partitions, all registered in a fresh directory.
func startService(t *testing.T, n int, level Level, parts []uint32,
	factory func(uint32) StateMachine) (*cluster.Directory, []*Server) {
	t.Helper()
	dir := cluster.NewDirectory(time.Minute)
	var servers []*Server
	for i := 0; i < n; i++ {
		s, err := StartServer(ServerConfig{
			NodeID: i, Service: "svc", Partitions: parts,
			Factory: factory, Level: level, Directory: dir,
			Seed: uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		t.Cleanup(func() { s.Close() })
	}
	return dir, servers
}

func newNeptuneClient(t *testing.T, dir *cluster.Directory, level Level) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{
		Directory: dir, Service: "svc", Level: level,
		ReadPolicy: core.NewPoll(2), Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerValidation(t *testing.T) {
	dir := cluster.NewDirectory(time.Minute)
	factory := func(uint32) StateMachine { return NewCounter() }
	bad := []ServerConfig{
		{},
		{Service: "s", Partitions: []uint32{0}, Directory: dir},                      // no factory
		{Service: "s", Partitions: []uint32{0}, Factory: factory},                    // no directory
		{Service: "s", Factory: factory, Directory: dir},                             // no partitions
		{Partitions: []uint32{0}, Factory: factory, Directory: dir},                  // no name
		{Service: "s", Partitions: []uint32{1, 1}, Factory: factory, Directory: dir}, // dup
	}
	for i, cfg := range bad {
		if _, err := StartServer(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestClientValidationNeptune(t *testing.T) {
	if _, err := NewClient(ClientConfig{Service: "s"}); err == nil {
		t.Error("client without directory accepted")
	}
	if _, err := NewClient(ClientConfig{Directory: cluster.NewDirectory(0)}); err == nil {
		t.Error("client without service accepted")
	}
}

func TestCommutativeCounterReplication(t *testing.T) {
	dir, servers := startService(t, 3, Commutative, []uint32{0},
		func(uint32) StateMachine { return NewCounter() })
	c := newNeptuneClient(t, dir, Commutative)

	// Concurrent commutative adds from many goroutines.
	var wg sync.WaitGroup
	const writers, perWriter = 8, 10
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				if _, err := c.Write(0, "add", EncodeInt64(1), 0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Every replica must hold the same total.
	caller := cluster.NewCaller(nil, 0)
	defer caller.Close()
	q, _ := encodeEnvelope(envelope{op: opQuery, method: "sum"})
	for i, s := range servers {
		resp, err := caller.Call(s.Endpoint(), "svc", 0, 0, q)
		if err != nil {
			t.Fatal(err)
		}
		v, err := DecodeInt64(resp.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if v != writers*perWriter {
			t.Errorf("replica %d sum = %d, want %d", i, v, writers*perWriter)
		}
	}

	// A balanced query agrees.
	out, err := c.Query(0, "sum", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := DecodeInt64(out); v != writers*perWriter {
		t.Fatalf("balanced sum = %d", v)
	}
}

func TestPrimaryOrderedKVReplication(t *testing.T) {
	dir, servers := startService(t, 3, PrimaryOrdered, []uint32{0},
		func(uint32) StateMachine { return NewKVStore() })
	c := newNeptuneClient(t, dir, PrimaryOrdered)

	// Concurrent overwrites of the same key: ordering matters; after
	// the dust settles all replicas agree on one value and one seq.
	var wg sync.WaitGroup
	const writers = 6
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			val := []byte{byte('a' + i)}
			if _, err := c.Write(0, "put", EncodeKV("key", val), 0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	caller := cluster.NewCaller(nil, 0)
	defer caller.Close()
	q, _ := encodeEnvelope(envelope{op: opQuery, method: "get", arg: []byte("key")})
	var vals []string
	for _, s := range servers {
		resp, err := caller.Call(s.Endpoint(), "svc", 0, 0, q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != cluster.StatusOK {
			t.Fatalf("replica query status %d: %s", resp.Status, resp.Payload)
		}
		vals = append(vals, string(resp.Payload))
	}
	if vals[0] != vals[1] || vals[1] != vals[2] {
		t.Fatalf("replicas diverged: %q", vals)
	}
	// Sequence numbers converged too.
	want, err := servers[0].AppliedSeq(0)
	if err != nil {
		t.Fatal(err)
	}
	if want != writers {
		t.Fatalf("primary applied %d writes, want %d", want, writers)
	}
	for i, s := range servers[1:] {
		got, err := s.AppliedSeq(0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("replica %d applied seq %d, want %d", i+1, got, want)
		}
	}
}

func TestPrimaryRejectsWriteAtSecondary(t *testing.T) {
	_, servers := startService(t, 2, PrimaryOrdered, []uint32{0},
		func(uint32) StateMachine { return NewKVStore() })
	caller := cluster.NewCaller(nil, 0)
	defer caller.Close()
	w, _ := encodeEnvelope(envelope{op: opWrite, method: "put", arg: EncodeKV("k", []byte("v"))})
	// Node 1 is a secondary (node 0 is the lowest id): it must refuse.
	resp, err := caller.Call(servers[1].Endpoint(), "svc", 0, 0, w)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != cluster.StatusAppError {
		t.Fatalf("secondary accepted a client write: status %d", resp.Status)
	}
}

func TestReplicateOutOfOrderBuffered(t *testing.T) {
	// Drive a bare replica directly with shuffled sequence numbers; it
	// must buffer and apply in order.
	dir := cluster.NewDirectory(time.Minute)
	s, err := StartServer(ServerConfig{
		NodeID: 5, Service: "svc", Partitions: []uint32{0},
		Factory:   func(uint32) StateMachine { return NewKVStore() },
		Level:     PrimaryOrdered,
		Directory: dir, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	caller := cluster.NewCaller(nil, 0)
	defer caller.Close()

	send := func(seq uint64, val string) {
		t.Helper()
		env := envelope{op: opReplicate, seq: seq, method: "put", arg: EncodeKV("k", []byte(val))}
		payload, _ := encodeEnvelope(env)
		resp, err := caller.Call(s.Endpoint(), "svc", 0, 0, payload)
		if err != nil || resp.Status != cluster.StatusOK {
			t.Fatalf("replicate seq %d: %v status %d", seq, err, resp.Status)
		}
	}
	send(3, "third")  // buffered
	send(2, "second") // buffered
	if got, _ := s.AppliedSeq(0); got != 0 {
		t.Fatalf("applied %d before gap filled", got)
	}
	send(1, "first") // fills the gap; drains 2 and 3
	if got, _ := s.AppliedSeq(0); got != 3 {
		t.Fatalf("applied seq %d, want 3", got)
	}
	// Final value is from seq 3.
	q, _ := encodeEnvelope(envelope{op: opQuery, method: "get", arg: []byte("k")})
	resp, err := caller.Call(s.Endpoint(), "svc", 0, 0, q)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Payload) != "third" {
		t.Fatalf("final value %q", resp.Payload)
	}
	// Duplicate delivery is idempotent.
	send(2, "stale")
	resp, _ = caller.Call(s.Endpoint(), "svc", 0, 0, q)
	if string(resp.Payload) != "third" {
		t.Fatalf("duplicate overwrote: %q", resp.Payload)
	}
}

func TestRecoveryResync(t *testing.T) {
	dir, servers := startService(t, 2, PrimaryOrdered, []uint32{0, 1},
		func(uint32) StateMachine { return NewKVStore() })
	c := newNeptuneClient(t, dir, PrimaryOrdered)
	for _, kv := range [][2]string{{"a", "1"}, {"b", "2"}} {
		if _, err := c.Write(0, "put", EncodeKV(kv[0], []byte(kv[1])), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(1, "put", EncodeKV(kv[0], []byte(kv[1]+"x")), 0); err != nil {
			t.Fatal(err)
		}
	}

	// A brand-new replica joins empty and resyncs from the primary.
	joined, err := StartServer(ServerConfig{
		NodeID: 9, Service: "svc", Partitions: []uint32{0, 1},
		Factory:   func(uint32) StateMachine { return NewKVStore() },
		Level:     PrimaryOrdered,
		Directory: dir, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer joined.Close()
	if err := joined.ResyncFrom(servers[0].Endpoint()); err != nil {
		t.Fatal(err)
	}

	caller := cluster.NewCaller(nil, 0)
	defer caller.Close()
	for part, want := range map[uint32]string{0: "1", 1: "1x"} {
		q, _ := encodeEnvelope(envelope{op: opQuery, method: "get", arg: []byte("a")})
		resp, err := caller.Call(joined.Endpoint(), "svc", part, 0, q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != cluster.StatusOK || string(resp.Payload) != want {
			t.Fatalf("partition %d after resync: status %d payload %q want %q",
				part, resp.Status, resp.Payload, want)
		}
		seq, err := joined.AppliedSeq(part)
		if err != nil {
			t.Fatal(err)
		}
		if seq != 2 {
			t.Fatalf("partition %d resynced seq %d, want 2", part, seq)
		}
	}
}

func TestQueriesAreLoadBalanced(t *testing.T) {
	dir, servers := startService(t, 4, Commutative, []uint32{0},
		func(uint32) StateMachine { return NewWordMap() })
	c := newNeptuneClient(t, dir, Commutative)
	for i := 0; i < 60; i++ {
		out, err := c.Query(0, "translate", []byte("boston"), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 8 {
			t.Fatalf("translate returned %d bytes", len(out))
		}
	}
	// The polling read policy must have spread queries across replicas.
	hit := 0
	for _, s := range servers {
		if s.Node().Stats().Served > 0 {
			hit++
		}
	}
	if hit < 2 {
		t.Fatalf("queries hit only %d/4 replicas", hit)
	}
}

func TestUnknownPartitionAndMethod(t *testing.T) {
	dir, _ := startService(t, 1, Commutative, []uint32{0},
		func(uint32) StateMachine { return NewCounter() })
	c := newNeptuneClient(t, dir, Commutative)
	if _, err := c.Query(0, "bogus", nil, 0); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := c.Write(99, "add", EncodeInt64(1), 0); err == nil {
		t.Error("write to unhosted partition accepted")
	}
}

func TestEmulateServiceUs(t *testing.T) {
	dir := cluster.NewDirectory(time.Minute)
	s, err := StartServer(ServerConfig{
		NodeID: 0, Service: "svc", Partitions: []uint32{0},
		Factory:          func(uint32) StateMachine { return NewCounter() },
		Level:            Commutative,
		Directory:        dir,
		EmulateServiceUs: true,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := newNeptuneClient(t, dir, Commutative)
	start := time.Now()
	if _, err := c.Query(0, "sum", nil, 50000); err != nil { // 50 ms of emulated work
		t.Fatal(err)
	}
	if d := time.Since(start); d < 45*time.Millisecond {
		t.Fatalf("emulated service time not honoured: %v", d)
	}
}
