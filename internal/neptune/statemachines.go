package neptune

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Counter is a commutative-write state machine: a 64-bit accumulator.
//
// Methods:
//
//	Apply "add"  arg = int64 little-endian delta  -> new value (8 bytes)
//	Query "sum"  arg ignored                      -> value (8 bytes)
//
// Additions commute, so Counter is safe under the Commutative level.
type Counter struct {
	mu  sync.Mutex
	sum int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{} }

// Apply implements StateMachine.
func (c *Counter) Apply(method string, arg []byte) ([]byte, error) {
	if method != "add" {
		return nil, fmt.Errorf("counter: unknown write method %q", method)
	}
	if len(arg) != 8 {
		return nil, fmt.Errorf("counter: add needs an 8-byte delta")
	}
	delta := int64(binary.LittleEndian.Uint64(arg))
	c.mu.Lock()
	c.sum += delta
	v := c.sum
	c.mu.Unlock()
	return EncodeInt64(v), nil
}

// Query implements StateMachine.
func (c *Counter) Query(method string, arg []byte) ([]byte, error) {
	if method != "sum" {
		return nil, fmt.Errorf("counter: unknown query method %q", method)
	}
	c.mu.Lock()
	v := c.sum
	c.mu.Unlock()
	return EncodeInt64(v), nil
}

// Snapshot implements StateMachine.
func (c *Counter) Snapshot() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return EncodeInt64(c.sum), nil
}

// Restore implements StateMachine.
func (c *Counter) Restore(snap []byte) error {
	if len(snap) != 8 {
		return fmt.Errorf("counter: bad snapshot length %d", len(snap))
	}
	c.mu.Lock()
	c.sum = int64(binary.LittleEndian.Uint64(snap))
	c.mu.Unlock()
	return nil
}

// EncodeInt64 serializes v little-endian (helper for Counter users).
func EncodeInt64(v int64) []byte {
	return binary.LittleEndian.AppendUint64(nil, uint64(v))
}

// DecodeInt64 parses what EncodeInt64 produced.
func DecodeInt64(p []byte) (int64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("neptune: want 8 bytes, got %d", len(p))
	}
	return int64(binary.LittleEndian.Uint64(p)), nil
}

// KVStore is a byte-string key/value store whose writes do NOT commute
// (put overwrites), so it requires the PrimaryOrdered level.
//
// Methods:
//
//	Apply "put"    arg = kv pair      -> previous value (may be empty)
//	Apply "delete" arg = key          -> previous value
//	Query "get"    arg = key          -> value (error when absent)
//	Query "has"    arg = key          -> 1 byte: 0 or 1
//	Query "len"    arg ignored        -> count (8 bytes)
type KVStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewKVStore returns an empty store.
func NewKVStore() *KVStore { return &KVStore{m: make(map[string][]byte)} }

// EncodeKV serializes a key/value pair for "put".
func EncodeKV(key string, value []byte) []byte {
	buf := make([]byte, 0, 2+len(key)+len(value))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	buf = append(buf, key...)
	return append(buf, value...)
}

// DecodeKV parses what EncodeKV produced.
func DecodeKV(p []byte) (key string, value []byte, err error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("neptune: kv pair too short")
	}
	klen := int(binary.LittleEndian.Uint16(p[:2]))
	if len(p) < 2+klen {
		return "", nil, fmt.Errorf("neptune: kv pair truncated")
	}
	return string(p[2 : 2+klen]), append([]byte(nil), p[2+klen:]...), nil
}

// Apply implements StateMachine.
func (s *KVStore) Apply(method string, arg []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch method {
	case "put":
		key, value, err := DecodeKV(arg)
		if err != nil {
			return nil, err
		}
		prev := s.m[key]
		s.m[key] = value
		return prev, nil
	case "delete":
		key := string(arg)
		prev := s.m[key]
		delete(s.m, key)
		return prev, nil
	default:
		return nil, fmt.Errorf("kv: unknown write method %q", method)
	}
}

// Query implements StateMachine.
func (s *KVStore) Query(method string, arg []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch method {
	case "get":
		v, ok := s.m[string(arg)]
		if !ok {
			return nil, fmt.Errorf("kv: no such key %q", arg)
		}
		return append([]byte(nil), v...), nil
	case "has":
		if _, ok := s.m[string(arg)]; ok {
			return []byte{1}, nil
		}
		return []byte{0}, nil
	case "len":
		return EncodeInt64(int64(len(s.m))), nil
	default:
		return nil, fmt.Errorf("kv: unknown query method %q", method)
	}
}

// Snapshot implements StateMachine: a sorted, length-prefixed dump.
func (s *KVStore) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	count := binary.LittleEndian.AppendUint64(nil, uint64(len(keys)))
	buf.Write(count)
	for _, k := range keys {
		v := s.m[k]
		buf.Write(binary.LittleEndian.AppendUint16(nil, uint16(len(k))))
		buf.WriteString(k)
		buf.Write(binary.LittleEndian.AppendUint32(nil, uint32(len(v))))
		buf.Write(v)
	}
	return buf.Bytes(), nil
}

// Restore implements StateMachine.
func (s *KVStore) Restore(snap []byte) error {
	if len(snap) < 8 {
		return fmt.Errorf("kv: snapshot too short")
	}
	count := binary.LittleEndian.Uint64(snap[:8])
	p := snap[8:]
	m := make(map[string][]byte, count)
	for i := uint64(0); i < count; i++ {
		if len(p) < 2 {
			return fmt.Errorf("kv: snapshot truncated (key length)")
		}
		klen := int(binary.LittleEndian.Uint16(p[:2]))
		p = p[2:]
		if len(p) < klen+4 {
			return fmt.Errorf("kv: snapshot truncated (key)")
		}
		k := string(p[:klen])
		p = p[klen:]
		vlen := int(binary.LittleEndian.Uint32(p[:4]))
		p = p[4:]
		if len(p) < vlen {
			return fmt.Errorf("kv: snapshot truncated (value)")
		}
		m[k] = append([]byte(nil), p[:vlen]...)
		p = p[vlen:]
	}
	if len(p) != 0 {
		return fmt.Errorf("kv: %d trailing snapshot bytes", len(p))
	}
	s.mu.Lock()
	s.m = m
	s.mu.Unlock()
	return nil
}

// WordMap is the paper's motivating fine-grain service: the translation
// between query words and their internal representations (a stable
// 64-bit id). Translations are derived deterministically from the word,
// so the map is append-only and its writes commute — the service the
// Fine-Grain trace was recorded from is exactly this shape.
//
// Methods:
//
//	Query "translate" arg = word  -> 8-byte id (registers it on miss? no:
//	                                 read-only; unknown words still map
//	                                 deterministically)
//	Apply "learn"     arg = word  -> 8-byte id (records the word)
//	Query "count"                 -> number of learned words (8 bytes)
type WordMap struct {
	mu    sync.Mutex
	known map[string]uint64
}

// NewWordMap returns an empty word map.
func NewWordMap() *WordMap { return &WordMap{known: make(map[string]uint64)} }

// WordID returns the stable internal representation of a word.
func WordID(word string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(word))
	return h.Sum64()
}

// Apply implements StateMachine.
func (w *WordMap) Apply(method string, arg []byte) ([]byte, error) {
	if method != "learn" {
		return nil, fmt.Errorf("wordmap: unknown write method %q", method)
	}
	word := string(arg)
	id := WordID(word)
	w.mu.Lock()
	w.known[word] = id
	w.mu.Unlock()
	return binary.LittleEndian.AppendUint64(nil, id), nil
}

// Query implements StateMachine.
func (w *WordMap) Query(method string, arg []byte) ([]byte, error) {
	switch method {
	case "translate":
		return binary.LittleEndian.AppendUint64(nil, WordID(string(arg))), nil
	case "count":
		w.mu.Lock()
		n := int64(len(w.known))
		w.mu.Unlock()
		return EncodeInt64(n), nil
	default:
		return nil, fmt.Errorf("wordmap: unknown query method %q", method)
	}
}

// Snapshot implements StateMachine (words only; ids are derived).
func (w *WordMap) Snapshot() ([]byte, error) {
	w.mu.Lock()
	words := make([]string, 0, len(w.known))
	for word := range w.known {
		words = append(words, word)
	}
	w.mu.Unlock()
	sort.Strings(words)
	var buf bytes.Buffer
	buf.Write(binary.LittleEndian.AppendUint64(nil, uint64(len(words))))
	for _, word := range words {
		buf.Write(binary.LittleEndian.AppendUint16(nil, uint16(len(word))))
		buf.WriteString(word)
	}
	return buf.Bytes(), nil
}

// Restore implements StateMachine.
func (w *WordMap) Restore(snap []byte) error {
	if len(snap) < 8 {
		return fmt.Errorf("wordmap: snapshot too short")
	}
	count := binary.LittleEndian.Uint64(snap[:8])
	p := snap[8:]
	known := make(map[string]uint64, count)
	for i := uint64(0); i < count; i++ {
		if len(p) < 2 {
			return fmt.Errorf("wordmap: snapshot truncated")
		}
		wlen := int(binary.LittleEndian.Uint16(p[:2]))
		p = p[2:]
		if len(p) < wlen {
			return fmt.Errorf("wordmap: snapshot truncated")
		}
		word := string(p[:wlen])
		p = p[wlen:]
		known[word] = WordID(word)
	}
	if len(p) != 0 {
		return fmt.Errorf("wordmap: %d trailing snapshot bytes", len(p))
	}
	w.mu.Lock()
	w.known = known
	w.mu.Unlock()
	return nil
}
