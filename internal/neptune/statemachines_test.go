package neptune

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCounterAddSum(t *testing.T) {
	c := NewCounter()
	out, err := c.Apply("add", EncodeInt64(5))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := DecodeInt64(out); v != 5 {
		t.Fatalf("add returned %d", v)
	}
	if _, err := c.Apply("add", EncodeInt64(-2)); err != nil {
		t.Fatal(err)
	}
	out, err = c.Query("sum", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := DecodeInt64(out); v != 3 {
		t.Fatalf("sum = %d", v)
	}
}

func TestCounterErrors(t *testing.T) {
	c := NewCounter()
	if _, err := c.Apply("nope", nil); err == nil {
		t.Error("unknown write accepted")
	}
	if _, err := c.Apply("add", []byte{1}); err == nil {
		t.Error("short delta accepted")
	}
	if _, err := c.Query("nope", nil); err == nil {
		t.Error("unknown query accepted")
	}
	if err := c.Restore([]byte{1, 2}); err == nil {
		t.Error("bad snapshot accepted")
	}
}

func TestCounterSnapshotRoundTrip(t *testing.T) {
	c := NewCounter()
	_, _ = c.Apply("add", EncodeInt64(41))
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewCounter()
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	out, _ := fresh.Query("sum", nil)
	if v, _ := DecodeInt64(out); v != 41 {
		t.Fatalf("restored sum = %d", v)
	}
}

func TestKVStoreBasics(t *testing.T) {
	kv := NewKVStore()
	prev, err := kv.Apply("put", EncodeKV("a", []byte("1")))
	if err != nil {
		t.Fatal(err)
	}
	if len(prev) != 0 {
		t.Fatalf("previous value %q for fresh key", prev)
	}
	prev, err = kv.Apply("put", EncodeKV("a", []byte("2")))
	if err != nil {
		t.Fatal(err)
	}
	if string(prev) != "1" {
		t.Fatalf("previous = %q", prev)
	}
	got, err := kv.Query("get", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "2" {
		t.Fatalf("get = %q", got)
	}
	if has, _ := kv.Query("has", []byte("a")); has[0] != 1 {
		t.Fatal("has = 0")
	}
	if n, _ := kv.Query("len", nil); func() int64 { v, _ := DecodeInt64(n); return v }() != 1 {
		t.Fatal("len != 1")
	}
	if _, err := kv.Apply("delete", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Query("get", []byte("a")); err == nil {
		t.Fatal("get of deleted key succeeded")
	}
	if has, _ := kv.Query("has", []byte("a")); has[0] != 0 {
		t.Fatal("has after delete = 1")
	}
}

func TestKVStoreErrors(t *testing.T) {
	kv := NewKVStore()
	if _, err := kv.Apply("nope", nil); err == nil {
		t.Error("unknown write accepted")
	}
	if _, err := kv.Query("nope", nil); err == nil {
		t.Error("unknown query accepted")
	}
	if _, err := kv.Apply("put", []byte{0}); err == nil {
		t.Error("truncated kv pair accepted")
	}
	if err := kv.Restore([]byte{1}); err == nil {
		t.Error("bad snapshot accepted")
	}
}

func TestKVSnapshotRoundTrip(t *testing.T) {
	kv := NewKVStore()
	pairs := map[string]string{"alpha": "1", "beta": "22", "gamma": "", "": "empty-key"}
	for k, v := range pairs {
		if _, err := kv.Apply("put", EncodeKV(k, []byte(v))); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := kv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewKVStore()
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for k, v := range pairs {
		got, err := fresh.Query("get", []byte(k))
		if err != nil {
			t.Fatalf("get %q: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("get %q = %q, want %q", k, got, v)
		}
	}
}

func TestEncodeDecodeKV(t *testing.T) {
	k, v, err := DecodeKV(EncodeKV("key", []byte("value")))
	if err != nil || k != "key" || string(v) != "value" {
		t.Fatalf("round trip: %q %q %v", k, v, err)
	}
	if _, _, err := DecodeKV(nil); err == nil {
		t.Fatal("nil pair accepted")
	}
}

func TestWordMap(t *testing.T) {
	w := NewWordMap()
	id1, err := w.Query("translate", []byte("boston"))
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := w.Query("translate", []byte("boston"))
	if !bytes.Equal(id1, id2) {
		t.Fatal("translation not stable")
	}
	id3, _ := w.Query("translate", []byte("chicago"))
	if bytes.Equal(id1, id3) {
		t.Fatal("distinct words collided")
	}
	learned, err := w.Apply("learn", []byte("boston"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(learned, id1) {
		t.Fatal("learn returned different id")
	}
	n, _ := w.Query("count", nil)
	if v, _ := DecodeInt64(n); v != 1 {
		t.Fatalf("count = %d", v)
	}
}

func TestWordMapSnapshotRoundTrip(t *testing.T) {
	w := NewWordMap()
	for _, word := range []string{"a", "bb", "ccc"} {
		if _, err := w.Apply("learn", []byte(word)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewWordMap()
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	n, _ := fresh.Query("count", nil)
	if v, _ := DecodeInt64(n); v != 3 {
		t.Fatalf("restored count = %d", v)
	}
}

// Property: KV snapshot/restore round-trips arbitrary contents.
func TestQuickKVSnapshotRoundTrip(t *testing.T) {
	f := func(keys []string, vals [][]byte) bool {
		kv := NewKVStore()
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		want := map[string][]byte{}
		for i := 0; i < n; i++ {
			if len(keys[i]) > 65535 {
				continue
			}
			if _, err := kv.Apply("put", EncodeKV(keys[i], vals[i])); err != nil {
				return false
			}
			want[keys[i]] = vals[i]
		}
		snap, err := kv.Snapshot()
		if err != nil {
			return false
		}
		fresh := NewKVStore()
		if err := fresh.Restore(snap); err != nil {
			return false
		}
		for k, v := range want {
			got, err := fresh.Query("get", []byte(k))
			if err != nil || !bytes.Equal(got, v) {
				return false
			}
		}
		lenOut, _ := fresh.Query("len", nil)
		gotLen, _ := DecodeInt64(lenOut)
		return gotLen == int64(len(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: counter adds commute — any permutation of the same deltas
// yields the same sum (the Commutative-level requirement).
func TestQuickCounterCommutes(t *testing.T) {
	f := func(deltas []int32, swap uint8) bool {
		a := NewCounter()
		b := NewCounter()
		for _, d := range deltas {
			_, _ = a.Apply("add", EncodeInt64(int64(d)))
		}
		// Apply in reverse order to b.
		for i := len(deltas) - 1; i >= 0; i-- {
			_, _ = b.Apply("add", EncodeInt64(int64(deltas[i])))
		}
		sa, _ := a.Query("sum", nil)
		sb, _ := b.Query("sum", nil)
		return bytes.Equal(sa, sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: envelope encoding round-trips.
func TestQuickEnvelopeRoundTrip(t *testing.T) {
	f := func(op uint8, seq uint64, method string, arg []byte) bool {
		if len(method) > 255 {
			return true
		}
		in := envelope{op: op, seq: seq, method: method, arg: arg}
		buf, err := encodeEnvelope(in)
		if err != nil {
			return false
		}
		out, err := decodeEnvelope(buf)
		if err != nil {
			return false
		}
		return out.op == in.op && out.seq == in.seq && out.method == in.method &&
			bytes.Equal(out.arg, in.arg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEnvelopeErrors(t *testing.T) {
	if _, err := decodeEnvelope(nil); err == nil {
		t.Error("nil envelope accepted")
	}
	buf, _ := encodeEnvelope(envelope{op: opQuery, method: "m", arg: []byte("xyz")})
	for cut := 1; cut < len(buf); cut++ {
		if _, err := decodeEnvelope(buf[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func BenchmarkEnvelopeRoundTrip(b *testing.B) {
	env := envelope{op: opWrite, seq: 42, method: "put", arg: EncodeKV("key", []byte("value"))}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := encodeEnvelope(env)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := decodeEnvelope(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKVStorePut(b *testing.B) {
	kv := NewKVStore()
	arg := EncodeKV("key", []byte("value"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := kv.Apply("put", arg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWordMapTranslate(b *testing.B) {
	w := NewWordMap()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := w.Query("translate", []byte("anchorage")); err != nil {
			b.Fatal(err)
		}
	}
}
