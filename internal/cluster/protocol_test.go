package cluster

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	in := &Request{
		ID:        12345678901234,
		Service:   "translate",
		Partition: 7,
		ServiceUs: 2220,
		Payload:   []byte("keyword"),
	}
	if err := WriteRequest(w, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Service != in.Service || out.Partition != in.Partition ||
		out.ServiceUs != in.ServiceUs || string(out.Payload) != string(in.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestRequestEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteRequest(w, &Request{ID: 1, Service: "s"}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Payload) != 0 {
		t.Fatalf("payload %v", out.Payload)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	in := &Response{ID: 99, Status: StatusOK, Load: 13, Payload: []byte("ok")}
	if err := WriteResponse(w, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 99 || out.Status != StatusOK || out.Load != 13 || string(out.Payload) != "ok" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestRequestRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteRequest(w, &Request{Service: strings.Repeat("x", 300)}); err == nil {
		t.Fatal("oversized service name accepted")
	}
	if err := WriteRequest(w, &Request{Service: "s", Payload: make([]byte, maxPayload+1)}); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestReadRequestBadMagic(t *testing.T) {
	r := bufio.NewReader(bytes.NewReader([]byte{0x00, protoVersion, 0, 0, 0, 0, 0, 0, 0, 0}))
	if _, err := ReadRequest(r); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRequestBadVersion(t *testing.T) {
	r := bufio.NewReader(bytes.NewReader([]byte{magicRequest, 99, 0, 0, 0, 0, 0, 0, 0, 0}))
	if _, err := ReadRequest(r); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReadResponseBadMagic(t *testing.T) {
	r := bufio.NewReader(bytes.NewReader([]byte{0x00, protoVersion}))
	if _, err := ReadResponse(r); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRequestHugePayloadLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteRequest(w, &Request{ID: 1, Service: "s", Payload: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the payload-length field (last 4 bytes before payload).
	plenOff := len(b) - 3 - 4
	b[plenOff] = 0xff
	b[plenOff+1] = 0xff
	b[plenOff+2] = 0xff
	b[plenOff+3] = 0x7f
	if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(b))); err == nil {
		t.Fatal("corrupted length accepted")
	}
}

func TestReadRequestTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteRequest(w, &Request{ID: 1, Service: "svc", Payload: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(full[:cut]))); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestInquiryDatagrams(t *testing.T) {
	buf := EncodeInquiry(nil, 42)
	if len(buf) != inquirySize {
		t.Fatalf("inquiry size %d", len(buf))
	}
	seq, err := DecodeInquiry(buf)
	if err != nil || seq != 42 {
		t.Fatalf("decode: %v %v", seq, err)
	}
	if _, err := DecodeInquiry(buf[:3]); err == nil {
		t.Fatal("short inquiry accepted")
	}
}

func TestLoadDatagrams(t *testing.T) {
	buf := EncodeLoad(nil, 7, 99)
	if len(buf) != loadSize {
		t.Fatalf("load size %d", len(buf))
	}
	seq, load, err := DecodeLoad(buf)
	if err != nil || seq != 7 || load != 99 {
		t.Fatalf("decode: %v %v %v", seq, load, err)
	}
	buf[0] = 0x00
	if _, _, err := DecodeLoad(buf); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// Property: request framing round-trips arbitrary content.
func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(id uint64, part, svc uint32, name string, payload []byte) bool {
		if len(name) > maxServiceName || len(payload) > maxPayload {
			return true
		}
		in := &Request{ID: id, Service: name, Partition: part, ServiceUs: svc, Payload: payload}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteRequest(w, in); err != nil {
			return false
		}
		out, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return out.ID == in.ID && out.Service == in.Service &&
			out.Partition == in.Partition && out.ServiceUs == in.ServiceUs &&
			bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: load datagrams round-trip arbitrary values.
func TestQuickLoadRoundTrip(t *testing.T) {
	f := func(seq, load uint32) bool {
		gotSeq, gotLoad, err := DecodeLoad(EncodeLoad(nil, seq, load))
		return err == nil && gotSeq == seq && gotLoad == load
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRequestRoundTrip(b *testing.B) {
	req := &Request{ID: 1, Service: "translate", Partition: 3, ServiceUs: 2220, Payload: []byte("keyword")}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteRequest(w, req); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadRequest(bufio.NewReader(&buf)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadDatagramEncodeDecode(b *testing.B) {
	buf := make([]byte, 0, loadSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = EncodeLoad(buf, uint32(i), uint32(i%17))
		if _, _, err := DecodeLoad(buf); err != nil {
			b.Fatal(err)
		}
	}
}
