package cluster

import (
	"sync"
	"testing"
	"time"
)

func TestCallerRoundTrip(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc"})
	c := NewCaller(testTransport(t), time.Second)
	defer c.Close()
	resp, err := c.Call(n.Endpoint(), "svc", 0, 500, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK || string(resp.Payload) != "ping" {
		t.Fatalf("response %+v", resp)
	}
	// Sequential calls reuse the pooled connection and keep distinct ids.
	resp2, err := c.Call(n.Endpoint(), "svc", 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.ID == resp.ID {
		t.Fatal("caller reused a request id")
	}
}

func TestCallerAfterClose(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc"})
	c := NewCaller(testTransport(t), time.Second)
	c.Close()
	if _, err := c.Call(n.Endpoint(), "svc", 0, 0, nil); err == nil {
		t.Fatal("call on closed caller succeeded")
	}
}

func TestCallerDefaults(t *testing.T) {
	c := NewCaller(nil, 0)
	defer c.Close()
	if c.tr == nil {
		t.Fatal("nil transport not defaulted")
	}
	if c.timeout != 10*time.Second {
		t.Fatalf("default timeout %v", c.timeout)
	}
}

func TestCallerWrongService(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc"})
	c := NewCaller(testTransport(t), time.Second)
	defer c.Close()
	resp, err := c.Call(n.Endpoint(), "other", 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusNoService {
		t.Fatalf("status %d, want NoService", resp.Status)
	}
}

func TestCallerTimesOutOnStalledNode(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc"})
	n.Pause() // requests are accepted and queued but never served
	c := NewCaller(testTransport(t), 100*time.Millisecond)
	defer c.Close()
	start := time.Now()
	if _, err := c.Call(n.Endpoint(), "svc", 0, 0, nil); err == nil {
		t.Fatal("call against a paused node succeeded")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timeout took %v, want ~100ms", d)
	}
}

func TestCallerConcurrentCalls(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc", Workers: 4})
	c := NewCaller(testTransport(t), 2*time.Second)
	defer c.Close()
	var wg sync.WaitGroup
	var mu sync.Mutex
	ids := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Call(n.Endpoint(), "svc", 0, 1000, []byte("x"))
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			ids[resp.ID] = true
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(ids) != 10 {
		t.Fatalf("10 concurrent calls produced %d distinct ids", len(ids))
	}
}
