package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"finelb/internal/core"
	"finelb/internal/faults"
	"finelb/internal/membership"
	"finelb/internal/obs"
	"finelb/internal/stats"
	"finelb/internal/transport"
	"finelb/internal/workload"
)

// ExperimentConfig describes one prototype measurement run (§4):
// a cluster of server nodes and client nodes inside this process,
// exercised open-loop by a workload's arrival schedule.
type ExperimentConfig struct {
	Servers int
	Clients int // default 6, as in the paper's experiments
	// Workload must already be scaled (workload.Workload.ScaledTo) to
	// the target per-server load for Servers servers.
	Workload workload.Workload
	Policy   core.Policy

	// Transport is the messaging substrate every node, client, and
	// manager of the run uses (default transport.Net, real loopback
	// sockets). Pass a fresh transport.Mem fabric for a deterministic
	// in-memory run.
	Transport transport.Transport

	// Accesses is the number of accesses to issue (default 20000).
	Accesses int
	// WarmupFrac excludes the first fraction of accesses from the
	// statistics (default 0.1).
	WarmupFrac float64

	// Node knobs (see NodeConfig).
	Workers  int
	Spin     bool
	SlowProb float64
	SlowDist stats.Dist
	DropProb float64

	// TimeScale multiplies every arrival interval, service time, and
	// contention-model delay, to shrink (<1) or stretch (>1) the
	// wall-clock duration of a run without changing the load level or
	// the relative cost of polling. Default 1.
	TimeScale float64

	// Faults, when non-nil, injects the schedule into the run: node
	// events (crash/pause/resume) are replayed on the wall clock from
	// the first arrival, scaled by TimeScale, and link faults are wired
	// into every client. See internal/faults.
	Faults *faults.Schedule

	// Membership, when active, replays the elastic-membership schedule
	// (internal/membership) on the wall clock from the first arrival,
	// scaled by TimeScale exactly like Faults: joins start (or
	// re-publish) real nodes, drains withdraw them from the directory
	// while they keep serving, leaves retire them. Membership and Faults
	// cannot combine in one run — planned churn and failure injection
	// answer different questions, and mixing them makes both replays
	// ambiguous.
	Membership *membership.Schedule
	// Autoscaler, when active, runs the load-threshold autoscaler on the
	// scaled wall clock: the routable pool's mean load index is sampled
	// every Interval and the policy's deltas are applied as
	// join/drain/leave transitions. Combines freely with Membership.
	Autoscaler *membership.AutoscalerConfig
	// DirTTL overrides the directory's soft-state TTL (default
	// DefaultTTL); fault runs use a short TTL so crashed nodes expire
	// quickly. Nodes republish at DirTTL/4.
	DirTTL time.Duration

	// QuarantineAfter is passed through to every client (see
	// ClientConfig.QuarantineAfter); zero keeps the client default and
	// negative disables quarantine, which deterministic runs use
	// because quarantine expiry is wall-clock driven.
	QuarantineAfter int

	// Metrics, when non-nil, is the registry the run records the shared
	// obs.RunMetrics catalog into; nil records into a private registry.
	// Either way ExperimentResult.Metrics carries the end-of-run
	// snapshot, aggregated across every node and client of the run.
	Metrics *obs.Registry
	// Trace, when non-nil, receives structured access-lifecycle events
	// from the driver (access.complete, access.overload, access.lost)
	// and server fault injections. See obs.Event for the schema.
	Trace *obs.Trace

	ServiceName string // default "translate"
	Seed        uint64
}

// ExperimentResult aggregates the measurements of one run.
type ExperimentResult struct {
	Config ExperimentConfig

	// Response summarizes access response times in seconds, measured
	// from each access's scheduled arrival instant (so queueing from
	// client-side lateness counts, as in an open-loop load generator),
	// over post-warmup successful accesses.
	Response *stats.Summary
	// PollTime summarizes per-access time spent acquiring load
	// information, post-warmup.
	PollTime *stats.Summary
	// PollRTT summarizes individual inquiry round trips (profile P1).
	PollRTT *stats.Summary

	Polled    int64
	Answered  int64
	Discarded int64
	// LateAnswers counts poll answers that arrived after their inquiry
	// was abandoned at the deadline: the subset of Discarded whose
	// answer eventually showed up (§3.2's slow polls, as opposed to
	// datagrams that never arrived at all).
	LateAnswers int64
	Retries     int64 // poll re-rounds plus access re-attempts
	Errors      int64
	Overloads   int64
	// Lost counts accesses that never produced a response despite
	// retries (same thing as Errors on the prototype, named to match
	// the simulator's degraded-mode result).
	Lost int64

	PerServer []int64 // accesses served by each node (by index)
	NodeStats []NodeStats
	WallTime  time.Duration

	// Elastic membership (zero churn on fixed-pool runs, where
	// FinalPool = PeakPool = Servers): pool transitions applied and the
	// routable pool size at the end of the run and at its peak.
	Joins, Drains, Leaves int64
	FinalPool, PeakPool   int

	// Metrics is the end-of-run snapshot of the obs.RunMetrics catalog,
	// taken after the last access settles and before teardown.
	Metrics *obs.Snapshot
}

// MeanResponse returns the run's mean response time in seconds.
func (r *ExperimentResult) MeanResponse() float64 { return r.Response.Mean() }

// Describe summarizes the run in one line.
func (r *ExperimentResult) Describe() string {
	return fmt.Sprintf("%s %s n=%d: mean=%.3fms p95=%.3fms poll=%.3fms discard=%d err=%d",
		r.Config.Workload.Name, r.Config.Policy, r.Config.Servers,
		r.Response.Mean()*1e3, r.Response.Percentile(0.95)*1e3,
		r.PollTime.Mean()*1e3, r.Discarded, r.Errors)
}

// Cluster is a running prototype cluster: directory, nodes, clients,
// and (for Ideal) the centralized manager. Use StartCluster for
// exploratory programs and examples; RunExperiment builds one
// internally.
type Cluster struct {
	Dir     *Directory
	Nodes   []*Node
	Clients []*Client
	Manager *IdealManager

	// Registry is the run's metrics registry (the caller's
	// ExperimentConfig.Metrics, or a private one) and Metrics the shared
	// catalog every node and client of this cluster records into.
	Registry *obs.Registry
	Metrics  *obs.RunMetrics

	// Elastic membership state (elastic.go). newNode is the template
	// Join starts mid-run nodes from; mm is non-nil only for elastic
	// runs so fixed-pool metric snapshots stay bit-identical.
	newNode func(id int) NodeConfig
	mm      *obs.MembershipMetrics

	churnMu               sync.Mutex
	routable              []bool
	left                  []bool
	retiring              []bool
	pool                  int
	peakPool              int
	joins, drains, leaves int64
}

// StartCluster boots servers and clients per cfg and waits until every
// client sees all servers in its mapping table.
func StartCluster(cfg ExperimentConfig) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Membership.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Autoscaler.Validate(); err != nil {
		return nil, err
	}
	if cfg.elastic() {
		if cfg.Faults.Active() {
			return nil, fmt.Errorf("cluster: Membership and Faults cannot combine in one run")
		}
		if cfg.Autoscaler.Active() && cfg.Autoscaler.Max < cfg.Servers {
			return nil, fmt.Errorf("cluster: autoscaler max pool %d below initial %d servers", cfg.Autoscaler.Max, cfg.Servers)
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cl := &Cluster{
		Dir:      NewDirectory(cfg.DirTTL),
		Registry: reg,
		Metrics:  obs.NewRunMetrics(reg),
	}
	fail := func(err error) (*Cluster, error) {
		cl.Close()
		return nil, err
	}

	if cfg.Policy.Kind == core.Ideal {
		m, err := StartIdealManager(cfg.Transport, cfg.Servers, cfg.Seed)
		if err != nil {
			return fail(err)
		}
		cl.Manager = m
	}

	// The §3.2 contention model is part of the emulated environment, so
	// its delays live on the same clock as arrivals and service times:
	// a time-compressed run shrinks them by the same factor, keeping the
	// relative cost of polling unchanged.
	slowDist := cfg.SlowDist
	if cfg.TimeScale != 1 {
		if slowDist == nil {
			slowDist = DefaultSlowDist()
		}
		slowDist = stats.Scaled{D: slowDist, Factor: cfg.TimeScale}
	}

	// The same template serves initial nodes and mid-run joins, so an
	// elastic pool's newcomers are indistinguishable from the seed set.
	cl.newNode = func(id int) NodeConfig {
		return NodeConfig{
			ID:              id,
			Service:         cfg.ServiceName,
			Transport:       cfg.Transport,
			Workers:         cfg.Workers,
			Spin:            cfg.Spin,
			Directory:       cl.Dir,
			PublishInterval: cfg.DirTTL / 4, // zero keeps the node default
			SlowProb:        cfg.SlowProb,
			SlowDist:        slowDist,
			DropProb:        cfg.DropProb,
			Metrics:         cl.Metrics,
			Seed:            cfg.Seed + uint64(id)*7919,
		}
	}
	for i := 0; i < cfg.Servers; i++ {
		n, err := StartNode(cl.newNode(i))
		if err != nil {
			return fail(err)
		}
		cl.Nodes = append(cl.Nodes, n)
		cl.routable = append(cl.routable, true)
		cl.left = append(cl.left, false)
		cl.retiring = append(cl.retiring, false)
	}
	cl.pool, cl.peakPool = cfg.Servers, cfg.Servers
	if cfg.elastic() {
		// Membership metrics register only for elastic runs, so
		// fixed-pool snapshot digests stay bit-identical.
		cl.mm = obs.NewMembershipMetrics(reg)
		cl.mm.Pool.Set(int64(cfg.Servers))
	}

	mgrAddr := ""
	if cl.Manager != nil {
		mgrAddr = cl.Manager.Addr()
	}
	for i := 0; i < cfg.Clients; i++ {
		ccfg := ClientConfig{
			ID:              i,
			Directory:       cl.Dir,
			Service:         cfg.ServiceName,
			Policy:          cfg.Policy,
			Transport:       cfg.Transport,
			ManagerAddr:     mgrAddr,
			Faults:          cfg.Faults,
			QuarantineAfter: cfg.QuarantineAfter,
			Metrics:         cl.Metrics,
			Seed:            cfg.Seed + 104729 + uint64(i)*31,
		}
		if cfg.DirTTL > 0 {
			// Track the faster soft-state churn of a short-TTL directory.
			ccfg.RefreshInterval = cfg.DirTTL / 4
			ccfg.QuarantineFor = cfg.DirTTL
		}
		c, err := NewClient(ccfg)
		if err != nil {
			return fail(err)
		}
		cl.Clients = append(cl.Clients, c)
	}

	// Wait (briefly) until mapping tables are complete.
	deadline := time.Now().Add(2 * time.Second)
	for _, c := range cl.Clients {
		for len(c.Endpoints()) < cfg.Servers {
			if time.Now().After(deadline) {
				return fail(fmt.Errorf("cluster: mapping tables incomplete after 2s"))
			}
			time.Sleep(time.Millisecond)
			c.Refresh()
		}
	}
	return cl, nil
}

// Close shuts everything down. Elastic runs can leave nil placeholders
// in Nodes for ids the run never joined.
func (cl *Cluster) Close() {
	for _, c := range cl.Clients {
		c.Close()
	}
	for _, n := range cl.Nodes {
		if n != nil {
			n.Close()
		}
	}
	if cl.Manager != nil {
		cl.Manager.Close()
	}
}

func (cfg ExperimentConfig) withDefaults() ExperimentConfig {
	if cfg.Transport == nil {
		cfg.Transport = transport.Default()
	}
	if cfg.Clients == 0 {
		cfg.Clients = 6
	}
	if cfg.Accesses == 0 {
		cfg.Accesses = 20000
	}
	if cfg.WarmupFrac == 0 {
		cfg.WarmupFrac = 0.1
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 1
	}
	if cfg.ServiceName == "" {
		cfg.ServiceName = "translate"
	}
	return cfg
}

// elastic reports whether the run's server pool can change mid-run.
func (cfg ExperimentConfig) elastic() bool {
	return cfg.Membership.Active() || cfg.Autoscaler.Active()
}

// maxPool returns the largest node id space the run can touch: the
// initial pool, every id the schedule names, and the autoscaler's
// ceiling.
func (cfg ExperimentConfig) maxPool() int {
	n := cfg.Servers
	if m := cfg.Membership.MaxNode() + 1; m > n {
		n = m
	}
	if cfg.Autoscaler.Active() && cfg.Autoscaler.Max > n {
		n = cfg.Autoscaler.Max
	}
	return n
}

// RunExperiment boots a cluster, replays the workload open-loop, and
// returns the measurements.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("cluster: Servers = %d", cfg.Servers)
	}
	if cfg.Workload.Arrival == nil || cfg.Workload.Service == nil {
		return nil, fmt.Errorf("cluster: incomplete workload")
	}
	if cfg.TimeScale <= 0 {
		return nil, fmt.Errorf("cluster: TimeScale = %v", cfg.TimeScale)
	}

	cl, err := StartCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	res := &ExperimentResult{
		Config:   cfg,
		Response: stats.NewSummary(true),
		PollTime: stats.NewSummary(true),
		PollRTT:  stats.NewSummary(true),
	}
	res.PerServer = make([]int64, cfg.maxPool())

	// Pre-generate the access schedule so generation cost is off the
	// timed path.
	trace := cfg.Workload.Generate(cfg.Accesses, cfg.Seed^0xfeedface)
	warmup := int(float64(cfg.Accesses) * cfg.WarmupFrac)

	// Collect garbage left over from setup (or from a preceding run in
	// the same process) so GC pauses don't pollute the timed phase —
	// latency experiments on a single-core box are sensitive to this.
	runtime.GC()

	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now().Add(20 * time.Millisecond) // settle time before first arrival

	// emit records one driver-level trace event on the run clock
	// (seconds since the first scheduled arrival).
	emit := func(name, actor string, a, b int64) {
		if cfg.Trace != nil {
			cfg.Trace.Emit(time.Since(start).Seconds(), name, actor, a, b)
		}
	}

	if cfg.Faults != nil {
		player := cfg.Faults.PlayAt(start, cfg.TimeScale, func(ev faults.NodeEvent) {
			if ev.Node >= len(cl.Nodes) {
				return
			}
			switch n := cl.Nodes[ev.Node]; ev.Kind {
			case faults.Crash:
				n.Close()
				emit("server.crash", fmt.Sprintf("server:%d", ev.Node), 0, 0)
			case faults.Pause:
				n.Pause()
				emit("server.pause", fmt.Sprintf("server:%d", ev.Node), 0, 0)
			case faults.Resume:
				n.Resume()
				emit("server.resume", fmt.Sprintf("server:%d", ev.Node), 0, 0)
			}
		})
		defer player.Stop()
	}

	if cfg.Membership.Active() {
		mplayer := cfg.Membership.PlayAt(start, cfg.TimeScale, func(ev membership.Event) {
			changed := false
			switch ev.Kind {
			case membership.Join:
				changed = cl.Join(ev.Node)
			case membership.Drain:
				changed = cl.Drain(ev.Node)
			case membership.Leave:
				changed = cl.Leave(ev.Node)
			}
			if changed {
				emit("server."+ev.Kind.String(), fmt.Sprintf("server:%d", ev.Node), int64(cl.Pool()), 0)
			}
		})
		defer mplayer.Stop()
	}

	if cfg.Autoscaler.Active() {
		as := membership.NewAutoscaler(cfg.Autoscaler)
		// The sampling interval lives on the same clock as arrivals and
		// service times; cooldowns are evaluated in spec time, so the
		// elapsed wall time is unscaled back before each evaluation.
		interval := time.Duration(float64(as.Config().Interval) * cfg.TimeScale)
		asDone := make(chan struct{})
		var asWG sync.WaitGroup
		asWG.Add(1)
		go func() {
			defer asWG.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-asDone:
					return
				case <-t.C:
					now := time.Duration(float64(time.Since(start)) / cfg.TimeScale)
					cl.Autoscale(as, now, func(kind string, id, pool int) {
						emit(kind, fmt.Sprintf("server:%d", id), int64(pool), 0)
					})
				}
			}
		}()
		defer func() {
			close(asDone)
			asWG.Wait()
		}()
	}

	for i, a := range trace {
		i, a := i, a
		client := cl.Clients[i%len(cl.Clients)]
		arrival := start.Add(time.Duration(a.Arrival * cfg.TimeScale * float64(time.Second)))
		serviceUs := uint32(a.Service * cfg.TimeScale * 1e6)
		wg.Add(1)
		time.AfterFunc(time.Until(arrival), func() {
			defer wg.Done()
			info, err := client.Access(serviceUs, nil)
			elapsed := time.Since(arrival)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				res.Errors++
				cl.Metrics.Lost.Inc()
				emit("access.lost", "driver", int64(i), 0)
				return
			}
			if info.Resp.Status == StatusOverload {
				res.Overloads++
				emit("access.overload", "driver", int64(i), int64(info.Server))
				return
			}
			cl.Metrics.Completions.Inc()
			cl.Metrics.ResponseSeconds.Observe(elapsed.Seconds())
			if cfg.Policy.Kind == core.Poll {
				cl.Metrics.PollWaitSeconds.Observe(info.PollTime.Seconds())
			}
			for info.Server >= len(res.PerServer) {
				res.PerServer = append(res.PerServer, 0)
			}
			res.PerServer[info.Server]++
			res.Polled += int64(info.Polled)
			res.Answered += int64(info.Answered)
			res.Discarded += int64(info.Discarded)
			res.Retries += int64(info.Retries)
			if i >= warmup {
				res.Response.Add(elapsed.Seconds())
				if cfg.Policy.Kind == core.Poll {
					res.PollTime.Add(info.PollTime.Seconds())
				}
				for _, rtt := range info.PollRTTs {
					res.PollRTT.Add(rtt.Seconds())
				}
			}
		})
	}
	wg.Wait()
	res.WallTime = time.Since(start)
	res.Lost = res.Errors
	for _, c := range cl.Clients {
		res.LateAnswers += c.LateAnswers()
	}
	for _, n := range cl.Nodes {
		if n == nil {
			res.NodeStats = append(res.NodeStats, NodeStats{})
			continue
		}
		res.NodeStats = append(res.NodeStats, n.Stats())
	}
	res.Joins, res.Drains, res.Leaves, res.FinalPool, res.PeakPool = cl.ChurnStats()
	// Snapshot after the last access settles and before teardown, so
	// cross-metric invariants (gauges back at zero on clean runs) hold.
	res.Metrics = cl.Registry.Snapshot()
	return res, nil
}
