package cluster

import (
	"testing"
	"time"

	"finelb/internal/transport"
)

// TestPollPathZeroAllocs is the poll hot path's allocation gate
// (DESIGN.md §12): the codecs reusing pooled buffers, the decoders on
// both valid and garbage datagrams, and a whole poll round on the mem
// fabric — encode, fan-out, synchronous demux, decision — must
// allocate nothing in steady state. Like the simcluster gate, it is
// skipped under -race, whose instrumentation perturbs allocation
// accounting.
func TestPollPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under -race")
	}

	t.Run("codecs", func(t *testing.T) {
		inqBuf := make([]byte, 0, inquirySize)
		loadBuf := make([]byte, 0, loadSize)
		if avg := testing.AllocsPerRun(1000, func() {
			inqBuf = EncodeInquiry(inqBuf, 7)
			loadBuf = EncodeLoad(loadBuf, 7, 42)
		}); avg != 0 {
			t.Errorf("encode into pooled buffers allocates %.4f allocs/op, want 0", avg)
		}
		inq := EncodeInquiry(nil, 9)
		load := EncodeLoad(nil, 9, 3)
		garbage := []byte{0xde, 0xad, 0xbe}
		if avg := testing.AllocsPerRun(1000, func() {
			_, _ = DecodeInquiry(inq)
			_, _, _ = DecodeLoad(load)
			_, _ = DecodeInquiry(garbage)
			_, _, _ = DecodeLoad(garbage)
		}); avg != 0 {
			t.Errorf("decode allocates %.4f allocs/op, want 0", avg)
		}
	})

	t.Run("poll_round_mem", func(t *testing.T) {
		tr := transport.NewMem(transport.MemConfig{Seed: 1})
		c, eps := pollBenchCluster(t, tr, 8, 4)
		info := &AccessInfo{PollRTTs: make([]time.Duration, 0, 4)}
		// Prime the round pool, agents, and steady-state map sizes.
		for i := 0; i < 200; i++ {
			if _, ok, err := c.pollOnce(eps, info); err != nil || !ok {
				t.Fatalf("priming round failed: ok=%v err=%v", ok, err)
			}
			info.PollRTTs = info.PollRTTs[:0]
		}
		if avg := testing.AllocsPerRun(1000, func() {
			_, ok, err := c.pollOnce(eps, info)
			if err != nil || !ok {
				t.Fatalf("round failed: ok=%v err=%v", ok, err)
			}
			info.PollRTTs = info.PollRTTs[:0]
		}); avg != 0 {
			t.Errorf("steady-state poll round allocates %.4f allocs/round, want 0", avg)
		}
	})
}
