package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"finelb/internal/stats"
	"finelb/internal/transport"
)

// IdealManager emulates the IDEAL policy in the prototype exactly as
// the paper does (§4): a centralized load-index manager keeps every
// server's queue length; a client asks it for the shortest-queue server
// before each access (which increments that queue) and reports back
// after the access completes (which decrements it).
type IdealManager struct {
	ln transport.Listener

	mu       sync.Mutex
	counts   []int64
	active   []bool // acquire only assigns active (routable) servers
	rng      *stats.RNG
	acquires int64
	releases int64

	wg     sync.WaitGroup
	done   chan struct{}
	once   sync.Once
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// Manager protocol opcodes.
const (
	mgrOpAcquire = 1
	mgrOpRelease = 2
)

// StartIdealManager starts a manager for n servers on a stream
// listener of tr (the default real-socket transport when nil).
func StartIdealManager(tr transport.Transport, n int, seed uint64) (*IdealManager, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: IdealManager with n = %d", n)
	}
	if tr == nil {
		tr = transport.Default()
	}
	ln, err := tr.Listen()
	if err != nil {
		return nil, err
	}
	m := &IdealManager{
		ln:     ln,
		counts: make([]int64, n),
		active: make([]bool, n),
		rng:    stats.NewRNG(seed ^ 0xdeadbeefcafef00d),
		done:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	for i := range m.active {
		m.active[i] = true
	}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the manager's stream address.
func (m *IdealManager) Addr() string { return m.ln.Addr() }

// Counts snapshots the per-server assigned counts.
func (m *IdealManager) Counts() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int64, len(m.counts))
	copy(out, m.counts)
	return out
}

// ManagerStats are the manager's protocol counters.
type ManagerStats struct {
	Acquires int64 // server assignments handed out
	Releases int64 // completions reported back
}

// Stats snapshots the manager's protocol counters (lbmanager's /metrics
// endpoint republishes them).
func (m *IdealManager) Stats() ManagerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ManagerStats{Acquires: m.acquires, Releases: m.releases}
}

// Close stops the manager and waits for its goroutines.
func (m *IdealManager) Close() error {
	m.once.Do(func() {
		close(m.done)
		_ = m.ln.Close()
		m.connMu.Lock()
		for c := range m.conns {
			c.Close()
		}
		m.connMu.Unlock()
	})
	m.wg.Wait()
	return nil
}

func (m *IdealManager) acceptLoop() {
	defer m.wg.Done()
	for {
		c, err := m.ln.Accept()
		if err != nil {
			select {
			case <-m.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		m.connMu.Lock()
		m.conns[c] = struct{}{}
		m.connMu.Unlock()
		// A connection accepted while Close is sweeping m.conns would be
		// missed by the sweep; Close closes done before sweeping, so
		// re-checking here closes the gap.
		select {
		case <-m.done:
			c.Close()
			continue
		default:
		}
		m.wg.Add(1)
		go m.serve(c)
	}
}

// EnsureServers grows the manager's view to hold servers [0, n). New
// slots start inactive — a joining server re-registers through
// SetActive — and an already-large view is untouched, so counts (the
// in-flight work of servers that drained with work outstanding) are
// never reset by churn.
func (m *IdealManager) EnsureServers(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.counts) < n {
		m.counts = append(m.counts, 0)
		m.active = append(m.active, false)
	}
}

// SetActive marks whether acquire may assign server idx. Draining a
// server deactivates it while its count keeps decrementing as clients
// release completed accesses; re-joining reactivates it with whatever
// count it still carries.
func (m *IdealManager) SetActive(idx int, active bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if idx >= 0 && idx < len(m.active) {
		m.active[idx] = active
	}
}

// acquire picks the least-loaded active server (uniform tie-break) and
// increments its count. If every server is inactive — transiently
// possible mid-churn — it falls back to the full set rather than fail
// the access.
func (m *IdealManager) acquire() uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	best, ties := -1, 0
	for i := 0; i < len(m.counts); i++ {
		if !m.active[i] {
			continue
		}
		switch {
		case best < 0 || m.counts[i] < m.counts[best]:
			best, ties = i, 1
		case m.counts[i] == m.counts[best]:
			ties++
			if m.rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	if best < 0 {
		best, ties = 0, 1
		for i := 1; i < len(m.counts); i++ {
			switch {
			case m.counts[i] < m.counts[best]:
				best, ties = i, 1
			case m.counts[i] == m.counts[best]:
				ties++
				if m.rng.Intn(ties) == 0 {
					best = i
				}
			}
		}
	}
	m.counts[best]++
	m.acquires++
	return uint32(best)
}

// release decrements a server's count, clamping at zero.
func (m *IdealManager) release(idx uint32) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(idx) >= len(m.counts) {
		return false
	}
	if m.counts[idx] > 0 {
		m.counts[idx]--
	}
	m.releases++
	return true
}

func (m *IdealManager) serve(c net.Conn) {
	defer m.wg.Done()
	defer func() {
		m.connMu.Lock()
		delete(m.conns, c)
		m.connMu.Unlock()
		c.Close()
	}()
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)
	var buf [4]byte
	for {
		op, err := r.ReadByte()
		if err != nil {
			return
		}
		switch op {
		case mgrOpAcquire:
			binary.LittleEndian.PutUint32(buf[:], m.acquire())
			if _, err := w.Write(buf[:]); err != nil {
				return
			}
		case mgrOpRelease:
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return
			}
			ok := m.release(binary.LittleEndian.Uint32(buf[:]))
			ack := byte(0)
			if !ok {
				ack = 1
			}
			if err := w.WriteByte(ack); err != nil {
				return
			}
		default:
			return // protocol error: drop the connection
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// managerClient wraps a connection pool with the manager protocol.
type managerClient struct{ pool *connPool }

func newManagerClient(tr transport.Transport, addr string) *managerClient {
	return &managerClient{pool: newConnPool(tr, addr)}
}

func (mc *managerClient) acquire() (uint32, error) {
	pc, err := mc.pool.get()
	if err != nil {
		return 0, err
	}
	if err := pc.w.WriteByte(mgrOpAcquire); err != nil {
		mc.pool.discard(pc)
		return 0, err
	}
	if err := pc.w.Flush(); err != nil {
		mc.pool.discard(pc)
		return 0, err
	}
	var buf [4]byte
	if _, err := io.ReadFull(pc.r, buf[:]); err != nil {
		mc.pool.discard(pc)
		return 0, err
	}
	mc.pool.put(pc)
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func (mc *managerClient) release(idx uint32) error {
	pc, err := mc.pool.get()
	if err != nil {
		return err
	}
	var buf [5]byte
	buf[0] = mgrOpRelease
	binary.LittleEndian.PutUint32(buf[1:], idx)
	if _, err := pc.w.Write(buf[:]); err != nil {
		mc.pool.discard(pc)
		return err
	}
	if err := pc.w.Flush(); err != nil {
		mc.pool.discard(pc)
		return err
	}
	ack, err := pc.r.ReadByte()
	if err != nil {
		mc.pool.discard(pc)
		return err
	}
	mc.pool.put(pc)
	if ack != 0 {
		return fmt.Errorf("cluster: manager rejected release of %d", idx)
	}
	return nil
}

func (mc *managerClient) close() { mc.pool.closeAll() }
