package cluster

import (
	"bufio"
	"bytes"
	"testing"
	"testing/quick"
)

// The protocol fuzz suite holds every decoder to the same contract:
// arbitrary input — truncated, oversized, garbage — never panics and
// never allocates beyond the maxPayload bound, and any input a decoder
// accepts round-trips bit-identically through the matching encoder.
// Seed corpora live under testdata/fuzz; CI replays them in short mode
// (-run=Fuzz) and fuzzes briefly (-fuzztime=10s) in the race job.

// encodeRequest frames req into a byte slice via the production writer.
func encodeRequest(t testing.TB, req *Request) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := WriteRequest(bufio.NewWriter(&b), req); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	return b.Bytes()
}

// encodeResponse frames resp into a byte slice via the production writer.
func encodeResponse(t testing.TB, resp *Response) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := WriteResponse(bufio.NewWriter(&b), resp); err != nil {
		t.Fatalf("WriteResponse: %v", err)
	}
	return b.Bytes()
}

func FuzzDecodeRequest(f *testing.F) {
	f.Add(encodeRequest(f, &Request{ID: 1, Service: "svc", Partition: 2, ServiceUs: 300, Payload: []byte("hello")}))
	f.Add(encodeRequest(f, &Request{ID: 0, Service: "", Payload: nil}))
	f.Add([]byte{})
	f.Add([]byte{magicRequest})
	f.Add([]byte{magicRequest, protoVersion, 1, 2, 3})
	f.Add([]byte{magicResponse, protoVersion}) // wrong magic
	f.Add(bytes.Repeat([]byte{0xff}, 64))      // oversized length fields everywhere
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if len(req.Payload) > maxPayload {
			t.Fatalf("decoded payload of %d bytes exceeds maxPayload", len(req.Payload))
		}
		if len(req.Service) > maxServiceName {
			t.Fatalf("decoded service name of %d bytes exceeds maxServiceName", len(req.Service))
		}
		// Accepted input must survive encode∘decode unchanged (the input
		// may have trailing bytes the decoder ignores, so compare values,
		// not raw bytes).
		again, err := ReadRequest(bufio.NewReader(bytes.NewReader(encodeRequest(t, req))))
		if err != nil {
			t.Fatalf("re-decode of re-encoded request: %v", err)
		}
		if again.ID != req.ID || again.Service != req.Service ||
			again.Partition != req.Partition || again.ServiceUs != req.ServiceUs ||
			!bytes.Equal(again.Payload, req.Payload) {
			t.Fatalf("request round trip mismatch: %+v != %+v", again, req)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	f.Add(encodeResponse(f, &Response{ID: 1, Status: StatusOK, Load: 3, Payload: []byte("ok")}))
	f.Add(encodeResponse(f, &Response{ID: 0, Status: StatusOverload}))
	f.Add([]byte{})
	f.Add([]byte{magicResponse})
	f.Add([]byte{magicResponse, protoVersion, 9, 9})
	f.Add([]byte{magicRequest, protoVersion}) // wrong magic
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := ReadResponse(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if len(resp.Payload) > maxPayload {
			t.Fatalf("decoded payload of %d bytes exceeds maxPayload", len(resp.Payload))
		}
		again, err := ReadResponse(bufio.NewReader(bytes.NewReader(encodeResponse(t, resp))))
		if err != nil {
			t.Fatalf("re-decode of re-encoded response: %v", err)
		}
		if again.ID != resp.ID || again.Status != resp.Status ||
			again.Load != resp.Load || !bytes.Equal(again.Payload, resp.Payload) {
			t.Fatalf("response round trip mismatch: %+v != %+v", again, resp)
		}
	})
}

func FuzzDecodeInquiry(f *testing.F) {
	f.Add(EncodeInquiry(nil, 0))
	f.Add(EncodeInquiry(nil, 0xdeadbeef))
	f.Add([]byte{})
	f.Add([]byte{magicInquiry})
	f.Add([]byte{magicLoad, 1, 2, 3, 4}) // wrong magic, right size
	f.Add(bytes.Repeat([]byte{magicInquiry}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, err := DecodeInquiry(data)
		if err != nil {
			return
		}
		// A fixed-size datagram the decoder accepts must re-encode to the
		// exact input bytes.
		if out := EncodeInquiry(nil, seq); !bytes.Equal(out, data) {
			t.Fatalf("inquiry round trip: %x != %x", out, data)
		}
	})
}

func FuzzDecodeLoad(f *testing.F) {
	f.Add(EncodeLoad(nil, 0, 0))
	f.Add(EncodeLoad(nil, 7, 42))
	f.Add([]byte{})
	f.Add([]byte{magicLoad})
	f.Add([]byte{magicInquiry, 1, 2, 3, 4, 5, 6, 7, 8}) // wrong magic, right size
	f.Add(bytes.Repeat([]byte{magicLoad}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, load, err := DecodeLoad(data)
		if err != nil {
			return
		}
		if out := EncodeLoad(nil, seq, load); !bytes.Equal(out, data) {
			t.Fatalf("load round trip: %x != %x", out, data)
		}
	})
}

// TestProtocolRoundTripQuick checks encode∘decode = id over randomized
// values of every message type, including the boundary sizes the fuzz
// corpora can take longer to reach.
func TestProtocolRoundTripQuick(t *testing.T) {
	if err := quick.Check(func(id uint64, svc []byte, part, serviceUs uint32, payload []byte) bool {
		if len(svc) > maxServiceName {
			svc = svc[:maxServiceName]
		}
		if len(payload) > maxPayload {
			payload = payload[:maxPayload]
		}
		req := &Request{ID: id, Service: string(svc), Partition: part, ServiceUs: serviceUs, Payload: payload}
		got, err := ReadRequest(bufio.NewReader(bytes.NewReader(encodeRequest(t, req))))
		if err != nil {
			t.Logf("ReadRequest: %v", err)
			return false
		}
		return got.ID == req.ID && got.Service == req.Service &&
			got.Partition == req.Partition && got.ServiceUs == req.ServiceUs &&
			bytes.Equal(got.Payload, req.Payload)
	}, nil); err != nil {
		t.Errorf("request: %v", err)
	}

	if err := quick.Check(func(id uint64, status uint8, load uint32, payload []byte) bool {
		if len(payload) > maxPayload {
			payload = payload[:maxPayload]
		}
		resp := &Response{ID: id, Status: status, Load: load, Payload: payload}
		got, err := ReadResponse(bufio.NewReader(bytes.NewReader(encodeResponse(t, resp))))
		if err != nil {
			t.Logf("ReadResponse: %v", err)
			return false
		}
		return got.ID == resp.ID && got.Status == resp.Status &&
			got.Load == resp.Load && bytes.Equal(got.Payload, resp.Payload)
	}, nil); err != nil {
		t.Errorf("response: %v", err)
	}

	if err := quick.Check(func(seq uint32) bool {
		got, err := DecodeInquiry(EncodeInquiry(nil, seq))
		return err == nil && got == seq
	}, nil); err != nil {
		t.Errorf("inquiry: %v", err)
	}

	if err := quick.Check(func(seq, load uint32) bool {
		gotSeq, gotLoad, err := DecodeLoad(EncodeLoad(nil, seq, load))
		return err == nil && gotSeq == seq && gotLoad == load
	}, nil); err != nil {
		t.Errorf("load: %v", err)
	}
}

// TestDatagramDecodersRejectGarbage pins the malformed-input behavior
// the read paths rely on: truncated, oversized, and wrong-magic
// datagrams fail with the fixed sentinel errors (no allocation) and
// never panic.
func TestDatagramDecodersRejectGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{magicInquiry},
		{magicLoad},
		{magicInquiry, 1, 2, 3},          // one byte short
		{magicLoad, 1, 2, 3, 4, 5, 6, 7}, // one byte short
		bytes.Repeat([]byte{magicInquiry}, inquirySize+1),
		bytes.Repeat([]byte{magicLoad}, loadSize+1),
		bytes.Repeat([]byte{0x00}, 1<<16),
	}
	for _, p := range bad {
		if _, err := DecodeInquiry(p); err == nil && len(p) == inquirySize && p[0] == magicInquiry {
			continue // actually well-formed
		} else if err == nil {
			t.Errorf("DecodeInquiry(%d bytes) accepted garbage", len(p))
		}
		if _, _, err := DecodeLoad(p); err == nil && len(p) == loadSize && p[0] == magicLoad {
			continue
		} else if err == nil {
			t.Errorf("DecodeLoad(%d bytes) accepted garbage", len(p))
		}
	}
}
