package cluster

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"finelb/internal/stats"
	"finelb/internal/transport"
)

// startTestNode starts a node with the contention model disabled so
// load answers are prompt and deterministic.
func startTestNode(t *testing.T, cfg NodeConfig) *Node {
	t.Helper()
	if cfg.SlowProb == 0 {
		cfg.SlowProb = -1 // disabled
	}
	if cfg.Transport == nil {
		cfg.Transport = testTransport(t)
	}
	n, err := StartNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// dialNode opens a raw client connection to a node, through the
// node's own transport so the test works on the in-memory fabric too.
func dialNode(t *testing.T, n *Node) (net.Conn, *bufio.Reader, *bufio.Writer) {
	t.Helper()
	c, err := n.Transport().Dial(n.AccessAddr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, bufio.NewReader(c), bufio.NewWriter(c)
}

// dialLoad opens a raw datagram connection to a node's load-index
// server.
func dialLoad(t *testing.T, n *Node) transport.PacketConn {
	t.Helper()
	conn, err := n.Transport().DialPacket(n.LoadAddr(), transport.NoLink)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestNodeServesRequest(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc"})
	_, r, w := dialNode(t, n)
	req := &Request{ID: 5, Service: "svc", ServiceUs: 1000, Payload: []byte("ping")}
	if err := WriteRequest(w, req); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := ReadResponse(r)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 5 || resp.Status != StatusOK {
		t.Fatalf("response %+v", resp)
	}
	if string(resp.Payload) != "ping" {
		t.Fatalf("echo payload %q", resp.Payload)
	}
	if d := time.Since(start); d < time.Millisecond {
		t.Fatalf("service emulation too fast: %v", d)
	}
	if s := n.Stats(); s.Served != 1 {
		t.Fatalf("served = %d", s.Served)
	}
}

func TestNodeRejectsWrongService(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc"})
	_, r, w := dialNode(t, n)
	if err := WriteRequest(w, &Request{ID: 1, Service: "other"}); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(r)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusNoService {
		t.Fatalf("status %d", resp.Status)
	}
}

func TestNodeLoadIndexTracksActiveWork(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc", Workers: 1})
	if n.LoadIndex() != 0 {
		t.Fatalf("idle load index %d", n.LoadIndex())
	}
	// Launch 3 concurrent 80 ms requests on separate connections.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, r, w := dialNode(t, n)
			if err := WriteRequest(w, &Request{ID: uint64(i), Service: "svc", ServiceUs: 80000}); err != nil {
				t.Error(err)
				return
			}
			if _, err := ReadResponse(r); err != nil {
				t.Error(err)
			}
		}()
	}
	waitUntil(t, func() bool { return n.LoadIndex() == 3 }, "all three accesses to become active")
	wg.Wait()
	// The final decrement may land just after the last response is read.
	waitUntil(t, func() bool { return n.LoadIndex() == 0 }, "load index to drain")
}

func TestNodeWorkerPoolParallelism(t *testing.T) {
	// With 2 workers, two 100 ms jobs finish in ~100 ms, not 200.
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc", Workers: 2})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, r, w := dialNode(t, n)
			if err := WriteRequest(w, &Request{ID: uint64(i), Service: "svc", ServiceUs: 100000}); err != nil {
				t.Error(err)
				return
			}
			if _, err := ReadResponse(r); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if d := time.Since(start); d > 180*time.Millisecond {
		t.Fatalf("2 workers took %v for two parallel 100ms jobs", d)
	}
}

func TestNodeOverload(t *testing.T) {
	// QueueCap 1 with one busy worker: the first request occupies the
	// worker, the second queues, the third is refused.
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc", Workers: 1, QueueCap: 1})
	_, r1, w1 := dialNode(t, n)
	if err := WriteRequest(w1, &Request{ID: 1, Service: "svc", ServiceUs: 200000}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return n.LoadIndex() == 1 && len(n.queue) == 0 },
		"the worker to pick up the first request")
	_, r2, w2 := dialNode(t, n)
	if err := WriteRequest(w2, &Request{ID: 2, Service: "svc", ServiceUs: 200000}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return n.LoadIndex() == 2 && len(n.queue) == 1 },
		"the second request to fill the queue")
	_, r3, w3 := dialNode(t, n)
	if err := WriteRequest(w3, &Request{ID: 3, Service: "svc", ServiceUs: 200000}); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(r3)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOverload {
		t.Fatalf("third request status %d, want overload", resp.Status)
	}
	if s := n.Stats(); s.Overloads != 1 {
		t.Fatalf("overloads = %d", s.Overloads)
	}
	// The first two eventually complete.
	if resp, err := ReadResponse(r1); err != nil || resp.Status != StatusOK {
		t.Fatalf("first: %+v %v", resp, err)
	}
	if resp, err := ReadResponse(r2); err != nil || resp.Status != StatusOK {
		t.Fatalf("second: %+v %v", resp, err)
	}
}

func TestNodeAnswersLoadInquiries(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc"})
	conn := dialLoad(t, n)
	if _, err := conn.Write(EncodeInquiry(nil, 77)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 64)
	m, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	seq, load, err := DecodeLoad(buf[:m])
	if err != nil || seq != 77 || load != 0 {
		t.Fatalf("load answer seq=%d load=%d err=%v", seq, load, err)
	}
}

func TestNodeLoadInquiryReflectsQueue(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc"})
	// Occupy the node with a long job.
	_, rr, w := dialNode(t, n)
	if err := WriteRequest(w, &Request{ID: 1, Service: "svc", ServiceUs: 150000}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return n.LoadIndex() == 1 }, "the long job to become active")

	conn := dialLoad(t, n)
	if _, err := conn.Write(EncodeInquiry(nil, 1)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 64)
	m, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	_, load, err := DecodeLoad(buf[:m])
	if err != nil || load != 1 {
		t.Fatalf("busy load = %d (err %v), want 1", load, err)
	}
	if _, err := ReadResponse(rr); err != nil {
		t.Fatal(err)
	}
}

func TestNodeDropInjection(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc", DropProb: 1.0})
	conn := dialLoad(t, n)
	if _, err := conn.Write(EncodeInquiry(nil, 5)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 64)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("dropped inquiry was answered")
	}
	if s := n.Stats(); s.Dropped == 0 {
		t.Fatal("drop not counted")
	}
}

func TestNodeSlowPathDelaysAnswer(t *testing.T) {
	n := startTestNode(t, NodeConfig{
		ID: 1, Service: "svc",
		SlowProb: 1.0, // always slow when busy
		SlowDist: stats.Deterministic{Value: 0.08},
	})
	// Make the node busy.
	_, rr, w := dialNode(t, n)
	if err := WriteRequest(w, &Request{ID: 1, Service: "svc", ServiceUs: 300000}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return n.LoadIndex() == 1 }, "the long job to become active")

	conn := dialLoad(t, n)
	start := time.Now()
	if _, err := conn.Write(EncodeInquiry(nil, 9)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 64)
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Fatalf("slow-path answer arrived in %v, want >= ~80ms", d)
	}
	if s := n.Stats(); s.SlowPaths == 0 {
		t.Fatal("slow path not counted")
	}
	if _, err := ReadResponse(rr); err != nil {
		t.Fatal(err)
	}
}

func TestNodePublishesSoftState(t *testing.T) {
	d := NewDirectory(time.Second)
	n := startTestNode(t, NodeConfig{
		ID: 3, Service: "svc", Directory: d, PublishInterval: 20 * time.Millisecond,
	})
	eps := d.Lookup("svc", 0)
	if len(eps) != 1 || eps[0].NodeID != 3 {
		t.Fatalf("initial publish missing: %+v", eps)
	}
	if eps[0].AccessAddr != n.AccessAddr() || eps[0].LoadAddr != n.LoadAddr() {
		t.Fatal("published addresses wrong")
	}
}

func TestNodeCloseIsIdempotentAndPrompt(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc"})
	// An idle open connection must not block Close.
	c, _, _ := dialNode(t, n)
	_ = c
	done := make(chan struct{})
	go func() {
		n.Close()
		n.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung")
	}
}

func TestSpinFor(t *testing.T) {
	start := time.Now()
	spinFor(20 * time.Millisecond)
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("spinFor returned after %v", d)
	}
}

func TestNodeSpinMode(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc", Spin: true})
	_, r, w := dialNode(t, n)
	start := time.Now()
	if err := WriteRequest(w, &Request{ID: 1, Service: "svc", ServiceUs: 10000}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResponse(r); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("spin service finished in %v", d)
	}
}

func TestSleeperLongRunRateIsAccurate(t *testing.T) {
	// 100 jobs of 2 ms must take ~200 ms despite per-sleep overshoot.
	var sl sleeper
	const n = 100
	d := 2 * time.Millisecond
	start := time.Now()
	for i := 0; i < n; i++ {
		sl.sleep(d)
	}
	total := time.Since(start)
	want := time.Duration(n) * d
	if total < want*95/100 || total > want*115/100 {
		t.Fatalf("100 x 2ms jobs took %v, want ~%v", total, want)
	}
}

func TestSleeperHandlesSubMillisecondJobs(t *testing.T) {
	// Jobs shorter than the kernel overshoot still average out.
	var sl sleeper
	const n = 200
	d := 300 * time.Microsecond
	start := time.Now()
	for i := 0; i < n; i++ {
		sl.sleep(d)
	}
	total := time.Since(start)
	want := time.Duration(n) * d
	if total < want*90/100 || total > want*130/100 {
		t.Fatalf("200 x 0.3ms jobs took %v, want ~%v", total, want)
	}
}

func TestSleeperZeroDuration(t *testing.T) {
	var sl sleeper
	start := time.Now()
	sl.sleep(0)
	sl.sleep(-time.Millisecond)
	if time.Since(start) > 5*time.Millisecond {
		t.Fatal("zero/negative sleep slept")
	}
}
