package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"finelb/internal/core"
)

// pollRound is the reusable scratch for one poll round (§3.1-3.2): the
// slot tables the fan-out writes from, the answer slots the agents'
// read loops demultiplex into, and the wait machinery that wakes the
// round owner exactly once — when the last outstanding answer lands or
// the discard deadline fires — instead of once per reply.
//
// Ownership rules (DESIGN.md §12): a round is checked out of the
// client's pool by one access goroutine, which owns every field except
// the answer slots (epIdx written before each inquiry is registered,
// then read-only). The answer slots — loads, rtts, got — are written
// by agent read loops through deliver under r.mu until the owner sets
// closed; after that the owner reads them without the lock, because
// closed is checked under the same mutex on every delivery. The
// generation counter makes recycling safe: a read loop that looked up
// a pending inquiry just before the owner cancelled it may call
// deliver after the round was reset for its next use, and the stale
// gen rejects it before any slot is touched.
type pollRound struct {
	//lint:guards gen, closed, want
	mu     sync.Mutex
	gen    uint32       // bumped on every reset; stale deliveries carry the old value
	closed bool         // set at teardown; no slot writes after this
	want   int32        // answers that complete the round; -1 while the fan-out is still sending
	got    atomic.Int32 // answers recorded so far (atomic so the owner's yield-spin reads it lock-free)

	// Answer slots, indexed by the order inquiries were sent.
	epIdx []int           // slot -> index into the round's endpoint table
	loads []int64         // slot -> answered load; -1 = unanswered
	rtts  []time.Duration // slot -> inquiry round trip, valid when loads >= 0

	// Owner-only scratch, reused across rounds via the pool.
	start     time.Time
	done      chan struct{} // buffered 1: the round's single completion wakeup
	timer     *time.Timer   // the round's single deadline, Reset per use
	sendBuf   []byte        // encode buffer for every inquiry in the round
	seqs      []uint32
	agents    []*pollAgent
	polled    []int
	swaps     []int
	responses []core.PollResponse
}

// deliver records an answer for slot. It is called by agent read loops
// and must not block; the round owner is woken at most once, when the
// answer completing the round arrives after the fan-out finished
// (want >= 0). Deliveries after teardown, for a recycled round (gen
// mismatch), or duplicated onto an answered slot are dropped — the
// gen check runs before the slot index, so a stale slot from a wider
// previous round can never index out of bounds.
//
//lint:noalloc
func (r *pollRound) deliver(gen uint32, slot int32, load uint32) {
	now := time.Now()
	r.mu.Lock()
	if r.closed || r.gen != gen || r.loads[slot] >= 0 {
		r.mu.Unlock()
		return
	}
	r.loads[slot] = int64(load)
	r.rtts[slot] = now.Sub(r.start)
	got := r.got.Add(1)
	if r.want >= 0 && got >= r.want {
		select {
		case r.done <- struct{}{}:
		default:
		}
	}
	r.mu.Unlock()
}

// arm publishes how many answers complete the round, after the fan-out
// finished assigning slots. It reports whether every answer already
// arrived during the send phase, in which case the owner skips the
// deadline wait entirely.
//
//lint:noalloc
func (r *pollRound) arm(sent int) (complete bool) {
	r.mu.Lock()
	r.want = int32(sent)
	complete = r.got.Load() >= r.want
	r.mu.Unlock()
	return complete
}

// abandon tears the round down: cancel the outstanding inquiries (so
// answers still in flight are counted late by the agents, §3.2), then
// close the slots. After abandon returns, the owner may read the
// answer slots without the lock, and any straggling deliver is
// rejected. The stale completion token, if the deadline and the last
// answer raced, is drained so the pooled round starts its next use
// with an empty channel.
//
//lint:noalloc
func (r *pollRound) abandon(sent int) {
	for i := 0; i < sent; i++ {
		r.agents[i].cancel(r.seqs[i])
	}
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	select {
	case <-r.done:
	default:
	}
}

// getRound checks a round out of the client's pool, sized for a poll
// set of d, with every answer slot reset to unanswered and a fresh
// generation so stale deliveries from its previous use bounce off.
func (c *Client) getRound(d int) *pollRound {
	r, _ := c.rounds.Get().(*pollRound)
	if r == nil {
		r = &pollRound{
			done:    make(chan struct{}, 1),
			sendBuf: make([]byte, 0, inquirySize),
		}
	} else {
		c.pollPath.EncodeReuse.Inc()
	}
	if cap(r.epIdx) < d {
		r.epIdx = make([]int, d)
		r.loads = make([]int64, d)
		r.rtts = make([]time.Duration, d)
		r.seqs = make([]uint32, d)
		r.agents = make([]*pollAgent, d)
		r.polled = make([]int, d)
		r.swaps = make([]int, d)
		r.responses = make([]core.PollResponse, 0, d)
	}
	r.epIdx = r.epIdx[:d]
	r.loads = r.loads[:d]
	r.rtts = r.rtts[:d]
	r.seqs = r.seqs[:d]
	r.agents = r.agents[:d]
	r.polled = r.polled[:d]
	r.swaps = r.swaps[:d]
	for i := range r.loads {
		r.loads[i] = -1
	}
	r.mu.Lock()
	r.gen++
	r.closed = false
	r.want = -1
	r.got.Store(0)
	r.mu.Unlock()
	return r
}

// putRound returns an abandoned round to the pool. Agent pointers are
// cleared so a pooled round does not pin agents pruned by Refresh.
//
//lint:noalloc
func (c *Client) putRound(r *pollRound) {
	for i := range r.agents {
		r.agents[i] = nil
	}
	c.rounds.Put(r)
}
