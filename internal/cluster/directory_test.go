package cluster

import (
	"testing"
	"time"
)

func ep(node int, service string, parts ...uint32) Endpoint {
	return Endpoint{
		NodeID:     node,
		Service:    service,
		Partitions: parts,
		AccessAddr: "127.0.0.1:1",
		LoadAddr:   "127.0.0.1:2",
	}
}

func TestDirectoryPublishLookup(t *testing.T) {
	d := NewDirectory(time.Minute)
	d.Publish(ep(2, "img"))
	d.Publish(ep(0, "img"))
	d.Publish(ep(1, "other"))
	got := d.Lookup("img", 0)
	if len(got) != 2 {
		t.Fatalf("lookup returned %d endpoints", len(got))
	}
	if got[0].NodeID != 0 || got[1].NodeID != 2 {
		t.Fatalf("lookup not sorted by node: %+v", got)
	}
}

func TestDirectoryPartitionFilter(t *testing.T) {
	d := NewDirectory(time.Minute)
	d.Publish(ep(0, "img", 0, 9))   // partitions 0-9 style
	d.Publish(ep(1, "img", 10, 19)) // partitions 10-19
	d.Publish(ep(2, "img"))         // hosts everything
	if got := d.Lookup("img", 9); len(got) != 2 || got[0].NodeID != 0 || got[1].NodeID != 2 {
		t.Fatalf("partition 9 lookup: %+v", got)
	}
	if got := d.Lookup("img", 10); len(got) != 2 || got[0].NodeID != 1 {
		t.Fatalf("partition 10 lookup: %+v", got)
	}
}

func TestDirectorySoftStateExpiry(t *testing.T) {
	d := NewDirectory(100 * time.Millisecond)
	now := time.Unix(0, 0)
	d.setClock(func() time.Time { return now })
	d.Publish(ep(0, "img"))
	if d.Len() != 1 {
		t.Fatalf("len = %d", d.Len())
	}
	now = now.Add(50 * time.Millisecond)
	if got := d.Lookup("img", 0); len(got) != 1 {
		t.Fatalf("entry expired early: %+v", got)
	}
	// Refresh extends the lease.
	d.Publish(ep(0, "img"))
	now = now.Add(90 * time.Millisecond)
	if got := d.Lookup("img", 0); len(got) != 1 {
		t.Fatal("refreshed entry expired")
	}
	// Without refresh, it dies.
	now = now.Add(101 * time.Millisecond)
	if got := d.Lookup("img", 0); len(got) != 0 {
		t.Fatalf("stale entry survived: %+v", got)
	}
	if d.Len() != 0 {
		t.Fatalf("len after expiry = %d", d.Len())
	}
}

func TestDirectoryRepublishOverwrites(t *testing.T) {
	d := NewDirectory(time.Minute)
	d.Publish(ep(0, "img"))
	updated := ep(0, "img")
	updated.AccessAddr = "127.0.0.1:99"
	d.Publish(updated)
	got := d.Lookup("img", 0)
	if len(got) != 1 || got[0].AccessAddr != "127.0.0.1:99" {
		t.Fatalf("republish did not overwrite: %+v", got)
	}
}

func TestDirectoryServices(t *testing.T) {
	d := NewDirectory(time.Minute)
	d.Publish(ep(0, "b"))
	d.Publish(ep(1, "a"))
	d.Publish(ep(2, "a"))
	got := d.Services()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("services = %v", got)
	}
}

func TestEndpointHasPartition(t *testing.T) {
	e := ep(0, "s", 3, 5)
	if !e.HasPartition(3) || !e.HasPartition(5) || e.HasPartition(4) {
		t.Fatal("partition membership wrong")
	}
	all := ep(0, "s")
	if !all.HasPartition(123) {
		t.Fatal("unpartitioned endpoint must host everything")
	}
}

func TestDirectoryConcurrentAccess(t *testing.T) {
	d := NewDirectory(time.Minute)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			d.Publish(ep(i%8, "img"))
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		d.Lookup("img", 0)
		d.Services()
	}
	<-done
	if d.Len() != 8 {
		t.Fatalf("len = %d, want 8", d.Len())
	}
}
