package cluster

import (
	"sync"
	"testing"
)

func startTestManager(t *testing.T, n int) (*IdealManager, *managerClient) {
	t.Helper()
	m, err := StartIdealManager(testTransport(t), n, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	mc := newManagerClient(testTransport(t), m.Addr())
	t.Cleanup(mc.close)
	return m, mc
}

func TestIdealManagerRejectsBadSize(t *testing.T) {
	if _, err := StartIdealManager(testTransport(t), 0, 1); err == nil {
		t.Fatal("manager for 0 servers accepted")
	}
	if _, err := StartIdealManager(testTransport(t), -3, 1); err == nil {
		t.Fatal("manager for -3 servers accepted")
	}
}

func TestIdealManagerReleaseClamps(t *testing.T) {
	m, mc := startTestManager(t, 2)
	// Release without acquire: count stays at zero.
	if err := mc.release(0); err != nil {
		t.Fatal(err)
	}
	if counts := m.Counts(); counts[0] != 0 {
		t.Fatalf("count went negative: %v", counts)
	}
	// Release of an out-of-range index errors.
	if err := mc.release(99); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestIdealManagerAcquirePicksShortest(t *testing.T) {
	m, mc := startTestManager(t, 3)
	got := map[uint32]int{}
	for i := 0; i < 3; i++ {
		idx, err := mc.acquire()
		if err != nil {
			t.Fatal(err)
		}
		got[idx]++
	}
	if len(got) != 3 {
		t.Fatalf("3 acquires did not cover 3 servers: %v", got)
	}
	// Fourth acquire: all counts equal 1, any server acceptable; counts
	// must show exactly one server at 2.
	if _, err := mc.acquire(); err != nil {
		t.Fatal(err)
	}
	twos := 0
	for _, v := range m.Counts() {
		if v == 2 {
			twos++
		}
	}
	if twos != 1 {
		t.Fatalf("counts after 4 acquires: %v", m.Counts())
	}
}

func TestIdealManagerAcquireAvoidsLoadedServer(t *testing.T) {
	m, mc := startTestManager(t, 2)
	// Two acquires spread across both servers: counts [1,1].
	for i := 0; i < 2; i++ {
		if _, err := mc.acquire(); err != nil {
			t.Fatal(err)
		}
	}
	// Free server 0; the next acquire must pick it, not server 1.
	if err := mc.release(0); err != nil {
		t.Fatal(err)
	}
	idx, err := mc.acquire()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("acquire picked server %d, want idle server 0 (counts %v)", idx, m.Counts())
	}
}

func TestIdealManagerConcurrentClients(t *testing.T) {
	m, _ := startTestManager(t, 4)
	const clients, rounds = 4, 25
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mc := newManagerClient(testTransport(t), m.Addr())
			defer mc.close()
			for j := 0; j < rounds; j++ {
				idx, err := mc.acquire()
				if err != nil {
					t.Error(err)
					return
				}
				if err := mc.release(idx); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Every acquire was released: all queues must be drained.
	for i, v := range m.Counts() {
		if v != 0 {
			t.Fatalf("server %d count %d after full drain", i, v)
		}
	}
}

func TestIdealManagerCloseIsIdempotent(t *testing.T) {
	m, err := StartIdealManager(testTransport(t), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// A client against a closed manager fails rather than hanging.
	mc := newManagerClient(testTransport(t), m.Addr())
	defer mc.close()
	if _, err := mc.acquire(); err == nil {
		t.Fatal("acquire against closed manager succeeded")
	}
}
