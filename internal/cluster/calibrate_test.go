package cluster

import (
	"testing"
	"time"

	"finelb/internal/workload"
)

func TestCalibrateValidation(t *testing.T) {
	if _, err := CalibrateFullLoad(CalibrationConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := CalibrateFullLoad(CalibrationConfig{
		Workload:   workload.PoissonExp(1e-3),
		TargetFrac: 1.5,
	}); err == nil {
		t.Fatal("bad TargetFrac accepted")
	}
}

func TestCalibrateFullLoadNearAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs multi-second bursts")
	}
	// With the self-correcting sleeper, the calibrated full-load point
	// must land near the analytic service rate (multiplier ~1).
	res, err := CalibrateFullLoad(CalibrationConfig{
		Workload:   workload.PoissonExp(2e-3),
		TargetFrac: 0.95,
		Within:     300 * time.Millisecond,
		Burst:      700 * time.Millisecond,
		Iterations: 4,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) != 4 {
		t.Fatalf("probes: %v", res.Probes)
	}
	if res.Multiplier < 0.6 || res.Multiplier > 1.4 {
		t.Fatalf("calibrated multiplier %v far from 1", res.Multiplier)
	}
	analytic := 1 / 2e-3
	if res.Rate < analytic*0.6 || res.Rate > analytic*1.4 {
		t.Fatalf("calibrated rate %v vs analytic %v", res.Rate, analytic)
	}
}
