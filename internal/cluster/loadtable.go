package cluster

import "sync/atomic"

// loadShards is the number of counter shards in a loadTable. Eight
// 64-byte lines cover more concurrent writers than a node has workers
// in any experiment config while keeping the reader's sum loop short.
const loadShards = 8

// loadShard is one cache-line-sized slice of the load index. Writers
// hold a shard token and touch only their own line.
type loadShard struct {
	n atomic.Int64
	_ [56]byte // pad to a 64-byte cache line so shards never share one
}

// add moves the load index by d through this writer's shard.
//
//lint:noalloc
func (s *loadShard) add(d int64) { s.n.Add(d) }

// loadTable is the node's load-index table (§3.1): the count of
// accesses accepted and not yet answered, the quantity every load
// inquiry answer reports. It is sharded across padded cache lines so
// the accept/worker path (writers, one shard each) never contends
// with the load-answer path (readers, which sum all shards) on a
// single hot line — with synchronous inquiry delivery the answer path
// runs on polling clients' goroutines, so a single shared counter
// would bounce between every client core and the accept path.
//
// A read sums the shards without a snapshot, so concurrent updates
// can make the sum transiently off by the number of in-flight
// updates; load indices are already stale by one network round trip
// by the time a client acts on them (§3.2), so this adds no new class
// of error. The sum is clamped at zero so a transient reordering can
// never be reported as a huge unsigned load.
type loadTable struct {
	shards [loadShards]loadShard
	next   atomic.Uint32
}

// assign hands a writer its shard, round-robin. Called once per
// writer goroutine (accept handler, worker) — not per request — so
// the assignment counter is never hot.
//
//lint:noalloc
func (t *loadTable) assign() *loadShard {
	return &t.shards[t.next.Add(1)%loadShards]
}

// load reads the current load index.
//
//lint:noalloc
func (t *loadTable) load() int64 {
	var sum int64
	for i := range t.shards {
		sum += t.shards[i].n.Load()
	}
	if sum < 0 {
		sum = 0
	}
	return sum
}
