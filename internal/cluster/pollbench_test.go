package cluster

import (
	"fmt"
	"testing"
	"time"

	"finelb/internal/core"
	"finelb/internal/transport"
)

// pollBenchCluster boots servers answering load inquiries instantly
// (contention model off) and a Poll(d) client over tr, returning the
// client and its endpoint table. The caller drives pollOnce directly,
// so the measured work is exactly one poll round: encode + fan-out +
// demux + decision, with no service access attached.
func pollBenchCluster(b testing.TB, tr transport.Transport, servers, d int) (*Client, []Endpoint) {
	b.Helper()
	dir := NewDirectory(time.Hour)
	for i := 0; i < servers; i++ {
		n, err := StartNode(NodeConfig{
			ID: i, Service: "svc", Directory: dir, SlowProb: -1,
			Transport: tr, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = n.Close() })
	}
	c, err := NewClient(ClientConfig{
		Directory: dir, Service: "svc",
		Policy:          core.NewPoll(d),
		PollRetries:     -1,
		QuarantineAfter: -1,
		Transport:       tr,
		Seed:            42,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = c.Close() })
	return c, c.Endpoints()
}

// benchPollRounds measures poll rounds back to back on one goroutine.
// polls/sec (inquiries resolved per second) is the figure the pollpath
// bench record tracks across commits.
func benchPollRounds(b *testing.B, tr transport.Transport, servers, d int) {
	c, eps := pollBenchCluster(b, tr, servers, d)
	info := &AccessInfo{PollRTTs: make([]time.Duration, 0, d)}
	// Prime agents, pools, and steady-state map sizes.
	for i := 0; i < 100; i++ {
		if _, ok, err := c.pollOnce(eps, info); err != nil || !ok {
			b.Fatalf("priming round failed: ok=%v err=%v", ok, err)
		}
		info.PollRTTs = info.PollRTTs[:0]
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		_, ok, err := c.pollOnce(eps, info)
		if err != nil || !ok {
			b.Fatalf("round %d failed: ok=%v err=%v", i, ok, err)
		}
		info.PollRTTs = info.PollRTTs[:0]
	}
	b.StopTimer()
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*d)/elapsed, "polls/sec")
		b.ReportMetric(float64(b.N)/elapsed, "rounds/sec")
	}
}

// BenchmarkPollRoundMem is the poll hot path on the in-memory fabric:
// no syscalls, so codec, fan-out, and demux costs dominate. This is
// the configuration the CI pollpath record gates.
func BenchmarkPollRoundMem(b *testing.B) {
	for _, cfg := range []struct{ servers, d int }{
		{8, 2}, {8, 4}, {64, 8},
	} {
		b.Run(fmt.Sprintf("s%d_d%d", cfg.servers, cfg.d), func(b *testing.B) {
			benchPollRounds(b, transport.NewMem(transport.MemConfig{Seed: 1}), cfg.servers, cfg.d)
		})
	}
}

// benchPollRoundsParallel drives concurrent poll rounds from GOMAXPROCS
// goroutines against one client, the shape the experiment driver's
// access goroutines produce under open-loop load.
func benchPollRoundsParallel(b *testing.B, tr transport.Transport, servers, d int) {
	c, eps := pollBenchCluster(b, tr, servers, d)
	info := &AccessInfo{}
	for i := 0; i < 100; i++ {
		if _, ok, err := c.pollOnce(eps, info); err != nil || !ok {
			b.Fatalf("priming round failed: ok=%v err=%v", ok, err)
		}
		info.PollRTTs = info.PollRTTs[:0]
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		local := &AccessInfo{PollRTTs: make([]time.Duration, 0, d)}
		for pb.Next() {
			if _, ok, err := c.pollOnce(eps, local); err != nil || !ok {
				b.Fatalf("parallel round failed: ok=%v err=%v", ok, err)
			}
			local.PollRTTs = local.PollRTTs[:0]
		}
	})
	b.StopTimer()
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*d)/elapsed, "polls/sec")
	}
}

// BenchmarkPollRoundMemParallel is the concurrent-throughput form of
// the mem benchmark.
func BenchmarkPollRoundMemParallel(b *testing.B) {
	for _, cfg := range []struct{ servers, d int }{
		{8, 4}, {64, 8},
	} {
		b.Run(fmt.Sprintf("s%d_d%d", cfg.servers, cfg.d), func(b *testing.B) {
			benchPollRoundsParallel(b, transport.NewMem(transport.MemConfig{Seed: 1}), cfg.servers, cfg.d)
		})
	}
}

// BenchmarkPollRoundNet is the same round over real loopback UDP
// sockets — the paper's Figure 6 conditions, syscall costs included.
func BenchmarkPollRoundNet(b *testing.B) {
	if testing.Short() {
		b.Skip("loopback sockets in -short mode")
	}
	for _, cfg := range []struct{ servers, d int }{
		{8, 4},
	} {
		b.Run(fmt.Sprintf("s%d_d%d", cfg.servers, cfg.d), func(b *testing.B) {
			benchPollRounds(b, transport.Net{}, cfg.servers, cfg.d)
		})
	}
}
