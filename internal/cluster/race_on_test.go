//go:build race

package cluster

// raceEnabled lets allocation gates skip under the race detector,
// whose instrumentation perturbs allocation accounting.
const raceEnabled = true
