package cluster

import (
	"os"
	"sync"
	"testing"
	"time"

	"finelb/internal/transport"
)

// waitUntil polls cond every millisecond until it holds, failing the
// test after a bounded deadline. It replaces bare time.Sleep
// synchronization: the test proceeds the moment the condition is
// true instead of hoping a fixed nap was long enough.
func waitUntil(t *testing.T, cond func() bool, desc string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(time.Millisecond)
	}
}

var (
	memFabricOnce sync.Once
	memFabric     *transport.Mem
)

// testTransport returns the transport the package's tests run over:
// real loopback sockets by default, or one shared in-memory fabric
// when FINELB_TEST_TRANSPORT=mem (the CI race step exercises the
// whole suite over transport.Mem this way). The fabric is shared
// across tests exactly as the OS network stack is — endpoints are
// per-address, so tests stay isolated.
func testTransport(t *testing.T) transport.Transport {
	t.Helper()
	if os.Getenv("FINELB_TEST_TRANSPORT") == "mem" {
		memFabricOnce.Do(func() {
			memFabric = transport.NewMem(transport.MemConfig{Seed: 1})
		})
		return memFabric
	}
	return transport.Net{}
}
