package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"finelb/internal/obs"
	"finelb/internal/stats"
	"finelb/internal/transport"
)

// NodeConfig configures a server node.
type NodeConfig struct {
	ID         int
	Service    string
	Partitions []uint32

	// Transport is the messaging substrate the node listens on
	// (default transport.Net, real loopback sockets).
	Transport transport.Transport

	// Workers is the service worker pool size (§3.1). Default 1, which
	// makes the node one non-preemptive processing unit as in the
	// simulation model.
	Workers int
	// QueueCap bounds the request queue; excess requests are refused
	// with StatusOverload. Default 4096.
	QueueCap int
	// Spin burns CPU for the service duration instead of sleeping,
	// matching the paper's CPU-spinning microbenchmark exactly (at the
	// cost of real CPU contention between in-process nodes).
	Spin bool

	// Handler, when non-nil, replaces the sleep/spin emulation with a
	// real service implementation: the worker invokes it for every
	// request, and its result becomes the response. This is how the
	// Neptune-style replicated services (internal/neptune) mount real
	// application logic on a node. While the handler runs it occupies
	// one worker — a non-preemptive processing unit, as in the paper's
	// model.
	Handler Handler

	// Directory, when non-nil, receives periodic soft-state publishes.
	Directory *Directory
	// RemoteDir, when non-nil, additionally receives the same publishes
	// over UDP (a DirServer in another process).
	RemoteDir       *RemoteDirectory
	PublishInterval time.Duration // default DefaultTTL / 4

	// Load-inquiry contention model (DESIGN.md "Prototype contention
	// model"): when the node has active work, an inquiry's answer is
	// delayed with probability SlowProb by a sample from SlowDist.
	SlowProb float64    // default DefaultSlowProb; negative disables
	SlowDist stats.Dist // seconds; default lognormal mean/σ 18 ms

	// DropProb silently drops incoming load inquiries with this
	// probability (failure injection; UDP loses datagrams in real
	// clusters).
	DropProb float64

	// Metrics is the run's shared obs.RunMetrics catalog (queue depth,
	// worker occupancy, inquiry counters). Nil gets a private catalog so
	// the hot paths stay branch-free; pass the run's to aggregate
	// across nodes (RunExperiment does).
	Metrics *obs.RunMetrics

	Seed uint64
}

// Contention-model defaults, calibrated against the paper's §3.2
// profile (≈8.1% of polls over 10 ms at 90% load with poll size 3).
const DefaultSlowProb = 0.15

// DefaultSlowDist returns the default scheduling-delay distribution.
func DefaultSlowDist() stats.Dist {
	return stats.LognormalFromMoments(18e-3, 18e-3)
}

// Handler is a real service implementation mounted on a node. Serve
// runs on a worker goroutine; it must be safe for concurrent use when
// the node has more than one worker.
type Handler interface {
	Serve(req *Request) (payload []byte, status uint8)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(req *Request) ([]byte, uint8)

// Serve implements Handler.
func (f HandlerFunc) Serve(req *Request) ([]byte, uint8) { return f(req) }

// NodeStats are monotonic counters exposed for experiments.
type NodeStats struct {
	Served    int64 // requests completed
	Overloads int64 // requests refused with StatusOverload
	Inquiries int64 // load inquiries answered
	Dropped   int64 // load inquiries dropped (injection)
	SlowPaths int64 // inquiries answered through the delayed path
}

// Node is a server node: TCP service access point, request queue and
// worker pool, and UDP load-index server.
type Node struct {
	cfg NodeConfig

	ln       transport.Listener
	loadConn transport.PacketConn

	load loadTable // load index: accesses accepted and not yet answered

	queue chan nodeTask
	wg    sync.WaitGroup
	done  chan struct{}
	once  sync.Once
	// gaugeDrain settles the shared gauges once after shutdown: accesses
	// still queued when a node dies take their load-index contribution
	// with them.
	gaugeDrain sync.Once

	// Pause support (fault injection): while paused the node accepts and
	// queues requests but serves nothing, answers no load inquiries, and
	// stops heartbeating — a stalled process, not a dead one.
	paused atomic.Bool
	//lint:guards unpause
	pauseMu sync.Mutex
	unpause chan struct{} // closed when not paused

	// Drain support (elastic membership): a draining node stops
	// publishing heartbeats and withdraws its directory entries, so new
	// work stops arriving, but keeps serving everything already queued
	// and everything still routed to it by stale mapping tables — the
	// graceful half of a scale-down, as opposed to Pause's stall.
	draining atomic.Bool

	//lint:guards conns
	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// Load-inquiry state shared by the synchronous handler path and the
	// read-loop fallback. inqMu serializes only the contention-model
	// rng draws across sender goroutines — never the reply write, so
	// concurrent pollers to one node don't convoy behind each other's
	// delivery chains. The read-loop fallback is a single goroutine, so
	// there it is uncontended.
	//lint:guards inqRNG
	inqMu  sync.Mutex
	inqRNG *stats.RNG

	served    atomic.Int64
	overloads atomic.Int64
	inquiries atomic.Int64
	dropped   atomic.Int64
	slowPaths atomic.Int64
}

type nodeTask struct {
	req  *Request
	conn *nodeConn
}

// nodeConn wraps one accepted connection with a write lock so worker
// goroutines can interleave responses safely.
type nodeConn struct {
	c net.Conn
	//lint:guards w
	mu sync.Mutex
	w  *bufio.Writer
}

func (nc *nodeConn) writeResponse(resp *Response) error {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return WriteResponse(nc.w, resp)
}

// StartNode binds the node's stream and datagram listeners on its
// transport and starts the accept loop, worker pool, load-index
// server, and publisher.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.Transport == nil {
		cfg.Transport = transport.Default()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("cluster: Workers = %d", cfg.Workers)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 4096
	}
	if cfg.QueueCap < 0 {
		return nil, fmt.Errorf("cluster: QueueCap = %d", cfg.QueueCap)
	}
	if cfg.SlowProb == 0 {
		cfg.SlowProb = DefaultSlowProb
	}
	if cfg.SlowProb < 0 {
		cfg.SlowProb = 0
	}
	if cfg.SlowDist == nil {
		cfg.SlowDist = DefaultSlowDist()
	}
	if cfg.PublishInterval == 0 {
		cfg.PublishInterval = DefaultTTL / 4
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRunMetrics(nil)
	}

	ln, err := cfg.Transport.Listen()
	if err != nil {
		return nil, err
	}
	loadConn, err := cfg.Transport.ListenPacket()
	if err != nil {
		_ = ln.Close()
		return nil, err
	}

	n := &Node{
		cfg:      cfg,
		ln:       ln,
		loadConn: loadConn,
		queue:    make(chan nodeTask, cfg.QueueCap),
		done:     make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
		unpause:  closedChan(),
		inqRNG:   stats.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15),
	}

	for i := 0; i < cfg.Workers; i++ {
		n.wg.Add(1)
		go n.worker()
	}
	n.wg.Add(1)
	go n.acceptLoop()
	// Inquiries arrive as synchronous handler calls when the transport
	// supports it (mem fabric); otherwise a read loop parks in ReadFrom.
	if hc, ok := loadConn.(transport.HandlerPacketConn); !ok || !hc.SetPacketHandler(n.handleInquiry) {
		n.wg.Add(1)
		go n.loadIndexLoop()
	}

	if cfg.Directory != nil || cfg.RemoteDir != nil {
		n.publish()
		n.wg.Add(1)
		go n.publishLoop()
	}
	return n, nil
}

// AccessAddr returns the stream service access address.
func (n *Node) AccessAddr() string { return n.ln.Addr() }

// Transport returns the transport the node is listening on. Anything
// that wants to reach the node (a raw test dialer, a diagnostic
// client) must dial through this, since an in-memory fabric is only
// reachable from within itself.
func (n *Node) Transport() transport.Transport { return n.cfg.Transport }

// LoadAddr returns the datagram load-index address.
func (n *Node) LoadAddr() string { return n.loadConn.LocalAddr() }

// LoadIndex returns the node's current load index: the total number of
// active service accesses (queued plus in service), the paper's load
// measure.
func (n *Node) LoadIndex() int { return int(n.load.load()) }

// Endpoint returns the node's published endpoint description.
func (n *Node) Endpoint() Endpoint {
	return Endpoint{
		NodeID:     n.cfg.ID,
		Service:    n.cfg.Service,
		Partitions: n.cfg.Partitions,
		AccessAddr: n.AccessAddr(),
		LoadAddr:   n.LoadAddr(),
	}
}

// Stats snapshots the node's counters.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Served:    n.served.Load(),
		Overloads: n.overloads.Load(),
		Inquiries: n.inquiries.Load(),
		Dropped:   n.dropped.Load(),
		SlowPaths: n.slowPaths.Load(),
	}
}

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// Pause freezes the node (fault injection): workers stop pulling work,
// load inquiries go unanswered, and heartbeats stop so the node's
// directory entries expire at the TTL. Accepted requests stay queued.
func (n *Node) Pause() {
	n.pauseMu.Lock()
	defer n.pauseMu.Unlock()
	if n.paused.Load() {
		return
	}
	n.unpause = make(chan struct{})
	n.paused.Store(true)
}

// Resume lifts a Pause: workers drain the queue, inquiries are answered
// again, and the node immediately re-publishes its endpoint so clients
// rediscover it without waiting a full publish period.
func (n *Node) Resume() {
	n.pauseMu.Lock()
	if !n.paused.Load() {
		n.pauseMu.Unlock()
		return
	}
	n.paused.Store(false)
	close(n.unpause)
	n.pauseMu.Unlock()
	if (n.cfg.Directory != nil || n.cfg.RemoteDir != nil) && !n.draining.Load() {
		n.publish()
	}
}

// Paused reports whether the node is currently paused.
func (n *Node) Paused() bool { return n.paused.Load() }

// Drain withdraws the node from routing (elastic membership): it stops
// publishing heartbeats and deletes its in-process directory entry so
// clients drop it at their next refresh, yet keeps accepting and
// serving requests — queued work and stragglers from stale mapping
// tables complete normally. Remote directories expire the entry at the
// soft-state TTL once heartbeats stop. Rejoin reverses a drain.
func (n *Node) Drain() {
	if n.draining.Swap(true) {
		return
	}
	if n.cfg.Directory != nil {
		n.cfg.Directory.Withdraw(n.cfg.ID, n.cfg.Service)
	}
}

// Rejoin lifts a Drain: the node immediately re-publishes its endpoint
// so clients rediscover it without waiting a full publish period.
func (n *Node) Rejoin() {
	if !n.draining.Swap(false) {
		return
	}
	if n.cfg.Directory != nil || n.cfg.RemoteDir != nil {
		n.publish()
	}
}

// Draining reports whether the node is currently drained.
func (n *Node) Draining() bool { return n.draining.Load() }

// pauseGate blocks while the node is paused. It returns false when the
// node shut down while waiting.
func (n *Node) pauseGate() bool {
	for n.paused.Load() {
		n.pauseMu.Lock()
		gate := n.unpause
		n.pauseMu.Unlock()
		select {
		case <-n.done:
			return false
		case <-gate:
		}
	}
	return true
}

// Close shuts the node down and waits for its goroutines to exit.
// Requests still queued at shutdown are abandoned.
func (n *Node) Close() error {
	n.once.Do(func() {
		close(n.done)
		_ = n.ln.Close()
		_ = n.loadConn.Close()
		n.connMu.Lock()
		for c := range n.conns {
			c.Close()
		}
		n.connMu.Unlock()
	})
	n.wg.Wait()
	n.gaugeDrain.Do(func() {
		n.cfg.Metrics.ServerActive.Add(-n.load.load())
	})
	return nil
}

func (n *Node) publish() {
	ep := n.Endpoint()
	if n.cfg.Directory != nil {
		n.cfg.Directory.Publish(ep)
	}
	if n.cfg.RemoteDir != nil {
		_ = n.cfg.RemoteDir.Publish(ep) // soft state: a lost datagram is refreshed next period
	}
}

func (n *Node) publishLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.PublishInterval)
	defer t.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-t.C:
			if !n.paused.Load() && !n.draining.Load() {
				n.publish()
			}
		}
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		n.wg.Add(1)
		go n.serveConn(c)
	}
}

func (n *Node) serveConn(c net.Conn) {
	defer n.wg.Done()
	n.connMu.Lock()
	n.conns[c] = struct{}{}
	n.connMu.Unlock()
	defer func() {
		n.connMu.Lock()
		delete(n.conns, c)
		n.connMu.Unlock()
		c.Close()
	}()
	// A connection accepted while Close is sweeping n.conns would be
	// missed by the sweep and block this goroutine forever; Close
	// closes done before sweeping, so re-checking here closes the gap.
	select {
	case <-n.done:
		return
	default:
	}
	nc := &nodeConn{c: c, w: bufio.NewWriter(c)}
	r := bufio.NewReader(c)
	sh := n.load.assign()
	for {
		req, err := ReadRequest(r)
		if err != nil {
			return // connection closed or protocol error
		}
		if n.cfg.Service != "" && req.Service != n.cfg.Service {
			_ = nc.writeResponse(&Response{ID: req.ID, Status: StatusNoService})
			continue
		}
		// The access becomes active the moment it is accepted; this is
		// the quantity the load-index server reports.
		sh.add(1)
		n.cfg.Metrics.ServerActive.Add(1)
		select {
		case n.queue <- nodeTask{req: req, conn: nc}:
		default:
			sh.add(-1)
			n.cfg.Metrics.ServerActive.Add(-1)
			n.overloads.Add(1)
			n.cfg.Metrics.ServerOverloads.Inc()
			_ = nc.writeResponse(&Response{ID: req.ID, Status: StatusOverload})
		}
	}
}

func (n *Node) worker() {
	defer n.wg.Done()
	var sl sleeper
	sh := n.load.assign()
	for {
		select {
		case <-n.done:
			return
		case task := <-n.queue:
			if !n.pauseGate() {
				return
			}
			n.cfg.Metrics.WorkersBusy.Add(1)
			payload := task.req.Payload // echo, like the paper's translation services
			status := uint8(StatusOK)
			if n.cfg.Handler != nil {
				payload, status = n.cfg.Handler.Serve(task.req)
			} else {
				d := time.Duration(task.req.ServiceUs) * time.Microsecond
				if n.cfg.Spin {
					spinFor(d)
				} else if d > 0 {
					sl.sleep(d)
				}
			}
			load := uint32(n.load.load())
			sh.add(-1)
			n.served.Add(1)
			n.cfg.Metrics.ServerActive.Add(-1)
			n.cfg.Metrics.ServerServed.Inc()
			n.cfg.Metrics.WorkersBusy.Add(-1)
			_ = task.conn.writeResponse(&Response{
				ID:      task.req.ID,
				Status:  status,
				Load:    load,
				Payload: payload,
			})
		}
	}
}

// sleeper emulates CPU work of a requested duration with time.Sleep
// while compensating for the kernel's wakeup overshoot (hundreds of
// microseconds per sleep on a busy box), which would otherwise inflate
// every service time and silently push a 90%-load experiment into
// saturation.
//
// It keeps two correction terms per worker:
//
//   - debt: signed accumulated difference between time actually slept
//     and time requested. Overshoot from one job shortens the next, so
//     the *long-run* service rate — the quantity that sets the server's
//     utilization — is exact even though individual jobs carry a few
//     hundred microseconds of noise.
//   - slack: an EWMA estimate of the per-sleep overshoot, subtracted
//     up front so per-job noise stays small.
//
// This plays the role of the paper's empirical load calibration (§4).
type sleeper struct {
	debt  time.Duration // slept-minus-requested carryover (+ = overshot)
	slack time.Duration // EWMA of per-sleep overshoot
}

func (s *sleeper) sleep(d time.Duration) {
	needed := d - s.debt
	if needed <= 0 {
		// Previous overshoot already covered this job.
		s.debt = -needed
		return
	}
	target := needed - s.slack
	if target < 0 {
		target = 0
	}
	start := time.Now()
	if target > 0 {
		time.Sleep(target)
	}
	actual := time.Since(start)
	s.debt = actual - needed
	if over := actual - target; over > 0 {
		s.slack += (over - s.slack) / 8
	}
}

// spinFor burns CPU until d has elapsed, yielding occasionally so the
// scheduler can run other goroutines on the same thread.
func spinFor(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			_ = i * i
		}
		runtime.Gosched()
	}
}

// handleInquiry answers one UDP load inquiry (§3.1): the server side
// of the random polling policy. It runs either synchronously on the
// inquiring client's goroutine (HandlerPacketConn transports) or on
// loadIndexLoop's goroutine. Answers pass through the contention model
// described in DESIGN.md: a busy node occasionally answers slowly, the
// way the paper's busy Linux nodes took >10 ms to answer a 290 µs
// round-trip inquiry. The fast-path reply is encoded into a pooled
// buffer and written after inqMu is released: on the synchronous path
// the whole client-side demux chain runs inside WriteTo, and holding
// the node's mutex across it would serialize every concurrent poller
// of this node behind one delivery.
//
//lint:noalloc
func (n *Node) handleInquiry(p []byte, from string) {
	seq, err := DecodeInquiry(p)
	if err != nil {
		return // ignore malformed datagrams
	}
	select {
	case <-n.done:
		return // shut down; a real socket would already be closed
	default:
	}
	if n.paused.Load() {
		// A stalled process answers nothing; the client's discard
		// deadline (and quarantine) handles the silence.
		n.dropped.Add(1)
		n.cfg.Metrics.InquiriesDropped.Inc()
		return
	}
	n.inqMu.Lock()
	if n.cfg.DropProb > 0 && n.inqRNG.Float64() < n.cfg.DropProb {
		n.inqMu.Unlock()
		n.dropped.Add(1)
		n.cfg.Metrics.InquiriesDropped.Inc()
		return
	}
	n.inquiries.Add(1)
	n.cfg.Metrics.InquiriesServed.Inc()
	if n.load.load() > 0 && n.cfg.SlowProb > 0 && n.inqRNG.Float64() < n.cfg.SlowProb {
		// Slow path: scheduling interference on a busy node.
		n.slowPaths.Add(1)
		n.cfg.Metrics.SlowAnswers.Inc()
		delay := time.Duration(n.cfg.SlowDist.Sample(n.inqRNG) * float64(time.Second))
		n.inqMu.Unlock()
		//lint:allow noalloc the slow path is rare by construction (SlowProb); its timer closure is the contention model, not the hot path
		time.AfterFunc(delay, func() {
			select {
			case <-n.done:
				return
			default:
			}
			reply := EncodeLoad(make([]byte, 0, loadSize), seq, uint32(n.load.load()))
			_, _ = n.loadConn.WriteTo(reply, from)
		})
		return
	}
	load := uint32(n.load.load())
	n.inqMu.Unlock()
	// The buffer is pooled, not per-node: WriteTo's contract is that
	// the payload is consumed before it returns (DESIGN.md §12), so the
	// buffer can be recycled immediately, and concurrent inquiries each
	// hold their own.
	bp := loadBufPool.Get().(*[]byte)
	*bp = EncodeLoad((*bp)[:0], seq, load)
	_, _ = n.loadConn.WriteTo(*bp, from)
	loadBufPool.Put(bp)
}

// loadBufPool recycles load-answer datagram buffers across the
// fast-path replies of every node in the process.
var loadBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, loadSize)
	return &b
}}

// loadIndexLoop is the read-loop fallback for transports without
// synchronous handler delivery (real sockets): it parks in ReadFrom
// and feeds each inquiry to handleInquiry.
func (n *Node) loadIndexLoop() {
	defer n.wg.Done()
	buf := make([]byte, 64)
	for {
		m, from, err := n.loadConn.ReadFrom(buf)
		if err != nil {
			return // socket closed
		}
		n.handleInquiry(buf[:m], from)
	}
}
