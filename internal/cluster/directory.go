package cluster

import (
	"sort"
	"sync"
	"time"
)

// Endpoint describes one published service instance: which node offers
// which service partitions, and where its access point and load-index
// server listen.
type Endpoint struct {
	NodeID     int
	Service    string
	Partitions []uint32
	AccessAddr string // TCP service access point
	LoadAddr   string // UDP load-index server
}

// HasPartition reports whether the endpoint hosts the given partition.
// An endpoint with no explicit partitions hosts every partition
// (an unpartitioned, fully replicated service).
func (e Endpoint) HasPartition(p uint32) bool {
	if len(e.Partitions) == 0 {
		return true
	}
	for _, q := range e.Partitions {
		if q == p {
			return true
		}
	}
	return false
}

// Directory is the service availability subsystem (§3.1): a well-known
// publish/subscribe channel holding soft state. Each server node
// repeatedly publishes its service type, data partitions, and access
// interface; published information expires unless refreshed, so node
// failures remove their entries without explicit deregistration.
//
// Directory is safe for concurrent use.
type Directory struct {
	ttl time.Duration
	now func() time.Time

	mu      sync.Mutex
	entries map[dirKey]dirEntry
}

type dirKey struct {
	nodeID  int
	service string
}

type dirEntry struct {
	ep      Endpoint
	expires time.Time
}

// DefaultTTL is the soft-state lifetime of a published entry. Nodes
// republish at a fraction of this.
const DefaultTTL = 2 * time.Second

// NewDirectory returns a directory whose entries live for ttl after
// each publish (DefaultTTL when ttl == 0).
func NewDirectory(ttl time.Duration) *Directory {
	if ttl == 0 {
		ttl = DefaultTTL
	}
	return &Directory{
		ttl:     ttl,
		now:     time.Now,
		entries: make(map[dirKey]dirEntry),
	}
}

// setClock injects a fake clock for tests.
func (d *Directory) setClock(now func() time.Time) { d.now = now }

// Publish records (or refreshes) an endpoint. The entry stays alive for
// one TTL.
func (d *Directory) Publish(ep Endpoint) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries[dirKey{ep.NodeID, ep.Service}] = dirEntry{
		ep:      ep,
		expires: d.now().Add(d.ttl),
	}
}

// Withdraw removes a node's entry for a service immediately, without
// waiting for soft-state expiry. A draining node withdraws itself so
// clients stop routing to it at their next refresh instead of one TTL
// later; publishing again re-registers it.
func (d *Directory) Withdraw(nodeID int, service string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.entries, dirKey{nodeID, service})
}

// Lookup returns the live endpoints offering the service and partition,
// sorted by node id for stable ordering. Expired entries are pruned.
func (d *Directory) Lookup(service string, partition uint32) []Endpoint {
	return d.LookupAppend(nil, service, partition)
}

// LookupAppend is Lookup appending into out, so a caller serving a
// query stream (DirServer) can reuse one backing array across queries.
func (d *Directory) LookupAppend(out []Endpoint, service string, partition uint32) []Endpoint {
	base := len(out)
	now := d.now()
	d.mu.Lock()
	for k, e := range d.entries {
		if now.After(e.expires) {
			delete(d.entries, k)
			continue
		}
		if e.ep.Service == service && e.ep.HasPartition(partition) {
			out = append(out, e.ep)
		}
	}
	d.mu.Unlock()
	added := out[base:]
	sort.Slice(added, func(i, j int) bool { return added[i].NodeID < added[j].NodeID })
	return out
}

// Services returns the names of all live services, sorted.
func (d *Directory) Services() []string {
	now := d.now()
	d.mu.Lock()
	seen := make(map[string]bool)
	for k, e := range d.entries {
		if now.After(e.expires) {
			delete(d.entries, k)
			continue
		}
		seen[e.ep.Service] = true
	}
	d.mu.Unlock()
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live entries.
func (d *Directory) Len() int {
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for k, e := range d.entries {
		if now.After(e.expires) {
			delete(d.entries, k)
			continue
		}
		n++
	}
	return n
}
