package cluster

import (
	"testing"
	"time"
)

func TestConnPoolReusesConnections(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc"})
	p := newConnPool(testTransport(t), n.AccessAddr())
	defer p.closeAll()

	pc1, err := p.get()
	if err != nil {
		t.Fatal(err)
	}
	p.put(pc1)
	pc2, err := p.get()
	if err != nil {
		t.Fatal(err)
	}
	if pc1 != pc2 {
		t.Fatal("pool did not reuse the idle connection")
	}
	p.put(pc2)
}

func TestConnPoolDiscardReleasesSlot(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc"})
	p := newConnPool(testTransport(t), n.AccessAddr())
	defer p.closeAll()

	// Churn through more connections than the cap; discarding each must
	// release its slot or this loop would block at maxConnsPerDest.
	for i := 0; i < maxConnsPerDest+10; i++ {
		pc, err := p.get()
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		p.discard(pc)
	}
}

func TestConnPoolBoundsConcurrentConnections(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc"})
	p := newConnPool(testTransport(t), n.AccessAddr())
	p.dialTimeout = 200 * time.Millisecond
	defer p.closeAll()

	// Exhaust every slot without returning any.
	held := make([]*pconn, 0, maxConnsPerDest)
	for i := 0; i < maxConnsPerDest; i++ {
		pc, err := p.get()
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		held = append(held, pc)
	}
	// The next get must time out rather than dial an unbounded socket.
	if _, err := p.get(); err == nil {
		t.Fatal("get beyond the connection cap succeeded")
	}
	// Returning one connection unblocks the pool.
	p.put(held[0])
	pc, err := p.get()
	if err != nil {
		t.Fatalf("get after put: %v", err)
	}
	p.put(pc)
	for _, pc := range held[1:] {
		p.put(pc)
	}
}

func TestConnPoolGetAfterClose(t *testing.T) {
	n := startTestNode(t, NodeConfig{ID: 1, Service: "svc"})
	p := newConnPool(testTransport(t), n.AccessAddr())
	p.closeAll()
	if _, err := p.get(); err == nil {
		t.Fatal("get on closed pool succeeded")
	}
}
