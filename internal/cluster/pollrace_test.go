package cluster

import (
	"sync"
	"testing"
	"time"

	"finelb/internal/core"
	"finelb/internal/obs"
	"finelb/internal/transport"
)

// TestLoadTableFanoutRace hammers the poll hot path's shared state
// from every direction at once — accesses mutating the sharded load
// table, poll rounds answering inquiries synchronously on the
// accessors' own goroutines, drain/rejoin cycling membership (which
// also exercises Refresh's agent/pool pruning), and raw load-index
// reads — and relies on -race to catch any unsynchronized access. The
// assertions are deliberately weak; the scheduler interleaving is the
// test.
func TestLoadTableFanoutRace(t *testing.T) {
	tr := transport.NewMem(transport.MemConfig{Seed: 3})
	dir := NewDirectory(time.Hour)
	nodes := make([]*Node, 4)
	for i := range nodes {
		n, err := StartNode(NodeConfig{
			ID: i, Service: "svc", Directory: dir, SlowProb: -1,
			Transport: tr, Seed: uint64(i + 1), Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		t.Cleanup(func() { _ = n.Close() })
	}
	c, err := NewClient(ClientConfig{
		Directory: dir, Service: "svc",
		Policy:          core.NewPoll(2),
		PollRetries:     -1,
		QuarantineAfter: -1,
		RefreshInterval: time.Millisecond,
		Transport:       tr,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })

	var accessors, togglers sync.WaitGroup
	stop := make(chan struct{})
	// Accessors: each access is a poll round (load-table reads, answer
	// deliveries) plus a service round trip (load-table writes).
	for g := 0; g < 4; g++ {
		accessors.Add(1)
		go func() {
			defer accessors.Done()
			for i := 0; i < 300; i++ {
				_, _ = c.Access(10, nil) // errors fine: drain may empty the table briefly
			}
		}()
	}
	// Drain toggler: membership churn against in-flight rounds, which
	// also drives Refresh's agent/pool pruning.
	togglers.Add(1)
	go func() {
		defer togglers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			n := nodes[i%len(nodes)]
			n.Drain()
			n.Rejoin()
		}
	}()
	// Load-index readers: the sharded sum racing its writers.
	togglers.Add(1)
	go func() {
		defer togglers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if nodes[i%len(nodes)].LoadIndex() < 0 {
				t.Error("load index went negative")
				return
			}
		}
	}()

	accessors.Wait()
	close(stop)
	togglers.Wait()
}

// TestMemFanoutDeterministic pins the batched fan-out to the same
// RNG/seq stream as the historical per-peer path: two runs of the same
// seeded workload on fresh mem fabrics must pick the same server
// sequence and freeze byte-identical deterministic metric digests.
// (stats.TestChooseIdentityMatchesChoose pins the draw-level
// equivalence; this is the cluster-level, digest-level statement.)
func TestMemFanoutDeterministic(t *testing.T) {
	run := func() ([]int, string) {
		tr := transport.NewMem(transport.MemConfig{Seed: 1})
		reg := obs.NewRegistry()
		m := obs.NewRunMetrics(reg)
		dir := NewDirectory(time.Hour)
		var nodes []*Node
		for i := 0; i < 8; i++ {
			n, err := StartNode(NodeConfig{
				ID: i, Service: "svc", Directory: dir, SlowProb: -1,
				Transport: tr, Seed: uint64(i + 1), Metrics: m,
			})
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, n)
		}
		c, err := NewClient(ClientConfig{
			Directory: dir, Service: "svc",
			Policy:          core.NewPoll(3),
			PollRetries:     -1,
			QuarantineAfter: -1,
			Transport:       tr,
			Metrics:         m,
			Seed:            42,
		})
		if err != nil {
			t.Fatal(err)
		}
		picks := make([]int, 0, 400)
		for i := 0; i < 400; i++ {
			info, err := c.Access(0, nil)
			if err != nil {
				t.Fatalf("access %d: %v", i, err)
			}
			picks = append(picks, info.Server)
		}
		_ = c.Close()
		for _, n := range nodes {
			_ = n.Close()
		}
		return picks, reg.Snapshot().DeterministicDigest()
	}

	picks1, digest1 := run()
	picks2, digest2 := run()
	if digest1 != digest2 {
		t.Errorf("identical seeded runs froze different metric digests:\n%s\nvs\n%s", digest1, digest2)
	}
	for i := range picks1 {
		if picks1[i] != picks2[i] {
			t.Fatalf("pick sequence diverged at access %d: %d vs %d", i, picks1[i], picks2[i])
		}
	}
}

// TestRefreshPruneGrace pins the FD-audit pruning contract: a server
// missing from one refresh keeps its sockets (a starved republish must
// not tear down live agents), while one absent past pruneGrace loses
// its poll agent and conn pool and folds its late count into the
// monotone LateAnswers total.
func TestRefreshPruneGrace(t *testing.T) {
	tr := transport.NewMem(transport.MemConfig{Seed: 9})
	dir := NewDirectory(time.Hour)
	var nodes []*Node
	for i := 0; i < 2; i++ {
		n, err := StartNode(NodeConfig{
			ID: i, Service: "svc", Directory: dir, SlowProb: -1,
			Transport: tr, Seed: uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		t.Cleanup(func() { _ = n.Close() })
	}
	c, err := NewClient(ClientConfig{
		Directory: dir, Service: "svc",
		Policy:          core.NewPoll(2),
		PollRetries:     -1,
		QuarantineAfter: -1,
		Transport:       tr,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if _, err := c.Access(0, nil); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	agents := len(c.agents)
	c.mu.Unlock()
	if agents != 2 {
		t.Fatalf("agents after first access: %d, want 2", agents)
	}

	dir.Withdraw(0, "svc")
	c.Refresh() // first miss: marked absent, sockets survive
	c.mu.Lock()
	agents, marks := len(c.agents), len(c.absentSince)
	c.mu.Unlock()
	if agents != 2 {
		t.Fatalf("agents pruned on first missed refresh: %d, want 2", agents)
	}
	if marks == 0 {
		t.Fatal("missing endpoint not marked absent")
	}

	// A republish inside the grace clears the mark.
	dir.Publish(Endpoint{NodeID: 0, Service: "svc",
		AccessAddr: nodes[0].AccessAddr(), LoadAddr: nodes[0].LoadAddr()})
	c.Refresh()
	c.mu.Lock()
	marks = len(c.absentSince)
	c.mu.Unlock()
	if marks != 0 {
		t.Fatalf("absence marks survived a republish: %d, want 0", marks)
	}

	// Gone for good: backdate the mark past the grace and refresh.
	dir.Withdraw(0, "svc")
	c.Refresh()
	c.mu.Lock()
	for addr, first := range c.absentSince {
		c.absentSince[addr] = first.Add(-pruneGrace - time.Second)
	}
	c.mu.Unlock()
	c.Refresh()
	c.mu.Lock()
	agents = len(c.agents)
	_, agent0 := c.agents[nodes[0].LoadAddr()]
	_, pool0 := c.pools[nodes[0].AccessAddr()]
	c.mu.Unlock()
	if agents != 1 || agent0 || pool0 {
		t.Fatalf("after grace expiry: %d agents (node0 agent held: %v, node0 pool held: %v), want only node 1's",
			agents, agent0, pool0)
	}
}
