package cluster

import (
	"strings"
	"testing"
	"time"

	"finelb/internal/core"
	"finelb/internal/faults"
	"finelb/internal/membership"
)

func TestDirectoryWithdraw(t *testing.T) {
	d := NewDirectory(0)
	d.Publish(Endpoint{NodeID: 1, Service: "svc", AccessAddr: "a", LoadAddr: "l"})
	d.Publish(Endpoint{NodeID: 2, Service: "svc", AccessAddr: "b", LoadAddr: "m"})
	d.Withdraw(1, "svc")
	eps := d.Lookup("svc", 0)
	if len(eps) != 1 || eps[0].NodeID != 2 {
		t.Fatalf("after withdraw: %v", eps)
	}
	// Withdrawing an absent entry is a no-op.
	d.Withdraw(7, "svc")
	if d.Len() != 1 {
		t.Fatalf("len %d after no-op withdraw", d.Len())
	}
	// Publishing again re-registers.
	d.Publish(Endpoint{NodeID: 1, Service: "svc", AccessAddr: "a", LoadAddr: "l"})
	if d.Len() != 2 {
		t.Fatalf("len %d after re-publish", d.Len())
	}
}

func TestNodeDrainRejoin(t *testing.T) {
	dir := NewDirectory(0)
	n, err := StartNode(NodeConfig{
		ID: 3, Service: "svc", Transport: testTransport(t),
		Directory: dir, SlowProb: -1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if len(dir.Lookup("svc", 0)) != 1 {
		t.Fatal("node did not publish")
	}
	n.Drain()
	if !n.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if len(dir.Lookup("svc", 0)) != 0 {
		t.Fatal("drain did not withdraw the directory entry")
	}
	n.Drain() // idempotent
	// A drained node still serves and still answers load inquiries: the
	// request path is untouched.
	caller := NewCaller(n.Transport(), 0)
	defer caller.Close()
	if _, err := caller.Call(n.Endpoint(), "svc", 0, 0, []byte("x")); err != nil {
		t.Fatalf("drained node refused a request: %v", err)
	}
	n.Rejoin()
	if n.Draining() {
		t.Fatal("Draining() true after Rejoin")
	}
	if len(dir.Lookup("svc", 0)) != 1 {
		t.Fatal("rejoin did not re-publish")
	}
}

func TestIdealManagerElasticPool(t *testing.T) {
	m, err := StartIdealManager(testTransport(t), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.EnsureServers(4)
	if got := len(m.Counts()); got != 4 {
		t.Fatalf("counts len %d after EnsureServers(4)", got)
	}
	// New slots are inactive until re-registration: acquire only assigns
	// the original two.
	for i := 0; i < 20; i++ {
		if idx := m.acquire(); idx > 1 {
			t.Fatalf("acquire assigned inactive server %d", idx)
		}
	}
	m.SetActive(2, true)
	seen := false
	for i := 0; i < 40 && !seen; i++ {
		seen = m.acquire() == 2
	}
	if !seen {
		t.Fatal("activated server 2 never assigned (it has the lowest count)")
	}
	// Deactivating a server stops assignments but keeps its count.
	m.SetActive(0, false)
	before := m.Counts()[0]
	for i := 0; i < 20; i++ {
		if idx := m.acquire(); idx == 0 {
			t.Fatal("acquire assigned deactivated server 0")
		}
	}
	if m.Counts()[0] != before {
		t.Fatalf("deactivated count moved: %d -> %d", before, m.Counts()[0])
	}
	if !m.release(0) {
		t.Fatal("release of deactivated server refused")
	}
	// With everything deactivated, acquire falls back to the full set
	// rather than fail the access.
	for i := 0; i < 4; i++ {
		m.SetActive(i, false)
	}
	_ = m.acquire()
}

func TestClusterJoinDrainLeave(t *testing.T) {
	cl, err := StartCluster(ExperimentConfig{
		Servers: 2, Clients: 1,
		Policy:    core.NewRandom(),
		Transport: testTransport(t),
		Workload:  fastWorkload(2, 0.3),
		SlowProb:  -1, Seed: 9,
		Membership: &membership.Schedule{Events: []membership.Event{{At: time.Hour, Node: 2, Kind: membership.Join}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if cl.Pool() != 2 {
		t.Fatalf("initial pool %d", cl.Pool())
	}
	if !cl.Join(2) {
		t.Fatal("Join(2) refused")
	}
	if cl.Join(2) {
		t.Fatal("Join(2) twice applied twice")
	}
	if cl.Pool() != 3 || cl.Nodes[2] == nil {
		t.Fatalf("pool %d after join, node %v", cl.Pool(), cl.Nodes[2])
	}
	waitUntil(t, func() bool { return cl.Dir.Len() == 3 }, "joined node in directory")

	if !cl.Drain(2) {
		t.Fatal("Drain(2) refused")
	}
	if cl.Drain(2) {
		t.Fatal("Drain(2) twice applied twice")
	}
	if !cl.Nodes[2].Draining() || cl.Pool() != 2 {
		t.Fatalf("drain state wrong: draining=%v pool=%d", cl.Nodes[2].Draining(), cl.Pool())
	}
	if !cl.Leave(2) {
		t.Fatal("Leave(2) refused")
	}

	// A rejoin after leave restores the same node process.
	if !cl.Join(2) {
		t.Fatal("re-Join(2) refused")
	}
	if cl.Nodes[2].Draining() {
		t.Fatal("rejoined node still draining")
	}

	// The last routable member never drains.
	if !cl.Drain(2) || !cl.Drain(1) {
		t.Fatal("shrinking to one refused")
	}
	if cl.Drain(0) {
		t.Fatal("last member drained")
	}
	if cl.Leave(0) {
		t.Fatal("last member left")
	}

	joins, drains, leaves, finalPool, peakPool := cl.ChurnStats()
	if joins != 2 || drains != 3 || leaves != 1 || finalPool != 1 || peakPool != 3 {
		t.Fatalf("churn stats: joins=%d drains=%d leaves=%d final=%d peak=%d",
			joins, drains, leaves, finalPool, peakPool)
	}
}

func TestRunExperimentMembershipJoin(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Servers: 2, Clients: 2,
		Workload:  fastWorkload(2, 0.5),
		Policy:    core.NewRandom(),
		Transport: testTransport(t),
		Accesses:  1500, Seed: 21,
		SlowProb: -1,
		DirTTL:   400 * time.Millisecond, // fast refresh so clients see the join quickly
		Membership: &membership.Schedule{Events: []membership.Event{
			{At: 200 * time.Millisecond, Node: 2, Kind: membership.Join},
			{At: 200 * time.Millisecond, Node: 3, Kind: membership.Join},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	if res.Joins != 2 || res.FinalPool != 4 || res.PeakPool != 4 {
		t.Fatalf("joins=%d final=%d peak=%d", res.Joins, res.FinalPool, res.PeakPool)
	}
	if len(res.PerServer) != 4 {
		t.Fatalf("PerServer sized %d", len(res.PerServer))
	}
	if res.PerServer[2] == 0 || res.PerServer[3] == 0 {
		t.Fatalf("joined servers served nothing: %v", res.PerServer)
	}
	// Elastic runs register the membership metric catalog.
	found := false
	for _, mv := range res.Metrics.Metrics {
		if mv.Name == "membership_joins_total" {
			found = mv.Value == 2
		}
	}
	if !found {
		t.Fatal("membership_joins_total missing or wrong in elastic snapshot")
	}
}

func TestRunExperimentMembershipDrain(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Servers: 3, Clients: 2,
		Workload:  fastWorkload(3, 0.5),
		Policy:    core.NewRoundRobin(),
		Transport: testTransport(t),
		Accesses:  1500, Seed: 22,
		SlowProb: -1,
		DirTTL:   400 * time.Millisecond,
		Membership: &membership.Schedule{Events: []membership.Event{
			{At: 100 * time.Millisecond, Node: 2, Kind: membership.Drain},
			{At: 600 * time.Millisecond, Node: 2, Kind: membership.Leave},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Graceful drain: everything routed to the node before (or right
	// around) the drain still completes.
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	if res.Drains != 1 || res.Leaves != 1 || res.FinalPool != 2 {
		t.Fatalf("drains=%d leaves=%d final=%d", res.Drains, res.Leaves, res.FinalPool)
	}
	// The drained server got only the pre-drain share.
	total := res.PerServer[0] + res.PerServer[1] + res.PerServer[2]
	if total != 1500 {
		t.Fatalf("per-server sum %d", total)
	}
	if res.PerServer[2] >= res.PerServer[0]/2 {
		t.Fatalf("drained server kept serving a full share: %v", res.PerServer)
	}
}

func TestRunExperimentIdealElastic(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Servers: 2, Clients: 2,
		Workload:  fastWorkload(2, 0.5),
		Policy:    core.NewIdeal(),
		Transport: testTransport(t),
		Accesses:  1200, Seed: 23,
		SlowProb: -1,
		DirTTL:   400 * time.Millisecond,
		Membership: &membership.Schedule{Events: []membership.Event{
			{At: 150 * time.Millisecond, Node: 2, Kind: membership.Join},
			{At: 700 * time.Millisecond, Node: 0, Kind: membership.Drain},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	if res.Joins != 1 || res.Drains != 1 || res.FinalPool != 2 {
		t.Fatalf("joins=%d drains=%d final=%d", res.Joins, res.Drains, res.FinalPool)
	}
	// The manager re-registration must have routed real work to the
	// joined node.
	if res.PerServer[2] == 0 {
		t.Fatalf("manager never assigned the joined server: %v", res.PerServer)
	}
}

func TestRunExperimentAutoscaler(t *testing.T) {
	if testing.Short() {
		t.Skip("autoscaler run needs a couple of wall-clock seconds")
	}
	res, err := RunExperiment(ExperimentConfig{
		Servers: 2, Clients: 2,
		Workload:  fastWorkload(2, 0.9),
		Policy:    core.NewPoll(2),
		Transport: testTransport(t),
		Accesses:  3000, Seed: 24,
		SlowProb: -1,
		DirTTL:   400 * time.Millisecond,
		Autoscaler: &membership.AutoscalerConfig{
			Min: 2, Max: 5,
			ScaleUpAt: 1.5, ScaleDownAt: 0.2,
			ScaleUpCooldown: 100 * time.Millisecond, ScaleDownCooldown: time.Hour,
			Interval: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	// At 90% load on two servers the mean load index sits well above the
	// 1.5 threshold, so the pool must have grown (the exact trajectory
	// is wall-clock shaped; only the direction is asserted).
	if res.Joins == 0 || res.PeakPool <= 2 {
		t.Fatalf("autoscaler never grew the pool: joins=%d peak=%d", res.Joins, res.PeakPool)
	}
	if res.PeakPool > 5 {
		t.Fatalf("peak pool %d above max", res.PeakPool)
	}
}

func TestStartClusterElasticValidation(t *testing.T) {
	base := ExperimentConfig{
		Servers: 2, Clients: 1,
		Workload: fastWorkload(2, 0.3),
		Policy:   core.NewRandom(),
	}
	cases := []struct {
		name string
		mod  func(*ExperimentConfig)
		want string
	}{
		{"bad event", func(c *ExperimentConfig) {
			c.Membership = &membership.Schedule{Events: []membership.Event{{At: -time.Second, Node: 0, Kind: membership.Join}}}
		}, "negative offset"},
		{"autoscaler max below servers", func(c *ExperimentConfig) {
			c.Autoscaler = &membership.AutoscalerConfig{Min: 1, Max: 1}
		}, "below initial"},
		{"membership with faults", func(c *ExperimentConfig) {
			c.Membership = &membership.Schedule{Events: []membership.Event{{At: time.Second, Node: 0, Kind: membership.Drain}}}
			c.Faults = &faults.Schedule{Events: []faults.NodeEvent{{At: time.Second, Node: 0, Kind: faults.Crash}}}
		}, "cannot combine"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mod(&cfg)
		_, err := RunExperiment(cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}
