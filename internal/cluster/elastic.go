// elastic.go is the prototype half of the elastic-membership seam
// (internal/membership): real nodes joining, draining, and leaving a
// running cluster. Join starts a fresh Node (or re-publishes a drained
// one) and re-registers it with the Ideal manager; Drain withdraws a
// node from the directory and deactivates it at the manager while it
// keeps serving its queue; Leave retires a drained node's bookkeeping
// (its process stays up until teardown so residual work always
// completes — killing a node mid-queue is what faults.Crash is for).
// The autoscaler samples the routable pool's load index on the scaled
// wall clock and applies the same policy the simulator replays on its
// event clock.

package cluster

import (
	"time"

	"finelb/internal/membership"
)

// Pool returns the current routable pool size.
func (cl *Cluster) Pool() int {
	cl.churnMu.Lock()
	defer cl.churnMu.Unlock()
	return cl.pool
}

// ChurnStats snapshots the cluster's membership counters: pool
// transitions applied, the routable pool at the end, and its peak.
func (cl *Cluster) ChurnStats() (joins, drains, leaves int64, finalPool, peakPool int) {
	cl.churnMu.Lock()
	defer cl.churnMu.Unlock()
	return cl.joins, cl.drains, cl.leaves, cl.pool, cl.peakPool
}

// ensureSlot grows the membership bookkeeping (and the public Nodes
// slice, with nil placeholders) to hold node id. Callers hold churnMu.
func (cl *Cluster) ensureSlot(id int) {
	for len(cl.routable) <= id {
		cl.routable = append(cl.routable, false)
		cl.left = append(cl.left, false)
		cl.retiring = append(cl.retiring, false)
	}
	for len(cl.Nodes) <= id {
		cl.Nodes = append(cl.Nodes, nil)
	}
}

// Join makes node id routable: an id the cluster has never seen gets a
// fresh Node started from the cluster's template, a drained or retired
// one re-publishes with whatever queue it still holds. The Ideal
// manager's view grows and the id reactivates, so acquire can assign
// it again. Returns whether the pool changed.
func (cl *Cluster) Join(id int) bool {
	if id < 0 {
		return false
	}
	cl.churnMu.Lock()
	defer cl.churnMu.Unlock()
	cl.ensureSlot(id)
	if cl.routable[id] {
		return false
	}
	if cl.Nodes[id] == nil {
		if cl.newNode == nil {
			return false // cluster predates elastic support (tests building Cluster by hand)
		}
		n, err := StartNode(cl.newNode(id))
		if err != nil {
			return false
		}
		cl.Nodes[id] = n
	} else {
		cl.Nodes[id].Rejoin()
	}
	cl.routable[id] = true
	cl.left[id] = false
	cl.retiring[id] = false
	cl.pool++
	if cl.pool > cl.peakPool {
		cl.peakPool = cl.pool
	}
	cl.joins++
	if cl.Manager != nil {
		cl.Manager.EnsureServers(id + 1)
		cl.Manager.SetActive(id, true)
	}
	if cl.mm != nil {
		cl.mm.Joins.Inc()
		cl.mm.Pool.Set(int64(cl.pool))
	}
	return true
}

// Drain withdraws node id from routing while it keeps serving: the
// node's directory entry disappears, its heartbeats stop, and the
// Ideal manager stops assigning it. The last routable node never
// drains — a cluster must always have somewhere to send work. Returns
// whether the pool changed.
func (cl *Cluster) Drain(id int) bool {
	cl.churnMu.Lock()
	defer cl.churnMu.Unlock()
	return cl.drainLocked(id)
}

func (cl *Cluster) drainLocked(id int) bool {
	if id < 0 || id >= len(cl.routable) || !cl.routable[id] || cl.Nodes[id] == nil {
		return false
	}
	if cl.pool <= 1 {
		return false
	}
	cl.Nodes[id].Drain()
	cl.routable[id] = false
	cl.pool--
	cl.drains++
	if cl.Manager != nil {
		cl.Manager.SetActive(id, false)
	}
	if cl.mm != nil {
		cl.mm.Drains.Inc()
		cl.mm.Pool.Set(int64(cl.pool))
	}
	return true
}

// Leave retires node id (draining it first when still routable). The
// node process stays up until cluster teardown so work still queued or
// routed by stale tables completes; leave is the bookkeeping that stops
// the autoscaler's first-fit scan from preferring the id for re-joins.
// Returns whether anything changed.
func (cl *Cluster) Leave(id int) bool {
	cl.churnMu.Lock()
	defer cl.churnMu.Unlock()
	return cl.leaveLocked(id)
}

func (cl *Cluster) leaveLocked(id int) bool {
	if id < 0 || id >= len(cl.routable) || cl.left[id] {
		return false
	}
	if cl.routable[id] && !cl.drainLocked(id) {
		return false // last routable node: refuse to retire it
	}
	cl.left[id] = true
	cl.retiring[id] = false
	cl.leaves++
	if cl.mm != nil {
		cl.mm.Leaves.Inc()
	}
	return true
}

// Autoscale runs one autoscaler evaluation at elapsed run time now
// (already unscaled back to spec time by the caller): retire idle
// retiring nodes, sample the routable pool's load index, and apply the
// policy's delta as joins (first-fit over never-used and drained ids,
// then retired ones, then brand-new ids) or drains (highest id first —
// joined last, first out). event, when non-nil, receives one callback
// per applied transition for tracing.
func (cl *Cluster) Autoscale(as *membership.Autoscaler, now time.Duration, event func(kind string, id, pool int)) {
	type transition struct {
		kind string
		id   int
		pool int
	}
	var applied []transition

	cl.churnMu.Lock()
	// Nodes drained by a previous scale-down retire once idle.
	for id := range cl.retiring {
		if cl.retiring[id] && !cl.routable[id] && cl.Nodes[id] != nil && cl.Nodes[id].LoadIndex() == 0 {
			if cl.leaveLocked(id) {
				applied = append(applied, transition{"server.leave", id, cl.pool})
			}
		}
	}
	pool := cl.pool
	outstanding := 0
	for id, r := range cl.routable {
		if r {
			outstanding += cl.Nodes[id].LoadIndex()
		}
	}
	load := 0.0
	if pool > 0 {
		load = float64(outstanding) / float64(pool)
	}
	delta := as.Evaluate(now, pool, load)
	switch {
	case delta > 0:
		added := 0
		for added < delta {
			id := cl.pickJoinLocked()
			cl.churnMu.Unlock()
			ok := cl.Join(id)
			cl.churnMu.Lock()
			if !ok {
				break
			}
			added++
			applied = append(applied, transition{"server.join", id, cl.pool})
		}
		if added > 0 && cl.mm != nil {
			cl.mm.ScaleUps.Inc()
		}
	case delta < 0:
		removed := 0
		for removed < -delta && cl.pool > 1 {
			id := -1
			for i := len(cl.routable) - 1; i >= 0; i-- {
				if cl.routable[i] {
					id = i
					break
				}
			}
			if id < 0 || !cl.drainLocked(id) {
				break
			}
			removed++
			cl.retiring[id] = true
			applied = append(applied, transition{"server.drain", id, cl.pool})
			if cl.Nodes[id].LoadIndex() == 0 && cl.leaveLocked(id) {
				applied = append(applied, transition{"server.leave", id, cl.pool})
			}
		}
		if removed > 0 && cl.mm != nil {
			cl.mm.ScaleDowns.Inc()
		}
	}
	cl.churnMu.Unlock()

	if event != nil {
		for _, t := range applied {
			event(t.kind, t.id, t.pool)
		}
	}
}

// pickJoinLocked chooses the id the next scale-up joins: the lowest
// non-routable id that never left, then the lowest retired one, then a
// brand-new id past every known slot. Callers hold churnMu.
func (cl *Cluster) pickJoinLocked() int {
	for id := range cl.routable {
		if !cl.routable[id] && !cl.left[id] {
			return id
		}
	}
	for id := range cl.routable {
		if !cl.routable[id] {
			return id
		}
	}
	return len(cl.routable)
}
