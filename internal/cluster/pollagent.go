package cluster

import (
	"errors"
	"net"
	"sync"
)

// pollAgent is the client side of the load-inquiry protocol for one
// server: a connected UDP socket (as in §3.1) plus a demultiplexer that
// routes answers back to the access goroutines that asked, by sequence
// number. Late answers whose inquiry was already cancelled (discarded)
// are dropped here, which is exactly the prototype optimization of
// §3.2.
type pollAgent struct {
	conn *net.UDPConn

	mu      sync.Mutex
	pending map[uint32]func(load int)
	closed  bool
}

func newPollAgent(loadAddr string) (*pollAgent, error) {
	raddr, err := net.ResolveUDPAddr("udp", loadAddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	a := &pollAgent{
		conn:    conn,
		pending: make(map[uint32]func(load int)),
	}
	go a.readLoop()
	return a, nil
}

func (a *pollAgent) readLoop() {
	buf := make([]byte, 64)
	for {
		m, err := a.conn.Read(buf)
		if err != nil {
			if a.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient read error. On Linux a poll to a crashed node's
			// port comes back as ICMP port-unreachable, surfacing here as
			// ECONNREFUSED on the connected socket; exiting would kill
			// polling to this server forever even after it restarts. Keep
			// reading — the next Read blocks until a datagram (or the next
			// queued error) arrives, so this does not spin.
			continue
		}
		seq, load, err := DecodeLoad(buf[:m])
		if err != nil {
			continue
		}
		a.mu.Lock()
		cb := a.pending[seq]
		delete(a.pending, seq)
		a.mu.Unlock()
		if cb != nil {
			cb(int(load))
		}
	}
}

// inquire registers cb for seq and sends the inquiry datagram. cb runs
// on the agent's read loop; it must not block.
func (a *pollAgent) inquire(seq uint32, cb func(load int)) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return net.ErrClosed
	}
	a.pending[seq] = cb
	a.mu.Unlock()

	var buf [inquirySize]byte
	if _, err := a.conn.Write(EncodeInquiry(buf[:0], seq)); err != nil {
		a.cancel(seq)
		return err
	}
	return nil
}

func (a *pollAgent) isClosed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closed
}

// cancel forgets an outstanding inquiry; a late answer is discarded.
func (a *pollAgent) cancel(seq uint32) {
	a.mu.Lock()
	delete(a.pending, seq)
	a.mu.Unlock()
}

func (a *pollAgent) close() {
	a.mu.Lock()
	a.closed = true
	a.pending = make(map[uint32]func(load int))
	a.mu.Unlock()
	a.conn.Close()
}
