package cluster

import (
	"errors"
	"net"
	"sync"

	"finelb/internal/obs"
	"finelb/internal/transport"
)

// pendingInquiry routes one outstanding load inquiry back to its poll
// round: the agent's read loop demultiplexes answers by sequence
// number straight into the round's answer slot — no per-reply
// goroutine, channel, or closure. gen guards against the round having
// been recycled between lookup and delivery.
type pendingInquiry struct {
	round *pollRound
	gen   uint32
	slot  int32
}

// pollAgent is the client side of the load-inquiry protocol for one
// server: a connected datagram endpoint (as in §3.1) plus a
// demultiplexer that routes answers back to the poll rounds that
// asked, by sequence number. Late answers whose inquiry was already
// cancelled (discarded) are dropped here — exactly the prototype
// optimization of §3.2 — and counted, so the discard rate is
// observable on either transport.
type pollAgent struct {
	conn transport.PacketConn

	//lint:guards pending, closed, late
	mu      sync.Mutex
	pending map[uint32]pendingInquiry
	closed  bool
	late    int64        // answers that arrived after their inquiry was cancelled
	lateCtr *obs.Counter // run-level poll_late_total (may be nil in unit tests)
}

func newPollAgent(tr transport.Transport, loadAddr string, link transport.Link, late *obs.Counter) (*pollAgent, error) {
	conn, err := tr.DialPacket(loadAddr, link)
	if err != nil {
		return nil, err
	}
	a := &pollAgent{
		conn:    conn,
		pending: make(map[uint32]pendingInquiry),
		lateCtr: late,
	}
	// Answers arrive as synchronous handler calls when the transport
	// supports it (mem fabric); otherwise a read loop parks in Read.
	if hc, ok := conn.(transport.HandlerPacketConn); !ok || !hc.SetPacketHandler(a.handleAnswer) {
		go a.readLoop()
	}
	return a, nil
}

// handleAnswer demultiplexes one load answer into the round that asked
// for it. It runs either synchronously on whichever goroutine the
// answering node replied from (HandlerPacketConn transports) or on
// readLoop's goroutine, and never blocks beyond the two short mutexes.
//
//lint:noalloc
func (a *pollAgent) handleAnswer(p []byte, _ string) {
	seq, load, err := DecodeLoad(p)
	if err != nil {
		return
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	pi, ok := a.pending[seq]
	if ok {
		delete(a.pending, seq)
	} else {
		// The inquiry was cancelled at its deadline before this
		// answer arrived: a discarded slow poll (§3.2).
		a.late++
		if a.lateCtr != nil {
			a.lateCtr.Inc()
		}
	}
	a.mu.Unlock()
	if ok {
		pi.round.deliver(pi.gen, pi.slot, load)
	}
}

func (a *pollAgent) readLoop() {
	buf := make([]byte, 64)
	for {
		m, err := a.conn.Read(buf)
		if err != nil {
			if a.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient read error. On Linux a poll to a crashed node's
			// port comes back as ICMP port-unreachable, surfacing here as
			// ECONNREFUSED on the connected socket; exiting would kill
			// polling to this server forever even after it restarts. Keep
			// reading — the next Read blocks until a datagram (or the next
			// queued error) arrives, so this does not spin.
			continue
		}
		a.handleAnswer(buf[:m], "")
	}
}

// lateCount reports how many answers arrived after cancellation.
func (a *pollAgent) lateCount() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.late
}

// inquire registers slot of round r for seq and sends the inquiry
// datagram, encoded into buf — the round's pooled send buffer, which
// is free for reuse as soon as Write returns (every transport copies
// or finishes with the payload synchronously).
//
//lint:noalloc
func (a *pollAgent) inquire(seq uint32, r *pollRound, gen uint32, slot int32, buf []byte) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return net.ErrClosed
	}
	a.pending[seq] = pendingInquiry{round: r, gen: gen, slot: slot}
	a.mu.Unlock()

	if _, err := a.conn.Write(EncodeInquiry(buf[:0], seq)); err != nil {
		a.cancel(seq)
		return err
	}
	return nil
}

func (a *pollAgent) isClosed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closed
}

// cancel forgets an outstanding inquiry; a late answer is discarded.
//
//lint:noalloc
func (a *pollAgent) cancel(seq uint32) {
	a.mu.Lock()
	delete(a.pending, seq)
	a.mu.Unlock()
}

func (a *pollAgent) close() {
	a.mu.Lock()
	a.closed = true
	a.pending = make(map[uint32]pendingInquiry)
	a.mu.Unlock()
	_ = a.conn.Close()
}
