package cluster

import (
	"errors"
	"net"
	"sync"

	"finelb/internal/obs"
	"finelb/internal/transport"
)

// pollAgent is the client side of the load-inquiry protocol for one
// server: a connected datagram endpoint (as in §3.1) plus a
// demultiplexer that routes answers back to the access goroutines
// that asked, by sequence number. Late answers whose inquiry was
// already cancelled (discarded) are dropped here — exactly the
// prototype optimization of §3.2 — and counted, so the discard rate
// is observable on either transport.
type pollAgent struct {
	conn transport.PacketConn

	mu      sync.Mutex
	pending map[uint32]func(load int)
	closed  bool
	late    int64        // answers that arrived after their inquiry was cancelled
	lateCtr *obs.Counter // run-level poll_late_total (may be nil in unit tests)
}

func newPollAgent(tr transport.Transport, loadAddr string, link transport.Link, late *obs.Counter) (*pollAgent, error) {
	conn, err := tr.DialPacket(loadAddr, link)
	if err != nil {
		return nil, err
	}
	a := &pollAgent{
		conn:    conn,
		pending: make(map[uint32]func(load int)),
		lateCtr: late,
	}
	go a.readLoop()
	return a, nil
}

func (a *pollAgent) readLoop() {
	buf := make([]byte, 64)
	for {
		m, err := a.conn.Read(buf)
		if err != nil {
			if a.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient read error. On Linux a poll to a crashed node's
			// port comes back as ICMP port-unreachable, surfacing here as
			// ECONNREFUSED on the connected socket; exiting would kill
			// polling to this server forever even after it restarts. Keep
			// reading — the next Read blocks until a datagram (or the next
			// queued error) arrives, so this does not spin.
			continue
		}
		seq, load, err := DecodeLoad(buf[:m])
		if err != nil {
			continue
		}
		a.mu.Lock()
		cb := a.pending[seq]
		if cb == nil {
			// The inquiry was cancelled at its deadline before this
			// answer arrived: a discarded slow poll (§3.2).
			a.late++
			if a.lateCtr != nil {
				a.lateCtr.Inc()
			}
		}
		delete(a.pending, seq)
		a.mu.Unlock()
		if cb != nil {
			cb(int(load))
		}
	}
}

// lateCount reports how many answers arrived after cancellation.
func (a *pollAgent) lateCount() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.late
}

// inquire registers cb for seq and sends the inquiry datagram. cb runs
// on the agent's read loop; it must not block.
func (a *pollAgent) inquire(seq uint32, cb func(load int)) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return net.ErrClosed
	}
	a.pending[seq] = cb
	a.mu.Unlock()

	var buf [inquirySize]byte
	if _, err := a.conn.Write(EncodeInquiry(buf[:0], seq)); err != nil {
		a.cancel(seq)
		return err
	}
	return nil
}

func (a *pollAgent) isClosed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closed
}

// cancel forgets an outstanding inquiry; a late answer is discarded.
func (a *pollAgent) cancel(seq uint32) {
	a.mu.Lock()
	delete(a.pending, seq)
	a.mu.Unlock()
}

func (a *pollAgent) close() {
	a.mu.Lock()
	a.closed = true
	a.pending = make(map[uint32]func(load int))
	a.mu.Unlock()
	_ = a.conn.Close()
}
