package cluster

import (
	"testing"
	"time"

	"finelb/internal/core"
	"finelb/internal/stats"
	"finelb/internal/transport"
)

// deafCluster boots n nodes that drop every load inquiry (DropProb 1)
// but serve TCP accesses normally — silent on the poll path, alive on
// the service path.
func deafCluster(t *testing.T, n int) *Directory {
	t.Helper()
	d := NewDirectory(time.Minute)
	for i := 0; i < n; i++ {
		node, err := StartNode(NodeConfig{
			ID: i, Service: "svc", Directory: d, Seed: uint64(i),
			SlowProb: -1, DropProb: 1,
			Transport: testTransport(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
	}
	return d
}

// testRound builds a one-slot round armed to complete on its single
// answer, for driving an agent's inquire/demux path directly.
func testRound() *pollRound {
	r := &pollRound{
		done:    make(chan struct{}, 1),
		sendBuf: make([]byte, 0, inquirySize),
		epIdx:   make([]int, 1),
		loads:   []int64{-1},
		rtts:    make([]time.Duration, 1),
		want:    1,
	}
	r.start = time.Now()
	return r
}

func TestPollAgentCancelDropsLateAnswer(t *testing.T) {
	_, nodes := testCluster(t, 1, false)
	a, err := newPollAgent(nodes[0].Transport(), nodes[0].LoadAddr(), transport.NoLink, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.close()
	r1 := testRound()
	if err := a.inquire(1, r1, r1.gen, 0, r1.sendBuf); err != nil {
		t.Fatal(err)
	}
	a.cancel(1) // cancel immediately: the answer must be dropped
	select {
	case <-r1.done:
		// Tiny race window: the answer may already have been delivered
		// before cancel ran; that is acceptable behaviour, not a bug.
	case <-time.After(100 * time.Millisecond):
	}
	// A second inquiry still works after the cancel.
	r2 := testRound()
	if err := a.inquire(2, r2, r2.gen, 0, r2.sendBuf); err != nil {
		t.Fatal(err)
	}
	select {
	case <-r2.done:
		if r2.loads[0] < 0 {
			t.Fatal("completion signaled without an answer in the slot")
		}
	case <-time.After(time.Second):
		t.Fatal("second inquiry unanswered")
	}
}

func TestPollAgentCountsLateAnswers(t *testing.T) {
	// A busy node with a deterministic 50 ms slow path: the inquiry's
	// answer is guaranteed to arrive well after the immediate cancel, so
	// the agent must count exactly one late answer (§3.2's discarded
	// slow poll).
	n := startTestNode(t, NodeConfig{
		ID: 1, Service: "svc",
		SlowProb: 1, SlowDist: stats.Deterministic{Value: 0.05},
	})
	_, r, w := dialNode(t, n)
	if err := WriteRequest(w, &Request{ID: 1, Service: "svc", ServiceUs: 400000}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return n.LoadIndex() == 1 }, "the node to become busy")

	a, err := newPollAgent(n.Transport(), n.LoadAddr(), transport.NoLink, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.close()
	rd := testRound()
	if err := a.inquire(7, rd, rd.gen, 0, rd.sendBuf); err != nil {
		t.Fatal(err)
	}
	a.cancel(7) // discard before the 50 ms slow answer can arrive
	waitUntil(t, func() bool { return a.lateCount() == 1 }, "the late answer to be counted")
	if load := rd.loads[0]; load >= 0 {
		t.Fatalf("cancelled inquiry still delivered load %d", load)
	}
	if _, err := ReadResponse(r); err != nil {
		t.Fatal(err)
	}
}

func TestClientExposesLateAnswers(t *testing.T) {
	// End-to-end form of the late-answer counter: a PollDiscard access
	// abandons a slow node's answer at the threshold, and when that
	// answer eventually lands the client's aggregate counter sees it.
	n := startTestNode(t, NodeConfig{
		ID: 0, Service: "svc", Workers: 2, // the access must not queue behind the long job
		SlowProb: 1, SlowDist: stats.Deterministic{Value: 0.4},
	})
	d := NewDirectory(time.Minute)
	d.Publish(n.Endpoint())
	_, r, w := dialNode(t, n)
	if err := WriteRequest(w, &Request{ID: 1, Service: "svc", ServiceUs: 900000}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return n.LoadIndex() == 1 }, "the node to become busy")

	c, err := NewClient(ClientConfig{
		Directory: d, Service: "svc",
		Policy:      core.NewPollDiscard(1, 30*time.Millisecond),
		PollRetries: -1,
		Transport:   testTransport(t),
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	info, err := c.Access(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Discarded != 1 {
		t.Fatalf("discarded %d, want 1", info.Discarded)
	}
	if c.LateAnswers() != 0 {
		t.Fatal("late answer counted before it arrived")
	}
	waitUntil(t, func() bool { return c.LateAnswers() == 1 }, "the slow answer to arrive and be counted late")
	if _, err := ReadResponse(r); err != nil {
		t.Fatal(err)
	}
}

func TestPollSizeClampedToEndpoints(t *testing.T) {
	d, _ := testCluster(t, 2, false)
	c := newTestClient(t, d, core.NewPoll(5), "")
	info, err := c.Access(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Polled != 2 {
		t.Fatalf("poll size 5 against 2 endpoints sent %d inquiries, want 2", info.Polled)
	}
	if info.Answered != 2 || info.Discarded != 0 {
		t.Fatalf("answered %d discarded %d", info.Answered, info.Discarded)
	}
}

func TestPollTimeoutCountsDiscards(t *testing.T) {
	d := deafCluster(t, 2)
	c, err := NewClient(ClientConfig{
		Directory: d, Service: "svc",
		Policy:      core.NewPollDiscard(2, 40*time.Millisecond),
		PollRetries: -1, // a single round, so the accounting is exact
		Transport:   testTransport(t),
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	info, err := c.Access(100, nil)
	if err != nil {
		t.Fatal(err) // random fallback must still complete the access
	}
	if info.Polled != 2 || info.Answered != 0 || info.Discarded != 2 {
		t.Fatalf("polled %d answered %d discarded %d, want 2/0/2",
			info.Polled, info.Answered, info.Discarded)
	}
	if info.PollTime < 40*time.Millisecond {
		t.Fatalf("poll returned before the discard deadline: %v", info.PollTime)
	}
	if info.PollTime > 500*time.Millisecond {
		t.Fatalf("poll ran far past the discard deadline: %v", info.PollTime)
	}
}

func TestPollRetryAfterDryRound(t *testing.T) {
	d := deafCluster(t, 2)
	c, err := NewClient(ClientConfig{
		Directory: d, Service: "svc",
		Policy:          core.NewPollDiscard(2, 30*time.Millisecond),
		QuarantineAfter: -1, // keep both rounds polling both servers
		Transport:       testTransport(t),
		Seed:            6,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	info, err := c.Access(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Default PollRetries is 1: a dry first round is retried once, and
	// each round gets a fresh full deadline (the second round must not
	// inherit the first round's fired timer).
	if info.Retries != 1 {
		t.Fatalf("retries %d, want 1", info.Retries)
	}
	if info.Polled != 4 || info.Discarded != 4 {
		t.Fatalf("polled %d discarded %d, want 4/4 across two rounds", info.Polled, info.Discarded)
	}
	if info.PollTime < 60*time.Millisecond {
		t.Fatalf("two 30ms rounds finished in %v; retry reused a fired timer?", info.PollTime)
	}
}

func TestQuarantineAfterConsecutiveTimeouts(t *testing.T) {
	// Node 0 never answers inquiries; node 1 is healthy. After
	// QuarantineAfter consecutive silences, node 0 must drop out of the
	// poll set entirely.
	dir := NewDirectory(time.Minute)
	deaf, err := StartNode(NodeConfig{
		ID: 0, Service: "svc", Directory: dir, SlowProb: -1, DropProb: 1,
		Transport: testTransport(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { deaf.Close() })
	alive, err := StartNode(NodeConfig{
		ID: 1, Service: "svc", Directory: dir, SlowProb: -1,
		Transport: testTransport(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { alive.Close() })

	c, err := NewClient(ClientConfig{
		Directory: dir, Service: "svc",
		Policy:          core.NewPollDiscard(2, 30*time.Millisecond),
		PollRetries:     -1,
		QuarantineAfter: 2,
		QuarantineFor:   time.Minute,
		Transport:       testTransport(t),
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Two accesses poll both servers and collect node 0's two strikes.
	for i := 0; i < 2; i++ {
		if _, err := c.Access(100, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Node 0 is now quarantined: polls go only to node 1, instantly.
	for i := 0; i < 5; i++ {
		info, err := c.Access(100, nil)
		if err != nil {
			t.Fatal(err)
		}
		if info.Polled != 1 || info.Server != 1 {
			t.Fatalf("access %d: polled %d server %d, want the quarantine to pin node 1",
				i, info.Polled, info.Server)
		}
		if info.Discarded != 0 {
			t.Fatalf("access %d still discarding: %+v", i, info)
		}
	}
}

func TestNodePauseResume(t *testing.T) {
	dir := NewDirectory(200 * time.Millisecond)
	node, err := StartNode(NodeConfig{
		ID: 0, Service: "svc", Directory: dir,
		SlowProb: -1, PublishInterval: 50 * time.Millisecond,
		Transport: testTransport(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })

	c, err := NewClient(ClientConfig{
		Directory: dir, Service: "svc", Policy: core.NewRandom(),
		RefreshInterval: 20 * time.Millisecond, AccessRetries: -1, Seed: 8,
		Transport: testTransport(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	if _, err := c.Access(100, nil); err != nil {
		t.Fatalf("healthy access failed: %v", err)
	}

	node.Pause()
	if !node.Paused() {
		t.Fatal("Paused() false after Pause")
	}
	// Heartbeats stop: the soft-state entry must expire at the TTL.
	waitUntil(t, func() bool { return dir.Len() == 0 }, "paused node's directory entry to expire")

	// An access accepted while paused stays queued, not lost.
	type result struct {
		info *AccessInfo
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		// Static-endpoint client so the expired directory doesn't block
		// the access from reaching the paused node's open socket.
		pc, err := NewClient(ClientConfig{
			StaticEndpoints: []Endpoint{node.Endpoint()},
			Service:         "svc", Policy: core.NewRandom(),
			Transport:     node.Transport(),
			AccessRetries: -1, Seed: 9,
		})
		if err != nil {
			resCh <- result{nil, err}
			return
		}
		defer pc.Close()
		info, err := pc.Access(100, nil)
		resCh <- result{info, err}
	}()

	select {
	case r := <-resCh:
		t.Fatalf("access completed against a paused node: %+v %v", r.info, r.err)
	case <-time.After(150 * time.Millisecond):
		// Still queued — the pause is holding it. Good.
	}

	node.Resume()
	if node.Paused() {
		t.Fatal("Paused() true after Resume")
	}
	select {
	case r := <-resCh:
		if r.err != nil {
			t.Fatalf("queued access failed after resume: %v", r.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued access never completed after resume")
	}
	// Resume re-publishes immediately, ahead of the publish period.
	if dir.Len() == 0 {
		t.Fatal("resumed node did not re-register")
	}
}
