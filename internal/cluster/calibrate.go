package cluster

import (
	"fmt"
	"sync"
	"time"

	"finelb/internal/core"
	"finelb/internal/stats"
	"finelb/internal/transport"
	"finelb/internal/workload"
)

// CalibrationConfig parameterizes the paper's §4 empirical load
// calibration: "for each workload on a single-server setting, we
// consider the server reach full load (100%) when around 98% of client
// requests were successfully completed within two seconds".
type CalibrationConfig struct {
	Workload workload.Workload
	// TargetFrac is the completion fraction defining full load
	// (default 0.98).
	TargetFrac float64
	// Within is the completion deadline (default 2 s).
	Within time.Duration
	// Burst is how long each probe run generates load (default 3 s).
	Burst time.Duration
	// Iterations bounds the bisection (default 5).
	Iterations int
	// Node knobs.
	Workers int
	Spin    bool
	// Transport is the messaging substrate of the probe cluster
	// (default transport.Net).
	Transport transport.Transport
	Seed      uint64

	// now and sleep are the probe loop's clock, injectable so tests
	// can pin the burst pacing (default wall clock). finelbvet's
	// detclock analyzer keeps the loop on them.
	now   func() time.Time
	sleep func(time.Duration)
}

// CalibrationResult reports the calibrated full-load point.
type CalibrationResult struct {
	// Rate is the calibrated 100%-load request rate (accesses/second)
	// for one server.
	Rate float64
	// Multiplier is Rate relative to the analytic service rate
	// 1/E[S]; 1.0 means the emulation matches theory exactly.
	Multiplier float64
	// Probes records (multiplier, fraction-within-deadline) pairs.
	Probes [][2]float64
}

// CalibrateFullLoad bisects the single-server arrival-rate multiplier
// until the completion criterion sits at the target, and returns the
// calibrated full-load rate. Because the sleep-based service emulation
// is self-correcting (see sleeper), the multiplier lands near 1.0; the
// function exists to *verify* that, and to support spin-based or
// multi-worker nodes where theory is not exact.
func CalibrateFullLoad(cfg CalibrationConfig) (*CalibrationResult, error) {
	if cfg.Workload.Service == nil || cfg.Workload.Arrival == nil {
		return nil, fmt.Errorf("cluster: calibration needs a workload")
	}
	if cfg.TargetFrac == 0 {
		cfg.TargetFrac = 0.98
	}
	if cfg.TargetFrac <= 0 || cfg.TargetFrac >= 1 {
		return nil, fmt.Errorf("cluster: TargetFrac = %v", cfg.TargetFrac)
	}
	if cfg.Within == 0 {
		cfg.Within = 2 * time.Second
	}
	if cfg.Burst == 0 {
		cfg.Burst = 3 * time.Second
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 5
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.sleep == nil {
		cfg.sleep = time.Sleep
	}

	analyticRate := 1 / cfg.Workload.Service.Mean()
	res := &CalibrationResult{}

	probe := func(mult float64) (float64, error) {
		node, err := StartNode(NodeConfig{
			ID: 0, Service: "cal", Workers: cfg.Workers, Spin: cfg.Spin,
			Transport: cfg.Transport,
			SlowProb:  -1, Seed: cfg.Seed,
		})
		if err != nil {
			return 0, err
		}
		defer node.Close()
		client, err := NewClient(ClientConfig{
			Service: "cal", Policy: core.NewRandom(),
			Transport:       cfg.Transport,
			StaticEndpoints: []Endpoint{node.Endpoint()},
			Seed:            cfg.Seed,
		})
		if err != nil {
			return 0, err
		}
		defer client.Close()

		rng := stats.NewRNG(cfg.Seed + 99)
		svcRNG := stats.NewRNG(cfg.Seed + 100)
		meanGap := time.Duration(float64(time.Second) / (analyticRate * mult))
		var mu sync.Mutex
		var wg sync.WaitGroup
		okWithin, total := 0, 0
		end := cfg.now().Add(cfg.Burst)
		next := cfg.now()
		for cfg.now().Before(end) {
			next = next.Add(time.Duration(float64(meanGap) * rng.ExpFloat64()))
			if wait := next.Sub(cfg.now()); wait > 0 {
				cfg.sleep(wait)
			}
			arrival := next
			svcUs := uint32(cfg.Workload.Service.Sample(svcRNG) * 1e6)
			total++
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := client.Access(svcUs, nil)
				elapsed := cfg.now().Sub(arrival)
				if err == nil && elapsed <= cfg.Within {
					mu.Lock()
					okWithin++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if total == 0 {
			return 0, fmt.Errorf("cluster: calibration burst generated no accesses")
		}
		return float64(okWithin) / float64(total), nil
	}

	lo, hi := 0.5, 1.5
	mult := 1.0
	for i := 0; i < cfg.Iterations; i++ {
		frac, err := probe(mult)
		if err != nil {
			return nil, err
		}
		res.Probes = append(res.Probes, [2]float64{mult, frac})
		if frac >= cfg.TargetFrac {
			lo = mult // can push harder
		} else {
			hi = mult // overloaded
		}
		mult = (lo + hi) / 2
	}
	res.Multiplier = lo
	res.Rate = analyticRate * lo
	return res, nil
}
