package cluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"finelb/internal/transport"
)

// pconn is one pooled TCP connection with its buffered reader/writer.
type pconn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

// maxConnsPerDest caps the number of live connections one pool may
// hold toward a single destination. Beyond the cap, callers queue for a
// free connection instead of dialing — bounding file descriptors and
// turning an open-loop overload into orderly queueing rather than a
// dial storm (important on small machines; the paper's client nodes
// were similarly bounded by their thread pools).
const maxConnsPerDest = 512

// connPool is a bounded free-list of TCP connections to one address.
// Service accesses check a connection out for a full request/response
// exchange, so each connection carries at most one in-flight request;
// concurrent accesses to the same server each get their own connection,
// as the paper's multi-threaded client nodes do.
type connPool struct {
	tr          transport.Transport
	addr        string
	dialTimeout time.Duration
	now         func() time.Time // injected clock for deadline math (detclock-enforced)
	slots       chan struct{}    // one token per permitted live connection

	mu     sync.Mutex
	free   []*pconn
	closed bool
}

func newConnPool(tr transport.Transport, addr string) *connPool {
	p := &connPool{
		tr:          tr,
		addr:        addr,
		dialTimeout: 2 * time.Second,
		now:         time.Now,
		slots:       make(chan struct{}, maxConnsPerDest),
	}
	for i := 0; i < maxConnsPerDest; i++ {
		p.slots <- struct{}{}
	}
	return p
}

func (p *connPool) get() (*pconn, error) {
	// Acquire a connection slot (bounds total live connections).
	select {
	case <-p.slots:
	case <-time.After(p.dialTimeout):
		return nil, fmt.Errorf("cluster: no connection slot to %s within %v", p.addr, p.dialTimeout)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.slots <- struct{}{}
		return nil, net.ErrClosed
	}
	if n := len(p.free); n > 0 {
		pc := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return pc, nil
	}
	p.mu.Unlock()
	c, err := p.tr.Dial(p.addr, p.dialTimeout)
	if err != nil {
		p.slots <- struct{}{}
		return nil, err
	}
	return &pconn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}, nil
}

// put returns a healthy connection to the free list and releases its
// slot.
func (p *connPool) put(pc *pconn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		pc.c.Close()
		p.slots <- struct{}{}
		return
	}
	p.free = append(p.free, pc)
	p.mu.Unlock()
	p.slots <- struct{}{}
}

// discard drops a broken connection and releases its slot.
func (p *connPool) discard(pc *pconn) {
	pc.c.Close()
	p.slots <- struct{}{}
}

func (p *connPool) closeAll() {
	p.mu.Lock()
	p.closed = true
	free := p.free
	p.free = nil
	p.mu.Unlock()
	for _, pc := range free {
		pc.c.Close()
	}
}

// roundTrip performs one request/response exchange on a pooled
// connection. On any error the connection is discarded rather than
// recycled.
func (p *connPool) roundTrip(req *Request, timeout time.Duration) (*Response, error) {
	pc, err := p.get()
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		if err := pc.c.SetDeadline(p.now().Add(timeout)); err != nil {
			p.discard(pc)
			return nil, err
		}
	}
	if err := WriteRequest(pc.w, req); err != nil {
		p.discard(pc)
		return nil, err
	}
	resp, err := ReadResponse(pc.r)
	if err != nil {
		p.discard(pc)
		return nil, err
	}
	if resp.ID != req.ID {
		p.discard(pc)
		return nil, fmt.Errorf("cluster: response id %d for request %d", resp.ID, req.ID)
	}
	if timeout > 0 {
		if err := pc.c.SetDeadline(time.Time{}); err != nil {
			p.discard(pc)
			return resp, nil
		}
	}
	p.put(pc)
	return resp, nil
}
