package cluster

import (
	"testing"
	"time"

	"finelb/internal/core"
)

func startDirServer(t *testing.T, ttl time.Duration) *DirServer {
	t.Helper()
	s, err := StartDirServer(testTransport(t), nil, ttl)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dialDir(t *testing.T, s *DirServer) *RemoteDirectory {
	t.Helper()
	r, err := DialDirectory(testTransport(t), s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestDirServerPublishLookup(t *testing.T) {
	s := startDirServer(t, time.Minute)
	r := dialDir(t, s)
	if err := r.Publish(Endpoint{
		NodeID: 3, Service: "svc",
		AccessAddr: "127.0.0.1:1001", LoadAddr: "127.0.0.1:1002",
	}); err != nil {
		t.Fatal(err)
	}
	// Publishing is fire-and-forget over UDP; wait for it to land.
	waitUntil(t, func() bool {
		eps, err := r.Lookup("svc", 0)
		if err != nil {
			t.Fatal(err)
		}
		return len(eps) == 1
	}, "the publish to become visible")
	eps, err := r.Lookup("svc", 0)
	if err != nil {
		t.Fatal(err)
	}
	if eps[0].NodeID != 3 || eps[0].AccessAddr != "127.0.0.1:1001" || eps[0].LoadAddr != "127.0.0.1:1002" {
		t.Fatalf("lookup returned %+v", eps[0])
	}
}

func TestDirServerPartitions(t *testing.T) {
	s := startDirServer(t, time.Minute)
	r := dialDir(t, s)
	if err := r.Publish(Endpoint{
		NodeID: 0, Service: "img", Partitions: []uint32{0, 1, 2},
		AccessAddr: "127.0.0.1:1", LoadAddr: "127.0.0.1:2",
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Publish(Endpoint{
		NodeID: 1, Service: "img", Partitions: []uint32{10, 11},
		AccessAddr: "127.0.0.1:3", LoadAddr: "127.0.0.1:4",
	}); err != nil {
		t.Fatal(err)
	}
	waitFor := func(part uint32, wantNode int) {
		t.Helper()
		waitUntil(t, func() bool {
			eps, err := r.Lookup("img", part)
			if err != nil {
				t.Fatal(err)
			}
			return len(eps) == 1 && eps[0].NodeID == wantNode
		}, "the partition lookup to resolve")
	}
	waitFor(1, 0)
	waitFor(11, 1)
}

func TestDirServerEmptyLookup(t *testing.T) {
	s := startDirServer(t, time.Minute)
	r := dialDir(t, s)
	eps, err := r.Lookup("ghost", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 0 {
		t.Fatalf("lookup of unknown service returned %+v", eps)
	}
}

func TestDirServerSoftStateExpiry(t *testing.T) {
	s := startDirServer(t, 80*time.Millisecond)
	r := dialDir(t, s)
	if err := r.Publish(Endpoint{
		NodeID: 0, Service: "svc", AccessAddr: "a:1", LoadAddr: "a:2",
	}); err != nil {
		t.Fatal(err)
	}
	// Wait for visibility, then for soft-state expiry at the TTL.
	waitUntil(t, func() bool {
		eps, _ := r.Lookup("svc", 0)
		return len(eps) == 1
	}, "the publish to become visible")
	waitUntil(t, func() bool {
		eps, err := r.Lookup("svc", 0)
		if err != nil {
			t.Fatal(err)
		}
		return len(eps) == 0
	}, "the entry to expire")
}

func TestDirServerHandleMalformed(t *testing.T) {
	s := startDirServer(t, time.Minute)
	// Malformed messages must be ignored, not crash or corrupt state.
	for _, msg := range []string{
		"", "NOPE", "PUB", "PUB x svc a b -", "PUB 1 svc a b x,y",
		"GET", "GET svc notanumber",
	} {
		if reply, _ := s.handle([]byte(msg), nil, nil); len(reply) != 0 && msg != "GET svc notanumber" {
			t.Errorf("handle(%q) = %q, want empty", msg, reply)
		}
	}
	if s.Directory().Len() != 0 {
		t.Fatal("malformed publish created an entry")
	}
}

func TestRemoteDirectoryEndToEnd(t *testing.T) {
	// Full multi-component flow through the wire-protocol directory:
	// nodes publish over UDP, a client discovers them over UDP, and
	// accesses balance across them — the lbdir/lbnode/lbclient topology
	// inside one test.
	s := startDirServer(t, time.Minute)

	nodeDir := dialDir(t, s)
	var nodes []*Node
	for i := 0; i < 3; i++ {
		n, err := StartNode(NodeConfig{
			ID: i, Service: "svc", RemoteDir: nodeDir,
			Transport:       testTransport(t),
			PublishInterval: 20 * time.Millisecond,
			SlowProb:        -1, Seed: uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		t.Cleanup(func() { n.Close() })
	}
	_ = nodes

	clientDir := dialDir(t, s)
	c, err := NewClient(ClientConfig{
		Service: "svc", Policy: core.NewPoll(2),
		Transport:       testTransport(t),
		RemoteDir:       clientDir,
		RefreshInterval: 20 * time.Millisecond,
		Seed:            9,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Wait for discovery of all three nodes.
	waitUntil(t, func() bool { return len(c.Endpoints()) >= 3 }, "the client to discover all nodes")

	seen := map[int]bool{}
	for i := 0; i < 40; i++ {
		info, err := c.Access(200, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[info.Server] = true
	}
	if len(seen) < 2 {
		t.Fatalf("accesses did not spread: %v", seen)
	}
}
