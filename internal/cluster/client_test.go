package cluster

import (
	"sync"
	"testing"
	"time"

	"finelb/internal/core"
	"finelb/internal/stats"
)

// testCluster boots n server nodes (contention model off unless slow
// is set) plus a directory, and returns them with a cleanup. All nodes
// share the package test transport (see testTransport).
func testCluster(t *testing.T, n int, slow bool) (*Directory, []*Node) {
	t.Helper()
	d := NewDirectory(time.Minute)
	nodes := make([]*Node, n)
	for i := range nodes {
		cfg := NodeConfig{
			ID: i, Service: "svc", Directory: d, Seed: uint64(i),
			Transport: testTransport(t),
		}
		if !slow {
			cfg.SlowProb = -1
		}
		node, err := StartNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		t.Cleanup(func() { node.Close() })
	}
	return d, nodes
}

func newTestClient(t *testing.T, d *Directory, p core.Policy, mgrAddr string) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{
		Directory: d, Service: "svc", Policy: p, ManagerAddr: mgrAddr, Seed: 42,
		Transport: testTransport(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientValidation(t *testing.T) {
	d := NewDirectory(time.Minute)
	cases := []ClientConfig{
		{Service: "svc", Policy: core.NewRandom()},                             // no directory
		{Directory: d, Service: "svc", Policy: core.Policy{Kind: core.Poll}},   // bad poll size
		{Directory: d, Service: "svc", Policy: core.NewBroadcast(time.Second)}, // unsupported
		{Directory: d, Service: "svc", Policy: core.NewIdeal()},                // no manager
	}
	for i, cfg := range cases {
		if _, err := NewClient(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestClientNoEndpoints(t *testing.T) {
	d := NewDirectory(time.Minute)
	c := newTestClient(t, d, core.NewRandom(), "")
	if _, err := c.Access(100, nil); err == nil {
		t.Fatal("access with no endpoints succeeded")
	}
}

func TestClientRandomAccess(t *testing.T) {
	d, _ := testCluster(t, 4, false)
	c := newTestClient(t, d, core.NewRandom(), "")
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		info, err := c.Access(100, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if info.Resp.Status != StatusOK {
			t.Fatalf("status %d", info.Resp.Status)
		}
		seen[info.Server] = true
	}
	if len(seen) != 4 {
		t.Fatalf("random policy used %d/4 servers", len(seen))
	}
}

func TestClientRoundRobinAccess(t *testing.T) {
	d, _ := testCluster(t, 3, false)
	c := newTestClient(t, d, core.NewRoundRobin(), "")
	var order []int
	for i := 0; i < 6; i++ {
		info, err := c.Access(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, info.Server)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round robin order %v", order)
		}
	}
}

func TestClientPollAccess(t *testing.T) {
	d, nodes := testCluster(t, 8, false)
	c := newTestClient(t, d, core.NewPoll(3), "")
	info, err := c.Access(500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Polled != 3 {
		t.Fatalf("polled %d, want 3", info.Polled)
	}
	if info.Answered != 3 || info.Discarded != 0 {
		t.Fatalf("answered %d discarded %d", info.Answered, info.Discarded)
	}
	if info.PollTime <= 0 {
		t.Fatal("no poll time measured")
	}
	if len(info.PollRTTs) != 3 {
		t.Fatalf("poll RTTs %v", info.PollRTTs)
	}
	total := int64(0)
	for _, n := range nodes {
		total += n.Stats().Inquiries
	}
	if total != 3 {
		t.Fatalf("nodes answered %d inquiries, want 3", total)
	}
}

func TestClientPollPrefersIdleServer(t *testing.T) {
	d, nodes := testCluster(t, 2, false)
	c := newTestClient(t, d, core.NewPoll(2), "")
	// Make node 0 busy with a long job via a direct connection.
	_, r, w := dialNode(t, nodes[0])
	if err := WriteRequest(w, &Request{ID: 1, Service: "svc", ServiceUs: 400000}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return nodes[0].LoadIndex() == 1 }, "node 0 to become busy")
	// Polling both servers must route every access to idle node 1.
	for i := 0; i < 10; i++ {
		info, err := c.Access(100, nil)
		if err != nil {
			t.Fatal(err)
		}
		if info.Server != 1 {
			t.Fatalf("access %d went to busy server", i)
		}
	}
	if _, err := ReadResponse(r); err != nil {
		t.Fatal(err)
	}
}

func TestClientPollDiscard(t *testing.T) {
	// One of two nodes always answers slowly; with a tight discard
	// threshold the slow answer is abandoned but accesses still work.
	dir := NewDirectory(time.Minute)
	fast, err := StartNode(NodeConfig{
		ID: 0, Service: "svc", Directory: dir, SlowProb: -1,
		Transport: testTransport(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fast.Close() })
	slow, err := StartNode(NodeConfig{
		ID: 1, Service: "svc", Directory: dir,
		SlowProb: 1, SlowDist: stats.Deterministic{Value: 0.2},
		Transport: testTransport(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { slow.Close() })

	// Keep the slow node busy so its slow path triggers.
	_, r, w := dialNode(t, slow)
	if err := WriteRequest(w, &Request{ID: 1, Service: "svc", ServiceUs: 900000}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return slow.LoadIndex() == 1 }, "the slow node to become busy")

	c, err := NewClient(ClientConfig{
		Directory: dir, Service: "svc",
		Policy: core.NewPollDiscard(2, 30*time.Millisecond), Seed: 7,
		Transport: testTransport(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	info, err := c.Access(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Discarded != 1 || info.Answered != 1 {
		t.Fatalf("answered %d discarded %d, want 1/1", info.Answered, info.Discarded)
	}
	if info.Server != 0 {
		t.Fatalf("picked server %d, want the fast idle one", info.Server)
	}
	if info.PollTime > 60*time.Millisecond {
		t.Fatalf("poll time %v not bounded by discard threshold", info.PollTime)
	}
	if _, err := ReadResponse(r); err != nil {
		t.Fatal(err)
	}
}

func TestClientIdealViaManager(t *testing.T) {
	d, _ := testCluster(t, 4, false)
	m, err := StartIdealManager(testTransport(t), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	c := newTestClient(t, d, core.NewIdeal(), m.Addr())

	var wg sync.WaitGroup
	counts := make([]int, 4)
	var mu sync.Mutex
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			info, err := c.Access(20000, nil)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			counts[info.Server]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	// A shortest-queue manager spreads 40 concurrent accesses evenly.
	for i, got := range counts {
		if got < 5 || got > 15 {
			t.Fatalf("ideal balance skewed: server %d got %d/40 (%v)", i, got, counts)
		}
	}
	// All queues drained.
	for i, v := range m.Counts() {
		if v != 0 {
			t.Fatalf("manager count %d = %d after completion", i, v)
		}
	}
}

func TestClientSurvivesNodeCrash(t *testing.T) {
	d, nodes := testCluster(t, 3, false)
	c, err := NewClient(ClientConfig{
		Directory: d, Service: "svc", Policy: core.NewPollDiscard(2, 50*time.Millisecond),
		RefreshInterval: 20 * time.Millisecond, Seed: 3,
		Transport: testTransport(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Kill node 0; its directory entry expires after the TTL. Until the
	// client refreshes, some accesses may fail; afterwards all succeed.
	nodes[0].Close()
	// Force expiry: use a directory with short TTL instead of waiting a
	// minute — re-publish the two live nodes into a fresh view by
	// waiting for refresh on a directory whose entry for node 0 is
	// removed manually (simulate soft-state expiry).
	d.mu.Lock()
	delete(d.entries, dirKey{0, "svc"})
	d.mu.Unlock()
	waitUntil(t, func() bool { return len(c.Endpoints()) == 2 }, "the client to drop the dead endpoint")

	for i := 0; i < 20; i++ {
		info, err := c.Access(100, nil)
		if err != nil {
			t.Fatalf("access %d failed after failover: %v", i, err)
		}
		if info.Server == 0 {
			t.Fatalf("access routed to dead node")
		}
	}
}

func TestClientLocalLeast(t *testing.T) {
	d, _ := testCluster(t, 3, false)
	c := newTestClient(t, d, core.NewLocalLeast(), "")
	// Sequential accesses with zero outstanding anywhere spread by
	// uniform tie-break; just verify they succeed and stay in range.
	seen := map[int]bool{}
	for i := 0; i < 30; i++ {
		info, err := c.Access(100, nil)
		if err != nil {
			t.Fatal(err)
		}
		seen[info.Server] = true
	}
	if len(seen) < 2 {
		t.Fatalf("least-conn stuck on one server: %v", seen)
	}
	// Concurrent accesses must spread across all nodes: each in-flight
	// access bumps its server's count, steering the next one away.
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			info, err := c.Access(30000, nil)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			counts[info.Server]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(counts) != 3 {
		t.Fatalf("concurrent least-conn used %d/3 servers: %v", len(counts), counts)
	}
}
