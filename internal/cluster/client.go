package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"finelb/internal/core"
	"finelb/internal/faults"
	"finelb/internal/obs"
	"finelb/internal/stats"
	"finelb/internal/transport"
)

// ClientConfig configures a client node.
type ClientConfig struct {
	ID        int
	Directory *Directory
	Service   string
	Partition uint32
	Policy    core.Policy

	// Transport is the messaging substrate the client dials through
	// (default transport.Net, real loopback sockets). When Faults has
	// link rules the client wraps it with transport.WithFaults, so the
	// schedule replays identically on any transport.
	Transport transport.Transport

	// RemoteDir, when non-nil, refreshes the mapping table from a
	// DirServer in another process instead of an in-process Directory.
	RemoteDir *RemoteDirectory

	// StaticEndpoints, when no directory of either kind is set, fixes
	// the mapping table (no refresh, no soft-state expiry). Used by the
	// standalone CLI tools when run without a directory server.
	StaticEndpoints []Endpoint

	// ManagerAddr is the IdealManager address (required for the Ideal
	// policy, ignored otherwise).
	ManagerAddr string

	// RefreshInterval is how often the service mapping table is
	// refreshed from the directory (default 250 ms).
	RefreshInterval time.Duration

	// PollTimeout caps the wait for poll answers when no discard
	// threshold is configured (default 1 s); a lost datagram must not
	// hang an access forever.
	PollTimeout time.Duration

	// AccessTimeout bounds one service round trip (default 10 s).
	AccessTimeout time.Duration

	// PollRetries is how many times a completely unanswered poll round
	// is re-polled (after a jittered backoff) before the client falls
	// back to random selection. Default faults.DefaultPollRetries;
	// negative disables retries.
	PollRetries int

	// AccessRetries is how many times a failed service round trip is
	// retried on a freshly chosen server. Default
	// faults.DefaultAccessRetries; negative disables retries. Forced to
	// zero for the Ideal policy, whose manager acquire/release protocol
	// accounts each access exactly once.
	AccessRetries int

	// RetryBackoff is the base backoff between retries: actual waits
	// are jittered uniformly over [0.5, 1.5)× and double per attempt.
	// Default faults.DefaultRetryBackoff.
	RetryBackoff time.Duration

	// QuarantineAfter puts a server on this client's quarantine list
	// after that many consecutive unanswered load inquiries; a broken
	// service round trip quarantines immediately. Quarantined servers
	// are skipped by server selection until QuarantineFor elapses (or a
	// later inquiry is answered). Default faults.DefaultQuarantineAfter;
	// negative disables quarantine.
	QuarantineAfter int

	// QuarantineFor is how long a quarantined server is avoided.
	// Default faults.DefaultQuarantineFor.
	QuarantineFor time.Duration

	// Faults, when non-nil, injects the schedule's link faults (poll
	// loss and added latency) into this client's load inquiries, keyed
	// by this client's ID. Replay happens at the transport seam
	// (transport.WithFaults). Node events are replayed by the driver,
	// not here.
	Faults *faults.Schedule

	// Metrics is the run's shared obs.RunMetrics catalog (poll
	// counters, RTT histogram, retries, quarantines). Nil gets a
	// private catalog so the hot paths stay branch-free; pass the run's
	// to aggregate across clients (RunExperiment does).
	Metrics *obs.RunMetrics

	Seed uint64
}

// AccessInfo reports the measured details of one service access.
type AccessInfo struct {
	Server    int           // NodeID that served the access
	Resp      *Response     // server reply
	PollTime  time.Duration // time spent acquiring load information (all rounds)
	Polled    int           // inquiries sent
	Answered  int           // inquiries answered in time
	Discarded int           // inquiries abandoned at the deadline
	Retries   int           // poll rounds and access attempts beyond the first
	PollRTTs  []time.Duration
}

// serverHealth is this client's failure-detector state for one server.
type serverHealth struct {
	strikes int       // consecutive unanswered inquiries
	until   time.Time // quarantined while now < until
}

// Client is a client node: it maintains a service mapping table from
// the availability subsystem and runs the load-balancing subsystem
// (polling agent or baseline policies) in front of the service access
// point (Figure 5).
type Client struct {
	cfg ClientConfig
	tr  transport.Transport

	//lint:guards rng, rr, endpoints, ident, agents, pools, outstanding, health, latePruned, absentSince
	mu          sync.Mutex
	rng         *stats.RNG
	rr          core.RoundRobinState
	endpoints   []Endpoint
	ident       []int                 // identity permutation scratch for poll-set selection
	agents      map[string]*pollAgent // by load address
	pools       map[string]*connPool  // by access address
	outstanding map[int]int           // this client's in-flight accesses by NodeID (LocalLeast)
	health      map[int]*serverHealth // quarantine state by NodeID

	// rounds pools pollRound scratch structs (slot tables, encode
	// buffer, timer) so steady-state poll rounds allocate nothing;
	// pollPath counts their reuse on a private registry (run snapshots
	// never include these names).
	rounds   sync.Pool
	pollPath *obs.PollPathMetrics

	// latePruned preserves the late-answer counts of agents closed by
	// Refresh pruning, so LateAnswers stays monotone across membership
	// churn. absentSince records when a held address was first missing
	// from the mapping table; pruning waits out a soft-state TTL so a
	// starved republish (one missed heartbeat under load) doesn't tear
	// down live sockets.
	latePruned  int64
	absentSince map[string]time.Time

	mgr *managerClient

	seq    atomic.Uint32
	reqID  atomic.Uint64
	done   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
	closed atomic.Bool
}

// NewClient builds a client node and performs an initial mapping-table
// refresh.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Directory == nil && cfg.RemoteDir == nil && len(cfg.StaticEndpoints) == 0 {
		return nil, fmt.Errorf("cluster: client needs a directory, a remote directory, or static endpoints")
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy.Kind == core.Broadcast {
		return nil, fmt.Errorf("cluster: the prototype does not implement the broadcast policy (the paper's didn't either, §3)")
	}
	if cfg.Policy.Kind == core.Ideal && cfg.ManagerAddr == "" {
		return nil, fmt.Errorf("cluster: Ideal policy needs ManagerAddr")
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	if cfg.RefreshInterval == 0 {
		cfg.RefreshInterval = 250 * time.Millisecond
	}
	if cfg.PollTimeout == 0 {
		cfg.PollTimeout = time.Second
	}
	if cfg.AccessTimeout == 0 {
		cfg.AccessTimeout = 10 * time.Second
	}
	if cfg.PollRetries == 0 {
		cfg.PollRetries = faults.DefaultPollRetries
	}
	if cfg.PollRetries < 0 {
		cfg.PollRetries = 0
	}
	if cfg.AccessRetries == 0 {
		cfg.AccessRetries = faults.DefaultAccessRetries
	}
	if cfg.AccessRetries < 0 || cfg.Policy.Kind == core.Ideal {
		cfg.AccessRetries = 0
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = faults.DefaultRetryBackoff
	}
	if cfg.QuarantineAfter == 0 {
		cfg.QuarantineAfter = faults.DefaultQuarantineAfter
	}
	if cfg.QuarantineAfter < 0 {
		cfg.QuarantineAfter = 0
	}
	if cfg.QuarantineFor == 0 {
		cfg.QuarantineFor = faults.DefaultQuarantineFor
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRunMetrics(nil)
	}
	tr := cfg.Transport
	if tr == nil {
		tr = transport.Default()
	}
	// Link-fault replay happens at the transport seam, not in the
	// client, so Net and Mem honor the same schedule identically.
	tr = transport.WithFaults(tr, cfg.Faults)
	c := &Client{
		cfg:         cfg,
		tr:          tr,
		rng:         stats.NewRNG(cfg.Seed ^ 0xc1e9a7b3d5f01234),
		agents:      make(map[string]*pollAgent),
		pools:       make(map[string]*connPool),
		absentSince: make(map[string]time.Time),
		outstanding: make(map[int]int),
		health:      make(map[int]*serverHealth),
		pollPath:    obs.NewPollPathMetrics(nil),
		done:        make(chan struct{}),
	}
	if cfg.Policy.Kind == core.Ideal {
		c.mgr = newManagerClient(tr, cfg.ManagerAddr)
	}
	c.Refresh()
	if cfg.Directory != nil || cfg.RemoteDir != nil {
		c.wg.Add(1)
		go c.refreshLoop()
	}
	return c, nil
}

// Refresh re-reads the service mapping table from the directory (or
// re-installs the static endpoint list). A failed remote lookup keeps
// the previous table rather than wiping it.
func (c *Client) Refresh() {
	var eps []Endpoint
	switch {
	case c.cfg.Directory != nil:
		eps = c.cfg.Directory.Lookup(c.cfg.Service, c.cfg.Partition)
	case c.cfg.RemoteDir != nil:
		got, err := c.cfg.RemoteDir.Lookup(c.cfg.Service, c.cfg.Partition)
		if err != nil {
			return // transient: keep the stale table
		}
		eps = got
	default:
		eps = append(eps, c.cfg.StaticEndpoints...)
	}
	c.mu.Lock()
	c.endpoints = eps
	c.pruneLocked()
	c.mu.Unlock()
}

// pruneGrace is how long an address must stay missing from the
// mapping table before Refresh closes its sockets. One soft-state TTL
// distinguishes a genuinely departed server from a republish that
// arrived late under load: a single starved heartbeat expires an entry
// for at most one publish interval, well inside the grace, while a
// drained server stays absent and is pruned one TTL after its entry
// expires.
const pruneGrace = DefaultTTL

// pruneLocked closes the poll agents and connection pools of servers
// that left the mapping table at least pruneGrace ago, so an elastic
// pool's membership churn cannot accumulate sockets toward departed
// nodes (the FD-reuse audit in DESIGN.md §12: one UDP socket per live
// polled server, one bounded TCP pool per live access address, nothing
// for the long dead). A round in flight may still hold a pruned agent;
// its sends fail as a dead port would (ErrClosed → silence) and its
// answers are dropped by the agent's closed check, exactly like a
// crashed server. Caller holds c.mu.
func (c *Client) pruneLocked() {
	now := time.Now()
	for addr, a := range c.agents {
		if c.keepLocked(addr, now, func(ep *Endpoint) string { return ep.LoadAddr }) {
			continue
		}
		delete(c.agents, addr)
		c.latePruned += a.lateCount()
		a.close()
	}
	for addr, p := range c.pools {
		if c.keepLocked(addr, now, func(ep *Endpoint) string { return ep.AccessAddr }) {
			continue
		}
		delete(c.pools, addr)
		p.closeAll()
	}
}

// keepLocked reports whether the resources held for addr should
// survive this refresh, updating the absence bookkeeping: present
// addresses clear their absence mark, missing ones are pruned only
// once they have been missing for pruneGrace. Caller holds c.mu.
func (c *Client) keepLocked(addr string, now time.Time, key func(*Endpoint) string) bool {
	for i := range c.endpoints {
		if key(&c.endpoints[i]) == addr {
			delete(c.absentSince, addr)
			return true
		}
	}
	first, ok := c.absentSince[addr]
	if !ok {
		c.absentSince[addr] = now
		return true
	}
	if now.Sub(first) < pruneGrace {
		return true
	}
	delete(c.absentSince, addr)
	return false
}

func (c *Client) refreshLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.RefreshInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.Refresh()
		}
	}
}

// Endpoints snapshots the current mapping table.
func (c *Client) Endpoints() []Endpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Endpoint(nil), c.endpoints...)
}

// Close releases sockets and stops background goroutines.
func (c *Client) Close() error {
	c.once.Do(func() {
		c.closed.Store(true)
		close(c.done)
		c.mu.Lock()
		for _, a := range c.agents {
			a.close()
		}
		for _, p := range c.pools {
			p.closeAll()
		}
		c.mu.Unlock()
		if c.mgr != nil {
			c.mgr.close()
		}
	})
	c.wg.Wait()
	return nil
}

// agent returns (creating if needed) the poll agent for an endpoint.
// The dial names the client→server link so the transport seam can
// replay that link's injected faults.
func (c *Client) agent(ep Endpoint) (*pollAgent, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a, ok := c.agents[ep.LoadAddr]; ok {
		return a, nil
	}
	a, err := newPollAgent(c.tr, ep.LoadAddr, transport.Link{Client: c.cfg.ID, Server: ep.NodeID}, c.cfg.Metrics.PollLate)
	if err != nil {
		return nil, err
	}
	c.agents[ep.LoadAddr] = a
	return a, nil
}

// LateAnswers reports how many poll answers arrived after their
// inquiry was cancelled at the deadline — the observable count of
// the §3.2 slow-poll discards.
func (c *Client) LateAnswers() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.latePruned
	for _, a := range c.agents {
		n += a.lateCount()
	}
	return n
}

// pool returns (creating if needed) the connection pool for an access
// address.
func (c *Client) pool(accessAddr string) *connPool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.pools[accessAddr]; ok {
		return p
	}
	p := newConnPool(c.tr, accessAddr)
	c.pools[accessAddr] = p
	return p
}

// liveEndpoints filters eps down to servers not currently quarantined.
// It returns eps unchanged when nothing is quarantined (the common,
// healthy case) and nil when every endpoint is quarantined.
func (c *Client) liveEndpoints(eps []Endpoint) []Endpoint {
	if c.cfg.QuarantineAfter == 0 {
		return eps
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.health) == 0 {
		return eps
	}
	now := time.Now()
	quarantined := 0
	for _, ep := range eps {
		if h := c.health[ep.NodeID]; h != nil && now.Before(h.until) {
			quarantined++
		}
	}
	if quarantined == 0 {
		return eps
	}
	if quarantined == len(eps) {
		return nil
	}
	live := make([]Endpoint, 0, len(eps)-quarantined)
	for _, ep := range eps {
		if h := c.health[ep.NodeID]; h != nil && now.Before(h.until) {
			continue
		}
		live = append(live, ep)
	}
	return live
}

// noteAnswered clears a server's failure-detector state: an answered
// inquiry is proof of life.
func (c *Client) noteAnswered(nodeID int) {
	if c.cfg.QuarantineAfter == 0 {
		return
	}
	c.mu.Lock()
	delete(c.health, nodeID)
	c.mu.Unlock()
}

// noteSilent records one unanswered inquiry; QuarantineAfter
// consecutive silences quarantine the server.
func (c *Client) noteSilent(nodeID int) {
	if c.cfg.QuarantineAfter == 0 {
		return
	}
	c.mu.Lock()
	h := c.health[nodeID]
	if h == nil {
		h = &serverHealth{}
		c.health[nodeID] = h
	}
	h.strikes++
	if h.strikes >= c.cfg.QuarantineAfter {
		h.until = time.Now().Add(c.cfg.QuarantineFor)
		h.strikes = 0
		c.cfg.Metrics.Quarantines.Inc()
	}
	c.mu.Unlock()
}

// noteAccessFailure quarantines a server immediately: a broken service
// round trip is much stronger evidence than a silent inquiry.
func (c *Client) noteAccessFailure(nodeID int) {
	if c.cfg.QuarantineAfter == 0 {
		return
	}
	c.mu.Lock()
	h := c.health[nodeID]
	if h == nil {
		h = &serverHealth{}
		c.health[nodeID] = h
	}
	h.strikes = 0
	h.until = time.Now().Add(c.cfg.QuarantineFor)
	c.cfg.Metrics.Quarantines.Inc()
	c.mu.Unlock()
}

// backoff sleeps the jittered backoff before retry attempt (0-based).
// It returns false if the client closed while waiting.
func (c *Client) backoff(attempt int) bool {
	d := faults.Backoff(c.cfg.RetryBackoff, attempt)
	c.mu.Lock()
	jitter := 0.5 + c.rng.Float64()
	c.mu.Unlock()
	t := time.NewTimer(time.Duration(float64(d) * jitter))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.done:
		return false
	}
}

// Access performs one service access of the configured service using
// the configured policy, emulating serviceUs microseconds of work on
// the chosen server. A failed round trip quarantines the chosen server
// and retries (with backoff and a mapping-table refresh) up to
// AccessRetries times before reporting the error.
func (c *Client) Access(serviceUs uint32, payload []byte) (*AccessInfo, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("cluster: client closed")
	}
	info := &AccessInfo{}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if !c.backoff(attempt - 1) {
				return nil, fmt.Errorf("cluster: client closed during retry (last error: %v)", lastErr)
			}
			info.Retries++
			c.cfg.Metrics.Retries.Inc()
			// The table may have moved on (soft-state expiry of the dead
			// server); don't wait for the periodic refresh.
			c.Refresh()
		}
		err := c.accessOnce(serviceUs, payload, info)
		if err == nil {
			return info, nil
		}
		lastErr = err
		if c.closed.Load() || attempt >= c.cfg.AccessRetries {
			return nil, lastErr
		}
	}
}

// accessOnce runs one server-selection + service round trip.
func (c *Client) accessOnce(serviceUs uint32, payload []byte, info *AccessInfo) error {
	eps := c.Endpoints()
	if len(eps) == 0 {
		return fmt.Errorf("cluster: no live endpoints for %q", c.cfg.Service)
	}
	// Selection skips quarantined servers; when everything is
	// quarantined the client has nothing better than the full table.
	live := c.liveEndpoints(eps)
	pickFrom := live
	if pickFrom == nil {
		pickFrom = eps
	}

	var target Endpoint
	var releaseIdx uint32
	release := false

	switch c.cfg.Policy.Kind {
	case core.Random:
		c.mu.Lock()
		target = pickFrom[c.rng.Intn(len(pickFrom))]
		c.mu.Unlock()

	case core.RoundRobin:
		c.mu.Lock()
		target = pickFrom[c.rr.Next(len(pickFrom))]
		c.mu.Unlock()

	case core.Ideal:
		// The manager's view is the full table; quarantine is not
		// consulted (the manager is the failure authority for Ideal).
		// The manager assigns node ids, which on an elastic pool are a
		// sparse subset of the mapping table — resolve by NodeID, not by
		// position.
		idx, err := c.mgr.acquire()
		if err != nil {
			return fmt.Errorf("cluster: manager acquire: %w", err)
		}
		found := false
		lookup := func(eps []Endpoint) {
			for _, ep := range eps {
				if ep.NodeID == int(idx) {
					target, found = ep, true
					return
				}
			}
		}
		lookup(eps)
		if !found {
			// A just-joined server can be assigned before this client's
			// periodic refresh has seen it; refresh once before giving up.
			c.Refresh()
			lookup(c.Endpoints())
		}
		if !found {
			// Mapping table behind the manager's view; release and fail.
			_ = c.mgr.release(idx)
			return fmt.Errorf("cluster: manager assigned node %d not in mapping table (%d endpoints)", idx, len(eps))
		}
		releaseIdx, release = idx, true

	case core.LocalLeast:
		// Message-free: pick the endpoint with the fewest of this
		// client's own in-flight accesses (ablation A4).
		c.mu.Lock()
		loads := make([]int, len(pickFrom))
		for i, ep := range pickFrom {
			loads[i] = c.outstanding[ep.NodeID]
		}
		target = pickFrom[core.PickLeast(c.rng, loads)]
		c.outstanding[target.NodeID]++
		c.mu.Unlock()
		defer func() {
			c.mu.Lock()
			c.outstanding[target.NodeID]--
			c.mu.Unlock()
		}()

	case core.Poll:
		var err error
		target, err = c.pollAndPick(eps, live, info)
		if err != nil {
			return err
		}

	default:
		return fmt.Errorf("cluster: policy %v unsupported in prototype", c.cfg.Policy)
	}

	req := &Request{
		ID:        c.reqID.Add(1),
		Service:   c.cfg.Service,
		Partition: c.cfg.Partition,
		ServiceUs: serviceUs,
		Payload:   payload,
	}
	c.cfg.Metrics.Dispatches.Inc()
	resp, tripErr := c.pool(target.AccessAddr).roundTrip(req, c.cfg.AccessTimeout)
	var err error = tripErr
	if release {
		// Report completion (or failure) back to the manager so the
		// queue count is decremented, as in §4.
		if rerr := c.mgr.release(releaseIdx); rerr != nil && err == nil {
			err = rerr
		}
	}
	if tripErr != nil {
		c.noteAccessFailure(target.NodeID)
	}
	if err != nil {
		return err
	}
	info.Server = target.NodeID
	info.Resp = resp
	return nil
}

// HasEndpoint reports whether nodeID is currently in the mapping
// table. The gateway's sticky router checks this before committing a
// session-bound dispatch to a node the soft state may have expired.
func (c *Client) HasEndpoint(nodeID int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ep := range c.endpoints {
		if ep.NodeID == nodeID {
			return true
		}
	}
	return false
}

// AccessNode performs one service access against a specific server
// node, bypassing policy selection — sticky-session routing (the
// gateway's affinity path) dispatches session-bound requests this way.
// The trip is a single attempt with no retries: the caller owns the
// fallback decision, because re-routing a session is a stickiness
// violation it must account for. A broken round trip quarantines the
// node exactly as a policy-selected access would.
func (c *Client) AccessNode(nodeID int, serviceUs uint32, payload []byte) (*AccessInfo, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("cluster: client closed")
	}
	var target Endpoint
	found := false
	for _, ep := range c.Endpoints() {
		if ep.NodeID == nodeID {
			target, found = ep, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: node %d not in mapping table for %q", nodeID, c.cfg.Service)
	}
	req := &Request{
		ID:        c.reqID.Add(1),
		Service:   c.cfg.Service,
		Partition: c.cfg.Partition,
		ServiceUs: serviceUs,
		Payload:   payload,
	}
	c.cfg.Metrics.Dispatches.Inc()
	resp, err := c.pool(target.AccessAddr).roundTrip(req, c.cfg.AccessTimeout)
	if err != nil {
		c.noteAccessFailure(nodeID)
		return nil, err
	}
	return &AccessInfo{Server: nodeID, Resp: resp}, nil
}

// pollAndPick implements the random polling policy (§3.1-3.2) with
// failure handling: poll PollSize random non-quarantined servers, and
// if a whole round goes unanswered, back off and re-poll up to
// PollRetries times before falling back to random selection. live is
// the pre-filtered candidate list (nil when every server is
// quarantined, in which case polling is pointless and the pick is
// random over the full table).
func (c *Client) pollAndPick(eps, live []Endpoint, info *AccessInfo) (Endpoint, error) {
	if live == nil {
		c.mu.Lock()
		ep := eps[c.rng.Intn(len(eps))]
		c.mu.Unlock()
		return ep, nil
	}
	for round := 0; ; round++ {
		ep, ok, err := c.pollOnce(live, info)
		if err != nil {
			return Endpoint{}, err
		}
		if ok {
			return ep, nil
		}
		if round >= c.cfg.PollRetries {
			break
		}
		info.Retries++
		c.cfg.Metrics.Retries.Inc()
		if !c.backoff(round) {
			return Endpoint{}, fmt.Errorf("cluster: client closed during poll")
		}
		// Re-filter: the silent round may have quarantined servers.
		if fresh := c.liveEndpoints(eps); fresh != nil {
			live = fresh
		}
	}
	// Every round was silence. Fall back to a random pick among the
	// servers still believed live.
	c.mu.Lock()
	ep := live[c.rng.Intn(len(live))]
	c.mu.Unlock()
	return ep, nil
}

// pollOnce runs one poll round: send load inquiries to PollSize random
// servers through connected UDP sockets, let the agents' read loops
// demultiplex answers into the round's slots, discard those not
// answered within the deadline, and pick the least-loaded respondent.
// ok is false when not a single answer arrived in time.
//
// The round is pooled scratch (pollround.go): the fan-out writes every
// inquiry from one reusable encode buffer, the owner parks on a single
// select — woken once, by the completing answer or the deadline — and
// steady-state rounds allocate nothing. The RNG and sequence-number
// streams are exactly those of the historical per-reply-channel
// implementation: ChooseIdentity draws the same poll set Choose did,
// and seq numbers are taken per inquiry in poll-set order.
//
//lint:noalloc steady state; the pool-miss mint lives in getRound
func (c *Client) pollOnce(eps []Endpoint, info *AccessInfo) (ep Endpoint, ok bool, err error) {
	d := c.cfg.Policy.PollSize
	if d > len(eps) {
		d = len(eps)
	}
	r := c.getRound(d)
	c.pollPath.Rounds.Inc()

	// Choose the poll set. The identity scratch persists across rounds;
	// ChooseIdentity restores it, so growth is the only maintenance.
	c.mu.Lock()
	for len(c.ident) < len(eps) {
		c.ident = append(c.ident, len(c.ident))
	}
	c.rng.ChooseIdentity(r.polled, len(eps), c.ident, r.swaps)
	c.mu.Unlock()

	r.start = time.Now()
	sent := 0
	for _, epIdx := range r.polled {
		target := eps[epIdx]
		a, agentErr := c.agent(target)
		if agentErr != nil {
			c.noteSilent(target.NodeID)
			continue // node vanished between refreshes; poll fewer
		}
		seq := c.seq.Add(1)
		// The slot is published before the inquiry is registered, so the
		// read loop's deliver always finds it initialized.
		r.epIdx[sent] = epIdx
		//lint:allow lockcheck gen is written only by the round owner (in getRound); between checkout and putRound this goroutine's unlocked read races with nobody (DESIGN.md §12)
		if err := a.inquire(seq, r, r.gen, int32(sent), r.sendBuf); err != nil {
			// A refused send is the OS reporting the port dead
			// (ICMP-backed ECONNREFUSED on a connected UDP socket).
			c.noteSilent(target.NodeID)
			continue
		}
		r.seqs[sent] = seq
		r.agents[sent] = a
		sent++
	}
	info.Polled += sent
	c.cfg.Metrics.PollRequests.Add(int64(sent))
	c.pollPath.BatchSize.Observe(float64(sent))

	deadline := c.cfg.PollTimeout
	if da := c.cfg.Policy.DiscardAfter; da > 0 && da < deadline {
		deadline = da
	}
	if sent > 0 && !r.arm(sent) {
		// One wakeup, one deadline: the round's pooled timer gets a fresh
		// Reset every use — a retry round must see the full deadline, not
		// the remains of an already-fired one.
		if r.timer == nil {
			r.timer = time.NewTimer(deadline)
		} else {
			r.timer.Reset(deadline)
		}
		select {
		case <-r.done:
		case <-r.timer.C:
		case <-c.done:
			r.abandon(sent)
			c.putRound(r)
			//lint:allow noalloc the closed-client error is a shutdown path, not steady state
			return Endpoint{}, false, fmt.Errorf("cluster: client closed during poll")
		}
		if !r.timer.Stop() {
			select {
			case <-r.timer.C:
			default:
			}
		}
	}
	// Abandon stragglers: their late answers are dropped by the agent.
	// After this the answer slots are the owner's to read, lock-free.
	r.abandon(sent)

	r.responses = r.responses[:0]
	for i := 0; i < sent; i++ {
		load := r.loads[i]
		if load < 0 {
			continue
		}
		r.responses = append(r.responses, core.PollResponse{Server: r.epIdx[i], Load: int(load)})
		rtt := r.rtts[i]
		info.PollRTTs = append(info.PollRTTs, rtt)
		c.cfg.Metrics.PollRTTSeconds.Observe(rtt.Seconds())
	}
	answered := len(r.responses)
	info.Answered += answered
	info.Discarded += sent - answered
	info.PollTime += time.Since(r.start)
	c.cfg.Metrics.PollResponses.Add(int64(answered))
	c.cfg.Metrics.PollDiscards.Add(int64(sent - answered))

	// Failure detection: an answer is proof of life; silence is a
	// strike, and consecutive strikes quarantine.
	for i := 0; i < sent; i++ {
		if r.loads[i] >= 0 {
			c.noteAnswered(eps[r.epIdx[i]].NodeID)
		} else {
			c.noteSilent(eps[r.epIdx[i]].NodeID)
		}
	}

	if answered == 0 {
		c.putRound(r)
		return Endpoint{}, false, nil
	}
	c.mu.Lock()
	pick := core.PickFromPolls(c.rng, r.responses, r.polled)
	c.mu.Unlock()
	ep = eps[pick]
	c.putRound(r)
	return ep, true, nil
}

// PollPath exposes the client's poll hot-path instrumentation (rounds,
// batch sizes, scratch reuse). These live on a private registry so run
// metric snapshots — and their golden digests — never see them.
func (c *Client) PollPath() *obs.PollPathMetrics {
	return c.pollPath
}

// PollRound runs exactly one poll round against eps — encode, fan-out,
// demux, decision — with no service access attached, and reports the
// chosen endpoint. ok is false when no server answered within the
// deadline. This is the entry point the pollpath benchmark record
// (cmd/repro, BENCH_pollpath.json) and the in-package benchmarks drive;
// Access remains the production path.
func (c *Client) PollRound(eps []Endpoint, info *AccessInfo) (ep Endpoint, ok bool, err error) {
	return c.pollOnce(eps, info)
}
