package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"finelb/internal/core"
	"finelb/internal/stats"
)

// ClientConfig configures a client node.
type ClientConfig struct {
	ID        int
	Directory *Directory
	Service   string
	Partition uint32
	Policy    core.Policy

	// RemoteDir, when non-nil, refreshes the mapping table from a
	// DirServer in another process instead of an in-process Directory.
	RemoteDir *RemoteDirectory

	// StaticEndpoints, when no directory of either kind is set, fixes
	// the mapping table (no refresh, no soft-state expiry). Used by the
	// standalone CLI tools when run without a directory server.
	StaticEndpoints []Endpoint

	// ManagerAddr is the IdealManager address (required for the Ideal
	// policy, ignored otherwise).
	ManagerAddr string

	// RefreshInterval is how often the service mapping table is
	// refreshed from the directory (default 250 ms).
	RefreshInterval time.Duration

	// PollTimeout caps the wait for poll answers when no discard
	// threshold is configured (default 1 s); a lost datagram must not
	// hang an access forever.
	PollTimeout time.Duration

	// AccessTimeout bounds one service round trip (default 10 s).
	AccessTimeout time.Duration

	Seed uint64
}

// AccessInfo reports the measured details of one service access.
type AccessInfo struct {
	Server    int           // NodeID that served the access
	Resp      *Response     // server reply
	PollTime  time.Duration // time spent acquiring load information
	Polled    int           // inquiries sent
	Answered  int           // inquiries answered in time
	Discarded int           // inquiries abandoned at the deadline
	PollRTTs  []time.Duration
}

// Client is a client node: it maintains a service mapping table from
// the availability subsystem and runs the load-balancing subsystem
// (polling agent or baseline policies) in front of the service access
// point (Figure 5).
type Client struct {
	cfg ClientConfig

	mu          sync.Mutex
	rng         *stats.RNG
	rr          core.RoundRobinState
	endpoints   []Endpoint
	agents      map[string]*pollAgent // by load address
	pools       map[string]*connPool  // by access address
	outstanding map[int]int           // this client's in-flight accesses by NodeID (LocalLeast)

	mgr *managerClient

	seq    atomic.Uint32
	reqID  atomic.Uint64
	done   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
	closed atomic.Bool
}

// NewClient builds a client node and performs an initial mapping-table
// refresh.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Directory == nil && cfg.RemoteDir == nil && len(cfg.StaticEndpoints) == 0 {
		return nil, fmt.Errorf("cluster: client needs a directory, a remote directory, or static endpoints")
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy.Kind == core.Broadcast {
		return nil, fmt.Errorf("cluster: the prototype does not implement the broadcast policy (the paper's didn't either, §3)")
	}
	if cfg.Policy.Kind == core.Ideal && cfg.ManagerAddr == "" {
		return nil, fmt.Errorf("cluster: Ideal policy needs ManagerAddr")
	}
	if cfg.RefreshInterval == 0 {
		cfg.RefreshInterval = 250 * time.Millisecond
	}
	if cfg.PollTimeout == 0 {
		cfg.PollTimeout = time.Second
	}
	if cfg.AccessTimeout == 0 {
		cfg.AccessTimeout = 10 * time.Second
	}
	c := &Client{
		cfg:         cfg,
		rng:         stats.NewRNG(cfg.Seed ^ 0xc1e9a7b3d5f01234),
		agents:      make(map[string]*pollAgent),
		pools:       make(map[string]*connPool),
		outstanding: make(map[int]int),
		done:        make(chan struct{}),
	}
	if cfg.Policy.Kind == core.Ideal {
		c.mgr = newManagerClient(cfg.ManagerAddr)
	}
	c.Refresh()
	if cfg.Directory != nil || cfg.RemoteDir != nil {
		c.wg.Add(1)
		go c.refreshLoop()
	}
	return c, nil
}

// Refresh re-reads the service mapping table from the directory (or
// re-installs the static endpoint list). A failed remote lookup keeps
// the previous table rather than wiping it.
func (c *Client) Refresh() {
	var eps []Endpoint
	switch {
	case c.cfg.Directory != nil:
		eps = c.cfg.Directory.Lookup(c.cfg.Service, c.cfg.Partition)
	case c.cfg.RemoteDir != nil:
		got, err := c.cfg.RemoteDir.Lookup(c.cfg.Service, c.cfg.Partition)
		if err != nil {
			return // transient: keep the stale table
		}
		eps = got
	default:
		eps = append(eps, c.cfg.StaticEndpoints...)
	}
	c.mu.Lock()
	c.endpoints = eps
	c.mu.Unlock()
}

func (c *Client) refreshLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.RefreshInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.Refresh()
		}
	}
}

// Endpoints snapshots the current mapping table.
func (c *Client) Endpoints() []Endpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Endpoint(nil), c.endpoints...)
}

// Close releases sockets and stops background goroutines.
func (c *Client) Close() error {
	c.once.Do(func() {
		c.closed.Store(true)
		close(c.done)
		c.mu.Lock()
		for _, a := range c.agents {
			a.close()
		}
		for _, p := range c.pools {
			p.closeAll()
		}
		c.mu.Unlock()
		if c.mgr != nil {
			c.mgr.close()
		}
	})
	c.wg.Wait()
	return nil
}

// agent returns (creating if needed) the poll agent for a load address.
func (c *Client) agent(loadAddr string) (*pollAgent, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a, ok := c.agents[loadAddr]; ok {
		return a, nil
	}
	a, err := newPollAgent(loadAddr)
	if err != nil {
		return nil, err
	}
	c.agents[loadAddr] = a
	return a, nil
}

// pool returns (creating if needed) the connection pool for an access
// address.
func (c *Client) pool(accessAddr string) *connPool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.pools[accessAddr]; ok {
		return p
	}
	p := newConnPool(accessAddr)
	c.pools[accessAddr] = p
	return p
}

// Access performs one service access of the configured service using
// the configured policy, emulating serviceUs microseconds of work on
// the chosen server.
func (c *Client) Access(serviceUs uint32, payload []byte) (*AccessInfo, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("cluster: client closed")
	}
	eps := c.Endpoints()
	if len(eps) == 0 {
		return nil, fmt.Errorf("cluster: no live endpoints for %q", c.cfg.Service)
	}
	info := &AccessInfo{}
	var target Endpoint
	var releaseIdx uint32
	release := false

	switch c.cfg.Policy.Kind {
	case core.Random:
		c.mu.Lock()
		target = eps[c.rng.Intn(len(eps))]
		c.mu.Unlock()

	case core.RoundRobin:
		c.mu.Lock()
		target = eps[c.rr.Next(len(eps))]
		c.mu.Unlock()

	case core.Ideal:
		idx, err := c.mgr.acquire()
		if err != nil {
			return nil, fmt.Errorf("cluster: manager acquire: %w", err)
		}
		if int(idx) >= len(eps) {
			// Mapping table behind the manager's view; release and fail.
			_ = c.mgr.release(idx)
			return nil, fmt.Errorf("cluster: manager index %d beyond %d endpoints", idx, len(eps))
		}
		target = eps[idx]
		releaseIdx, release = idx, true

	case core.LocalLeast:
		// Message-free: pick the endpoint with the fewest of this
		// client's own in-flight accesses (ablation A4).
		c.mu.Lock()
		loads := make([]int, len(eps))
		for i, ep := range eps {
			loads[i] = c.outstanding[ep.NodeID]
		}
		target = eps[core.PickLeast(c.rng, loads)]
		c.outstanding[target.NodeID]++
		c.mu.Unlock()
		defer func() {
			c.mu.Lock()
			c.outstanding[target.NodeID]--
			c.mu.Unlock()
		}()

	case core.Poll:
		var err error
		target, err = c.pollAndPick(eps, info)
		if err != nil {
			return nil, err
		}

	default:
		return nil, fmt.Errorf("cluster: policy %v unsupported in prototype", c.cfg.Policy)
	}

	req := &Request{
		ID:        c.reqID.Add(1),
		Service:   c.cfg.Service,
		Partition: c.cfg.Partition,
		ServiceUs: serviceUs,
		Payload:   payload,
	}
	resp, err := c.pool(target.AccessAddr).roundTrip(req, c.cfg.AccessTimeout)
	if release {
		// Report completion (or failure) back to the manager so the
		// queue count is decremented, as in §4.
		if rerr := c.mgr.release(releaseIdx); rerr != nil && err == nil {
			err = rerr
		}
	}
	if err != nil {
		return nil, err
	}
	info.Server = target.NodeID
	info.Resp = resp
	return info, nil
}

// pollAndPick implements the random polling policy (§3.1-3.2): send
// load inquiries to PollSize random servers through connected UDP
// sockets, collect answers asynchronously, optionally discarding those
// not answered within DiscardAfter, and pick the least-loaded
// respondent.
func (c *Client) pollAndPick(eps []Endpoint, info *AccessInfo) (Endpoint, error) {
	d := c.cfg.Policy.PollSize
	if d > len(eps) {
		d = len(eps)
	}
	// Choose the poll set.
	c.mu.Lock()
	scratch := make([]int, len(eps))
	polled := make([]int, d)
	c.rng.Choose(polled, len(eps), scratch)
	c.mu.Unlock()

	type answer struct {
		epIdx int
		load  int
		rtt   time.Duration
	}
	answers := make(chan answer, d)
	start := time.Now()

	sent := 0
	seqs := make([]uint32, 0, d)
	agents := make([]*pollAgent, 0, d)
	for _, epIdx := range polled {
		ep := eps[epIdx]
		a, err := c.agent(ep.LoadAddr)
		if err != nil {
			continue // node vanished between refreshes; poll fewer
		}
		seq := c.seq.Add(1)
		epIdx := epIdx
		if err := a.inquire(seq, func(load int) {
			select {
			case answers <- answer{epIdx: epIdx, load: load, rtt: time.Since(start)}:
			default:
			}
		}); err != nil {
			continue
		}
		seqs = append(seqs, seq)
		agents = append(agents, a)
		sent++
	}
	info.Polled = sent

	deadline := c.cfg.PollTimeout
	if da := c.cfg.Policy.DiscardAfter; da > 0 && da < deadline {
		deadline = da
	}
	timer := time.NewTimer(deadline)
	defer timer.Stop()

	responses := make([]core.PollResponse, 0, sent)
collect:
	for len(responses) < sent {
		select {
		case ans := <-answers:
			responses = append(responses, core.PollResponse{Server: ans.epIdx, Load: ans.load})
			info.PollRTTs = append(info.PollRTTs, ans.rtt)
		case <-timer.C:
			break collect
		case <-c.done:
			return Endpoint{}, fmt.Errorf("cluster: client closed during poll")
		}
	}
	// Abandon stragglers: their late answers are dropped by the agent.
	for i, seq := range seqs {
		agents[i].cancel(seq)
	}
	info.Answered = len(responses)
	info.Discarded = sent - len(responses)
	info.PollTime = time.Since(start)

	if sent == 0 {
		// Every agent failed; fall back to a random live endpoint.
		c.mu.Lock()
		ep := eps[c.rng.Intn(len(eps))]
		c.mu.Unlock()
		return ep, nil
	}
	c.mu.Lock()
	pick := core.PickFromPolls(c.rng, responses, polled)
	c.mu.Unlock()
	return eps[pick], nil
}
