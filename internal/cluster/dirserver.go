package cluster

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"finelb/internal/transport"
)

// DirServer is the cross-process form of the service availability
// subsystem: the paper's "highly available well-known central
// directory" alternative to IP multicast (§3.1). Nodes publish their
// soft state to it over UDP; clients query it over UDP. In-process
// components keep using Directory directly; DirServer wraps one behind
// a wire protocol so lbnode/lbclient in separate processes can share a
// cluster view.
//
// Wire protocol (one datagram per message, UTF-8 text):
//
//	PUB <nodeID> <service> <accessAddr> <loadAddr> <p1,p2,...|->
//	GET <service> <partition>
//
// A GET is answered with one datagram:
//
//	EP <nodeID> <accessAddr> <loadAddr>\n ... (one line per endpoint)
//
// An empty result is an empty datagram payload "END".
type DirServer struct {
	dir  *Directory
	tr   transport.Transport
	conn transport.PacketConn
	wg   sync.WaitGroup
	once sync.Once
}

// StartDirServer binds a datagram endpoint on tr (the default
// real-socket transport when nil) in front of the given directory (a
// fresh one when dir is nil).
func StartDirServer(tr transport.Transport, dir *Directory, ttl time.Duration) (*DirServer, error) {
	if tr == nil {
		tr = transport.Default()
	}
	if dir == nil {
		dir = NewDirectory(ttl)
	}
	conn, err := tr.ListenPacket()
	if err != nil {
		return nil, err
	}
	s := &DirServer{dir: dir, tr: tr, conn: conn}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the server's datagram address.
func (s *DirServer) Addr() string { return s.conn.LocalAddr() }

// Directory returns the backing directory (for inspection in tests).
func (s *DirServer) Directory() *Directory { return s.dir }

// Close stops the server.
func (s *DirServer) Close() error {
	s.once.Do(func() { _ = s.conn.Close() })
	s.wg.Wait()
	return nil
}

func (s *DirServer) serve() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		m, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			return
		}
		reply := s.handle(string(buf[:m]))
		if reply != "" {
			_, _ = s.conn.WriteTo([]byte(reply), from)
		}
	}
}

// handle parses one request; it returns the reply payload ("" = none).
func (s *DirServer) handle(msg string) string {
	fields := strings.Fields(msg)
	if len(fields) == 0 {
		return ""
	}
	switch fields[0] {
	case "PUB":
		if len(fields) != 6 {
			return ""
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil {
			return ""
		}
		ep := Endpoint{
			NodeID: id, Service: fields[2],
			AccessAddr: fields[3], LoadAddr: fields[4],
		}
		if fields[5] != "-" {
			for _, p := range strings.Split(fields[5], ",") {
				v, err := strconv.ParseUint(p, 10, 32)
				if err != nil {
					return ""
				}
				ep.Partitions = append(ep.Partitions, uint32(v))
			}
		}
		s.dir.Publish(ep)
		return ""
	case "GET":
		if len(fields) != 3 {
			return ""
		}
		part, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return ""
		}
		eps := s.dir.Lookup(fields[1], uint32(part))
		if len(eps) == 0 {
			return "END"
		}
		var b bytes.Buffer
		for _, ep := range eps {
			fmt.Fprintf(&b, "EP %d %s %s\n", ep.NodeID, ep.AccessAddr, ep.LoadAddr)
		}
		return b.String()
	default:
		return ""
	}
}

// RemoteDirectory is the client stub for a DirServer: it satisfies the
// publish/lookup needs of nodes and clients in other processes.
type RemoteDirectory struct {
	addr    string
	timeout time.Duration

	mu   sync.Mutex
	conn transport.PacketConn
}

// DialDirectory connects (in the datagram sense) to a DirServer over
// tr (the default real-socket transport when nil). Directory traffic
// has no per-link fault semantics, so the dial carries NoLink.
func DialDirectory(tr transport.Transport, addr string) (*RemoteDirectory, error) {
	if tr == nil {
		tr = transport.Default()
	}
	conn, err := tr.DialPacket(addr, transport.NoLink)
	if err != nil {
		return nil, err
	}
	return &RemoteDirectory{addr: addr, timeout: time.Second, conn: conn}, nil
}

// Close releases the socket.
func (r *RemoteDirectory) Close() error { return r.conn.Close() }

// Publish sends one soft-state announcement.
func (r *RemoteDirectory) Publish(ep Endpoint) error {
	parts := "-"
	if len(ep.Partitions) > 0 {
		strs := make([]string, len(ep.Partitions))
		for i, p := range ep.Partitions {
			strs[i] = strconv.FormatUint(uint64(p), 10)
		}
		parts = strings.Join(strs, ",")
	}
	msg := fmt.Sprintf("PUB %d %s %s %s %s",
		ep.NodeID, ep.Service, ep.AccessAddr, ep.LoadAddr, parts)
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.conn.Write([]byte(msg))
	return err
}

// Lookup queries the live endpoints for (service, partition).
func (r *RemoteDirectory) Lookup(service string, partition uint32) ([]Endpoint, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	msg := fmt.Sprintf("GET %s %d", service, partition)
	if _, err := r.conn.Write([]byte(msg)); err != nil {
		return nil, err
	}
	if err := r.conn.SetReadDeadline(time.Now().Add(r.timeout)); err != nil {
		return nil, err
	}
	buf := make([]byte, 64*1024)
	m, err := r.conn.Read(buf)
	if err != nil {
		return nil, err
	}
	payload := strings.TrimSpace(string(buf[:m]))
	if payload == "END" {
		return nil, nil
	}
	var eps []Endpoint
	for _, line := range strings.Split(payload, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] != "EP" {
			return nil, fmt.Errorf("cluster: bad directory reply line %q", line)
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("cluster: bad node id in %q", line)
		}
		eps = append(eps, Endpoint{
			NodeID: id, Service: service,
			AccessAddr: fields[2], LoadAddr: fields[3],
		})
	}
	return eps, nil
}
