package cluster

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"finelb/internal/transport"
)

// DirServer is the cross-process form of the service availability
// subsystem: the paper's "highly available well-known central
// directory" alternative to IP multicast (§3.1). Nodes publish their
// soft state to it over UDP; clients query it over UDP. In-process
// components keep using Directory directly; DirServer wraps one behind
// a wire protocol so lbnode/lbclient in separate processes can share a
// cluster view.
//
// Wire protocol (one datagram per message, UTF-8 text):
//
//	PUB <nodeID> <service> <accessAddr> <loadAddr> <p1,p2,...|->
//	GET <service> <partition>
//
// A GET is answered with one datagram:
//
//	EP <nodeID> <accessAddr> <loadAddr>\n ... (one line per endpoint)
//
// An empty result is an empty datagram payload "END".
type DirServer struct {
	dir  *Directory
	tr   transport.Transport
	conn transport.PacketConn
	wg   sync.WaitGroup
	once sync.Once
}

// StartDirServer binds a datagram endpoint on tr (the default
// real-socket transport when nil) in front of the given directory (a
// fresh one when dir is nil).
func StartDirServer(tr transport.Transport, dir *Directory, ttl time.Duration) (*DirServer, error) {
	if tr == nil {
		tr = transport.Default()
	}
	if dir == nil {
		dir = NewDirectory(ttl)
	}
	conn, err := tr.ListenPacket()
	if err != nil {
		return nil, err
	}
	s := &DirServer{dir: dir, tr: tr, conn: conn}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the server's datagram address.
func (s *DirServer) Addr() string { return s.conn.LocalAddr() }

// Directory returns the backing directory (for inspection in tests).
func (s *DirServer) Directory() *Directory { return s.dir }

// Close stops the server.
func (s *DirServer) Close() error {
	s.once.Do(func() { _ = s.conn.Close() })
	s.wg.Wait()
	return nil
}

var (
	verbPub  = []byte("PUB")
	verbGet  = []byte("GET")
	replyEnd = []byte("END")
)

func (s *DirServer) serve() {
	defer s.wg.Done()
	// One read buffer and one reply buffer for the server's lifetime:
	// directory datagrams are parsed in place and replies appended into
	// out, so steady-state serving allocates only what the directory
	// itself stores (DESIGN.md §12).
	buf := make([]byte, 64*1024)
	out := make([]byte, 0, 4096)
	var eps []Endpoint
	for {
		m, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			return
		}
		out, eps = s.handle(buf[:m], out[:0], eps[:0])
		if len(out) > 0 {
			_, _ = s.conn.WriteTo(out, from)
		}
	}
}

// handle parses one request from msg and appends the reply payload to
// out (empty = no reply). eps is lookup scratch; both are returned so
// the caller can reuse their backing arrays.
func (s *DirServer) handle(msg, out []byte, eps []Endpoint) ([]byte, []Endpoint) {
	fields := bytes.Fields(msg)
	if len(fields) == 0 {
		return out, eps
	}
	switch {
	case bytes.Equal(fields[0], verbPub):
		if len(fields) != 6 {
			return out, eps
		}
		id, err := strconv.Atoi(string(fields[1]))
		if err != nil {
			return out, eps
		}
		ep := Endpoint{
			NodeID: id, Service: string(fields[2]),
			AccessAddr: string(fields[3]), LoadAddr: string(fields[4]),
		}
		if !bytes.Equal(fields[5], []byte("-")) {
			for _, p := range strings.Split(string(fields[5]), ",") {
				v, err := strconv.ParseUint(p, 10, 32)
				if err != nil {
					return out, eps
				}
				ep.Partitions = append(ep.Partitions, uint32(v))
			}
		}
		s.dir.Publish(ep)
		return out, eps
	case bytes.Equal(fields[0], verbGet):
		if len(fields) != 3 {
			return out, eps
		}
		part, err := strconv.ParseUint(string(fields[2]), 10, 32)
		if err != nil {
			return out, eps
		}
		eps = s.dir.LookupAppend(eps, string(fields[1]), uint32(part))
		if len(eps) == 0 {
			return append(out, replyEnd...), eps
		}
		for _, ep := range eps {
			out = append(out, "EP "...)
			out = strconv.AppendInt(out, int64(ep.NodeID), 10)
			out = append(out, ' ')
			out = append(out, ep.AccessAddr...)
			out = append(out, ' ')
			out = append(out, ep.LoadAddr...)
			out = append(out, '\n')
		}
		return out, eps
	default:
		return out, eps
	}
}

// RemoteDirectory is the client stub for a DirServer: it satisfies the
// publish/lookup needs of nodes and clients in other processes.
type RemoteDirectory struct {
	addr    string
	timeout time.Duration

	mu   sync.Mutex
	conn transport.PacketConn
	out  []byte // request encode scratch, reused under mu
	buf  []byte // reply read buffer, reused under mu
}

// DialDirectory connects (in the datagram sense) to a DirServer over
// tr (the default real-socket transport when nil). Directory traffic
// has no per-link fault semantics, so the dial carries NoLink.
func DialDirectory(tr transport.Transport, addr string) (*RemoteDirectory, error) {
	if tr == nil {
		tr = transport.Default()
	}
	conn, err := tr.DialPacket(addr, transport.NoLink)
	if err != nil {
		return nil, err
	}
	return &RemoteDirectory{addr: addr, timeout: time.Second, conn: conn}, nil
}

// Close releases the socket.
func (r *RemoteDirectory) Close() error { return r.conn.Close() }

// Publish sends one soft-state announcement. The request is encoded
// into the stub's reusable scratch buffer, so a node's periodic
// republish loop allocates nothing per announcement.
func (r *RemoteDirectory) Publish(ep Endpoint) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append(r.out[:0], "PUB "...)
	out = strconv.AppendInt(out, int64(ep.NodeID), 10)
	out = append(out, ' ')
	out = append(out, ep.Service...)
	out = append(out, ' ')
	out = append(out, ep.AccessAddr...)
	out = append(out, ' ')
	out = append(out, ep.LoadAddr...)
	out = append(out, ' ')
	if len(ep.Partitions) == 0 {
		out = append(out, '-')
	} else {
		for i, p := range ep.Partitions {
			if i > 0 {
				out = append(out, ',')
			}
			out = strconv.AppendUint(out, uint64(p), 10)
		}
	}
	r.out = out
	_, err := r.conn.Write(out)
	return err
}

// Lookup queries the live endpoints for (service, partition).
func (r *RemoteDirectory) Lookup(service string, partition uint32) ([]Endpoint, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append(r.out[:0], "GET "...)
	out = append(out, service...)
	out = append(out, ' ')
	out = strconv.AppendUint(out, uint64(partition), 10)
	r.out = out
	if _, err := r.conn.Write(out); err != nil {
		return nil, err
	}
	if err := r.conn.SetReadDeadline(time.Now().Add(r.timeout)); err != nil {
		return nil, err
	}
	if r.buf == nil {
		r.buf = make([]byte, 64*1024)
	}
	buf := r.buf
	m, err := r.conn.Read(buf)
	if err != nil {
		return nil, err
	}
	payload := strings.TrimSpace(string(buf[:m]))
	if payload == "END" {
		return nil, nil
	}
	var eps []Endpoint
	for _, line := range strings.Split(payload, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] != "EP" {
			return nil, fmt.Errorf("cluster: bad directory reply line %q", line)
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("cluster: bad node id in %q", line)
		}
		eps = append(eps, Endpoint{
			NodeID: id, Service: service,
			AccessAddr: fields[2], LoadAddr: fields[3],
		})
	}
	return eps, nil
}
