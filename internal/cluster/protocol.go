// Package cluster is the real-socket prototype of the paper's §3:
// a Neptune-lite flat service infrastructure on which the random
// polling load-balancing policy (and the random, round-robin and IDEAL
// baselines) run over genuine UDP and TCP sockets.
//
// Components, mirroring Figure 5 of the paper:
//
//   - Directory: the service availability subsystem — a soft-state
//     publish/subscribe channel. Servers republish their services
//     periodically; entries expire when refreshes stop.
//   - Node: a server node — a TCP service access point feeding a
//     request queue and worker pool, plus a UDP load-index server that
//     answers load inquiries.
//   - Client: a client node — service mapping table, policy-driven
//     server selection, and the polling agent (connected UDP sockets
//     with a discard deadline).
//   - IdealManager: the centralized load-index manager used to emulate
//     the IDEAL policy in §4.
//
// All components bind loopback addresses by default so a 16-server,
// 6-client "cluster" runs inside one process while still paying real
// syscall, socket, and scheduling costs.
package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol magic bytes.
const (
	magicRequest  = 0x53 // 'S': service access request
	magicResponse = 0x52 // 'R': service access response
	magicInquiry  = 0x51 // 'Q': load inquiry (UDP)
	magicLoad     = 0x41 // 'A': load answer (UDP)
	protoVersion  = 1
)

// Status codes in service responses.
const (
	StatusOK        = 0
	StatusOverload  = 1 // request queue full
	StatusNoService = 2 // service/partition not hosted here
	StatusAppError  = 3 // the mounted Handler reported an application error
)

// maxPayload bounds request/response payloads to keep a corrupted
// length field from allocating unbounded memory.
const maxPayload = 1 << 20

// maxServiceName bounds the service-name field.
const maxServiceName = 255

// Request is one service access request as carried on the wire.
type Request struct {
	ID        uint64
	Service   string
	Partition uint32
	// ServiceUs is the emulated service demand in microseconds. The
	// prototype's service processing is a sleeping/spinning
	// microbenchmark, as in the paper (§4).
	ServiceUs uint32
	Payload   []byte
}

// Response is the reply to a Request.
type Response struct {
	ID      uint64
	Status  uint8
	Load    uint32 // server load index when the reply was generated
	Payload []byte
}

// WriteRequest frames req onto w.
func WriteRequest(w *bufio.Writer, req *Request) error {
	if len(req.Service) > maxServiceName {
		return fmt.Errorf("cluster: service name too long (%d)", len(req.Service))
	}
	if len(req.Payload) > maxPayload {
		return fmt.Errorf("cluster: payload too large (%d)", len(req.Payload))
	}
	var hdr [2]byte
	hdr[0], hdr[1] = magicRequest, protoVersion
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], req.ID)
	if _, err := w.Write(buf[:8]); err != nil {
		return err
	}
	if err := w.WriteByte(byte(len(req.Service))); err != nil {
		return err
	}
	if _, err := w.WriteString(req.Service); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], req.Partition)
	binary.LittleEndian.PutUint32(buf[4:8], req.ServiceUs)
	if _, err := w.Write(buf[:8]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(req.Payload)))
	if _, err := w.Write(buf[:4]); err != nil {
		return err
	}
	if _, err := w.Write(req.Payload); err != nil {
		return err
	}
	return w.Flush()
}

// ReadRequest parses one framed request from r.
func ReadRequest(r *bufio.Reader) (*Request, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != magicRequest {
		return nil, fmt.Errorf("cluster: bad request magic 0x%02x", hdr[0])
	}
	if hdr[1] != protoVersion {
		return nil, fmt.Errorf("cluster: unsupported version %d", hdr[1])
	}
	var req Request
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:8]); err != nil {
		return nil, err
	}
	req.ID = binary.LittleEndian.Uint64(buf[:8])
	nameLen, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, err
	}
	req.Service = string(name)
	if _, err := io.ReadFull(r, buf[:8]); err != nil {
		return nil, err
	}
	req.Partition = binary.LittleEndian.Uint32(buf[:4])
	req.ServiceUs = binary.LittleEndian.Uint32(buf[4:8])
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return nil, err
	}
	plen := binary.LittleEndian.Uint32(buf[:4])
	if plen > maxPayload {
		return nil, fmt.Errorf("cluster: payload length %d exceeds limit", plen)
	}
	if plen > 0 {
		req.Payload = make([]byte, plen)
		if _, err := io.ReadFull(r, req.Payload); err != nil {
			return nil, err
		}
	}
	return &req, nil
}

// WriteResponse frames resp onto w.
func WriteResponse(w *bufio.Writer, resp *Response) error {
	if len(resp.Payload) > maxPayload {
		return fmt.Errorf("cluster: payload too large (%d)", len(resp.Payload))
	}
	var hdr [2]byte
	hdr[0], hdr[1] = magicResponse, protoVersion
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], resp.ID)
	if _, err := w.Write(buf[:8]); err != nil {
		return err
	}
	if err := w.WriteByte(resp.Status); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], resp.Load)
	if _, err := w.Write(buf[:4]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(resp.Payload)))
	if _, err := w.Write(buf[:4]); err != nil {
		return err
	}
	if _, err := w.Write(resp.Payload); err != nil {
		return err
	}
	return w.Flush()
}

// ReadResponse parses one framed response from r.
func ReadResponse(r *bufio.Reader) (*Response, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != magicResponse {
		return nil, fmt.Errorf("cluster: bad response magic 0x%02x", hdr[0])
	}
	if hdr[1] != protoVersion {
		return nil, fmt.Errorf("cluster: unsupported version %d", hdr[1])
	}
	var resp Response
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:8]); err != nil {
		return nil, err
	}
	resp.ID = binary.LittleEndian.Uint64(buf[:8])
	status, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	resp.Status = status
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return nil, err
	}
	resp.Load = binary.LittleEndian.Uint32(buf[:4])
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return nil, err
	}
	plen := binary.LittleEndian.Uint32(buf[:4])
	if plen > maxPayload {
		return nil, fmt.Errorf("cluster: payload length %d exceeds limit", plen)
	}
	if plen > 0 {
		resp.Payload = make([]byte, plen)
		if _, err := io.ReadFull(r, resp.Payload); err != nil {
			return nil, err
		}
	}
	return &resp, nil
}

// Load-inquiry datagrams are fixed size: magic(1) + seq(4) [+ load(4)].
const (
	inquirySize = 5
	loadSize    = 9
)

// EncodeInquiry builds a load-inquiry datagram.
//
//lint:noalloc
func EncodeInquiry(buf []byte, seq uint32) []byte {
	buf = buf[:0]
	buf = append(buf, magicInquiry)
	buf = binary.LittleEndian.AppendUint32(buf, seq)
	return buf
}

// Datagram decode errors are fixed sentinels: the poll path discards
// malformed datagrams at line rate, so even the error path must not
// allocate.
var (
	errBadInquiry = errors.New("cluster: bad inquiry datagram")
	errBadLoad    = errors.New("cluster: bad load datagram")
)

// DecodeInquiry parses a load-inquiry datagram.
//
//lint:noalloc
func DecodeInquiry(p []byte) (seq uint32, err error) {
	if len(p) != inquirySize || p[0] != magicInquiry {
		return 0, errBadInquiry
	}
	return binary.LittleEndian.Uint32(p[1:5]), nil
}

// EncodeLoad builds a load-answer datagram.
//
//lint:noalloc
func EncodeLoad(buf []byte, seq, load uint32) []byte {
	buf = buf[:0]
	buf = append(buf, magicLoad)
	buf = binary.LittleEndian.AppendUint32(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, load)
	return buf
}

// DecodeLoad parses a load-answer datagram.
//
//lint:noalloc
func DecodeLoad(p []byte) (seq, load uint32, err error) {
	if len(p) != loadSize || p[0] != magicLoad {
		return 0, 0, errBadLoad
	}
	return binary.LittleEndian.Uint32(p[1:5]), binary.LittleEndian.Uint32(p[5:9]), nil
}
