package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"finelb/internal/transport"
)

// Caller issues service requests to explicit endpoints, bypassing load
// balancing. It is the building block for layers that must talk to a
// *specific* replica — the Neptune replication layer uses it for write
// fan-out, primary forwarding, and recovery pulls.
//
// Caller is safe for concurrent use; each in-flight call holds its own
// pooled connection.
type Caller struct {
	tr      transport.Transport
	timeout time.Duration

	//lint:guards pools, closed
	mu     sync.Mutex
	pools  map[string]*connPool
	closed bool

	reqID atomic.Uint64
}

// NewCaller returns a caller whose calls go over tr (the default
// real-socket transport when nil) and time out after the given
// duration (default 10 s when zero).
func NewCaller(tr transport.Transport, timeout time.Duration) *Caller {
	if tr == nil {
		tr = transport.Default()
	}
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	return &Caller{tr: tr, timeout: timeout, pools: make(map[string]*connPool)}
}

func (c *Caller) pool(addr string) (*connPool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("cluster: caller closed")
	}
	if p, ok := c.pools[addr]; ok {
		return p, nil
	}
	p := newConnPool(c.tr, addr)
	c.pools[addr] = p
	return p, nil
}

// Call sends one request to the endpoint's access address and returns
// the response.
func (c *Caller) Call(ep Endpoint, service string, partition uint32, serviceUs uint32, payload []byte) (*Response, error) {
	p, err := c.pool(ep.AccessAddr)
	if err != nil {
		return nil, err
	}
	req := &Request{
		ID:        c.reqID.Add(1),
		Service:   service,
		Partition: partition,
		ServiceUs: serviceUs,
		Payload:   payload,
	}
	return p.roundTrip(req, c.timeout)
}

// Close releases every pooled connection.
func (c *Caller) Close() {
	c.mu.Lock()
	pools := c.pools
	c.pools = nil
	c.closed = true
	c.mu.Unlock()
	for _, p := range pools {
		p.closeAll()
	}
}
