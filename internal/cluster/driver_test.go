package cluster

import (
	"math"
	"testing"

	"finelb/internal/core"
	"finelb/internal/workload"
)

// fastWorkload returns a Poisson/Exp workload with a short mean service
// time so end-to-end tests stay quick, scaled to the given load.
func fastWorkload(servers int, rho float64) workload.Workload {
	return workload.PoissonExp(2e-3).ScaledTo(servers, rho)
}

func TestRunExperimentValidation(t *testing.T) {
	bad := []ExperimentConfig{
		{},           // no servers
		{Servers: 2}, // no workload
		{Servers: 2, Workload: fastWorkload(2, 0.5), TimeScale: -1},
	}
	for i, cfg := range bad {
		if _, err := RunExperiment(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestRunExperimentRandomSmall(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Servers: 4, Clients: 2,
		Workload: fastWorkload(4, 0.5),
		Policy:   core.NewRandom(),
		Accesses: 800, Seed: 1,
		SlowProb: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	if res.Response.N() != 720 { // 10% warmup excluded
		t.Fatalf("responses %d", res.Response.N())
	}
	// Every access must have landed somewhere.
	var total int64
	for _, v := range res.PerServer {
		total += v
	}
	if total != 800 {
		t.Fatalf("per-server sum %d", total)
	}
	// Mean response at 50% load with 2ms exp service: ~4ms + overheads,
	// certainly below 50ms on loopback.
	if m := res.MeanResponse(); m <= 0 || m > 0.05 {
		t.Fatalf("mean response %.4f out of plausible range", m)
	}
}

func TestRunExperimentPollCollectsPollStats(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Servers: 4, Clients: 2,
		Workload: fastWorkload(4, 0.5),
		Policy:   core.NewPoll(2),
		Accesses: 600, Seed: 2,
		SlowProb: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Polled != 2*600 {
		t.Fatalf("polled %d, want 1200", res.Polled)
	}
	if res.Discarded != 0 {
		t.Fatalf("discarded %d", res.Discarded)
	}
	if res.PollTime.N() == 0 || res.PollRTT.N() == 0 {
		t.Fatal("poll statistics not collected")
	}
	if res.PollTime.Mean() <= 0 || res.PollTime.Mean() > 0.01 {
		t.Fatalf("poll time mean %.6f implausible on loopback", res.PollTime.Mean())
	}
	if res.Describe() == "" {
		t.Fatal("empty description")
	}
}

func TestRunExperimentIdeal(t *testing.T) {
	res, err := RunExperiment(ExperimentConfig{
		Servers: 4, Clients: 2,
		Workload: fastWorkload(4, 0.6),
		Policy:   core.NewIdeal(),
		Accesses: 600, Seed: 3,
		SlowProb: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	// The manager must spread load evenly: no server more than twice
	// the per-server mean.
	mean := 600.0 / 4
	for i, v := range res.PerServer {
		if float64(v) > 2*mean || v == 0 {
			t.Fatalf("server %d got %d accesses (%v)", i, v, res.PerServer)
		}
	}
}

func TestRunExperimentPollBeatsRandomUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load comparison needs a few seconds")
	}
	// At 90% load the paper's central claim must hold end-to-end on the
	// real prototype: poll-2 clearly beats random.
	base := ExperimentConfig{
		Servers: 8, Clients: 3,
		Workload: fastWorkload(8, 0.9),
		Accesses: 6000, Seed: 4,
		SlowProb: -1,
	}
	randomCfg := base
	randomCfg.Policy = core.NewRandom()
	pollCfg := base
	pollCfg.Policy = core.NewPoll(2)
	randomRes, err := RunExperiment(randomCfg)
	if err != nil {
		t.Fatal(err)
	}
	pollRes, err := RunExperiment(pollCfg)
	if err != nil {
		t.Fatal(err)
	}
	if pollRes.MeanResponse() >= randomRes.MeanResponse() {
		t.Fatalf("poll2 (%.4f) not better than random (%.4f) at 90%%",
			pollRes.MeanResponse(), randomRes.MeanResponse())
	}
}

func TestRunExperimentTimeScale(t *testing.T) {
	// TimeScale compresses wall time without changing relative load.
	res, err := RunExperiment(ExperimentConfig{
		Servers: 2, Clients: 1,
		Workload: workload.PoissonExp(20e-3).ScaledTo(2, 0.5),
		Policy:   core.NewRandom(),
		Accesses: 300, Seed: 5, TimeScale: 0.1,
		SlowProb: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 300 accesses of (scaled) 2ms service at 50% on 2 servers spans
	// ~0.6s of workload time.
	if res.WallTime.Seconds() > 5 {
		t.Fatalf("scaled run took %v", res.WallTime)
	}
	if res.MeanResponse() > 0.05 {
		t.Fatalf("scaled mean response %.4f", res.MeanResponse())
	}
}

func TestStartClusterIncompleteTables(t *testing.T) {
	// A zero-server cluster cannot satisfy the readiness wait.
	cl, err := StartCluster(ExperimentConfig{Servers: 0, Clients: 1, Policy: core.NewRandom()})
	if err == nil {
		cl.Close()
		// Zero servers means tables are trivially "complete"; accept
		// either behaviour but ensure no panic and cleanup works.
	}
}

func TestRunExperimentDeterministicSchedule(t *testing.T) {
	// Same seed produces the same access schedule (wall-clock noise will
	// differ, but the per-server totals under round-robin are fixed).
	cfg := ExperimentConfig{
		Servers: 3, Clients: 1,
		Workload: fastWorkload(3, 0.3),
		Policy:   core.NewRoundRobin(),
		Accesses: 300, Seed: 6,
		SlowProb: -1,
	}
	a, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerServer {
		if math.Abs(float64(a.PerServer[i]-b.PerServer[i])) > 0 {
			t.Fatalf("round-robin distribution diverged: %v vs %v", a.PerServer, b.PerServer)
		}
	}
}
