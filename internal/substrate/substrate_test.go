package substrate

import (
	"testing"
	"time"

	"finelb/internal/core"
	"finelb/internal/faults"
	"finelb/internal/workload"
)

func TestSimRun(t *testing.T) {
	w := workload.PoissonExp(0.05).ScaledTo(8, 0.6)
	res, err := Sim{}.Run(RunSpec{
		Servers: 8, Workload: w, Policy: core.NewPoll(2),
		Accesses: 5000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Substrate != "sim" {
		t.Errorf("Substrate = %q", res.Substrate)
	}
	if res.MeanResponse <= 0 || res.Responses == 0 {
		t.Errorf("no responses measured: %+v", res)
	}
	if res.P50Response > res.P99Response {
		t.Errorf("p50 %v above p99 %v", res.P50Response, res.P99Response)
	}
	// Poll 2 sends two inquiries per access and, healthy, hears back
	// from both.
	if res.PollRequests == 0 || res.PollResponses != res.PollRequests {
		t.Errorf("poll counters: %d requests, %d responses", res.PollRequests, res.PollResponses)
	}
	if res.Lost != 0 || res.Retries != 0 {
		t.Errorf("healthy run lost=%d retries=%d", res.Lost, res.Retries)
	}

	if res.Metrics == nil {
		t.Fatal("RunResult.Metrics missing")
	}
	if got := res.Metrics.Value("poll_requests_total"); got != res.PollRequests {
		t.Errorf("metric poll_requests_total = %d, counter = %d", got, res.PollRequests)
	}

	// Determinism across the substrate boundary: same spec, same result
	// (Metrics compared by digest — the snapshot pointer itself differs).
	again, err := Sim{}.Run(RunSpec{
		Servers: 8, Workload: w, Policy: core.NewPoll(2),
		Accesses: 5000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := *again, *res
	a.Metrics, b.Metrics = nil, nil
	if a != b {
		t.Errorf("same spec diverged:\n%+v\nvs\n%+v", a, b)
	}
	if again.Metrics.Digest() != res.Metrics.Digest() {
		t.Error("same sim spec produced different metric snapshots")
	}
}

func TestSimRunRejectsBadSpec(t *testing.T) {
	_, err := Sim{}.Run(RunSpec{Servers: -1})
	if err == nil {
		t.Fatal("negative server count accepted")
	}
}

func TestProtoRun(t *testing.T) {
	if testing.Short() {
		t.Skip("prototype run opens real sockets and takes seconds")
	}
	w := workload.PoissonExp(0.05).ScaledTo(4, 0.5)
	res, err := Proto{}.Run(RunSpec{
		Servers: 4, Workload: w, Policy: core.NewPoll(2),
		Accesses: 400, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Substrate != "proto" {
		t.Errorf("Substrate = %q", res.Substrate)
	}
	if res.MeanResponse <= 0 || res.Responses == 0 {
		t.Errorf("no responses measured: %+v", res)
	}
	if res.PollRequests == 0 {
		t.Error("polling policy sent no inquiries")
	}
}

func TestProtoNames(t *testing.T) {
	if got := (Proto{}).Name(); got != "proto" {
		t.Errorf("Proto{}.Name() = %q", got)
	}
	if got := (Proto{Transport: "mem"}).Name(); got != "proto-mem" {
		t.Errorf("mem name = %q", got)
	}
}

func TestProtoRejectsUnknownTransport(t *testing.T) {
	w := workload.PoissonExp(0.005).ScaledTo(2, 0.5)
	_, err := Proto{Transport: "carrier-pigeon"}.Run(RunSpec{
		Servers: 2, Workload: w, Policy: core.NewRandom(), Accesses: 10, Seed: 1,
	})
	if err == nil {
		t.Fatal("unknown transport accepted")
	}
}

func TestProtoMemRun(t *testing.T) {
	// The in-memory fabric needs no file descriptors, so this runs even
	// in -short mode where the socket-based prototype test is skipped.
	w := workload.PoissonExp(0.005).ScaledTo(2, 0.5)
	res, err := Proto{Transport: "mem", TimeScale: 0.5}.Run(RunSpec{
		Servers: 2, Workload: w, Policy: core.NewPoll(2),
		Accesses: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Substrate != "proto-mem" {
		t.Errorf("Substrate = %q", res.Substrate)
	}
	if res.MeanResponse <= 0 || res.Responses == 0 {
		t.Errorf("no responses measured: %+v", res)
	}
	if res.PollRequests == 0 || res.PollResponses == 0 {
		t.Errorf("poll counters: %d requests, %d responses", res.PollRequests, res.PollResponses)
	}
}

// counts projects a RunResult onto its timing-independent message and
// failure counters — the fields two identical in-memory runs must
// reproduce exactly, however the scheduler interleaves them.
func counts(r *RunResult) [6]int64 {
	return [6]int64{r.PollRequests, r.PollResponses, r.PollsDiscarded, r.PollsLate, r.Lost, r.Retries}
}

func TestProtoMemDeterministicUnderFaults(t *testing.T) {
	// Loss 1.0 on every client→server poll link makes every inquiry's
	// fate fixed: each access burns the full poll round plus one retry,
	// discards everything, and falls back to random selection. With
	// quarantine disabled (its expiry is wall-clock driven) the message
	// counts are a pure function of the spec, so two runs must agree
	// bit-for-bit on every counter — the property that makes the mem
	// transport useful for regression-testing fault handling.
	w := workload.PoissonExp(0.005).ScaledTo(2, 0.5)
	spec := RunSpec{
		Servers: 2, Workload: w,
		Policy:   core.NewPollDiscard(2, 5*time.Millisecond),
		Accesses: 100, Seed: 7,
		Faults: &faults.Schedule{
			Seed:  7,
			Links: []faults.LinkRule{{Client: -1, Server: -1, Loss: 1}},
		},
		QuarantineAfter: -1,
	}
	sub := Proto{Transport: "mem", TimeScale: 0.5}

	first, err := sub.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sub.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if counts(first) != counts(second) {
		t.Errorf("identical mem runs diverged:\n%+v\nvs\n%+v", counts(first), counts(second))
	}

	// The counts are also predictable in closed form: poll size 2 per
	// round, one dry-round retry per access, everything discarded.
	if first.PollResponses != 0 {
		t.Errorf("total loss still produced %d answers", first.PollResponses)
	}
	wantPolled := int64(spec.Accesses) * 2 * 2 // 2 inquiries × (1 round + 1 retry)
	if first.PollRequests != wantPolled || first.PollsDiscarded != wantPolled {
		t.Errorf("polled %d discarded %d, want %d each",
			first.PollRequests, first.PollsDiscarded, wantPolled)
	}
	if first.Lost != 0 {
		t.Errorf("lost %d accesses; the access path carries no faults", first.Lost)
	}
	if first.Retries < int64(spec.Accesses) {
		t.Errorf("retries %d, want at least one dry-round retry per access", first.Retries)
	}
}
