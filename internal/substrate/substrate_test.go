package substrate

import (
	"testing"

	"finelb/internal/core"
	"finelb/internal/workload"
)

func TestSimRun(t *testing.T) {
	w := workload.PoissonExp(0.05).ScaledTo(8, 0.6)
	res, err := Sim{}.Run(RunSpec{
		Servers: 8, Workload: w, Policy: core.NewPoll(2),
		Accesses: 5000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Substrate != "sim" {
		t.Errorf("Substrate = %q", res.Substrate)
	}
	if res.MeanResponse <= 0 || res.Responses == 0 {
		t.Errorf("no responses measured: %+v", res)
	}
	if res.P50Response > res.P99Response {
		t.Errorf("p50 %v above p99 %v", res.P50Response, res.P99Response)
	}
	// Poll 2 sends two inquiries per access and, healthy, hears back
	// from both.
	if res.PollRequests == 0 || res.PollResponses != res.PollRequests {
		t.Errorf("poll counters: %d requests, %d responses", res.PollRequests, res.PollResponses)
	}
	if res.Lost != 0 || res.Retries != 0 {
		t.Errorf("healthy run lost=%d retries=%d", res.Lost, res.Retries)
	}

	// Determinism across the substrate boundary: same spec, same result.
	again, err := Sim{}.Run(RunSpec{
		Servers: 8, Workload: w, Policy: core.NewPoll(2),
		Accesses: 5000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if *again != *res {
		t.Errorf("same spec diverged:\n%+v\nvs\n%+v", again, res)
	}
}

func TestSimRunRejectsBadSpec(t *testing.T) {
	_, err := Sim{}.Run(RunSpec{Servers: -1})
	if err == nil {
		t.Fatal("negative server count accepted")
	}
}

func TestProtoRun(t *testing.T) {
	if testing.Short() {
		t.Skip("prototype run opens real sockets and takes seconds")
	}
	w := workload.PoissonExp(0.05).ScaledTo(4, 0.5)
	res, err := Proto{}.Run(RunSpec{
		Servers: 4, Workload: w, Policy: core.NewPoll(2),
		Accesses: 400, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Substrate != "proto" {
		t.Errorf("Substrate = %q", res.Substrate)
	}
	if res.MeanResponse <= 0 || res.Responses == 0 {
		t.Errorf("no responses measured: %+v", res)
	}
	if res.PollRequests == 0 {
		t.Error("polling policy sent no inquiries")
	}
}
