package substrate

import (
	"testing"
	"time"

	"finelb/internal/membership"
	"finelb/internal/obs"
)

// TestInertMembershipBitIdentical pins the elastic seam's inert
// contract at the substrate layer: a run whose spec carries an empty
// membership schedule and a zero autoscaler config must freeze exactly
// the same metric snapshot as a run with no membership fields at all,
// on both substrates. The simulator compares full digests (every value
// is simulated-time shaped); the prototype mem run compares the
// deterministic projection.
func TestInertMembershipBitIdentical(t *testing.T) {
	sim, simSpec := goldenSimSpec()
	fixed, err := sim.Run(simSpec)
	if err != nil {
		t.Fatal(err)
	}
	simSpec.Membership = &membership.Schedule{}
	simSpec.Autoscaler = &membership.AutoscalerConfig{}
	inert, err := sim.Run(simSpec)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := fixed.Metrics.Digest(), inert.Metrics.Digest(); a != b {
		t.Errorf("sim: inert membership changed the metric snapshot:\n%s\nvs\n%s", a, b)
	}
	if fixed.EventsFired != inert.EventsFired {
		t.Errorf("sim: inert membership changed the event count: %d vs %d",
			fixed.EventsFired, inert.EventsFired)
	}
	if inert.Joins != 0 || inert.Drains != 0 || inert.Leaves != 0 {
		t.Errorf("inert run reported churn: %d/%d/%d", inert.Joins, inert.Drains, inert.Leaves)
	}
	if inert.FinalPool != simSpec.Servers || inert.PeakPool != simSpec.Servers {
		t.Errorf("inert pool %d/%d, want %d", inert.FinalPool, inert.PeakPool, simSpec.Servers)
	}

	mem, memSpec := goldenMemSpec()
	fixedMem, err := mem.Run(memSpec)
	if err != nil {
		t.Fatal(err)
	}
	memSpec.Membership = &membership.Schedule{}
	memSpec.Autoscaler = &membership.AutoscalerConfig{}
	inertMem, err := mem.Run(memSpec)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := fixedMem.Metrics.DeterministicDigest(), inertMem.Metrics.DeterministicDigest(); a != b {
		t.Errorf("proto-mem: inert membership changed the deterministic snapshot:\n%s\nvs\n%s", a, b)
	}
}

// TestSimElasticThroughSubstrate drives one elastic run through the
// substrate seam and checks the churn measurements surface in
// RunResult.
func TestSimElasticThroughSubstrate(t *testing.T) {
	sim, spec := goldenSimSpec()
	spec.Membership = &membership.Schedule{Events: []membership.Event{
		{At: 2 * time.Second, Node: 8, Kind: membership.Join},
		{At: 10 * time.Second, Node: 8, Kind: membership.Drain},
		{At: 20 * time.Second, Node: 8, Kind: membership.Leave},
	}}
	res, err := sim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Joins != 1 || res.Drains != 1 || res.Leaves != 1 {
		t.Fatalf("churn %d/%d/%d, want 1/1/1", res.Joins, res.Drains, res.Leaves)
	}
	if res.FinalPool != spec.Servers || res.PeakPool != spec.Servers+1 {
		t.Fatalf("pool final=%d peak=%d", res.FinalPool, res.PeakPool)
	}
	if res.Lost != 0 {
		t.Fatalf("lost %d accesses across a graceful scale cycle", res.Lost)
	}
	if res.Metrics.Value(obs.MetricMembershipJoins) != 1 {
		t.Fatal("membership metrics missing from elastic snapshot")
	}
}

// TestProtoRejectsSpeedFactors pins the asymmetry: server speed is a
// simulator concept, and the prototype refuses rather than silently
// ignores it.
func TestProtoRejectsSpeedFactors(t *testing.T) {
	_, spec := goldenMemSpec()
	spec.SpeedFactors = []float64{2, 1}
	if _, err := (Proto{Transport: "mem"}).Run(spec); err == nil {
		t.Fatal("proto accepted SpeedFactors")
	}
	spec.SpeedFactors = nil
	spec.Servers = 2
	// The simulator accepts them (validated against Servers).
	spec2 := spec
	spec2.SpeedFactors = []float64{2, 0.5}
	if _, err := (Sim{}).Run(spec2); err != nil {
		t.Fatalf("sim rejected matching SpeedFactors: %v", err)
	}
}
