package substrate

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"finelb/internal/core"
	"finelb/internal/faults"
	"finelb/internal/workload"
)

// The golden-metrics harness pins the obs catalog the same way
// simcluster's golden_test.go pins the simulator's results: digests of
// known-deterministic runs are committed to testdata and every future
// run must reproduce them bit for bit. Regenerate deliberately with
//
//	go test ./internal/substrate -run TestGoldenMetricsDigests -update-metrics
//
// only when an intentional metric or model change is being made, and
// say so in the commit message.
var updateMetrics = flag.Bool("update-metrics", false, "rewrite testdata/golden_metrics.json from the current runners")

const goldenMetricsPath = "testdata/golden_metrics.json"

// metricsGolden is one committed digest. Scope names the projection:
// "full" pins every metric (simulator runs, where even latency
// histograms are functions of simulated time), "deterministic" pins
// Snapshot.DeterministicDigest (prototype mem runs, where wall-clock
// timing varies but message and failure counters must not).
type metricsGolden struct {
	Case   string `json:"case"`
	Scope  string `json:"scope"`
	Digest string `json:"digest"`
}

// goldenMemSpec is the fully deterministic prototype scenario of
// TestProtoMemDeterministicUnderFaults: total poll loss with quarantine
// disabled makes every counter a pure function of the spec.
func goldenMemSpec() (Substrate, RunSpec) {
	w := workload.PoissonExp(0.005).ScaledTo(2, 0.5)
	return Proto{Transport: "mem", TimeScale: 0.5}, RunSpec{
		Servers: 2, Workload: w,
		Policy:   core.NewPollDiscard(2, 5*time.Millisecond),
		Accesses: 100, Seed: 7,
		Faults: &faults.Schedule{
			Seed:  7,
			Links: []faults.LinkRule{{Client: -1, Server: -1, Loss: 1}},
		},
		QuarantineAfter: -1,
	}
}

func goldenSimSpec() (Substrate, RunSpec) {
	w := workload.PoissonExp(0.05).ScaledTo(8, 0.6)
	return Sim{}, RunSpec{
		Servers: 8, Workload: w, Policy: core.NewPoll(2),
		Accesses: 5000, Seed: 1,
	}
}

func goldenMetricsRun(t *testing.T) []metricsGolden {
	t.Helper()
	sim, simSpec := goldenSimSpec()
	simRes, err := sim.Run(simSpec)
	if err != nil {
		t.Fatal(err)
	}
	mem, memSpec := goldenMemSpec()
	memRes, err := mem.Run(memSpec)
	if err != nil {
		t.Fatal(err)
	}
	return []metricsGolden{
		{Case: "sim-poissonexp-poll2", Scope: "full", Digest: simRes.Metrics.Digest()},
		{Case: "proto-mem-total-loss", Scope: "deterministic", Digest: memRes.Metrics.DeterministicDigest()},
	}
}

// TestGoldenMetricsDigests compares the current runners' metric
// snapshots against the committed digests.
func TestGoldenMetricsDigests(t *testing.T) {
	got := goldenMetricsRun(t)
	if *updateMetrics {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenMetricsPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenMetricsPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d digests", goldenMetricsPath, len(got))
		return
	}

	buf, err := os.ReadFile(goldenMetricsPath)
	if err != nil {
		t.Fatalf("missing golden metric digests (run with -update-metrics to capture): %v", err)
	}
	var want []metricsGolden
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d digests, harness produced %d", len(want), len(got))
	}
	for i, w := range want {
		g := got[i]
		if g != w {
			t.Errorf("case %d: metric snapshot drifted\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// TestProtoMemMetricsBitIdentical is the regression half of the golden
// satellite: two identical proto-mem runs must freeze bit-identical
// deterministic metric snapshots, independent of any committed file.
func TestProtoMemMetricsBitIdentical(t *testing.T) {
	sub, spec := goldenMemSpec()
	first, err := sub.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sub.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Metrics == nil || second.Metrics == nil {
		t.Fatal("proto-mem run produced no metrics snapshot")
	}
	if a, b := first.Metrics.DeterministicDigest(), second.Metrics.DeterministicDigest(); a != b {
		t.Errorf("identical mem runs froze different metric snapshots:\n%s\nvs\n%s", a, b)
	}
}

// TestSubstratesEmitSameMetricNames pins the cross-substrate contract
// stated on RunResult.Metrics: both substrates resolve the shared
// obs.RunMetrics catalog, so a snapshot from either carries exactly the
// same metric name set.
func TestSubstratesEmitSameMetricNames(t *testing.T) {
	sim, simSpec := goldenSimSpec()
	simRes, err := sim.Run(simSpec)
	if err != nil {
		t.Fatal(err)
	}
	mem, memSpec := goldenMemSpec()
	memRes, err := mem.Run(memSpec)
	if err != nil {
		t.Fatal(err)
	}
	a, b := simRes.Metrics.Names(), memRes.Metrics.Names()
	if len(a) == 0 {
		t.Fatal("empty metric name set")
	}
	if len(a) != len(b) {
		t.Fatalf("name sets differ: sim has %d names, proto-mem %d\nsim: %v\nproto-mem: %v",
			len(a), len(b), a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("name %d differs: sim %q vs proto-mem %q", i, a[i], b[i])
		}
	}
}
