// Package substrate abstracts "a way to execute one load-balancing
// run" so experiment drivers can be written once and executed on both
// of the repository's execution substrates: the discrete-event
// simulator (internal/simcluster) and the real-socket prototype
// (internal/cluster).
//
// The paper's central comparison (simulation Figure 4 against prototype
// Figure 6) only means something because the same policy code runs on
// both substrates; this package makes that symmetry explicit. A RunSpec
// is the substrate-independent description of one run, and a RunResult
// carries the measurements both substrates share — response-time
// summary, polling cost, message counts, losses, retries — so a driver
// parameterized by Substrate produces directly comparable cells.
package substrate

import (
	"fmt"
	"time"

	"finelb/internal/cluster"
	"finelb/internal/core"
	"finelb/internal/faults"
	"finelb/internal/membership"
	"finelb/internal/obs"
	"finelb/internal/simcluster"
	"finelb/internal/transport"
	"finelb/internal/workload"
)

// RunSpec describes one run in substrate-independent terms.
type RunSpec struct {
	Servers int
	Clients int // decision-making client nodes (default 6, as in the paper)
	// Workload must already be scaled (workload.Workload.ScaledTo) to
	// the target per-server load for Servers servers.
	Workload workload.Workload
	Policy   core.Policy

	// Accesses is the number of service accesses to issue.
	Accesses int
	// Seed drives every random stream of the run.
	Seed uint64

	// Faults, when non-nil and active, injects the schedule into the
	// run on either substrate (see internal/faults).
	Faults *faults.Schedule
	// Membership, when active, replays the elastic-membership schedule
	// (internal/membership) on either substrate: the simulator on its
	// event clock, the prototype on the scaled wall clock. Inert
	// schedules leave both substrates bit-identical to a fixed pool.
	Membership *membership.Schedule
	// Autoscaler, when active, runs the shared load-threshold autoscaler
	// on either substrate.
	Autoscaler *membership.AutoscalerConfig
	// SpeedFactors gives each server a heterogeneous work rate on the
	// simulator (see simcluster.Config.SpeedFactors). The prototype
	// emulates service times by sleeping, so it cannot honor factors
	// and rejects a spec that sets them.
	SpeedFactors []float64
	// DirTTL overrides the prototype directory's soft-state TTL (fault
	// runs use a short TTL so crashed nodes expire quickly). The
	// simulator has no directory and ignores it.
	DirTTL time.Duration
	// QuarantineAfter tunes the prototype clients' consecutive-silence
	// quarantine (zero keeps the default; negative disables it, which
	// deterministic in-memory runs need because quarantine expiry is
	// wall-clock driven). The simulator ignores it.
	QuarantineAfter int
}

// RunResult carries the measurements common to both substrates, in
// seconds where a unit applies.
type RunResult struct {
	Substrate string // "sim" or "proto"

	MeanResponse float64
	P50Response  float64
	P95Response  float64
	P99Response  float64
	Responses    int64 // post-warmup accesses measured

	// MeanPollTime is the mean per-access time spent acquiring load
	// information (zero for non-polling policies).
	MeanPollTime float64

	// PollRequests / PollResponses / PollsDiscarded count the load
	// inquiries sent, the answers used, and the answers abandoned.
	PollRequests   int64
	PollResponses  int64
	PollsDiscarded int64
	// PollsLate counts the subset of PollsDiscarded whose answer
	// eventually arrived after the discard deadline (§3.2's slow polls,
	// as opposed to datagrams lost outright). On the simulator it is
	// derived from the run's poll_late_total metric.
	PollsLate int64

	// Lost counts accesses that never produced a response despite
	// retries; Retries counts poll re-rounds plus access re-attempts.
	Lost    int64
	Retries int64

	// EventsFired counts discrete events the simulator executed for the
	// run — the unit the simscale throughput benchmark is denominated
	// in. Zero on the prototype substrate, which has no event loop.
	EventsFired uint64

	// Elastic membership (zero churn on fixed-pool runs, where
	// FinalPool = PeakPool = Servers): pool transitions applied and the
	// routable pool size at the end of the run and at its peak.
	Joins, Drains, Leaves int64
	FinalPool, PeakPool   int

	// Metrics is the run's end-of-run snapshot of the shared
	// obs.RunMetrics catalog. Both substrates emit the same metric name
	// set, which is what makes their snapshots directly comparable.
	Metrics *obs.Snapshot
}

// Substrate executes runs. Implementations must be safe to reuse
// across runs (they carry no per-run state).
type Substrate interface {
	// Name identifies the substrate in tables and logs ("sim", "proto").
	Name() string
	// Run executes one run described by spec.
	Run(spec RunSpec) (*RunResult, error)
}

// Sim is the discrete-event simulator substrate (simcluster.Run):
// deterministic, fast, with the paper's measured network constants.
type Sim struct{}

// Name implements Substrate.
func (Sim) Name() string { return "sim" }

// Run implements Substrate.
func (Sim) Run(spec RunSpec) (*RunResult, error) {
	res, err := simcluster.Run(simcluster.Config{
		Servers:      spec.Servers,
		Clients:      spec.Clients,
		Workload:     spec.Workload,
		Policy:       spec.Policy,
		Accesses:     spec.Accesses,
		Seed:         spec.Seed,
		Faults:       spec.Faults,
		Membership:   spec.Membership,
		Autoscaler:   spec.Autoscaler,
		SpeedFactors: spec.SpeedFactors,
	})
	if err != nil {
		return nil, fmt.Errorf("substrate sim: %w", err)
	}
	return &RunResult{
		Substrate:      "sim",
		MeanResponse:   res.Response.Mean(),
		P50Response:    res.Response.Percentile(0.50),
		P95Response:    res.Response.Percentile(0.95),
		P99Response:    res.Response.Percentile(0.99),
		Responses:      res.Response.N(),
		MeanPollTime:   res.PollTime.Mean(),
		PollRequests:   res.Messages.PollRequests,
		PollResponses:  res.Messages.PollResponses,
		PollsDiscarded: res.Messages.PollsDiscarded,
		PollsLate:      res.Metrics.Value(obs.MetricPollLate),
		Lost:           res.Lost,
		Retries:        res.Retries,
		EventsFired:    res.EventsFired,
		Joins:          res.Joins,
		Drains:         res.Drains,
		Leaves:         res.Leaves,
		FinalPool:      res.FinalPool,
		PeakPool:       res.PeakPool,
		Metrics:        res.Metrics,
	}, nil
}

// Proto is the real-message prototype substrate (cluster.RunExperiment):
// an in-process Neptune-lite cluster exchanging real protocol messages,
// with the §3.2 contention model active. The zero value runs over
// loopback UDP/TCP exactly as before the transport seam existed.
type Proto struct {
	// Transport selects the messaging substrate: "" or "net" for real
	// loopback sockets, "mem" for the deterministic in-memory fabric
	// (transport.Mem, seeded from each spec's Seed).
	Transport string
	// TimeScale shrinks (<1) or stretches (>1) every arrival interval
	// and service time without changing the load level; zero means 1.
	// In-memory runs typically compress time, since they pay no kernel
	// scheduling cost.
	TimeScale float64
}

// Name implements Substrate.
func (p Proto) Name() string {
	if p.Transport == "mem" {
		return "proto-mem"
	}
	return "proto"
}

// Run implements Substrate.
func (p Proto) Run(spec RunSpec) (*RunResult, error) {
	if len(spec.SpeedFactors) > 0 {
		return nil, fmt.Errorf("substrate %s: SpeedFactors are simulator-only (the prototype emulates service time, not server speed)", p.Name())
	}
	var tr transport.Transport
	switch p.Transport {
	case "", "net":
		// nil lets the cluster layer default to transport.Net.
	case "mem":
		tr = transport.NewMem(transport.MemConfig{Seed: spec.Seed})
	default:
		return nil, fmt.Errorf("substrate proto: unknown transport %q", p.Transport)
	}
	res, err := cluster.RunExperiment(cluster.ExperimentConfig{
		Servers:         spec.Servers,
		Clients:         spec.Clients,
		Workload:        spec.Workload,
		Policy:          spec.Policy,
		Transport:       tr,
		TimeScale:       p.TimeScale,
		Accesses:        spec.Accesses,
		Seed:            spec.Seed,
		Faults:          spec.Faults,
		Membership:      spec.Membership,
		Autoscaler:      spec.Autoscaler,
		DirTTL:          spec.DirTTL,
		QuarantineAfter: spec.QuarantineAfter,
	})
	if err != nil {
		return nil, fmt.Errorf("substrate %s: %w", p.Name(), err)
	}
	return &RunResult{
		Substrate:      p.Name(),
		MeanResponse:   res.Response.Mean(),
		P50Response:    res.Response.Percentile(0.50),
		P95Response:    res.Response.Percentile(0.95),
		P99Response:    res.Response.Percentile(0.99),
		Responses:      res.Response.N(),
		MeanPollTime:   res.PollTime.Mean(),
		PollRequests:   res.Polled,
		PollResponses:  res.Answered,
		PollsDiscarded: res.Discarded,
		PollsLate:      res.LateAnswers,
		Lost:           res.Lost,
		Retries:        res.Retries,
		Joins:          res.Joins,
		Drains:         res.Drains,
		Leaves:         res.Leaves,
		FinalPool:      res.FinalPool,
		PeakPool:       res.PeakPool,
		Metrics:        res.Metrics,
	}, nil
}
