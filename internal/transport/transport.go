// Package transport abstracts everything the prototype does with the
// network — UDP load inquiries, TCP service accesses, UDP directory
// traffic — behind a small set of interfaces so the same cluster code
// runs over two substrates:
//
//   - Net: real loopback sockets, the paper's Figure 6 conditions.
//   - Mem: an in-process channel fabric with a seedable latency/loss
//     model and no file descriptors, for deterministic fast runs and
//     clusters beyond OS socket limits.
//
// Addresses are plain strings in whatever format the transport issues
// ("127.0.0.1:53412" for Net, "mem:7" for Mem); components treat them
// as opaque tokens obtained from LocalAddr/Addr and passed back to
// Dial/DialPacket/WriteTo.
//
// The transport seam is also where the fault-injection subsystem's
// per-link rules are replayed: see WithFaults.
package transport

import (
	"net"
	"time"
)

// Link identifies the logical client→server edge a dialed packet
// connection belongs to, so injected per-link faults
// (faults.LinkRule) can be replayed at the transport seam. Use NoLink
// for traffic with no per-link fault semantics (directory lookups).
type Link struct {
	Client int
	Server int
}

// NoLink marks a packet connection as exempt from link-fault replay.
var NoLink = Link{Client: -1, Server: -1}

// real reports whether the link names an actual client→server edge.
func (l Link) real() bool { return l.Client >= 0 && l.Server >= 0 }

// PacketConn is a datagram endpoint (UDP-like: unreliable, unordered
// in principle, message-preserving). A listening conn (ListenPacket)
// uses ReadFrom/WriteTo with peer addresses; a dialed conn
// (DialPacket) uses Read/Write against its fixed peer.
type PacketConn interface {
	// ReadFrom receives one datagram and the sender's address.
	ReadFrom(p []byte) (n int, from string, err error)
	// WriteTo sends one datagram to addr. Sends to unknown or dead
	// addresses are silently dropped, as UDP drops them.
	WriteTo(p []byte, addr string) (int, error)
	// Read receives one datagram on a dialed connection.
	Read(p []byte) (int, error)
	// Write sends one datagram to the dialed peer.
	Write(p []byte) (int, error)
	// LocalAddr is the address peers send datagrams back to.
	LocalAddr() string
	// SetReadDeadline bounds future Read/ReadFrom calls; reads past
	// the deadline fail with a timeout error (os.ErrDeadlineExceeded).
	SetReadDeadline(t time.Time) error
	Close() error
}

// PacketHandler processes one received datagram. The payload is only
// valid for the duration of the call — implementations must copy
// anything they keep — and the handler must not block: on transports
// that deliver synchronously it runs on the sender's goroutine.
type PacketHandler func(p []byte, from string)

// HandlerPacketConn is an optional PacketConn capability: a receiver
// can install a handler invoked per datagram instead of parking a
// goroutine in Read. On the in-memory fabric an undelayed datagram
// then flows sender → handler synchronously — no queue, no copy, no
// goroutine wakeup — which is what lets a whole poll round run on the
// inquiring client's goroutine (DESIGN.md §12). Transports without
// the capability (real sockets) simply don't implement it, and
// callers fall back to a read loop. SetPacketHandler reports whether
// the handler was installed; install it before any traffic arrives,
// because datagrams already queued for Read stay queued.
type HandlerPacketConn interface {
	SetPacketHandler(h PacketHandler) bool
}

// Listener accepts stream connections (TCP-like: reliable, ordered
// byte streams satisfying net.Conn).
type Listener interface {
	Accept() (net.Conn, error)
	// Addr is the address Dial reaches this listener at.
	Addr() string
	Close() error
}

// Transport is one messaging substrate: it can open stream and
// datagram endpoints and connect to them by address. Implementations
// are safe for concurrent use by any number of nodes and clients.
type Transport interface {
	// Listen opens a stream listener on a fresh address.
	Listen() (Listener, error)
	// Dial connects to a stream listener. A non-positive timeout means
	// no bound.
	Dial(addr string, timeout time.Duration) (net.Conn, error)
	// ListenPacket opens a datagram endpoint on a fresh address.
	ListenPacket() (PacketConn, error)
	// DialPacket opens a datagram endpoint connected to addr, so Write
	// needs no address and Read sees only that peer's datagrams. link
	// names the logical edge for fault replay (NoLink when none).
	DialPacket(addr string, link Link) (PacketConn, error)
}

// Default returns the transport used when a component's config leaves
// the choice empty: real loopback sockets, preserving the prototype's
// original behavior.
func Default() Transport { return Net{} }
