package transport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"finelb/internal/stats"
)

// MemConfig parameterizes the in-memory fabric's ambient network
// model. The model applies to datagrams (the unreliable plane: load
// inquiries, directory traffic); streams are reliable in-process
// pipes with no modeled latency, so access response times are
// dominated by service time exactly as on loopback TCP. Injected
// per-link faults are a separate mechanism layered on top
// (WithFaults) and work identically on both transports.
type MemConfig struct {
	// Seed drives the loss and jitter draws; the same seed and the
	// same send sequence replay the same deliveries.
	Seed uint64
	// Latency is the base one-way datagram delay (default 0: delivery
	// on the sender's goroutine).
	Latency time.Duration
	// Jitter adds a uniform extra delay in [0, Jitter) per datagram.
	Jitter time.Duration
	// Loss is the probability a datagram silently disappears.
	Loss float64
}

// Mem is the in-process transport: a channel fabric carrying
// datagrams between registered endpoints and net.Pipe byte streams
// between dialers and listeners. It needs no file descriptors, so
// cluster size is bounded by memory, not OS socket limits, and with
// zero Latency/Loss its behavior is independent of wall-clock timing.
//
// One Mem value is one isolated network; components can only reach
// addresses issued by the same fabric.
type Mem struct {
	cfg MemConfig

	mu        sync.Mutex
	rng       *stats.RNG
	next      int
	endpoints map[string]*memEndpoint
	listeners map[string]*memListener
}

// NewMem builds an isolated in-memory fabric.
func NewMem(cfg MemConfig) *Mem {
	return &Mem{
		cfg:       cfg,
		rng:       stats.NewRNG(cfg.Seed ^ 0x6d656d6661627269), // "memfabri"
		endpoints: make(map[string]*memEndpoint),
		listeners: make(map[string]*memListener),
	}
}

// nextAddr issues a fresh fabric address. Caller holds m.mu.
func (m *Mem) nextAddr() string {
	m.next++
	return fmt.Sprintf("mem:%d", m.next)
}

// memInboxCap bounds each endpoint's datagram queue; like a kernel
// socket buffer, overflow drops.
const memInboxCap = 4096

type memDatagram struct {
	from    string
	payload []byte
}

// Listen implements Transport.
func (m *Mem) Listen() (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := &memListener{
		fab:    m,
		addr:   m.nextAddr(),
		accept: make(chan net.Conn, 16),
		closed: make(chan struct{}),
	}
	m.listeners[l.addr] = l
	return l, nil
}

// Dial implements Transport. Unlike UDP sends, stream dials to an
// address with no live listener fail immediately (connection
// refused), mirroring loopback TCP.
func (m *Mem) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	m.mu.Lock()
	l := m.listeners[addr]
	m.mu.Unlock()
	if l == nil {
		return nil, &net.OpError{Op: "dial", Net: "mem", Err: errors.New("connection refused: no listener at " + addr)}
	}
	c1, c2 := net.Pipe()
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		//lint:allow detclock dial timeouts bound real goroutine waits; message fates stay seeded-rng driven
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case l.accept <- c2:
		return c1, nil
	case <-l.closed:
		c1.Close()
		c2.Close()
		return nil, &net.OpError{Op: "dial", Net: "mem", Err: errors.New("connection refused: listener closed")}
	case <-timeoutCh:
		c1.Close()
		c2.Close()
		return nil, &net.OpError{Op: "dial", Net: "mem", Err: os.ErrDeadlineExceeded}
	}
}

// ListenPacket implements Transport.
func (m *Mem) ListenPacket() (PacketConn, error) {
	return m.newEndpoint(""), nil
}

// DialPacket implements Transport. Like net.DialUDP, dialing needs no
// live peer; datagrams to a dead address are silently dropped.
func (m *Mem) DialPacket(addr string, _ Link) (PacketConn, error) {
	return m.newEndpoint(addr), nil
}

func (m *Mem) newEndpoint(peer string) *memEndpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := &memEndpoint{
		fab:    m,
		addr:   m.nextAddr(),
		peer:   peer,
		inbox:  make(chan memDatagram, memInboxCap),
		closed: make(chan struct{}),
	}
	m.endpoints[e.addr] = e
	return e
}

// deliver routes one datagram through the fabric's loss/latency model
// toward the endpoint registered at to.
func (m *Mem) deliver(from, to string, p []byte) {
	var delay time.Duration
	if m.cfg.Loss > 0 || m.cfg.Jitter > 0 {
		m.mu.Lock()
		if m.cfg.Loss > 0 && m.rng.Float64() < m.cfg.Loss {
			m.mu.Unlock()
			return
		}
		if m.cfg.Jitter > 0 {
			delay = time.Duration(m.rng.Float64() * float64(m.cfg.Jitter))
		}
		m.mu.Unlock()
	}
	delay += m.cfg.Latency
	buf := append([]byte(nil), p...)
	if delay <= 0 {
		m.inject(from, to, buf)
		return
	}
	//lint:allow detclock the latency model maps seeded delays onto the wall clock; drop/served fates are decided above by the seeded rng
	time.AfterFunc(delay, func() { m.inject(from, to, buf) })
}

// inject queues a datagram at its destination; unknown destinations
// and full inboxes drop it, as UDP would.
func (m *Mem) inject(from, to string, p []byte) {
	m.mu.Lock()
	ep := m.endpoints[to]
	m.mu.Unlock()
	if ep == nil {
		return
	}
	select {
	case ep.inbox <- memDatagram{from: from, payload: p}:
	default:
	}
}

// memEndpoint is one datagram endpoint on the fabric.
type memEndpoint struct {
	fab  *Mem
	addr string
	peer string // fixed peer of a dialed endpoint; "" when listening

	inbox chan memDatagram

	mu       sync.Mutex
	deadline time.Time

	closed    chan struct{}
	closeOnce sync.Once
}

func (e *memEndpoint) ReadFrom(p []byte) (int, string, error) {
	e.mu.Lock()
	deadline := e.deadline
	e.mu.Unlock()
	var timeoutCh <-chan time.Time
	if !deadline.IsZero() {
		//lint:allow detclock read deadlines honor net-style wall-clock semantics callers set explicitly
		d := time.Until(deadline)
		if d <= 0 {
			return 0, "", os.ErrDeadlineExceeded
		}
		//lint:allow detclock read deadlines honor net-style wall-clock semantics callers set explicitly
		t := time.NewTimer(d)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case dg := <-e.inbox:
		return copy(p, dg.payload), dg.from, nil
	case <-e.closed:
		return 0, "", net.ErrClosed
	case <-timeoutCh:
		return 0, "", os.ErrDeadlineExceeded
	}
}

func (e *memEndpoint) Read(p []byte) (int, error) {
	for {
		n, from, err := e.ReadFrom(p)
		if err != nil {
			return n, err
		}
		// A dialed endpoint sees only its peer, like a connected socket.
		if e.peer == "" || from == e.peer {
			return n, nil
		}
	}
}

func (e *memEndpoint) WriteTo(p []byte, addr string) (int, error) {
	if e.isClosed() {
		return 0, net.ErrClosed
	}
	e.fab.deliver(e.addr, addr, p)
	return len(p), nil
}

func (e *memEndpoint) Write(p []byte) (int, error) {
	if e.peer == "" {
		return 0, errors.New("transport: Write on an unconnected packet endpoint")
	}
	return e.WriteTo(p, e.peer)
}

func (e *memEndpoint) LocalAddr() string { return e.addr }

func (e *memEndpoint) SetReadDeadline(t time.Time) error {
	e.mu.Lock()
	e.deadline = t
	e.mu.Unlock()
	return nil
}

func (e *memEndpoint) isClosed() bool {
	select {
	case <-e.closed:
		return true
	default:
		return false
	}
}

func (e *memEndpoint) Close() error {
	e.closeOnce.Do(func() {
		e.fab.mu.Lock()
		delete(e.fab.endpoints, e.addr)
		e.fab.mu.Unlock()
		close(e.closed)
	})
	return nil
}

// memListener accepts fabric stream connections.
type memListener struct {
	fab    *Mem
	addr   string
	accept chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Addr() string { return l.addr }

func (l *memListener) Close() error {
	l.once.Do(func() {
		l.fab.mu.Lock()
		delete(l.fab.listeners, l.addr)
		l.fab.mu.Unlock()
		close(l.closed)
	})
	return nil
}
