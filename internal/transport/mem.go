package transport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"finelb/internal/stats"
)

// MemConfig parameterizes the in-memory fabric's ambient network
// model. The model applies to datagrams (the unreliable plane: load
// inquiries, directory traffic); streams are reliable in-process
// pipes with no modeled latency, so access response times are
// dominated by service time exactly as on loopback TCP. Injected
// per-link faults are a separate mechanism layered on top
// (WithFaults) and work identically on both transports.
type MemConfig struct {
	// Seed drives the loss and jitter draws; the same seed and the
	// same send sequence replay the same deliveries.
	Seed uint64
	// Latency is the base one-way datagram delay (default 0: delivery
	// on the sender's goroutine).
	Latency time.Duration
	// Jitter adds a uniform extra delay in [0, Jitter) per datagram.
	Jitter time.Duration
	// Loss is the probability a datagram silently disappears.
	Loss float64
}

// Mem is the in-process transport: a channel fabric carrying
// datagrams between registered endpoints and net.Pipe byte streams
// between dialers and listeners. It needs no file descriptors, so
// cluster size is bounded by memory, not OS socket limits, and with
// zero Latency/Loss its behavior is independent of wall-clock timing.
//
// One Mem value is one isolated network; components can only reach
// addresses issued by the same fabric.
type Mem struct {
	cfg MemConfig

	mu        sync.Mutex
	rng       *stats.RNG
	next      int
	endpoints map[string]*memEndpoint
	listeners map[string]*memListener
}

// NewMem builds an isolated in-memory fabric.
func NewMem(cfg MemConfig) *Mem {
	return &Mem{
		cfg:       cfg,
		rng:       stats.NewRNG(cfg.Seed ^ 0x6d656d6661627269), // "memfabri"
		endpoints: make(map[string]*memEndpoint),
		listeners: make(map[string]*memListener),
	}
}

// nextAddr issues a fresh fabric address. Caller holds m.mu.
func (m *Mem) nextAddr() string {
	m.next++
	return fmt.Sprintf("mem:%d", m.next)
}

// memInboxCap bounds each endpoint's datagram queue; like a kernel
// socket buffer, overflow drops.
const memInboxCap = 4096

type memDatagram struct {
	from    string
	payload []byte
	buf     *[]byte // pool token backing payload; returned after the read copies out
}

// dgPool recycles datagram payload buffers so the fabric's per-send
// copy allocates nothing in steady state — the mem transport is the
// substrate the poll path's zero-alloc gate measures, so fabric
// overhead must hold to the same standard as the endpoints. Buffers
// are checked out in deliver, travel through the inbox inside the
// memDatagram, and return to the pool once ReadFrom has copied the
// payload into the caller's buffer (or immediately, when the
// destination is unknown or its inbox is full and UDP semantics drop
// the datagram).
var dgPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

// Listen implements Transport.
func (m *Mem) Listen() (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := &memListener{
		fab:    m,
		addr:   m.nextAddr(),
		accept: make(chan net.Conn, 16),
		closed: make(chan struct{}),
	}
	m.listeners[l.addr] = l
	return l, nil
}

// Dial implements Transport. Unlike UDP sends, stream dials to an
// address with no live listener fail immediately (connection
// refused), mirroring loopback TCP.
func (m *Mem) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	m.mu.Lock()
	l := m.listeners[addr]
	m.mu.Unlock()
	if l == nil {
		return nil, &net.OpError{Op: "dial", Net: "mem", Err: errors.New("connection refused: no listener at " + addr)}
	}
	c1, c2 := net.Pipe()
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		//lint:allow detclock dial timeouts bound real goroutine waits; message fates stay seeded-rng driven
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case l.accept <- c2:
		return c1, nil
	case <-l.closed:
		c1.Close()
		c2.Close()
		return nil, &net.OpError{Op: "dial", Net: "mem", Err: errors.New("connection refused: listener closed")}
	case <-timeoutCh:
		c1.Close()
		c2.Close()
		return nil, &net.OpError{Op: "dial", Net: "mem", Err: os.ErrDeadlineExceeded}
	}
}

// ListenPacket implements Transport.
func (m *Mem) ListenPacket() (PacketConn, error) {
	return m.newEndpoint(""), nil
}

// DialPacket implements Transport. Like net.DialUDP, dialing needs no
// live peer; datagrams to a dead address are silently dropped.
func (m *Mem) DialPacket(addr string, _ Link) (PacketConn, error) {
	return m.newEndpoint(addr), nil
}

func (m *Mem) newEndpoint(peer string) *memEndpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := &memEndpoint{
		fab:    m,
		addr:   m.nextAddr(),
		peer:   peer,
		inbox:  make(chan memDatagram, memInboxCap),
		closed: make(chan struct{}),
	}
	m.endpoints[e.addr] = e
	return e
}

// deliver routes one datagram through the fabric's loss/latency model
// toward the endpoint registered at to.
func (m *Mem) deliver(from, to string, p []byte) {
	var delay time.Duration
	if m.cfg.Loss > 0 || m.cfg.Jitter > 0 {
		m.mu.Lock()
		if m.cfg.Loss > 0 && m.rng.Float64() < m.cfg.Loss {
			m.mu.Unlock()
			return
		}
		if m.cfg.Jitter > 0 {
			delay = time.Duration(m.rng.Float64() * float64(m.cfg.Jitter))
		}
		m.mu.Unlock()
	}
	delay += m.cfg.Latency
	if delay <= 0 {
		// Undelayed delivery stays on the sender's goroutine. A receiver
		// with a handler gets the payload by reference — no copy, no
		// queue, no wakeup; a reader gets a pooled copy in its inbox.
		ep := m.resolve(to)
		if ep == nil {
			return
		}
		if h := ep.handler.Load(); h != nil {
			(*h)(p, from)
			return
		}
		bp := dgPool.Get().(*[]byte)
		*bp = append((*bp)[:0], p...)
		ep.enqueue(from, bp)
		return
	}
	bp := dgPool.Get().(*[]byte)
	*bp = append((*bp)[:0], p...)
	//lint:allow detclock the latency model maps seeded delays onto the wall clock; drop/served fates are decided above by the seeded rng
	time.AfterFunc(delay, func() { m.inject(from, to, bp) })
}

// resolve looks the destination endpoint up; nil means no such
// endpoint (closed or never existed) and the datagram is dropped, as
// UDP drops it.
func (m *Mem) resolve(to string) *memEndpoint {
	m.mu.Lock()
	ep := m.endpoints[to]
	m.mu.Unlock()
	return ep
}

// inject delivers one delayed datagram (already copied into a pooled
// buffer) at its destination.
func (m *Mem) inject(from, to string, bp *[]byte) {
	ep := m.resolve(to)
	if ep == nil {
		dgPool.Put(bp)
		return
	}
	if h := ep.handler.Load(); h != nil {
		(*h)(*bp, from)
		dgPool.Put(bp)
		return
	}
	ep.enqueue(from, bp)
}

// enqueue queues a datagram for Read; a full inbox drops it, as a
// full socket buffer would.
func (e *memEndpoint) enqueue(from string, bp *[]byte) {
	select {
	case e.inbox <- memDatagram{from: from, payload: *bp, buf: bp}:
	default:
		dgPool.Put(bp)
	}
}

// memEndpoint is one datagram endpoint on the fabric.
type memEndpoint struct {
	fab  *Mem
	addr string
	peer string // fixed peer of a dialed endpoint; "" when listening

	inbox   chan memDatagram
	handler atomic.Pointer[PacketHandler] // synchronous delivery when set (HandlerPacketConn)

	mu       sync.Mutex
	deadline time.Time

	closed    chan struct{}
	closeOnce sync.Once
}

// SetPacketHandler implements HandlerPacketConn: subsequent datagrams
// are delivered by calling h — on the sender's goroutine when the
// fabric models no delay, on the timer goroutine otherwise — instead
// of queueing to the inbox. Datagrams already queued stay queued, so
// install the handler before traffic arrives.
func (e *memEndpoint) SetPacketHandler(h PacketHandler) bool {
	if h == nil {
		e.handler.Store(nil)
		return true
	}
	e.handler.Store(&h)
	return true
}

func (e *memEndpoint) ReadFrom(p []byte) (int, string, error) {
	// Fast path: a datagram is already queued. The nonblocking receive
	// skips the full select (and any deadline timer) entirely, which is
	// most of the per-hop cost when readers keep up with senders.
	select {
	case dg := <-e.inbox:
		n := copy(p, dg.payload)
		if dg.buf != nil {
			dgPool.Put(dg.buf)
		}
		return n, dg.from, nil
	default:
	}
	e.mu.Lock()
	deadline := e.deadline
	e.mu.Unlock()
	var timeoutCh <-chan time.Time
	if !deadline.IsZero() {
		//lint:allow detclock read deadlines honor net-style wall-clock semantics callers set explicitly
		d := time.Until(deadline)
		if d <= 0 {
			return 0, "", os.ErrDeadlineExceeded
		}
		//lint:allow detclock read deadlines honor net-style wall-clock semantics callers set explicitly
		t := time.NewTimer(d)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case dg := <-e.inbox:
		n := copy(p, dg.payload)
		if dg.buf != nil {
			dgPool.Put(dg.buf)
		}
		return n, dg.from, nil
	case <-e.closed:
		return 0, "", net.ErrClosed
	case <-timeoutCh:
		return 0, "", os.ErrDeadlineExceeded
	}
}

func (e *memEndpoint) Read(p []byte) (int, error) {
	for {
		n, from, err := e.ReadFrom(p)
		if err != nil {
			return n, err
		}
		// A dialed endpoint sees only its peer, like a connected socket.
		if e.peer == "" || from == e.peer {
			return n, nil
		}
	}
}

func (e *memEndpoint) WriteTo(p []byte, addr string) (int, error) {
	if e.isClosed() {
		return 0, net.ErrClosed
	}
	e.fab.deliver(e.addr, addr, p)
	return len(p), nil
}

func (e *memEndpoint) Write(p []byte) (int, error) {
	if e.peer == "" {
		return 0, errors.New("transport: Write on an unconnected packet endpoint")
	}
	return e.WriteTo(p, e.peer)
}

func (e *memEndpoint) LocalAddr() string { return e.addr }

func (e *memEndpoint) SetReadDeadline(t time.Time) error {
	e.mu.Lock()
	e.deadline = t
	e.mu.Unlock()
	return nil
}

func (e *memEndpoint) isClosed() bool {
	select {
	case <-e.closed:
		return true
	default:
		return false
	}
}

func (e *memEndpoint) Close() error {
	e.closeOnce.Do(func() {
		e.fab.mu.Lock()
		delete(e.fab.endpoints, e.addr)
		e.fab.mu.Unlock()
		close(e.closed)
	})
	return nil
}

// memListener accepts fabric stream connections.
type memListener struct {
	fab    *Mem
	addr   string
	accept chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Addr() string { return l.addr }

func (l *memListener) Close() error {
	l.once.Do(func() {
		l.fab.mu.Lock()
		delete(l.fab.listeners, l.addr)
		l.fab.mu.Unlock()
		close(l.closed)
	})
	return nil
}
