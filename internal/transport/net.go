package transport

import (
	"net"
	"sync"
	"time"
)

// Net is the real-socket transport: loopback TCP streams and UDP
// datagrams, exactly what the prototype used before the transport
// seam existed. The zero value is ready to use; every Net value
// shares the one OS network stack.
type Net struct{}

// Listen implements Transport.
func (Net) Listen() (Listener, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return netListener{ln}, nil
}

// Dial implements Transport.
func (Net) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	if timeout <= 0 {
		return net.Dial("tcp", addr)
	}
	return net.DialTimeout("tcp", addr, timeout)
}

// ListenPacket implements Transport.
func (Net) ListenPacket() (PacketConn, error) {
	laddr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	return &netPacketConn{c: conn}, nil
}

// DialPacket implements Transport. The link is carried by the fault
// decorator (WithFaults), not by Net itself.
func (Net) DialPacket(addr string, _ Link) (PacketConn, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	return &netPacketConn{c: conn}, nil
}

type netListener struct{ ln net.Listener }

func (l netListener) Accept() (net.Conn, error) { return l.ln.Accept() }
func (l netListener) Addr() string              { return l.ln.Addr().String() }
func (l netListener) Close() error              { return l.ln.Close() }

// netPacketConn adapts *net.UDPConn to PacketConn. It caches resolved
// peer addresses so the node's answer path (one WriteTo per inquiry)
// does not re-parse the same client address thousands of times.
type netPacketConn struct {
	c *net.UDPConn

	mu    sync.Mutex
	peers map[string]*net.UDPAddr
}

func (p *netPacketConn) ReadFrom(b []byte) (int, string, error) {
	n, addr, err := p.c.ReadFromUDP(b)
	from := ""
	if addr != nil {
		from = addr.String()
	}
	return n, from, err
}

func (p *netPacketConn) WriteTo(b []byte, to string) (int, error) {
	p.mu.Lock()
	addr := p.peers[to]
	p.mu.Unlock()
	if addr == nil {
		var err error
		addr, err = net.ResolveUDPAddr("udp", to)
		if err != nil {
			return 0, err
		}
		p.mu.Lock()
		if p.peers == nil || len(p.peers) > 4096 {
			p.peers = make(map[string]*net.UDPAddr)
		}
		p.peers[to] = addr
		p.mu.Unlock()
	}
	return p.c.WriteToUDP(b, addr)
}

func (p *netPacketConn) Read(b []byte) (int, error)        { return p.c.Read(b) }
func (p *netPacketConn) Write(b []byte) (int, error)       { return p.c.Write(b) }
func (p *netPacketConn) LocalAddr() string                 { return p.c.LocalAddr().String() }
func (p *netPacketConn) SetReadDeadline(t time.Time) error { return p.c.SetReadDeadline(t) }
func (p *netPacketConn) Close() error                      { return p.c.Close() }
