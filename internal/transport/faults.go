package transport

import (
	"net"
	"sync"
	"time"

	"finelb/internal/faults"
)

// WithFaults layers a schedule's per-link rules (faults.LinkRule)
// onto a transport: every datagram written on a packet connection
// dialed with a real Link passes the link's loss/latency replay
// before entering the underlying transport. This is the one place in
// the repository that replays LinkRules for the prototype — the same
// decorator serves both Net and Mem, so both substrates honor the
// same fault schedule identically.
//
// A dropped write still reports success, exactly as a kernel accepts
// a datagram that the network then loses: the sender counts it as
// sent and discovers the loss only through silence. Added latency
// delays the outgoing inquiry, which reaches the client's poll clock
// the same way the lost time would on a slow link.
//
// Stream traffic, listening sockets, and NoLink dials pass through
// untouched. A nil or link-rule-free schedule returns inner
// unchanged.
func WithFaults(inner Transport, sched *faults.Schedule) Transport {
	if sched == nil || len(sched.Links) == 0 {
		return inner
	}
	return &faultTransport{
		inner:  inner,
		sched:  sched,
		states: make(map[int]*faults.LinkState),
	}
}

type faultTransport struct {
	inner Transport
	sched *faults.Schedule

	mu     sync.Mutex
	states map[int]*faults.LinkState
}

// state returns the client's deterministic link-fault stream, shared
// by every connection that client dials.
func (f *faultTransport) state(client int) *faults.LinkState {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.states[client]
	if !ok {
		s = f.sched.NewLinkState(client)
		f.states[client] = s
	}
	return s
}

func (f *faultTransport) Listen() (Listener, error) { return f.inner.Listen() }

func (f *faultTransport) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	return f.inner.Dial(addr, timeout)
}

func (f *faultTransport) ListenPacket() (PacketConn, error) { return f.inner.ListenPacket() }

func (f *faultTransport) DialPacket(addr string, link Link) (PacketConn, error) {
	pc, err := f.inner.DialPacket(addr, link)
	if err != nil || !link.real() {
		return pc, err
	}
	return &faultPacketConn{PacketConn: pc, state: f.state(link.Client), server: link.Server}, nil
}

// faultPacketConn replays one link's faults on outgoing datagrams.
type faultPacketConn struct {
	PacketConn
	state  *faults.LinkState
	server int
}

// SetPacketHandler forwards the optional HandlerPacketConn capability
// to the wrapped connection. Embedding the PacketConn interface does
// not promote optional methods, so without this the fault decorator
// would silently strip synchronous delivery from the mem fabric.
func (c *faultPacketConn) SetPacketHandler(h PacketHandler) bool {
	hc, ok := c.PacketConn.(HandlerPacketConn)
	return ok && hc.SetPacketHandler(h)
}

func (c *faultPacketConn) Write(p []byte) (int, error) {
	drop, delay := c.state.PollFault(c.server)
	if drop {
		return len(p), nil
	}
	if delay > 0 {
		buf := append([]byte(nil), p...)
		time.AfterFunc(delay, func() { _, _ = c.PacketConn.Write(buf) })
		return len(p), nil
	}
	return c.PacketConn.Write(p)
}
