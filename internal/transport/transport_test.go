package transport

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"finelb/internal/faults"
)

// both runs a subtest against each transport implementation.
func both(t *testing.T, f func(t *testing.T, tr Transport)) {
	t.Run("net", func(t *testing.T) { f(t, Net{}) })
	t.Run("mem", func(t *testing.T) { f(t, NewMem(MemConfig{Seed: 1})) })
}

func TestPacketRoundTrip(t *testing.T) {
	both(t, func(t *testing.T, tr Transport) {
		srv, err := tr.ListenPacket()
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		cli, err := tr.DialPacket(srv.LocalAddr(), NoLink)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()

		if _, err := cli.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		n, from, err := srv.ReadFrom(buf)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf[:n]) != "ping" {
			t.Fatalf("server got %q", buf[:n])
		}
		if from != cli.LocalAddr() {
			t.Fatalf("from = %q, want %q", from, cli.LocalAddr())
		}
		if _, err := srv.WriteTo([]byte("pong"), from); err != nil {
			t.Fatal(err)
		}
		n, err = cli.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf[:n]) != "pong" {
			t.Fatalf("client got %q", buf[:n])
		}
	})
}

func TestStreamRoundTrip(t *testing.T) {
	both(t, func(t *testing.T, tr Transport) {
		ln, err := tr.Listen()
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			buf := make([]byte, 64)
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			c.Write(append([]byte("echo:"), buf[:n]...))
		}()
		c, err := tr.Dial(ln.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Write([]byte("hello")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		n, err := c.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf[:n]) != "echo:hello" {
			t.Fatalf("got %q", buf[:n])
		}
	})
}

func TestStreamDeadline(t *testing.T) {
	both(t, func(t *testing.T, tr Transport) {
		ln, err := tr.Listen()
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			// Hold the connection open, never answer.
			defer c.Close()
			time.Sleep(200 * time.Millisecond)
		}()
		c, err := tr.Dial(ln.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.SetDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 8)
		if _, err := c.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("read past deadline: err = %v", err)
		}
	})
}

func TestPacketReadDeadline(t *testing.T) {
	both(t, func(t *testing.T, tr Transport) {
		pc, err := tr.ListenPacket()
		if err != nil {
			t.Fatal(err)
		}
		defer pc.Close()
		if err := pc.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 8)
		start := time.Now()
		_, _, err = pc.ReadFrom(buf)
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("err = %v, want deadline exceeded", err)
		}
		if time.Since(start) > time.Second {
			t.Fatalf("deadline took %v", time.Since(start))
		}
	})
}

func TestCloseUnblocksReads(t *testing.T) {
	both(t, func(t *testing.T, tr Transport) {
		pc, err := tr.ListenPacket()
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			buf := make([]byte, 8)
			_, _, err := pc.ReadFrom(buf)
			done <- err
		}()
		time.Sleep(10 * time.Millisecond)
		pc.Close()
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("read succeeded after close")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("read not unblocked by close")
		}
	})
}

func TestMemDialRefusedWithoutListener(t *testing.T) {
	m := NewMem(MemConfig{Seed: 1})
	if _, err := m.Dial("mem:999", 100*time.Millisecond); err == nil {
		t.Fatal("dial to unknown address succeeded")
	}
	ln, err := m.Listen()
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()
	ln.Close()
	if _, err := m.Dial(addr, 100*time.Millisecond); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
}

func TestMemWriteToUnknownAddrDrops(t *testing.T) {
	m := NewMem(MemConfig{Seed: 1})
	pc, err := m.ListenPacket()
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	// UDP semantics: sends to dead addresses succeed and vanish.
	if _, err := pc.WriteTo([]byte("x"), "mem:999"); err != nil {
		t.Fatalf("WriteTo unknown addr: %v", err)
	}
}

func TestMemFabricsAreIsolated(t *testing.T) {
	m1 := NewMem(MemConfig{Seed: 1})
	m2 := NewMem(MemConfig{Seed: 1})
	srv, _ := m1.ListenPacket()
	defer srv.Close()
	cli, _ := m2.DialPacket(srv.LocalAddr(), NoLink)
	defer cli.Close()
	cli.Write([]byte("x")) // same address string, different fabric
	srv.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, _, err := srv.ReadFrom(make([]byte, 8)); err == nil {
		t.Fatal("datagram crossed fabrics")
	}
}

// TestMemLatency checks the ambient latency model delays datagrams.
func TestMemLatency(t *testing.T) {
	const lat = 50 * time.Millisecond
	m := NewMem(MemConfig{Seed: 1, Latency: lat})
	srv, _ := m.ListenPacket()
	defer srv.Close()
	cli, _ := m.DialPacket(srv.LocalAddr(), NoLink)
	defer cli.Close()
	start := time.Now()
	cli.Write([]byte("x"))
	if _, _, err := srv.ReadFrom(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < lat {
		t.Fatalf("delivered in %v, want >= %v", d, lat)
	}
}

// TestMemLossDeterministic replays the same seed and send sequence on
// two fabrics and requires the identical delivery pattern.
func TestMemLossDeterministic(t *testing.T) {
	pattern := func(seed uint64) string {
		m := NewMem(MemConfig{Seed: seed, Loss: 0.5})
		srv, _ := m.ListenPacket()
		defer srv.Close()
		cli, _ := m.DialPacket(srv.LocalAddr(), NoLink)
		defer cli.Close()
		out := ""
		buf := make([]byte, 8)
		for i := 0; i < 64; i++ {
			cli.Write([]byte{byte(i)})
			srv.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
			if _, _, err := srv.ReadFrom(buf); err == nil {
				out += "1"
			} else {
				out += "0"
			}
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	if a != b {
		t.Fatalf("same seed, different delivery:\n%s\n%s", a, b)
	}
	if c := pattern(8); c == a {
		t.Fatalf("different seeds, same delivery pattern %s", a)
	}
}

// TestWithFaultsIdentity checks a fault-free schedule adds no layer.
func TestWithFaultsIdentity(t *testing.T) {
	inner := Net{}
	if got := WithFaults(inner, nil); got != Transport(inner) {
		t.Fatal("nil schedule should return inner unchanged")
	}
	if got := WithFaults(inner, &faults.Schedule{}); got != Transport(inner) {
		t.Fatal("link-rule-free schedule should return inner unchanged")
	}
}

// TestWithFaultsReplaysLinkRules checks loss and latency replay at
// the seam, on both transports, and that NoLink dials are exempt.
func TestWithFaultsReplaysLinkRules(t *testing.T) {
	both(t, func(t *testing.T, inner Transport) {
		sched := &faults.Schedule{
			Seed: 3,
			Links: []faults.LinkRule{
				{Client: 0, Server: 0, Loss: 1},
				{Client: 0, Server: 1, Latency: 40 * time.Millisecond},
			},
		}
		tr := WithFaults(inner, sched)

		srv, err := tr.ListenPacket()
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		buf := make([]byte, 8)

		expect := func(pc PacketConn, wantDelivered bool, wantAfter time.Duration, desc string) {
			t.Helper()
			start := time.Now()
			if _, err := pc.Write([]byte("x")); err != nil {
				t.Fatalf("%s: write: %v", desc, err)
			}
			srv.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
			_, _, err := srv.ReadFrom(buf)
			if wantDelivered {
				if err != nil {
					t.Fatalf("%s: not delivered: %v", desc, err)
				}
				if d := time.Since(start); d < wantAfter {
					t.Fatalf("%s: delivered in %v, want >= %v", desc, d, wantAfter)
				}
			} else if err == nil {
				t.Fatalf("%s: delivered, want dropped", desc)
			}
		}

		lossy, err := tr.DialPacket(srv.LocalAddr(), Link{Client: 0, Server: 0})
		if err != nil {
			t.Fatal(err)
		}
		defer lossy.Close()
		expect(lossy, false, 0, "loss=1 link")

		slow, err := tr.DialPacket(srv.LocalAddr(), Link{Client: 0, Server: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer slow.Close()
		expect(slow, true, 40*time.Millisecond, "latency link")

		exempt, err := tr.DialPacket(srv.LocalAddr(), NoLink)
		if err != nil {
			t.Fatal(err)
		}
		defer exempt.Close()
		expect(exempt, true, 0, "NoLink dial")
	})
}

// TestMemManyEndpoints opens far more endpoints than typical FD
// limits allow, the fabric's reason to exist.
func TestMemManyEndpoints(t *testing.T) {
	m := NewMem(MemConfig{Seed: 1})
	var conns []PacketConn
	for i := 0; i < 5000; i++ {
		pc, err := m.ListenPacket()
		if err != nil {
			t.Fatalf("endpoint %d: %v", i, err)
		}
		conns = append(conns, pc)
	}
	// Spot-check two can still talk.
	a, b := conns[17], conns[4217]
	if _, err := a.WriteTo([]byte("hi"), b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	b.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 8)
	if n, from, err := b.ReadFrom(buf); err != nil || string(buf[:n]) != "hi" || from != a.LocalAddr() {
		t.Fatalf("got %q from %q, err %v", buf[:n], from, err)
	}
	for _, pc := range conns {
		pc.Close()
	}
}

func TestMemAddrFormat(t *testing.T) {
	m := NewMem(MemConfig{Seed: 1})
	pc, _ := m.ListenPacket()
	defer pc.Close()
	ln, _ := m.Listen()
	defer ln.Close()
	for _, addr := range []string{pc.LocalAddr(), ln.Addr()} {
		var n int
		if _, err := fmt.Sscanf(addr, "mem:%d", &n); err != nil || n <= 0 {
			t.Fatalf("address %q not in mem:N form", addr)
		}
	}
}
