// Package sim implements a deterministic discrete-event simulation
// engine: an indexed event heap ordered by simulated time with FIFO
// tie-breaking, an integer-nanosecond clock, and cancellable timers.
//
// The engine is intentionally minimal; domain models (servers, clients,
// networks) live in higher-level packages and are expressed as
// callbacks scheduled on the engine.
//
// The hot path is built from three step primitives —
// HasPendingEvents, PeekNextEventTime, and ProcessNextEvent — so
// callers can drive the clock themselves (multi-engine loops, bounded
// stepping) while Run and RunUntil remain thin wrappers. Event records
// are recycled through a free-list: steady-state scheduling performs
// no allocation, and a recycled event's callback is cleared so fired
// or cancelled closures never pin their captures.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in simulated time, in nanoseconds since the start of
// the run.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns d expressed in seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns d expressed in milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// FromSeconds converts a float64 number of seconds into a Duration,
// rounding to the nearest nanosecond.
func FromSeconds(s float64) Duration {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		panic(fmt.Sprintf("sim: FromSeconds(%v)", s))
	}
	return Duration(math.Round(s * float64(Second)))
}

func (t Time) String() string     { return fmt.Sprintf("%.6fs", t.Seconds()) }
func (d Duration) String() string { return fmt.Sprintf("%.6fs", d.Seconds()) }

// event is a scheduled callback. Events with equal times fire in
// sequence order (seq), making runs fully deterministic. Event records
// are pooled: gen identifies the current incarnation so stale Handles
// from earlier incarnations become no-ops instead of acting on a
// recycled record.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // position in the heap; -1 while on the free-list

	// gen is incremented every time the record is recycled (fire or
	// cancel). A Handle is live only while its gen matches.
	gen uint64
	// cancelledGen records the incarnation that was last cancelled, so
	// Handle.Cancelled stays answerable after the record is recycled.
	cancelledGen uint64
}

// Handle identifies a scheduled event and allows cancelling it.
// The zero Handle is valid and inert.
type Handle struct {
	eng *Engine
	ev  *event
	gen uint64
}

// Cancel removes the event from the schedule in place (O(log n) via the
// event's heap index — no tombstone lingers in the heap) and clears its
// callback immediately, so a cancelled closure's captures are released
// at cancel time rather than when the slot would have surfaced.
// Cancelling an already-fired or already-cancelled event is a no-op.
func (h Handle) Cancel() {
	ev := h.ev
	if ev == nil || ev.gen != h.gen {
		return // already fired or cancelled (record recycled)
	}
	ev.cancelledGen = h.gen
	h.eng.removeAt(ev.index)
	h.eng.recycle(ev)
}

// Cancelled reports whether the handle's event was cancelled before it
// fired. (A handle whose event record has since been cancelled again in
// a later incarnation reports false; distinct incarnations never share
// a generation.)
func (h Handle) Cancelled() bool {
	return h.ev != nil && h.ev.gen != h.gen && h.ev.cancelledGen == h.gen
}

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engine is not safe for concurrent use.
type Engine struct {
	now     Time
	events  []*event // indexed binary min-heap ordered by (at, seq)
	seq     uint64
	stopped bool
	nFired  uint64
	free    []*event // recycled event records
}

// New returns a fresh engine at time 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.nFired }

// Pending returns the number of scheduled events. Cancelled events are
// removed from the schedule immediately, so they are never counted.
func (e *Engine) Pending() int { return len(e.events) }

// alloc takes an event record from the free-list, or mints one.
//
//lint:noalloc (the free-list miss below is the one sanctioned mint)
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	//lint:allow noalloc the free-list miss mints one record per pool-depth high-water mark, then recycles forever
	return &event{gen: 1, index: -1}
}

// recycle retires an event record to the free-list. The callback is
// cleared here — this is the pool's memory guarantee: a fired or
// cancelled closure (and everything it captures) is unreachable the
// moment its event leaves the schedule.
//
//lint:noalloc
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	ev.index = -1
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics — that is always a model bug.
//
//lint:noalloc
func (e *Engine) At(t Time, fn func()) Handle {
	h := e.AtSeq(t, e.seq, fn)
	e.seq++
	return h
}

// ReserveSeqs reserves n consecutive sequence numbers and returns the
// first. Events scheduled later via AtSeq with a reserved number order
// among equal-time events exactly as if they had been scheduled — in
// reservation order — at the moment of reservation. This is how a
// caller streams a large pre-determined event population (e.g. arrival
// processes) lazily without perturbing FIFO tie-breaking.
func (e *Engine) ReserveSeqs(n uint64) uint64 {
	base := e.seq
	e.seq += n
	return base
}

// AtSeq schedules fn at absolute time t with an explicit sequence
// number previously obtained from ReserveSeqs. The same past- and
// nil-callback panics as At apply.
//
//lint:noalloc
func (e *Engine) AtSeq(t Time, seq uint64, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.fn = t, seq, fn
	e.push(ev)
	return Handle{eng: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run d from now. Negative d panics.
//
//lint:noalloc
func (e *Engine) After(d Duration, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Stop makes the currently running Run/RunUntil return after the
// in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// HasPendingEvents reports whether any event remains scheduled.
func (e *Engine) HasPendingEvents() bool { return len(e.events) > 0 }

// PeekNextEventTime returns the time of the earliest scheduled event
// without firing it. The boolean is false when nothing is pending.
func (e *Engine) PeekNextEventTime() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// ProcessNextEvent pops the earliest event, advances the clock to its
// time, and runs its callback. It returns false when nothing is
// pending. The event record is recycled before the callback runs, so
// steady-state scheduling inside callbacks reuses it immediately.
//
//lint:noalloc
func (e *Engine) ProcessNextEvent() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events[0]
	e.removeAt(0)
	e.now = ev.at
	e.nFired++
	fn := ev.fn
	e.recycle(ev)
	fn()
	return true
}

// step fires the next event if its time is within limit.
//
//lint:noalloc
func (e *Engine) step(limit Time) bool {
	if len(e.events) == 0 || e.events[0].at > limit {
		return false
	}
	return e.ProcessNextEvent()
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step(math.MaxInt64) {
	}
}

// RunUntil executes events with time <= t, then advances the clock to
// t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	e.stopped = false
	for !e.stopped && e.step(t) {
	}
	if !e.stopped {
		e.now = t
	}
}

// Every schedules fn at now+interval(), then repeatedly at successive
// intervals, until the returned stop function is called. interval is
// re-evaluated for every period, which is how jittered broadcast timers
// are built. fn runs before the next period is scheduled.
func (e *Engine) Every(interval func() Duration, fn func()) (stop func()) {
	stopped := false
	var schedule func()
	schedule = func() {
		d := interval()
		if d < 0 {
			panic("sim: Every interval returned negative duration")
		}
		e.After(d, func() {
			if stopped {
				return
			}
			fn()
			if !stopped {
				schedule()
			}
		})
	}
	schedule()
	return func() { stopped = true }
}

// less orders events by (time, sequence): earlier times first, FIFO
// within a time.
func less(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// push appends ev and restores the heap property upward.
//
//lint:noalloc
func (e *Engine) push(ev *event) {
	ev.index = len(e.events)
	e.events = append(e.events, ev)
	e.up(ev.index)
}

// removeAt deletes the event at heap position i in O(log n), keeping
// every surviving event's index current.
//
//lint:noalloc
func (e *Engine) removeAt(i int) {
	h := e.events
	n := len(h) - 1
	if i != n {
		h[i] = h[n]
		h[i].index = i
	}
	h[n] = nil
	e.events = h[:n]
	if i < n {
		if !e.down(i) {
			e.up(i)
		}
	}
}

// up sifts the event at position i toward the root.
//
//lint:noalloc
func (e *Engine) up(i int) {
	h := e.events
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !less(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].index = i
		i = parent
	}
	h[i] = ev
	ev.index = i
}

// down sifts the event at position i toward the leaves, reporting
// whether it moved.
//
//lint:noalloc
func (e *Engine) down(i int) bool {
	h := e.events
	n := len(h)
	ev := h[i]
	start := i
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && less(h[right], h[left]) {
			child = right
		}
		if !less(h[child], ev) {
			break
		}
		h[i] = h[child]
		h[i].index = i
		i = child
	}
	h[i] = ev
	ev.index = i
	return i > start
}
