// Package sim implements a deterministic discrete-event simulation
// engine: an event heap ordered by simulated time with FIFO
// tie-breaking, an integer-nanosecond clock, and cancellable timers.
//
// The engine is intentionally minimal; domain models (servers, clients,
// networks) live in higher-level packages and are expressed as
// callbacks scheduled on the engine.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in nanoseconds since the start of
// the run.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns d expressed in seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns d expressed in milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// FromSeconds converts a float64 number of seconds into a Duration,
// rounding to the nearest nanosecond.
func FromSeconds(s float64) Duration {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		panic(fmt.Sprintf("sim: FromSeconds(%v)", s))
	}
	return Duration(math.Round(s * float64(Second)))
}

func (t Time) String() string     { return fmt.Sprintf("%.6fs", t.Seconds()) }
func (d Duration) String() string { return fmt.Sprintf("%.6fs", d.Seconds()) }

// event is a scheduled callback. Events with equal times fire in
// scheduling order (seq), making runs fully deterministic.
type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // position in the heap, for debugging; -1 once popped
}

// Handle identifies a scheduled event and allows cancelling it.
type Handle struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel is lazy: the slot is
// discarded when it reaches the top of the heap.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.cancelled = true
	}
}

// Cancelled reports whether the handle's event was cancelled.
func (h Handle) Cancelled() bool { return h.ev != nil && h.ev.cancelled }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engine is not safe for concurrent use.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	nFired  uint64
}

// New returns a fresh engine at time 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.nFired }

// Pending returns the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics — that is always a model bug.
func (e *Engine) At(t Time, fn func()) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return Handle{ev}
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Stop makes the currently running Run/RunUntil return after the
// in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// step pops and fires the next non-cancelled event.
// It returns false when no events remain.
func (e *Engine) step(limit Time) bool {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.at > limit {
			return false
		}
		heap.Pop(&e.events)
		if next.cancelled {
			continue
		}
		e.now = next.at
		e.nFired++
		next.fn()
		return true
	}
	return false
}

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step(math.MaxInt64) {
	}
}

// RunUntil executes events with time <= t, then advances the clock to
// t. Events scheduled beyond t remain pending.
func (e *Engine) RunUntil(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	e.stopped = false
	for !e.stopped && e.step(t) {
	}
	if !e.stopped {
		e.now = t
	}
}

// Every schedules fn at now+interval(), then repeatedly at successive
// intervals, until the returned stop function is called. interval is
// re-evaluated for every period, which is how jittered broadcast timers
// are built. fn runs before the next period is scheduled.
func (e *Engine) Every(interval func() Duration, fn func()) (stop func()) {
	stopped := false
	var schedule func()
	schedule = func() {
		d := interval()
		if d < 0 {
			panic("sim: Every interval returned negative duration")
		}
		e.After(d, func() {
			if stopped {
				return
			}
			fn()
			if !stopped {
				schedule()
			}
		})
	}
	schedule()
	return func() { stopped = true }
}
