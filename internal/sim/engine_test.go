package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if d := FromSeconds(0.5); d != 500*Millisecond {
		t.Fatalf("FromSeconds(0.5) = %v", d)
	}
	if s := (250 * Millisecond).Seconds(); s != 0.25 {
		t.Fatalf("Seconds = %v", s)
	}
	if ms := (3 * Second).Milliseconds(); ms != 3000 {
		t.Fatalf("Milliseconds = %v", ms)
	}
	tm := Time(0).Add(2 * Second)
	if tm.Seconds() != 2 {
		t.Fatalf("Add = %v", tm)
	}
	if d := tm.Sub(Time(Second)); d != Duration(Second) {
		t.Fatalf("Sub = %v", d)
	}
}

func TestFromSecondsPanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for NaN seconds")
		}
	}()
	FromSeconds(math.NaN())
}

func TestEngineOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %v", e.Now())
	}
	if e.Fired() != 3 {
		t.Fatalf("fired = %d", e.Fired())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New()
	var hits []Time
	e.At(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	New().At(1, nil)
}

func TestEngineNegativeAfterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestEngineCancel(t *testing.T) {
	e := New()
	fired := false
	h := e.At(10, func() { fired = true })
	h.Cancel()
	if !h.Cancelled() {
		t.Fatal("handle not marked cancelled")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Time still does not advance past cancelled-only events' times via Run
	// (the clock only moves when an event actually fires).
	if e.Now() != 0 {
		t.Fatalf("time advanced to %v on cancelled event", e.Now())
	}
}

func TestEngineCancelIdempotent(t *testing.T) {
	e := New()
	h := e.At(1, func() {})
	h.Cancel()
	h.Cancel() // must not panic
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 10", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("clock = %v, want 12", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v after second run", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
}

func TestEngineRunUntilPastPanics(t *testing.T) {
	e := New()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil in the past did not panic")
		}
	}()
	e.RunUntil(5)
}

func TestEngineStop(t *testing.T) {
	e := New()
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("Stop did not halt run: count = %d", count)
	}
	e.Run() // resume
	if count != 2 {
		t.Fatalf("resume failed: count = %d", count)
	}
}

func TestEngineEvery(t *testing.T) {
	e := New()
	var at []Time
	var stop func()
	stop = e.Every(func() Duration { return 10 }, func() {
		at = append(at, e.Now())
		if len(at) == 3 {
			stop()
		}
	})
	e.RunUntil(1000)
	if len(at) != 3 || at[0] != 10 || at[1] != 20 || at[2] != 30 {
		t.Fatalf("periodic fires = %v", at)
	}
}

func TestEngineEveryVariableInterval(t *testing.T) {
	e := New()
	intervals := []Duration{5, 15, 25}
	i := 0
	var at []Time
	var stop func()
	stop = e.Every(func() Duration {
		d := intervals[i%len(intervals)]
		i++
		return d
	}, func() {
		at = append(at, e.Now())
		if len(at) == 3 {
			stop()
		}
	})
	e.Run()
	want := []Time{5, 20, 45}
	for j := range want {
		if at[j] != want[j] {
			t.Fatalf("fires = %v, want %v", at, want)
		}
	}
}

// Property: for arbitrary event times, execution order is the sorted
// order, and the clock is non-decreasing throughout.
func TestQuickEngineSortsEvents(t *testing.T) {
	f := func(rawTimes []uint32) bool {
		e := New()
		var fired []Time
		for _, rt := range rawTimes {
			at := Time(rt % 1000000)
			e.At(at, func() { fired = append(fired, at) })
		}
		last := Time(-1)
		ok := true
		e.At(1000001, func() {}) // sentinel to flush
		e.Run()
		for _, ft := range fired {
			if ft < last {
				ok = false
			}
			last = ft
		}
		sorted := append([]Time(nil), fired...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return ok && len(fired) == len(rawTimes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset of events fires exactly the
// complement.
func TestQuickEngineCancelSubset(t *testing.T) {
	f := func(rawTimes []uint16, mask uint64) bool {
		e := New()
		firedCount := 0
		wantCount := 0
		for i, rt := range rawTimes {
			h := e.At(Time(rt), func() { firedCount++ })
			if mask&(1<<(uint(i)%64)) != 0 {
				h.Cancel()
			} else {
				wantCount++
			}
		}
		e.Run()
		return firedCount == wantCount
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleFire(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Duration(i%64), func() {})
		if e.Pending() > 1024 {
			e.RunUntil(e.Now() + 64)
		}
	}
	e.Run()
}
