package sim

import (
	"testing"
	"testing/quick"
)

// TestStepPrimitives drives the engine through the decomposed hot-path
// API directly: HasPendingEvents / PeekNextEventTime / ProcessNextEvent
// must be equivalent to Run, one event at a time.
func TestStepPrimitives(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })

	if !e.HasPendingEvents() {
		t.Fatal("no pending events after scheduling")
	}
	if at, ok := e.PeekNextEventTime(); !ok || at != 10 {
		t.Fatalf("PeekNextEventTime = %v, %v; want 10, true", at, ok)
	}
	if !e.ProcessNextEvent() {
		t.Fatal("ProcessNextEvent found nothing")
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v after first step", e.Now())
	}
	if at, ok := e.PeekNextEventTime(); !ok || at != 20 {
		t.Fatalf("PeekNextEventTime = %v, %v; want 20, true", at, ok)
	}
	for e.ProcessNextEvent() {
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.HasPendingEvents() {
		t.Fatal("events pending after drain")
	}
	if _, ok := e.PeekNextEventTime(); ok {
		t.Fatal("PeekNextEventTime reported an event on an empty engine")
	}
	if e.ProcessNextEvent() {
		t.Fatal("ProcessNextEvent fired on an empty engine")
	}
}

// TestPoolReusesRecords pins the free-list: after an event fires or is
// cancelled its record is reused by the next At, rather than a fresh
// allocation per schedule.
func TestPoolReusesRecords(t *testing.T) {
	e := New()
	h1 := e.At(1, func() {})
	first := h1.ev
	e.Run()
	h2 := e.At(2, func() {})
	if h2.ev != first {
		t.Error("fired event record was not recycled")
	}
	h2.Cancel()
	h3 := e.At(3, func() {})
	if h3.ev != first {
		t.Error("cancelled event record was not recycled")
	}
}

// TestRecycleClearsCallback is the closure-retention regression test:
// both firing and cancelling must nil the stored callback so whatever
// it captured is collectable immediately.
func TestRecycleClearsCallback(t *testing.T) {
	e := New()
	big := make([]byte, 1)
	h := e.At(5, func() { _ = big })
	h.Cancel()
	if h.ev.fn != nil {
		t.Error("Cancel left the callback set; its captures stay pinned")
	}
	h2 := e.At(6, func() { _ = big })
	e.Run()
	if h2.ev.fn != nil {
		t.Error("firing left the callback set on the recycled record")
	}
}

// TestStaleHandleCannotCancelRecycledEvent: a handle to an event that
// already fired must not cancel the unrelated event now occupying the
// recycled record.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	e := New()
	h1 := e.At(1, func() {})
	e.Run()
	fired := false
	h2 := e.At(2, func() { fired = true })
	if h1.ev != h2.ev {
		t.Fatal("test premise broken: record was not recycled")
	}
	h1.Cancel() // stale: must be a no-op
	if h2.Cancelled() {
		t.Fatal("stale Cancel marked the new incarnation cancelled")
	}
	e.Run()
	if !fired {
		t.Fatal("stale handle cancelled the recycled record's new event")
	}
}

// TestCancelledSurvivesRecycling: Cancelled() keeps answering for the
// incarnation the handle refers to even after the record is reused.
func TestCancelledSurvivesRecycling(t *testing.T) {
	e := New()
	h := e.At(1, func() {})
	h.Cancel()
	reused := e.At(2, func() {})
	if !h.Cancelled() {
		t.Error("cancelled handle lost its state after recycling")
	}
	if reused.Cancelled() {
		t.Error("new incarnation reports cancelled")
	}
	e.Run()
	if reused.Cancelled() {
		t.Error("fired handle reports cancelled")
	}
}

// TestCancelMidHeap: in-place removal must keep the heap ordered when
// the cancelled event sits in the middle of the schedule.
func TestCancelMidHeap(t *testing.T) {
	e := New()
	var order []Time
	var handles []Handle
	times := []Time{50, 10, 40, 20, 30, 60, 15, 45, 25, 35}
	for _, at := range times {
		at := at
		handles = append(handles, e.At(at, func() { order = append(order, at) }))
	}
	// Cancel 40, 20, 60 — middle and leaf positions.
	handles[2].Cancel()
	handles[3].Cancel()
	handles[5].Cancel()
	if e.Pending() != len(times)-3 {
		t.Fatalf("Pending = %d after 3 in-place cancels", e.Pending())
	}
	e.Run()
	want := []Time{10, 15, 25, 30, 35, 45, 50}
	if len(order) != len(want) {
		t.Fatalf("fired %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// TestReserveSeqsOrdersLikeUpfrontScheduling: an event scheduled lazily
// with a reserved sequence number ties with equal-time events exactly
// as if it had been scheduled at reservation time.
func TestReserveSeqsOrdersLikeUpfrontScheduling(t *testing.T) {
	e := New()
	base := e.ReserveSeqs(2)
	var order []string
	// Scheduled after reservation, so its seq is higher than base+1.
	e.At(10, func() { order = append(order, "late") })
	e.AtSeq(5, base, func() {
		// Reserved slot 1 lands at the same time as "late" but must
		// fire first: its sequence number predates "late"'s.
		e.AtSeq(10, base+1, func() { order = append(order, "reserved") })
	})
	e.Run()
	if len(order) != 2 || order[0] != "reserved" || order[1] != "late" {
		t.Fatalf("order = %v, want [reserved late]", order)
	}
}

// TestQuickPoolCancelSubset re-runs the cancel-subset property through
// heavy pool churn: interleaved schedule/cancel/fire cycles must fire
// exactly the non-cancelled events.
func TestQuickPoolCancelSubset(t *testing.T) {
	f := func(rawTimes []uint16, mask uint64) bool {
		e := New()
		firedCount, wantCount := 0, 0
		for round := 0; round < 2; round++ {
			for i, rt := range rawTimes {
				at := e.Now() + Time(rt)
				h := e.At(at, func() { firedCount++ })
				if mask&(1<<(uint(i)%64)) != 0 {
					h.Cancel()
				} else {
					wantCount++
				}
			}
			e.Run()
		}
		return firedCount == wantCount
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleFireZeroAllocs is the pool's allocation gate: once the
// free-list is primed, scheduling and firing events allocates nothing.
func TestScheduleFireZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under -race")
	}
	e := New()
	fn := func() {}
	// Prime the pool.
	for i := 0; i < 64; i++ {
		e.After(1, fn)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		e.After(1, fn)
		e.After(2, fn)
		e.Run()
	})
	if avg != 0 {
		t.Errorf("schedule/fire allocates %.2f allocs/op, want 0", avg)
	}
}

// TestCancelZeroAllocs: in-place cancel is allocation-free too.
func TestCancelZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under -race")
	}
	e := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(1, fn)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		h := e.After(1, fn)
		h.Cancel()
	})
	if avg != 0 {
		t.Errorf("schedule/cancel allocates %.2f allocs/op, want 0", avg)
	}
}

func BenchmarkEngineCancel(b *testing.B) {
	e := New()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := e.After(Duration(i%64), fn)
		h.Cancel()
	}
}
