package gateway

import (
	"sync"
	"testing"
	"time"
)

// at returns an absolute instant s seconds past an arbitrary epoch.
// Every bucket test drives refill with literal instants — no sleeps,
// no wall clock — so the boundary cases are exact.
func at(s float64) time.Time {
	return time.Unix(1_700_000_000, 0).Add(time.Duration(s * float64(time.Second)))
}

func TestTokenBucketTable(t *testing.T) {
	type take struct {
		at   float64 // seconds past epoch
		n    float64
		want bool
	}
	cases := []struct {
		name        string
		rate, burst float64
		takes       []take
	}{
		{
			// Draining the burst exactly leaves zero; the very next
			// fractional take at the same instant is denied.
			name: "exactly-at-limit",
			rate: 10, burst: 5,
			takes: []take{
				{0, 5, true},    // whole burst in one take
				{0, 0.5, false}, // nothing left at the same instant
				{0.5, 5, true},  // 0.5s * 10/s refills exactly to burst
				{0.5, 0.1, false},
			},
		},
		{
			// One token per second: 0.999s of refill is not a token,
			// 1.000s is. A denied take consumes nothing.
			name: "single-token-boundary",
			rate: 1, burst: 1,
			takes: []take{
				{0, 1, true},
				{0, 1, false},
				{0.999, 1, false},
				{1.0, 1, true},
			},
		},
		{
			// A long idle period refills to the burst cap, not to
			// rate * elapsed.
			name: "burst-refill-capped",
			rate: 2, burst: 4,
			takes: []take{
				{0, 4, true},
				{100, 5, false}, // 200 tokens of elapsed refill, capped at 4
				{100, 4, true},
				{100, 0.5, false},
			},
		},
		{
			// Zero burst defaults to the rate.
			name: "burst-defaults-to-rate",
			rate: 3, burst: 0,
			takes: []take{
				{0, 3, true},
				{0, 0.001, false},
			},
		},
		{
			// A sub-1/s rate still admits one whole request at a time.
			name: "burst-at-least-one",
			rate: 0.5, burst: 0,
			takes: []take{
				{0, 1, true},
				{0, 0.5, false},
				{2, 1, true}, // 2s * 0.5/s = one token back
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewTokenBucket(tc.rate, tc.burst)
			if b == nil {
				t.Fatalf("NewTokenBucket(%v, %v) = nil", tc.rate, tc.burst)
			}
			for i, tk := range tc.takes {
				if got := b.TakeAt(at(tk.at), tk.n); got != tk.want {
					t.Fatalf("take %d: TakeAt(at(%v), %v) = %v, want %v (remaining %v)",
						i, tk.at, tk.n, got, tk.want, b.Remaining(at(tk.at)))
				}
			}
		})
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	for _, rate := range []float64{0, -1} {
		if b := NewTokenBucket(rate, 10); b != nil {
			t.Fatalf("NewTokenBucket(%v, 10) = %v, want nil (unlimited)", rate, b)
		}
	}
	var b *TokenBucket
	for i := 0; i < 1000; i++ {
		if !b.TakeAt(at(0), 1) {
			t.Fatal("nil bucket denied a take")
		}
	}
	if got := b.Remaining(at(0)); got != 0 {
		t.Fatalf("nil bucket Remaining = %v, want 0", got)
	}
}

func TestTokenBucketTimeNeverFlowsBackward(t *testing.T) {
	b := NewTokenBucket(10, 2)
	if !b.TakeAt(at(10), 2) {
		t.Fatal("initial take denied")
	}
	// An out-of-order instant (callers racing on the lock) must not
	// drain the bucket or grant phantom refill.
	if b.TakeAt(at(5), 1) {
		t.Fatal("backward take granted with an empty bucket")
	}
	if got := b.Remaining(at(10)); got != 0 {
		t.Fatalf("Remaining after backward take = %v, want 0", got)
	}
	// Forward progress from the high-water instant still refills.
	if !b.TakeAt(at(10.1), 1) {
		t.Fatal("take after 0.1s refill denied")
	}
}

func TestTokenBucketRemainingDoesNotConsume(t *testing.T) {
	b := NewTokenBucket(1, 4)
	for i := 0; i < 5; i++ {
		if got := b.Remaining(at(0)); got != 4 {
			t.Fatalf("Remaining call %d = %v, want 4", i, got)
		}
	}
	if !b.TakeAt(at(0), 4) {
		t.Fatal("take after Remaining probes denied")
	}
	// Remaining reflects pending refill without committing it.
	if got := b.Remaining(at(2)); got != 2 {
		t.Fatalf("Remaining(+2s) = %v, want 2", got)
	}
}

func TestTokenBucketConcurrentTakes(t *testing.T) {
	// 8 goroutines race 1000 takes each against a 100-token bucket at
	// one frozen instant: exactly 100 grants, no matter the
	// interleaving. Run under -race this also exercises the lock.
	b := NewTokenBucket(1, 100)
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		grants int
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < 1000; i++ {
				if b.TakeAt(at(0), 1) {
					local++
				}
			}
			mu.Lock()
			grants += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if grants != 100 {
		t.Fatalf("concurrent grants = %d, want exactly 100", grants)
	}
}
