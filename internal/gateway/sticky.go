package gateway

import (
	"sync"
	"time"
)

// stickyTable is one tenant's session-affinity state: a bounded map
// from session key to the node the session is pinned to. Entries
// expire after the tenant's sticky TTL (an idle session's affinity is
// not worth holding forever) and the table is capped so a hostile or
// merely enormous key space cannot grow gateway memory without bound.
//
// Timestamps are passed in by the caller (the gateway's injected
// clock), keeping the table deterministic under test.
type stickyTable struct {
	mu      sync.Mutex
	ttl     time.Duration
	cap     int
	entries map[string]stickyEntry
}

type stickyEntry struct {
	node    int
	expires time.Time
}

func newStickyTable(ttl time.Duration, capacity int) *stickyTable {
	return &stickyTable{
		ttl:     ttl,
		cap:     capacity,
		entries: make(map[string]stickyEntry),
	}
}

// get returns the session's pinned node, refreshing the entry's TTL on
// the hit (affinity follows activity, not first contact).
func (t *stickyTable) get(key string, now time.Time) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[key]
	if !ok {
		return 0, false
	}
	if now.After(e.expires) {
		delete(t.entries, key)
		return 0, false
	}
	e.expires = now.Add(t.ttl)
	t.entries[key] = e
	return e.node, true
}

// assign pins (or re-pins) a session to a node. At capacity it first
// sweeps expired entries; if the table is still full the new session
// simply is not pinned — it will route by policy until pressure eases,
// which degrades affinity rather than memory.
func (t *stickyTable) assign(key string, node int, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.entries[key]; !ok && len(t.entries) >= t.cap {
		for k, e := range t.entries {
			if now.After(e.expires) {
				delete(t.entries, k)
			}
		}
		if len(t.entries) >= t.cap {
			return
		}
	}
	t.entries[key] = stickyEntry{node: node, expires: now.Add(t.ttl)}
}

// forget drops a session's pin (the pinned node vanished).
func (t *stickyTable) forget(key string) {
	t.mu.Lock()
	delete(t.entries, key)
	t.mu.Unlock()
}

// len reports the live entry count (expired entries still resident
// count until swept; tests size the table through assign/get anyway).
func (t *stickyTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// loadTable is the gateway's last-known load index per node, fed from
// every service response (the server reports its load index in each
// reply, §3.1). The sticky router consults it to decide whether a
// pinned node is busy enough to justify spending a violation token.
type loadTable struct {
	mu    sync.Mutex
	loads map[int]int
}

func newLoadTable() *loadTable { return &loadTable{loads: make(map[int]int)} }

func (t *loadTable) note(node, load int) {
	t.mu.Lock()
	t.loads[node] = load
	t.mu.Unlock()
}

func (t *loadTable) load(node int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.loads[node]
}
