// Package gateway is the production front door: a multi-tenant HTTP
// gateway that serves REST traffic on top of the prototype's polling
// client (internal/cluster) and transport seam (internal/transport).
//
// The request pipeline is admission → routing → poll → node:
//
//  1. Tenant resolution (X-Tenant header) and per-tenant token-bucket
//     rate limiting — offered load beyond the tenant's contract is
//     shed with 429 before it costs the cluster anything.
//  2. Admission control — a per-tenant cap on concurrently admitted
//     requests (503), so one saturating tenant cannot occupy every
//     backend slot.
//  3. Routing — requests carrying an X-Session key on a sticky tenant
//     are pinned to the node the configured policy first chose;
//     everything else routes through the paper's policy machinery
//     (random polling by default) via cluster.Client.
//
// Sticky routing carries a bounded violation budget (Liang–Borst,
// "Delay versus Stickiness Violation Trade-offs"): when a pinned
// node's last-reported load index reaches the tenant's overload
// threshold, the router may break affinity and fall back to the
// polling policy — but only while the tenant's violation token bucket
// has tokens. With the budget exhausted the session sticks and eats
// the delay; a vanished or unreachable node forces a move regardless
// (and is counted separately).
//
// Every decision increments the obs gateway catalog
// (obs.MetricGateway*), exported on the same /metrics mux the other
// binaries use, with per-tenant request/admission/latency series under
// derived names (obs.TenantMetric).
package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"finelb/internal/cluster"
	"finelb/internal/obs"
	"finelb/internal/transport"
)

// Metrics is the gateway's slice of the obs catalog, resolved once at
// construction so the request path is lock- and map-free.
type Metrics struct {
	Requests          *obs.Counter // requests reaching the front door
	Admitted          *obs.Counter // requests past rate limit and admission
	RejectedRate      *obs.Counter // shed by a tenant's token bucket (429)
	RejectedAdmission *obs.Counter // shed at a tenant's in-flight cap (503)
	UnknownTenant     *obs.Counter // unresolvable X-Tenant (403)
	Errors            *obs.Counter // backend round trips that failed (502)
	Overloads         *obs.Counter // backend refused at a full queue (503)
	StickyHits        *obs.Counter // session requests served by their pinned node
	StickyViolations  *obs.Counter // session re-routes away from the pin (all causes)
	StickyForced      *obs.Counter // the subset forced by a vanished/unreachable node
	StickyDenied      *obs.Counter // overloaded pins kept for want of budget tokens
	Inflight          *obs.Gauge   // admitted requests currently in flight
	Latency           *obs.Histogram
}

// NewMetrics resolves the gateway catalog against reg (a nil registry
// gets a fresh private one).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Metrics{
		Requests:          reg.Counter(obs.MetricGatewayRequests),
		Admitted:          reg.Counter(obs.MetricGatewayAdmitted),
		RejectedRate:      reg.Counter(obs.MetricGatewayRejectedRate),
		RejectedAdmission: reg.Counter(obs.MetricGatewayRejectedAdmission),
		UnknownTenant:     reg.Counter(obs.MetricGatewayUnknownTenant),
		Errors:            reg.Counter(obs.MetricGatewayErrors),
		Overloads:         reg.Counter(obs.MetricGatewayOverloads),
		StickyHits:        reg.Counter(obs.MetricGatewayStickyHits),
		StickyViolations:  reg.Counter(obs.MetricGatewayStickyViolations),
		StickyForced:      reg.Counter(obs.MetricGatewayStickyForced),
		StickyDenied:      reg.Counter(obs.MetricGatewayStickyDenied),
		Inflight:          reg.Gauge(obs.MetricGatewayInflight),
		Latency:           reg.Histogram(obs.MetricGatewayLatencySeconds, obs.LatencyBuckets(), obs.Timing()),
	}
}

// Config configures a Gateway.
type Config struct {
	// Backends are the polling clients requests route through
	// (round-robin per request). At least one is required; several
	// spread poll-agent and connection-pool contention, exactly as the
	// paper's experiments run six client nodes.
	Backends []*cluster.Client

	// Tenants is the static tenant set. At least one is required.
	Tenants []TenantConfig

	// DefaultTenant, when non-empty, is assumed for requests without an
	// X-Tenant header; empty makes the header mandatory.
	DefaultTenant string

	// Registry receives the gateway catalog and per-tenant series; nil
	// gets a private registry. The gateway serves it at /metrics.
	Registry *obs.Registry
	// Trace, when non-nil, is served at /trace.
	Trace *obs.Trace
	// Pprof additionally mounts /debug/pprof/ (opt-in, as everywhere).
	Pprof bool

	// Now is the injected clock driving rate limiters, violation
	// budgets, sticky TTLs, and latency measurement (default time.Now).
	// Tests pin it to drive token-bucket boundaries without sleeping.
	Now func() time.Time

	// MaxBody bounds request payloads in bytes (default 1 MiB, the
	// cluster protocol's own payload cap).
	MaxBody int64
}

// Gateway is a running front door. Construct with New, serve with
// Start (any transport.Listener), stop with Close.
type Gateway struct {
	cfg     Config
	now     func() time.Time
	reg     *obs.Registry
	m       *Metrics
	tenants map[string]*tenant
	loads   *loadTable
	rr      atomic.Uint64
	mux     *http.ServeMux

	mu        sync.Mutex
	srv       *http.Server
	ln        transport.Listener
	serveDone chan struct{}
	closed    bool
}

// New builds a gateway. The registry, tenants, and handler mux are
// fully wired on return; Start attaches a listener.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backend clients configured")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("gateway: no tenants configured")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 1 << 20
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	g := &Gateway{
		cfg:     cfg,
		now:     cfg.Now,
		reg:     reg,
		m:       NewMetrics(reg),
		tenants: make(map[string]*tenant, len(cfg.Tenants)),
		loads:   newLoadTable(),
	}
	for _, tc := range cfg.Tenants {
		if tc.Name == "" {
			return nil, fmt.Errorf("gateway: tenant with empty name")
		}
		if _, dup := g.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("gateway: duplicate tenant %q", tc.Name)
		}
		g.tenants[tc.Name] = newTenant(tc, reg)
	}
	if cfg.DefaultTenant != "" {
		if _, ok := g.tenants[cfg.DefaultTenant]; !ok {
			return nil, fmt.Errorf("gateway: default tenant %q not configured", cfg.DefaultTenant)
		}
	}
	// The gateway's mux is the binaries' standard obs mux (/metrics,
	// /trace, optional /debug/pprof/) with the service routes on top.
	g.mux = obs.NewMux(reg, cfg.Trace, cfg.Pprof)
	g.mux.HandleFunc("/access", g.handleAccess)
	g.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return g, nil
}

// Registry returns the registry the gateway records into.
func (g *Gateway) Registry() *obs.Registry { return g.reg }

// Metrics returns the gateway's resolved catalog.
func (g *Gateway) Metrics() *Metrics { return g.m }

// ServeHTTP serves the gateway's routes; the gateway is a plain
// http.Handler, so tests can drive it without a listener.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// seamListener adapts a transport.Listener to net.Listener so net/http
// serves identically on real sockets and the mem fabric. Close
// forwards the seam listener's error: shutdown failures on the
// transport seam must surface, not vanish.
type seamListener struct{ ln transport.Listener }

func (s seamListener) Accept() (net.Conn, error) { return s.ln.Accept() }
func (s seamListener) Close() error              { return s.ln.Close() }
func (s seamListener) Addr() net.Addr            { return seamAddr(s.ln.Addr()) }

// seamAddr renders a transport address as a net.Addr.
type seamAddr string

func (a seamAddr) Network() string { return "finelb" }
func (a seamAddr) String() string  { return string(a) }

// tcpListener wraps a real TCP listener in the transport seam so
// cmd/lbgw can honor an explicit -addr (transport.Net.Listen always
// picks a fresh loopback port).
type tcpListener struct{ ln net.Listener }

func (l tcpListener) Accept() (net.Conn, error) { return l.ln.Accept() }
func (l tcpListener) Addr() string              { return l.ln.Addr().String() }
func (l tcpListener) Close() error              { return l.ln.Close() }

// ListenTCP opens a TCP listener on addr behind the transport seam.
func ListenTCP(addr string) (transport.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return tcpListener{ln: ln}, nil
}

// Start begins serving on ln in a background goroutine, taking
// ownership of the listener: Close closes it and waits for the serve
// loop to exit. Start can be called once per gateway.
func (g *Gateway) Start(ln transport.Listener) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("gateway: closed")
	}
	if g.srv != nil {
		return fmt.Errorf("gateway: already started")
	}
	g.ln = ln
	g.srv = &http.Server{Handler: g.mux}
	g.serveDone = make(chan struct{})
	srv, done := g.srv, g.serveDone
	go func() {
		defer close(done)
		// Serve returns once Close tears the listener down (the accept
		// loop exits on the listener's net.ErrClosed); the error is the
		// expected shutdown signal, not a condition to report.
		_ = srv.Serve(seamListener{ln: ln})
	}()
	return nil
}

// Addr returns the serving address ("" before Start).
func (g *Gateway) Addr() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ln == nil {
		return ""
	}
	return g.ln.Addr()
}

// Close shuts the gateway down: the transport listener is closed
// (which exits the accept loop), every active connection is torn down,
// and Close blocks until the serve goroutine has returned. The
// listener's Close error is propagated. Close is idempotent.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	srv, done := g.srv, g.serveDone
	g.mu.Unlock()
	if srv == nil {
		return nil // never started
	}
	// srv.Close closes the seam listener — whose Close forwards the
	// transport listener's error — and all active connections.
	err := srv.Close()
	<-done
	return err
}

// backend picks the next routing client round-robin.
func (g *Gateway) backend() *cluster.Client {
	return g.cfg.Backends[g.rr.Add(1)%uint64(len(g.cfg.Backends))]
}

// tenantFor resolves the request's tenant (nil when unknown).
func (g *Gateway) tenantFor(r *http.Request) *tenant {
	name := r.Header.Get("X-Tenant")
	if name == "" {
		name = g.cfg.DefaultTenant
	}
	return g.tenants[name]
}

// Reject cause values carried in the X-Gateway-Reject header, so load
// generators can classify shed traffic without parsing bodies.
const (
	RejectTenant    = "tenant"
	RejectRate      = "rate"
	RejectAdmission = "admission"
	RejectOverload  = "overload"
)

// reject sheds a request with a classification header.
func reject(w http.ResponseWriter, status int, cause string) {
	w.Header().Set("X-Gateway-Reject", cause)
	http.Error(w, "gateway: rejected: "+cause, status)
}

// AccessReply is the JSON body of a successful /access response.
type AccessReply struct {
	Tenant string `json:"tenant"`
	Server int    `json:"server"`
	Load   int    `json:"load"`
	// Sticky reports that the request was served by its session's
	// pinned node; Violation that affinity was broken this request
	// (Forced: because the pin was gone, not by choice).
	Sticky    bool `json:"sticky,omitempty"`
	Violation bool `json:"violation,omitempty"`
	Forced    bool `json:"forced,omitempty"`
}

// routeResult is one routing decision's outcome.
type routeResult struct {
	info      *cluster.AccessInfo
	err       error
	sticky    bool
	violation bool
	forced    bool
}

// handleAccess runs the admission → routing → poll → node pipeline for
// one request.
func (g *Gateway) handleAccess(w http.ResponseWriter, r *http.Request) {
	start := g.now()
	g.m.Requests.Inc()
	t := g.tenantFor(r)
	if t == nil {
		g.m.UnknownTenant.Inc()
		reject(w, http.StatusForbidden, RejectTenant)
		return
	}
	t.m.requests.Inc()
	if !t.limiter.TakeAt(start, 1) {
		g.m.RejectedRate.Inc()
		reject(w, http.StatusTooManyRequests, RejectRate)
		return
	}
	if !t.admit() {
		g.m.RejectedAdmission.Inc()
		reject(w, http.StatusServiceUnavailable, RejectAdmission)
		return
	}
	defer t.release()
	g.m.Admitted.Inc()
	t.m.admitted.Inc()
	g.m.Inflight.Add(1)
	defer g.m.Inflight.Add(-1)

	serviceUs := t.cfg.ServiceUs
	if s := r.URL.Query().Get("service_us"); s != "" {
		v, err := strconv.ParseUint(s, 10, 32)
		if err != nil {
			http.Error(w, "gateway: bad service_us: "+err.Error(), http.StatusBadRequest)
			return
		}
		serviceUs = uint32(v)
	}
	var payload []byte
	if r.Body != nil {
		var err error
		payload, err = io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBody))
		if err != nil {
			http.Error(w, "gateway: reading body: "+err.Error(), http.StatusBadRequest)
			return
		}
	}

	backend := g.backend()
	var res routeResult
	if session := r.Header.Get("X-Session"); session != "" && t.cfg.Sticky {
		res = g.routeSticky(t, backend, session, serviceUs, payload)
	} else {
		res.info, res.err = backend.Access(serviceUs, payload)
	}
	if res.err != nil {
		g.m.Errors.Inc()
		http.Error(w, "gateway: backend: "+res.err.Error(), http.StatusBadGateway)
		return
	}
	// Every reply refreshes the router's view of that node's load
	// index — the signal sticky overload decisions run on.
	g.loads.note(res.info.Server, int(res.info.Resp.Load))
	if res.info.Resp.Status == cluster.StatusOverload {
		g.m.Overloads.Inc()
		reject(w, http.StatusServiceUnavailable, RejectOverload)
		return
	}
	elapsed := g.now().Sub(start).Seconds()
	g.m.Latency.Observe(elapsed)
	t.m.latency.Observe(elapsed)
	writeJSON(w, AccessReply{
		Tenant:    t.cfg.Name,
		Server:    res.info.Server,
		Load:      int(res.info.Resp.Load),
		Sticky:    res.sticky,
		Violation: res.violation,
		Forced:    res.forced,
	})
}

// routeSticky serves one session-bound request: to the pinned node
// when healthy and affordable, re-routed by policy when the pin is
// gone (forced) or overloaded with budget tokens available
// (discretionary).
func (g *Gateway) routeSticky(t *tenant, backend *cluster.Client, session string, serviceUs uint32, payload []byte) routeResult {
	now := g.now()
	node, pinned := t.sessions.get(session, now)
	if !pinned {
		// First contact (or expired session): the policy picks, the
		// pick becomes the pin. Not a violation — there was no affinity
		// to violate.
		info, err := backend.Access(serviceUs, payload)
		if err == nil && info.Resp.Status == cluster.StatusOK {
			t.sessions.assign(session, info.Server, now)
		}
		return routeResult{info: info, err: err}
	}
	if !backend.HasEndpoint(node) {
		// The pin left the mapping table (crash, soft-state expiry):
		// the move is forced, budget is not consulted.
		return g.reroute(t, backend, session, serviceUs, payload, true)
	}
	if t.cfg.StickyOverload > 0 && g.loads.load(node) >= t.cfg.StickyOverload {
		// The pin is busy: break affinity for delay if the tenant's
		// violation budget can pay for it. A nil budget means the
		// tenant bought zero discretionary violations.
		if t.budget != nil && t.budget.TakeAt(now, 1) {
			return g.reroute(t, backend, session, serviceUs, payload, false)
		}
		g.m.StickyDenied.Inc()
	}
	info, err := backend.AccessNode(node, serviceUs, payload)
	if err != nil {
		// In the table but unreachable: forced, like a vanished node.
		return g.reroute(t, backend, session, serviceUs, payload, true)
	}
	g.m.StickyHits.Inc()
	return routeResult{info: info, sticky: true}
}

// reroute breaks a session's affinity: route by policy, re-pin to the
// fresh pick, and account the violation.
func (g *Gateway) reroute(t *tenant, backend *cluster.Client, session string, serviceUs uint32, payload []byte, forced bool) routeResult {
	g.m.StickyViolations.Inc()
	if forced {
		g.m.StickyForced.Inc()
	}
	t.sessions.forget(session)
	info, err := backend.Access(serviceUs, payload)
	if err == nil && info.Resp.Status == cluster.StatusOK {
		t.sessions.assign(session, info.Server, g.now())
	}
	return routeResult{info: info, err: err, violation: true, forced: forced}
}

func writeJSON(w http.ResponseWriter, v AccessReply) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // a broken client write is the client's problem
}
